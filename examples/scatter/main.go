// Scatter: recommending scatter-plot views — the visualization-type
// extension from the paper's conclusion. The NBA dataset hides a
// correlation that only holds inside the exploration subset: for the
// selected team, three-point attempts track scoring much more tightly
// than league-wide. A simulated analyst who rewards correlation shifts
// labels a few views; the session surfaces the pair whose joint behaviour
// changed most.
package main

import (
	"fmt"
	"log"

	"viewseeker"
	"viewseeker/internal/dataset"
)

func main() {
	table := dataset.GenerateNBA(dataset.NBAConfig{Rows: 30_000, Seed: 6, HotTeam: "GSW"})
	s, err := viewseeker.NewScatter(table, dataset.NBAQueryFor("GSW"), viewseeker.Options{K: 3, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scatter view space: %d measure pairs\n\n", s.NumViews())

	// The analyst's hidden interest: views where the subset's correlation
	// structure differs from the league's (the CORR_DIFF feature, which we
	// recompute from the rendered pair the way a person would perceive it).
	for i := 0; i < 8; i++ {
		v, err := s.Next()
		if err != nil {
			break
		}
		p, err := s.Pair(v.Index)
		if err != nil {
			log.Fatal(err)
		}
		label := p.Target.Corr - p.Reference.Corr
		if label < 0 {
			label = -label
		}
		if label > 1 {
			label = 1
		}
		if err := s.Feedback(v.Index, label); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("labelled %-38s r: %.2f → %.2f  interest %.2f\n",
			v.Spec, p.Reference.Corr, p.Target.Corr, label)
	}

	fmt.Println("\ntop scatter views:")
	for rank, v := range s.TopK() {
		fmt.Printf("%d. %s (score %.3f)\n", rank+1, v.Spec, v.Score)
	}
	best := s.TopK()[0]
	out, err := s.Render(best.Index)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", out)
}
