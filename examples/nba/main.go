// NBA: the paper's motivating example (Figure 1). An analyst wants to know
// why the selected team won a championship. ViewSeeker explores the
// player-game dataset, and after a few deviation-guided labels it surfaces
// the view comparing the team's 3-point attempt rate with the league —
// the insight the introduction builds the whole system around.
package main

import (
	"fmt"
	"log"
	"strings"

	"viewseeker"
	"viewseeker/internal/dataset"
)

func main() {
	const team = "GSW"
	table := dataset.GenerateNBA(dataset.NBAConfig{Rows: 30_000, Seed: 3, HotTeam: team})
	s, err := viewseeker.New(table, dataset.NBAQueryFor(team), viewseeker.Options{K: 3, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("why did %s win? exploring %d candidate views of %d player-game records\n\n",
		team, s.NumViews(), table.NumRows())

	// The analyst reacts to what they see, and the reactions carry taste,
	// not just deviation: views grouped BY team are self-evident (all of
	// DQ's mass sits in the GSW bar), and MIN/MAX bars are sampling noise
	// for per-game stats — both get rejected despite their formal
	// deviation scores. Everything else is rated by how far the team's
	// profile diverges from the league's. This negative feedback is
	// exactly what ViewSeeker exists to learn.
	for i := 0; i < 15; i++ {
		v, err := s.Next()
		if err != nil {
			break
		}
		label := 0.05
		if v.Spec.Dimension != "team" && v.Spec.Agg != "MIN" && v.Spec.Agg != "MAX" {
			p, err := s.Pair(v.Index)
			if err != nil {
				log.Fatal(err)
			}
			label = 4 * maxDiff(p.Target.Distribution(), p.Reference.Distribution())
			if label > 1 {
				label = 1
			}
		}
		if err := s.Feedback(v.Index, label); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("top insights:")
	for rank, v := range s.TopK() {
		fmt.Printf("%d. %s (score %.3f)\n", rank+1, v.Spec, v.Score)
	}

	// Find the 3-point view among the recommendations and render it.
	for _, v := range s.TopK() {
		if strings.Contains(v.Spec.Measure, "three_pt") {
			rendering, err := s.Render(v.Index)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nthe Figure 1 insight — %s shoots far more threes than the league:\n\n%s\n", team, rendering)
			return
		}
	}
	fmt.Println("\n(no 3-point view in the top-k this session — try more iterations)")
}

func maxDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
