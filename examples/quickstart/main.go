// Quickstart: the smallest complete ViewSeeker session. It generates a
// diabetic-patients dataset, carves out an exploration subset with SQL,
// and runs a short interactive loop in which a scripted "user" who cares
// about deviation labels the presented views. After a handful of labels
// the top recommendations surface the views where the subset's
// distribution diverges most from the whole dataset — the paper's
// Figure 2 target/reference comparison, rendered in ASCII.
package main

import (
	"fmt"
	"log"

	"viewseeker"
	"viewseeker/internal/dataset"
)

func main() {
	// 1. Load data. Any CSV works via viewseeker.LoadCSV + AssignRoles;
	// here we use the bundled generator so the example is self-contained.
	table := dataset.GenerateDIAB(dataset.DIABConfig{Rows: 20_000, Seed: 7})

	// 2. Start a session: the query selects the records the analyst is
	// digging into (elderly diabetic patients), the options ask for the
	// top 5 views.
	s, err := viewseeker.New(table,
		"SELECT * FROM diab WHERE diag_group = 'diabetes' AND age_group = '[90-100)'",
		viewseeker.Options{K: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view space: %d candidate views over %d rows (DQ: %d rows)\n\n",
		s.NumViews(), table.NumRows(), s.Target().NumRows())

	// 3. Interactive loop. A real application would show s.Render(v.Index)
	// to a person; this scripted user rates each view by how far the
	// target histogram deviates from the reference (L1 distance).
	for i := 0; i < 10; i++ {
		v, err := s.Next()
		if err != nil {
			break
		}
		p, err := s.Pair(v.Index)
		if err != nil {
			log.Fatal(err)
		}
		label := l1(p.Target.Distribution(), p.Reference.Distribution()) / 2 // L1 ≤ 2
		if err := s.Feedback(v.Index, label); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iteration %2d: labelled %-45s with %.2f\n", i+1, v.Spec, label)
	}

	// 4. Recommendations: the learned utility function's top-5 views.
	fmt.Println("\ntop-5 recommended views:")
	for rank, v := range s.TopK() {
		fmt.Printf("%d. %s (score %.3f)\n", rank+1, v.Spec, v.Score)
	}

	// 5. Show the best view the way the paper's Figure 2 does.
	best := s.TopK()[0]
	rendering, err := s.Render(best.Index)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", rendering)

	// 6. The discovered utility function (Eq. 4).
	weights, intercept := s.Weights()
	fmt.Println("learned utility function:")
	for _, name := range s.FeatureNames() {
		fmt.Printf("  %-10s %+.4f\n", name, weights[name])
	}
	fmt.Printf("  intercept  %+.4f\n", intercept)
}

func l1(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if a[i] > b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	return d
}
