// Customutility: extending ViewSeeker with user-defined utility
// components (Section 3.1: "users may customize the utility features,
// including adding new ones, for personalized analysis"). This example
// registers two custom features — a preference for views whose target
// subset is well-populated, and a preference for concentrated
// distributions — then runs a session for an analyst who likes exactly
// those properties, showing that the estimator learns compositions over
// custom features just as it does over the built-in eight.
package main

import (
	"fmt"
	"log"

	"viewseeker"
	"viewseeker/internal/dataset"
)

func main() {
	table := dataset.GenerateDIAB(dataset.DIABConfig{Rows: 15_000, Seed: 12})

	support := viewseeker.Feature{
		Name: "SUPPORT",
		// Fraction of the view's bins that actually hold target data:
		// views whose bars are mostly empty score low.
		Compute: func(p *viewseeker.Pair) (float64, error) {
			filled := 0
			for _, c := range p.Target.Counts {
				if c > 0 {
					filled++
				}
			}
			return float64(filled) / float64(p.Target.Bins()), nil
		},
	}
	concentration := viewseeker.Feature{
		Name: "CONCENTRATION",
		// Herfindahl index of the target distribution: 1 when all mass is
		// in one bar, 1/bins when flat.
		Compute: func(p *viewseeker.Pair) (float64, error) {
			h := 0.0
			for _, q := range p.Target.Distribution() {
				h += q * q
			}
			return h, nil
		},
	}

	s, err := viewseeker.New(table,
		"SELECT * FROM diab WHERE insulin = 'Up'",
		viewseeker.Options{K: 5, Seed: 4, ExtraFeatures: []viewseeker.Feature{support, concentration}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("features: %v\n\n", s.FeatureNames())

	// The analyst's hidden taste: 0.7·CONCENTRATION + 0.3·SUPPORT.
	taste := func(idx int) (float64, error) {
		p, err := s.Pair(idx)
		if err != nil {
			return 0, err
		}
		c, _ := concentration.Compute(p)
		sup, _ := support.Compute(p)
		return 0.7*c + 0.3*sup, nil
	}
	for i := 0; i < 14; i++ {
		v, err := s.Next()
		if err != nil {
			break
		}
		label, err := taste(v.Index)
		if err != nil {
			log.Fatal(err)
		}
		if label > 1 {
			label = 1
		}
		if err := s.Feedback(v.Index, label); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("top-5 views for a concentration-loving analyst:")
	for rank, v := range s.TopK() {
		p, err := s.Pair(v.Index)
		if err != nil {
			log.Fatal(err)
		}
		c, _ := concentration.Compute(p)
		fmt.Printf("%d. %-45s concentration %.2f\n", rank+1, v.Spec, c)
	}

	weights, _ := s.Weights()
	fmt.Println("\nlearned weights on the custom features:")
	fmt.Printf("  CONCENTRATION %+.4f\n", weights["CONCENTRATION"])
	fmt.Printf("  SUPPORT       %+.4f\n", weights["SUPPORT"])
	fmt.Println("\n(CONCENTRATION carries the dominant learned weight: the estimator picked up the hidden taste)")
}
