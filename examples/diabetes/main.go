// Diabetes: a full simulated user study on the DIAB testbed, mirroring the
// paper's Experiment 1 at example scale. A simulated analyst whose true
// interest is the composite utility function u* = 0.5·EMD + 0.5·KL labels
// views; the program reports how the top-k precision climbs per label,
// how many labels 100% precision took, and how closely the learned weights
// recover the analyst's hidden utility function.
package main

import (
	"fmt"
	"log"
	"strings"

	"viewseeker/internal/core"
	"viewseeker/internal/exp"
	"viewseeker/internal/sim"
)

func main() {
	const k = 5
	tb, err := exp.NewDIABTestbed(20_000, 9)
	if err != nil {
		log.Fatal(err)
	}
	ideal := sim.IdealFunctions()[3] // u* #4: 0.5*EMD + 0.5*KL
	user, err := sim.NewUser(ideal, tb.Exact)
	if err != nil {
		log.Fatal(err)
	}
	seeker, err := core.NewSeeker(tb.Exact, core.Config{K: k}, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hidden ideal utility function: u*() = %s\n", ideal.Name())
	fmt.Printf("view space: %d views; target: 100%% top-%d precision\n\n", tb.Exact.Len(), k)
	fmt.Println("label  view                                            given  precision")

	labels := 0
	for labels < 50 {
		next, err := seeker.NextViews()
		if err != nil {
			log.Fatal(err)
		}
		if len(next) == 0 {
			break
		}
		v := next[0]
		label := user.Label(v)
		if err := seeker.Feedback(v, label); err != nil {
			log.Fatal(err)
		}
		labels++
		pred := seeker.TopK()
		precision, err := sim.Precision(pred, user.Scores(), k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %-46s  %.2f   %s\n", labels, tb.Exact.Specs[v], label, bar(precision))
		if precision >= 1 {
			break
		}
	}
	fmt.Printf("\nreached 100%% top-%d precision after %d labels (paper: 7-16 on average)\n\n", k, labels)

	// Compare the learned composition with the hidden one. The estimator
	// works on raw features while u* uses min-max-normalised ones, so we
	// compare the views they rank at the top instead of raw coefficients.
	fmt.Println("ideal top-5 vs recommended top-5:")
	idealTop := user.TopK(k)
	predTop := seeker.TopK()
	for i := 0; i < k; i++ {
		marker := " "
		if contains(predTop, idealTop[i]) {
			marker = "="
		}
		fmt.Printf("  %s ideal: %-44s  recommended: %s\n",
			marker, tb.Exact.Specs[idealTop[i]], tb.Exact.Specs[predTop[i]])
	}
}

func bar(p float64) string {
	n := int(p * 20)
	return fmt.Sprintf("%-20s %3.0f%%", strings.Repeat("#", n), p*100)
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
