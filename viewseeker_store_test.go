// Offline-result cache tests at the public API level: a warm session must
// be indistinguishable from a cold one — identical recommendations,
// identical learned weights — and cache failures must degrade to
// recomputation, never to a broken session.
package viewseeker_test

import (
	"os"
	"path/filepath"
	"testing"

	"viewseeker"
	"viewseeker/internal/dataset"
)

func cacheTestTable() *viewseeker.Table {
	return dataset.GenerateDIAB(dataset.DIABConfig{Rows: 1500, Seed: 42})
}

const cacheTestQuery = "SELECT * FROM diab WHERE age_group = '[80-90)'"

// driveSession labels 10 views chosen by the session itself with a fixed
// deterministic rule, then returns the session for inspection.
func driveSession(t *testing.T, s *viewseeker.Seeker) {
	t.Helper()
	for i := 0; i < 10; i++ {
		v, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		label := 0.0
		if v.Index%3 == 0 {
			label = 1.0
		}
		if err := s.Feedback(v.Index, label); err != nil {
			t.Fatal(err)
		}
	}
}

// sessionsAgree asserts two driven sessions produced bit-identical top-k
// lists (indices and scores) and learned weights.
func sessionsAgree(t *testing.T, a, b *viewseeker.Seeker, context string) {
	t.Helper()
	at, bt := a.TopK(), b.TopK()
	if len(at) != len(bt) {
		t.Fatalf("%s: top-k sizes %d vs %d", context, len(at), len(bt))
	}
	for i := range at {
		if at[i].Index != bt[i].Index || at[i].Score != bt[i].Score {
			t.Fatalf("%s: top-k[%d] = (%d, %v) vs (%d, %v)",
				context, i, at[i].Index, at[i].Score, bt[i].Index, bt[i].Score)
		}
	}
	aw, ab := a.Weights()
	bw, bb := b.Weights()
	if ab != bb {
		t.Fatalf("%s: intercepts %v vs %v", context, ab, bb)
	}
	for name, av := range aw {
		if bv, ok := bw[name]; !ok || av != bv {
			t.Fatalf("%s: weight %s = %v vs %v", context, name, av, bv)
		}
	}
}

func TestCacheHitMatchesColdSession(t *testing.T) {
	table := cacheTestTable()
	opts := viewseeker.Options{K: 5, Seed: 3}

	cold, err := viewseeker.New(table, cacheTestQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit() {
		t.Fatal("session without a cache reports a cache hit")
	}

	cache := viewseeker.NewCache(0)
	opts.Cache = cache
	miss, err := viewseeker.New(table, cacheTestQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if miss.CacheHit() {
		t.Fatal("first cached session cannot be a hit")
	}
	hit, err := viewseeker.New(table, cacheTestQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit() {
		t.Fatal("second identical session missed the cache")
	}

	// Pre-feedback, the cached view space must already be identical.
	if hit.NumViews() != cold.NumViews() {
		t.Fatalf("view space %d vs %d", hit.NumViews(), cold.NumViews())
	}
	cs, hs := cold.Specs(), hit.Specs()
	for i := range cs {
		if cs[i] != hs[i] {
			t.Fatalf("spec %d: %v vs %v", i, cs[i], hs[i])
		}
	}

	driveSession(t, cold)
	driveSession(t, miss)
	driveSession(t, hit)
	sessionsAgree(t, cold, miss, "cold vs miss")
	sessionsAgree(t, cold, hit, "cold vs hit")
}

func TestCacheMissOnDifferentInputs(t *testing.T) {
	table := cacheTestTable()
	cache := viewseeker.NewCache(0)
	if _, err := viewseeker.New(table, cacheTestQuery, viewseeker.Options{K: 5, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string]viewseeker.Options{
		"different alpha":    {K: 5, Cache: cache, Alpha: 0.5},
		"different bins":     {K: 5, Cache: cache, BinCounts: []int{3, 4}},
		"quadratic features": {K: 5, Cache: cache, Quadratic: true},
	} {
		s, err := viewseeker.New(table, cacheTestQuery, opts)
		if err != nil {
			t.Fatal(err)
		}
		if s.CacheHit() {
			t.Errorf("%s: hit an entry for a different configuration", name)
		}
	}
	// A different query selecting a different subset must miss too.
	s, err := viewseeker.New(table, "SELECT * FROM diab WHERE age_group = '[70-80)'",
		viewseeker.Options{K: 5, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheHit() {
		t.Error("different query hit the cache")
	}
}

// TestWarmSessionExecutesViews exercises everything that needs the lazily
// built generator on the warm path: pair execution, rendering, SQL export.
func TestWarmSessionExecutesViews(t *testing.T) {
	table := cacheTestTable()
	cache := viewseeker.NewCache(0)
	opts := viewseeker.Options{K: 5, Cache: cache}
	if _, err := viewseeker.New(table, cacheTestQuery, opts); err != nil {
		t.Fatal(err)
	}
	warm, err := viewseeker.New(table, cacheTestQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit() {
		t.Fatal("expected a cache hit")
	}
	if _, err := warm.Pair(0); err != nil {
		t.Fatalf("Pair on warm session: %v", err)
	}
	if out, err := warm.Render(1); err != nil || out == "" {
		t.Fatalf("Render on warm session: %q, %v", out, err)
	}
	if query, err := warm.SQL(2); err != nil || query == "" {
		t.Fatalf("SQL on warm session: %q, %v", query, err)
	}
}

// TestPartialAlphaCachedSessionRefines covers the α < 1 warm path: the
// cached rough matrix still needs the generator for refinement, and the
// refined session must keep accepting feedback.
func TestPartialAlphaCachedSessionRefines(t *testing.T) {
	table := cacheTestTable()
	cache := viewseeker.NewCache(0)
	opts := viewseeker.Options{K: 5, Alpha: 0.3, Cache: cache}
	if _, err := viewseeker.New(table, cacheTestQuery, opts); err != nil {
		t.Fatal(err)
	}
	warm, err := viewseeker.New(table, cacheTestQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit() {
		t.Fatal("expected a cache hit for the α-sampled configuration")
	}
	driveSession(t, warm)
	if len(warm.TopK()) == 0 {
		t.Fatal("warm α-sampled session produced no recommendations")
	}
}

// TestCorruptedDiskCacheFallsBackToCompute corrupts every snapshot behind
// a disk-backed cache and verifies the facade recomputes instead of
// failing the session.
func TestCorruptedDiskCacheFallsBackToCompute(t *testing.T) {
	dir := t.TempDir()
	table := cacheTestTable()
	cache, err := viewseeker.OpenCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := viewseeker.Options{K: 5, Cache: cache}
	if _, err := viewseeker.New(table, cacheTestQuery, opts); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.vscache"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no snapshots written: %v, %v", entries, err)
	}
	for _, path := range entries {
		if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Fresh cache over the corrupted directory = restart after disk rot.
	cache2, err := viewseeker.OpenCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := viewseeker.New(table, cacheTestQuery, viewseeker.Options{K: 5, Cache: cache2})
	if err != nil {
		t.Fatalf("session failed on corrupted cache: %v", err)
	}
	if s.CacheHit() {
		t.Fatal("corrupted snapshot served as a hit")
	}
	driveSession(t, s)
}

// TestDiskCacheWarmsAcrossRestart is the durability half of the tentpole:
// a second process (fresh cache over the same directory) skips the offline
// pass and recommends identically.
func TestDiskCacheWarmsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	table := cacheTestTable()
	cache1, err := viewseeker.OpenCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	first, err := viewseeker.New(table, cacheTestQuery, viewseeker.Options{K: 5, Cache: cache1})
	if err != nil {
		t.Fatal(err)
	}
	cache2, err := viewseeker.OpenCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	second, err := viewseeker.New(table, cacheTestQuery, viewseeker.Options{K: 5, Cache: cache2})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit() {
		t.Fatal("restarted cache did not warm from disk")
	}
	driveSession(t, first)
	driveSession(t, second)
	sessionsAgree(t, first, second, "across restart")
}
