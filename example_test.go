package viewseeker_test

import (
	"fmt"
	"strings"

	"viewseeker"
)

// ExampleQuery shows the embedded SQL engine answering an analytic query
// against a CSV-loaded table.
func ExampleQuery() {
	csv := `city,amount
paris,10
paris,30
tokyo,5
tokyo,7
tokyo,9`
	table, err := viewseeker.ReadCSV("orders", strings.NewReader(csv))
	if err != nil {
		panic(err)
	}
	res, err := viewseeker.Query(table, "SELECT city, COUNT(*) AS n, SUM(amount) AS total FROM orders GROUP BY city ORDER BY city")
	if err != nil {
		panic(err)
	}
	for i := 0; i < res.NumRows(); i++ {
		row := res.Row(i)
		fmt.Printf("%s n=%s total=%s\n", row[0], row[1], row[2])
	}
	// Output:
	// paris n=2 total=40
	// tokyo n=3 total=21
}

// ExampleNew walks the minimal interactive loop: create a session over a
// table and a query, label a view, read the recommendation.
func ExampleNew() {
	csv := `kind,size,weight
a,1,10
a,2,11
a,3,12
b,4,90
b,5,91
b,6,92`
	table, err := viewseeker.ReadCSV("items", strings.NewReader(csv))
	if err != nil {
		panic(err)
	}
	if err := viewseeker.AssignRoles(table, []string{"kind"}, []string{"size", "weight"}); err != nil {
		panic(err)
	}
	s, err := viewseeker.New(table, "SELECT * FROM items WHERE kind = 'b'", viewseeker.Options{
		K:    1,
		Aggs: []string{"AVG"},
	})
	if err != nil {
		panic(err)
	}
	// The "user" loves the weight view and shrugs at the size view.
	for i := 0; i < 2; i++ {
		v, err := s.Next()
		if err != nil {
			panic(err)
		}
		label := 0.1
		if v.Spec.Measure == "weight" {
			label = 0.9
		}
		if err := s.Feedback(v.Index, label); err != nil {
			panic(err)
		}
	}
	fmt.Printf("%d candidate views, %d labelled\n", s.NumViews(), s.NumLabels())
	fmt.Printf("top view: %s\n", s.TopK()[0].Spec)
	// Output:
	// 2 candidate views, 2 labelled
	// top view: AVG(weight) BY kind
}

// ExampleSeeker_SQL exports a recommended view back to SQL.
func ExampleSeeker_SQL() {
	csv := `kind,v
x,1
y,2`
	table, _ := viewseeker.ReadCSV("t", strings.NewReader(csv))
	_ = viewseeker.AssignRoles(table, []string{"kind"}, []string{"v"})
	s, err := viewseeker.New(table, "SELECT * FROM t WHERE kind = 'x'", viewseeker.Options{Aggs: []string{"SUM"}})
	if err != nil {
		panic(err)
	}
	query, err := s.SQL(0)
	if err != nil {
		panic(err)
	}
	fmt.Println(query)
	// Output:
	// SELECT kind, SUM(v) AS val FROM t GROUP BY kind ORDER BY kind
}
