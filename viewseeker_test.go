package viewseeker

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"viewseeker/internal/dataset"
)

func facadeTable(t *testing.T) *Table {
	t.Helper()
	return dataset.GenerateDIAB(dataset.DIABConfig{Rows: 4000, Seed: 41})
}

func TestNewAndSessionLoop(t *testing.T) {
	table := facadeTable(t)
	s, err := New(table, "SELECT * FROM diab WHERE diag_group = 'diabetes'", Options{K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumViews() != 280 {
		t.Errorf("views = %d, want 280", s.NumViews())
	}
	if got := len(s.FeatureNames()); got != 8 {
		t.Errorf("features = %d", got)
	}
	if s.Target().NumRows() == 0 || s.Reference() != table {
		t.Error("tables wrong")
	}
	// Drive a few iterations with a deviation-loving user: label by EMD.
	emdIdx := -1
	for i, n := range s.FeatureNames() {
		if n == "EMD" {
			emdIdx = i
		}
	}
	if emdIdx < 0 {
		t.Fatal("no EMD feature")
	}
	// Ground truth: the user's interest is exactly the EMD feature,
	// normalised by the space maximum so labels stay in [0, 1] unclamped.
	emds := make([]float64, s.NumViews())
	maxEMD := 0.0
	for i := range emds {
		p, err := s.Pair(i)
		if err != nil {
			t.Fatal(err)
		}
		emds[i], _ = emdOf(p)
		if emds[i] > maxEMD {
			maxEMD = emds[i]
		}
	}
	for i := 0; i < 15; i++ {
		v, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Feedback(v.Index, emds[v.Index]/maxEMD); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumLabels() != 15 {
		t.Errorf("labels = %d", s.NumLabels())
	}
	top := s.TopK()
	if len(top) != 5 {
		t.Fatalf("topk = %d", len(top))
	}
	w, _ := s.Weights()
	if len(w) != 8 {
		t.Fatalf("weights = %v", w)
	}
	// The learned model must prefer high-EMD views: the recommended top-5
	// should carry more EMD than the space average. (Individual weights can
	// shift onto correlated features, so we check behaviour, not β.)
	var topEMD, allEMD float64
	for _, tv := range top {
		p, err := s.Pair(tv.Index)
		if err != nil {
			t.Fatal(err)
		}
		e, _ := emdOf(p)
		topEMD += e
	}
	topEMD /= float64(len(top))
	for i := 0; i < s.NumViews(); i++ {
		p, err := s.Pair(i)
		if err != nil {
			t.Fatal(err)
		}
		e, _ := emdOf(p)
		allEMD += e
	}
	allEMD /= float64(s.NumViews())
	if topEMD <= allEMD {
		t.Errorf("top-5 mean EMD %.3f not above space mean %.3f", topEMD, allEMD)
	}
	// TopK views should have high scores, sorted descending.
	for i := 1; i < len(top); i++ {
		if top[i-1].Score < top[i].Score {
			t.Error("topk not sorted")
		}
	}
}

func emdOf(p *Pair) (float64, error) {
	t := p.Target.Distribution()
	r := p.Reference.Distribution()
	d, c := 0.0, 0.0
	for i := range t {
		c += t[i] - r[i]
		if c < 0 {
			d -= c
		} else {
			d += c
		}
	}
	return d, nil
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, "SELECT 1", Options{}); err == nil {
		t.Error("nil table should fail")
	}
	table := facadeTable(t)
	if _, err := New(table, "not sql", Options{}); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := New(table, "SELECT * FROM diab WHERE race = 'Martian'", Options{}); err == nil {
		t.Error("empty DQ should fail")
	}
	if _, err := New(table, "SELECT * FROM diab WHERE diag_group = 'diabetes'", Options{Strategy: "psychic"}); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestOptionsStrategies(t *testing.T) {
	table := facadeTable(t)
	for _, strat := range []string{"uncertainty", "random", "committee", ""} {
		s, err := New(table, "SELECT * FROM diab WHERE diag_group = 'diabetes'", Options{Strategy: strat, K: 3, Seed: 2})
		if err != nil {
			t.Fatalf("strategy %q: %v", strat, err)
		}
		v, err := s.Next()
		if err != nil {
			t.Fatalf("strategy %q next: %v", strat, err)
		}
		if err := s.Feedback(v.Index, 0.9); err != nil {
			t.Fatalf("strategy %q feedback: %v", strat, err)
		}
	}
}

func TestAlphaPartialSession(t *testing.T) {
	table := facadeTable(t)
	s, err := New(table, "SELECT * FROM diab WHERE diag_group = 'diabetes'", Options{K: 5, Alpha: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := s.Next()
	if err := s.Feedback(v.Index, 0.7); err != nil {
		t.Fatal(err)
	}
	if s.NumLabels() != 1 {
		t.Error("label not recorded")
	}
}

func TestCustomFeatureOption(t *testing.T) {
	table := facadeTable(t)
	s, err := New(table, "SELECT * FROM diab WHERE diag_group = 'diabetes'", Options{
		ExtraFeatures: []Feature{{
			Name:    "TARGET_ROWS",
			Compute: func(p *Pair) (float64, error) { return p.Target.TotalCount(), nil },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.FeatureNames()); got != 9 {
		t.Errorf("features = %d, want 9", got)
	}
}

func TestRenderAndPair(t *testing.T) {
	table := facadeTable(t)
	s, err := New(table, "SELECT * FROM diab WHERE diag_group = 'diabetes'", Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Render(0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "target") {
		t.Errorf("render:\n%s", out)
	}
	if _, err := s.Pair(-1); err == nil {
		t.Error("out-of-range pair should fail")
	}
	if _, err := s.Pair(99999); err == nil {
		t.Error("out-of-range pair should fail")
	}
}

func TestQueryHelper(t *testing.T) {
	table := facadeTable(t)
	res, err := Query(table, "SELECT COUNT(*) AS n FROM diab")
	if err != nil {
		t.Fatal(err)
	}
	if res.Column("n").Ints[0] != 4000 {
		t.Errorf("count = %d", res.Column("n").Ints[0])
	}
}

func TestCSVRoundTripViaFacade(t *testing.T) {
	table := facadeTable(t)
	dir := t.TempDir()
	path := dir + "/diab.csv"
	if err := SaveCSV(table, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != table.NumRows() {
		t.Errorf("rows = %d, want %d", back.NumRows(), table.NumRows())
	}
	// Roles are not stored in CSV; reassign and rebuild a session.
	if err := AssignRoles(back, table.Schema.Dimensions(), table.Schema.Measures()); err != nil {
		t.Fatal(err)
	}
	if _, err := New(back, "SELECT * FROM diab WHERE diag_group = 'diabetes'", Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestStandardFeatureNames(t *testing.T) {
	names := StandardFeatureNames()
	if len(names) != 8 || names[0] != "KL" || names[7] != "P_VALUE" {
		t.Errorf("names = %v", names)
	}
}

func TestNextViewsExhaustion(t *testing.T) {
	// Tiny space: 1 dim × 1 measure × 1 agg = 1 view; label it, then Next
	// must report exhaustion.
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "d", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	tab := dataset.NewTable("tiny", schema)
	for i := 0; i < 10; i++ {
		tab.MustAppendRow(dataset.StringVal(string(rune('a'+i%2))), dataset.Float(float64(i)))
	}
	s, err := New(tab, "SELECT * FROM tiny WHERE d = 'a'", Options{Aggs: []string{"COUNT"}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Feedback(v.Index, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err == nil {
		t.Error("exhausted space should error on Next")
	}
	vs, err := s.NextViews()
	if err != nil || len(vs) != 0 {
		t.Errorf("NextViews after exhaustion = %v, %v", vs, err)
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	table := facadeTable(t)
	const query = "SELECT * FROM diab WHERE diag_group = 'diabetes'"
	s1, err := New(table, query, Options{K: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		v, err := s1.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := s1.Feedback(v.Index, float64(i)/5); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s1.Save(&buf); err != nil {
		t.Fatal(err)
	}

	s2, err := New(table, query, Options{K: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.NumLabels() != 5 {
		t.Fatalf("restored labels = %d", s2.NumLabels())
	}
	t1, t2 := s1.TopK(), s2.TopK()
	for i := range t1 {
		if t1[i].Index != t2[i].Index {
			t.Fatalf("restored recommendation differs at rank %d", i)
		}
	}
	// Corrupt input fails cleanly.
	s3, _ := New(table, query, Options{K: 5})
	if err := s3.Load(strings.NewReader("{not json")); err == nil {
		t.Error("corrupt session should fail to load")
	}
}

func TestTopKDiverse(t *testing.T) {
	table := facadeTable(t)
	s, err := New(table, "SELECT * FROM diab WHERE diag_group = 'diabetes'", Options{K: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		v, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Feedback(v.Index, float64(i%2)); err != nil {
			t.Fatal(err)
		}
	}
	plain := s.TopK()
	same, err := s.TopKDiverse(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].Index != same[i].Index {
			t.Fatalf("lambda=1 must reproduce TopK")
		}
	}
	diverse, err := s.TopKDiverse(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(diverse) != len(plain) {
		t.Fatalf("diverse topk length = %d", len(diverse))
	}
	if _, err := s.TopKDiverse(-1); err == nil {
		t.Error("bad lambda should fail")
	}
}

func TestFacadeSQL(t *testing.T) {
	table := facadeTable(t)
	s, err := New(table, "SELECT * FROM diab WHERE diag_group = 'diabetes'", Options{})
	if err != nil {
		t.Fatal(err)
	}
	query, err := s.SQL(0)
	if err != nil {
		t.Fatal(err)
	}
	// The exported SQL must run on the engine against the same table.
	if _, err := Query(table, query); err != nil {
		t.Fatalf("exported SQL %q does not execute: %v", query, err)
	}
	if _, err := s.SQL(-1); err == nil {
		t.Error("out-of-range SQL should fail")
	}
}

func TestQuadraticOptionLearnsProductUtility(t *testing.T) {
	table := facadeTable(t)
	const query = "SELECT * FROM diab WHERE diag_group = 'diabetes'"
	// Hidden utility: KL·EMD — outside Eq. 4's linear family.
	target := func(s *Seeker, idx int) float64 {
		p, err := s.Pair(idx)
		if err != nil {
			t.Fatal(err)
		}
		e, _ := emdOf(p)
		kl := klOf(p)
		return e * kl
	}
	run := func(quadratic bool) float64 {
		s, err := New(table, query, Options{K: 10, Seed: 3, Quadratic: quadratic})
		if err != nil {
			t.Fatal(err)
		}
		// Normalise labels by the max product over the space.
		maxT := 0.0
		truths := make([]float64, s.NumViews())
		for i := range truths {
			truths[i] = target(s, i)
			if truths[i] > maxT {
				maxT = truths[i]
			}
		}
		for i := 0; i < 25; i++ {
			v, err := s.Next()
			if err != nil {
				break
			}
			if err := s.Feedback(v.Index, truths[v.Index]/maxT); err != nil {
				t.Fatal(err)
			}
		}
		// Tie-aware top-10 hits against the true product utility.
		pred := s.TopK()
		sorted := append([]float64(nil), truths...)
		sort.Float64s(sorted)
		threshold := sorted[len(sorted)-10]
		hits := 0
		for _, v := range pred {
			if truths[v.Index] >= threshold-1e-9 {
				hits++
			}
		}
		return float64(hits) / 10
	}
	quad := run(true)
	if quad < 0.9 {
		t.Errorf("quadratic session precision = %.2f, want ≥ 0.9", quad)
	}
}

func klOf(p *Pair) float64 {
	tgt := p.Target.Distribution()
	ref := p.Reference.Distribution()
	d := 0.0
	for i := range tgt {
		if tgt[i] <= 0 {
			continue
		}
		q := ref[i]
		if q < 1e-9 {
			q = 1e-9
		}
		d += tgt[i] * math.Log(tgt[i]/q)
	}
	if d < 0 {
		return 0
	}
	return d
}

func TestStaticTopK(t *testing.T) {
	table := facadeTable(t)
	const query = "SELECT * FROM diab WHERE diag_group = 'diabetes'"
	top, err := StaticTopK(table, query, "EMD", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("topk = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Score < top[i].Score {
			t.Error("static topk not sorted by feature score")
		}
	}
	if top[0].Score <= 0 {
		t.Errorf("best EMD = %v, want > 0", top[0].Score)
	}
	if _, err := StaticTopK(table, query, "NOT_A_FEATURE", 5); err == nil {
		t.Error("unknown feature should fail")
	}
	if _, err := StaticTopK(table, "SELECT * FROM diab WHERE race = 'X'", "EMD", 5); err == nil {
		t.Error("empty DQ should fail")
	}
}
