// Package viewseeker is an interactive view recommendation library: given
// a dataset and a query that selects the subset a user is exploring, it
// enumerates every (dimension, measure, aggregate) view, learns the user's
// utility function from simple 0–1 interest labels via active learning,
// and recommends the top-k views — a Go implementation of the ViewSeeker
// system (Zhang, Ge, Chrysanthis, Sharaf; EDBT/ICDT BigVis 2019).
//
// Typical use:
//
//	table, _ := viewseeker.LoadCSV("patients.csv")
//	viewseeker.AssignRoles(table, dims, measures)
//	s, _ := viewseeker.New(table, "SELECT * FROM patients WHERE age > 80", viewseeker.Options{K: 5})
//	for !satisfied {
//		v, _ := s.Next()
//		s.Feedback(v.Index, askUser(s.Render(v.Index)))
//		show(s.TopK())
//	}
package viewseeker

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"viewseeker/internal/active"
	"viewseeker/internal/core"
	"viewseeker/internal/dataset"
	"viewseeker/internal/diversify"
	"viewseeker/internal/explain"
	"viewseeker/internal/feature"
	"viewseeker/internal/obs"
	"viewseeker/internal/sql"
	"viewseeker/internal/store"
	"viewseeker/internal/view"
)

// Re-exported substrate types. Aliases keep one canonical implementation
// in the internal packages while letting library users name the types.
type (
	// Table is an in-memory columnar table with dimension/measure roles.
	Table = dataset.Table
	// Schema describes a table's columns.
	Schema = dataset.Schema
	// ColumnDef describes one column.
	ColumnDef = dataset.ColumnDef
	// Value is the dynamically typed scalar used at row level.
	Value = dataset.Value
	// Spec identifies one view: (dimension, measure, aggregate, bins).
	Spec = view.Spec
	// Pair is a target view with its aligned reference view.
	Pair = view.Pair
	// Histogram is one executed view.
	Histogram = view.Histogram
	// Feature is one utility component, for custom registrations.
	Feature = feature.Feature
	// Catalog maps table names to tables for SQL access.
	Catalog = sql.Catalog
	// Cache is a content-addressed store of offline-phase results (view
	// space plus feature matrix), shared across sessions via Options.Cache.
	Cache = store.Cache
)

// NewCache returns an in-memory offline-result cache holding at most
// capacity entries (<= 0 selects the default).
func NewCache(capacity int) *Cache { return store.NewCache(capacity) }

// OpenCache returns an offline-result cache whose entries are additionally
// snapshotted under dir, so a restarted process warms from disk.
func OpenCache(dir string, capacity int) (*Cache, error) { return store.Open(dir, capacity) }

// HashTable returns the content hash of a table as used by the offline
// cache's fingerprints. Callers that host long-lived immutable tables (the
// HTTP server does) can compute it once and pass it via Options.RefHash so
// that every warm session skips rehashing the full dataset.
func HashTable(t *Table) string { return store.HashTable(t) }

// Role constants for AssignRoles.
const (
	RoleDimension = dataset.RoleDimension
	RoleMeasure   = dataset.RoleMeasure
)

// LoadCSV reads a CSV file into a table (kinds inferred from the data).
// When a .schema.json sidecar written by SaveCSVWithSchema sits next to
// the file, its dimension/measure roles are applied automatically.
func LoadCSV(path string) (*Table, error) { return dataset.ReadCSVWithSchema(path) }

// SaveCSVWithSchema writes a table to CSV plus a .schema.json sidecar
// preserving its dimension/measure roles, so LoadCSV round-trips fully.
func SaveCSVWithSchema(t *Table, path string) error { return dataset.WriteCSVWithSchema(t, path) }

// ReadCSV reads CSV from a reader into a table named name.
func ReadCSV(name string, r io.Reader) (*Table, error) { return dataset.ReadCSV(name, r) }

// SaveCSV writes a table to a CSV file.
func SaveCSV(t *Table, path string) error { return dataset.WriteCSVFile(t, path) }

// AssignRoles marks columns as dimensions and measures; only such columns
// enter the view space.
func AssignRoles(t *Table, dims, measures []string) error {
	return dataset.AssignRoles(t, dims, measures)
}

// NewCatalog returns an empty SQL catalog.
func NewCatalog() *Catalog { return sql.NewCatalog() }

// Query runs one SQL statement against a single table.
func Query(t *Table, query string) (*Table, error) {
	c := sql.NewCatalog()
	c.Register(t)
	return c.Query(query)
}

// StandardFeatureNames returns the eight built-in utility feature names in
// their canonical order: KL, EMD, L1, L2, MAX_DIFF, USABILITY, ACCURACY,
// P_VALUE.
func StandardFeatureNames() []string { return feature.StandardRegistry().Names() }

// StaticTopK is the classical one-shot recommender ViewSeeker improves on
// (SeeDB-style): it ranks every view by a single fixed utility feature —
// no interaction, no learning — and returns the top k. It exists both as
// a baseline for comparisons and for callers who already know their
// utility function. featureName is one of StandardFeatureNames.
func StaticTopK(table *Table, query, featureName string, k int) ([]View, error) {
	if k <= 0 {
		k = 10
	}
	target, err := Query(table, query)
	if err != nil {
		return nil, fmt.Errorf("viewseeker: exploration query: %w", err)
	}
	if target.NumRows() == 0 {
		return nil, fmt.Errorf("viewseeker: exploration query selected no rows")
	}
	target.Name = table.Name + "_dq"
	gen, err := view.NewGenerator(table, target, view.SpaceConfig{})
	if err != nil {
		return nil, err
	}
	registry := feature.StandardRegistry()
	fi := registry.Index(featureName)
	if fi < 0 {
		return nil, fmt.Errorf("viewseeker: unknown utility feature %q (want one of %v)",
			featureName, registry.Names())
	}
	matrix, err := feature.Compute(gen, registry)
	if err != nil {
		return nil, err
	}
	type scored struct {
		idx   int
		score float64
	}
	ss := make([]scored, matrix.Len())
	for i, row := range matrix.Rows {
		ss[i] = scored{i, row[fi]}
	}
	sort.SliceStable(ss, func(a, b int) bool {
		if ss[a].score != ss[b].score {
			return ss[a].score > ss[b].score
		}
		return ss[a].idx < ss[b].idx
	})
	if k > len(ss) {
		k = len(ss)
	}
	out := make([]View, k)
	for i := 0; i < k; i++ {
		out[i] = View{Index: ss[i].idx, Spec: gen.Specs()[ss[i].idx], Score: ss[i].score}
	}
	return out, nil
}

// Options configures a Seeker. The zero value follows the paper's testbed
// (Table 1) defaults.
type Options struct {
	// K is the recommendation size (default 10).
	K int
	// M is how many views each iteration presents (default 1).
	M int
	// Aggs overrides the aggregate set (default COUNT/SUM/AVG/MIN/MAX).
	Aggs []string
	// BinCounts are the bin configurations for numeric dimensions
	// (default {4}; the paper's SYN testbed uses {3, 4}).
	BinCounts []int
	// EqualDepth switches numeric dimensions to equal-depth (quantile)
	// binning, which keeps skewed dimensions readable.
	EqualDepth bool
	// Alpha < 1 enables the optimisation: the offline pass computes
	// utility features on an Alpha fraction of the data and refines
	// incrementally during the session (default 1 = exact).
	Alpha float64
	// Strategy names the main-phase query strategy: "uncertainty"
	// (default), "random", "committee" or "density".
	Strategy string
	// Seed drives the strategy's and cold start's randomness.
	Seed int64
	// ExtraFeatures appends custom utility components to the standard
	// eight (Section 3.1: "users may customise the utility features").
	ExtraFeatures []Feature
	// Quadratic additionally registers all pairwise products of the base
	// features (standard + extra), letting the linear estimator capture
	// multiplicative utility functions such as u* = EMD·KL that Eq. 4's
	// linear form cannot represent. It grows the feature count from n to
	// n + n(n+1)/2.
	Quadratic bool
	// Workers bounds the parallelism of the offline phase (layout scans
	// and per-view feature vectors) and of per-iteration incremental
	// refinement. ≤ 0 selects runtime.NumCPU(); 1 forces the sequential
	// path, which is required when ExtraFeatures closures are not safe for
	// concurrent use. Results are bit-identical across worker counts.
	Workers int
	// Cache, when non-nil, consults and fills the offline-result store: a
	// session whose fingerprint — table contents, query result contents,
	// Alpha, feature names, aggregate and bin configuration — is already
	// cached skips the offline feature pass entirely (CacheHit reports
	// which path was taken). Note that ExtraFeatures participate in the
	// fingerprint by name only: registering two different computations
	// under one name aliases their cache entries.
	Cache *Cache
	// RefHash optionally supplies a precomputed HashTable of the reference
	// table, sparing the cache lookup a full pass over the dataset. Only
	// set it for tables that have not changed since the hash was taken: a
	// stale value addresses the wrong cache entries and silently serves
	// another dataset's view space. Ignored when Cache is nil.
	RefHash string
	// RefineHook, when non-nil, is called once per feature row the
	// incremental refiner refreshes (with the view index). It only fires
	// for α-sampled sessions, runs on the refinement worker goroutines
	// (make it concurrency-safe unless Workers == 1), and exists so that
	// cancellation tests and latency instrumentation can observe the
	// refinement work a request triggers.
	RefineHook func(viewIdx int)
	// DriftThreshold governs Maintained.Advance's automatic layout re-fit:
	// when the cumulative out-of-range rate of any pinned bin layout —
	// appended values a layout cannot place, tracked per layout across
	// appends — reaches it, Advance rebuilds the offline state from
	// scratch, re-fitting every layout to the current data. 0 selects
	// DefaultDriftThreshold; negative disables drift rebuilds (stale
	// layouts keep dropping escaped values into bin -1 forever). Only
	// Maintain reads it.
	DriftThreshold float64
}

// DefaultDriftThreshold is the fraction of appended values escaping a
// pinned bin layout that triggers an automatic re-fit (Options.
// DriftThreshold = 0). A quarter of new data outside the histograms means
// the maintained scans have stopped representing the live distribution.
const DefaultDriftThreshold = 0.25

// View is one recommended or presented view with its current score.
type View struct {
	Index int
	Spec  Spec
	Score float64
}

// Seeker is an interactive recommendation session over one dataset and
// one exploration query.
type Seeker struct {
	ref      *Table
	target   *Table
	specs    []Spec
	registry *feature.Registry
	matrix   *feature.Matrix
	inner    *core.Seeker
	cacheHit bool

	// sharedOffline marks sessions minted from a maintained offline state
	// (Maintained.NewSession*): their target, generator and matrix row
	// contents are shared read-only with the maintainer, so MemoryBytes
	// accounts only the per-session slivers — and the server must never
	// evict them, because their offline state advances with the live
	// table and cannot be replayed bit-identically from the journal.
	sharedOffline bool

	// memTarget caches the one-time target-table estimate: the target is
	// immutable for the session's lifetime and string columns make the
	// walk O(rows).
	memTargetOnce sync.Once
	memTarget     int64

	// The generator is built lazily on an exact cache hit: recommendation
	// needs only the cached matrix, so warm sessions defer the layout
	// scans until something actually executes a view (Pair, Render, SQL).
	spaceCfg view.SpaceConfig
	genOnce  sync.Once
	gen      *view.Generator
	genErr   error
}

// generator returns the session's view generator, building it on first
// use when the session was warmed from the cache.
func (s *Seeker) generator() (*view.Generator, error) {
	s.genOnce.Do(func() {
		if s.gen != nil {
			return
		}
		s.gen, s.genErr = view.NewGenerator(s.ref, s.target, s.spaceCfg)
	})
	return s.gen, s.genErr
}

// buildRegistry assembles one session's feature registry from the options.
func buildRegistry(opts Options) (*feature.Registry, error) {
	registry := feature.StandardRegistry()
	for _, f := range opts.ExtraFeatures {
		if err := registry.Add(f); err != nil {
			return nil, err
		}
	}
	if opts.Quadratic {
		if err := feature.AddQuadratic(registry); err != nil {
			return nil, err
		}
	}
	return registry, nil
}

func normalizeAlpha(a float64) float64 {
	if a <= 0 || a > 1 {
		return 1
	}
	return a
}

// runExplorationQuery executes the session's query and names the subset.
// The context carries only instrumentation (the query executes in-memory
// and is not cancellable mid-scan).
func runExplorationQuery(ctx context.Context, table *Table, query string) (*Table, error) {
	_, span := obs.StartSpan(ctx, "offline.query")
	defer span.End()
	start := time.Now()
	target, err := Query(table, query)
	if err != nil {
		return nil, fmt.Errorf("viewseeker: exploration query: %w", err)
	}
	if target.NumRows() == 0 {
		return nil, fmt.Errorf("viewseeker: exploration query selected no rows")
	}
	obs.RegistryFrom(ctx).Histogram("viewseeker_offline_query_seconds", obs.DurationBuckets).
		ObserveDuration(time.Since(start))
	target.Name = table.Name + "_dq"
	return target, nil
}

// New builds a session: query carves the exploration subset DQ out of the
// table, the view space is enumerated over the table's dimension/measure
// roles, and the offline feature pass runs (on an α-sample when
// Options.Alpha < 1).
//
// With Options.Cache set, the session is first looked up by (reference
// contents, query text, configuration); such entries carry the serialised
// target subset alongside the matrix, so a warm start skips query
// execution as well as the offline pass.
func New(table *Table, query string, opts Options) (*Seeker, error) {
	return NewCtx(context.Background(), table, query, opts)
}

// NewCtx is New under a context: the offline feature pass — the dominant
// cost of session construction — checks for cancellation between work
// items (layout scans, per-view feature vectors), so a disconnected client
// or an expired deadline stops the scan within one item per worker instead
// of burning cores on a session nobody is waiting for. A cancelled
// construction returns the context's error and no session; the shared
// cache is never filled with partial results.
func NewCtx(ctx context.Context, table *Table, query string, opts Options) (*Seeker, error) {
	if table == nil {
		return nil, fmt.Errorf("viewseeker: nil table")
	}
	// The offline umbrella span: everything below — query execution, cache
	// probes, layout warming, the feature pass — nests under it when the
	// context carries a tracer.
	ctx, span := obs.StartSpan(ctx, "offline")
	defer span.End()
	if opts.Cache == nil {
		target, err := runExplorationQuery(ctx, table, query)
		if err != nil {
			return nil, err
		}
		return NewFromTablesCtx(ctx, table, target, opts)
	}
	registry, err := buildRegistry(opts)
	if err != nil {
		return nil, err
	}
	spaceCfg := view.SpaceConfig{
		Aggs: opts.Aggs, BinCounts: opts.BinCounts, EqualDepth: opts.EqualDepth,
	}.Normalized()
	alpha := normalizeAlpha(opts.Alpha)
	if opts.RefHash == "" {
		opts.RefHash = store.HashTable(table)
	}
	queryFP := store.Key{
		RefHash: opts.RefHash, Query: query, Alpha: alpha,
		Features: registry.Names(), Aggs: spaceCfg.Aggs,
		BinCounts: spaceCfg.BinCounts, EqualDepth: spaceCfg.EqualDepth,
	}.Fingerprint()
	if res, ok := opts.Cache.Get(queryFP); ok && len(res.Target) > 0 {
		if target, derr := dataset.ReadBinary(bytes.NewReader(res.Target)); derr == nil && target.NumRows() > 0 {
			if s, berr := buildFromCached(table, target, opts, registry, spaceCfg, alpha, res); berr == nil {
				obs.RegistryFrom(ctx).Counter(`viewseeker_offline_sessions_total{result="warm"}`).Inc()
				return s, nil
			}
		}
		// An undecodable or mismatched entry degrades to recomputation.
	}
	target, err := runExplorationQuery(ctx, table, query)
	if err != nil {
		return nil, err
	}
	s, err := NewFromTablesCtx(ctx, table, target, opts) // fills the content-addressed entry
	if err != nil {
		return nil, err
	}
	// Index the result under the query too, with the target attached, so
	// the next session over this (table, query) skips the query as well.
	var buf bytes.Buffer
	if err := dataset.WriteBinary(target, &buf); err == nil {
		_ = opts.Cache.Put(queryFP, &store.OfflineResult{
			Specs: s.matrix.Specs, Names: s.matrix.Names, Rows: s.matrix.Rows,
			Exact: s.matrix.Exact, Target: buf.Bytes(),
		})
	}
	return s, nil
}

// NewFromTables builds a session from an explicit reference table and
// target subset (for callers that produce DQ by other means). Cache
// entries on this path are addressed by the target subset's contents, so
// textually different queries selecting the same rows share them.
func NewFromTables(ref, target *Table, opts Options) (*Seeker, error) {
	return NewFromTablesCtx(context.Background(), ref, target, opts)
}

// NewFromTablesCtx is NewFromTables under a context, with NewCtx's
// cancellation semantics.
func NewFromTablesCtx(ctx context.Context, ref, target *Table, opts Options) (*Seeker, error) {
	if ref == nil || target == nil {
		return nil, fmt.Errorf("viewseeker: nil table")
	}
	spaceCfg := view.SpaceConfig{
		Aggs: opts.Aggs, BinCounts: opts.BinCounts, EqualDepth: opts.EqualDepth,
	}.Normalized()
	registry, err := buildRegistry(opts)
	if err != nil {
		return nil, err
	}
	alpha := normalizeAlpha(opts.Alpha)
	withRefinement := alpha < 1

	// The offline-result cache is addressed by a fingerprint of everything
	// the matrix depends on; hashing both tables is one pass over their
	// columns — noise next to the feature computation a hit skips.
	var fingerprint string
	if opts.Cache != nil {
		refHash := opts.RefHash
		if refHash == "" {
			refHash = store.HashTable(ref)
		}
		fingerprint = store.Key{
			RefHash:    refHash,
			TargetHash: store.HashTable(target),
			Alpha:      alpha,
			Features:   registry.Names(),
			Aggs:       spaceCfg.Aggs,
			BinCounts:  spaceCfg.BinCounts,
			EqualDepth: spaceCfg.EqualDepth,
		}.Fingerprint()
		if res, ok := opts.Cache.Get(fingerprint); ok {
			if s, berr := buildFromCached(ref, target, opts, registry, spaceCfg, alpha, res); berr == nil {
				obs.RegistryFrom(ctx).Counter(`viewseeker_offline_sessions_total{result="warm"}`).Inc()
				return s, nil
			}
			// A rebuild error means the entry does not fit this session
			// (fingerprint collision or corruption): fall through and
			// recompute rather than fail.
		}
	}
	gen, err := view.NewGenerator(ref, target, spaceCfg)
	if err != nil {
		return nil, err
	}
	var matrix *feature.Matrix
	if withRefinement {
		matrix, err = feature.ComputePartialWorkersCtx(ctx, gen, registry, alpha, opts.Workers)
	} else {
		matrix, err = feature.ComputeWorkersCtx(ctx, gen, registry, opts.Workers)
	}
	if err != nil {
		return nil, err
	}
	obs.RegistryFrom(ctx).Counter(`viewseeker_offline_sessions_total{result="cold"}`).Inc()
	if opts.Cache != nil {
		// Best-effort fill: a failed snapshot write degrades the cache
		// to memory-only, it never fails the session.
		_ = opts.Cache.Put(fingerprint, &store.OfflineResult{
			Specs: matrix.Specs, Names: matrix.Names, Rows: matrix.Rows, Exact: matrix.Exact,
		})
	}
	return finishSession(ref, target, opts, registry, spaceCfg, matrix, gen, false, withRefinement)
}

// buildFromCached assembles a session from a cached offline result. An
// α-sampled result still refines during the session, which needs the
// generator up front; an exact one defers the layout scans until a view
// actually executes.
func buildFromCached(ref, target *Table, opts Options, registry *feature.Registry, spaceCfg view.SpaceConfig, alpha float64, res *store.OfflineResult) (*Seeker, error) {
	var gen *view.Generator
	var err error
	if !res.AllExact() {
		gen, err = view.NewGenerator(ref, target, spaceCfg)
		if err != nil {
			return nil, err
		}
	}
	matrix, err := feature.Rebuild(gen, registry, res.Specs, res.Rows, res.Exact)
	if err != nil {
		return nil, err
	}
	return finishSession(ref, target, opts, registry, spaceCfg, matrix, gen, true, alpha < 1)
}

// finishSession wires the shared tail of every construction path: the
// query strategy, the core estimator, and the Seeker itself.
func finishSession(ref, target *Table, opts Options, registry *feature.Registry, spaceCfg view.SpaceConfig, matrix *feature.Matrix, gen *view.Generator, cacheHit, withRefinement bool) (*Seeker, error) {
	var strategy active.Strategy
	switch opts.Strategy {
	case "", "uncertainty":
		strategy = &active.Uncertainty{}
	case "random":
		strategy = &active.Random{Seed: opts.Seed}
	case "committee":
		strategy = &active.Committee{Seed: opts.Seed}
	case "density":
		strategy = &active.DensityWeighted{}
	default:
		return nil, fmt.Errorf("viewseeker: unknown strategy %q", opts.Strategy)
	}
	inner, err := core.NewSeeker(matrix, core.Config{
		K: opts.K, M: opts.M, Strategy: strategy, ColdStartSeed: opts.Seed,
		Workers: opts.Workers, RefineHook: opts.RefineHook,
	}, withRefinement)
	if err != nil {
		return nil, err
	}
	return &Seeker{
		ref: ref, target: target, specs: matrix.Specs, registry: registry,
		matrix: matrix, inner: inner, cacheHit: cacheHit, spaceCfg: spaceCfg, gen: gen,
	}, nil
}

// CacheHit reports whether this session's offline phase was served from
// Options.Cache instead of being computed.
func (s *Seeker) CacheHit() bool { return s.cacheHit }

// SharedOffline reports whether this session shares its offline state
// (target, generator, matrix row contents) read-only with a maintained
// live-table state (Maintained.NewSession*). Such sessions cannot be
// rebuilt bit-identically from the journal once the maintained state
// advances, so the server's session manager pins them resident instead of
// evicting them.
func (s *Seeker) SharedOffline() bool { return s.sharedOffline }

// sessionOverheadBytes is the fixed per-session charge in MemoryBytes: the
// struct headers, small maps and slices the itemised estimates below do
// not walk (seeker, registry, strategy, refiner bookkeeping).
const sessionOverheadBytes = 16 << 10

// MemoryBytes estimates the session's resident heap bytes — the quantity
// the server's eviction budget (-session-budget-bytes) accounts per
// session (DESIGN.md §16). It sums the target subset's columns, the
// feature matrix, the view generator's scan caches (once built; the
// estimate grows as views are rendered) and the estimator state, plus a
// fixed overhead constant; the reference table is excluded because it is
// shared across every session on it. Sessions minted from a maintained
// offline state (SharedOffline) count only their per-session slivers.
//
// The result is an estimate of the dominant allocations, not a heap
// census; cmd/loadgen plus the viewseeker_session_resident_bytes gauge
// calibrate it against real RSS (README "Scaling & capacity planning").
// Call it under the same serialisation as the session's other operations
// — it reads the lazily built generator.
func (s *Seeker) MemoryBytes() int64 {
	b := int64(sessionOverheadBytes) + s.inner.MemoryBytes()
	if s.sharedOffline {
		return b + s.matrix.MemoryBytesShallow()
	}
	b += s.matrix.MemoryBytes()
	s.memTargetOnce.Do(func() { s.memTarget = s.target.MemoryBytes() })
	b += s.memTarget
	if s.gen != nil {
		b += s.gen.MemoryBytes()
	}
	return b
}

// Reference returns the full dataset DR.
func (s *Seeker) Reference() *Table { return s.ref }

// Target returns the exploration subset DQ.
func (s *Seeker) Target() *Table { return s.target }

// NumViews returns the view-space size.
func (s *Seeker) NumViews() int { return s.matrix.Len() }

// Specs returns the enumerated view space.
func (s *Seeker) Specs() []Spec { return s.specs }

// FeatureNames returns the active utility feature names, in weight order.
func (s *Seeker) FeatureNames() []string { return s.registry.Names() }

// Next returns the single next view to label. It is a convenience wrapper
// around NextViews for the default M = 1.
func (s *Seeker) Next() (View, error) {
	vs, err := s.NextViews()
	if err != nil {
		return View{}, err
	}
	if len(vs) == 0 {
		return View{}, fmt.Errorf("viewseeker: every view is labelled")
	}
	return vs[0], nil
}

// NextViews returns the next batch of views to label (cold start first,
// then the configured query strategy). Empty when everything is labelled.
func (s *Seeker) NextViews() ([]View, error) {
	return s.NextViewsCtx(context.Background())
}

// NextViewsCtx is NextViews with the selection timed against the context's
// observability registry and tracer (see internal/obs); selection itself
// is pure in-memory ranking and does not block on the context.
func (s *Seeker) NextViewsCtx(ctx context.Context) ([]View, error) {
	idxs, err := s.inner.NextViewsCtx(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]View, len(idxs))
	for i, idx := range idxs {
		out[i] = s.viewAt(idx)
	}
	return out, nil
}

func (s *Seeker) viewAt(idx int) View {
	return View{Index: idx, Spec: s.specs[idx], Score: s.inner.Predict(idx)}
}

// Feedback records the user's 0–1 interest label for a view and refits
// the utility estimator.
func (s *Seeker) Feedback(index int, label float64) error {
	return s.inner.Feedback(index, label)
}

// FeedbackCtx is Feedback under a context: cancellation aborts only the
// optional incremental refinement (a done context on entry records
// nothing); the label and the estimator refit always land together, so the
// session never holds a half-applied label. See core.Seeker.FeedbackCtx.
func (s *Seeker) FeedbackCtx(ctx context.Context, index int, label float64) error {
	return s.inner.FeedbackCtx(ctx, index, label)
}

// NumLabels returns how many labels have been given.
func (s *Seeker) NumLabels() int { return s.inner.NumLabels() }

// TopK returns the current top-k recommendation, best first.
func (s *Seeker) TopK() []View {
	idxs := s.inner.TopK()
	out := make([]View, len(idxs))
	for i, idx := range idxs {
		out[i] = s.viewAt(idx)
	}
	return out
}

// TopKDiverse returns a diversity-aware top-k (DiVE-style): views are
// selected by Maximal Marginal Relevance, trading predicted utility
// against similarity to already-selected views. lambda = 1 reproduces
// TopK; lower values diversify harder.
func (s *Seeker) TopKDiverse(lambda float64) ([]View, error) {
	scores := make([]float64, s.NumViews())
	for i := range scores {
		scores[i] = s.inner.Predict(i)
	}
	k := len(s.inner.TopK())
	idxs, err := diversify.MMR(scores, s.matrix.Rows, k, lambda)
	if err != nil {
		return nil, err
	}
	out := make([]View, len(idxs))
	for i, idx := range idxs {
		out[i] = s.viewAt(idx)
	}
	return out, nil
}

// Score returns the estimator's current utility prediction for one view.
func (s *Seeker) Score(index int) float64 { return s.inner.Predict(index) }

// SQL returns the GROUP BY query that computes one view over the
// reference table — handy for exporting recommendations to other tools.
func (s *Seeker) SQL(index int) (string, error) {
	if index < 0 || index >= s.NumViews() {
		return "", fmt.Errorf("viewseeker: view %d out of range [0, %d)", index, s.NumViews())
	}
	gen, err := s.generator()
	if err != nil {
		return "", err
	}
	spec := s.specs[index]
	return spec.SQL(s.ref.Name, gen.Layout(spec)), nil
}

// Weights returns the learned utility-function composition: feature name →
// weight (Eq. 4), plus the intercept. Empty before the first feedback.
func (s *Seeker) Weights() (map[string]float64, float64) {
	w, b := s.inner.Weights()
	if w == nil {
		return nil, 0
	}
	out := make(map[string]float64, len(w))
	for i, name := range s.registry.Names() {
		out[name] = w[i]
	}
	return out, b
}

// Save writes the session's labelling history as JSON. Together with the
// same table, query and options, it reconstructs the session exactly (the
// estimators are deterministic functions of the labels).
func (s *Seeker) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(s.inner.State())
}

// Load replays a saved session into this (fresh) one.
func (s *Seeker) Load(r io.Reader) error {
	var st core.SessionState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("viewseeker: decoding session: %w", err)
	}
	return s.inner.Restore(st)
}

// Pair executes one view's target/reference histogram pair on the full
// data (for rendering or custom analysis).
func (s *Seeker) Pair(index int) (*Pair, error) {
	if index < 0 || index >= s.NumViews() {
		return nil, fmt.Errorf("viewseeker: view %d out of range [0, %d)", index, s.NumViews())
	}
	gen, err := s.generator()
	if err != nil {
		return nil, err
	}
	return gen.Pair(s.specs[index])
}

// Render returns an ASCII rendering of one view's target vs reference bar
// charts.
func (s *Seeker) Render(index int) (string, error) {
	p, err := s.Pair(index)
	if err != nil {
		return "", err
	}
	return p.Render(0), nil
}

// Explain returns a short, ranked plain-text explanation of what makes one
// view notable (outstanding bars, trend reversals, statistical
// significance), up to max bullet points (0 = all).
func (s *Seeker) Explain(index, max int) (string, error) {
	p, err := s.Pair(index)
	if err != nil {
		return "", err
	}
	return explain.Summarize(p, max)
}
