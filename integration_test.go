package viewseeker_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"viewseeker"
	"viewseeker/internal/dataset"
)

// TestEndToEndWorkflow spans the whole product surface in one realistic
// journey: generate data, persist it as CSV + schema sidecar, reload it,
// explore it with SQL (including EXPLAIN), run an interactive session to
// convergence against a scripted taste, consult explanations and exported
// SQL for the winners, save the session, and resume it in a fresh
// process-equivalent session.
func TestEndToEndWorkflow(t *testing.T) {
	dir := t.TempDir()

	// 1. Generate and persist.
	original := dataset.GenerateDIAB(dataset.DIABConfig{Rows: 5000, Seed: 99})
	csvPath := filepath.Join(dir, "patients.csv")
	if err := viewseeker.SaveCSVWithSchema(original, csvPath); err != nil {
		t.Fatal(err)
	}

	// 2. Reload: roles must survive.
	table, err := viewseeker.LoadCSV(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Schema.Dimensions()) != 7 || len(table.Schema.Measures()) != 8 {
		t.Fatalf("roles lost: %v / %v", table.Schema.Dimensions(), table.Schema.Measures())
	}

	// 3. Ad-hoc SQL over the reloaded table.
	res, err := viewseeker.Query(table, "SELECT COUNT(*) AS n FROM diab WHERE diag_group = 'diabetes'")
	if err != nil {
		t.Fatal(err)
	}
	dqRows := res.Column("n").Ints[0]
	if dqRows == 0 {
		t.Fatal("no diabetic rows")
	}
	plan, err := viewseeker.Query(table, "EXPLAIN SELECT diag_group, COUNT(*) FROM diab GROUP BY diag_group")
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumRows() != 1 {
		t.Fatalf("plan rows = %d, want one JSON document", plan.NumRows())
	}
	var planDoc map[string]any
	if err := json.Unmarshal([]byte(plan.Column("plan").Strs[0]), &planDoc); err != nil {
		t.Fatalf("EXPLAIN output is not JSON: %v", err)
	}
	if !strings.Contains(plan.Column("plan").Strs[0], `"op": "aggregate"`) {
		t.Fatal("plan missing aggregate operator")
	}

	// 4. Interactive session against a scripted taste (max per-bin
	// deviation), to convergence of its own top-3.
	const query = "SELECT * FROM diab WHERE diag_group = 'diabetes'"
	s, err := viewseeker.New(table, query, viewseeker.Options{K: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if int64(s.Target().NumRows()) != dqRows {
		t.Fatalf("session DQ = %d rows, SQL says %d", s.Target().NumRows(), dqRows)
	}
	taste := func(idx int) float64 {
		p, err := s.Pair(idx)
		if err != nil {
			t.Fatal(err)
		}
		td, rd := p.Target.Distribution(), p.Reference.Distribution()
		m := 0.0
		for i := range td {
			d := td[i] - rd[i]
			if d < 0 {
				d = -d
			}
			if d > m {
				m = d
			}
		}
		return m
	}
	for i := 0; i < 12; i++ {
		v, err := s.Next()
		if err != nil {
			break
		}
		if err := s.Feedback(v.Index, taste(v.Index)); err != nil {
			t.Fatal(err)
		}
	}
	top := s.TopK()
	if len(top) != 3 {
		t.Fatalf("topk = %d", len(top))
	}
	// The recommendation must actually be high-deviation.
	if taste(top[0].Index) < 0.5 {
		t.Errorf("top view deviation = %.2f, expected a strong deviation view", taste(top[0].Index))
	}

	// 5. Explanations and exported SQL for the winner.
	why, err := s.Explain(top[0].Index, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(why, "- ") {
		t.Errorf("explanation = %q", why)
	}
	winnerSQL, err := s.SQL(top[0].Index)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := viewseeker.Query(table, winnerSQL); err != nil {
		t.Fatalf("winner SQL does not run: %v", err)
	}

	// 6. Save, resume, verify identical recommendation.
	var saved bytes.Buffer
	if err := s.Save(&saved); err != nil {
		t.Fatal(err)
	}
	resumed, err := viewseeker.New(table, query, viewseeker.Options{K: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Load(&saved); err != nil {
		t.Fatal(err)
	}
	rTop := resumed.TopK()
	for i := range top {
		if top[i].Index != rTop[i].Index {
			t.Fatalf("resumed recommendation differs at rank %d", i)
		}
	}

	// 7. Diversified view of the same session.
	diverse, err := resumed.TopKDiverse(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(diverse) != 3 {
		t.Fatalf("diverse topk = %d", len(diverse))
	}
}
