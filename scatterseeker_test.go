package viewseeker

import (
	"strings"
	"testing"

	"viewseeker/internal/dataset"
)

func scatterTable(t *testing.T) *Table {
	t.Helper()
	return dataset.GenerateNBA(dataset.NBAConfig{Rows: 5000, Seed: 6, HotTeam: "GSW"})
}

func TestNewScatterSession(t *testing.T) {
	table := scatterTable(t)
	s, err := NewScatter(table, "SELECT * FROM nba WHERE team = 'GSW'", Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumViews() != 10 { // C(5,2) measure pairs
		t.Fatalf("scatter views = %d, want 10", s.NumViews())
	}
	if got := len(s.FeatureNames()); got != 6 {
		t.Errorf("scatter features = %d", got)
	}
	for i := 0; i < 4; i++ {
		v, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		label := 0.2
		if i%2 == 0 {
			label = 0.8
		}
		if err := s.Feedback(v.Index, label); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumLabels() != 4 {
		t.Errorf("labels = %d", s.NumLabels())
	}
	top := s.TopK()
	if len(top) != 3 {
		t.Fatalf("topk = %d", len(top))
	}
	w, _ := s.Weights()
	if len(w) != 6 {
		t.Errorf("weights = %v", w)
	}
}

func TestScatterRenderAndPair(t *testing.T) {
	table := scatterTable(t)
	s, err := NewScatter(table, "SELECT * FROM nba WHERE team = 'GSW'", Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Render(0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "target r=") {
		t.Errorf("render:\n%s", out)
	}
	p, err := s.Pair(0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Reference.N == 0 || p.Target.N == 0 {
		t.Error("summaries empty")
	}
	if _, err := s.Pair(-1); err == nil {
		t.Error("out-of-range pair should fail")
	}
}

func TestNewScatterValidation(t *testing.T) {
	if _, err := NewScatter(nil, "SELECT 1", Options{}); err == nil {
		t.Error("nil table should fail")
	}
	table := scatterTable(t)
	if _, err := NewScatter(table, "broken(", Options{}); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := NewScatter(table, "SELECT * FROM nba WHERE team = 'XXX'", Options{}); err == nil {
		t.Error("empty DQ should fail")
	}
}

func TestScatterFindsCorrelationShift(t *testing.T) {
	// A user rewarding correlation shifts must get a three-point pair on
	// top: GSW's positional three-point profile breaks the league's
	// rate-vs-rebounds relationship.
	table := scatterTable(t)
	s, err := NewScatter(table, "SELECT * FROM nba WHERE team = 'GSW'", Options{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		v, err := s.Next()
		if err != nil {
			break
		}
		p, err := s.Pair(v.Index)
		if err != nil {
			t.Fatal(err)
		}
		label := p.Target.Corr - p.Reference.Corr
		if label < 0 {
			label = -label
		}
		if label > 1 {
			label = 1
		}
		if err := s.Feedback(v.Index, label); err != nil {
			t.Fatal(err)
		}
	}
	best := s.TopK()[0].Spec
	if !strings.Contains(best.X+best.Y, "three_pt") {
		t.Errorf("top scatter view = %v, want a three-point pair", best)
	}
}
