// Package retry implements bounded retry with exponential backoff and
// deterministic jitter for the durability layer's disk writes: a journal
// append or cache snapshot that hits a transient error (brief ENOSPC, NFS
// hiccup, antivirus lock) is worth a few short retries before the caller
// degrades to memory-only serving.
//
// # Contracts
//
// Determinism: the schedule is a pure function of the Policy — backoffs
// double from Base up to Max, and jitter draws from a source seeded by
// Seed — and Sleep is injectable, so degraded-mode tests assert the exact
// sequence of sleeps without waiting for them.
//
// Cancellation (DESIGN.md §10): Do checks the context between attempts,
// never mid-attempt; a done context stops retrying and returns the
// context's error wrapped with the last attempt's.
//
// Observability: the optional Backoffs and Exhausted counters (pointed at
// the shared viewseeker_retry_* series by the store layer) count retries
// actually slept and schedules that ran out; both are nil-safe, so an
// unwired Policy pays nothing.
package retry
