package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// recorder captures the sleep schedule instead of waiting it out.
type recorder struct{ slept []time.Duration }

func (r *recorder) sleep(d time.Duration) { r.slept = append(r.slept, d) }

func TestDoSucceedsFirstTry(t *testing.T) {
	rec := &recorder{}
	p := Policy{Attempts: 5, Base: time.Millisecond, Sleep: rec.sleep}
	calls := 0
	if err := p.Do(context.Background(), func() error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || len(rec.slept) != 0 {
		t.Errorf("calls = %d, sleeps = %v", calls, rec.slept)
	}
}

func TestDoExponentialScheduleIsDeterministic(t *testing.T) {
	boom := errors.New("disk full")
	rec := &recorder{}
	p := Policy{Attempts: 4, Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Sleep: rec.sleep}
	calls := 0
	err := p.Do(context.Background(), func() error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(rec.slept) != len(want) {
		t.Fatalf("slept %v, want %v", rec.slept, want)
	}
	for i := range want {
		if rec.slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, rec.slept[i], want[i])
		}
	}
}

func TestDoBackoffCap(t *testing.T) {
	p := Policy{Attempts: 10, Base: 10 * time.Millisecond, Max: 25 * time.Millisecond}
	if d := p.Backoff(1); d != 10*time.Millisecond {
		t.Errorf("Backoff(1) = %v", d)
	}
	if d := p.Backoff(2); d != 20*time.Millisecond {
		t.Errorf("Backoff(2) = %v", d)
	}
	if d := p.Backoff(3); d != 25*time.Millisecond {
		t.Errorf("Backoff(3) = %v, want capped 25ms", d)
	}
	if d := p.Backoff(62); d != 25*time.Millisecond {
		t.Errorf("Backoff(62) = %v, want cap on shift overflow", d)
	}
}

func TestDoJitterBoundedAndSeedDeterministic(t *testing.T) {
	boom := errors.New("boom")
	run := func(seed int64) []time.Duration {
		rec := &recorder{}
		p := Policy{Attempts: 6, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond,
			Jitter: 0.5, Seed: seed, Sleep: rec.sleep}
		_ = p.Do(context.Background(), func() error { return boom })
		return rec.slept
	}
	a, b := run(7), run(7)
	if len(a) != 5 {
		t.Fatalf("slept %d times, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at sleep %d: %v vs %v", i, a[i], b[i])
		}
	}
	p := Policy{Attempts: 6, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	for i, d := range a {
		lo := p.Backoff(i + 1)
		hi := lo + time.Duration(float64(lo)*0.5)
		if d < lo || d >= hi {
			t.Errorf("sleep %d = %v outside [%v, %v)", i, d, lo, hi)
		}
	}
	if c := run(8); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Errorf("different seeds produced the same schedule: %v", c)
	}
}

func TestDoStopsRetryingOnCancelledContext(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	rec := &recorder{}
	p := Policy{Attempts: 10, Base: time.Millisecond, Sleep: rec.sleep}
	calls := 0
	err := p.Do(ctx, func() error {
		calls++
		if calls == 2 {
			cancel()
		}
		return boom
	})
	if !errors.Is(err, boom) || !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (no attempts after cancellation)", calls)
	}
}

func TestDoAttemptsFloor(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := (Policy{Attempts: 0}).Do(context.Background(), func() error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 1 {
		t.Errorf("err = %v, calls = %d", err, calls)
	}
}
