package retry

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"viewseeker/internal/obs"
)

// Policy describes one bounded retry schedule. The zero value is not
// useful; start from Default and override.
type Policy struct {
	// Attempts is the total number of tries, including the first
	// (values < 1 behave as 1: no retries).
	Attempts int
	// Base is the backoff before the second attempt; each further backoff
	// doubles, capped at Max.
	Base time.Duration
	// Max caps a single backoff (0 = no cap).
	Max time.Duration
	// Jitter adds a uniformly random extra fraction of each backoff in
	// [0, Jitter) — 0.5 means sleeps land in [d, 1.5d). Jitter decorrelates
	// fleets of retriers; the randomness is seeded, so a fixed Seed makes
	// the whole schedule reproducible.
	Jitter float64
	// Seed drives the jitter (same Seed, same schedule).
	Seed int64
	// Sleep is the sleeper between attempts (default time.Sleep);
	// tests inject a recorder to assert the schedule without waiting.
	Sleep func(time.Duration)
	// Backoffs, when non-nil, counts every backoff slept — one increment
	// per retry actually taken. The durability layer points it at the
	// shared viewseeker_retry_backoffs_total counter so journal and cache
	// retries aggregate in one series.
	Backoffs *obs.Counter
	// Exhausted, when non-nil, counts schedules that ran out of attempts —
	// each increment is one operation that degraded instead of recovering.
	Exhausted *obs.Counter
}

// Default is the durability layer's schedule: three tries a few
// milliseconds apart — long enough to ride out a transient I/O hiccup,
// short enough that a user request never notices the detour.
func Default() Policy {
	return Policy{Attempts: 3, Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Jitter: 0.5, Seed: 1}
}

// Backoff returns the pre-jitter backoff before attempt i (1-based: the
// backoff slept after attempt i fails, before attempt i+1 runs).
func (p Policy) Backoff(i int) time.Duration {
	d := p.Base
	for j := 1; j < i; j++ {
		d *= 2
		if d <= 0 || (p.Max > 0 && d >= p.Max) { // doubling overflow hits the cap too
			return p.Max
		}
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	return d
}

// Do runs fn up to Attempts times, sleeping the backoff schedule between
// failures, and returns nil on the first success. Cancellation is honoured
// between attempts: a done context stops retrying and returns the
// context's error joined with the last attempt's. After exhaustion the
// last error is returned wrapped with the attempt count.
func (p Policy) Do(ctx context.Context, fn func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var rng *rand.Rand
	var lastErr error
	for i := 1; ; i++ {
		lastErr = fn()
		if lastErr == nil {
			return nil
		}
		if i >= attempts {
			p.Exhausted.Inc()
			if attempts == 1 {
				return lastErr
			}
			return fmt.Errorf("retry: %d attempts exhausted: %w", attempts, lastErr)
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("retry: cancelled after attempt %d: %w", i, lastErr)
		}
		d := p.Backoff(i)
		if p.Jitter > 0 && d > 0 {
			if rng == nil {
				rng = rand.New(rand.NewSource(p.Seed))
			}
			d += time.Duration(float64(d) * p.Jitter * rng.Float64())
		}
		p.Backoffs.Inc()
		if d > 0 {
			sleep(d)
		}
	}
}
