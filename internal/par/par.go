package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"viewseeker/internal/obs"
)

// Resolve normalises a Workers knob: values ≤ 0 select runtime.NumCPU(),
// everything else passes through.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.NumCPU()
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns the first error observed. workers ≤ 1 degrades to
// a plain sequential loop with no goroutines at all, so the workers=1 path
// is bit-for-bit the pre-parallel behaviour. After an error, indices not
// yet started are skipped; already-running calls finish before ForEach
// returns.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach under a context: cancellation is checked between
// work items — never inside fn, which owns whatever row-level loops it
// runs — so a cancelled context stops the pool within one item per worker.
// The first fn error or the context's error, whichever is observed first,
// is returned; a pre-cancelled context starts no work at all. The
// workers ≤ 1 path remains the exact sequential loop of ForEach with one
// context check before each item.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	// Worker-occupancy instrumentation rides the context: with a registry
	// installed, each item's duration lands in one shared histogram (whose
	// _sum is total busy time — occupancy = busy / (wall × workers)) and a
	// gauge tracks how many workers are on an item right now. Handles are
	// resolved once per call, never per item; without a registry the loop
	// body is untouched. Timing never changes scheduling or results — the
	// bit-identity guarantee across worker counts is unaffected.
	if reg := obs.RegistryFrom(ctx); reg != nil {
		busy := reg.Gauge("viewseeker_par_busy_workers")
		item := reg.Histogram("viewseeker_par_item_seconds", obs.DurationBuckets)
		reg.Counter("viewseeker_par_items_scheduled_total").Add(int64(n))
		inner := fn
		fn = func(i int) error {
			busy.Inc()
			start := time.Now()
			err := inner(i)
			item.ObserveDuration(time.Since(start))
			busy.Dec()
			return err
		}
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	next.Store(-1)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		failed.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
