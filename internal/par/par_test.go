package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.NumCPU() {
		t.Errorf("Resolve(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Resolve(-3); got != runtime.NumCPU() {
		t.Errorf("Resolve(-3) = %d", got)
	}
	if got := Resolve(5); got != 5 {
		t.Errorf("Resolve(5) = %d", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		var hits [57]atomic.Int32
		err := ForEach(len(hits), workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestForEachFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	err := ForEach(1000, 4, func(i int) error {
		calls.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Scheduling after the failure must stop: far fewer than 1000 calls.
	if n := calls.Load(); n >= 1000 {
		t.Errorf("ran all %d calls despite early error", n)
	}
}

func TestForEachSequentialStopsAtError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := ForEach(10, 1, func(i int) error {
		calls++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || calls != 3 {
		t.Errorf("err = %v, calls = %d, want boom after 3", err, calls)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
