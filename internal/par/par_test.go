package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.NumCPU() {
		t.Errorf("Resolve(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Resolve(-3); got != runtime.NumCPU() {
		t.Errorf("Resolve(-3) = %d", got)
	}
	if got := Resolve(5); got != 5 {
		t.Errorf("Resolve(5) = %d", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		var hits [57]atomic.Int32
		err := ForEach(len(hits), workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestForEachFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	err := ForEach(1000, 4, func(i int) error {
		calls.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Scheduling after the failure must stop: far fewer than 1000 calls.
	if n := calls.Load(); n >= 1000 {
		t.Errorf("ran all %d calls despite early error", n)
	}
}

func TestForEachSequentialStopsAtError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := ForEach(10, 1, func(i int) error {
		calls++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || calls != 3 {
		t.Errorf("err = %v, calls = %d, want boom after 3", err, calls)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var calls atomic.Int32
		err := ForEachCtx(ctx, 100, workers, func(i int) error {
			calls.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := calls.Load(); n != 0 {
			t.Errorf("workers=%d: %d items ran under a pre-cancelled context", workers, n)
		}
	}
}

// TestForEachCtxCancelMidRun proves the acceptance bound: once the context
// is cancelled, every worker exits within one work item — the item it was
// already inside may finish, but no worker claims another.
func TestForEachCtxCancelMidRun(t *testing.T) {
	const n, workers, cancelAt = 1000, 4, 10
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int32
	err := ForEachCtx(ctx, n, workers, func(i int) error {
		if calls.Add(1) == cancelAt {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// At cancellation, at most workers items are in flight; each may finish
	// but none may start afterwards.
	if got := calls.Load(); got > cancelAt+workers {
		t.Errorf("ran %d items, want ≤ %d (cancel at %d + %d in flight)",
			got, cancelAt+workers, cancelAt, workers)
	}
}

func TestForEachCtxSequentialCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	err := ForEachCtx(ctx, 100, 1, func(i int) error {
		calls++
		if i == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The item that cancelled finishes; the next context check fires before
	// item 6 starts.
	if calls != 6 {
		t.Errorf("ran %d items, want exactly 6", calls)
	}
}

// TestForEachCtxWorkersOneEquivalence pins that under a background context
// the workers=1 path is the exact sequential loop: same call order, same
// first-error behaviour as ForEach.
func TestForEachCtxWorkersOneEquivalence(t *testing.T) {
	boom := errors.New("boom")
	run := func(f func(n, workers int, fn func(int) error) error) (order []int, err error) {
		err = f(20, 1, func(i int) error {
			order = append(order, i)
			if i == 13 {
				return boom
			}
			return nil
		})
		return order, err
	}
	ctxRun := func(n, workers int, fn func(int) error) error {
		return ForEachCtx(context.Background(), n, workers, fn)
	}
	plainOrder, plainErr := run(ForEach)
	ctxOrder, ctxErr := run(ctxRun)
	if !errors.Is(plainErr, boom) || !errors.Is(ctxErr, boom) {
		t.Fatalf("errs = %v, %v", plainErr, ctxErr)
	}
	if len(plainOrder) != len(ctxOrder) {
		t.Fatalf("call counts differ: %d vs %d", len(plainOrder), len(ctxOrder))
	}
	for i := range plainOrder {
		if plainOrder[i] != ctxOrder[i] {
			t.Fatalf("call order diverges at %d: %d vs %d", i, plainOrder[i], ctxOrder[i])
		}
	}
}

func TestForEachCtxErrorBeatsLateCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx := context.Background()
	err := ForEachCtx(ctx, 50, 4, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
