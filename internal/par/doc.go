// Package par provides the bounded worker-pool primitives the offline
// phase fans out on: ForEach/ForEachCtx run an indexed job set across a
// fixed number of goroutines with panic capture and first-error return.
//
// # Contracts
//
// Cancellation (DESIGN.md §10): ForEachCtx checks the context before
// claiming each item, never mid-item — cancellation halts within one work
// item while the scan kernels stay branch-free inside their row loops.
// In-flight items finish; the return value is the first item error, or
// ctx.Err() if cancellation stopped the claiming.
//
// Bit-identity (DESIGN.md §§7, 9): with workers <= 1 the pool degrades to
// the plain sequential loop, byte-for-byte identical behaviour included.
// With workers > 1, callers must make item bodies order-independent
// (write to disjoint slots); the pool itself imposes no ordering.
//
// Observability: when the context carries an obs.Registry, ForEachCtx
// wraps the item function once per call — never per item — to record
// per-item latency (viewseeker_par_item_seconds, whose _sum is total
// busy-seconds for occupancy math), the busy-worker gauge, and the
// scheduled-item counter. Without a registry the wrapper is skipped
// entirely, so the instrumented pool is bit-identical to the plain one.
package par
