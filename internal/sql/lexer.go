package sql

import (
	"fmt"
	"strings"
)

// Lex scans a query into tokens. String literals use single quotes with ”
// escaping. Identifiers may be double-quoted to include spaces or clash
// with keywords.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			seenDot, seenExp := false, false
			for i < n {
				ch := input[i]
				if isDigit(ch) {
					i++
					continue
				}
				if ch == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (ch == 'e' || ch == 'E') && !seenExp && i+1 < n &&
					(isDigit(input[i+1]) || ((input[i+1] == '+' || input[i+1] == '-') && i+2 < n && isDigit(input[i+2]))) {
					seenExp = true
					i++
					if input[i] == '+' || input[i] == '-' {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c == '"':
			start := i
			i++
			j := strings.IndexByte(input[i:], '"')
			if j < 0 {
				return nil, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokIdent, Text: input[i : i+j], Pos: start})
			i += j + 1
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		default:
			start := i
			var op string
			switch c {
			case '<':
				if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
					op = input[i : i+2]
				} else {
					op = "<"
				}
			case '>':
				if i+1 < n && input[i+1] == '=' {
					op = ">="
				} else {
					op = ">"
				}
			case '!':
				if i+1 < n && input[i+1] == '=' {
					op = "!="
				} else {
					return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
				}
			case '=', '+', '-', '*', '/', '(', ')', ',', ';', '%':
				op = string(c)
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
			toks = append(toks, Token{Kind: TokOp, Text: op, Pos: start})
			i += len(op)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
