package sql

import (
	"fmt"
	"strconv"
	"strings"

	"viewseeker/internal/dataset"
)

// Parse parses one SELECT statement. A trailing semicolon is allowed.
func Parse(query string) (*SelectStmt, error) {
	toks, err := Lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokOp && p.peek().Text == ";" {
		p.next()
	}
	if p.peek().Kind != TokEOF {
		return nil, fmt.Errorf("sql: unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token   { return p.toks[p.pos] }
func (p *parser) next() Token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if t := p.peek(); t.Kind == TokOp && t.Text == op {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return fmt.Errorf("sql: expected %q, found %s", op, p.peek())
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}

	if p.acceptKeyword("FROM") {
		t := p.peek()
		if t.Kind != TokIdent {
			return nil, fmt.Errorf("sql: expected table name after FROM, found %s", t)
		}
		stmt.From = p.next().Text
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, fmt.Errorf("sql: expected number after LIMIT, found %s", t)
		}
		p.next()
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: invalid LIMIT %q", t.Text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.Kind != TokIdent {
			return SelectItem{}, fmt.Errorf("sql: expected alias after AS, found %s", t)
		}
		item.Alias = p.next().Text
	} else if t := p.peek(); t.Kind == TokIdent {
		// Bare alias: SELECT count(*) n FROM ...
		item.Alias = p.next().Text
	}
	return item, nil
}

// Expression grammar, lowest to highest precedence:
//
//	expr    = orExpr
//	orExpr  = andExpr { OR andExpr }
//	andExpr = notExpr { AND notExpr }
//	notExpr = [NOT] predicate
//	predicate = addExpr [ compOp addExpr | [NOT] IN (...) |
//	            [NOT] BETWEEN addExpr AND addExpr | IS [NOT] NULL |
//	            [NOT] LIKE addExpr ]
//	addExpr = mulExpr { (+|-) mulExpr }
//	mulExpr = unary { (*|/|%) unary }
//	unary   = [-] primary
//	primary = literal | column | func(...) | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	neg := false
	if t := p.peek(); t.Kind == TokKeyword && t.Text == "NOT" {
		// Lookahead for NOT IN / NOT BETWEEN / NOT LIKE; a bare NOT here
		// belongs to a boolean context and is not ours.
		s := p.save()
		p.next()
		if t2 := p.peek(); t2.Kind == TokKeyword && (t2.Text == "IN" || t2.Text == "BETWEEN" || t2.Text == "LIKE") {
			neg = true
		} else {
			p.restore(s)
		}
	}
	switch t := p.peek(); {
	case t.Kind == TokOp && isCompareOp(t.Text):
		if neg {
			return nil, fmt.Errorf("sql: unexpected NOT before %q", t.Text)
		}
		p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		op := t.Text
		if op == "<>" {
			op = "!="
		}
		return &Binary{Op: op, L: l, R: r}, nil
	case t.Kind == TokKeyword && t.Text == "IN":
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InList{X: l, List: list, Neg: neg}, nil
	case t.Kind == TokKeyword && t.Text == "BETWEEN":
		p.next()
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Between{X: l, Lo: lo, Hi: hi, Neg: neg}, nil
	case t.Kind == TokKeyword && t.Text == "LIKE":
		p.next()
		pat, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Like{X: l, Pattern: pat, Neg: neg}, nil
	case t.Kind == TokKeyword && t.Text == "IS":
		if neg {
			return nil, fmt.Errorf("sql: unexpected NOT before IS")
		}
		p.next()
		isNeg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Neg: isNeg}, nil
	default:
		if neg {
			return nil, fmt.Errorf("sql: dangling NOT near %s", t)
		}
		return l, nil
	}
}

func isCompareOp(op string) bool {
	switch op {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp || (t.Text != "+" && t.Text != "-") {
			return l, nil
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: t.Text, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp || (t.Text != "*" && t.Text != "/" && t.Text != "%") {
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: t.Text, L: l, R: r}
	}
}

// parseCase parses a searched CASE expression; the CASE keyword is still
// pending when called.
func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &Case{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		result, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, When{Cond: cond, Result: result})
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("sql: CASE needs at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	if p.acceptOp("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: invalid number %q", t.Text)
			}
			return &Literal{Val: dataset.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: invalid number %q", t.Text)
		}
		return &Literal{Val: dataset.Int(i)}, nil
	case TokString:
		p.next()
		return &Literal{Val: dataset.StringVal(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Val: dataset.Null}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: dataset.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: dataset.Bool(false)}, nil
		case "CASE":
			return p.parseCase()
		}
		return nil, fmt.Errorf("sql: unexpected keyword %s in expression", t)
	case TokIdent:
		p.next()
		if p.acceptOp("(") {
			call := &Call{Func: strings.ToUpper(t.Text)}
			if p.acceptOp("*") {
				call.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.acceptOp(")") {
				return call, nil
			}
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &ColumnRef{Name: t.Text}, nil
	case TokOp:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected %s in expression", t)
}
