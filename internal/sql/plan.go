package sql

import (
	"encoding/json"
	"fmt"

	"viewseeker/internal/dataset"
)

// PlanVersion identifies the EXPLAIN JSON schema. Consumers should reject
// documents with a version they do not understand; bump it whenever a
// field changes meaning or the operator set changes shape.
const PlanVersion = 1

// Plan is the physical plan a statement lowers to: a linear operator
// chain, outermost first (Root consumes its Input, down to the leaf scan
// or values node). EXPLAIN serialises exactly this structure as indented
// JSON, so the document is stable across runs for a given statement.
type Plan struct {
	Version int       `json:"version"`
	Root    *PlanNode `json:"root"`
}

// PlanNode is one physical operator. Which fields are populated depends on
// Op:
//
//	scan      Table
//	values    (leaf; table-less SELECT evaluates one const row)
//	filter    Predicate, and Phase="having" for the post-aggregate filter
//	aggregate GroupBy, Strategy, Aggregates
//	project   Columns
//	distinct  (no operands)
//	sort      Keys
//	limit     Count
type PlanNode struct {
	Op         string          `json:"op"`
	Table      string          `json:"table,omitempty"`
	Predicate  string          `json:"predicate,omitempty"`
	Phase      string          `json:"phase,omitempty"`
	GroupBy    []string        `json:"group_by,omitempty"`
	Strategy   string          `json:"strategy,omitempty"`
	Aggregates []PlanAggregate `json:"aggregates,omitempty"`
	Columns    []string        `json:"columns,omitempty"`
	Keys       []PlanSortKey   `json:"keys,omitempty"`
	Count      *int            `json:"count,omitempty"`
	Input      *PlanNode       `json:"input,omitempty"`
}

// PlanAggregate is one fused aggregate slot, in canonical slot order (the
// order both executors accumulate and materialise them). Columnar reports
// whether the fused executor will feed this slot from a decoded numeric
// column view instead of boxed per-row evaluation.
type PlanAggregate struct {
	Call     string `json:"call"`
	Fn       string `json:"fn"`
	Arg      string `json:"arg,omitempty"`
	Star     bool   `json:"star,omitempty"`
	Columnar bool   `json:"columnar"`
}

// PlanSortKey is one ORDER BY key.
type PlanSortKey struct {
	Expr string `json:"expr"`
	Desc bool   `json:"desc,omitempty"`
}

// Lower turns a parsed statement into its physical plan. Lowering is
// structural: expressions are carried as their canonical strings, not
// compiled — compilation stays in the executor, so Lower never needs row
// context and works with a nil table (per-aggregate Columnar then simply
// reports false for column-fed slots it cannot see).
func Lower(stmt *SelectStmt, table *dataset.Table) (*Plan, error) {
	var node *PlanNode
	if stmt.From != "" {
		node = &PlanNode{Op: "scan", Table: stmt.From}
	} else {
		node = &PlanNode{Op: "values"}
	}
	if stmt.Where != nil {
		if isAggregate(stmt) && ContainsAggregate(stmt.Where) {
			return nil, fmt.Errorf("sql: aggregate in WHERE (use HAVING)")
		}
		node = &PlanNode{Op: "filter", Predicate: stmt.Where.String(), Input: node}
	}
	if isAggregate(stmt) {
		for _, it := range stmt.Items {
			if it.Star {
				return nil, fmt.Errorf("sql: SELECT * is not valid with GROUP BY or aggregates")
			}
		}
		for _, ge := range stmt.GroupBy {
			if ContainsAggregate(ge) {
				return nil, fmt.Errorf("sql: aggregate in GROUP BY")
			}
		}
		keys, calls, err := statementAggregates(stmt)
		if err != nil {
			return nil, err
		}
		aggs := make([]PlanAggregate, len(calls))
		for i, c := range calls {
			aggs[i] = PlanAggregate{
				Call:     keys[i],
				Fn:       c.Func,
				Star:     c.Star,
				Columnar: columnarAggregate(c, table),
			}
			if !c.Star {
				aggs[i].Arg = c.Args[0].String()
			}
		}
		agg := &PlanNode{Op: "aggregate", Aggregates: aggs, Input: node}
		if len(stmt.GroupBy) > 0 {
			agg.Strategy = "fused-hash"
			agg.GroupBy = make([]string, len(stmt.GroupBy))
			for i, ge := range stmt.GroupBy {
				agg.GroupBy[i] = ge.String()
			}
		} else {
			agg.Strategy = "fused-global"
		}
		node = agg
		if stmt.Having != nil {
			node = &PlanNode{Op: "filter", Predicate: stmt.Having.String(), Phase: "having", Input: node}
		}
	}
	cols := make([]string, len(stmt.Items))
	for i, it := range stmt.Items {
		if it.Star {
			cols[i] = "*"
		} else {
			cols[i] = it.OutputName()
		}
	}
	node = &PlanNode{Op: "project", Columns: cols, Input: node}
	if stmt.Distinct {
		node = &PlanNode{Op: "distinct", Input: node}
	}
	if len(stmt.OrderBy) > 0 {
		sortKeys := make([]PlanSortKey, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			sortKeys[i] = PlanSortKey{Expr: o.Expr.String(), Desc: o.Desc}
		}
		node = &PlanNode{Op: "sort", Keys: sortKeys, Input: node}
	}
	if stmt.Limit >= 0 {
		n := stmt.Limit
		node = &PlanNode{Op: "limit", Count: &n, Input: node}
	}
	return &Plan{Version: PlanVersion, Root: node}, nil
}

// columnarAggregate reports whether the fused executor will drive this
// aggregate from a decoded numeric column view (see columnarColumn) or,
// for COUNT(*), from the selection vector alone.
func columnarAggregate(c *Call, table *dataset.Table) bool {
	return c.Star || columnarColumn(c, table) != nil
}

// JSON renders the plan as an indented, stable JSON document.
func (p *Plan) JSON() (string, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}
