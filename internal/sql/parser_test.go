package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) *SelectStmt {
	t.Helper()
	s, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return s
}

func TestParseFullStatement(t *testing.T) {
	s := mustParse(t, `SELECT a, SUM(m) AS total FROM t WHERE x > 1 AND y = 'v'
		GROUP BY a HAVING COUNT(*) > 2 ORDER BY total DESC, a LIMIT 10;`)
	if len(s.Items) != 2 || s.Items[1].Alias != "total" {
		t.Errorf("items = %+v", s.Items)
	}
	if s.From != "t" || s.Where == nil || len(s.GroupBy) != 1 || s.Having == nil {
		t.Errorf("clauses wrong: %+v", s)
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Errorf("order by = %+v", s.OrderBy)
	}
	if s.Limit != 10 {
		t.Errorf("limit = %d", s.Limit)
	}
}

func TestParseCanonicalString(t *testing.T) {
	in := "SELECT a, SUM(m) AS total FROM t WHERE (x > 1) GROUP BY a ORDER BY total DESC LIMIT 5"
	s := mustParse(t, in)
	// Round trip: the canonical string must reparse to the same canonical
	// string (fixed point).
	s2 := mustParse(t, s.String())
	if s.String() != s2.String() {
		t.Errorf("canonical form unstable:\n%s\n%s", s.String(), s2.String())
	}
}

func TestParsePrecedence(t *testing.T) {
	s := mustParse(t, "SELECT 1 + 2 * 3")
	if got := s.Items[0].Expr.String(); got != "(1 + (2 * 3))" {
		t.Errorf("precedence = %s", got)
	}
	s = mustParse(t, "SELECT a WHERE x = 1 OR y = 2 AND z = 3")
	// AND binds tighter than OR.
	if got := s.Where.String(); got != "((x = 1) OR ((y = 2) AND (z = 3)))" {
		t.Errorf("bool precedence = %s", got)
	}
}

func TestParseNotVariants(t *testing.T) {
	s := mustParse(t, "SELECT a WHERE NOT x = 1")
	if got := s.Where.String(); got != "NOT (x = 1)" {
		t.Errorf("NOT = %s", got)
	}
	s = mustParse(t, "SELECT a WHERE x NOT IN (1, 2)")
	if got := s.Where.String(); !strings.Contains(got, "NOT IN") {
		t.Errorf("NOT IN = %s", got)
	}
	s = mustParse(t, "SELECT a WHERE x NOT BETWEEN 1 AND 2")
	if got := s.Where.String(); !strings.Contains(got, "NOT BETWEEN") {
		t.Errorf("NOT BETWEEN = %s", got)
	}
	s = mustParse(t, "SELECT a WHERE x IS NOT NULL")
	if got := s.Where.String(); got != "(x IS NOT NULL)" {
		t.Errorf("IS NOT NULL = %s", got)
	}
	s = mustParse(t, "SELECT a WHERE name NOT LIKE 'a%'")
	if got := s.Where.String(); !strings.Contains(got, "NOT LIKE") {
		t.Errorf("NOT LIKE = %s", got)
	}
}

func TestParseCountStar(t *testing.T) {
	s := mustParse(t, "SELECT COUNT(*) FROM t")
	c, ok := s.Items[0].Expr.(*Call)
	if !ok || !c.Star || c.Func != "COUNT" {
		t.Errorf("count(*) = %+v", s.Items[0].Expr)
	}
}

func TestParseBareAlias(t *testing.T) {
	s := mustParse(t, "SELECT count(*) n FROM t")
	if s.Items[0].Alias != "n" {
		t.Errorf("bare alias = %q", s.Items[0].Alias)
	}
}

func TestParseStar(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a = 1")
	if !s.Items[0].Star {
		t.Error("star not parsed")
	}
}

func TestParseNullLiterals(t *testing.T) {
	s := mustParse(t, "SELECT NULL, TRUE, FALSE")
	if len(s.Items) != 3 {
		t.Fatalf("items = %d", len(s.Items))
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	s := mustParse(t, "SELECT -5, -x, +3")
	if got := s.Items[0].Expr.String(); got != "(-5)" {
		t.Errorf("neg literal = %s", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROM t",
		"SELECT",
		"SELECT a FROM",
		"SELECT a WHERE",
		"SELECT a GROUP a",
		"SELECT a ORDER a",
		"SELECT a LIMIT x",
		"SELECT a LIMIT -1",
		"SELECT a FROM t extra garbage",
		"SELECT (a FROM t",
		"SELECT a WHERE x IN 1",
		"SELECT a WHERE x BETWEEN 1",
		"SELECT a WHERE x IS 1",
		"SELECT a WHERE NOT",
		"SELECT f(a",
		"SELECT a AS",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestOutputName(t *testing.T) {
	s := mustParse(t, "SELECT a, b AS bee, SUM(c) FROM t GROUP BY a, b")
	wants := []string{"a", "bee", "SUM(c)"}
	for i, w := range wants {
		if got := s.Items[i].OutputName(); got != w {
			t.Errorf("output name %d = %q, want %q", i, got, w)
		}
	}
}

func TestContainsAggregate(t *testing.T) {
	s := mustParse(t, "SELECT SUM(a) + 1, b, ABS(MAX(c)), f(b) FROM t GROUP BY b")
	if !ContainsAggregate(s.Items[0].Expr) {
		t.Error("SUM(a)+1 should contain aggregate")
	}
	if ContainsAggregate(s.Items[1].Expr) {
		t.Error("b should not contain aggregate")
	}
	if !ContainsAggregate(s.Items[2].Expr) {
		t.Error("ABS(MAX(c)) should contain aggregate")
	}
	if ContainsAggregate(s.Items[3].Expr) {
		t.Error("f(b) should not contain aggregate")
	}
}
