package sql

import (
	"fmt"

	"viewseeker/internal/dataset"
)

// executePlanned is the planned executor behind Execute: a selection
// vector over the scan, then either a projection or one fused aggregation
// pass that accumulates every aggregate slot into flat per-slot
// accumulator banks (the same shape internal/view uses for its flat Stats
// arrays). Group results are produced by the exact per-value operation
// sequence the interpreter uses, so the two engines are bit-identical.
func executePlanned(stmt *SelectStmt, table *dataset.Table) (*dataset.Table, error) {
	if isAggregate(stmt) {
		return executeFusedAggregate(stmt, table)
	}
	return executeProjection(stmt, table)
}

// buildSelection evaluates the WHERE predicate over nRows and returns the
// surviving row indexes (all rows when there is no predicate). aggContext
// rejects aggregates inside WHERE.
func buildSelection(stmt *SelectStmt, comp *compiler, nRows int, aggContext bool) ([]int, error) {
	if stmt.Where == nil {
		sel := make([]int, nRows)
		for r := range sel {
			sel[r] = r
		}
		return sel, nil
	}
	if aggContext && ContainsAggregate(stmt.Where) {
		return nil, fmt.Errorf("sql: aggregate in WHERE (use HAVING)")
	}
	whereG, err := comp.compile(stmt.Where)
	if err != nil {
		return nil, err
	}
	var sel []int
	for r := 0; r < nRows; r++ {
		v, err := whereG(r)
		if err != nil {
			return nil, err
		}
		if v.Kind == dataset.KindBool && v.B {
			sel = append(sel, r)
		}
	}
	return sel, nil
}

// executeProjection is the planned non-aggregate path: selection vector
// first, then projection and ORDER BY key evaluation over selected rows.
func executeProjection(stmt *SelectStmt, table *dataset.Table) (*dataset.Table, error) {
	comp := &compiler{bindNode: tableBinder(table)}
	names, roles, getters, err := projectionGetters(stmt, table, comp)
	if err != nil {
		return nil, err
	}
	nRows := 1 // table-less SELECT evaluates once
	if table != nil {
		nRows = table.NumRows()
	}
	sel, err := buildSelection(stmt, comp, nRows, false)
	if err != nil {
		return nil, err
	}
	orderGetters, err := bindOrderBy(stmt, comp, names)
	if err != nil {
		return nil, err
	}
	rows := make([]outputRow, 0, len(sel))
	for _, r := range sel {
		out := outputRow{vals: make([]dataset.Value, len(getters))}
		for i, g := range getters {
			v, err := g(r)
			if err != nil {
				return nil, err
			}
			out.vals[i] = v
		}
		for _, og := range orderGetters {
			v, err := og.get(r, out.vals)
			if err != nil {
				return nil, err
			}
			out.keys = append(out.keys, v)
		}
		rows = append(rows, out)
	}
	return finishRows(stmt, names, roles, rows)
}

// executeFusedAggregate is the planned grouped path. One keying pass turns
// the selection vector into a gid vector (group ids in first-appearance
// order, the same order the interpreter's map+slice grouping yields); then
// each aggregate slot accumulates over (sel, gids) into a contiguous bank
// of accumulators — columnar loops over decoded numeric views where the
// argument is a plain numeric column, boxed evaluation otherwise.
func executeFusedAggregate(stmt *SelectStmt, table *dataset.Table) (*dataset.Table, error) {
	for _, it := range stmt.Items {
		if it.Star {
			return nil, fmt.Errorf("sql: SELECT * is not valid with GROUP BY or aggregates")
		}
	}
	rowComp := &compiler{bindNode: tableBinder(table)}

	groupGetters := make([]getter, len(stmt.GroupBy))
	groupKeys := make([]string, len(stmt.GroupBy))
	for i, ge := range stmt.GroupBy {
		if ContainsAggregate(ge) {
			return nil, fmt.Errorf("sql: aggregate in GROUP BY")
		}
		g, err := rowComp.compile(ge)
		if err != nil {
			return nil, err
		}
		groupGetters[i] = g
		groupKeys[i] = ge.String()
	}

	slotKeys, calls, err := statementAggregates(stmt)
	if err != nil {
		return nil, err
	}
	argGetters, err := compileAggArgs(calls, rowComp)
	if err != nil {
		return nil, err
	}
	slotIndex := make(map[string]int, len(slotKeys))
	for i, k := range slotKeys {
		slotIndex[k] = i
	}

	nRows := 0
	if table != nil {
		nRows = table.NumRows()
	}
	sel, err := buildSelection(stmt, rowComp, nRows, true)
	if err != nil {
		return nil, err
	}

	// Keying pass: selection vector -> gid vector.
	gids := make([]int32, len(sel))
	var outs []*groupOut
	if len(stmt.GroupBy) == 0 {
		if len(sel) > 0 {
			outs = []*groupOut{{}}
		}
	} else {
		gidOf := make(map[string]int32)
		keyVals := make([]dataset.Value, len(groupGetters))
		for i, r := range sel {
			for k, g := range groupGetters {
				v, err := g(r)
				if err != nil {
					return nil, err
				}
				keyVals[k] = v
			}
			key := rowKey(keyVals)
			gid, ok := gidOf[key]
			if !ok {
				gid = int32(len(outs))
				gidOf[key] = gid
				outs = append(outs, &groupOut{keyVals: append([]dataset.Value(nil), keyVals...)})
			}
			gids[i] = gid
		}
	}
	// A table with zero matching rows and no GROUP BY still yields one
	// global group (SELECT COUNT(*) FROM empty = 0).
	if len(outs) == 0 && len(stmt.GroupBy) == 0 {
		outs = []*groupOut{{}}
		sel = nil
		gids = nil
	}

	// Fused accumulation: one contiguous accumulator bank per slot.
	for _, out := range outs {
		out.res = make([]dataset.Value, len(calls))
	}
	for si, call := range calls {
		accs := newAccumulatorBank(call.Func, len(outs))
		if err := accumulateSlot(accs, call, argGetters[si], table, sel, gids); err != nil {
			return nil, err
		}
		for g := range outs {
			v, err := accs[g].result()
			if err != nil {
				return nil, err
			}
			outs[g].res[si] = v
		}
	}
	return projectGroups(stmt, table, groupKeys, slotIndex, outs)
}

// newAccumulatorBank returns a flat bank of initialised accumulators, one
// per group, for a single aggregate slot.
func newAccumulatorBank(fn string, n int) []aggAccumulator {
	accs := make([]aggAccumulator, n)
	for i := range accs {
		accs[i] = aggAccumulator{fn: fn, allInts: true, min: dataset.Null, max: dataset.Null}
	}
	return accs
}

// accumulateSlot feeds one aggregate slot's bank from the selected rows.
// Plain numeric ColumnRef arguments to COUNT/SUM/AVG/VARIANCE/STDDEV take
// the columnar fast path (decode-once NumericView, bitmap null test);
// everything else evaluates the boxed argument per row. Both paths issue
// the identical addNumeric sequence per (group, value).
func accumulateSlot(accs []aggAccumulator, call *Call, arg getter, table *dataset.Table, sel []int, gids []int32) error {
	gid := func(i int) int32 {
		if gids == nil {
			return 0
		}
		return gids[i]
	}
	if call.Star { // COUNT(*): selection vector alone
		for i := range sel {
			accs[gid(i)].count++
		}
		return nil
	}
	if col := columnarColumn(call, table); col != nil {
		vals, nulls, ok := col.NumericView()
		if ok {
			switch {
			case call.Func == "COUNT":
				for i, r := range sel {
					if bitmapNull(nulls, r) {
						continue
					}
					accs[gid(i)].count++
				}
			case col.Def.Kind == dataset.KindInt:
				ints := col.Ints
				for i, r := range sel {
					if bitmapNull(nulls, r) {
						continue
					}
					a := &accs[gid(i)]
					a.count++
					a.addNumeric(vals[r], ints[r], true)
				}
			default: // KindFloat
				for i, r := range sel {
					if bitmapNull(nulls, r) {
						continue
					}
					a := &accs[gid(i)]
					a.count++
					a.addNumeric(vals[r], 0, false)
				}
			}
			return nil
		}
	}
	for i, r := range sel {
		v, err := arg(r)
		if err != nil {
			return err
		}
		if err := accs[gid(i)].add(v); err != nil {
			return err
		}
	}
	return nil
}

// columnarColumn returns the backing column when an aggregate call is
// eligible for the columnar fast path: a moment aggregate (COUNT, SUM,
// AVG, VARIANCE, STDDEV) over a bare Int or Float column reference.
// MIN/MAX compare boxed values (kind-aware ordering), so they stay on the
// generic path.
func columnarColumn(call *Call, table *dataset.Table) *dataset.Column {
	if call.Star || table == nil {
		return nil
	}
	switch call.Func {
	case "COUNT", "SUM", "AVG", "VARIANCE", "STDDEV":
	default:
		return nil
	}
	ref, ok := call.Args[0].(*ColumnRef)
	if !ok {
		return nil
	}
	col := table.Column(ref.Name)
	if col == nil {
		return nil
	}
	if col.Def.Kind != dataset.KindInt && col.Def.Kind != dataset.KindFloat {
		return nil
	}
	return col
}

// bitmapNull tests one row in a column null bitmap.
func bitmapNull(nulls []uint64, r int) bool {
	w := r >> 6
	return w < len(nulls) && nulls[w]&(1<<(uint(r)&63)) != 0
}
