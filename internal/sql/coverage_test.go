package sql

import (
	"math"
	"testing"

	"viewseeker/internal/dataset"
)

// These tests close coverage gaps the broader suites miss: arithmetic
// corner cases, unary operators, aggregate analysis over every expression
// node, and the NOT-lookahead parser path.

func TestArithmeticCornerCases(t *testing.T) {
	c := NewCatalog()
	res := q(t, c, "SELECT -(-3), -1.5, 7 % 3, 7.5 % 2, 10 / 4, 10.0 / 4, NOT TRUE, NOT FALSE")
	row := res.Row(0)
	wants := []string{"3", "-1.5", "1", "1.5", "2", "2.5", "false", "true"}
	for i, w := range wants {
		if row[i].String() != w {
			t.Errorf("expr %d = %s, want %s", i, row[i], w)
		}
	}
	// Mixed int/float arithmetic widens.
	res = q(t, c, "SELECT 1 + 2.5 AS x")
	if v, _ := res.Column("x").Float(0); v != 3.5 {
		t.Errorf("1 + 2.5 = %v", v)
	}
	// Float modulo matches math.Mod.
	res = q(t, c, "SELECT 7.5 % 2.25 AS m")
	if v, _ := res.Column("m").Float(0); math.Abs(v-math.Mod(7.5, 2.25)) > 1e-12 {
		t.Errorf("float mod = %v", v)
	}
	for _, bad := range []string{
		"SELECT 1 % 0",
		"SELECT 1.0 / 0.0",
		"SELECT 1.5 % 0",
		"SELECT -'abc'",
		"SELECT NOT 1",
		"SELECT 'a' + 1",
	} {
		if _, err := c.Query(bad); err == nil {
			t.Errorf("Query(%q) should fail", bad)
		}
	}
}

func TestNullArithmeticAndNot(t *testing.T) {
	c := salesCatalog(t)
	// NOT NULL is NULL, -NULL is NULL: neither row survives a WHERE.
	if got := q(t, c, "SELECT * FROM sales WHERE NOT (qty IS NULL AND qty IS NOT NULL) OR qty > 99999").NumRows(); got != 6 {
		t.Errorf("rows = %d", got)
	}
	res := q(t, c, "SELECT -qty AS neg FROM sales WHERE qty IS NULL")
	if !res.Column("neg").IsNull(0) {
		t.Error("-NULL should be NULL")
	}
}

func TestIsAggregateCall(t *testing.T) {
	s := mustParse(t, "SELECT SUM(a), SUM(a) + 1, b FROM t GROUP BY b")
	if !IsAggregateCall(s.Items[0].Expr) {
		t.Error("SUM(a) is an aggregate call")
	}
	if IsAggregateCall(s.Items[1].Expr) {
		t.Error("SUM(a)+1 is not a *direct* aggregate call")
	}
	if IsAggregateCall(s.Items[2].Expr) {
		t.Error("b is not an aggregate call")
	}
}

func TestContainsAggregateEveryNode(t *testing.T) {
	cases := map[string]bool{
		"SELECT a IN (SUM(b), 2) FROM t GROUP BY a":            true,
		"SELECT a IN (1, 2) FROM t GROUP BY a":                 false,
		"SELECT a BETWEEN MIN(b) AND MAX(b) FROM t GROUP BY a": true,
		"SELECT SUM(b) IS NULL FROM t":                         true,
		"SELECT a LIKE 'x%' FROM t GROUP BY a":                 false,
		"SELECT -SUM(b) FROM t":                                true,
		"SELECT ABS(b) FROM t GROUP BY ABS(b)":                 false,
		"SELECT CASE WHEN MAX(b) > 1 THEN 1 ELSE 0 END FROM t": true,
		"SELECT CASE WHEN a > 1 THEN 1 ELSE 0 END FROM t":      false,
	}
	for query, want := range cases {
		s := mustParse(t, query)
		if got := ContainsAggregate(s.Items[0].Expr); got != want {
			t.Errorf("ContainsAggregate(%q) = %v, want %v", query, got, want)
		}
	}
}

func TestAggregatesInsideEveryPredicateNode(t *testing.T) {
	// collectAggregates must find aggregates nested in IN, BETWEEN,
	// IS NULL, LIKE and unary nodes when they appear in HAVING.
	c := salesCatalog(t)
	queries := []string{
		"SELECT region FROM sales GROUP BY region HAVING SUM(qty) IN (10, 17)",
		"SELECT region FROM sales GROUP BY region HAVING SUM(qty) BETWEEN 9 AND 20",
		"SELECT region FROM sales GROUP BY region HAVING SUM(qty) IS NOT NULL",
		"SELECT region FROM sales GROUP BY region HAVING -SUM(qty) < 0",
		"SELECT region FROM sales GROUP BY region HAVING CASE WHEN COUNT(*) > 2 THEN TRUE ELSE FALSE END",
	}
	for _, query := range queries {
		res := q(t, c, query)
		if res.NumRows() != 2 {
			t.Errorf("Query(%q) rows = %d, want 2", query, res.NumRows())
		}
	}
	// MIN/MAX over strings inside HAVING comparisons.
	res := q(t, c, "SELECT region FROM sales GROUP BY region HAVING MIN(product) = 'apple'")
	if res.NumRows() != 2 {
		t.Errorf("string MIN having rows = %d", res.NumRows())
	}
}

func TestParserNotLookaheadRestore(t *testing.T) {
	// "NOT x = 1" exercises the save/restore path: NOT is consumed, the
	// following token is not IN/BETWEEN/LIKE, so the parser backtracks.
	s := mustParse(t, "SELECT a WHERE b > 1 AND NOT c = 2")
	if s.Where == nil {
		t.Fatal("no where")
	}
	// And the canonical form is stable.
	s2 := mustParse(t, s.String())
	if s.String() != s2.String() {
		t.Errorf("unstable: %s", s.String())
	}
}

func TestBetweenKindMismatch(t *testing.T) {
	c := salesCatalog(t)
	if _, err := c.Query("SELECT * FROM sales WHERE qty BETWEEN 'a' AND 'z'"); err == nil {
		t.Error("numeric BETWEEN string bounds should fail")
	}
	if _, err := c.Query("SELECT * FROM sales WHERE product BETWEEN 1 AND 2"); err == nil {
		t.Error("string BETWEEN numeric bounds should fail")
	}
	// NULL bounds make the predicate NULL (row dropped), not an error.
	if got := q(t, c, "SELECT * FROM sales WHERE qty BETWEEN NULL AND 10").NumRows(); got != 0 {
		t.Errorf("NULL-bound BETWEEN rows = %d", got)
	}
}

func TestSelectItemQuotedAliasRoundTrip(t *testing.T) {
	s := mustParse(t, `SELECT a AS "weird name" FROM t`)
	if s.Items[0].Alias != "weird name" {
		t.Fatalf("alias = %q", s.Items[0].Alias)
	}
	s2 := mustParse(t, s.String())
	if s2.Items[0].Alias != "weird name" {
		t.Errorf("alias lost in canonical round trip: %q", s.String())
	}
}

func TestExecuteNilTableWithFrom(t *testing.T) {
	s := mustParse(t, "SELECT a FROM ghost")
	if _, err := Execute(s, nil); err == nil {
		t.Error("FROM without a table should fail")
	}
}

func TestGroupValueOfDistinctKinds(t *testing.T) {
	// Grouping by an int-typed expression: keys must not collide with
	// string-typed keys of the same rendering.
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "n", Kind: dataset.KindInt},
		dataset.ColumnDef{Name: "s", Kind: dataset.KindString},
	)
	tab := dataset.NewTable("t", schema)
	tab.MustAppendRow(dataset.Int(1), dataset.StringVal("1"))
	tab.MustAppendRow(dataset.Int(1), dataset.StringVal("1"))
	c := NewCatalog()
	c.Register(tab)
	res := q(t, c, "SELECT n, s, COUNT(*) AS c FROM t GROUP BY n, s")
	if res.NumRows() != 1 || res.Column("c").Ints[0] != 2 {
		t.Errorf("grouping wrong: %d rows", res.NumRows())
	}
}
