package sql

import (
	"fmt"
	"math/rand"
	"testing"

	"viewseeker/internal/dataset"
)

func benchTable(rows int) *dataset.Table {
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "g", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "x", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "y", Kind: dataset.KindInt, Role: dataset.RoleMeasure},
	)
	t := dataset.NewTable("bench", schema)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < rows; i++ {
		t.MustAppendRow(
			dataset.StringVal(string(rune('a'+rng.Intn(8)))),
			dataset.Float(rng.Float64()*100),
			dataset.Int(int64(rng.Intn(1000))),
		)
	}
	return t
}

func BenchmarkParse(b *testing.B) {
	const q = "SELECT g, COUNT(*) AS n, SUM(x * 2) FROM bench WHERE y > 10 AND g IN ('a', 'b') GROUP BY g HAVING COUNT(*) > 5 ORDER BY n DESC LIMIT 10"
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanFilter(b *testing.B) {
	c := NewCatalog()
	c.Register(benchTable(100_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Query("SELECT x FROM bench WHERE y > 500 AND x < 50")
		if err != nil {
			b.Fatal(err)
		}
		if res.NumRows() == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkHashAggregate(b *testing.B) {
	c := NewCatalog()
	c.Register(benchTable(100_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Query("SELECT g, COUNT(*), SUM(x), AVG(y), MIN(x), MAX(y) FROM bench GROUP BY g")
		if err != nil {
			b.Fatal(err)
		}
		if res.NumRows() != 8 {
			b.Fatalf("groups = %d", res.NumRows())
		}
	}
}

func BenchmarkWidthBucketGroupBy(b *testing.B) {
	c := NewCatalog()
	c.Register(benchTable(100_000))
	q := fmt.Sprintf("SELECT WIDTH_BUCKET(x, 0, 100, %d) AS bin, COUNT(*) FROM bench GROUP BY WIDTH_BUCKET(x, 0, 100, %d)", 10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}
