package sql

import (
	"fmt"
	"math"
	"strings"

	"viewseeker/internal/dataset"
)

// getter produces the value of a compiled expression for one row (or one
// group, in aggregate output contexts).
type getter func(row int) (dataset.Value, error)

// compiler turns an Expr tree into a getter. bindNode is consulted first at
// every node; it lets contexts intercept column references, aggregate calls
// and whole sub-expressions (GROUP BY matching) before structural
// compilation proceeds.
type compiler struct {
	bindNode func(e Expr) (getter, bool, error)
}

func (c *compiler) compile(e Expr) (getter, error) {
	if c.bindNode != nil {
		g, ok, err := c.bindNode(e)
		if err != nil {
			return nil, err
		}
		if ok {
			return g, nil
		}
	}
	switch x := e.(type) {
	case *Literal:
		v := x.Val
		return func(int) (dataset.Value, error) { return v, nil }, nil
	case *ColumnRef:
		return nil, fmt.Errorf("sql: unknown column %q", x.Name)
	case *Unary:
		return c.compileUnary(x)
	case *Binary:
		return c.compileBinary(x)
	case *Call:
		return c.compileCall(x)
	case *InList:
		return c.compileIn(x)
	case *Between:
		return c.compileBetween(x)
	case *IsNull:
		xg, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		neg := x.Neg
		return func(row int) (dataset.Value, error) {
			v, err := xg(row)
			if err != nil {
				return dataset.Null, err
			}
			return dataset.Bool(v.IsNull() != neg), nil
		}, nil
	case *Like:
		return c.compileLike(x)
	case *Case:
		return c.compileCase(x)
	default:
		return nil, fmt.Errorf("sql: cannot compile %T", e)
	}
}

func (c *compiler) compileCase(x *Case) (getter, error) {
	type arm struct{ cond, result getter }
	arms := make([]arm, len(x.Whens))
	for i, w := range x.Whens {
		cg, err := c.compile(w.Cond)
		if err != nil {
			return nil, err
		}
		rg, err := c.compile(w.Result)
		if err != nil {
			return nil, err
		}
		arms[i] = arm{cg, rg}
	}
	var elseG getter
	if x.Else != nil {
		g, err := c.compile(x.Else)
		if err != nil {
			return nil, err
		}
		elseG = g
	}
	return func(row int) (dataset.Value, error) {
		for _, a := range arms {
			v, err := a.cond(row)
			if err != nil {
				return dataset.Null, err
			}
			if v.Kind == dataset.KindBool && v.B {
				return a.result(row)
			}
			if !v.IsNull() && v.Kind != dataset.KindBool {
				return dataset.Null, fmt.Errorf("sql: CASE condition evaluated to %s", v.Kind)
			}
		}
		if elseG != nil {
			return elseG(row)
		}
		return dataset.Null, nil
	}, nil
}

func (c *compiler) compileUnary(x *Unary) (getter, error) {
	xg, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "-":
		return func(row int) (dataset.Value, error) {
			v, err := xg(row)
			if err != nil || v.IsNull() {
				return dataset.Null, err
			}
			switch v.Kind {
			case dataset.KindInt:
				return dataset.Int(-v.I), nil
			case dataset.KindFloat:
				return dataset.Float(-v.F), nil
			default:
				return dataset.Null, fmt.Errorf("sql: cannot negate %s", v.Kind)
			}
		}, nil
	case "NOT":
		return func(row int) (dataset.Value, error) {
			v, err := xg(row)
			if err != nil || v.IsNull() {
				return dataset.Null, err
			}
			if v.Kind != dataset.KindBool {
				return dataset.Null, fmt.Errorf("sql: NOT applied to %s", v.Kind)
			}
			return dataset.Bool(!v.B), nil
		}, nil
	default:
		return nil, fmt.Errorf("sql: unknown unary operator %q", x.Op)
	}
}

func (c *compiler) compileBinary(x *Binary) (getter, error) {
	lg, err := c.compile(x.L)
	if err != nil {
		return nil, err
	}
	rg, err := c.compile(x.R)
	if err != nil {
		return nil, err
	}
	op := x.Op
	switch op {
	case "AND", "OR":
		isAnd := op == "AND"
		return func(row int) (dataset.Value, error) {
			l, err := lg(row)
			if err != nil {
				return dataset.Null, err
			}
			// Three-valued logic with short-circuiting on the determining
			// operand.
			if l.Kind == dataset.KindBool {
				if isAnd && !l.B {
					return dataset.Bool(false), nil
				}
				if !isAnd && l.B {
					return dataset.Bool(true), nil
				}
			} else if !l.IsNull() {
				return dataset.Null, fmt.Errorf("sql: %s applied to %s", op, l.Kind)
			}
			r, err := rg(row)
			if err != nil {
				return dataset.Null, err
			}
			if r.Kind == dataset.KindBool {
				if isAnd && !r.B {
					return dataset.Bool(false), nil
				}
				if !isAnd && r.B {
					return dataset.Bool(true), nil
				}
			} else if !r.IsNull() {
				return dataset.Null, fmt.Errorf("sql: %s applied to %s", op, r.Kind)
			}
			if l.IsNull() || r.IsNull() {
				return dataset.Null, nil
			}
			// Neither operand decided the result: AND of two trues, or OR
			// of two falses.
			return dataset.Bool(isAnd), nil
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		return func(row int) (dataset.Value, error) {
			l, err := lg(row)
			if err != nil {
				return dataset.Null, err
			}
			r, err := rg(row)
			if err != nil {
				return dataset.Null, err
			}
			if l.IsNull() || r.IsNull() {
				return dataset.Null, nil
			}
			if err := comparableKinds(l, r); err != nil {
				return dataset.Null, err
			}
			cmp := dataset.Compare(l, r)
			var b bool
			switch op {
			case "=":
				b = cmp == 0
			case "!=":
				b = cmp != 0
			case "<":
				b = cmp < 0
			case "<=":
				b = cmp <= 0
			case ">":
				b = cmp > 0
			case ">=":
				b = cmp >= 0
			}
			return dataset.Bool(b), nil
		}, nil
	case "+", "-", "*", "/", "%":
		return func(row int) (dataset.Value, error) {
			l, err := lg(row)
			if err != nil {
				return dataset.Null, err
			}
			r, err := rg(row)
			if err != nil {
				return dataset.Null, err
			}
			if l.IsNull() || r.IsNull() {
				return dataset.Null, nil
			}
			return arith(op, l, r)
		}, nil
	default:
		return nil, fmt.Errorf("sql: unknown operator %q", op)
	}
}

func comparableKinds(l, r dataset.Value) error {
	lNum := l.Kind == dataset.KindInt || l.Kind == dataset.KindFloat || l.Kind == dataset.KindBool
	rNum := r.Kind == dataset.KindInt || r.Kind == dataset.KindFloat || r.Kind == dataset.KindBool
	if lNum != rNum {
		return fmt.Errorf("sql: cannot compare %s with %s", l.Kind, r.Kind)
	}
	return nil
}

func arith(op string, l, r dataset.Value) (dataset.Value, error) {
	if l.Kind == dataset.KindInt && r.Kind == dataset.KindInt {
		switch op {
		case "+":
			return dataset.Int(l.I + r.I), nil
		case "-":
			return dataset.Int(l.I - r.I), nil
		case "*":
			return dataset.Int(l.I * r.I), nil
		case "/":
			if r.I == 0 {
				return dataset.Null, fmt.Errorf("sql: division by zero")
			}
			return dataset.Int(l.I / r.I), nil
		case "%":
			if r.I == 0 {
				return dataset.Null, fmt.Errorf("sql: modulo by zero")
			}
			return dataset.Int(l.I % r.I), nil
		}
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return dataset.Null, fmt.Errorf("sql: arithmetic on %s and %s", l.Kind, r.Kind)
	}
	switch op {
	case "+":
		return dataset.Float(lf + rf), nil
	case "-":
		return dataset.Float(lf - rf), nil
	case "*":
		return dataset.Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return dataset.Null, fmt.Errorf("sql: division by zero")
		}
		return dataset.Float(lf / rf), nil
	case "%":
		if rf == 0 {
			return dataset.Null, fmt.Errorf("sql: modulo by zero")
		}
		return dataset.Float(math.Mod(lf, rf)), nil
	}
	return dataset.Null, fmt.Errorf("sql: unknown arithmetic operator %q", op)
}

func (c *compiler) compileCall(x *Call) (getter, error) {
	if aggregateFuncs[x.Func] {
		return nil, fmt.Errorf("sql: aggregate %s not allowed in this context", x.Func)
	}
	args := make([]getter, len(x.Args))
	for i, a := range x.Args {
		g, err := c.compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = g
	}
	fn, ok := scalarFuncs[x.Func]
	if !ok {
		return nil, fmt.Errorf("sql: unknown function %s", x.Func)
	}
	if fn.arity >= 0 && len(args) != fn.arity {
		return nil, fmt.Errorf("sql: %s expects %d arguments, got %d", x.Func, fn.arity, len(args))
	}
	impl := fn.impl
	return func(row int) (dataset.Value, error) {
		vals := make([]dataset.Value, len(args))
		for i, g := range args {
			v, err := g(row)
			if err != nil {
				return dataset.Null, err
			}
			vals[i] = v
		}
		return impl(vals)
	}, nil
}

type scalarFunc struct {
	arity int // -1 for variadic
	impl  func(args []dataset.Value) (dataset.Value, error)
}

func numericUnary(name string, f func(float64) float64) scalarFunc {
	return scalarFunc{arity: 1, impl: func(args []dataset.Value) (dataset.Value, error) {
		if args[0].IsNull() {
			return dataset.Null, nil
		}
		x, ok := args[0].AsFloat()
		if !ok {
			return dataset.Null, fmt.Errorf("sql: %s expects a numeric argument, got %s", name, args[0].Kind)
		}
		return dataset.Float(f(x)), nil
	}}
}

var scalarFuncs = map[string]scalarFunc{
	"ABS":   numericUnary("ABS", math.Abs),
	"SQRT":  numericUnary("SQRT", math.Sqrt),
	"FLOOR": numericUnary("FLOOR", math.Floor),
	"CEIL":  numericUnary("CEIL", math.Ceil),
	"ROUND": numericUnary("ROUND", math.Round),
	"LN":    numericUnary("LN", math.Log),
	"EXP":   numericUnary("EXP", math.Exp),
	"POWER": {arity: 2, impl: func(args []dataset.Value) (dataset.Value, error) {
		if args[0].IsNull() || args[1].IsNull() {
			return dataset.Null, nil
		}
		base, ok1 := args[0].AsFloat()
		exp, ok2 := args[1].AsFloat()
		if !ok1 || !ok2 {
			return dataset.Null, fmt.Errorf("sql: POWER expects numeric arguments")
		}
		return dataset.Float(math.Pow(base, exp)), nil
	}},
	"CONCAT": {arity: -1, impl: func(args []dataset.Value) (dataset.Value, error) {
		var sb strings.Builder
		for _, a := range args {
			if a.IsNull() {
				continue // SQL CONCAT skips NULLs
			}
			sb.WriteString(a.String())
		}
		return dataset.StringVal(sb.String()), nil
	}},
	// SUBSTR(s, start, length) with 1-based start, clamped to the string.
	"SUBSTR": {arity: 3, impl: func(args []dataset.Value) (dataset.Value, error) {
		if args[0].IsNull() {
			return dataset.Null, nil
		}
		s := args[0].String()
		start, ok1 := args[1].AsInt()
		length, ok2 := args[2].AsInt()
		if !ok1 || !ok2 {
			return dataset.Null, fmt.Errorf("sql: SUBSTR expects integer start and length")
		}
		if start < 1 {
			start = 1
		}
		from := int(start) - 1
		if from >= len(s) || length <= 0 {
			return dataset.StringVal(""), nil
		}
		to := from + int(length)
		if to > len(s) {
			to = len(s)
		}
		return dataset.StringVal(s[from:to]), nil
	}},
	"LOWER": {arity: 1, impl: func(args []dataset.Value) (dataset.Value, error) {
		if args[0].IsNull() {
			return dataset.Null, nil
		}
		return dataset.StringVal(strings.ToLower(args[0].String())), nil
	}},
	"UPPER": {arity: 1, impl: func(args []dataset.Value) (dataset.Value, error) {
		if args[0].IsNull() {
			return dataset.Null, nil
		}
		return dataset.StringVal(strings.ToUpper(args[0].String())), nil
	}},
	"LENGTH": {arity: 1, impl: func(args []dataset.Value) (dataset.Value, error) {
		if args[0].IsNull() {
			return dataset.Null, nil
		}
		return dataset.Int(int64(len(args[0].String()))), nil
	}},
	// WIDTH_BUCKET(x, lo, hi, n) follows PostgreSQL: bucket 0 below lo,
	// n+1 at or above hi, else 1..n equal-width buckets.
	"WIDTH_BUCKET": {arity: 4, impl: func(args []dataset.Value) (dataset.Value, error) {
		if args[0].IsNull() {
			return dataset.Null, nil
		}
		x, ok0 := args[0].AsFloat()
		lo, ok1 := args[1].AsFloat()
		hi, ok2 := args[2].AsFloat()
		n, ok3 := args[3].AsInt()
		if !ok0 || !ok1 || !ok2 || !ok3 {
			return dataset.Null, fmt.Errorf("sql: WIDTH_BUCKET expects numeric arguments")
		}
		if n <= 0 || hi <= lo {
			return dataset.Null, fmt.Errorf("sql: WIDTH_BUCKET needs n > 0 and hi > lo")
		}
		switch {
		case x < lo:
			return dataset.Int(0), nil
		case x >= hi:
			return dataset.Int(n + 1), nil
		default:
			return dataset.Int(int64((x-lo)/(hi-lo)*float64(n)) + 1), nil
		}
	}},
	"COALESCE": {arity: -1, impl: func(args []dataset.Value) (dataset.Value, error) {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return dataset.Null, nil
	}},
}

func (c *compiler) compileIn(x *InList) (getter, error) {
	xg, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	list := make([]getter, len(x.List))
	for i, e := range x.List {
		g, err := c.compile(e)
		if err != nil {
			return nil, err
		}
		list[i] = g
	}
	neg := x.Neg
	return func(row int) (dataset.Value, error) {
		v, err := xg(row)
		if err != nil {
			return dataset.Null, err
		}
		if v.IsNull() {
			return dataset.Null, nil
		}
		sawNull := false
		for _, g := range list {
			e, err := g(row)
			if err != nil {
				return dataset.Null, err
			}
			if e.IsNull() {
				sawNull = true
				continue
			}
			if comparableKinds(v, e) == nil && dataset.Compare(v, e) == 0 {
				return dataset.Bool(!neg), nil
			}
		}
		if sawNull {
			return dataset.Null, nil
		}
		return dataset.Bool(neg), nil
	}, nil
}

func (c *compiler) compileBetween(x *Between) (getter, error) {
	xg, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	log, err := c.compile(x.Lo)
	if err != nil {
		return nil, err
	}
	hig, err := c.compile(x.Hi)
	if err != nil {
		return nil, err
	}
	neg := x.Neg
	return func(row int) (dataset.Value, error) {
		v, err := xg(row)
		if err != nil {
			return dataset.Null, err
		}
		lo, err := log(row)
		if err != nil {
			return dataset.Null, err
		}
		hi, err := hig(row)
		if err != nil {
			return dataset.Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return dataset.Null, nil
		}
		if err := comparableKinds(v, lo); err != nil {
			return dataset.Null, err
		}
		if err := comparableKinds(v, hi); err != nil {
			return dataset.Null, err
		}
		in := dataset.Compare(v, lo) >= 0 && dataset.Compare(v, hi) <= 0
		return dataset.Bool(in != neg), nil
	}, nil
}

func (c *compiler) compileLike(x *Like) (getter, error) {
	xg, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	pg, err := c.compile(x.Pattern)
	if err != nil {
		return nil, err
	}
	neg := x.Neg
	return func(row int) (dataset.Value, error) {
		v, err := xg(row)
		if err != nil {
			return dataset.Null, err
		}
		p, err := pg(row)
		if err != nil {
			return dataset.Null, err
		}
		if v.IsNull() || p.IsNull() {
			return dataset.Null, nil
		}
		return dataset.Bool(likeMatch(v.String(), p.String()) != neg), nil
	}, nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one byte).
func likeMatch(s, pattern string) bool {
	// Iterative two-pointer match with backtracking on the last %.
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		if pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]) {
			si++
			pi++
		} else if pi < len(pattern) && pattern[pi] == '%' {
			star = pi
			match = si
			pi++
		} else if star >= 0 {
			pi = star + 1
			match++
			si = match
		} else {
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
