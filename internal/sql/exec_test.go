package sql

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"viewseeker/internal/dataset"
)

// salesCatalog builds a small catalog with a sales table:
//
//	region  product  qty    price
//	east    apple    10     1.0
//	east    banana   5      0.5
//	west    apple    7      1.1
//	west    banana   NULL   0.6
//	west    cherry   3      3.0
//	east    apple    2      1.2
func salesCatalog(t *testing.T) *Catalog {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "region", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "product", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "qty", Kind: dataset.KindInt, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "price", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	tab := dataset.NewTable("sales", schema)
	rows := []struct {
		region, product string
		qty             dataset.Value
		price           float64
	}{
		{"east", "apple", dataset.Int(10), 1.0},
		{"east", "banana", dataset.Int(5), 0.5},
		{"west", "apple", dataset.Int(7), 1.1},
		{"west", "banana", dataset.Null, 0.6},
		{"west", "cherry", dataset.Int(3), 3.0},
		{"east", "apple", dataset.Int(2), 1.2},
	}
	for _, r := range rows {
		tab.MustAppendRow(dataset.StringVal(r.region), dataset.StringVal(r.product), r.qty, dataset.Float(r.price))
	}
	c := NewCatalog()
	c.Register(tab)
	return c
}

func q(t *testing.T, c *Catalog, query string) *dataset.Table {
	t.Helper()
	res, err := c.Query(query)
	if err != nil {
		t.Fatalf("Query(%q): %v", query, err)
	}
	return res
}

func TestSelectStar(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, "SELECT * FROM sales")
	if res.NumRows() != 6 || res.Schema.Len() != 4 {
		t.Errorf("rows=%d cols=%d", res.NumRows(), res.Schema.Len())
	}
	// Star keeps roles.
	if def, _ := res.Schema.Def("region"); def.Role != dataset.RoleDimension {
		t.Error("star should preserve roles")
	}
}

func TestWhereFilters(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, "SELECT product FROM sales WHERE region = 'east' AND qty > 3")
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", res.NumRows())
	}
}

func TestWhereNullIsNotTrue(t *testing.T) {
	c := salesCatalog(t)
	// qty > 3 is NULL for the NULL qty row: excluded.
	res := q(t, c, "SELECT * FROM sales WHERE qty > 0")
	if res.NumRows() != 5 {
		t.Errorf("rows = %d, want 5 (NULL row excluded)", res.NumRows())
	}
	res = q(t, c, "SELECT * FROM sales WHERE qty IS NULL")
	if res.NumRows() != 1 {
		t.Errorf("IS NULL rows = %d, want 1", res.NumRows())
	}
}

func TestGroupByAggregates(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, `SELECT region, COUNT(*) AS n, SUM(qty) AS total, AVG(price) AS avgp,
		MIN(qty) AS lo, MAX(qty) AS hi FROM sales GROUP BY region ORDER BY region`)
	if res.NumRows() != 2 {
		t.Fatalf("groups = %d", res.NumRows())
	}
	// east: 3 rows, qty 10+5+2=17, min 2 max 10.
	if res.Column("n").Ints[0] != 3 || res.Column("total").Ints[0] != 17 {
		t.Errorf("east aggregates wrong: n=%d total=%d", res.Column("n").Ints[0], res.Column("total").Ints[0])
	}
	if res.Column("lo").Ints[0] != 2 || res.Column("hi").Ints[0] != 10 {
		t.Errorf("east min/max wrong")
	}
	// west: COUNT(*)=3 but SUM(qty) skips the NULL: 7+3=10.
	if res.Column("n").Ints[1] != 3 || res.Column("total").Ints[1] != 10 {
		t.Errorf("west aggregates wrong: n=%d total=%d", res.Column("n").Ints[1], res.Column("total").Ints[1])
	}
	wantAvg := (1.1 + 0.6 + 3.0) / 3
	if math.Abs(res.Column("avgp").Floats[1]-wantAvg) > 1e-12 {
		t.Errorf("west avg price = %v, want %v", res.Column("avgp").Floats[1], wantAvg)
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, "SELECT COUNT(qty) AS n, COUNT(*) AS all_rows FROM sales")
	if res.Column("n").Ints[0] != 5 || res.Column("all_rows").Ints[0] != 6 {
		t.Errorf("COUNT(qty)=%d COUNT(*)=%d", res.Column("n").Ints[0], res.Column("all_rows").Ints[0])
	}
}

func TestGlobalAggregateOnEmptyMatch(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, "SELECT COUNT(*) AS n, SUM(qty) AS s FROM sales WHERE region = 'north'")
	if res.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1 global group", res.NumRows())
	}
	if res.Column("n").Ints[0] != 0 {
		t.Errorf("count = %d, want 0", res.Column("n").Ints[0])
	}
	if !res.Column("s").IsNull(0) {
		t.Error("SUM over empty set should be NULL")
	}
}

func TestHaving(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, "SELECT product, COUNT(*) AS n FROM sales GROUP BY product HAVING COUNT(*) >= 2 ORDER BY product")
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (apple, banana)", res.NumRows())
	}
	if res.Column("product").Strs[0] != "apple" || res.Column("product").Strs[1] != "banana" {
		t.Errorf("products = %v", res.Column("product").Strs)
	}
}

func TestAggregateExpression(t *testing.T) {
	c := salesCatalog(t)
	// Expressions over aggregates, and aggregates over expressions.
	res := q(t, c, "SELECT SUM(qty * 2) AS d, SUM(qty) * 2 AS e, SUM(price * price) AS sq FROM sales WHERE qty IS NOT NULL")
	if res.Column("d").Ints[0] != 54 || res.Column("e").Ints[0] != 54 {
		t.Errorf("doubled sums: d=%v e=%v", res.Column("d").Ints[0], res.Column("e").Ints[0])
	}
	want := 1.0 + 0.25 + 1.21 + 9.0 + 1.44
	if math.Abs(res.Column("sq").Floats[0]-want) > 1e-9 {
		t.Errorf("sum of squares = %v, want %v", res.Column("sq").Floats[0], want)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, "SELECT product, price FROM sales ORDER BY price DESC LIMIT 2")
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Column("product").Strs[0] != "cherry" {
		t.Errorf("top product = %s", res.Column("product").Strs[0])
	}
	// Positional ORDER BY.
	res = q(t, c, "SELECT product, price FROM sales ORDER BY 2 LIMIT 1")
	if res.Column("product").Strs[0] != "banana" {
		t.Errorf("cheapest = %s", res.Column("product").Strs[0])
	}
}

func TestOrderByStability(t *testing.T) {
	c := salesCatalog(t)
	// Rows with equal keys keep their scan order (stable sort).
	res := q(t, c, "SELECT product, region FROM sales ORDER BY region")
	if res.Column("product").Strs[0] != "apple" || res.Column("product").Strs[2] != "apple" {
		t.Errorf("east block order changed: %v", res.Column("product").Strs)
	}
}

func TestDistinct(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, "SELECT DISTINCT region FROM sales ORDER BY region")
	if res.NumRows() != 2 {
		t.Fatalf("distinct rows = %d", res.NumRows())
	}
	res = q(t, c, "SELECT DISTINCT region, product FROM sales")
	if res.NumRows() != 5 {
		t.Errorf("distinct pairs = %d, want 5", res.NumRows())
	}
}

func TestTableLessSelect(t *testing.T) {
	c := NewCatalog()
	res := q(t, c, "SELECT 1 + 2 AS three, UPPER('ok') AS s")
	if res.Column("three").Ints[0] != 3 || res.Column("s").Strs[0] != "OK" {
		t.Errorf("table-less select wrong: %v %v", res.Row(0), res.Schema.Columns)
	}
}

func TestScalarFunctions(t *testing.T) {
	c := NewCatalog()
	res := q(t, c, "SELECT ABS(-2), SQRT(9), FLOOR(1.7), CEIL(1.2), ROUND(2.5), LENGTH('abc'), LOWER('AbC'), COALESCE(NULL, 5)")
	row := res.Row(0)
	wants := []string{"2", "3", "1", "2", "3", "3", "abc", "5"}
	for i, w := range wants {
		if row[i].String() != w {
			t.Errorf("func result %d = %s, want %s", i, row[i], w)
		}
	}
}

func TestWidthBucket(t *testing.T) {
	c := NewCatalog()
	cases := []struct {
		expr string
		want int64
	}{
		{"WIDTH_BUCKET(0.0, 0, 1, 4)", 1},
		{"WIDTH_BUCKET(0.24, 0, 1, 4)", 1},
		{"WIDTH_BUCKET(0.25, 0, 1, 4)", 2},
		{"WIDTH_BUCKET(0.99, 0, 1, 4)", 4},
		{"WIDTH_BUCKET(1.0, 0, 1, 4)", 5},
		{"WIDTH_BUCKET(-0.1, 0, 1, 4)", 0},
	}
	for _, cse := range cases {
		res := q(t, c, "SELECT "+cse.expr+" AS b")
		if got := res.Column("b").Ints[0]; got != cse.want {
			t.Errorf("%s = %d, want %d", cse.expr, got, cse.want)
		}
	}
	if _, err := c.Query("SELECT WIDTH_BUCKET(1, 1, 0, 4)"); err == nil {
		t.Error("expected error for hi <= lo")
	}
}

func TestGroupByExpression(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, "SELECT WIDTH_BUCKET(price, 0, 4, 2) AS bin, COUNT(*) AS n FROM sales GROUP BY WIDTH_BUCKET(price, 0, 4, 2) ORDER BY bin")
	if res.NumRows() != 2 {
		t.Fatalf("bins = %d", res.NumRows())
	}
	// Prices 1.0, 0.5, 1.1, 0.6, 1.2 are in [0,2) = bin 1; 3.0 in bin 2.
	if res.Column("n").Ints[0] != 5 || res.Column("n").Ints[1] != 1 {
		t.Errorf("bin counts = %v", res.Column("n").Ints)
	}
}

func TestInBetweenLike(t *testing.T) {
	c := salesCatalog(t)
	if got := q(t, c, "SELECT * FROM sales WHERE product IN ('apple', 'cherry')").NumRows(); got != 4 {
		t.Errorf("IN rows = %d", got)
	}
	if got := q(t, c, "SELECT * FROM sales WHERE product NOT IN ('apple', 'cherry')").NumRows(); got != 2 {
		t.Errorf("NOT IN rows = %d", got)
	}
	if got := q(t, c, "SELECT * FROM sales WHERE price BETWEEN 0.5 AND 1.1").NumRows(); got != 4 {
		t.Errorf("BETWEEN rows = %d", got)
	}
	if got := q(t, c, "SELECT * FROM sales WHERE product LIKE '%an%'").NumRows(); got != 2 {
		t.Errorf("LIKE rows = %d", got)
	}
	if got := q(t, c, "SELECT * FROM sales WHERE product LIKE '_pple'").NumRows(); got != 3 {
		t.Errorf("LIKE _ rows = %d", got)
	}
}

func TestNullPropagation(t *testing.T) {
	c := salesCatalog(t)
	// qty + 1 is NULL for the null row; NULL = NULL is NULL (excluded).
	if got := q(t, c, "SELECT * FROM sales WHERE qty + 1 = qty + 1").NumRows(); got != 5 {
		t.Errorf("null arithmetic rows = %d, want 5", got)
	}
	// x IN (..., NULL) with no match is NULL, not false.
	if got := q(t, c, "SELECT * FROM sales WHERE qty NOT IN (999, NULL)").NumRows(); got != 0 {
		t.Errorf("NOT IN with NULL rows = %d, want 0", got)
	}
}

func TestExecErrors(t *testing.T) {
	c := salesCatalog(t)
	bad := []string{
		"SELECT nope FROM sales",
		"SELECT * FROM nope",
		"SELECT region FROM sales WHERE SUM(qty) > 1",
		"SELECT * FROM sales GROUP BY region",
		"SELECT qty FROM sales GROUP BY region",
		"SELECT region FROM sales GROUP BY SUM(qty)",
		"SELECT SUM(*) FROM sales",
		"SELECT SUM(MAX(qty)) FROM sales",
		"SELECT NOSUCHFUNC(qty) FROM sales",
		"SELECT region FROM sales ORDER BY 99",
		"SELECT 1/0",
		"SELECT region = qty FROM sales",
	}
	for _, query := range bad {
		if _, err := c.Query(query); err == nil {
			t.Errorf("Query(%q) should fail", query)
		}
	}
}

func TestDuplicateOutputNames(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, "SELECT region, region FROM sales LIMIT 1")
	if res.Schema.Columns[0].Name == res.Schema.Columns[1].Name {
		t.Errorf("duplicate names not disambiguated: %v", res.Schema.Columns)
	}
}

func TestCatalogNames(t *testing.T) {
	c := salesCatalog(t)
	c.Register(dataset.NewTable("aaa", dataset.MustSchema(dataset.ColumnDef{Name: "x", Kind: dataset.KindInt})))
	names := c.Names()
	if len(names) != 2 || names[0] != "aaa" || names[1] != "sales" {
		t.Errorf("names = %v", names)
	}
	if c.Table("sales") == nil || c.Table("ghost") != nil {
		t.Error("Table lookup wrong")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_", false},
		{"", "%", true},
		{"", "", true},
		{"abc", "a%b%c", true},
		{"abc", "%%%", true},
		{"abc", "_b_", true},
		{"abc", "__", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestMinMaxOnStrings(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, "SELECT MIN(product) AS lo, MAX(product) AS hi FROM sales")
	if res.Column("lo").Strs[0] != "apple" || res.Column("hi").Strs[0] != "cherry" {
		t.Errorf("string min/max = %v %v", res.Column("lo").Strs[0], res.Column("hi").Strs[0])
	}
}

func TestAvgIsFloatEvenForInts(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, "SELECT AVG(qty) AS a FROM sales")
	def, _ := res.Schema.Def("a")
	if def.Kind != dataset.KindFloat {
		t.Errorf("AVG kind = %v, want float", def.Kind)
	}
	want := 27.0 / 5
	if math.Abs(res.Column("a").Floats[0]-want) > 1e-12 {
		t.Errorf("avg = %v, want %v", res.Column("a").Floats[0], want)
	}
}

func TestVarianceAndStddev(t *testing.T) {
	c := salesCatalog(t)
	// qty values (non-null): 10, 5, 7, 3, 2 → mean 5.4,
	// population variance = (21.16+0.16+2.56+5.76+11.56)/5 = 8.24.
	res := q(t, c, "SELECT VARIANCE(qty) AS v, STDDEV(qty) AS s FROM sales")
	v, _ := res.Column("v").Float(0)
	s, _ := res.Column("s").Float(0)
	if math.Abs(v-8.24) > 1e-9 {
		t.Errorf("variance = %v, want 8.24", v)
	}
	if math.Abs(s-math.Sqrt(8.24)) > 1e-9 {
		t.Errorf("stddev = %v", s)
	}
	// Constant column: zero variance.
	res = q(t, c, "SELECT VARIANCE(qty) AS v FROM sales WHERE qty = 7")
	v, _ = res.Column("v").Float(0)
	if v != 0 {
		t.Errorf("constant variance = %v", v)
	}
	// Empty group: NULL.
	res = q(t, c, "SELECT STDDEV(qty) AS s FROM sales WHERE region = 'north'")
	if !res.Column("s").IsNull(0) {
		t.Error("stddev over empty set should be NULL")
	}
	// Grouped.
	res = q(t, c, "SELECT region, STDDEV(price) AS s FROM sales GROUP BY region ORDER BY region")
	if res.NumRows() != 2 {
		t.Fatalf("groups = %d", res.NumRows())
	}
	east, _ := res.Column("s").Float(0)
	if east <= 0 {
		t.Errorf("east price stddev = %v, want > 0", east)
	}
}

func TestCaseExpression(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, `SELECT product,
		CASE WHEN price >= 2 THEN 'pricey' WHEN price >= 1 THEN 'fair' ELSE 'cheap' END AS band
		FROM sales ORDER BY product, band`)
	if res.NumRows() != 6 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	bands := map[string]int{}
	for i := 0; i < res.NumRows(); i++ {
		bands[res.Column("band").Strs[i]]++
	}
	if bands["pricey"] != 1 || bands["fair"] != 3 || bands["cheap"] != 2 {
		t.Errorf("bands = %v", bands)
	}
}

func TestCaseNoElseIsNull(t *testing.T) {
	c := NewCatalog()
	res := q(t, c, "SELECT CASE WHEN FALSE THEN 1 END AS v")
	if !res.Column("v").IsNull(0) {
		t.Error("CASE with no matching arm and no ELSE must be NULL")
	}
}

func TestCaseInsideAggregate(t *testing.T) {
	c := salesCatalog(t)
	// Conditional counting: the classic CASE-in-SUM idiom.
	res := q(t, c, "SELECT SUM(CASE WHEN region = 'east' THEN 1 ELSE 0 END) AS east_rows FROM sales")
	if res.Column("east_rows").Ints[0] != 3 {
		t.Errorf("east_rows = %d, want 3", res.Column("east_rows").Ints[0])
	}
}

func TestCaseWithAggregateArms(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, `SELECT region,
		CASE WHEN COUNT(*) >= 3 THEN 'big' ELSE 'small' END AS size_band
		FROM sales GROUP BY region ORDER BY region`)
	if res.Column("size_band").Strs[0] != "big" || res.Column("size_band").Strs[1] != "big" {
		t.Errorf("bands = %v", res.Column("size_band").Strs)
	}
}

func TestCaseParseErrors(t *testing.T) {
	c := salesCatalog(t)
	for _, query := range []string{
		"SELECT CASE END FROM sales",
		"SELECT CASE WHEN price THEN 1 END FROM sales", // non-bool condition
		"SELECT CASE WHEN price > 1 THEN 1 FROM sales", // missing END
	} {
		if _, err := c.Query(query); err == nil {
			t.Errorf("Query(%q) should fail", query)
		}
	}
}

func TestCaseStringRoundTrip(t *testing.T) {
	s := mustParse(t, "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t")
	s2 := mustParse(t, s.String())
	if s.String() != s2.String() {
		t.Errorf("CASE canonical form unstable: %s", s.String())
	}
}

// explainDoc runs an EXPLAIN query and decodes the one-row JSON plan.
func explainDoc(t *testing.T, c *Catalog, query string) *Plan {
	t.Helper()
	res := q(t, c, query)
	if res.NumRows() != 1 {
		t.Fatalf("EXPLAIN rows = %d, want 1", res.NumRows())
	}
	var p Plan
	if err := json.Unmarshal([]byte(res.Column("plan").Strs[0]), &p); err != nil {
		t.Fatalf("EXPLAIN output is not JSON: %v", err)
	}
	return &p
}

// ops flattens the plan's operator chain outermost-first.
func ops(p *Plan) []string {
	var out []string
	for n := p.Root; n != nil; n = n.Input {
		out = append(out, n.Op)
	}
	return out
}

func TestExplain(t *testing.T) {
	c := salesCatalog(t)
	p := explainDoc(t, c, "EXPLAIN SELECT region, COUNT(*) AS n FROM sales WHERE qty > 1 GROUP BY region HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 3")
	if p.Version != PlanVersion {
		t.Errorf("version = %d, want %d", p.Version, PlanVersion)
	}
	got := ops(p)
	want := []string{"limit", "sort", "project", "filter", "aggregate", "filter", "scan"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("ops = %v, want %v", got, want)
	}
	// Spot-check operator payloads down the chain.
	limit := p.Root
	if limit.Count == nil || *limit.Count != 3 {
		t.Errorf("limit count = %v", limit.Count)
	}
	sortN := limit.Input
	if len(sortN.Keys) != 1 || sortN.Keys[0].Expr != "n" || !sortN.Keys[0].Desc {
		t.Errorf("sort keys = %+v", sortN.Keys)
	}
	project := sortN.Input
	if strings.Join(project.Columns, ",") != "region,n" {
		t.Errorf("project columns = %v", project.Columns)
	}
	having := project.Input
	if having.Phase != "having" || having.Predicate != "(COUNT(*) > 1)" {
		t.Errorf("having = %+v", having)
	}
	agg := having.Input
	if agg.Strategy != "fused-hash" || strings.Join(agg.GroupBy, ",") != "region" {
		t.Errorf("aggregate = %+v", agg)
	}
	if len(agg.Aggregates) != 1 || agg.Aggregates[0].Call != "COUNT(*)" ||
		agg.Aggregates[0].Fn != "COUNT" || !agg.Aggregates[0].Star || !agg.Aggregates[0].Columnar {
		t.Errorf("aggregates = %+v", agg.Aggregates)
	}
	filter := agg.Input
	if filter.Predicate != "(qty > 1)" || filter.Phase != "" {
		t.Errorf("filter = %+v", filter)
	}
	if filter.Input.Op != "scan" || filter.Input.Table != "sales" {
		t.Errorf("scan = %+v", filter.Input)
	}

	// Columnar eligibility: numeric column yes, string column no, MIN no.
	p = explainDoc(t, c, "EXPLAIN SELECT SUM(qty), SUM(region), MIN(price) FROM sales")
	agg = p.Root.Input // project -> aggregate
	if agg.Strategy != "fused-global" {
		t.Errorf("strategy = %q", agg.Strategy)
	}
	byCall := make(map[string]PlanAggregate)
	for _, a := range agg.Aggregates {
		byCall[a.Call] = a
	}
	if !byCall["SUM(qty)"].Columnar {
		t.Error("SUM(qty) should be columnar")
	}
	if byCall["SUM(region)"].Columnar {
		t.Error("SUM(region) should not be columnar")
	}
	if byCall["MIN(price)"].Columnar {
		t.Error("MIN(price) should not be columnar")
	}

	// Table-less, distinct.
	p = explainDoc(t, c, "explain SELECT DISTINCT 1 + 1")
	got = ops(p)
	want = []string{"distinct", "project", "values"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("ops = %v, want %v", got, want)
	}
	// EXPLAIN is lenient about unregistered tables: plan shape only.
	p = explainDoc(t, c, "EXPLAIN SELECT COUNT(x) FROM nosuch")
	if p.Root.Input.Aggregates[0].Columnar {
		t.Error("unknown table cannot promise a columnar path")
	}
	// EXPLAIN of an invalid statement fails like parsing it would.
	if _, err := c.Query("EXPLAIN SELECT FROM"); err == nil {
		t.Error("explain of bad statement should fail")
	}
	// EXPLAIN as a column name is not the keyword.
	if _, err := c.Query("EXPLAINx"); err == nil {
		t.Error("non-statement should fail")
	}
}

func TestMoreScalarFunctions(t *testing.T) {
	c := NewCatalog()
	res := q(t, c, "SELECT EXP(0), POWER(2, 10), CONCAT('a', NULL, 'b', 1), SUBSTR('hello', 2, 3), LN(1)")
	row := res.Row(0)
	wants := []string{"1", "1024", "ab1", "ell", "0"}
	for i, w := range wants {
		if row[i].String() != w {
			t.Errorf("func %d = %s, want %s", i, row[i], w)
		}
	}
	// SUBSTR edge cases.
	res = q(t, c, "SELECT SUBSTR('abc', 0, 2) AS a, SUBSTR('abc', 9, 2) AS b, SUBSTR('abc', 2, 0) AS z")
	if res.Column("a").Strs[0] != "ab" || res.Column("b").Strs[0] != "" || res.Column("z").Strs[0] != "" {
		t.Errorf("substr edges = %v", res.Row(0))
	}
	if _, err := c.Query("SELECT POWER('a', 2)"); err == nil {
		t.Error("POWER over string should fail")
	}
}
