package sql

import "testing"

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, count(*) FROM t WHERE x >= 1.5 AND name = 'o''brien'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	wantTexts := []string{"SELECT", "a", ",", "count", "(", "*", ")", "FROM", "t",
		"WHERE", "x", ">=", "1.5", "AND", "name", "=", "o'brien", ""}
	if len(texts) != len(wantTexts) {
		t.Fatalf("token texts = %q", texts)
	}
	for i := range wantTexts {
		if texts[i] != wantTexts[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], wantTexts[i])
		}
	}
	if kinds[0] != TokKeyword || kinds[1] != TokIdent || kinds[16] != TokString {
		t.Errorf("kinds wrong: %v", kinds)
	}
}

func TestLexNumbers(t *testing.T) {
	for _, in := range []string{"1", "12.5", ".5", "1e3", "2.5E-2", "3e+4"} {
		toks, err := Lex(in)
		if err != nil {
			t.Fatalf("Lex(%q): %v", in, err)
		}
		if len(toks) != 2 || toks[0].Kind != TokNumber || toks[0].Text != in {
			t.Errorf("Lex(%q) = %v", in, toks)
		}
	}
}

func TestLexKeywordCaseInsensitive(t *testing.T) {
	toks, err := Lex("select From wHeRe")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SELECT", "FROM", "WHERE"} {
		found := false
		for _, tok := range toks {
			if tok.Kind == TokKeyword && tok.Text == want {
				found = true
			}
		}
		if !found {
			t.Errorf("keyword %s not recognised", want)
		}
	}
}

func TestLexQuotedIdent(t *testing.T) {
	toks, err := Lex(`"group by" = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokIdent || toks[0].Text != "group by" {
		t.Errorf("quoted identifier = %v", toks[0])
	}
}

func TestLexComment(t *testing.T) {
	toks, err := Lex("SELECT 1 -- trailing comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 { // SELECT, 1, EOF
		t.Errorf("tokens = %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	for _, in := range []string{"'unterminated", `"unterminated`, "a ! b", "a @ b"} {
		if _, err := Lex(in); err == nil {
			t.Errorf("Lex(%q) should fail", in)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("<> != <= >= < > = + - * / %")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<>", "!=", "<=", ">=", "<", ">", "=", "+", "-", "*", "/", "%"}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("op %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}
