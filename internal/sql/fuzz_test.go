package sql

import (
	"strings"
	"testing"

	"viewseeker/internal/dataset"
)

// FuzzParse hammers the lexer and parser: any input may be rejected, but
// nothing may panic, and anything that parses must re-parse from its
// canonical rendering to the same canonical rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT 1",
		"SELECT a, COUNT(*) FROM t WHERE x > 1 GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 5",
		"SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t",
		"SELECT * FROM t WHERE a IN (1, 2) AND b BETWEEN 1 AND 2 OR c IS NOT NULL",
		"SELECT -a + 2 * (b - 3) % 4 FROM t",
		"SELECT 'it''s', \"quoted ident\", 1.5e-3 FROM t",
		"SELECT x FROM t WHERE name NOT LIKE 'a%_'",
		"SELECT WIDTH_BUCKET(x, 0, 1, 4) FROM t -- comment",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, query string) {
		stmt, err := Parse(query)
		if err != nil {
			return
		}
		canonical := stmt.String()
		stmt2, err := Parse(canonical)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canonical, query, err)
		}
		if got := stmt2.String(); got != canonical {
			t.Fatalf("canonical form unstable: %q vs %q", canonical, got)
		}
	})
}

// FuzzLikeMatch checks the LIKE matcher never panics and honours the
// all-% pattern.
func FuzzLikeMatch(f *testing.F) {
	f.Add("hello", "h%o")
	f.Add("", "%")
	f.Add("abc", "___")
	f.Add("aaa", "%a%a%")
	f.Fuzz(func(t *testing.T, s, pattern string) {
		got := likeMatch(s, pattern)
		if pattern == "%" && !got {
			t.Fatalf("%% must match %q", s)
		}
		if pattern == s && strings.IndexAny(s, "%_") < 0 && !got {
			t.Fatalf("literal pattern %q must match itself", s)
		}
	})
}

// FuzzExecute runs arbitrary parsed statements against a tiny table:
// execution may error, but must not panic and must return a well-formed
// result when it succeeds.
func FuzzExecute(f *testing.F) {
	f.Add("SELECT g, SUM(v) FROM t GROUP BY g")
	f.Add("SELECT * FROM t WHERE v > 1 ORDER BY v LIMIT 2")
	f.Add("SELECT COUNT(*) FROM t")
	f.Fuzz(func(t *testing.T, query string) {
		schema := dataset.MustSchema(
			dataset.ColumnDef{Name: "g", Kind: dataset.KindString},
			dataset.ColumnDef{Name: "v", Kind: dataset.KindInt},
		)
		tab := dataset.NewTable("t", schema)
		tab.MustAppendRow(dataset.StringVal("a"), dataset.Int(1))
		tab.MustAppendRow(dataset.StringVal("b"), dataset.Int(2))
		tab.MustAppendRow(dataset.StringVal("a"), dataset.Null)
		c := NewCatalog()
		c.Register(tab)
		res, err := c.Query(query)
		if err != nil {
			return
		}
		if res == nil {
			t.Fatal("nil result without error")
		}
		for i := 0; i < res.NumRows(); i++ {
			_ = res.Row(i) // must not panic
		}
	})
}
