package sql

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"viewseeker/internal/dataset"
)

// intTable builds a one-column table named t with Int column x.
func intTable(t *testing.T, vals ...dataset.Value) *dataset.Table {
	t.Helper()
	schema := dataset.MustSchema(dataset.ColumnDef{Name: "x", Kind: dataset.KindInt, Role: dataset.RoleMeasure})
	tab := dataset.NewTable("t", schema)
	for _, v := range vals {
		tab.MustAppendRow(v)
	}
	return tab
}

// TestSumIntExact pins the integer-exactness bug: float64 summation
// rounds 2^53+1 to 2^53, so SUM over {2^53,1,1,1} used to come back as
// 9007199254740996 instead of 9007199254740995.
func TestSumIntExact(t *testing.T) {
	tab := intTable(t, dataset.Int(1<<53), dataset.Int(1), dataset.Int(1), dataset.Int(1))
	stmt := mustParse(t, "SELECT SUM(x) FROM t")
	for name, exec := range map[string]func(*SelectStmt, *dataset.Table) (*dataset.Table, error){
		"planned": Execute, "interpreted": ExecuteInterpreted,
	} {
		res, err := exec(stmt, tab)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := res.Row(0)[0]
		if got.Kind != dataset.KindInt || got.I != 9007199254740995 {
			t.Errorf("%s: SUM = %s (kind %v), want 9007199254740995", name, got, got.Kind)
		}
	}
}

// TestSumIntOverflow: an all-int SUM that exceeds int64 reports an error
// instead of silently wrapping.
func TestSumIntOverflow(t *testing.T) {
	tab := intTable(t, dataset.Int(math.MaxInt64), dataset.Int(1))
	stmt := mustParse(t, "SELECT SUM(x) FROM t")
	if _, err := Execute(stmt, tab); err == nil {
		t.Error("planned: overflowing SUM should fail")
	}
	if _, err := ExecuteInterpreted(stmt, tab); err == nil {
		t.Error("interpreted: overflowing SUM should fail")
	}
	// Negative direction too.
	tab = intTable(t, dataset.Int(math.MinInt64), dataset.Int(-1))
	if _, err := Execute(stmt, tab); err == nil {
		t.Error("negative overflowing SUM should fail")
	}
}

// TestStddevLargeMean pins the catastrophic-cancellation bug: the raw
// Σv²−(Σv)²/n formulation collapsed STDDEV over {1e9, 1e9+1, 1e9+2} to 0.
// Population stddev of a 3-term arithmetic progression with step 1 is
// sqrt(2/3) ≈ 0.8165.
func TestStddevLargeMean(t *testing.T) {
	schema := dataset.MustSchema(dataset.ColumnDef{Name: "x", Kind: dataset.KindFloat, Role: dataset.RoleMeasure})
	tab := dataset.NewTable("t", schema)
	for _, v := range []float64{1e9, 1e9 + 1, 1e9 + 2} {
		tab.MustAppendRow(dataset.Float(v))
	}
	want := math.Sqrt(2.0 / 3.0)
	for _, query := range []string{"SELECT STDDEV(x) FROM t", "SELECT VARIANCE(x) FROM t"} {
		stmt := mustParse(t, query)
		res, err := Execute(stmt, tab)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Row(0)[0].F
		w := want
		if strings.Contains(query, "VARIANCE") {
			w = 2.0 / 3.0
		}
		if math.Abs(got-w) > 1e-12 {
			t.Errorf("%s = %v, want %v", query, got, w)
		}
	}
}

// TestInterpretedNilTableWithFrom keeps the nil-table guard on the
// interpreter too (Execute is covered in coverage_test.go).
func TestInterpretedNilTableWithFrom(t *testing.T) {
	stmt := mustParse(t, "SELECT COUNT(*) FROM t")
	if _, err := ExecuteInterpreted(stmt, nil); err == nil {
		t.Error("interpreted: FROM without a table should fail")
	}
}

// valueEqual compares values bit-exactly (float payloads via Float64bits).
func valueEqual(a, b dataset.Value) bool {
	return a.Kind == b.Kind && a.I == b.I && a.S == b.S && a.B == b.B &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

// tablesEqual compares two result tables bit-exactly: schema names and
// kinds, then every cell.
func tablesEqual(a, b *dataset.Table) error {
	if a.Schema.Len() != b.Schema.Len() {
		return fmt.Errorf("column count %d vs %d", a.Schema.Len(), b.Schema.Len())
	}
	for j := 0; j < a.Schema.Len(); j++ {
		da, db := a.Schema.Columns[j], b.Schema.Columns[j]
		if da.Name != db.Name || da.Kind != db.Kind {
			return fmt.Errorf("column %d: %v vs %v", j, da, db)
		}
	}
	if a.NumRows() != b.NumRows() {
		return fmt.Errorf("row count %d vs %d", a.NumRows(), b.NumRows())
	}
	for r := 0; r < a.NumRows(); r++ {
		ra, rb := a.Row(r), b.Row(r)
		for j := range ra {
			if !valueEqual(ra[j], rb[j]) {
				return fmt.Errorf("cell (%d,%d): %s vs %s", r, j, ra[j], rb[j])
			}
		}
	}
	return nil
}

// checkEngines runs one query through both executors and requires
// bit-identical results (or that both fail).
func checkEngines(t *testing.T, tab *dataset.Table, query string) {
	t.Helper()
	stmt, err := Parse(query)
	if err != nil {
		t.Fatalf("Parse(%q): %v", query, err)
	}
	planned, errP := Execute(stmt, tab)
	interp, errI := ExecuteInterpreted(stmt, tab)
	if (errP == nil) != (errI == nil) {
		t.Fatalf("%q: planned err = %v, interpreted err = %v", query, errP, errI)
	}
	if errP != nil {
		return
	}
	if err := tablesEqual(planned, interp); err != nil {
		t.Errorf("%q: engines diverge: %v", query, err)
	}
}

// TestPlannedMatchesInterpreter drives both executors over the SQL
// coverage corpus and requires bit-identical results.
func TestPlannedMatchesInterpreter(t *testing.T) {
	tab := salesCatalog(t).Table("sales")
	corpus := []string{
		"SELECT * FROM sales",
		"SELECT region, product FROM sales WHERE price >= 1 ORDER BY region, product",
		"SELECT DISTINCT region FROM sales ORDER BY region",
		"SELECT qty + 1 AS q1, UPPER(region) FROM sales WHERE qty IS NOT NULL ORDER BY q1 DESC LIMIT 3",
		"SELECT 1 + 2 AS x",
		"SELECT region, COUNT(*) AS n FROM sales GROUP BY region ORDER BY region",
		"SELECT region, SUM(qty), AVG(price) FROM sales GROUP BY region ORDER BY region",
		"SELECT product, VARIANCE(price), STDDEV(qty) FROM sales GROUP BY product ORDER BY product",
		"SELECT COUNT(*), COUNT(qty), COUNT(product), SUM(price) FROM sales",
		"SELECT region, MIN(price), MAX(qty) FROM sales WHERE qty > 2 GROUP BY region ORDER BY region",
		"SELECT region, COUNT(*) AS n FROM sales GROUP BY region HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 1",
		"SELECT UPPER(region) AS r, SUM(qty * price) FROM sales GROUP BY UPPER(region) ORDER BY r",
		"SELECT CASE WHEN COUNT(*) >= 3 THEN 'big' ELSE 'small' END AS band, region FROM sales GROUP BY region ORDER BY region",
		"SELECT SUM(qty) + AVG(price) FROM sales",
		"SELECT region FROM sales GROUP BY region HAVING SUM(qty) > 5 ORDER BY region",
		"SELECT COUNT(*) FROM sales WHERE region = 'nowhere'",
		"SELECT MIN(product), MAX(region) FROM sales",
		"SELECT product, AVG(qty) FROM sales WHERE region IN ('east', 'west') GROUP BY product ORDER BY product",
		"SELECT region, STDDEV(price) FROM sales GROUP BY region ORDER BY STDDEV(price) DESC",
		// Both engines must fail these the same way.
		"SELECT SUM(region) FROM sales",
		"SELECT region, COUNT(*) FROM sales GROUP BY region ORDER BY qty",
		"SELECT * FROM sales GROUP BY region",
	}
	for _, query := range corpus {
		checkEngines(t, tab, query)
	}
}

// randomAggQuery builds a random (but always parseable) aggregate query
// over the sales fixture.
func randomAggQuery(rng *rand.Rand) string {
	dims := []string{"region", "product"}
	measures := []string{"qty", "price"}
	aggs := []string{"COUNT", "SUM", "AVG", "MIN", "MAX", "VARIANCE", "STDDEV"}
	var items []string
	dim := ""
	if rng.Intn(2) == 0 {
		dim = dims[rng.Intn(len(dims))]
		items = append(items, dim)
	}
	nAggs := 1 + rng.Intn(3)
	for i := 0; i < nAggs; i++ {
		fn := aggs[rng.Intn(len(aggs))]
		arg := measures[rng.Intn(len(measures))]
		if fn == "COUNT" && rng.Intn(2) == 0 {
			items = append(items, "COUNT(*)")
			continue
		}
		items = append(items, fmt.Sprintf("%s(%s)", fn, arg))
	}
	var sb strings.Builder
	sb.WriteString("SELECT " + strings.Join(items, ", ") + " FROM sales")
	switch rng.Intn(4) {
	case 0:
		sb.WriteString(fmt.Sprintf(" WHERE qty > %d", rng.Intn(10)))
	case 1:
		sb.WriteString(fmt.Sprintf(" WHERE price < %g", 0.5+rng.Float64()*3))
	case 2:
		sb.WriteString(" WHERE region = 'east'")
	}
	if dim != "" {
		sb.WriteString(" GROUP BY " + dim)
		if rng.Intn(3) == 0 {
			sb.WriteString(fmt.Sprintf(" HAVING COUNT(*) > %d", rng.Intn(3)))
		}
		sb.WriteString(" ORDER BY " + dim)
	}
	if rng.Intn(3) == 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", 1+rng.Intn(4)))
	}
	return sb.String()
}

// TestQuickPlannedMatchesInterpreter is the property test: for any random
// aggregate query over the fixture, the planned executor and the
// interpreter agree bit-exactly.
func TestQuickPlannedMatchesInterpreter(t *testing.T) {
	tab := salesCatalog(t).Table("sales")
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		query := randomAggQuery(rng)
		stmt, err := Parse(query)
		if err != nil {
			t.Logf("Parse(%q): %v", query, err)
			return false
		}
		planned, errP := Execute(stmt, tab)
		interp, errI := ExecuteInterpreted(stmt, tab)
		if (errP == nil) != (errI == nil) {
			t.Logf("%q: planned err = %v, interpreted err = %v", query, errP, errI)
			return false
		}
		if errP != nil {
			return true
		}
		if err := tablesEqual(planned, interp); err != nil {
			t.Logf("%q: %v", query, err)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestExplainGolden pins the EXPLAIN JSON document for a representative
// grouped query against a checked-in golden file. Regenerate with
// UPDATE_GOLDEN=1 go test -run TestExplainGolden ./internal/sql/
func TestExplainGolden(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, "EXPLAIN SELECT region, COUNT(*) AS n, AVG(price) AS avg_price FROM sales WHERE qty > 1 GROUP BY region HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 5")
	got := res.Column("plan").Strs[0] + "\n"
	path := filepath.Join("testdata", "explain_groupby.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("EXPLAIN JSON drifted from golden file %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}
