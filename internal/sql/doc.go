// Package sql implements the query substrate ViewSeeker runs on: a
// lexer, parser and executor for an analytic subset of SQL — SELECT with
// expressions, WHERE, GROUP BY, HAVING, ORDER BY, LIMIT, the aggregate
// functions COUNT/SUM/AVG/MIN/MAX/VARIANCE/STDDEV and a few scalar
// functions (including WIDTH_BUCKET, which the view layer uses to bin
// numeric dimensions). Queries execute against dataset.Table values
// registered in a Catalog and return results as new dataset.Table values.
//
// # Two executors, one semantics
//
// Execute lowers the parsed statement into a physical plan (Lower, in
// plan.go) and runs the planned executor (plan_exec.go): a selection
// vector over the scan, then either a projection or one fused aggregation
// pass that accumulates every aggregate slot of the statement into flat
// per-slot accumulator banks, reading plain numeric columns through
// dataset.Column.NumericView instead of boxed per-row evaluation.
// ExecuteInterpreted is the retained tree-walking interpreter — the
// bit-identity oracle the planned executor is tested against (the same
// retained-reference pattern as view.CollectStatsReference). Both engines
// feed the identical aggAccumulator operation sequence per (group, value)
// in row order, so their results match bit-for-bit, floats included.
//
// EXPLAIN (via Catalog.Query) returns the lowered plan as one JSON
// document — a one-row, one-column "plan" table — whose schema is
// versioned by PlanVersion and pinned by a golden-file test.
//
// # Contracts
//
// Determinism: execution is single-threaded and ordering is defined —
// ungrouped rows keep table order, GROUP BY groups emit in first-seen
// order, ORDER BY sorts stably — so the same query over the same table
// always yields the same result table. Session fingerprints hash query
// results, so this determinism is load-bearing for the offline cache.
//
// Numeric contracts: SUM over all-integer inputs is exact (int64
// accumulation; overflow is an error, not a wrap), and VARIANCE/STDDEV
// use moments shifted by the group's first value, so they survive
// |mean| ≫ stddev inputs that a raw Σv² formulation loses to float64
// cancellation.
//
// Queries never mutate their input tables; every result is a fresh table.
package sql
