// Package sql implements the query substrate ViewSeeker runs on: a
// lexer, parser and executor for an analytic subset of SQL — SELECT with
// expressions, WHERE, GROUP BY, HAVING, ORDER BY, LIMIT, the aggregate
// functions COUNT/SUM/AVG/MIN/MAX and a few scalar functions (including
// WIDTH_BUCKET, which the view layer uses to bin numeric dimensions).
// Queries execute against dataset.Table values registered in a Catalog
// and return results as new dataset.Table values.
//
// # Contracts
//
// Determinism: execution is single-threaded and ordering is defined —
// ungrouped rows keep table order, GROUP BY groups emit in first-seen
// order, ORDER BY sorts stably — so the same query over the same table
// always yields the same result table. Session fingerprints hash query
// results, so this determinism is load-bearing for the offline cache.
//
// Queries never mutate their input tables; every result is a fresh table.
package sql
