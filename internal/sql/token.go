package sql

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp
)

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep their case
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of query"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// keywords is the reserved-word set. Identifiers matching these (case
// insensitively) lex as TokKeyword with upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "AS": true, "FROM": true,
	"WHERE": true, "GROUP": true, "BY": true, "HAVING": true,
	"ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true, "IN": true,
	"BETWEEN": true, "IS": true, "NULL": true, "LIKE": true,
	"TRUE": true, "FALSE": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
}
