package sql

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"viewseeker/internal/dataset"
)

// Execute runs a parsed statement against a table through the planned
// executor (see plan.go / plan_exec.go). The table may be nil only for
// table-less statements (no FROM clause). The result is a new table named
// "result".
func Execute(stmt *SelectStmt, table *dataset.Table) (*dataset.Table, error) {
	if stmt.From != "" && table == nil {
		return nil, fmt.Errorf("sql: statement references table %q but none was supplied", stmt.From)
	}
	return executePlanned(stmt, table)
}

// ExecuteInterpreted runs a parsed statement through the retained
// tree-walking interpreter: one expression-tree walk per row, row-major
// aggregation. It is the bit-identity oracle the planned executor is held
// to (the same retained-reference pattern as view.CollectStatsReference)
// and is exercised against Execute by the equivalence property tests.
func ExecuteInterpreted(stmt *SelectStmt, table *dataset.Table) (*dataset.Table, error) {
	if stmt.From != "" && table == nil {
		return nil, fmt.Errorf("sql: statement references table %q but none was supplied", stmt.From)
	}
	if isAggregate(stmt) {
		return executeAggregate(stmt, table)
	}
	return executePlain(stmt, table)
}

// isAggregate reports whether the statement needs grouped execution.
func isAggregate(stmt *SelectStmt) bool {
	if len(stmt.GroupBy) > 0 || stmt.Having != nil {
		return true
	}
	for _, it := range stmt.Items {
		if !it.Star && ContainsAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// outputRow pairs projected values with hidden sort keys.
type outputRow struct {
	vals []dataset.Value
	keys []dataset.Value
}

func tableBinder(table *dataset.Table) func(e Expr) (getter, bool, error) {
	return func(e Expr) (getter, bool, error) {
		ref, ok := e.(*ColumnRef)
		if !ok {
			return nil, false, nil
		}
		if table == nil {
			return nil, false, fmt.Errorf("sql: column %q referenced without a FROM clause", ref.Name)
		}
		col := table.Column(ref.Name)
		if col == nil {
			return nil, false, fmt.Errorf("sql: unknown column %q in table %q", ref.Name, table.Name)
		}
		return func(row int) (dataset.Value, error) { return col.Value(row), nil }, true, nil
	}
}

// projectionGetters expands the statement's SELECT items into output
// names, source roles for pass-through columns, and compiled getters.
// Shared by the interpreter's plain path and the planned projection.
func projectionGetters(stmt *SelectStmt, table *dataset.Table, comp *compiler) ([]string, []dataset.Role, []getter, error) {
	var names []string
	var getters []getter
	var roles []dataset.Role
	for _, it := range stmt.Items {
		if it.Star {
			if table == nil {
				return nil, nil, nil, fmt.Errorf("sql: SELECT * without a FROM clause")
			}
			for _, col := range table.Cols {
				c := col
				names = append(names, c.Def.Name)
				roles = append(roles, c.Def.Role)
				getters = append(getters, func(row int) (dataset.Value, error) { return c.Value(row), nil })
			}
			continue
		}
		g, err := comp.compile(it.Expr)
		if err != nil {
			return nil, nil, nil, err
		}
		names = append(names, it.OutputName())
		role := dataset.RoleOther
		if ref, ok := it.Expr.(*ColumnRef); ok && table != nil {
			if def, found := table.Schema.Def(ref.Name); found {
				role = def.Role
			}
		}
		roles = append(roles, role)
		getters = append(getters, g)
	}
	return names, roles, getters, nil
}

func executePlain(stmt *SelectStmt, table *dataset.Table) (*dataset.Table, error) {
	comp := &compiler{bindNode: tableBinder(table)}
	names, roles, getters, err := projectionGetters(stmt, table, comp)
	if err != nil {
		return nil, err
	}

	var whereG getter
	if stmt.Where != nil {
		g, err := comp.compile(stmt.Where)
		if err != nil {
			return nil, err
		}
		whereG = g
	}
	orderGetters, err := bindOrderBy(stmt, comp, names)
	if err != nil {
		return nil, err
	}

	nRows := 1 // table-less SELECT evaluates once
	if table != nil {
		nRows = table.NumRows()
	}
	var rows []outputRow
	for r := 0; r < nRows; r++ {
		if whereG != nil {
			v, err := whereG(r)
			if err != nil {
				return nil, err
			}
			if v.Kind != dataset.KindBool || !v.B {
				continue
			}
		}
		out := outputRow{vals: make([]dataset.Value, len(getters))}
		for i, g := range getters {
			v, err := g(r)
			if err != nil {
				return nil, err
			}
			out.vals[i] = v
		}
		for _, og := range orderGetters {
			v, err := og.get(r, out.vals)
			if err != nil {
				return nil, err
			}
			out.keys = append(out.keys, v)
		}
		rows = append(rows, out)
	}
	return finishRows(stmt, names, roles, rows)
}

// orderGetter evaluates one ORDER BY key either from the row context or
// from the already-projected output values (alias / position references).
type orderGetter struct {
	get  func(row int, out []dataset.Value) (dataset.Value, error)
	desc bool
}

func bindOrderBy(stmt *SelectStmt, comp *compiler, outputNames []string) ([]orderGetter, error) {
	var out []orderGetter
	for _, o := range stmt.OrderBy {
		og := orderGetter{desc: o.Desc}
		switch e := o.Expr.(type) {
		case *Literal:
			if idx, ok := e.Val.AsInt(); ok && e.Val.Kind == dataset.KindInt {
				if idx < 1 || int(idx) > len(outputNames) {
					return nil, fmt.Errorf("sql: ORDER BY position %d out of range", idx)
				}
				i := int(idx) - 1
				og.get = func(_ int, outVals []dataset.Value) (dataset.Value, error) { return outVals[i], nil }
				out = append(out, og)
				continue
			}
		case *ColumnRef:
			if i := indexOf(outputNames, e.Name); i >= 0 {
				og.get = func(_ int, outVals []dataset.Value) (dataset.Value, error) { return outVals[i], nil }
				out = append(out, og)
				continue
			}
		}
		g, err := comp.compile(o.Expr)
		if err != nil {
			return nil, err
		}
		og.get = func(row int, _ []dataset.Value) (dataset.Value, error) { return g(row) }
		out = append(out, og)
	}
	return out, nil
}

func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

// finishRows applies DISTINCT, ORDER BY, LIMIT and materialises the result
// table.
func finishRows(stmt *SelectStmt, names []string, roles []dataset.Role, rows []outputRow) (*dataset.Table, error) {
	if stmt.Distinct {
		seen := make(map[string]bool, len(rows))
		kept := rows[:0]
		for _, r := range rows {
			key := rowKey(r.vals)
			if !seen[key] {
				seen[key] = true
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	if len(stmt.OrderBy) > 0 {
		descs := make([]bool, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			descs[i] = o.Desc
		}
		sort.SliceStable(rows, func(i, j int) bool {
			for k := range descs {
				c := dataset.Compare(rows[i].keys[k], rows[j].keys[k])
				if c == 0 {
					continue
				}
				if descs[k] {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if stmt.Limit >= 0 && len(rows) > stmt.Limit {
		rows = rows[:stmt.Limit]
	}

	// Infer output kinds from the first non-null value per column.
	kinds := make([]dataset.Kind, len(names))
	for j := range kinds {
		kinds[j] = dataset.KindString
		for _, r := range rows {
			if !r.vals[j].IsNull() {
				kinds[j] = r.vals[j].Kind
				break
			}
		}
	}
	defs := make([]dataset.ColumnDef, len(names))
	used := make(map[string]int)
	for j, n := range names {
		// Disambiguate duplicate output names (e.g. SELECT a, a).
		if c := used[n]; c > 0 {
			n = n + "_" + strconv.Itoa(c)
		}
		used[names[j]]++
		defs[j] = dataset.ColumnDef{Name: n, Kind: kinds[j], Role: roles[j]}
	}
	schema, err := dataset.NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	res := dataset.NewTable("result", schema)
	for _, r := range rows {
		if err := res.AppendRow(r.vals...); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func rowKey(vals []dataset.Value) string {
	var sb strings.Builder
	for _, v := range vals {
		sb.WriteByte(byte(v.Kind) + '0')
		s := v.String()
		sb.WriteString(strconv.Itoa(len(s)))
		sb.WriteByte(':')
		sb.WriteString(s)
	}
	return sb.String()
}

// aggAccumulator accumulates one aggregate call for one group. Both
// executors feed it the same per-row operation sequence, so group results
// are bit-identical across engines.
//
// SUM keeps a parallel int64 accumulator while every input is an integer:
// float64 summation loses exactness past 2^53 (SUM over {2^53,1,1,1} used
// to return 9007199254740996). Overflowing int64 is reported as an error
// rather than silently wrapping.
//
// VARIANCE/STDDEV accumulate second moments shifted by the group's first
// value: Var = E[(v−s)²] − E[v−s]², algebraically identical for any s but
// numerically stable when |mean| ≫ stddev (raw Σv² cancellation made
// STDDEV over {1e9, 1e9+1, 1e9+2} collapse to 0).
type aggAccumulator struct {
	fn       string
	count    int64
	sum      float64
	isum     int64 // exact integer SUM, valid while allInts && !overflow
	overflow bool
	allInts  bool
	shift    float64 // first accumulated value
	shiftSet bool
	sSum     float64 // Σ (v − shift)
	sSumSq   float64 // Σ (v − shift)²
	min      dataset.Value
	max      dataset.Value
}

func newAccumulator(fn string) *aggAccumulator {
	return &aggAccumulator{fn: fn, allInts: true, min: dataset.Null, max: dataset.Null}
}

// addNumeric is the shared numeric core: the planned executor's columnar
// loops and the interpreter's boxed add both bottom out here, one call per
// accumulated value in row order.
func (a *aggAccumulator) addNumeric(f float64, i int64, isInt bool) {
	if !isInt {
		a.allInts = false
	}
	if a.allInts && !a.overflow {
		s := a.isum + i
		if (i > 0 && s < a.isum) || (i < 0 && s > a.isum) {
			a.overflow = true
		} else {
			a.isum = s
		}
	}
	a.sum += f
	if !a.shiftSet {
		a.shift, a.shiftSet = f, true
	}
	d := f - a.shift
	a.sSum += d
	a.sSumSq += d * d
}

func (a *aggAccumulator) add(v dataset.Value) error {
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	a.count++
	switch a.fn {
	case "COUNT":
		return nil
	case "SUM", "AVG", "VARIANCE", "STDDEV":
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("sql: %s over non-numeric value %s", a.fn, v.Kind)
		}
		a.addNumeric(f, v.I, v.Kind == dataset.KindInt)
		return nil
	case "MIN":
		if a.min.IsNull() || dataset.Compare(v, a.min) < 0 {
			a.min = v
		}
		return nil
	case "MAX":
		if a.max.IsNull() || dataset.Compare(v, a.max) > 0 {
			a.max = v
		}
		return nil
	default:
		return fmt.Errorf("sql: unknown aggregate %s", a.fn)
	}
}

func (a *aggAccumulator) result() (dataset.Value, error) {
	switch a.fn {
	case "COUNT":
		return dataset.Int(a.count), nil
	case "SUM":
		if a.count == 0 {
			return dataset.Null, nil
		}
		if a.allInts {
			if a.overflow {
				return dataset.Null, fmt.Errorf("sql: SUM overflows int64")
			}
			return dataset.Int(a.isum), nil
		}
		return dataset.Float(a.sum), nil
	case "AVG":
		if a.count == 0 {
			return dataset.Null, nil
		}
		return dataset.Float(a.sum / float64(a.count)), nil
	case "VARIANCE", "STDDEV":
		if a.count == 0 {
			return dataset.Null, nil
		}
		n := float64(a.count)
		v := a.sSumSq/n - (a.sSum/n)*(a.sSum/n)
		if v < 0 {
			v = 0 // fp noise on constant columns
		}
		if a.fn == "STDDEV" {
			v = math.Sqrt(v)
		}
		return dataset.Float(v), nil
	case "MIN":
		return a.min, nil
	case "MAX":
		return a.max, nil
	default:
		return dataset.Null, fmt.Errorf("sql: unknown aggregate %s", a.fn)
	}
}

// findAggregates walks an expression and registers every distinct
// aggregate call (keyed by canonical string) in seen, validating arity and
// rejecting nesting. Purely structural — argument compilation happens
// separately so plan lowering can reuse the discovery.
func findAggregates(e Expr, seen map[string]*Call) error {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Literal, *ColumnRef:
		return nil
	case *Unary:
		return findAggregates(x.X, seen)
	case *Binary:
		if err := findAggregates(x.L, seen); err != nil {
			return err
		}
		return findAggregates(x.R, seen)
	case *Call:
		if aggregateFuncs[x.Func] {
			key := x.String()
			if _, ok := seen[key]; ok {
				return nil
			}
			if !x.Star {
				if len(x.Args) != 1 {
					return fmt.Errorf("sql: %s expects one argument", x.Func)
				}
				if ContainsAggregate(x.Args[0]) {
					return fmt.Errorf("sql: nested aggregate in %s", key)
				}
			} else if x.Func != "COUNT" {
				return fmt.Errorf("sql: %s(*) is not valid", x.Func)
			}
			seen[key] = x
			return nil
		}
		for _, a := range x.Args {
			if err := findAggregates(a, seen); err != nil {
				return err
			}
		}
		return nil
	case *InList:
		if err := findAggregates(x.X, seen); err != nil {
			return err
		}
		for _, a := range x.List {
			if err := findAggregates(a, seen); err != nil {
				return err
			}
		}
		return nil
	case *Between:
		if err := findAggregates(x.X, seen); err != nil {
			return err
		}
		if err := findAggregates(x.Lo, seen); err != nil {
			return err
		}
		return findAggregates(x.Hi, seen)
	case *IsNull:
		return findAggregates(x.X, seen)
	case *Like:
		if err := findAggregates(x.X, seen); err != nil {
			return err
		}
		return findAggregates(x.Pattern, seen)
	case *Case:
		for _, w := range x.Whens {
			if err := findAggregates(w.Cond, seen); err != nil {
				return err
			}
			if err := findAggregates(w.Result, seen); err != nil {
				return err
			}
		}
		return findAggregates(x.Else, seen)
	default:
		return fmt.Errorf("sql: cannot analyse %T", e)
	}
}

// statementAggregates discovers every distinct aggregate call across the
// statement's items, HAVING and ORDER BY, returning calls in canonical
// (sorted string) order. Both executors and the plan lowering share it, so
// slot order is identical everywhere.
func statementAggregates(stmt *SelectStmt) ([]string, []*Call, error) {
	seen := make(map[string]*Call)
	for _, it := range stmt.Items {
		if it.Star {
			continue
		}
		if err := findAggregates(it.Expr, seen); err != nil {
			return nil, nil, err
		}
	}
	if err := findAggregates(stmt.Having, seen); err != nil {
		return nil, nil, err
	}
	for _, o := range stmt.OrderBy {
		if err := findAggregates(o.Expr, seen); err != nil {
			return nil, nil, err
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	calls := make([]*Call, len(keys))
	for i, k := range keys {
		calls[i] = seen[k]
	}
	return keys, calls, nil
}

// compileAggArgs compiles each aggregate call's argument in row context
// (nil getter for COUNT(*)).
func compileAggArgs(calls []*Call, comp *compiler) ([]getter, error) {
	args := make([]getter, len(calls))
	for i, c := range calls {
		if c.Star {
			continue
		}
		g, err := comp.compile(c.Args[0])
		if err != nil {
			return nil, err
		}
		args[i] = g
	}
	return args, nil
}

// groupOut is one finished group: its key values and the materialised
// result of every aggregate slot, in slot order. Both executors produce
// this shape and hand it to projectGroups.
type groupOut struct {
	keyVals []dataset.Value
	res     []dataset.Value
}

// groupCompiler binds expressions in group context: GROUP BY expressions
// and aggregate calls become constant lookups; anything else must bottom
// out in those.
func groupCompiler(groupKeys []string, slotIndex map[string]int, grp *groupOut) *compiler {
	return &compiler{bindNode: func(e Expr) (getter, bool, error) {
		s := e.String()
		for i, gk := range groupKeys {
			if s == gk {
				v := grp.keyVals[i]
				return func(int) (dataset.Value, error) { return v, nil }, true, nil
			}
		}
		if c, ok := e.(*Call); ok && aggregateFuncs[c.Func] {
			i, ok := slotIndex[s]
			if !ok {
				return nil, false, fmt.Errorf("sql: internal: unregistered aggregate %s", s)
			}
			v := grp.res[i]
			return func(int) (dataset.Value, error) { return v, nil }, true, nil
		}
		if ref, ok := e.(*ColumnRef); ok {
			return nil, false, fmt.Errorf("sql: column %q must appear in GROUP BY or inside an aggregate", ref.Name)
		}
		return nil, false, nil
	}}
}

// projectGroups runs the post-aggregation tail shared by both executors:
// HAVING, item projection, ORDER BY key binding, then DISTINCT/sort/limit
// via finishRows.
func projectGroups(stmt *SelectStmt, table *dataset.Table, groupKeys []string, slotIndex map[string]int, groups []*groupOut) (*dataset.Table, error) {
	names := make([]string, len(stmt.Items))
	roles := make([]dataset.Role, len(stmt.Items))
	for i, it := range stmt.Items {
		names[i] = it.OutputName()
		roles[i] = dataset.RoleOther
		if ref, ok := it.Expr.(*ColumnRef); ok && table != nil {
			if def, found := table.Schema.Def(ref.Name); found {
				roles[i] = def.Role
			}
		}
	}

	var rows []outputRow
	for _, grp := range groups {
		comp := groupCompiler(groupKeys, slotIndex, grp)
		if stmt.Having != nil {
			hg, err := comp.compile(stmt.Having)
			if err != nil {
				return nil, err
			}
			v, err := hg(0)
			if err != nil {
				return nil, err
			}
			if v.Kind != dataset.KindBool || !v.B {
				continue
			}
		}
		out := outputRow{vals: make([]dataset.Value, len(stmt.Items))}
		for i, it := range stmt.Items {
			g, err := comp.compile(it.Expr)
			if err != nil {
				return nil, err
			}
			v, err := g(0)
			if err != nil {
				return nil, err
			}
			out.vals[i] = v
		}
		ogs, err := bindOrderBy(stmt, comp, names)
		if err != nil {
			return nil, err
		}
		for _, og := range ogs {
			v, err := og.get(0, out.vals)
			if err != nil {
				return nil, err
			}
			out.keys = append(out.keys, v)
		}
		rows = append(rows, out)
	}
	return finishRows(stmt, names, roles, rows)
}

type group struct {
	keyVals []dataset.Value
	accs    []*aggAccumulator
}

func executeAggregate(stmt *SelectStmt, table *dataset.Table) (*dataset.Table, error) {
	for _, it := range stmt.Items {
		if it.Star {
			return nil, fmt.Errorf("sql: SELECT * is not valid with GROUP BY or aggregates")
		}
	}
	rowComp := &compiler{bindNode: tableBinder(table)}

	// Compile GROUP BY expressions in row context.
	groupGetters := make([]getter, len(stmt.GroupBy))
	groupKeys := make([]string, len(stmt.GroupBy))
	for i, ge := range stmt.GroupBy {
		if ContainsAggregate(ge) {
			return nil, fmt.Errorf("sql: aggregate in GROUP BY")
		}
		g, err := rowComp.compile(ge)
		if err != nil {
			return nil, err
		}
		groupGetters[i] = g
		groupKeys[i] = ge.String()
	}

	// Discover aggregate slots across items, HAVING and ORDER BY.
	slotKeys, calls, err := statementAggregates(stmt)
	if err != nil {
		return nil, err
	}
	argGetters, err := compileAggArgs(calls, rowComp)
	if err != nil {
		return nil, err
	}
	slotIndex := make(map[string]int, len(slotKeys))
	for i, k := range slotKeys {
		slotIndex[k] = i
	}

	var whereG getter
	if stmt.Where != nil {
		if ContainsAggregate(stmt.Where) {
			return nil, fmt.Errorf("sql: aggregate in WHERE (use HAVING)")
		}
		g, err := rowComp.compile(stmt.Where)
		if err != nil {
			return nil, err
		}
		whereG = g
	}

	// Scan and group.
	groups := make(map[string]*group)
	var order []string
	nRows := 0
	if table != nil {
		nRows = table.NumRows()
	}
	for r := 0; r < nRows; r++ {
		if whereG != nil {
			v, err := whereG(r)
			if err != nil {
				return nil, err
			}
			if v.Kind != dataset.KindBool || !v.B {
				continue
			}
		}
		keyVals := make([]dataset.Value, len(groupGetters))
		for i, g := range groupGetters {
			v, err := g(r)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
		}
		key := rowKey(keyVals)
		grp, ok := groups[key]
		if !ok {
			grp = &group{keyVals: keyVals, accs: make([]*aggAccumulator, len(slotKeys))}
			for i := range calls {
				grp.accs[i] = newAccumulator(calls[i].Func)
			}
			groups[key] = grp
			order = append(order, key)
		}
		for i := range calls {
			if argGetters[i] == nil { // COUNT(*)
				grp.accs[i].count++
				continue
			}
			v, err := argGetters[i](r)
			if err != nil {
				return nil, err
			}
			if err := grp.accs[i].add(v); err != nil {
				return nil, err
			}
		}
	}
	// A table with zero matching rows and no GROUP BY still yields one
	// global group (SELECT COUNT(*) FROM empty = 0).
	if len(groups) == 0 && len(stmt.GroupBy) == 0 {
		grp := &group{accs: make([]*aggAccumulator, len(slotKeys))}
		for i := range calls {
			grp.accs[i] = newAccumulator(calls[i].Func)
		}
		groups["\x00global"] = grp
		order = append(order, "\x00global")
	}

	// Materialise each group's aggregate results in first-appearance order.
	outs := make([]*groupOut, 0, len(order))
	for _, key := range order {
		grp := groups[key]
		out := &groupOut{keyVals: grp.keyVals, res: make([]dataset.Value, len(grp.accs))}
		for i, acc := range grp.accs {
			v, err := acc.result()
			if err != nil {
				return nil, err
			}
			out.res[i] = v
		}
		outs = append(outs, out)
	}
	return projectGroups(stmt, table, groupKeys, slotIndex, outs)
}

// cutExplain strips a leading EXPLAIN keyword (case-insensitive) and
// reports whether one was present.
func cutExplain(query string) (string, bool) {
	trimmed := strings.TrimLeft(query, " \t\r\n")
	if len(trimmed) < 8 || !strings.EqualFold(trimmed[:7], "EXPLAIN") {
		return query, false
	}
	switch trimmed[7] {
	case ' ', '\t', '\r', '\n':
		return trimmed[8:], true
	}
	return query, false
}

// Catalog maps table names to tables and runs queries against them.
type Catalog struct {
	tables map[string]*dataset.Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*dataset.Table)} }

// Register adds (or replaces) a table under its own name.
func (c *Catalog) Register(t *dataset.Table) { c.tables[t.Name] = t }

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *dataset.Table { return c.tables[name] }

// Names returns the registered table names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Query parses and executes a statement against the catalog. A statement
// prefixed with EXPLAIN returns the lowered physical plan as a one-row,
// one-column table holding the plan's JSON document instead of running.
func (c *Catalog) Query(query string) (*dataset.Table, error) {
	if rest, ok := cutExplain(query); ok {
		stmt, err := Parse(rest)
		if err != nil {
			return nil, err
		}
		// EXPLAIN is lenient about unregistered tables: the plan shape
		// depends only on the statement; the table (when present) merely
		// refines per-aggregate columnar eligibility.
		var tbl *dataset.Table
		if stmt.From != "" {
			tbl = c.tables[stmt.From]
		}
		plan, err := Lower(stmt, tbl)
		if err != nil {
			return nil, err
		}
		doc, err := plan.JSON()
		if err != nil {
			return nil, err
		}
		schema, err := dataset.NewSchema(dataset.ColumnDef{Name: "plan", Kind: dataset.KindString})
		if err != nil {
			return nil, err
		}
		t := dataset.NewTable("plan", schema)
		if err := t.AppendRow(dataset.StringVal(doc)); err != nil {
			return nil, err
		}
		return t, nil
	}
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	var t *dataset.Table
	if stmt.From != "" {
		t = c.tables[stmt.From]
		if t == nil {
			return nil, fmt.Errorf("sql: unknown table %q", stmt.From)
		}
	}
	return Execute(stmt, t)
}
