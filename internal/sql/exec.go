package sql

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"viewseeker/internal/dataset"
)

// Execute runs a parsed statement against a table. The table may be nil
// only for table-less statements (no FROM clause). The result is a new
// table named "result".
func Execute(stmt *SelectStmt, table *dataset.Table) (*dataset.Table, error) {
	if stmt.From != "" && table == nil {
		return nil, fmt.Errorf("sql: statement references table %q but none was supplied", stmt.From)
	}
	isAgg := len(stmt.GroupBy) > 0
	for _, it := range stmt.Items {
		if !it.Star && ContainsAggregate(it.Expr) {
			isAgg = true
		}
	}
	if stmt.Having != nil {
		isAgg = true
	}
	if isAgg {
		return executeAggregate(stmt, table)
	}
	return executePlain(stmt, table)
}

// outputRow pairs projected values with hidden sort keys.
type outputRow struct {
	vals []dataset.Value
	keys []dataset.Value
}

func tableBinder(table *dataset.Table) func(e Expr) (getter, bool, error) {
	return func(e Expr) (getter, bool, error) {
		ref, ok := e.(*ColumnRef)
		if !ok {
			return nil, false, nil
		}
		if table == nil {
			return nil, false, fmt.Errorf("sql: column %q referenced without a FROM clause", ref.Name)
		}
		col := table.Column(ref.Name)
		if col == nil {
			return nil, false, fmt.Errorf("sql: unknown column %q in table %q", ref.Name, table.Name)
		}
		return func(row int) (dataset.Value, error) { return col.Value(row), nil }, true, nil
	}
}

func executePlain(stmt *SelectStmt, table *dataset.Table) (*dataset.Table, error) {
	comp := &compiler{bindNode: tableBinder(table)}

	// Expand projections; remember source roles for pass-through columns.
	var names []string
	var getters []getter
	var roles []dataset.Role
	for _, it := range stmt.Items {
		if it.Star {
			if table == nil {
				return nil, fmt.Errorf("sql: SELECT * without a FROM clause")
			}
			for _, col := range table.Cols {
				c := col
				names = append(names, c.Def.Name)
				roles = append(roles, c.Def.Role)
				getters = append(getters, func(row int) (dataset.Value, error) { return c.Value(row), nil })
			}
			continue
		}
		g, err := comp.compile(it.Expr)
		if err != nil {
			return nil, err
		}
		names = append(names, it.OutputName())
		role := dataset.RoleOther
		if ref, ok := it.Expr.(*ColumnRef); ok && table != nil {
			if def, found := table.Schema.Def(ref.Name); found {
				role = def.Role
			}
		}
		roles = append(roles, role)
		getters = append(getters, g)
	}

	var whereG getter
	if stmt.Where != nil {
		g, err := comp.compile(stmt.Where)
		if err != nil {
			return nil, err
		}
		whereG = g
	}
	orderGetters, err := bindOrderBy(stmt, comp, names)
	if err != nil {
		return nil, err
	}

	nRows := 1 // table-less SELECT evaluates once
	if table != nil {
		nRows = table.NumRows()
	}
	var rows []outputRow
	for r := 0; r < nRows; r++ {
		if whereG != nil {
			v, err := whereG(r)
			if err != nil {
				return nil, err
			}
			if v.Kind != dataset.KindBool || !v.B {
				continue
			}
		}
		out := outputRow{vals: make([]dataset.Value, len(getters))}
		for i, g := range getters {
			v, err := g(r)
			if err != nil {
				return nil, err
			}
			out.vals[i] = v
		}
		for _, og := range orderGetters {
			v, err := og.get(r, out.vals)
			if err != nil {
				return nil, err
			}
			out.keys = append(out.keys, v)
		}
		rows = append(rows, out)
	}
	return finishRows(stmt, names, roles, rows)
}

// orderGetter evaluates one ORDER BY key either from the row context or
// from the already-projected output values (alias / position references).
type orderGetter struct {
	get  func(row int, out []dataset.Value) (dataset.Value, error)
	desc bool
}

func bindOrderBy(stmt *SelectStmt, comp *compiler, outputNames []string) ([]orderGetter, error) {
	var out []orderGetter
	for _, o := range stmt.OrderBy {
		og := orderGetter{desc: o.Desc}
		switch e := o.Expr.(type) {
		case *Literal:
			if idx, ok := e.Val.AsInt(); ok && e.Val.Kind == dataset.KindInt {
				if idx < 1 || int(idx) > len(outputNames) {
					return nil, fmt.Errorf("sql: ORDER BY position %d out of range", idx)
				}
				i := int(idx) - 1
				og.get = func(_ int, outVals []dataset.Value) (dataset.Value, error) { return outVals[i], nil }
				out = append(out, og)
				continue
			}
		case *ColumnRef:
			if i := indexOf(outputNames, e.Name); i >= 0 {
				og.get = func(_ int, outVals []dataset.Value) (dataset.Value, error) { return outVals[i], nil }
				out = append(out, og)
				continue
			}
		}
		g, err := comp.compile(o.Expr)
		if err != nil {
			return nil, err
		}
		og.get = func(row int, _ []dataset.Value) (dataset.Value, error) { return g(row) }
		out = append(out, og)
	}
	return out, nil
}

func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

// finishRows applies DISTINCT, ORDER BY, LIMIT and materialises the result
// table.
func finishRows(stmt *SelectStmt, names []string, roles []dataset.Role, rows []outputRow) (*dataset.Table, error) {
	if stmt.Distinct {
		seen := make(map[string]bool, len(rows))
		kept := rows[:0]
		for _, r := range rows {
			key := rowKey(r.vals)
			if !seen[key] {
				seen[key] = true
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	if len(stmt.OrderBy) > 0 {
		descs := make([]bool, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			descs[i] = o.Desc
		}
		sort.SliceStable(rows, func(i, j int) bool {
			for k := range descs {
				c := dataset.Compare(rows[i].keys[k], rows[j].keys[k])
				if c == 0 {
					continue
				}
				if descs[k] {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if stmt.Limit >= 0 && len(rows) > stmt.Limit {
		rows = rows[:stmt.Limit]
	}

	// Infer output kinds from the first non-null value per column.
	kinds := make([]dataset.Kind, len(names))
	for j := range kinds {
		kinds[j] = dataset.KindString
		for _, r := range rows {
			if !r.vals[j].IsNull() {
				kinds[j] = r.vals[j].Kind
				break
			}
		}
	}
	defs := make([]dataset.ColumnDef, len(names))
	used := make(map[string]int)
	for j, n := range names {
		// Disambiguate duplicate output names (e.g. SELECT a, a).
		if c := used[n]; c > 0 {
			n = n + "_" + strconv.Itoa(c)
		}
		used[names[j]]++
		defs[j] = dataset.ColumnDef{Name: n, Kind: kinds[j], Role: roles[j]}
	}
	schema, err := dataset.NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	res := dataset.NewTable("result", schema)
	for _, r := range rows {
		if err := res.AppendRow(r.vals...); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func rowKey(vals []dataset.Value) string {
	var sb strings.Builder
	for _, v := range vals {
		sb.WriteByte(byte(v.Kind) + '0')
		s := v.String()
		sb.WriteString(strconv.Itoa(len(s)))
		sb.WriteByte(':')
		sb.WriteString(s)
	}
	return sb.String()
}

// aggAccumulator accumulates one aggregate call for one group.
type aggAccumulator struct {
	fn      string
	count   int64
	sum     float64
	sumSq   float64
	allInts bool
	min     dataset.Value
	max     dataset.Value
}

func newAccumulator(fn string) *aggAccumulator {
	return &aggAccumulator{fn: fn, allInts: true, min: dataset.Null, max: dataset.Null}
}

func (a *aggAccumulator) add(v dataset.Value) error {
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	a.count++
	switch a.fn {
	case "COUNT":
		return nil
	case "SUM", "AVG", "VARIANCE", "STDDEV":
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("sql: %s over non-numeric value %s", a.fn, v.Kind)
		}
		if v.Kind != dataset.KindInt {
			a.allInts = false
		}
		a.sum += f
		a.sumSq += f * f
		return nil
	case "MIN":
		if a.min.IsNull() || dataset.Compare(v, a.min) < 0 {
			a.min = v
		}
		return nil
	case "MAX":
		if a.max.IsNull() || dataset.Compare(v, a.max) > 0 {
			a.max = v
		}
		return nil
	default:
		return fmt.Errorf("sql: unknown aggregate %s", a.fn)
	}
}

func (a *aggAccumulator) result() dataset.Value {
	switch a.fn {
	case "COUNT":
		return dataset.Int(a.count)
	case "SUM":
		if a.count == 0 {
			return dataset.Null
		}
		if a.allInts {
			return dataset.Int(int64(a.sum))
		}
		return dataset.Float(a.sum)
	case "AVG":
		if a.count == 0 {
			return dataset.Null
		}
		return dataset.Float(a.sum / float64(a.count))
	case "VARIANCE", "STDDEV":
		if a.count == 0 {
			return dataset.Null
		}
		n := float64(a.count)
		v := a.sumSq/n - (a.sum/n)*(a.sum/n)
		if v < 0 {
			v = 0 // fp noise on constant columns
		}
		if a.fn == "STDDEV" {
			v = math.Sqrt(v)
		}
		return dataset.Float(v)
	case "MIN":
		return a.min
	case "MAX":
		return a.max
	default:
		return dataset.Null
	}
}

// aggSlot is one distinct aggregate call in the statement.
type aggSlot struct {
	call *Call
	arg  getter // nil for COUNT(*)
}

// collectAggregates walks an expression and registers every aggregate call
// in slots (deduplicated by canonical string).
func collectAggregates(e Expr, comp *compiler, slots map[string]*aggSlot) error {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Literal, *ColumnRef:
		return nil
	case *Unary:
		return collectAggregates(x.X, comp, slots)
	case *Binary:
		if err := collectAggregates(x.L, comp, slots); err != nil {
			return err
		}
		return collectAggregates(x.R, comp, slots)
	case *Call:
		if aggregateFuncs[x.Func] {
			key := x.String()
			if _, ok := slots[key]; ok {
				return nil
			}
			slot := &aggSlot{call: x}
			if !x.Star {
				if len(x.Args) != 1 {
					return fmt.Errorf("sql: %s expects one argument", x.Func)
				}
				if ContainsAggregate(x.Args[0]) {
					return fmt.Errorf("sql: nested aggregate in %s", key)
				}
				g, err := comp.compile(x.Args[0])
				if err != nil {
					return err
				}
				slot.arg = g
			} else if x.Func != "COUNT" {
				return fmt.Errorf("sql: %s(*) is not valid", x.Func)
			}
			slots[key] = slot
			return nil
		}
		for _, a := range x.Args {
			if err := collectAggregates(a, comp, slots); err != nil {
				return err
			}
		}
		return nil
	case *InList:
		if err := collectAggregates(x.X, comp, slots); err != nil {
			return err
		}
		for _, a := range x.List {
			if err := collectAggregates(a, comp, slots); err != nil {
				return err
			}
		}
		return nil
	case *Between:
		if err := collectAggregates(x.X, comp, slots); err != nil {
			return err
		}
		if err := collectAggregates(x.Lo, comp, slots); err != nil {
			return err
		}
		return collectAggregates(x.Hi, comp, slots)
	case *IsNull:
		return collectAggregates(x.X, comp, slots)
	case *Like:
		if err := collectAggregates(x.X, comp, slots); err != nil {
			return err
		}
		return collectAggregates(x.Pattern, comp, slots)
	case *Case:
		for _, w := range x.Whens {
			if err := collectAggregates(w.Cond, comp, slots); err != nil {
				return err
			}
			if err := collectAggregates(w.Result, comp, slots); err != nil {
				return err
			}
		}
		return collectAggregates(x.Else, comp, slots)
	default:
		return fmt.Errorf("sql: cannot analyse %T", e)
	}
}

type group struct {
	keyVals []dataset.Value
	accs    []*aggAccumulator
}

func executeAggregate(stmt *SelectStmt, table *dataset.Table) (*dataset.Table, error) {
	for _, it := range stmt.Items {
		if it.Star {
			return nil, fmt.Errorf("sql: SELECT * is not valid with GROUP BY or aggregates")
		}
	}
	rowComp := &compiler{bindNode: tableBinder(table)}

	// Compile GROUP BY expressions in row context.
	groupGetters := make([]getter, len(stmt.GroupBy))
	groupKeys := make([]string, len(stmt.GroupBy))
	for i, ge := range stmt.GroupBy {
		if ContainsAggregate(ge) {
			return nil, fmt.Errorf("sql: aggregate in GROUP BY")
		}
		g, err := rowComp.compile(ge)
		if err != nil {
			return nil, err
		}
		groupGetters[i] = g
		groupKeys[i] = ge.String()
	}

	// Discover aggregate slots across items, HAVING and ORDER BY.
	slots := make(map[string]*aggSlot)
	for _, it := range stmt.Items {
		if err := collectAggregates(it.Expr, rowComp, slots); err != nil {
			return nil, err
		}
	}
	if err := collectAggregates(stmt.Having, rowComp, slots); err != nil {
		return nil, err
	}
	for _, o := range stmt.OrderBy {
		if err := collectAggregates(o.Expr, rowComp, slots); err != nil {
			return nil, err
		}
	}
	slotKeys := make([]string, 0, len(slots))
	for k := range slots {
		slotKeys = append(slotKeys, k)
	}
	sort.Strings(slotKeys)
	slotIndex := make(map[string]int, len(slotKeys))
	for i, k := range slotKeys {
		slotIndex[k] = i
	}

	var whereG getter
	if stmt.Where != nil {
		if ContainsAggregate(stmt.Where) {
			return nil, fmt.Errorf("sql: aggregate in WHERE (use HAVING)")
		}
		g, err := rowComp.compile(stmt.Where)
		if err != nil {
			return nil, err
		}
		whereG = g
	}

	// Scan and group.
	groups := make(map[string]*group)
	var order []string
	nRows := 0
	if table != nil {
		nRows = table.NumRows()
	}
	for r := 0; r < nRows; r++ {
		if whereG != nil {
			v, err := whereG(r)
			if err != nil {
				return nil, err
			}
			if v.Kind != dataset.KindBool || !v.B {
				continue
			}
		}
		keyVals := make([]dataset.Value, len(groupGetters))
		for i, g := range groupGetters {
			v, err := g(r)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
		}
		key := rowKey(keyVals)
		grp, ok := groups[key]
		if !ok {
			grp = &group{keyVals: keyVals, accs: make([]*aggAccumulator, len(slotKeys))}
			for i, k := range slotKeys {
				grp.accs[i] = newAccumulator(slots[k].call.Func)
			}
			groups[key] = grp
			order = append(order, key)
		}
		for i, k := range slotKeys {
			slot := slots[k]
			if slot.arg == nil { // COUNT(*)
				grp.accs[i].count++
				continue
			}
			v, err := slot.arg(r)
			if err != nil {
				return nil, err
			}
			if err := grp.accs[i].add(v); err != nil {
				return nil, err
			}
		}
	}
	// A table with zero matching rows and no GROUP BY still yields one
	// global group (SELECT COUNT(*) FROM empty = 0).
	if len(groups) == 0 && len(stmt.GroupBy) == 0 {
		grp := &group{accs: make([]*aggAccumulator, len(slotKeys))}
		for i, k := range slotKeys {
			grp.accs[i] = newAccumulator(slots[k].call.Func)
		}
		groups["\x00global"] = grp
		order = append(order, "\x00global")
	}

	// Group-context compiler: group expressions and aggregate calls become
	// lookups; anything else must bottom out in those.
	makeGroupComp := func(grp *group) *compiler {
		return &compiler{bindNode: func(e Expr) (getter, bool, error) {
			s := e.String()
			for i, gk := range groupKeys {
				if s == gk {
					v := grp.keyVals[i]
					return func(int) (dataset.Value, error) { return v, nil }, true, nil
				}
			}
			if c, ok := e.(*Call); ok && aggregateFuncs[c.Func] {
				i, ok := slotIndex[s]
				if !ok {
					return nil, false, fmt.Errorf("sql: internal: unregistered aggregate %s", s)
				}
				v := grp.accs[i].result()
				return func(int) (dataset.Value, error) { return v, nil }, true, nil
			}
			if ref, ok := e.(*ColumnRef); ok {
				return nil, false, fmt.Errorf("sql: column %q must appear in GROUP BY or inside an aggregate", ref.Name)
			}
			return nil, false, nil
		}}
	}

	names := make([]string, len(stmt.Items))
	roles := make([]dataset.Role, len(stmt.Items))
	for i, it := range stmt.Items {
		names[i] = it.OutputName()
		roles[i] = dataset.RoleOther
		if ref, ok := it.Expr.(*ColumnRef); ok && table != nil {
			if def, found := table.Schema.Def(ref.Name); found {
				roles[i] = def.Role
			}
		}
	}

	var rows []outputRow
	for _, key := range order {
		grp := groups[key]
		comp := makeGroupComp(grp)
		if stmt.Having != nil {
			hg, err := comp.compile(stmt.Having)
			if err != nil {
				return nil, err
			}
			v, err := hg(0)
			if err != nil {
				return nil, err
			}
			if v.Kind != dataset.KindBool || !v.B {
				continue
			}
		}
		out := outputRow{vals: make([]dataset.Value, len(stmt.Items))}
		for i, it := range stmt.Items {
			g, err := comp.compile(it.Expr)
			if err != nil {
				return nil, err
			}
			v, err := g(0)
			if err != nil {
				return nil, err
			}
			out.vals[i] = v
		}
		ogs, err := bindOrderBy(stmt, comp, names)
		if err != nil {
			return nil, err
		}
		for _, og := range ogs {
			v, err := og.get(0, out.vals)
			if err != nil {
				return nil, err
			}
			out.keys = append(out.keys, v)
		}
		rows = append(rows, out)
	}
	return finishRows(stmt, names, roles, rows)
}

// cutExplain strips a leading EXPLAIN keyword (case-insensitive) and
// reports whether one was present.
func cutExplain(query string) (string, bool) {
	trimmed := strings.TrimLeft(query, " \t\r\n")
	if len(trimmed) < 8 || !strings.EqualFold(trimmed[:7], "EXPLAIN") {
		return query, false
	}
	switch trimmed[7] {
	case ' ', '\t', '\r', '\n':
		return trimmed[8:], true
	}
	return query, false
}

// ExplainPlan renders the fixed execution pipeline a statement will run
// through, one step per line, innermost first — the engine's EXPLAIN.
func ExplainPlan(stmt *SelectStmt) []string {
	var plan []string
	if stmt.From != "" {
		plan = append(plan, fmt.Sprintf("scan %s", quoteIdent(stmt.From)))
	} else {
		plan = append(plan, "const row")
	}
	if stmt.Where != nil {
		plan = append(plan, "filter "+stmt.Where.String())
	}
	isAgg := len(stmt.GroupBy) > 0 || stmt.Having != nil
	for _, it := range stmt.Items {
		if !it.Star && ContainsAggregate(it.Expr) {
			isAgg = true
		}
	}
	if isAgg {
		if len(stmt.GroupBy) > 0 {
			keys := make([]string, len(stmt.GroupBy))
			for i, g := range stmt.GroupBy {
				keys[i] = g.String()
			}
			plan = append(plan, "hash aggregate by "+strings.Join(keys, ", "))
		} else {
			plan = append(plan, "global aggregate")
		}
		if stmt.Having != nil {
			plan = append(plan, "having "+stmt.Having.String())
		}
	}
	cols := make([]string, len(stmt.Items))
	for i, it := range stmt.Items {
		if it.Star {
			cols[i] = "*"
		} else {
			cols[i] = it.OutputName()
		}
	}
	plan = append(plan, "project "+strings.Join(cols, ", "))
	if stmt.Distinct {
		plan = append(plan, "distinct")
	}
	if len(stmt.OrderBy) > 0 {
		keys := make([]string, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			keys[i] = o.Expr.String()
			if o.Desc {
				keys[i] += " DESC"
			}
		}
		plan = append(plan, "sort by "+strings.Join(keys, ", "))
	}
	if stmt.Limit >= 0 {
		plan = append(plan, fmt.Sprintf("limit %d", stmt.Limit))
	}
	return plan
}

// Catalog maps table names to tables and runs queries against them.
type Catalog struct {
	tables map[string]*dataset.Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*dataset.Table)} }

// Register adds (or replaces) a table under its own name.
func (c *Catalog) Register(t *dataset.Table) { c.tables[t.Name] = t }

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *dataset.Table { return c.tables[name] }

// Names returns the registered table names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Query parses and executes a statement against the catalog. A statement
// prefixed with EXPLAIN returns the execution plan as a one-column table
// instead of running.
func (c *Catalog) Query(query string) (*dataset.Table, error) {
	if rest, ok := cutExplain(query); ok {
		stmt, err := Parse(rest)
		if err != nil {
			return nil, err
		}
		schema, err := dataset.NewSchema(dataset.ColumnDef{Name: "plan", Kind: dataset.KindString})
		if err != nil {
			return nil, err
		}
		t := dataset.NewTable("plan", schema)
		for _, line := range ExplainPlan(stmt) {
			if err := t.AppendRow(dataset.StringVal(line)); err != nil {
				return nil, err
			}
		}
		return t, nil
	}
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	var t *dataset.Table
	if stmt.From != "" {
		t = c.tables[stmt.From]
		if t == nil {
			return nil, fmt.Errorf("sql: unknown table %q", stmt.From)
		}
	}
	return Execute(stmt, t)
}
