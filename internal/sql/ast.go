package sql

import (
	"fmt"
	"strings"

	"viewseeker/internal/dataset"
)

// Expr is any SQL expression node. String renders a canonical form used
// both for error messages and for matching SELECT expressions against
// GROUP BY expressions.
type Expr interface {
	String() string
}

// Literal is a constant value.
type Literal struct{ Val dataset.Value }

func (l *Literal) String() string {
	if l.Val.Kind == dataset.KindString {
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	}
	return l.Val.String()
}

// ColumnRef names a table column.
type ColumnRef struct{ Name string }

func (c *ColumnRef) String() string { return quoteIdent(c.Name) }

// quoteIdent renders an identifier, double-quoting it when it would not
// survive re-lexing bare (spaces, punctuation, keyword collision, leading
// digit, empty).
func quoteIdent(name string) string {
	plain := name != ""
	for i := 0; i < len(name); i++ {
		ch := name[i]
		if isIdentPart(ch) && (i > 0 || isIdentStart(ch)) {
			continue
		}
		plain = false
		break
	}
	if plain && keywords[strings.ToUpper(name)] {
		plain = false
	}
	if plain {
		return name
	}
	return `"` + name + `"`
}

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

func (u *Unary) String() string {
	if u.Op == "NOT" {
		return "NOT " + u.X.String()
	}
	return "(" + u.Op + u.X.String() + ")"
}

// Binary is a two-operand operator: arithmetic (+ - * / %), comparison
// (= != <> < <= > >=) or logical (AND OR).
type Binary struct {
	Op   string
	L, R Expr
}

func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// Call is a function application: aggregate or scalar. Star marks
// COUNT(*).
type Call struct {
	Func string // upper-cased
	Args []Expr
	Star bool
}

func (c *Call) String() string {
	if c.Star {
		return c.Func + "(*)"
	}
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Func + "(" + strings.Join(parts, ", ") + ")"
}

// InList is x [NOT] IN (e1, e2, ...).
type InList struct {
	X    Expr
	List []Expr
	Neg  bool
}

func (e *InList) String() string {
	parts := make([]string, len(e.List))
	for i, a := range e.List {
		parts[i] = a.String()
	}
	op := " IN "
	if e.Neg {
		op = " NOT IN "
	}
	return "(" + e.X.String() + op + "(" + strings.Join(parts, ", ") + "))"
}

// Between is x [NOT] BETWEEN lo AND hi (inclusive).
type Between struct {
	X, Lo, Hi Expr
	Neg       bool
}

func (e *Between) String() string {
	op := " BETWEEN "
	if e.Neg {
		op = " NOT BETWEEN "
	}
	return "(" + e.X.String() + op + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Neg bool
}

func (e *IsNull) String() string {
	if e.Neg {
		return "(" + e.X.String() + " IS NOT NULL)"
	}
	return "(" + e.X.String() + " IS NULL)"
}

// Like is x [NOT] LIKE pattern, with % and _ wildcards.
type Like struct {
	X, Pattern Expr
	Neg        bool
}

func (e *Like) String() string {
	op := " LIKE "
	if e.Neg {
		op = " NOT LIKE "
	}
	return "(" + e.X.String() + op + e.Pattern.String() + ")"
}

// Case is a searched CASE expression:
// CASE WHEN cond THEN result [WHEN ...] [ELSE result] END.
type Case struct {
	Whens []When
	Else  Expr // nil means ELSE NULL
}

// When is one WHEN/THEN arm of a Case.
type When struct {
	Cond, Result Expr
}

func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		sb.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Result.String())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

// SelectItem is one projection: an expression with an optional alias, or
// the * wildcard.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// OutputName returns the column name the item produces.
func (s SelectItem) OutputName() string {
	if s.Alias != "" {
		return s.Alias
	}
	if ref, ok := s.Expr.(*ColumnRef); ok {
		return ref.Name
	}
	return s.Expr.String()
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     string // empty for table-less SELECT (e.g. SELECT 1+1)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// String renders the statement canonically.
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.Star {
			sb.WriteString("*")
			continue
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" AS " + quoteIdent(it.Alias))
		}
	}
	if s.From != "" {
		sb.WriteString(" FROM " + quoteIdent(s.From))
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", s.Limit))
	}
	return sb.String()
}

// aggregateFuncs is the set of aggregate function names.
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"VARIANCE": true, "STDDEV": true,
}

// IsAggregateCall reports whether the expression is a direct aggregate
// function call.
func IsAggregateCall(e Expr) bool {
	c, ok := e.(*Call)
	return ok && aggregateFuncs[c.Func]
}

// ContainsAggregate reports whether any node of the expression is an
// aggregate call.
func ContainsAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *Literal, *ColumnRef:
		return false
	case *Unary:
		return ContainsAggregate(x.X)
	case *Binary:
		return ContainsAggregate(x.L) || ContainsAggregate(x.R)
	case *Call:
		if aggregateFuncs[x.Func] {
			return true
		}
		for _, a := range x.Args {
			if ContainsAggregate(a) {
				return true
			}
		}
		return false
	case *InList:
		if ContainsAggregate(x.X) {
			return true
		}
		for _, a := range x.List {
			if ContainsAggregate(a) {
				return true
			}
		}
		return false
	case *Between:
		return ContainsAggregate(x.X) || ContainsAggregate(x.Lo) || ContainsAggregate(x.Hi)
	case *IsNull:
		return ContainsAggregate(x.X)
	case *Like:
		return ContainsAggregate(x.X) || ContainsAggregate(x.Pattern)
	case *Case:
		for _, w := range x.Whens {
			if ContainsAggregate(w.Cond) || ContainsAggregate(w.Result) {
				return true
			}
		}
		return ContainsAggregate(x.Else)
	default:
		return false
	}
}
