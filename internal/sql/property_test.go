package sql

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"viewseeker/internal/dataset"
)

// TestParseStringFixedPoint checks that the canonical rendering of a
// random parsed statement reparses to the same canonical rendering.
func TestParseStringFixedPoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		s1, err := Parse(q)
		if err != nil {
			t.Fatalf("generated invalid query %q: %v", q, err)
		}
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v", s1.String(), err)
		}
		return s1.String() == s2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomQuery builds a syntactically valid query from a small grammar.
func randomQuery(rng *rand.Rand) string {
	cols := []string{"a", "b", "c"}
	col := func() string { return cols[rng.Intn(len(cols))] }
	var expr func(depth int) string
	expr = func(depth int) string {
		if depth <= 0 || rng.Intn(3) == 0 {
			switch rng.Intn(3) {
			case 0:
				return col()
			case 1:
				return fmt.Sprint(rng.Intn(100))
			default:
				return "'v" + fmt.Sprint(rng.Intn(5)) + "'"
			}
		}
		ops := []string{"+", "-", "*"}
		return "(" + expr(depth-1) + " " + ops[rng.Intn(len(ops))] + " " + expr(depth-1) + ")"
	}
	pred := func() string {
		cmp := []string{"=", "!=", "<", "<=", ">", ">="}
		switch rng.Intn(4) {
		case 0:
			return col() + " " + cmp[rng.Intn(len(cmp))] + " " + fmt.Sprint(rng.Intn(10))
		case 1:
			return col() + " IN (1, 2, 3)"
		case 2:
			return col() + " BETWEEN 1 AND 5"
		default:
			return col() + " IS NOT NULL"
		}
	}
	q := "SELECT " + expr(2) + ", " + col()
	q += " FROM t"
	if rng.Intn(2) == 0 {
		q += " WHERE " + pred() + " AND " + pred()
	}
	if rng.Intn(2) == 0 {
		q += " ORDER BY " + col() + " DESC"
	}
	if rng.Intn(2) == 0 {
		q += fmt.Sprintf(" LIMIT %d", rng.Intn(20))
	}
	return q
}

// TestAggregationMatchesManual cross-checks the SQL engine's GROUP BY
// against a hand-rolled aggregation over random data.
func TestAggregationMatchesManual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := dataset.MustSchema(
			dataset.ColumnDef{Name: "g", Kind: dataset.KindString},
			dataset.ColumnDef{Name: "v", Kind: dataset.KindFloat},
		)
		tab := dataset.NewTable("t", schema)
		type agg struct {
			n   int64
			sum float64
		}
		want := map[string]*agg{}
		for i := 0; i < 50+rng.Intn(100); i++ {
			g := string(rune('a' + rng.Intn(4)))
			v := rng.NormFloat64() * 10
			tab.MustAppendRow(dataset.StringVal(g), dataset.Float(v))
			if want[g] == nil {
				want[g] = &agg{}
			}
			want[g].n++
			want[g].sum += v
		}
		c := NewCatalog()
		c.Register(tab)
		res, err := c.Query("SELECT g, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY g ORDER BY g")
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != len(want) {
			return false
		}
		for i := 0; i < res.NumRows(); i++ {
			g := res.Column("g").Strs[i]
			w := want[g]
			if w == nil || res.Column("n").Ints[i] != w.n {
				return false
			}
			got, _ := res.Column("s").Float(i)
			if diff := got - w.sum; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestWhereMatchesManualFilter cross-checks WHERE against a manual filter.
func TestWhereMatchesManualFilter(t *testing.T) {
	f := func(seed int64, threshold uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		th := int64(threshold % 50)
		schema := dataset.MustSchema(dataset.ColumnDef{Name: "x", Kind: dataset.KindInt})
		tab := dataset.NewTable("t", schema)
		want := 0
		for i := 0; i < 100; i++ {
			v := int64(rng.Intn(50))
			tab.MustAppendRow(dataset.Int(v))
			if v > th {
				want++
			}
		}
		c := NewCatalog()
		c.Register(tab)
		res, err := c.Query(fmt.Sprintf("SELECT x FROM t WHERE x > %d", th))
		if err != nil {
			t.Fatal(err)
		}
		return res.NumRows() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGroupByMultipleColumns(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "a", Kind: dataset.KindString},
		dataset.ColumnDef{Name: "b", Kind: dataset.KindString},
		dataset.ColumnDef{Name: "v", Kind: dataset.KindInt},
	)
	tab := dataset.NewTable("t", schema)
	for i := 0; i < 12; i++ {
		tab.MustAppendRow(
			dataset.StringVal(string(rune('a'+i%2))),
			dataset.StringVal(string(rune('x'+i%3))),
			dataset.Int(int64(i)),
		)
	}
	c := NewCatalog()
	c.Register(tab)
	res, err := c.Query("SELECT a, b, COUNT(*) AS n FROM t GROUP BY a, b ORDER BY a, b")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 6 {
		t.Fatalf("groups = %d, want 6", res.NumRows())
	}
	for i := 0; i < 6; i++ {
		if res.Column("n").Ints[i] != 2 {
			t.Errorf("group %d count = %d, want 2", i, res.Column("n").Ints[i])
		}
	}
}

func TestGroupKeyNoCollision(t *testing.T) {
	// Group values ("ab", "c") and ("a", "bc") must form distinct groups:
	// the group key framing must not concatenate naively.
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "a", Kind: dataset.KindString},
		dataset.ColumnDef{Name: "b", Kind: dataset.KindString},
	)
	tab := dataset.NewTable("t", schema)
	tab.MustAppendRow(dataset.StringVal("ab"), dataset.StringVal("c"))
	tab.MustAppendRow(dataset.StringVal("a"), dataset.StringVal("bc"))
	c := NewCatalog()
	c.Register(tab)
	res, err := c.Query("SELECT a, b, COUNT(*) AS n FROM t GROUP BY a, b")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("groups = %d, want 2 (key collision)", res.NumRows())
	}
}

func TestLimitZeroAndDistinctOrder(t *testing.T) {
	c := salesCatalog(t)
	if got := q(t, c, "SELECT * FROM sales LIMIT 0").NumRows(); got != 0 {
		t.Errorf("LIMIT 0 rows = %d", got)
	}
	res := q(t, c, "SELECT DISTINCT region FROM sales ORDER BY region DESC")
	if res.Column("region").Strs[0] != "west" {
		t.Errorf("distinct+order wrong: %v", res.Column("region").Strs)
	}
}

func TestOrderByAggregateExpression(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, "SELECT product, SUM(qty) AS s FROM sales GROUP BY product ORDER BY SUM(qty) DESC")
	if res.Column("product").Strs[0] != "apple" {
		t.Errorf("order by aggregate wrong: %v", res.Column("product").Strs)
	}
}

func TestHavingOnExpression(t *testing.T) {
	c := salesCatalog(t)
	res := q(t, c, "SELECT region, AVG(price) AS p FROM sales GROUP BY region HAVING AVG(price) > 1")
	if res.NumRows() != 1 || res.Column("region").Strs[0] != "west" {
		t.Errorf("having result: %d rows", res.NumRows())
	}
}
