package view

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"viewseeker/internal/dataset"
)

// skewedTable builds a numeric dimension with a heavy right skew: most
// values near 0, a long tail.
func skewedTable(rng *rand.Rand, rows int) *dataset.Table {
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "z", Kind: dataset.KindFloat, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	t := dataset.NewTable("skew", schema)
	for i := 0; i < rows; i++ {
		v := rng.ExpFloat64() // exponential: heavily skewed
		t.MustAppendRow(dataset.Float(v), dataset.Float(rng.Float64()))
	}
	return t
}

func TestEqualDepthBalancesSkewedData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := skewedTable(rng, 10_000)

	width, err := ComputeLayout(tab, "z", 4)
	if err != nil {
		t.Fatal(err)
	}
	depth, err := ComputeLayoutEqualDepth(tab, "z", 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := func(l *BinLayout) []float64 {
		s, err := CollectStats(tab, l, []string{"m"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.Histogram("m", "COUNT")
		if err != nil {
			t.Fatal(err)
		}
		return h.Values
	}
	imbalance := func(c []float64) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range c {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return hi / math.Max(lo, 1)
	}
	wImb, dImb := imbalance(counts(width)), imbalance(counts(depth))
	if dImb >= wImb {
		t.Errorf("equal-depth imbalance %.1f should beat equal-width %.1f on skewed data", dImb, wImb)
	}
	if dImb > 1.5 {
		t.Errorf("equal-depth bins imbalance = %.2f, want near 1", dImb)
	}
	// All rows fall into some bin.
	total := 0.0
	for _, v := range counts(depth) {
		total += v
	}
	if total != float64(tab.NumRows()) {
		t.Errorf("equal-depth covered %v of %d rows", total, tab.NumRows())
	}
}

func TestEqualDepthBinOfMatchesEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := skewedTable(rng, 500)
		l, err := ComputeLayoutEqualDepth(tab, "z", 5)
		if err != nil {
			t.Fatal(err)
		}
		col := tab.Column("z")
		for r := 0; r < tab.NumRows(); r++ {
			b := l.BinOf(col, r)
			if b < 0 || b >= l.NumBins() {
				return false
			}
			v, _ := col.Float(r)
			// The value must be inside its bin's edge interval.
			if v < l.edges[b] || (b+1 < len(l.edges) && v >= l.edges[b+1] && b != l.NumBins()-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEqualDepthDuplicateBoundariesCollapse(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "z", Kind: dataset.KindFloat, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	tab := dataset.NewTable("t", schema)
	// 90% of values identical: most quantile boundaries coincide.
	for i := 0; i < 100; i++ {
		v := 1.0
		if i >= 90 {
			v = float64(i)
		}
		tab.MustAppendRow(dataset.Float(v), dataset.Float(0))
	}
	l, err := ComputeLayoutEqualDepth(tab, "z", 5)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumBins() >= 5 {
		t.Errorf("bins = %d, duplicates should collapse below 5", l.NumBins())
	}
	if l.NumBins() < 1 {
		t.Errorf("bins = %d", l.NumBins())
	}
}

func TestEqualDepthErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := randomTable(rng, 50)
	if _, err := ComputeLayoutEqualDepth(tab, "cat", 3); err == nil {
		t.Error("categorical dimension should fail")
	}
	if _, err := ComputeLayoutEqualDepth(tab, "num", 0); err == nil {
		t.Error("zero bins should fail")
	}
	if _, err := ComputeLayoutEqualDepth(tab, "ghost", 3); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestGeneratorEqualDepthOption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := skewedTable(rng, 2000)
	var rows []int
	for i := 0; i < 2000; i += 4 {
		rows = append(rows, i)
	}
	tgt := ref.Subset("tgt", rows)
	g, err := NewGenerator(ref, tgt, SpaceConfig{BinCounts: []int{4}, EqualDepth: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Pair(Spec{Dimension: "z", Measure: "m", Agg: "COUNT", Bins: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Reference counts near-balanced under equal depth.
	for _, v := range p.Reference.Values {
		if v < 300 || v > 700 {
			t.Errorf("equal-depth reference bin count = %v, want ~500", v)
		}
	}
}
