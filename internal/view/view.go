package view

import (
	"fmt"
	"strings"

	"viewseeker/internal/metric"
)

// Aggregates is the aggregate-function set of the testbed (Table 1 lists
// five aggregation functions).
var Aggregates = []string{"COUNT", "SUM", "AVG", "MIN", "MAX"}

// Spec identifies one view: the (a, m, f) triple plus the bin count used
// to discretise numeric dimensions (0 means the dimension is categorical
// and gets one bin per distinct value).
type Spec struct {
	Dimension string
	Measure   string
	Agg       string
	Bins      int
}

// String renders the spec the way the tools print it, e.g.
// "AVG(num_medications) BY age_group" or "SUM(m1) BY d2/3bins".
func (s Spec) String() string {
	dim := s.Dimension
	if s.Bins > 0 {
		dim = fmt.Sprintf("%s/%dbins", s.Dimension, s.Bins)
	}
	return fmt.Sprintf("%s(%s) BY %s", s.Agg, s.Measure, dim)
}

// SQL returns the GROUP BY query computing this view over the named table.
// Numeric dimensions bin via WIDTH_BUCKET using the supplied layout range.
func (s Spec) SQL(table string, layout *BinLayout) string {
	agg := fmt.Sprintf("%s(%s)", s.Agg, s.Measure)
	if s.Agg == "COUNT" {
		agg = "COUNT(*)"
	}
	if s.Bins > 0 && layout != nil && layout.Numeric {
		bucket := fmt.Sprintf("WIDTH_BUCKET(%s, %g, %g, %d)", s.Dimension, layout.Lo, layout.Hi, s.Bins)
		return fmt.Sprintf("SELECT %s AS bin, %s AS val FROM %s GROUP BY %s ORDER BY bin",
			bucket, agg, table, bucket)
	}
	return fmt.Sprintf("SELECT %s, %s AS val FROM %s GROUP BY %s ORDER BY %s",
		s.Dimension, agg, table, s.Dimension, s.Dimension)
}

// Histogram is one executed view: ordered bins with the aggregate value
// per bin (the bar heights) plus the raw per-bin measure statistics that
// the Accuracy and p-value utility components need.
type Histogram struct {
	Labels []string
	// Shift is the constant subtracted inside SumSqs (the measure's first
	// non-null value; see view.Stats). Consumers of SumSqs must pass it
	// alongside, e.g. to metric.Accuracy.
	Shift  float64
	Values []float64 // f(m) per bin
	Counts []float64 // rows per bin
	Sums   []float64 // Σ m per bin
	SumSqs []float64 // Σ (m−Shift)² per bin
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Values) }

// Distribution normalises the bar heights into a probability distribution
// (Eq. 5). Negative bars carry no mass; an all-empty histogram normalises
// to uniform.
func (h *Histogram) Distribution() []float64 { return metric.Normalize(h.Values) }

// TotalCount returns the number of underlying rows across bins.
func (h *Histogram) TotalCount() float64 {
	t := 0.0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Pair is a target view with its aligned reference view (Figure 2): the
// same (a, m, f) computed over DQ and DR on identical bins.
type Pair struct {
	Spec      Spec
	Target    *Histogram
	Reference *Histogram
}

// Validate checks the two histograms share a bin layout.
func (p *Pair) Validate() error {
	if p.Target == nil || p.Reference == nil {
		return fmt.Errorf("view: pair %s missing a histogram", p.Spec)
	}
	if p.Target.Bins() != p.Reference.Bins() {
		return fmt.Errorf("view: pair %s has mismatched bins (%d vs %d)",
			p.Spec, p.Target.Bins(), p.Reference.Bins())
	}
	return nil
}

// RenderLine draws the pair as a single ASCII line chart over the ordered
// bins — the line-chart visualization type from the paper's future-work
// list, most meaningful for numeric (ordered) dimension layouts. Target
// points print as 'T', reference points as 'R', overlaps as '*'.
func (p *Pair) RenderLine(height int) string {
	if height <= 0 {
		height = 10
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (line)\n", p.Spec)
	maxVal := 0.0
	for _, v := range append(append([]float64{}, p.Target.Values...), p.Reference.Values...) {
		if v > maxVal {
			maxVal = v
		}
	}
	bins := p.Target.Bins()
	const colWidth = 8
	rowOf := func(v float64) int {
		if maxVal <= 0 {
			return height - 1
		}
		r := height - 1 - int(v/maxVal*float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", bins*colWidth))
	}
	for b := 0; b < bins; b++ {
		col := b*colWidth + 1
		tr, rr := rowOf(p.Target.Values[b]), rowOf(p.Reference.Values[b])
		if tr == rr {
			grid[tr][col] = '*'
		} else {
			grid[tr][col] = 'T'
			grid[rr][col] = 'R'
		}
	}
	for _, row := range grid {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	for b := 0; b < bins; b++ {
		label := p.Target.Labels[b]
		if len(label) > colWidth {
			label = label[:colWidth]
		}
		fmt.Fprintf(&sb, "%-*s", colWidth, label)
	}
	sb.WriteString("\nT = target (DQ), R = reference (DR), * = both\n")
	return sb.String()
}

// TrendSlope fits a least-squares line through the histogram's bar heights
// over bin positions 0..b−1 and returns its slope, normalised by the mean
// bar height so views of different magnitudes compare. It is the basis of
// the TREND_DIFF utility feature for line-chart views.
func (h *Histogram) TrendSlope() float64 {
	n := float64(h.Bins())
	if n < 2 {
		return 0
	}
	var sumX, sumY, sumXY, sumXX float64
	for i, v := range h.Values {
		x := float64(i)
		sumX += x
		sumY += v
		sumXY += x * v
		sumXX += x * x
	}
	denom := n*sumXX - sumX*sumX
	if denom == 0 {
		return 0
	}
	slope := (n*sumXY - sumX*sumY) / denom
	mean := sumY / n
	if mean < 0 {
		mean = -mean
	}
	if mean < 1e-12 {
		return 0
	}
	return slope / mean
}

// Render writes a two-column ASCII rendering of the pair — the textual
// equivalent of the paper's Figure 2 side-by-side bar charts.
func (p *Pair) Render(width int) string {
	if width <= 0 {
		width = 28
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", p.Spec)
	maxVal := 0.0
	for _, v := range p.Target.Values {
		if v > maxVal {
			maxVal = v
		}
	}
	for _, v := range p.Reference.Values {
		if v > maxVal {
			maxVal = v
		}
	}
	labelW := 0
	for _, l := range p.Target.Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	bar := func(v float64) string {
		if maxVal <= 0 {
			return ""
		}
		n := int(v / maxVal * float64(width))
		if n < 0 {
			n = 0
		}
		return strings.Repeat("#", n)
	}
	fmt.Fprintf(&sb, "%-*s | %-*s | %s\n", labelW, "bin", width, "target (DQ)", "reference (DR)")
	for i, l := range p.Target.Labels {
		fmt.Fprintf(&sb, "%-*s | %-*s | %s\n", labelW, l, width, bar(p.Target.Values[i]), bar(p.Reference.Values[i]))
	}
	return sb.String()
}
