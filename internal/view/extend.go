package view

import (
	"fmt"
	"math"
	"sort"

	"viewseeker/internal/dataset"
)

// This file is the incremental-maintenance (IVM) side of the scan layer:
// given the cached artifacts of a table and a longer table that extends it
// row-for-row, the Extend kernels produce the longer table's artifacts by
// processing only the appended suffix. Bit-identity with a from-scratch
// recompute is the load-bearing contract — cached offline results must be
// indistinguishable from freshly computed ones — and it holds because:
//
//   - bin layouts are pinned to the base reference data, so a row's bin is
//     a pure per-row function: extending the index row by row matches a
//     full re-index under the same layout exactly;
//   - the flat Stats accumulators are updated per (measure, bin) slot in
//     ascending row order, so continuing from the base accumulators
//     replays the identical sequence of floating-point operations a full
//     scan would perform — non-associativity never gets a chance to bite;
//   - the variance shift is a full-column property (first non-null).
//     Appends cannot change it unless the base column was all-null, which
//     ExtendStats detects and reports so the caller falls back to a full
//     recompute for that layout.
//
// The property test in extend_test.go holds append-then-extend and
// rebuild-from-scratch bit-identical over randomised tables and appends.

// Drift counts how many appended values escaped a pinned bin layout: of
// the Appended non-null dimension values processed since the layout was
// fit, OutOfRange fell outside it (new categoricals, numerics past the
// fitted range) and dropped to bin -1. Nulls are excluded on both sides —
// they never fit any layout, so they say nothing about distribution
// shift. Drift accumulates across ApplyAppend generations; a sustained
// high Rate means the layout no longer represents the data and the caller
// should re-fit (re-run layout computation over the full table).
type Drift struct {
	Appended   int
	OutOfRange int
}

// Rate returns the out-of-range fraction (0 when nothing was appended).
func (d Drift) Rate() float64 {
	if d.Appended == 0 {
		return 0
	}
	return float64(d.OutOfRange) / float64(d.Appended)
}

// add accumulates o into d.
func (d *Drift) add(o Drift) {
	d.Appended += o.Appended
	d.OutOfRange += o.OutOfRange
}

// ExtendBinIndexAll extends cached bin indexes to cover an appended table:
// t must extend the indexes' original table row-for-row, old must be a
// BinIndexAll result over the same layouts (all on one dimension), and
// from is the original row count (= len of each old index). Rows below
// from are copied; rows from..NumRows-1 are binned fresh. The result is
// exactly BinIndexAll(t, layouts) — appended values that fall outside a
// pinned layout (new categoricals, out-of-range numerics) map to bin -1,
// same as a full re-index under that layout. The per-layout Drift reports
// how many appended non-null values escaped each layout this call.
func ExtendBinIndexAll(t *dataset.Table, layouts []*BinLayout, old [][]int32, from int) ([][]int32, []Drift, error) {
	if len(layouts) == 0 {
		return nil, nil, nil
	}
	if len(old) != len(layouts) {
		return nil, nil, fmt.Errorf("view: extending %d bin indexes with %d layouts", len(old), len(layouts))
	}
	dim := layouts[0].Dimension
	for _, l := range layouts[1:] {
		if l.Dimension != dim {
			return nil, nil, fmt.Errorf("view: ExtendBinIndexAll layouts mix dimensions %q and %q", dim, l.Dimension)
		}
	}
	n := t.NumRows()
	if from > n {
		return nil, nil, fmt.Errorf("view: bin index covers %d rows but table has %d", from, n)
	}
	for i, o := range old {
		if len(o) != from {
			return nil, nil, fmt.Errorf("view: bin index %d has %d entries, want %d", i, len(o), from)
		}
	}
	col := t.Column(dim)
	if col == nil {
		return nil, nil, fmt.Errorf("view: table has no column %q", dim)
	}
	out := make([][]int32, len(layouts))
	for i := range out {
		out[i] = make([]int32, n)
		copy(out[i], old[i])
	}
	drift := make([]Drift, len(layouts))
	for r := from; r < n; r++ {
		if col.IsNull(r) {
			// BinOf maps nulls to -1 under every layout; not drift.
			for i := range layouts {
				out[i][r] = -1
			}
			continue
		}
		for i, l := range layouts {
			b := int32(l.BinOf(col, r))
			out[i][r] = b
			drift[i].Appended++
			if b < 0 {
				drift[i].OutOfRange++
			}
		}
	}
	return out, drift, nil
}

// ExtendStats extends full-data group statistics to cover an appended
// table: t extends the stats' original table row-for-row, old is a
// full-scan Stats under a pinned layout (never a sampled one — partial
// accumulators cannot be extended), bins is the full bin index of t under
// that layout, and from is the original row count. The appended rows are
// accumulated on top of a copy of old, continuing each slot's addition
// sequence exactly where the base scan left it.
//
// ok is false — with a nil Stats — when a measure's variance shift
// changed: the base column was all-null and an append introduced the first
// non-null value, re-anchoring SumSqs. The caller must then recompute that
// layout from scratch (the only case where a delta cannot reproduce the
// full scan bit-for-bit).
//
// dropped counts the appended rows whose bin is -1 — rows the pinned
// layout cannot place (out-of-range values and nulls alike), which every
// slot accumulator therefore skips. It is the stats-side view of layout
// drift: a growing dropped share means the histograms cover less and less
// of the incoming data.
func ExtendStats(t *dataset.Table, old *Stats, bins []int32, from int) (s *Stats, dropped int, ok bool, err error) {
	n := t.NumRows()
	if len(bins) != n {
		return nil, 0, false, fmt.Errorf("view: bin index has %d entries for %d rows", len(bins), n)
	}
	if from > n {
		return nil, 0, false, fmt.Errorf("view: stats cover %d rows but table has %d", from, n)
	}
	for r := from; r < n; r++ {
		if bins[r] < 0 {
			dropped++
		}
	}
	mCols := make([]*dataset.Column, len(old.Measures))
	for m, name := range old.Measures {
		mCols[m] = t.Column(name)
		if mCols[m] == nil {
			return nil, dropped, false, fmt.Errorf("view: table has no measure %q", name)
		}
		// Bit-compare: a NaN shift must not force a rebuild per append.
		if math.Float64bits(measureShift(mCols[m])) != math.Float64bits(old.Shifts[m]) {
			return nil, dropped, false, nil
		}
	}
	s = old.clone()
	if from == n {
		return s, dropped, true, nil
	}
	rows := make([]int, n-from)
	for i := range rows {
		rows[i] = from + i
	}
	nb := s.Layout.NumBins()
	for m, col := range mCols {
		vals, nulls, numOK := col.NumericView()
		if !numOK {
			continue // non-numeric measure: full scans skip it too
		}
		base := m * nb
		accumulateColumn(s.Counts[base:base+nb], s.Sums[base:base+nb],
			s.SumSqs[base:base+nb], s.Mins[base:base+nb], s.Maxs[base:base+nb],
			vals, nulls, rows, bins, s.Shifts[m])
	}
	return s, dropped, true, nil
}

// clone deep-copies the accumulator arrays; layout, measure names and
// shifts are immutable and shared.
func (s *Stats) clone() *Stats {
	dup := func(v []float64) []float64 { return append(make([]float64, 0, len(v)), v...) }
	return &Stats{
		Layout: s.Layout, Measures: s.Measures, Shifts: s.Shifts,
		Counts: dup(s.Counts), Sums: dup(s.Sums), SumSqs: dup(s.SumSqs),
		Mins: dup(s.Mins), Maxs: dup(s.Maxs),
	}
}

// ApplyAppend returns a new generator over the appended table versions,
// with every cached artifact of g delta-extended instead of recomputed: a
// subsequent feature pass warms instantly and pays only per-view vector
// assembly. g itself is untouched — sessions holding it keep a consistent
// snapshot (the MVCC discipline of the live-table layer).
//
// Contract: newRef extends g.Ref row-for-row and newTarget extends
// g.Target row-for-row (the live layer verifies target prefix-extension
// before calling and falls back to a fresh generator otherwise). Layouts
// stay pinned to the base reference — appended values outside them drop to
// bin -1 — so downstream results are exactly what a from-scratch pass over
// the new tables with the same layouts would produce, bit for bit.
func (g *Generator) ApplyAppend(newRef, newTarget *dataset.Table) (*Generator, error) {
	if newRef.NumRows() < g.Ref.NumRows() {
		return nil, fmt.Errorf("view: new reference has %d rows, fewer than the base %d", newRef.NumRows(), g.Ref.NumRows())
	}
	if newTarget.NumRows() < g.Target.NumRows() {
		return nil, fmt.Errorf("view: new target has %d rows, fewer than the base %d", newTarget.NumRows(), g.Target.NumRows())
	}
	ng := &Generator{
		Ref: newRef, Target: newTarget, cfg: g.cfg, specs: g.specs,
		layouts: g.layouts, dimLayouts: g.dimLayouts,
		drift: make(map[layoutKey]Drift, len(g.drift)),
	}
	// Drift is cumulative since the layouts were fit: each generation
	// inherits its parent's counts and adds what this append escaped.
	for k, d := range g.drift {
		ng.drift[k] = d
	}
	if err := g.extendSide(ng, sideRef, newRef, g.Ref.NumRows()); err != nil {
		return nil, err
	}
	if err := g.extendSide(ng, sideTarget, newTarget, g.Target.NumRows()); err != nil {
		return nil, err
	}
	return ng, nil
}

type side int

const (
	sideRef side = iota
	sideTarget
)

// extendSide delta-extends one table side's caches (bin bundles, layout
// stats, focused stats) from g into ng.
func (g *Generator) extendSide(ng *Generator, sd side, newT *dataset.Table, from int) error {
	oldBins, newBins := &g.refBins, &ng.refBins
	oldStats, newStats := &g.refStats, &ng.refStats
	oldFocused, newFocused := &g.refFocused, &ng.refFocused
	if sd == sideTarget {
		oldBins, newBins = &g.tgtBins, &ng.tgtBins
		oldStats, newStats = &g.tgtStats, &ng.tgtStats
		oldFocused, newFocused = &g.tgtFocused, &ng.tgtFocused
	}
	extended := make(map[string][][]int32)
	for dim, old := range oldBins.snapshot() {
		keys := g.dimLayouts[dim]
		layouts := make([]*BinLayout, len(keys))
		for i, k := range keys {
			layouts[i] = g.layouts[k]
		}
		bundle, drift, err := ExtendBinIndexAll(newT, layouts, old, from)
		if err != nil {
			return err
		}
		if sd == sideRef {
			// Layouts are fit on the reference side, so the reference scan
			// is the authoritative drift signal (the target is a subset of
			// the same rows).
			for i, k := range keys {
				d := ng.drift[k]
				d.add(drift[i])
				ng.drift[k] = d
			}
		}
		newBins.seed(dim, bundle)
		extended[dim] = bundle
	}
	binOf := func(k layoutKey) ([]int32, error) {
		if bundle, ok := extended[k.dim]; ok {
			for i, kk := range g.dimLayouts[k.dim] {
				if kk == k {
					return bundle[i], nil
				}
			}
		}
		// Stats were cached without their bin bundle surviving (should not
		// happen — statsFor builds bins first — but recompute rather than
		// fail).
		return ng.binsFor(newT, newBins, k)
	}
	for k, st := range oldStats.snapshot() {
		bins, err := binOf(k)
		if err != nil {
			return err
		}
		ns, _, ok, err := ExtendStats(newT, st, bins, from)
		if err != nil {
			return err
		}
		if !ok { // shift drift: rebuild this layout from scratch
			ns, err = CollectStatsIndexed(newT, g.layouts[k], st.Measures, bins)
			if err != nil {
				return err
			}
		}
		newStats.seed(k, ns)
	}
	for mk, st := range oldFocused.snapshot() {
		bins, err := binOf(mk.layoutKey)
		if err != nil {
			return err
		}
		ns, _, ok, err := ExtendStats(newT, st, bins, from)
		if err != nil {
			return err
		}
		if !ok {
			ns, err = CollectStatsIndexed(newT, g.layouts[mk.layoutKey], st.Measures, bins)
			if err != nil {
				return err
			}
		}
		newFocused.seed(mk, ns)
	}
	return nil
}

// LayoutDrift is one layout's cumulative drift, in exported form.
type LayoutDrift struct {
	Dimension string
	Bins      int
	Drift     Drift
}

// DriftStats returns the cumulative per-layout drift accumulated across
// the ApplyAppend chain that produced this generator, sorted by
// (dimension, bins) for determinism. A freshly constructed generator —
// whose layouts were fit to its own reference data — has none.
func (g *Generator) DriftStats() []LayoutDrift {
	out := make([]LayoutDrift, 0, len(g.drift))
	for k, d := range g.drift {
		out = append(out, LayoutDrift{Dimension: k.dim, Bins: k.bins, Drift: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dimension != out[j].Dimension {
			return out[i].Dimension < out[j].Dimension
		}
		return out[i].Bins < out[j].Bins
	})
	return out
}

// MaxDriftRate returns the highest cumulative out-of-range rate across
// all layouts (0 for a fresh generator). This is the scalar a maintainer
// compares against its drift threshold to decide when the pinned layouts
// need re-fitting.
func (g *Generator) MaxDriftRate() float64 {
	var max float64
	for _, d := range g.drift {
		if r := d.Rate(); r > max {
			max = r
		}
	}
	return max
}
