package view

import "sync"

// lazyCache is a concurrency-safe, lazily filled map with single-flight
// semantics: when several goroutines ask for the same missing key, exactly
// one runs the compute function and the rest block until its result is
// ready. The Generator's scan caches use it so that whole-space feature
// passes can fan out over goroutines without duplicating layout scans —
// and so that later request-path refinement can run concurrently with
// anything else touching the generator.
//
// The zero value is ready to use.
type lazyCache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*lazyEntry[V]
}

type lazyEntry[V any] struct {
	ready chan struct{} // closed once val/err are final
	val   V
	err   error
}

// get returns the cached value for k, computing it via compute on first
// use. Failed computations are evicted so later callers may retry;
// concurrent waiters of the failed flight observe its error.
func (c *lazyCache[K, V]) get(k K, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[K]*lazyEntry[V])
	}
	if e, ok := c.entries[k]; ok {
		c.mu.Unlock()
		<-e.ready
		return e.val, e.err
	}
	e := &lazyEntry[V]{ready: make(chan struct{})}
	c.entries[k] = e
	c.mu.Unlock()

	e.val, e.err = compute()
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, k)
		c.mu.Unlock()
	}
	close(e.ready)
	return e.val, e.err
}

// seed stores a ready value for k, as if a compute had already completed
// successfully. The incremental-maintenance path uses it to pre-fill a new
// generator's caches with delta-extended artifacts; an existing entry for
// k is left untouched (the first result, computed or seeded, wins — the
// same rule get applies).
func (c *lazyCache[K, V]) seed(k K, v V) {
	e := &lazyEntry[V]{ready: make(chan struct{}), val: v}
	close(e.ready)
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[K]*lazyEntry[V])
	}
	if _, ok := c.entries[k]; !ok {
		c.entries[k] = e
	}
	c.mu.Unlock()
}

// snapshot returns every successfully completed entry, without blocking on
// in-flight computes (they are simply not included).
func (c *lazyCache[K, V]) snapshot() map[K]V {
	c.mu.Lock()
	entries := make([]*lazyEntry[V], 0, len(c.entries))
	keys := make([]K, 0, len(c.entries))
	for k, e := range c.entries {
		keys = append(keys, k)
		entries = append(entries, e)
	}
	c.mu.Unlock()
	out := make(map[K]V, len(keys))
	for i, e := range entries {
		select {
		case <-e.ready:
			if e.err == nil {
				out[keys[i]] = e.val
			}
		default:
		}
	}
	return out
}

// peek returns the value for k only if a computation for it has already
// completed successfully; it never blocks and never triggers a compute.
func (c *lazyCache[K, V]) peek(k K) (V, bool) {
	var zero V
	c.mu.Lock()
	e, ok := c.entries[k]
	c.mu.Unlock()
	if !ok {
		return zero, false
	}
	select {
	case <-e.ready:
		if e.err != nil {
			return zero, false
		}
		return e.val, true
	default:
		return zero, false
	}
}
