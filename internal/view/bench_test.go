package view

import (
	"math/rand"
	"testing"
)

func benchGenerator(b *testing.B, rows int) *Generator {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tab := randomTable(rng, rows)
	var sel []int
	for i := 0; i < rows; i += 7 {
		sel = append(sel, i)
	}
	g, err := NewGenerator(tab, tab.Subset("tgt", sel), SpaceConfig{BinCounts: []int{4}})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkCollectStats(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tab := randomTable(rng, 100_000)
	layout, err := ComputeLayout(tab, "cat", 0)
	if err != nil {
		b.Fatal(err)
	}
	measures := tab.Schema.Measures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CollectStats(tab, layout, measures, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectStatsIndexed(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tab := randomTable(rng, 100_000)
	layout, err := ComputeLayout(tab, "cat", 0)
	if err != nil {
		b.Fatal(err)
	}
	bins, err := BinIndex(tab, layout)
	if err != nil {
		b.Fatal(err)
	}
	measures := tab.Schema.Measures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CollectStatsIndexed(tab, layout, measures, bins); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullViewSpacePairs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := benchGenerator(b, 20_000)
		b.StartTimer()
		for _, s := range g.Specs() {
			if _, err := g.Pair(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCollectStatsReference measures the retained row-at-a-time
// reference scan — the pre-kernel path — so the columnar speedup stays
// visible in every benchmark run.
func BenchmarkCollectStatsReference(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tab := randomTable(rng, 100_000)
	layout, err := ComputeLayout(tab, "cat", 0)
	if err != nil {
		b.Fatal(err)
	}
	measures := tab.Schema.Measures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CollectStatsReference(tab, layout, measures, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectStatsSampled measures the α-pass gather through a cached
// full-table bin index against the direct re-binning scan of the same rows.
func BenchmarkCollectStatsSampled(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tab := randomTable(rng, 100_000)
	layout, err := ComputeLayout(tab, "cat", 0)
	if err != nil {
		b.Fatal(err)
	}
	bins, err := BinIndex(tab, layout)
	if err != nil {
		b.Fatal(err)
	}
	measures := tab.Schema.Measures()
	rows := tab.SampleRows(0.1)
	b.Run("indexed-gather", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := CollectStatsSampled(tab, layout, measures, rows, bins); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-rebin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := CollectStatsReference(tab, layout, measures, rows); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBinIndex measures the dictionary-encoding kernel on a
// categorical and a numeric dimension.
func BenchmarkBinIndex(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tab := randomTable(rng, 100_000)
	for _, spec := range []struct {
		dim  string
		bins int
	}{{"cat", 0}, {"num", 4}} {
		layout, err := ComputeLayout(tab, spec.dim, spec.bins)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec.dim, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BinIndex(tab, layout); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestBinIndexAllocations pins the categorical bin-index kernel to a
// single allocation per call (the output slice): the per-row GroupKey
// string materialisation is gone and must not come back.
func TestBinIndexAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := randomTable(rng, 10_000)
	for _, spec := range []struct {
		dim  string
		bins int
	}{{"cat", 0}, {"num", 4}} {
		layout, err := ComputeLayout(tab, spec.dim, spec.bins)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := BinIndex(tab, layout); err != nil { // warm decode caches
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := BinIndex(tab, layout); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 1 {
			t.Errorf("BinIndex(%s) allocates %.1f times per run, want ≤ 1", spec.dim, allocs)
		}
	}
}
