package view

import (
	"math/rand"
	"testing"
)

func benchGenerator(b *testing.B, rows int) *Generator {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tab := randomTable(rng, rows)
	var sel []int
	for i := 0; i < rows; i += 7 {
		sel = append(sel, i)
	}
	g, err := NewGenerator(tab, tab.Subset("tgt", sel), SpaceConfig{BinCounts: []int{4}})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkCollectStats(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tab := randomTable(rng, 100_000)
	layout, err := ComputeLayout(tab, "cat", 0)
	if err != nil {
		b.Fatal(err)
	}
	measures := tab.Schema.Measures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CollectStats(tab, layout, measures, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectStatsIndexed(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tab := randomTable(rng, 100_000)
	layout, err := ComputeLayout(tab, "cat", 0)
	if err != nil {
		b.Fatal(err)
	}
	bins, err := BinIndex(tab, layout)
	if err != nil {
		b.Fatal(err)
	}
	measures := tab.Schema.Measures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CollectStatsIndexed(tab, layout, measures, bins); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullViewSpacePairs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := benchGenerator(b, 20_000)
		b.StartTimer()
		for _, s := range g.Specs() {
			if _, err := g.Pair(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}
