package view

import (
	"math"
	"strings"
	"testing"

	"viewseeker/internal/dataset"
)

// demoTables builds a reference table and a skewed target subset.
func demoTables(t *testing.T) (ref, tgt *dataset.Table) {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "cat", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "z", Kind: dataset.KindFloat, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	ref = dataset.NewTable("ref", schema)
	// cat cycles a,b,c; z spans [0,10); m = row index.
	for i := 0; i < 90; i++ {
		cat := string(rune('a' + i%3))
		ref.MustAppendRow(dataset.StringVal(cat), dataset.Float(float64(i%10)), dataset.Float(float64(i)))
	}
	// Target: only rows with cat "a" (30 rows).
	var rows []int
	for i := 0; i < 90; i++ {
		if i%3 == 0 {
			rows = append(rows, i)
		}
	}
	tgt = ref.Subset("tgt", rows)
	return ref, tgt
}

func TestComputeLayoutCategorical(t *testing.T) {
	ref, _ := demoTables(t)
	l, err := ComputeLayout(ref, "cat", 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Numeric || l.NumBins() != 3 {
		t.Errorf("layout = %+v", l)
	}
	col := ref.Column("cat")
	if l.BinOf(col, 0) != 0 || l.BinOf(col, 1) != 1 || l.BinOf(col, 2) != 2 {
		t.Error("categorical BinOf wrong")
	}
}

func TestComputeLayoutNumeric(t *testing.T) {
	ref, _ := demoTables(t)
	l, err := ComputeLayout(ref, "z", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Numeric || l.NumBins() != 3 {
		t.Fatalf("layout = %+v", l)
	}
	col := ref.Column("z")
	// z values 0..9: bins [0,3), [3,6), [6,9+eps].
	if l.BinOf(col, 0) != 0 { // z=0
		t.Error("z=0 should be bin 0")
	}
	if l.BinOf(col, 9) != 2 { // z=9 (max) must land in the last bin
		t.Errorf("z=9 bin = %d, want 2", l.BinOf(col, 9))
	}
}

func TestComputeLayoutErrors(t *testing.T) {
	ref, _ := demoTables(t)
	if _, err := ComputeLayout(ref, "nope", 0); err == nil {
		t.Error("expected unknown-column error")
	}
	if _, err := ComputeLayout(ref, "z", 0); err == nil {
		t.Error("numeric dim without bins should fail")
	}
}

func TestComputeLayoutConstantColumn(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "k", Kind: dataset.KindFloat, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	tab := dataset.NewTable("t", schema)
	for i := 0; i < 5; i++ {
		tab.MustAppendRow(dataset.Float(7), dataset.Float(float64(i)))
	}
	l, err := ComputeLayout(tab, "k", 3)
	if err != nil {
		t.Fatal(err)
	}
	col := tab.Column("k")
	b := l.BinOf(col, 0)
	if b < 0 || b >= 3 {
		t.Errorf("constant column bin = %d", b)
	}
}

func TestCollectStatsAndHistogram(t *testing.T) {
	ref, _ := demoTables(t)
	l, _ := ComputeLayout(ref, "cat", 0)
	s, err := CollectStats(ref, l, []string{"m"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Histogram("m", "COUNT")
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 3; b++ {
		if h.Values[b] != 30 {
			t.Errorf("count bin %d = %v, want 30", b, h.Values[b])
		}
	}
	avg, _ := s.Histogram("m", "AVG")
	// cat "a" rows have m = 0,3,...,87 → mean 43.5; "b": 1,4,...,88 → 44.5.
	if math.Abs(avg.Values[0]-43.5) > 1e-9 || math.Abs(avg.Values[1]-44.5) > 1e-9 {
		t.Errorf("avg = %v", avg.Values)
	}
	mn, _ := s.Histogram("m", "MIN")
	mx, _ := s.Histogram("m", "MAX")
	if mn.Values[0] != 0 || mx.Values[0] != 87 {
		t.Errorf("min/max = %v / %v", mn.Values[0], mx.Values[0])
	}
	sum, _ := s.Histogram("m", "SUM")
	if sum.Values[0] != 30*43.5 {
		t.Errorf("sum = %v", sum.Values[0])
	}
	if _, err := s.Histogram("m", "MEDIAN"); err == nil {
		t.Error("unknown aggregate should fail")
	}
	if _, err := s.Histogram("nope", "SUM"); err == nil {
		t.Error("unknown measure should fail")
	}
}

func TestCollectStatsRowSubset(t *testing.T) {
	ref, _ := demoTables(t)
	l, _ := ComputeLayout(ref, "cat", 0)
	s, err := CollectStats(ref, l, []string{"m"}, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := s.Histogram("m", "COUNT")
	if h.Values[0] != 1 || h.Values[1] != 1 || h.Values[2] != 1 {
		t.Errorf("subset counts = %v", h.Values)
	}
}

func TestHistogramDistribution(t *testing.T) {
	h := &Histogram{Values: []float64{1, 3}}
	d := h.Distribution()
	if d[0] != 0.25 || d[1] != 0.75 {
		t.Errorf("distribution = %v", d)
	}
}

func TestEnumerateCategorical(t *testing.T) {
	ref, _ := demoTables(t)
	// Treat z as numeric dimension with 2 bin configs: cat contributes
	// 1×1×5, z contributes 2×1×5 → 15 specs.
	specs, err := Enumerate(ref, SpaceConfig{BinCounts: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 15 {
		t.Errorf("specs = %d, want 15", len(specs))
	}
}

func TestEnumerateDIABSize(t *testing.T) {
	tab := dataset.GenerateDIAB(dataset.DIABConfig{Rows: 500, Seed: 1})
	specs, err := Enumerate(tab, SpaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 280 {
		t.Errorf("DIAB view space = %d, want 280 (Table 1)", len(specs))
	}
}

func TestEnumerateSYNSize(t *testing.T) {
	tab := dataset.GenerateSYN(dataset.SYNConfig{Rows: 500, Seed: 1})
	specs, err := Enumerate(tab, SpaceConfig{BinCounts: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 250 {
		t.Errorf("SYN view space = %d, want 250 (Table 1)", len(specs))
	}
}

func TestEnumerateErrors(t *testing.T) {
	schema := dataset.MustSchema(dataset.ColumnDef{Name: "x", Kind: dataset.KindInt})
	if _, err := Enumerate(dataset.NewTable("t", schema), SpaceConfig{}); err == nil {
		t.Error("no dims/measures should fail")
	}
}

func TestGeneratorPair(t *testing.T) {
	ref, tgt := demoTables(t)
	g, err := NewGenerator(ref, tgt, SpaceConfig{BinCounts: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Dimension: "cat", Measure: "m", Agg: "COUNT"}
	p, err := g.Pair(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: 30/30/30. Target: 30/0/0.
	if p.Reference.Values[0] != 30 || p.Target.Values[0] != 30 {
		t.Errorf("bin a: ref=%v tgt=%v", p.Reference.Values[0], p.Target.Values[0])
	}
	if p.Target.Values[1] != 0 || p.Target.Values[2] != 0 {
		t.Errorf("target bins b,c = %v, %v, want 0", p.Target.Values[1], p.Target.Values[2])
	}
	// Distributions diverge maximally: all target mass in bin 0.
	d := p.Target.Distribution()
	if d[0] != 1 {
		t.Errorf("target distribution = %v", d)
	}
}

func TestGeneratorSampled(t *testing.T) {
	ref, tgt := demoTables(t)
	g, err := NewGenerator(ref, tgt, SpaceConfig{BinCounts: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Dimension: "cat", Measure: "m", Agg: "COUNT"}
	p, err := g.NewSampledRun(ref.SampleRows(0.1), nil).Pair(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Reference.TotalCount() >= 30 {
		t.Errorf("sampled reference count = %v, want ~9", p.Reference.TotalCount())
	}
	if p.Target.TotalCount() != 30 {
		t.Errorf("full target count = %v", p.Target.TotalCount())
	}
}

func TestGeneratorUnknownSpec(t *testing.T) {
	ref, tgt := demoTables(t)
	g, _ := NewGenerator(ref, tgt, SpaceConfig{BinCounts: []int{3}})
	if _, err := g.Pair(Spec{Dimension: "cat", Measure: "m", Agg: "COUNT", Bins: 99}); err == nil {
		t.Error("spec outside space should fail")
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Dimension: "age", Measure: "meds", Agg: "AVG"}
	if s.String() != "AVG(meds) BY age" {
		t.Errorf("String = %q", s.String())
	}
	s.Bins = 3
	if !strings.Contains(s.String(), "3bins") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSpecSQLAgainstEngine(t *testing.T) {
	// The SQL the spec prints must actually run on the engine and agree
	// with the generator's histogram.
	ref, tgt := demoTables(t)
	g, _ := NewGenerator(ref, tgt, SpaceConfig{BinCounts: []int{3}})
	spec := Spec{Dimension: "cat", Measure: "m", Agg: "SUM"}
	p, err := g.Pair(spec)
	if err != nil {
		t.Fatal(err)
	}
	query := spec.SQL("ref", g.Layout(spec))
	res := mustQuery(t, ref, query)
	if res.NumRows() != 3 {
		t.Fatalf("sql rows = %d", res.NumRows())
	}
	for i := 0; i < 3; i++ {
		got, _ := res.Column("val").Float(i)
		if math.Abs(got-p.Reference.Values[i]) > 1e-9 {
			t.Errorf("bin %d: sql=%v generator=%v", i, got, p.Reference.Values[i])
		}
	}
}

func TestSpecSQLNumericBins(t *testing.T) {
	ref, tgt := demoTables(t)
	g, _ := NewGenerator(ref, tgt, SpaceConfig{BinCounts: []int{3}})
	spec := Spec{Dimension: "z", Measure: "m", Agg: "COUNT", Bins: 3}
	p, err := g.Pair(spec)
	if err != nil {
		t.Fatal(err)
	}
	query := spec.SQL("ref", g.Layout(spec))
	res := mustQuery(t, ref, query)
	total := 0.0
	for i := 0; i < res.NumRows(); i++ {
		v, _ := res.Column("val").Float(i)
		total += v
	}
	if total != p.Reference.TotalCount() {
		t.Errorf("sql total = %v, generator total = %v", total, p.Reference.TotalCount())
	}
}

func TestPairValidate(t *testing.T) {
	p := &Pair{Target: &Histogram{Values: []float64{1}}, Reference: &Histogram{Values: []float64{1, 2}}}
	if err := p.Validate(); err == nil {
		t.Error("mismatched bins should fail validation")
	}
	p = &Pair{}
	if err := p.Validate(); err == nil {
		t.Error("missing histograms should fail validation")
	}
}

func TestPairRender(t *testing.T) {
	ref, tgt := demoTables(t)
	g, _ := NewGenerator(ref, tgt, SpaceConfig{BinCounts: []int{3}})
	p, err := g.Pair(Spec{Dimension: "cat", Measure: "m", Agg: "COUNT"})
	if err != nil {
		t.Fatal(err)
	}
	out := p.Render(20)
	if !strings.Contains(out, "#") || !strings.Contains(out, "target") {
		t.Errorf("render output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + 3 bins
		t.Errorf("render lines = %d:\n%s", len(lines), out)
	}
}
