package view

import (
	"fmt"
	"math"
	"sort"

	"viewseeker/internal/dataset"
)

// BinLayout fixes the bin structure of one dimension so target and
// reference histograms align. Categorical layouts enumerate the reference
// dataset's distinct values; numeric layouts split the reference range
// into equal-width bins, or into equal-depth (quantile) bins when built
// with ComputeLayoutEqualDepth.
type BinLayout struct {
	Dimension string
	Numeric   bool
	Labels    []string
	// Numeric equal-width layouts: [Lo, Hi) split into Bins equal bins.
	// Hi is nudged above the data maximum so the max value falls in the
	// last bin.
	Lo, Hi float64
	Bins   int
	// Numeric equal-depth layouts: bin i covers [edges[i], edges[i+1]),
	// with the last bin closed above. nil for equal-width layouts.
	edges []float64

	index map[string]int // categorical group key → bin
}

// ComputeLayout builds the layout for a dimension from the reference
// table. bins > 0 requests numeric equal-width binning and is required for
// numeric dimensions; categorical (string/bool) dimensions ignore it.
func ComputeLayout(ref *dataset.Table, dim string, bins int) (*BinLayout, error) {
	col := ref.Column(dim)
	if col == nil {
		return nil, fmt.Errorf("view: table %q has no column %q", ref.Name, dim)
	}
	switch col.Def.Kind {
	case dataset.KindString, dataset.KindBool:
		vals, err := ref.DistinctValues(dim)
		if err != nil {
			return nil, err
		}
		if len(vals) == 0 {
			return nil, fmt.Errorf("view: dimension %q has no values", dim)
		}
		l := &BinLayout{Dimension: dim, Labels: vals, index: make(map[string]int, len(vals))}
		for i, v := range vals {
			l.index[v] = i
		}
		return l, nil
	case dataset.KindInt, dataset.KindFloat:
		if bins <= 0 {
			return nil, fmt.Errorf("view: numeric dimension %q needs a bin count", dim)
		}
		lo, hi, ok := ref.NumericRange(dim)
		if !ok {
			return nil, fmt.Errorf("view: dimension %q has no numeric values", dim)
		}
		if hi <= lo {
			hi = lo + 1 // constant column: one degenerate range
		} else {
			hi = hi + (hi-lo)*1e-9 // include the max in the last bin
		}
		l := &BinLayout{Dimension: dim, Numeric: true, Lo: lo, Hi: hi, Bins: bins}
		width := (hi - lo) / float64(bins)
		for i := 0; i < bins; i++ {
			l.Labels = append(l.Labels, fmt.Sprintf("[%.3g,%.3g)", lo+float64(i)*width, lo+float64(i+1)*width))
		}
		return l, nil
	default:
		return nil, fmt.Errorf("view: dimension %q has unsupported kind %s", dim, col.Def.Kind)
	}
}

// ComputeLayoutEqualDepth builds an equal-depth (quantile) layout for a
// numeric dimension: bin boundaries are chosen so that the reference data
// spreads as evenly as possible across bins, which keeps heavily skewed
// dimensions readable where equal-width binning would dump everything
// into one bar. Duplicate quantile boundaries collapse, so the layout may
// end up with fewer bins than requested.
func ComputeLayoutEqualDepth(ref *dataset.Table, dim string, bins int) (*BinLayout, error) {
	col := ref.Column(dim)
	if col == nil {
		return nil, fmt.Errorf("view: table %q has no column %q", ref.Name, dim)
	}
	if col.Def.Kind != dataset.KindInt && col.Def.Kind != dataset.KindFloat {
		return nil, fmt.Errorf("view: equal-depth binning needs a numeric dimension, %q is %s", dim, col.Def.Kind)
	}
	if bins <= 0 {
		return nil, fmt.Errorf("view: equal-depth binning needs a positive bin count")
	}
	vals := make([]float64, 0, ref.NumRows())
	for r := 0; r < ref.NumRows(); r++ {
		if v, ok := col.Float(r); ok {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("view: dimension %q has no numeric values", dim)
	}
	sort.Float64s(vals)
	// Interior quantile boundaries, deduplicated.
	edges := []float64{vals[0]}
	for i := 1; i < bins; i++ {
		q := vals[i*len(vals)/bins]
		if q > edges[len(edges)-1] {
			edges = append(edges, q)
		}
	}
	top := vals[len(vals)-1]
	if top <= edges[len(edges)-1] {
		top = edges[len(edges)-1] + 1
	} else {
		top += (top - vals[0]) * 1e-9 // include the max in the last bin
	}
	edges = append(edges, top)
	l := &BinLayout{Dimension: dim, Numeric: true, Lo: edges[0], Hi: top, Bins: len(edges) - 1, edges: edges}
	for i := 0; i+1 < len(edges); i++ {
		l.Labels = append(l.Labels, fmt.Sprintf("[%.3g,%.3g)", edges[i], edges[i+1]))
	}
	return l, nil
}

// NumBins returns the layout's bin count.
func (l *BinLayout) NumBins() int { return len(l.Labels) }

// BinOf maps one cell to its bin index, or -1 for NULLs and values outside
// the layout (e.g. a categorical value present in DQ but absent from DR —
// impossible when DQ ⊆ DR, but guarded anyway).
func (l *BinLayout) BinOf(col *dataset.Column, row int) int {
	if col.IsNull(row) {
		return -1
	}
	if !l.Numeric {
		if i, ok := l.index[col.GroupKey(row)]; ok {
			return i
		}
		return -1
	}
	f, ok := col.Float(row)
	if !ok {
		return -1
	}
	return l.binOfFloat(f)
}

// binOfFloat maps a numeric value to its bin, or -1 outside [Lo, Hi). It
// is the single binning expression shared by BinOf and the columnar
// bin-index kernel, so the two can never disagree on boundary rounding.
func (l *BinLayout) binOfFloat(f float64) int {
	if f < l.Lo || f >= l.Hi {
		if f == l.Hi { // degenerate constant-column layout
			return l.Bins - 1
		}
		return -1
	}
	if l.edges != nil {
		// Equal-depth: binary search the boundary list.
		i := sort.SearchFloat64s(l.edges, f)
		// SearchFloat64s returns the first edge ≥ f; bin i covers
		// [edges[i], edges[i+1]), so an exact boundary hit belongs to the
		// bin starting there.
		if i < len(l.edges) && l.edges[i] == f {
			if i == len(l.edges)-1 {
				return l.Bins - 1
			}
			return i
		}
		return i - 1
	}
	i := int((f - l.Lo) / (l.Hi - l.Lo) * float64(l.Bins))
	if i >= l.Bins {
		i = l.Bins - 1
	}
	return i
}

// Stats holds one scan's worth of group statistics for a (dimension,
// bins) layout: for every bin and every measure, the count, sum, sum of
// squares, min and max of the measure. One Stats answers every (m, f)
// view on that dimension, which is how the generator amortises scans.
//
// The five statistics are flat, contiguous, measure-major arrays —
// statistic X of measure m in bin b lives at X[Index(m, b)] — so the scan
// kernels accumulate into one cache-resident stripe per measure instead of
// chasing a pointer per bin.
//
// SumSqs is accumulated about a per-measure shift (Shifts[m], the
// measure's first non-null value over the full column): SumSqs[Index(m,b)]
// is Σ(v−Shifts[m])². Shifting the second moment near the data keeps
// downstream variance forms (metric.Accuracy) numerically stable for
// measures whose mean is large relative to their spread; consumers must
// pass the matching shift alongside. The shift is a property of the full
// column — independent of the scanned row subset — so partial scans stay
// additive and sampled scans agree with full ones.
type Stats struct {
	Layout   *BinLayout
	Measures []string
	// Shifts[m] is the constant subtracted inside measure m's SumSqs.
	Shifts []float64
	// All indexed [measure*NumBins()+bin]; see Index.
	Counts []float64
	Sums   []float64
	SumSqs []float64
	Mins   []float64
	Maxs   []float64
}

// Index returns the flat offset of (measure m, bin b).
func (s *Stats) Index(m, b int) int { return m*s.Layout.NumBins() + b }

// newStats allocates zeroed accumulators, with min/max seeded to ±Inf.
func newStats(layout *BinLayout, measures []string) *Stats {
	n := layout.NumBins() * len(measures)
	s := &Stats{
		Layout: layout, Measures: measures,
		Shifts: make([]float64, len(measures)),
		Counts: make([]float64, n), Sums: make([]float64, n), SumSqs: make([]float64, n),
		Mins: make([]float64, n), Maxs: make([]float64, n),
	}
	for i := range s.Mins {
		s.Mins[i] = math.Inf(1)
		s.Maxs[i] = math.Inf(-1)
	}
	return s
}

// measureShift returns the variance-stabilising shift of one measure
// column: its first non-null numeric value, 0 for all-null or non-numeric
// columns. It depends only on the full column, never on the row subset
// being scanned, so every scan of a table (full, sampled, focused) derives
// the same shift and their SumSqs remain directly comparable and additive.
func measureShift(col *dataset.Column) float64 {
	vals, nulls, ok := col.NumericView()
	if !ok {
		return 0
	}
	for r := range vals {
		if !isNull(nulls, r) {
			return vals[r]
		}
	}
	return 0
}

// smallDictMax is the categorical cardinality up to which the bin-index
// kernel resolves labels with a first-byte table and linear probing
// instead of hashing through the layout's map.
const smallDictMax = 24

// probeLabels returns the bin whose label equals s, or -1.
func probeLabels(labels []string, s string) int32 {
	for i, lab := range labels {
		if lab == s {
			return int32(i)
		}
	}
	return -1
}

// isNull reads bit r of a column null bitmap. Nil-safe: the bitmap covers
// only up to the highest null row.
func isNull(nulls []uint64, r int) bool {
	w := r >> 6
	return w < len(nulls) && nulls[w]>>(uint(r)&63)&1 == 1
}

// BinIndex materialises the bin of every row of a table under a layout —
// a dictionary-encoded dimension column. Scans that reuse it avoid the
// per-row map lookup that otherwise dominates categorical grouping.
// Entries are -1 for NULLs and out-of-layout values.
func BinIndex(t *dataset.Table, layout *BinLayout) ([]int32, error) {
	dimCol := t.Column(layout.Dimension)
	if dimCol == nil {
		return nil, fmt.Errorf("view: table %q has no column %q", t.Name, layout.Dimension)
	}
	bins := make([]int32, t.NumRows())
	layout.fillBins(dimCol, bins)
	return bins, nil
}

// BinIndexAll materialises the bin index of every supplied layout — all
// bin configurations of one dimension — in a single pass over the
// dimension column. Each result is exactly BinIndex's for that layout;
// fusing the pass means a multi-configuration numeric dimension pays one
// column read and one null test per row instead of one per configuration.
func BinIndexAll(t *dataset.Table, layouts []*BinLayout) ([][]int32, error) {
	if len(layouts) == 0 {
		return nil, nil
	}
	dim := layouts[0].Dimension
	for _, l := range layouts[1:] {
		if l.Dimension != dim {
			return nil, fmt.Errorf("view: BinIndexAll layouts mix dimensions %q and %q", dim, l.Dimension)
		}
	}
	dimCol := t.Column(dim)
	if dimCol == nil {
		return nil, fmt.Errorf("view: table %q has no column %q", t.Name, dim)
	}
	out := make([][]int32, len(layouts))
	for i := range out {
		out[i] = make([]int32, t.NumRows())
	}
	allNumeric := true
	for _, l := range layouts {
		if !l.Numeric {
			allNumeric = false
			break
		}
	}
	if allNumeric && len(layouts) > 1 {
		vals, nulls, ok := dimCol.NumericView()
		if !ok {
			// fillBins's rule for a dimension with no numeric view: every
			// row is outside every layout.
			for i := range out {
				for r := range out[i] {
					out[i][r] = -1
				}
			}
			return out, nil
		}
		for r := range vals {
			if isNull(nulls, r) {
				for i := range layouts {
					out[i][r] = -1
				}
				continue
			}
			v := vals[r]
			for i, l := range layouts {
				out[i][r] = int32(l.binOfFloat(v))
			}
		}
		return out, nil
	}
	for i, l := range layouts {
		l.fillBins(dimCol, out[i])
	}
	return out, nil
}

// fillBins is the columnar bin-index kernel: it switches on the dimension
// column's kind once and walks the backing slice directly, instead of
// paying BinOf's kind switch — and, for categorical dimensions, GroupKey's
// boxing — once per row. Every path produces exactly BinOf's result (the
// bin-index property test holds the two together).
func (l *BinLayout) fillBins(col *dataset.Column, bins []int32) {
	if !l.Numeric {
		nulls := col.NullBitmap()
		switch col.Def.Kind {
		case dataset.KindString:
			strs := col.Strs
			// Bin i is labelled Labels[i], so the label slice doubles as
			// the lookup dictionary. At the small cardinalities typical of
			// categorical dimensions, direct-mapping the labels by first
			// byte beats hashing every row's string through the map: most
			// label sets have distinct initials, making the common row one
			// array index plus one equality check. Shared initials and
			// empty strings fall back to a linear probe over the (small)
			// label set; high-cardinality layouts keep the map. All paths
			// find the same unique label.
			if labels := l.Labels; len(labels) <= smallDictMax {
				var first [256]int32
				for i := range first {
					first[i] = -1
				}
				for i, lab := range labels {
					if lab == "" {
						continue // probed: "" has no first byte
					}
					if b0 := lab[0]; first[b0] == -1 {
						first[b0] = int32(i)
					} else {
						first[b0] = -2 // shared initial: always probe
					}
				}
				for r := range bins {
					if isNull(nulls, r) {
						bins[r] = -1
						continue
					}
					s := strs[r]
					if s != "" {
						if c := first[s[0]]; c >= 0 {
							// The unique label with this initial either is
							// s or no label is.
							if labels[c] == s {
								bins[r] = c
							} else {
								bins[r] = -1
							}
							continue
						} else if c == -1 {
							bins[r] = -1 // no label starts with this byte
							continue
						}
					}
					bins[r] = probeLabels(labels, s)
				}
				return
			}
			for r := range bins {
				if isNull(nulls, r) {
					bins[r] = -1
					continue
				}
				if i, ok := l.index[strs[r]]; ok {
					bins[r] = int32(i)
				} else {
					bins[r] = -1
				}
			}
		case dataset.KindBool:
			// The categorical index keys bools by their printed group keys;
			// resolve both once and select per row.
			binFalse, binTrue := int32(-1), int32(-1)
			if i, ok := l.index["false"]; ok {
				binFalse = int32(i)
			}
			if i, ok := l.index["true"]; ok {
				binTrue = int32(i)
			}
			bools := col.Bools
			for r := range bins {
				switch {
				case isNull(nulls, r):
					bins[r] = -1
				case bools[r]:
					bins[r] = binTrue
				default:
					bins[r] = binFalse
				}
			}
		default:
			for r := range bins {
				bins[r] = int32(l.BinOf(col, r))
			}
		}
		return
	}
	vals, nulls, ok := col.NumericView()
	if !ok {
		for r := range bins {
			bins[r] = -1
		}
		return
	}
	for r := range bins {
		if isNull(nulls, r) {
			bins[r] = -1
			continue
		}
		bins[r] = int32(l.binOfFloat(vals[r]))
	}
}

// CollectStats scans the table (restricted to rows, or all rows when rows
// is nil) and accumulates per-bin statistics for every measure.
func CollectStats(t *dataset.Table, layout *BinLayout, measures []string, rows []int) (*Stats, error) {
	return collectStats(t, layout, measures, rows, nil)
}

// CollectStatsIndexed is CollectStats over all rows using a precomputed
// bin index (from BinIndex), skipping the per-row bin lookup.
func CollectStatsIndexed(t *dataset.Table, layout *BinLayout, measures []string, bins []int32) (*Stats, error) {
	if len(bins) != t.NumRows() {
		return nil, fmt.Errorf("view: bin index has %d entries for %d rows", len(bins), t.NumRows())
	}
	return collectStats(t, layout, measures, nil, bins)
}

// CollectStatsSampled is CollectStats over a row subset using a
// precomputed full-table bin index: an α-sample pass costs a gather
// through the index instead of re-binning the dimension column row by row.
func CollectStatsSampled(t *dataset.Table, layout *BinLayout, measures []string, rows []int, bins []int32) (*Stats, error) {
	if len(bins) != t.NumRows() {
		return nil, fmt.Errorf("view: bin index has %d entries for %d rows", len(bins), t.NumRows())
	}
	return collectStats(t, layout, measures, rows, bins)
}

func collectStats(t *dataset.Table, layout *BinLayout, measures []string, rows []int, bins []int32) (*Stats, error) {
	dimCol := t.Column(layout.Dimension)
	if dimCol == nil {
		return nil, fmt.Errorf("view: table %q has no column %q", t.Name, layout.Dimension)
	}
	mCols := make([]*dataset.Column, len(measures))
	for i, m := range measures {
		mCols[i] = t.Column(m)
		if mCols[i] == nil {
			return nil, fmt.Errorf("view: table %q has no measure %q", t.Name, m)
		}
	}
	nb := layout.NumBins()
	s := newStats(layout, measures)
	for m, col := range mCols {
		s.Shifts[m] = measureShift(col)
	}
	if bins == nil && rows == nil {
		// Full unindexed scan: bin the dimension once up front, then run
		// the indexed kernels — the same decode-once work a cached index
		// would have saved, paid exactly once.
		bins = make([]int32, t.NumRows())
		layout.fillBins(dimCol, bins)
	}
	if bins != nil {
		for m, col := range mCols {
			vals, nulls, ok := col.NumericView()
			if !ok {
				continue // non-numeric measure: every cell skips, stats stay empty
			}
			base := m * nb
			accumulateColumn(s.Counts[base:base+nb], s.Sums[base:base+nb],
				s.SumSqs[base:base+nb], s.Mins[base:base+nb], s.Maxs[base:base+nb],
				vals, nulls, rows, bins, s.Shifts[m])
		}
		return s, nil
	}
	// Row subset without a bin index: per-row BinOf, but still decode-once
	// measure reads and flat accumulators.
	views := make([][]float64, len(mCols))
	nullsOf := make([][]uint64, len(mCols))
	numeric := make([]bool, len(mCols))
	for m, col := range mCols {
		views[m], nullsOf[m], numeric[m] = col.NumericView()
	}
	for _, r := range rows {
		b := layout.BinOf(dimCol, r)
		if b < 0 {
			continue
		}
		for m := range mCols {
			if !numeric[m] || isNull(nullsOf[m], r) {
				continue
			}
			v := views[m][r]
			d := v - s.Shifts[m]
			i := m*nb + b
			s.Counts[i]++
			s.Sums[i] += v
			s.SumSqs[i] += d * d
			if v < s.Mins[i] {
				s.Mins[i] = v
			}
			if v > s.Maxs[i] {
				s.Maxs[i] = v
			}
		}
	}
	return s, nil
}

// accumulateColumn is the per-measure inner loop of the indexed scan
// kernels: one decoded column accumulated into one measure's flat stripe.
// All branching on scan shape (full vs row subset) and null presence is
// hoisted out of the row loop, leaving four straight-line variants. The
// second moment accumulates about shift (see Stats.Shifts).
func accumulateColumn(cnt, sum, sq, mn, mx, vals []float64, nulls []uint64, rows []int, bins []int32, shift float64) {
	switch {
	case rows == nil && nulls == nil:
		for r, b := range bins {
			if b < 0 {
				continue
			}
			v := vals[r]
			d := v - shift
			cnt[b]++
			sum[b] += v
			sq[b] += d * d
			if v < mn[b] {
				mn[b] = v
			}
			if v > mx[b] {
				mx[b] = v
			}
		}
	case rows == nil:
		for r, b := range bins {
			if b < 0 || isNull(nulls, r) {
				continue
			}
			v := vals[r]
			d := v - shift
			cnt[b]++
			sum[b] += v
			sq[b] += d * d
			if v < mn[b] {
				mn[b] = v
			}
			if v > mx[b] {
				mx[b] = v
			}
		}
	case nulls == nil:
		for _, r := range rows {
			b := bins[r]
			if b < 0 {
				continue
			}
			v := vals[r]
			d := v - shift
			cnt[b]++
			sum[b] += v
			sq[b] += d * d
			if v < mn[b] {
				mn[b] = v
			}
			if v > mx[b] {
				mx[b] = v
			}
		}
	default:
		for _, r := range rows {
			b := bins[r]
			if b < 0 || isNull(nulls, r) {
				continue
			}
			v := vals[r]
			d := v - shift
			cnt[b]++
			sum[b] += v
			sq[b] += d * d
			if v < mn[b] {
				mn[b] = v
			}
			if v > mx[b] {
				mx[b] = v
			}
		}
	}
}

// CollectStatsReference is the retained row-at-a-time reference
// implementation the columnar kernels are held bit-identical to: per-row
// BinOf (kind switch, group-key lookup), per-cell Column.Float, bin-major
// scratch accumulators — the pre-kernel scan path. The kernel property
// tests and cmd/bench compare against it. rows == nil scans every row.
func CollectStatsReference(t *dataset.Table, layout *BinLayout, measures []string, rows []int) (*Stats, error) {
	dimCol := t.Column(layout.Dimension)
	if dimCol == nil {
		return nil, fmt.Errorf("view: table %q has no column %q", t.Name, layout.Dimension)
	}
	mCols := make([]*dataset.Column, len(measures))
	for i, m := range measures {
		mCols[i] = t.Column(m)
		if mCols[i] == nil {
			return nil, fmt.Errorf("view: table %q has no measure %q", t.Name, m)
		}
	}
	nb := layout.NumBins()
	alloc := func() [][]float64 {
		out := make([][]float64, nb)
		for i := range out {
			out[i] = make([]float64, len(measures))
		}
		return out
	}
	counts, sums, sumsqs := alloc(), alloc(), alloc()
	mins, maxs := alloc(), alloc()
	for b := 0; b < nb; b++ {
		for m := range measures {
			mins[b][m] = math.Inf(1)
			maxs[b][m] = math.Inf(-1)
		}
	}
	// The same full-column shifts as the flat kernels (measureShift is a
	// column property, not a scan strategy), so flat-vs-reference stays a
	// bit-identity comparison over every array including SumSqs.
	shifts := make([]float64, len(mCols))
	for m, col := range mCols {
		shifts[m] = measureShift(col)
	}
	accumulate := func(r, b int) {
		for m, col := range mCols {
			v, ok := col.Float(r)
			if !ok {
				continue
			}
			d := v - shifts[m]
			counts[b][m]++
			sums[b][m] += v
			sumsqs[b][m] += d * d
			if v < mins[b][m] {
				mins[b][m] = v
			}
			if v > maxs[b][m] {
				maxs[b][m] = v
			}
		}
	}
	if rows == nil {
		for r := 0; r < t.NumRows(); r++ {
			if b := layout.BinOf(dimCol, r); b >= 0 {
				accumulate(r, b)
			}
		}
	} else {
		for _, r := range rows {
			if b := layout.BinOf(dimCol, r); b >= 0 {
				accumulate(r, b)
			}
		}
	}
	s := newStats(layout, measures)
	copy(s.Shifts, shifts)
	for b := 0; b < nb; b++ {
		for m := range measures {
			i := s.Index(m, b)
			s.Counts[i] = counts[b][m]
			s.Sums[i] = sums[b][m]
			s.SumSqs[i] = sumsqs[b][m]
			s.Mins[i] = mins[b][m]
			s.Maxs[i] = maxs[b][m]
		}
	}
	return s, nil
}

// MeasureIndex returns the position of measure in s.Measures, or -1.
func (s *Stats) MeasureIndex(measure string) int {
	for i, m := range s.Measures {
		if m == measure {
			return i
		}
	}
	return -1
}

// ValuesInto writes the aggregate bar heights of (measure index mi, agg)
// into out — exactly the Values slice Histogram would build, without
// materialising the Histogram. len(out) must equal the layout's bin
// count. Empty bins are written as 0 (out is fully overwritten, so a
// reused scratch buffer carries no stale values). The per-bin aggregate
// expressions are Histogram's own, so the two stay bit-identical; the agg
// switch is hoisted out of the bin loop.
func (s *Stats) ValuesInto(mi int, agg string, out []float64) error {
	if mi < 0 || mi >= len(s.Measures) {
		return fmt.Errorf("view: measure index %d out of range (%d measures)", mi, len(s.Measures))
	}
	nb := s.Layout.NumBins()
	if len(out) != nb {
		return fmt.Errorf("view: values buffer has %d bins, layout has %d", len(out), nb)
	}
	base := mi * nb
	counts := s.Counts[base : base+nb]
	var src []float64
	switch agg {
	case "COUNT":
		copy(out, counts)
		return nil
	case "SUM":
		src = s.Sums[base : base+nb]
	case "AVG":
		sums := s.Sums[base : base+nb]
		for b := 0; b < nb; b++ {
			if c := counts[b]; c == 0 {
				out[b] = 0
			} else {
				out[b] = sums[b] / c
			}
		}
		return nil
	case "MIN":
		src = s.Mins[base : base+nb]
	case "MAX":
		src = s.Maxs[base : base+nb]
	default:
		return fmt.Errorf("view: unknown aggregate %q", agg)
	}
	for b := 0; b < nb; b++ {
		if counts[b] == 0 {
			out[b] = 0
		} else {
			out[b] = src[b]
		}
	}
	return nil
}

// Histogram extracts the (measure, agg) view from collected statistics.
func (s *Stats) Histogram(measure, agg string) (*Histogram, error) {
	mi := s.MeasureIndex(measure)
	if mi < 0 {
		return nil, fmt.Errorf("view: stats have no measure %q", measure)
	}
	nb := s.Layout.NumBins()
	h := &Histogram{
		Labels: s.Layout.Labels,
		Shift:  s.Shifts[mi],
		Values: make([]float64, nb),
		Counts: make([]float64, nb),
		Sums:   make([]float64, nb),
		SumSqs: make([]float64, nb),
	}
	base := mi * nb
	for b := 0; b < nb; b++ {
		c := s.Counts[base+b]
		h.Counts[b] = c
		h.Sums[b] = s.Sums[base+b]
		h.SumSqs[b] = s.SumSqs[base+b]
		if c == 0 {
			continue // empty bin: bar height 0 for every aggregate
		}
		switch agg {
		case "COUNT":
			h.Values[b] = c
		case "SUM":
			h.Values[b] = s.Sums[base+b]
		case "AVG":
			h.Values[b] = s.Sums[base+b] / c
		case "MIN":
			h.Values[b] = s.Mins[base+b]
		case "MAX":
			h.Values[b] = s.Maxs[base+b]
		default:
			return nil, fmt.Errorf("view: unknown aggregate %q", agg)
		}
	}
	return h, nil
}
