package view

import (
	"fmt"
	"math"
	"sort"

	"viewseeker/internal/dataset"
)

// BinLayout fixes the bin structure of one dimension so target and
// reference histograms align. Categorical layouts enumerate the reference
// dataset's distinct values; numeric layouts split the reference range
// into equal-width bins, or into equal-depth (quantile) bins when built
// with ComputeLayoutEqualDepth.
type BinLayout struct {
	Dimension string
	Numeric   bool
	Labels    []string
	// Numeric equal-width layouts: [Lo, Hi) split into Bins equal bins.
	// Hi is nudged above the data maximum so the max value falls in the
	// last bin.
	Lo, Hi float64
	Bins   int
	// Numeric equal-depth layouts: bin i covers [edges[i], edges[i+1]),
	// with the last bin closed above. nil for equal-width layouts.
	edges []float64

	index map[string]int // categorical group key → bin
}

// ComputeLayout builds the layout for a dimension from the reference
// table. bins > 0 requests numeric equal-width binning and is required for
// numeric dimensions; categorical (string/bool) dimensions ignore it.
func ComputeLayout(ref *dataset.Table, dim string, bins int) (*BinLayout, error) {
	col := ref.Column(dim)
	if col == nil {
		return nil, fmt.Errorf("view: table %q has no column %q", ref.Name, dim)
	}
	switch col.Def.Kind {
	case dataset.KindString, dataset.KindBool:
		vals, err := ref.DistinctValues(dim)
		if err != nil {
			return nil, err
		}
		if len(vals) == 0 {
			return nil, fmt.Errorf("view: dimension %q has no values", dim)
		}
		l := &BinLayout{Dimension: dim, Labels: vals, index: make(map[string]int, len(vals))}
		for i, v := range vals {
			l.index[v] = i
		}
		return l, nil
	case dataset.KindInt, dataset.KindFloat:
		if bins <= 0 {
			return nil, fmt.Errorf("view: numeric dimension %q needs a bin count", dim)
		}
		lo, hi, ok := ref.NumericRange(dim)
		if !ok {
			return nil, fmt.Errorf("view: dimension %q has no numeric values", dim)
		}
		if hi <= lo {
			hi = lo + 1 // constant column: one degenerate range
		} else {
			hi = hi + (hi-lo)*1e-9 // include the max in the last bin
		}
		l := &BinLayout{Dimension: dim, Numeric: true, Lo: lo, Hi: hi, Bins: bins}
		width := (hi - lo) / float64(bins)
		for i := 0; i < bins; i++ {
			l.Labels = append(l.Labels, fmt.Sprintf("[%.3g,%.3g)", lo+float64(i)*width, lo+float64(i+1)*width))
		}
		return l, nil
	default:
		return nil, fmt.Errorf("view: dimension %q has unsupported kind %s", dim, col.Def.Kind)
	}
}

// ComputeLayoutEqualDepth builds an equal-depth (quantile) layout for a
// numeric dimension: bin boundaries are chosen so that the reference data
// spreads as evenly as possible across bins, which keeps heavily skewed
// dimensions readable where equal-width binning would dump everything
// into one bar. Duplicate quantile boundaries collapse, so the layout may
// end up with fewer bins than requested.
func ComputeLayoutEqualDepth(ref *dataset.Table, dim string, bins int) (*BinLayout, error) {
	col := ref.Column(dim)
	if col == nil {
		return nil, fmt.Errorf("view: table %q has no column %q", ref.Name, dim)
	}
	if col.Def.Kind != dataset.KindInt && col.Def.Kind != dataset.KindFloat {
		return nil, fmt.Errorf("view: equal-depth binning needs a numeric dimension, %q is %s", dim, col.Def.Kind)
	}
	if bins <= 0 {
		return nil, fmt.Errorf("view: equal-depth binning needs a positive bin count")
	}
	vals := make([]float64, 0, ref.NumRows())
	for r := 0; r < ref.NumRows(); r++ {
		if v, ok := col.Float(r); ok {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("view: dimension %q has no numeric values", dim)
	}
	sort.Float64s(vals)
	// Interior quantile boundaries, deduplicated.
	edges := []float64{vals[0]}
	for i := 1; i < bins; i++ {
		q := vals[i*len(vals)/bins]
		if q > edges[len(edges)-1] {
			edges = append(edges, q)
		}
	}
	top := vals[len(vals)-1]
	if top <= edges[len(edges)-1] {
		top = edges[len(edges)-1] + 1
	} else {
		top += (top - vals[0]) * 1e-9 // include the max in the last bin
	}
	edges = append(edges, top)
	l := &BinLayout{Dimension: dim, Numeric: true, Lo: edges[0], Hi: top, Bins: len(edges) - 1, edges: edges}
	for i := 0; i+1 < len(edges); i++ {
		l.Labels = append(l.Labels, fmt.Sprintf("[%.3g,%.3g)", edges[i], edges[i+1]))
	}
	return l, nil
}

// NumBins returns the layout's bin count.
func (l *BinLayout) NumBins() int { return len(l.Labels) }

// BinOf maps one cell to its bin index, or -1 for NULLs and values outside
// the layout (e.g. a categorical value present in DQ but absent from DR —
// impossible when DQ ⊆ DR, but guarded anyway).
func (l *BinLayout) BinOf(col *dataset.Column, row int) int {
	if col.IsNull(row) {
		return -1
	}
	if !l.Numeric {
		if i, ok := l.index[col.GroupKey(row)]; ok {
			return i
		}
		return -1
	}
	f, ok := col.Float(row)
	if !ok {
		return -1
	}
	if f < l.Lo || f >= l.Hi {
		if f == l.Hi { // degenerate constant-column layout
			return l.Bins - 1
		}
		return -1
	}
	if l.edges != nil {
		// Equal-depth: binary search the boundary list.
		i := sort.SearchFloat64s(l.edges, f)
		// SearchFloat64s returns the first edge ≥ f; bin i covers
		// [edges[i], edges[i+1]), so an exact boundary hit belongs to the
		// bin starting there.
		if i < len(l.edges) && l.edges[i] == f {
			if i == len(l.edges)-1 {
				return l.Bins - 1
			}
			return i
		}
		return i - 1
	}
	i := int((f - l.Lo) / (l.Hi - l.Lo) * float64(l.Bins))
	if i >= l.Bins {
		i = l.Bins - 1
	}
	return i
}

// Stats holds one scan's worth of group statistics for a (dimension,
// bins) layout: for every bin and every measure, the count, sum, sum of
// squares, min and max of the measure. One Stats answers every (m, f)
// view on that dimension, which is how the generator amortises scans.
type Stats struct {
	Layout   *BinLayout
	Measures []string
	// All indexed [bin][measure].
	Counts [][]float64
	Sums   [][]float64
	SumSqs [][]float64
	Mins   [][]float64
	Maxs   [][]float64
}

// BinIndex materialises the bin of every row of a table under a layout —
// a dictionary-encoded dimension column. Scans that reuse it avoid the
// per-row map lookup that otherwise dominates categorical grouping.
// Entries are -1 for NULLs and out-of-layout values.
func BinIndex(t *dataset.Table, layout *BinLayout) ([]int32, error) {
	dimCol := t.Column(layout.Dimension)
	if dimCol == nil {
		return nil, fmt.Errorf("view: table %q has no column %q", t.Name, layout.Dimension)
	}
	bins := make([]int32, t.NumRows())
	for r := range bins {
		bins[r] = int32(layout.BinOf(dimCol, r))
	}
	return bins, nil
}

// CollectStats scans the table (restricted to rows, or all rows when rows
// is nil) and accumulates per-bin statistics for every measure.
func CollectStats(t *dataset.Table, layout *BinLayout, measures []string, rows []int) (*Stats, error) {
	return collectStats(t, layout, measures, rows, nil)
}

// CollectStatsIndexed is CollectStats over all rows using a precomputed
// bin index (from BinIndex), skipping the per-row bin lookup.
func CollectStatsIndexed(t *dataset.Table, layout *BinLayout, measures []string, bins []int32) (*Stats, error) {
	if len(bins) != t.NumRows() {
		return nil, fmt.Errorf("view: bin index has %d entries for %d rows", len(bins), t.NumRows())
	}
	return collectStats(t, layout, measures, nil, bins)
}

func collectStats(t *dataset.Table, layout *BinLayout, measures []string, rows []int, bins []int32) (*Stats, error) {
	dimCol := t.Column(layout.Dimension)
	if dimCol == nil {
		return nil, fmt.Errorf("view: table %q has no column %q", t.Name, layout.Dimension)
	}
	mCols := make([]*dataset.Column, len(measures))
	for i, m := range measures {
		mCols[i] = t.Column(m)
		if mCols[i] == nil {
			return nil, fmt.Errorf("view: table %q has no measure %q", t.Name, m)
		}
	}
	nb := layout.NumBins()
	s := &Stats{Layout: layout, Measures: measures}
	alloc := func() [][]float64 {
		out := make([][]float64, nb)
		for i := range out {
			out[i] = make([]float64, len(measures))
		}
		return out
	}
	s.Counts, s.Sums, s.SumSqs = alloc(), alloc(), alloc()
	s.Mins, s.Maxs = alloc(), alloc()
	for b := 0; b < nb; b++ {
		for m := range measures {
			s.Mins[b][m] = math.Inf(1)
			s.Maxs[b][m] = math.Inf(-1)
		}
	}
	accumulate := func(r, b int) {
		for m, col := range mCols {
			v, ok := col.Float(r)
			if !ok {
				continue
			}
			s.Counts[b][m]++
			s.Sums[b][m] += v
			s.SumSqs[b][m] += v * v
			if v < s.Mins[b][m] {
				s.Mins[b][m] = v
			}
			if v > s.Maxs[b][m] {
				s.Maxs[b][m] = v
			}
		}
	}
	switch {
	case bins != nil:
		for r, b := range bins {
			if b >= 0 {
				accumulate(r, int(b))
			}
		}
	case rows == nil:
		for r := 0; r < t.NumRows(); r++ {
			if b := layout.BinOf(dimCol, r); b >= 0 {
				accumulate(r, b)
			}
		}
	default:
		for _, r := range rows {
			if b := layout.BinOf(dimCol, r); b >= 0 {
				accumulate(r, b)
			}
		}
	}
	return s, nil
}

// Histogram extracts the (measure, agg) view from collected statistics.
func (s *Stats) Histogram(measure, agg string) (*Histogram, error) {
	mi := -1
	for i, m := range s.Measures {
		if m == measure {
			mi = i
			break
		}
	}
	if mi < 0 {
		return nil, fmt.Errorf("view: stats have no measure %q", measure)
	}
	nb := s.Layout.NumBins()
	h := &Histogram{
		Labels: s.Layout.Labels,
		Values: make([]float64, nb),
		Counts: make([]float64, nb),
		Sums:   make([]float64, nb),
		SumSqs: make([]float64, nb),
	}
	for b := 0; b < nb; b++ {
		c := s.Counts[b][mi]
		h.Counts[b] = c
		h.Sums[b] = s.Sums[b][mi]
		h.SumSqs[b] = s.SumSqs[b][mi]
		if c == 0 {
			continue // empty bin: bar height 0 for every aggregate
		}
		switch agg {
		case "COUNT":
			h.Values[b] = c
		case "SUM":
			h.Values[b] = s.Sums[b][mi]
		case "AVG":
			h.Values[b] = s.Sums[b][mi] / c
		case "MIN":
			h.Values[b] = s.Mins[b][mi]
		case "MAX":
			h.Values[b] = s.Maxs[b][mi]
		default:
			return nil, fmt.Errorf("view: unknown aggregate %q", agg)
		}
	}
	return h, nil
}
