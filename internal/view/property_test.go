package view

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"viewseeker/internal/dataset"
)

// randomTable builds a table with one categorical and one numeric
// dimension and two measures, with some NULLs sprinkled in.
func randomTable(rng *rand.Rand, rows int) *dataset.Table {
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "cat", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "num", Kind: dataset.KindFloat, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m1", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "m2", Kind: dataset.KindInt, Role: dataset.RoleMeasure},
	)
	t := dataset.NewTable("rt", schema)
	for i := 0; i < rows; i++ {
		m1 := dataset.Float(rng.NormFloat64() * 5)
		if rng.Intn(10) == 0 {
			m1 = dataset.Null
		}
		t.MustAppendRow(
			dataset.StringVal(string(rune('a'+rng.Intn(4)))),
			dataset.Float(rng.Float64()*100),
			m1,
			dataset.Int(int64(rng.Intn(50))),
		)
	}
	return t
}

// TestBinIndexMatchesBinOf checks the dictionary-encoded bins agree with
// the per-row lookup for both layout kinds.
func TestBinIndexMatchesBinOf(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, 200)
		for _, spec := range []struct {
			dim  string
			bins int
		}{{"cat", 0}, {"num", 4}} {
			layout, err := ComputeLayout(tab, spec.dim, spec.bins)
			if err != nil {
				t.Fatal(err)
			}
			bins, err := BinIndex(tab, layout)
			if err != nil {
				t.Fatal(err)
			}
			col := tab.Column(spec.dim)
			for r := 0; r < tab.NumRows(); r++ {
				if int(bins[r]) != layout.BinOf(col, r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCollectStatsIndexedEquivalence checks the indexed scan produces
// exactly the statistics of the plain scan.
func TestCollectStatsIndexedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := randomTable(rng, 500)
	layout, err := ComputeLayout(tab, "cat", 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := CollectStats(tab, layout, []string{"m1", "m2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bins, err := BinIndex(tab, layout)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := CollectStatsIndexed(tab, layout, []string{"m1", "m2"}, bins)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < layout.NumBins(); b++ {
		for m := 0; m < 2; m++ {
			if plain.Counts[b][m] != indexed.Counts[b][m] ||
				plain.Sums[b][m] != indexed.Sums[b][m] ||
				plain.SumSqs[b][m] != indexed.SumSqs[b][m] ||
				plain.Mins[b][m] != indexed.Mins[b][m] ||
				plain.Maxs[b][m] != indexed.Maxs[b][m] {
				t.Fatalf("stats differ at bin %d measure %d", b, m)
			}
		}
	}
	if _, err := CollectStatsIndexed(tab, layout, []string{"m1"}, bins[:10]); err == nil {
		t.Error("short bin index should fail")
	}
}

// TestStatsAdditivity: stats over two disjoint row subsets must sum to
// stats over their union (counts/sums/sumsqs; min/max combine as min/max).
func TestStatsAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, 300)
		layout, err := ComputeLayout(tab, "cat", 0)
		if err != nil {
			t.Fatal(err)
		}
		var a, bRows []int
		for i := 0; i < tab.NumRows(); i++ {
			if i%2 == 0 {
				a = append(a, i)
			} else {
				bRows = append(bRows, i)
			}
		}
		sa, err := CollectStats(tab, layout, []string{"m1"}, a)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := CollectStats(tab, layout, []string{"m1"}, bRows)
		if err != nil {
			t.Fatal(err)
		}
		all, err := CollectStats(tab, layout, []string{"m1"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for bin := 0; bin < layout.NumBins(); bin++ {
			if sa.Counts[bin][0]+sb.Counts[bin][0] != all.Counts[bin][0] {
				return false
			}
			if math.Abs(sa.Sums[bin][0]+sb.Sums[bin][0]-all.Sums[bin][0]) > 1e-9 {
				return false
			}
			if math.Abs(sa.SumSqs[bin][0]+sb.SumSqs[bin][0]-all.SumSqs[bin][0]) > 1e-9 {
				return false
			}
			if all.Counts[bin][0] > 0 {
				if math.Min(sa.Mins[bin][0], sb.Mins[bin][0]) != all.Mins[bin][0] {
					return false
				}
				if math.Max(sa.Maxs[bin][0], sb.Maxs[bin][0]) != all.Maxs[bin][0] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestDistributionSumsToOne: every histogram's distribution is a proper
// probability distribution.
func TestDistributionSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, 150)
		layout, err := ComputeLayout(tab, "num", 3)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := CollectStats(tab, layout, []string{"m1", "m2"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, agg := range Aggregates {
			h, err := stats.Histogram("m2", agg)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for _, p := range h.Distribution() {
				if p < 0 {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPairFocusedMatchesPair: the narrow refresh path must produce
// exactly the same pair as the all-measures path.
func TestPairFocusedMatchesPair(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ref := randomTable(rng, 400)
	var rows []int
	for i := 0; i < 400; i += 3 {
		rows = append(rows, i)
	}
	tgt := ref.Subset("tgt", rows)

	mk := func() *Generator {
		g, err := NewGenerator(ref, tgt, SpaceConfig{BinCounts: []int{4}})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	gFull, gFocused := mk(), mk()
	for _, spec := range gFull.Specs() {
		pf, err := gFull.Pair(spec)
		if err != nil {
			t.Fatal(err)
		}
		pn, err := gFocused.PairFocused(spec)
		if err != nil {
			t.Fatal(err)
		}
		for b := range pf.Target.Values {
			if pf.Target.Values[b] != pn.Target.Values[b] ||
				pf.Reference.Values[b] != pn.Reference.Values[b] ||
				pf.Target.SumSqs[b] != pn.Target.SumSqs[b] {
				t.Fatalf("focused pair differs for %s at bin %d", spec, b)
			}
		}
	}
}

// TestPairFocusedOutsideSpace rejects unknown specs.
func TestPairFocusedOutsideSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ref := randomTable(rng, 50)
	tgt := ref.Subset("tgt", []int{0, 1, 2})
	g, err := NewGenerator(ref, tgt, SpaceConfig{BinCounts: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.PairFocused(Spec{Dimension: "cat", Measure: "m1", Agg: "SUM", Bins: 77}); err == nil {
		t.Error("expected out-of-space error")
	}
}
