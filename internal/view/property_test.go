package view

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"viewseeker/internal/dataset"
)

// randomTable builds a table with one categorical and one numeric
// dimension and two measures, with some NULLs sprinkled in.
func randomTable(rng *rand.Rand, rows int) *dataset.Table {
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "cat", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "num", Kind: dataset.KindFloat, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m1", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "m2", Kind: dataset.KindInt, Role: dataset.RoleMeasure},
	)
	t := dataset.NewTable("rt", schema)
	for i := 0; i < rows; i++ {
		m1 := dataset.Float(rng.NormFloat64() * 5)
		if rng.Intn(10) == 0 {
			m1 = dataset.Null
		}
		t.MustAppendRow(
			dataset.StringVal(string(rune('a'+rng.Intn(4)))),
			dataset.Float(rng.Float64()*100),
			m1,
			dataset.Int(int64(rng.Intn(50))),
		)
	}
	return t
}

// TestBinIndexMatchesBinOf checks the dictionary-encoded bins agree with
// the per-row lookup for both layout kinds.
func TestBinIndexMatchesBinOf(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, 200)
		for _, spec := range []struct {
			dim  string
			bins int
		}{{"cat", 0}, {"num", 4}} {
			layout, err := ComputeLayout(tab, spec.dim, spec.bins)
			if err != nil {
				t.Fatal(err)
			}
			bins, err := BinIndex(tab, layout)
			if err != nil {
				t.Fatal(err)
			}
			col := tab.Column(spec.dim)
			for r := 0; r < tab.NumRows(); r++ {
				if int(bins[r]) != layout.BinOf(col, r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCollectStatsIndexedEquivalence checks the indexed scan produces
// exactly the statistics of the plain scan.
func TestCollectStatsIndexedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := randomTable(rng, 500)
	layout, err := ComputeLayout(tab, "cat", 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := CollectStats(tab, layout, []string{"m1", "m2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bins, err := BinIndex(tab, layout)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := CollectStatsIndexed(tab, layout, []string{"m1", "m2"}, bins)
	if err != nil {
		t.Fatal(err)
	}
	if err := statsEqual(plain, indexed); err != nil {
		t.Fatal(err)
	}
	if _, err := CollectStatsIndexed(tab, layout, []string{"m1"}, bins[:10]); err == nil {
		t.Error("short bin index should fail")
	}
}

// TestStatsAdditivity: stats over two disjoint row subsets must sum to
// stats over their union (counts/sums/sumsqs; min/max combine as min/max).
func TestStatsAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, 300)
		layout, err := ComputeLayout(tab, "cat", 0)
		if err != nil {
			t.Fatal(err)
		}
		var a, bRows []int
		for i := 0; i < tab.NumRows(); i++ {
			if i%2 == 0 {
				a = append(a, i)
			} else {
				bRows = append(bRows, i)
			}
		}
		sa, err := CollectStats(tab, layout, []string{"m1"}, a)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := CollectStats(tab, layout, []string{"m1"}, bRows)
		if err != nil {
			t.Fatal(err)
		}
		all, err := CollectStats(tab, layout, []string{"m1"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for bin := 0; bin < layout.NumBins(); bin++ {
			i := all.Index(0, bin)
			if sa.Counts[i]+sb.Counts[i] != all.Counts[i] {
				return false
			}
			if math.Abs(sa.Sums[i]+sb.Sums[i]-all.Sums[i]) > 1e-9 {
				return false
			}
			if math.Abs(sa.SumSqs[i]+sb.SumSqs[i]-all.SumSqs[i]) > 1e-9 {
				return false
			}
			if all.Counts[i] > 0 {
				if math.Min(sa.Mins[i], sb.Mins[i]) != all.Mins[i] {
					return false
				}
				if math.Max(sa.Maxs[i], sb.Maxs[i]) != all.Maxs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestDistributionSumsToOne: every histogram's distribution is a proper
// probability distribution.
func TestDistributionSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, 150)
		layout, err := ComputeLayout(tab, "num", 3)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := CollectStats(tab, layout, []string{"m1", "m2"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, agg := range Aggregates {
			h, err := stats.Histogram("m2", agg)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for _, p := range h.Distribution() {
				if p < 0 {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPairFocusedMatchesPair: the narrow refresh path must produce
// exactly the same pair as the all-measures path.
func TestPairFocusedMatchesPair(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ref := randomTable(rng, 400)
	var rows []int
	for i := 0; i < 400; i += 3 {
		rows = append(rows, i)
	}
	tgt := ref.Subset("tgt", rows)

	mk := func() *Generator {
		g, err := NewGenerator(ref, tgt, SpaceConfig{BinCounts: []int{4}})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	gFull, gFocused := mk(), mk()
	for _, spec := range gFull.Specs() {
		pf, err := gFull.Pair(spec)
		if err != nil {
			t.Fatal(err)
		}
		pn, err := gFocused.PairFocused(spec)
		if err != nil {
			t.Fatal(err)
		}
		for b := range pf.Target.Values {
			if pf.Target.Values[b] != pn.Target.Values[b] ||
				pf.Reference.Values[b] != pn.Reference.Values[b] ||
				pf.Target.SumSqs[b] != pn.Target.SumSqs[b] {
				t.Fatalf("focused pair differs for %s at bin %d", spec, b)
			}
		}
	}
}

// statsEqual reports whether two Stats over the same layout and measure
// set are bit-identical.
func statsEqual(a, b *Stats) error {
	if len(a.Counts) != len(b.Counts) {
		return fmt.Errorf("stats sized %d vs %d", len(a.Counts), len(b.Counts))
	}
	for m := range a.Measures {
		for bin := 0; bin < a.Layout.NumBins(); bin++ {
			i := a.Index(m, bin)
			if a.Counts[i] != b.Counts[i] || a.Sums[i] != b.Sums[i] ||
				a.SumSqs[i] != b.SumSqs[i] || a.Mins[i] != b.Mins[i] ||
				a.Maxs[i] != b.Maxs[i] {
				return fmt.Errorf("stats differ at measure %q bin %d", a.Measures[m], bin)
			}
		}
	}
	return nil
}

// kernelTable builds a table that exercises every kernel path: string,
// bool, float and int dimensions (with NULLs), a constant numeric
// dimension (degenerate layout), and float/int/bool measures including a
// constant one — with NULLs sprinkled across dimension and measure cells.
func kernelTable(rng *rand.Rand, rows int) *dataset.Table {
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "cat", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "flag", Kind: dataset.KindBool, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "num", Kind: dataset.KindFloat, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "numint", Kind: dataset.KindInt, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "constd", Kind: dataset.KindFloat, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m1", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "m2", Kind: dataset.KindInt, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "mconst", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "mbool", Kind: dataset.KindBool, Role: dataset.RoleMeasure},
	)
	t := dataset.NewTable("kt", schema)
	maybeNull := func(v dataset.Value) dataset.Value {
		if rng.Intn(8) == 0 {
			return dataset.Null
		}
		return v
	}
	// Labels sharing a first byte, plus an empty string, force the
	// categorical kernel off its first-byte fast path.
	cats := []string{"apple", "avocado", "banana", "cherry", ""}
	for i := 0; i < rows; i++ {
		t.MustAppendRow(
			maybeNull(dataset.StringVal(cats[rng.Intn(len(cats))])),
			maybeNull(dataset.Bool(rng.Intn(2) == 0)),
			maybeNull(dataset.Float(rng.NormFloat64()*10)),
			maybeNull(dataset.Int(int64(rng.Intn(30)))),
			dataset.Float(7.5),
			maybeNull(dataset.Float(rng.NormFloat64()*5)),
			maybeNull(dataset.Int(int64(rng.Intn(50)))),
			dataset.Float(3),
			maybeNull(dataset.Bool(rng.Intn(2) == 0)),
		)
	}
	return t
}

// kernelLayouts builds one layout per dimension kind over the reference
// table, including an equal-depth layout.
func kernelLayouts(t *testing.T, tab *dataset.Table) []*BinLayout {
	t.Helper()
	var out []*BinLayout
	for _, spec := range []struct {
		dim  string
		bins int
	}{{"cat", 0}, {"flag", 0}, {"num", 3}, {"numint", 4}, {"constd", 3}} {
		l, err := ComputeLayout(tab, spec.dim, spec.bins)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, l)
	}
	depth, err := ComputeLayoutEqualDepth(tab, "num", 4)
	if err != nil {
		t.Fatal(err)
	}
	return append(out, depth)
}

// TestFlatKernelMatchesReference is the kernel property test: over
// randomized tables (NULLs, constant columns, bool/int/float/string
// dimensions, equal-depth layouts) every columnar scan shape — full,
// indexed, sampled-indexed, row-subset fallback — must produce Stats and
// Histograms bit-identical to the retained row-at-a-time reference
// implementation, including on a subset table with empty bins.
func TestFlatKernelMatchesReference(t *testing.T) {
	measures := []string{"m1", "m2", "mconst", "mbool"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := kernelTable(rng, 150+rng.Intn(150))
		// A sparse subset misses categories, so its stats have empty bins.
		var sel []int
		for i := 0; i < tab.NumRows(); i += 5 {
			sel = append(sel, i)
		}
		sub := tab.Subset("sub", sel)
		for _, layout := range kernelLayouts(t, tab) {
			for _, scanned := range []*dataset.Table{tab, sub} {
				bins, err := BinIndex(scanned, layout)
				if err != nil {
					t.Fatal(err)
				}
				// The bin-index kernel must agree with per-row BinOf.
				dimCol := scanned.Column(layout.Dimension)
				for r := 0; r < scanned.NumRows(); r++ {
					if int(bins[r]) != layout.BinOf(dimCol, r) {
						t.Fatalf("dim %q row %d: bin index %d != BinOf %d",
							layout.Dimension, r, bins[r], layout.BinOf(dimCol, r))
					}
				}
				want, err := CollectStatsReference(scanned, layout, measures, nil)
				if err != nil {
					t.Fatal(err)
				}
				full, err := CollectStats(scanned, layout, measures, nil)
				if err != nil {
					t.Fatal(err)
				}
				indexed, err := CollectStatsIndexed(scanned, layout, measures, bins)
				if err != nil {
					t.Fatal(err)
				}
				for name, got := range map[string]*Stats{"full": full, "indexed": indexed} {
					if err := statsEqual(want, got); err != nil {
						t.Fatalf("dim %q %s kernel: %v", layout.Dimension, name, err)
					}
				}
				for _, agg := range Aggregates {
					for _, m := range measures {
						hw, err := want.Histogram(m, agg)
						if err != nil {
							t.Fatal(err)
						}
						hg, err := indexed.Histogram(m, agg)
						if err != nil {
							t.Fatal(err)
						}
						for b := range hw.Values {
							if hw.Values[b] != hg.Values[b] || hw.Counts[b] != hg.Counts[b] ||
								hw.Sums[b] != hg.Sums[b] || hw.SumSqs[b] != hg.SumSqs[b] {
								t.Fatalf("dim %q %s(%s) bin %d differs", layout.Dimension, agg, m, b)
							}
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestSampledIndexedMatchesDirect checks the α-pass gather (sampled scan
// through the cached full-table bin index) against both the direct
// row-subset scan and the reference implementation.
func TestSampledIndexedMatchesDirect(t *testing.T) {
	measures := []string{"m1", "m2", "mconst", "mbool"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := kernelTable(rng, 200+rng.Intn(100))
		rows := tab.SampleRows(0.1 + rng.Float64()*0.5)
		for _, layout := range kernelLayouts(t, tab) {
			bins, err := BinIndex(tab, layout)
			if err != nil {
				t.Fatal(err)
			}
			gathered, err := CollectStatsSampled(tab, layout, measures, rows, bins)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := CollectStats(tab, layout, measures, rows)
			if err != nil {
				t.Fatal(err)
			}
			want, err := CollectStatsReference(tab, layout, measures, rows)
			if err != nil {
				t.Fatal(err)
			}
			if err := statsEqual(want, gathered); err != nil {
				t.Fatalf("dim %q sampled-indexed: %v", layout.Dimension, err)
			}
			if err := statsEqual(want, direct); err != nil {
				t.Fatalf("dim %q sampled-direct: %v", layout.Dimension, err)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
	// A short bin index is rejected.
	rng := rand.New(rand.NewSource(1))
	tab := kernelTable(rng, 100)
	layout, err := ComputeLayout(tab, "cat", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CollectStatsSampled(tab, layout, measures, []int{0}, make([]int32, 10)); err == nil {
		t.Error("short bin index should fail")
	}
}

// TestPairFocusedOutsideSpace rejects unknown specs.
func TestPairFocusedOutsideSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ref := randomTable(rng, 50)
	tgt := ref.Subset("tgt", []int{0, 1, 2})
	g, err := NewGenerator(ref, tgt, SpaceConfig{BinCounts: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.PairFocused(Spec{Dimension: "cat", Measure: "m1", Agg: "SUM", Bins: 77}); err == nil {
		t.Error("expected out-of-space error")
	}
}
