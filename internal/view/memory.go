package view

// This file is the view layer's contribution to the per-session memory
// accounting behind the server's eviction budget (DESIGN.md §16). The
// numbers are estimates of the dominant allocations — flat stat banks,
// bin indexes, layout label tables — not a heap census; fixed struct
// overhead is covered by the session-level constant.

// readyEach calls fn for every completed, successful entry without
// blocking on in-flight computations — the non-blocking walk the memory
// accounting needs (a scan mid-flight is simply not counted yet).
func (c *lazyCache[K, V]) readyEach(fn func(V)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				fn(e.val)
			}
		default:
		}
	}
}

// MemoryBytes estimates the resident heap bytes of the layout: labels,
// equal-depth edges, and the categorical group-key index.
func (l *BinLayout) MemoryBytes() int64 {
	b := int64(cap(l.Labels)) * 16
	for _, s := range l.Labels {
		b += int64(len(s))
	}
	b += int64(cap(l.edges)) * 8
	// Map buckets amortise to roughly 48 bytes per categorical entry on
	// top of the key string contents (already counted under Labels, which
	// mirror the keys).
	b += int64(len(l.index)) * 48
	return b
}

// MemoryBytes estimates the resident heap bytes of the flat accumulator
// banks (five float64 banks plus per-measure shifts).
func (s *Stats) MemoryBytes() int64 {
	return int64(len(s.Counts))*5*8 + int64(len(s.Shifts))*8
}

// MemoryBytes estimates the resident heap bytes of the generator's own
// state: bin layouts plus every scan cache filled so far (full and
// focused stats, per-dimension bin-index bundles). The reference and
// target tables are deliberately excluded — the reference is shared
// across sessions and the target is accounted by the session owner. The
// estimate grows as the lazy caches fill, so accounting after a feedback
// round sees the scans that round materialised. Safe for concurrent use
// with scans; an in-flight scan is counted once it completes.
func (g *Generator) MemoryBytes() int64 {
	var b int64
	for _, l := range g.layouts {
		b += l.MemoryBytes()
	}
	addStats := func(s *Stats) { b += s.MemoryBytes() }
	g.refStats.readyEach(addStats)
	g.tgtStats.readyEach(addStats)
	g.refFocused.readyEach(addStats)
	g.tgtFocused.readyEach(addStats)
	addBins := func(bundle [][]int32) {
		for _, idx := range bundle {
			b += int64(cap(idx)) * 4
		}
	}
	g.refBins.readyEach(addBins)
	g.tgtBins.readyEach(addBins)
	return b
}
