package view

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viewseeker/internal/dataset"
)

// splitKernelTable generates one kernel-path-covering table and splits it
// into a base prefix plus the suffix as append batches: the appended table
// is content-identical to the full one, so full-table scans of it are the
// rebuild-from-scratch oracle for the extend kernels.
func splitKernelTable(t *testing.T, rng *rand.Rand) (base, appended, full *dataset.Table, from int) {
	t.Helper()
	n := 150 + rng.Intn(150)
	from = 50 + rng.Intn(n-100)
	full = kernelTable(rng, n)
	idx := make([]int, from)
	for i := range idx {
		idx[i] = i
	}
	base = full.Subset(full.Name, idx)
	rows := make([][]dataset.Value, 0, n-from)
	for r := from; r < n; r++ {
		rows = append(rows, full.Row(r))
	}
	appended, err := base.WithAppended(rows)
	if err != nil {
		t.Fatal(err)
	}
	return base, appended, full, from
}

// TestExtendMatchesRebuild is the IVM property test: over randomised
// tables and split points, append-then-extend must equal rebuild-from-
// scratch bit for bit — bin indexes entry-for-entry, Stats across every
// accumulator array — with CollectStatsReference over the post-append
// table as the oracle. Layouts are pinned to the base prefix, so appended
// values outside them (range escapes, new categoricals) exercise the
// bin -1 drop path on both sides.
func TestExtendMatchesRebuild(t *testing.T) {
	measures := []string{"m1", "m2", "mconst", "mbool"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base, appended, _, from := splitKernelTable(t, rng)
		for _, layout := range kernelLayouts(t, base) {
			oldBins, err := BinIndex(base, layout)
			if err != nil {
				t.Fatal(err)
			}
			ext, _, err := ExtendBinIndexAll(appended, []*BinLayout{layout}, [][]int32{oldBins}, from)
			if err != nil {
				t.Fatal(err)
			}
			fullBins, err := BinIndex(appended, layout)
			if err != nil {
				t.Fatal(err)
			}
			for r, want := range fullBins {
				if ext[0][r] != want {
					t.Fatalf("dim %q row %d: extended bin %d != rebuilt %d",
						layout.Dimension, r, ext[0][r], want)
				}
			}

			oldStats, err := CollectStatsIndexed(base, layout, measures, oldBins)
			if err != nil {
				t.Fatal(err)
			}
			extStats, _, ok, err := ExtendStats(appended, oldStats, ext[0], from)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("dim %q: shift drift on a base with non-null measures", layout.Dimension)
			}
			rebuilt, err := CollectStatsIndexed(appended, layout, measures, fullBins)
			if err != nil {
				t.Fatal(err)
			}
			if err := statsEqual(extStats, rebuilt); err != nil {
				t.Fatalf("dim %q: extend vs rebuild: %v", layout.Dimension, err)
			}
			oracle, err := CollectStatsReference(appended, layout, measures, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := statsEqual(extStats, oracle); err != nil {
				t.Fatalf("dim %q: extend vs reference oracle: %v", layout.Dimension, err)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestExtendStatsShiftDrift: a measure that is all-null in the base gets
// its variance shift from the first appended non-null, which re-anchors
// SumSqs — ExtendStats must refuse so the caller rebuilds.
func TestExtendStatsShiftDrift(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "cat", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	base := dataset.NewTable("t", schema)
	base.MustAppendRow(dataset.StringVal("a"), dataset.Null)
	base.MustAppendRow(dataset.StringVal("b"), dataset.Null)
	layout, err := ComputeLayout(base, "cat", 0)
	if err != nil {
		t.Fatal(err)
	}
	oldBins, err := BinIndex(base, layout)
	if err != nil {
		t.Fatal(err)
	}
	oldStats, err := CollectStatsIndexed(base, layout, []string{"m"}, oldBins)
	if err != nil {
		t.Fatal(err)
	}
	appended, err := base.WithAppended([][]dataset.Value{{dataset.StringVal("a"), dataset.Float(5)}})
	if err != nil {
		t.Fatal(err)
	}
	ext, _, err := ExtendBinIndexAll(appended, []*BinLayout{layout}, [][]int32{oldBins}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := ExtendStats(appended, oldStats, ext[0], 2); err != nil || ok {
		t.Fatalf("shift drift not detected: ok=%v err=%v", ok, err)
	}
	// An all-null append over the all-null base keeps shift 0: extendable.
	appended2, err := base.WithAppended([][]dataset.Value{{dataset.StringVal("a"), dataset.Null}})
	if err != nil {
		t.Fatal(err)
	}
	ext2, _, err := ExtendBinIndexAll(appended2, []*BinLayout{layout}, [][]int32{oldBins}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := ExtendStats(appended2, oldStats, ext2[0], 2); err != nil || !ok {
		t.Fatalf("all-null extension refused: ok=%v err=%v", ok, err)
	}
}

// TestApplyAppendMatchesScratch: a delta-extended generator must serve
// every pair bit-identically to scanning the appended tables from scratch
// under the same pinned layouts — which an ApplyAppend of a cold generator
// conveniently is (no cached artifacts to extend, so everything recomputes
// over the new tables).
func TestApplyAppendMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base, appended, _, _ := splitKernelTable(t, rng)
	// Target: a filtered subset of the base, extended by the append's
	// matching rows — prefix-extension, like live query maintenance.
	filter := func(tab *dataset.Table) []int {
		col := tab.Column("m2")
		var sel []int
		for r := 0; r < tab.NumRows(); r++ {
			if v, ok := col.Float(r); ok && v >= 25 {
				sel = append(sel, r)
			}
		}
		return sel
	}
	baseTgt := base.Subset("dq", filter(base))
	newTgt := appended.Subset("dq", filter(appended))

	cfg := SpaceConfig{BinCounts: []int{3, 4}}
	warm, err := NewGenerator(base, baseTgt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Warm(2); err != nil {
		t.Fatal(err)
	}
	delta, err := warm.ApplyAppend(appended, newTgt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewGenerator(base, baseTgt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := cold.ApplyAppend(appended, newTgt)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range warm.Specs() {
		dp, err := delta.Pair(spec)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := scratch.Pair(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, hp := range []struct{ d, s *Histogram }{{dp.Target, sp.Target}, {dp.Reference, sp.Reference}} {
			if hp.d.Shift != hp.s.Shift {
				t.Fatalf("spec %v: shift %g != %g", spec, hp.d.Shift, hp.s.Shift)
			}
			for b := range hp.d.Values {
				if hp.d.Values[b] != hp.s.Values[b] || hp.d.Counts[b] != hp.s.Counts[b] ||
					hp.d.Sums[b] != hp.s.Sums[b] || hp.d.SumSqs[b] != hp.s.SumSqs[b] {
					t.Fatalf("spec %v bin %d: delta pair differs from scratch", spec, b)
				}
			}
		}
	}
}

// TestDriftTracking: appended values outside a pinned numeric layout are
// counted as drift (nulls are not), the counts accumulate across
// ApplyAppend generations, and a fresh generator starts at zero.
func TestDriftTracking(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "d", Kind: dataset.KindFloat, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	base := dataset.NewTable("t", schema)
	for i := 0; i < 10; i++ {
		base.MustAppendRow(dataset.Float(float64(i)), dataset.Float(1))
	}
	layout, err := ComputeLayout(base, "d", 5) // pinned to [0, 9]
	if err != nil {
		t.Fatal(err)
	}
	oldBins, err := BinIndex(base, layout)
	if err != nil {
		t.Fatal(err)
	}
	// 2 in range, 2 out of range, 1 null: drift is 2/4.
	rows := [][]dataset.Value{
		{dataset.Float(1), dataset.Float(1)},
		{dataset.Float(100), dataset.Float(1)},
		{dataset.Float(-5), dataset.Float(1)},
		{dataset.Null, dataset.Float(1)},
		{dataset.Float(3), dataset.Float(1)},
	}
	appended, err := base.WithAppended(rows)
	if err != nil {
		t.Fatal(err)
	}
	_, drift, err := ExtendBinIndexAll(appended, []*BinLayout{layout}, [][]int32{oldBins}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if drift[0].Appended != 4 || drift[0].OutOfRange != 2 {
		t.Fatalf("drift = %+v, want {Appended:4 OutOfRange:2}", drift[0])
	}
	if r := drift[0].Rate(); r != 0.5 {
		t.Fatalf("rate = %g, want 0.5", r)
	}

	// Generator-level accumulation across two generations. The target is a
	// distinct table (all rows) so the reference-side caches — where drift
	// is counted — are exercised as in real use.
	allRows := func(tab *dataset.Table) *dataset.Table {
		idx := make([]int, tab.NumRows())
		for i := range idx {
			idx[i] = i
		}
		return tab.Subset("dq", idx)
	}
	cfg := SpaceConfig{BinCounts: []int{5}}
	gen, err := NewGenerator(base, allRows(base), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Warm(1); err != nil {
		t.Fatal(err)
	}
	if got := gen.MaxDriftRate(); got != 0 {
		t.Fatalf("fresh generator drift = %g, want 0", got)
	}
	g2, err := gen.ApplyAppend(appended, allRows(appended))
	if err != nil {
		t.Fatal(err)
	}
	appended2, err := appended.WithAppended([][]dataset.Value{
		{dataset.Float(200), dataset.Float(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	g3, err := g2.ApplyAppend(appended2, allRows(appended2))
	if err != nil {
		t.Fatal(err)
	}
	ds := g3.DriftStats()
	found := false
	for _, ld := range ds {
		if ld.Dimension == "d" && ld.Bins == 5 {
			found = true
			if ld.Drift.Appended != 5 || ld.Drift.OutOfRange != 3 {
				t.Fatalf("cumulative drift = %+v, want {Appended:5 OutOfRange:3}", ld.Drift)
			}
		}
	}
	if !found {
		t.Fatalf("no drift entry for layout d/5 in %+v", ds)
	}
	if got, want := g3.MaxDriftRate(), 0.6; got != want {
		t.Fatalf("MaxDriftRate = %g, want %g", got, want)
	}
	// The parent generation's counts were not mutated by the child.
	if got := g2.MaxDriftRate(); got != 0.5 {
		t.Fatalf("parent MaxDriftRate = %g, want 0.5", got)
	}
}
