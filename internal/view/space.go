package view

import (
	"context"
	"fmt"
	"sort"

	"viewseeker/internal/dataset"
	"viewseeker/internal/obs"
	"viewseeker/internal/par"
)

// SpaceConfig controls view-space enumeration.
type SpaceConfig struct {
	// Aggs is the aggregate-function set; nil means the standard five.
	Aggs []string
	// BinCounts lists the bin configurations applied to numeric dimensions
	// (the SYN testbed uses {3, 4}); nil means {4}. Categorical dimensions
	// always get exactly one configuration (their distinct values).
	BinCounts []int
	// EqualDepth switches numeric dimensions from equal-width to
	// equal-depth (quantile) binning, computed on the reference data.
	EqualDepth bool
}

func (c SpaceConfig) aggs() []string {
	if len(c.Aggs) == 0 {
		return Aggregates
	}
	return c.Aggs
}

func (c SpaceConfig) binCounts() []int {
	if len(c.BinCounts) == 0 {
		return []int{4}
	}
	return c.BinCounts
}

// Normalized returns the config with its defaults made explicit, so two
// spellings of the same space (nil vs the literal default set) enumerate,
// compare and fingerprint identically.
func (c SpaceConfig) Normalized() SpaceConfig {
	return SpaceConfig{Aggs: c.aggs(), BinCounts: c.binCounts(), EqualDepth: c.EqualDepth}
}

// Enumerate lists every view spec over the table's dimension and measure
// attributes: |A| × |M| × |F| specs for categorical data, times the number
// of bin configurations for numeric dimensions (Eq. 1; the paper's factor
// 2 counts the target/reference pair that every spec implies).
func Enumerate(t *dataset.Table, cfg SpaceConfig) ([]Spec, error) {
	dims := t.Schema.Dimensions()
	measures := t.Schema.Measures()
	if len(dims) == 0 || len(measures) == 0 {
		return nil, fmt.Errorf("view: table %q needs at least one dimension and one measure (have %d, %d)",
			t.Name, len(dims), len(measures))
	}
	var specs []Spec
	for _, d := range dims {
		def, _ := t.Schema.Def(d)
		numeric := def.Kind == dataset.KindInt || def.Kind == dataset.KindFloat
		binConfigs := []int{0}
		if numeric {
			binConfigs = cfg.binCounts()
		}
		for _, bins := range binConfigs {
			for _, m := range measures {
				for _, f := range cfg.aggs() {
					specs = append(specs, Spec{Dimension: d, Measure: m, Agg: f, Bins: bins})
				}
			}
		}
	}
	return specs, nil
}

// Generator executes view pairs over a reference table DR and a target
// subset DQ, amortising one scan per (dimension, bins) layout across all
// (measure, aggregate) combinations.
//
// All methods are safe for concurrent use: the lazy scan caches are
// single-flight (see lazyCache), so a whole-space feature pass can fan out
// over goroutines, and request-path refinement (PairFocused) can run
// concurrently with anything else touching the generator, without
// duplicating scans.
type Generator struct {
	Ref    *dataset.Table
	Target *dataset.Table
	cfg    SpaceConfig

	specs   []Spec
	layouts map[layoutKey]*BinLayout // immutable after construction
	// dimLayouts orders each dimension's layout keys (ascending bin
	// count); its index positions address the per-dimension bin-index
	// bundles below. Immutable after construction.
	dimLayouts map[string][]layoutKey

	refStats lazyCache[layoutKey, *Stats] // full-data reference stats cache
	tgtStats lazyCache[layoutKey, *Stats] // full-data target stats cache
	// Focused (single-measure) full-data stats, used by incremental
	// refresh so that upgrading one view costs one narrow scan instead of
	// an all-measures layout scan.
	refFocused lazyCache[measureKey, *Stats]
	tgtFocused lazyCache[measureKey, *Stats]
	// Lazily built dictionary-encoded dimension columns (row → bin),
	// keyed by dimension: one single-flight entry materialises the bin
	// indexes of every bin configuration of that dimension in one shared
	// pass (BinIndexAll), so warm-up, focused refresh and the SQL offline
	// path never re-read a dimension column per configuration.
	refBins lazyCache[string, [][]int32]
	tgtBins lazyCache[string, [][]int32]

	// drift accumulates per-layout out-of-range counts across the
	// ApplyAppend chain since the layouts were fit (nil on a fresh
	// generator). Written once while the new generator is built, read-only
	// after publication — the same immutability discipline as the layout
	// maps.
	drift map[layoutKey]Drift
}

type layoutKey struct {
	dim  string
	bins int
}

type measureKey struct {
	layoutKey
	measure string
}

// NewGenerator enumerates the space and pre-computes bin layouts from the
// reference table. The target table must share the reference schema.
func NewGenerator(ref, target *dataset.Table, cfg SpaceConfig) (*Generator, error) {
	if ref == nil || target == nil {
		return nil, fmt.Errorf("view: generator needs both reference and target tables")
	}
	specs, err := Enumerate(ref, cfg)
	if err != nil {
		return nil, err
	}
	g := &Generator{
		Ref: ref, Target: target, cfg: cfg, specs: specs,
		layouts: make(map[layoutKey]*BinLayout),
	}
	for _, s := range specs {
		k := layoutKey{s.Dimension, s.Bins}
		if _, ok := g.layouts[k]; ok {
			continue
		}
		var l *BinLayout
		var err error
		if cfg.EqualDepth && s.Bins > 0 {
			l, err = ComputeLayoutEqualDepth(ref, s.Dimension, s.Bins)
		} else {
			l, err = ComputeLayout(ref, s.Dimension, s.Bins)
		}
		if err != nil {
			return nil, err
		}
		g.layouts[k] = l
	}
	g.dimLayouts = make(map[string][]layoutKey)
	for k := range g.layouts {
		g.dimLayouts[k.dim] = append(g.dimLayouts[k.dim], k)
	}
	for _, ks := range g.dimLayouts {
		sort.Slice(ks, func(i, j int) bool { return ks[i].bins < ks[j].bins })
	}
	return g, nil
}

// Specs returns the enumerated view space (shared slice; do not mutate).
func (g *Generator) Specs() []Spec { return g.specs }

// Layout returns the bin layout a spec uses.
func (g *Generator) Layout(s Spec) *BinLayout { return g.layouts[layoutKey{s.Dimension, s.Bins}] }

// warmJob names one (table, layout) scan a Warm pass front-loads.
type warmJob struct {
	t     *dataset.Table
	cache *lazyCache[layoutKey, *Stats]
	rows  []int
	k     layoutKey
}

// runWarm executes warm jobs over a bounded worker pool. Scans are
// independent per (table, layout) and single-flight in the caches, so
// results are identical to the lazy path; warming just front-loads them
// concurrently. Cancellation is checked between jobs, never inside a scan:
// a layout scan either completes and is cached, or never starts — a
// cancelled warm pass can never poison the caches with partial results.
func (g *Generator) runWarm(ctx context.Context, jobs []warmJob, workers int) error {
	// One warm job is one (table, layout) scan slot; already-cached layouts
	// complete without scanning, so the counter tracks scheduled scan slots
	// — the unit the layout caches deduplicate on.
	obs.RegistryFrom(ctx).Counter("viewseeker_view_warm_scans_total").Add(int64(len(jobs)))
	return par.ForEachCtx(ctx, len(jobs), workers, func(i int) error {
		j := jobs[i]
		_, err := g.statsFor(j.t, j.cache, j.k, j.rows)
		return err
	})
}

// Warm computes the full-data bin indexes and group statistics of every
// layout for both tables, fanning the scans out over the given number of
// worker goroutines (≤ 1 means sequential). Already-cached layouts cost
// nothing. Like every generator method it is safe to call concurrently.
func (g *Generator) Warm(workers int) error {
	return g.WarmCtx(context.Background(), workers)
}

// WarmCtx is Warm under a context: cancellation stops the pass between
// layout scans with the context's error.
func (g *Generator) WarmCtx(ctx context.Context, workers int) error {
	jobs := make([]warmJob, 0, 2*len(g.layouts))
	for k := range g.layouts {
		jobs = append(jobs, warmJob{g.Ref, &g.refStats, nil, k}, warmJob{g.Target, &g.tgtStats, nil, k})
	}
	return g.runWarm(ctx, jobs, workers)
}

// binsFor returns (building lazily) the dictionary-encoded bin column of
// one table under one layout. The whole dimension is materialised at once:
// the cache entry holds one bin index per bin configuration of the
// layout's dimension, built in a single shared pass over the dimension
// column, and single-flight caching makes concurrent warm jobs for sibling
// configurations wait on that one pass instead of each paying their own.
func (g *Generator) binsFor(t *dataset.Table, cache *lazyCache[string, [][]int32], k layoutKey) ([]int32, error) {
	keys := g.dimLayouts[k.dim]
	all, err := cache.get(k.dim, func() ([][]int32, error) {
		layouts := make([]*BinLayout, len(keys))
		for i, kk := range keys {
			layouts[i] = g.layouts[kk]
		}
		return BinIndexAll(t, layouts)
	})
	if err != nil {
		return nil, err
	}
	for i, kk := range keys {
		if kk == k {
			return all[i], nil
		}
	}
	return nil, fmt.Errorf("view: layout %s/%d bins is outside the enumerated space", k.dim, k.bins)
}

// statsFor returns the group statistics of one table under one layout,
// scanning on first use and caching per layout — one scan answers every
// (measure, aggregate) view on that dimension. Both full scans (rows ==
// nil) and sampled scans go through the bin-index cache: an α-sample pass
// gathers through the shared full-table index instead of re-binning the
// dimension column, and the index it builds is the same one the exact
// refinement scans reuse later.
func (g *Generator) statsFor(t *dataset.Table, cache *lazyCache[layoutKey, *Stats], k layoutKey, rows []int) (*Stats, error) {
	return cache.get(k, func() (*Stats, error) {
		binCache := &g.refBins
		if t == g.Target {
			binCache = &g.tgtBins
		}
		bins, err := g.binsFor(t, binCache, k)
		if err != nil {
			return nil, err
		}
		if rows == nil {
			return CollectStatsIndexed(t, g.layouts[k], t.Schema.Measures(), bins)
		}
		return CollectStatsSampled(t, g.layouts[k], t.Schema.Measures(), rows, bins)
	})
}

// Pair executes one view spec over the full reference and target data,
// scanning (and caching) all measures of the spec's layout at once — the
// right cost model for whole-space passes.
func (g *Generator) Pair(s Spec) (*Pair, error) {
	return g.pair(s, &g.refStats, &g.tgtStats, nil, nil)
}

// PairFocused executes one view spec over the full data, scanning only the
// spec's own measure when the all-measures statistics are not already
// cached. Incremental refinement uses it so that upgrading one rough view
// costs one narrow scan: the optimisation's pruning claim is about
// per-view work, and a full-layout scan would amortise it away.
func (g *Generator) PairFocused(s Spec) (*Pair, error) {
	rs, ts, err := g.FamilyStats(s)
	if err != nil {
		return nil, err
	}
	return assemblePair(s, rs, ts)
}

// FamilyStats returns the full-data reference and target statistics
// backing the spec's (dimension, bins, measure) family, with PairFocused's
// cost model: an already-cached all-measures layout scan is reused, and
// otherwise only the spec's own measure is scanned. The returned Stats
// answer every aggregate of that family — block refresh uses this to
// upgrade a whole family of rough views on one narrow scan. The Stats may
// carry either all measures or just the spec's (locate it with
// MeasureIndex); they are cache-shared and must not be mutated.
func (g *Generator) FamilyStats(s Spec) (refStats, tgtStats *Stats, err error) {
	k := layoutKey{s.Dimension, s.Bins}
	layout, ok := g.layouts[k]
	if !ok {
		return nil, nil, fmt.Errorf("view: spec %s is outside the enumerated space", s)
	}
	statsOf := func(t *dataset.Table, full *lazyCache[layoutKey, *Stats], focused *lazyCache[measureKey, *Stats], binCache *lazyCache[string, [][]int32]) (*Stats, error) {
		if st, ok := full.peek(k); ok {
			return st, nil
		}
		mk := measureKey{k, s.Measure}
		return focused.get(mk, func() (*Stats, error) {
			bins, err := g.binsFor(t, binCache, k)
			if err != nil {
				return nil, err
			}
			return CollectStatsIndexed(t, layout, []string{s.Measure}, bins)
		})
	}
	if refStats, err = statsOf(g.Ref, &g.refStats, &g.refFocused, &g.refBins); err != nil {
		return nil, nil, err
	}
	if tgtStats, err = statsOf(g.Target, &g.tgtStats, &g.tgtFocused, &g.tgtBins); err != nil {
		return nil, nil, err
	}
	return refStats, tgtStats, nil
}

// LayoutStats returns the full-data all-measures statistics of the spec's
// (dimension, bins) layout for both tables, scanning and caching on first
// use — the layout-block entry point the batched feature kernels consume
// directly, bypassing per-pair Histogram materialisation. The Stats are
// cache-shared and must not be mutated.
func (g *Generator) LayoutStats(s Spec) (refStats, tgtStats *Stats, err error) {
	k := layoutKey{s.Dimension, s.Bins}
	if _, ok := g.layouts[k]; !ok {
		return nil, nil, fmt.Errorf("view: spec %s is outside the enumerated space", s)
	}
	if refStats, err = g.statsFor(g.Ref, &g.refStats, k, nil); err != nil {
		return nil, nil, err
	}
	if tgtStats, err = g.statsFor(g.Target, &g.tgtStats, k, nil); err != nil {
		return nil, nil, err
	}
	return refStats, tgtStats, nil
}

// SampledRun scopes one α-sample pass over the generator's tables: it
// caches the sampled group statistics per layout so that a whole-space
// feature pass costs one sampled scan per layout, not per view. refRows
// and tgtRows restrict the reference and target scans (nil = all rows).
// Like the generator itself, a run is safe for concurrent use.
type SampledRun struct {
	g                *Generator
	refRows, tgtRows []int
	refStats         lazyCache[layoutKey, *Stats]
	tgtStats         lazyCache[layoutKey, *Stats]
}

// NewSampledRun starts a sampled pass.
func (g *Generator) NewSampledRun(refRows, tgtRows []int) *SampledRun {
	return &SampledRun{g: g, refRows: refRows, tgtRows: tgtRows}
}

// Pair executes one view spec over the run's samples.
func (r *SampledRun) Pair(s Spec) (*Pair, error) {
	return r.g.pair(s, &r.refStats, &r.tgtStats, r.refRows, r.tgtRows)
}

// LayoutStats returns the run's sampled all-measures statistics of the
// spec's (dimension, bins) layout for both tables — Generator.LayoutStats
// over the run's row samples, with the same sharing contract.
func (r *SampledRun) LayoutStats(s Spec) (refStats, tgtStats *Stats, err error) {
	k := layoutKey{s.Dimension, s.Bins}
	if _, ok := r.g.layouts[k]; !ok {
		return nil, nil, fmt.Errorf("view: spec %s is outside the enumerated space", s)
	}
	if refStats, err = r.g.statsFor(r.g.Ref, &r.refStats, k, r.refRows); err != nil {
		return nil, nil, err
	}
	if tgtStats, err = r.g.statsFor(r.g.Target, &r.tgtStats, k, r.tgtRows); err != nil {
		return nil, nil, err
	}
	return refStats, tgtStats, nil
}

// Warm pre-scans every layout's sampled statistics for both tables over a
// bounded worker pool — the sampled-pass counterpart of Generator.Warm, so
// that parallel partial feature passes front-load their layout scans
// concurrently too.
func (r *SampledRun) Warm(workers int) error {
	return r.WarmCtx(context.Background(), workers)
}

// WarmCtx is Warm under a context, with Generator.WarmCtx's semantics.
func (r *SampledRun) WarmCtx(ctx context.Context, workers int) error {
	jobs := make([]warmJob, 0, 2*len(r.g.layouts))
	for k := range r.g.layouts {
		jobs = append(jobs,
			warmJob{r.g.Ref, &r.refStats, r.refRows, k},
			warmJob{r.g.Target, &r.tgtStats, r.tgtRows, k})
	}
	return r.g.runWarm(ctx, jobs, workers)
}

func (g *Generator) pair(s Spec, refCache, tgtCache *lazyCache[layoutKey, *Stats], refRows, tgtRows []int) (*Pair, error) {
	k := layoutKey{s.Dimension, s.Bins}
	if _, ok := g.layouts[k]; !ok {
		return nil, fmt.Errorf("view: spec %s is outside the enumerated space", s)
	}
	rs, err := g.statsFor(g.Ref, refCache, k, refRows)
	if err != nil {
		return nil, err
	}
	ts, err := g.statsFor(g.Target, tgtCache, k, tgtRows)
	if err != nil {
		return nil, err
	}
	return assemblePair(s, rs, ts)
}

func assemblePair(s Spec, refStats, tgtStats *Stats) (*Pair, error) {
	rh, err := refStats.Histogram(s.Measure, s.Agg)
	if err != nil {
		return nil, err
	}
	th, err := tgtStats.Histogram(s.Measure, s.Agg)
	if err != nil {
		return nil, err
	}
	p := &Pair{Spec: s, Target: th, Reference: rh}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
