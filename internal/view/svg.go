package view

import (
	"fmt"
	"strings"
)

// svgPalette holds the two series colours of the paper's Figure 1: the
// reference in grey, the selected subset in near-black.
const (
	svgTargetColor    = "#1a1a1a"
	svgReferenceColor = "#b9b9b9"
)

// RenderSVG draws the pair as a grouped bar chart — the reference series
// behind the target series per bin, with axis labels — sized width×height
// pixels. It is the chart the HTTP UI serves; the ASCII Render remains the
// terminal form.
func (p *Pair) RenderSVG(width, height int) string {
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 320
	}
	const marginLeft, marginRight, marginTop, marginBottom = 50, 10, 30, 50
	plotW := float64(width - marginLeft - marginRight)
	plotH := float64(height - marginTop - marginBottom)

	maxVal := 0.0
	for _, v := range p.Target.Values {
		if v > maxVal {
			maxVal = v
		}
	}
	for _, v := range p.Reference.Values {
		if v > maxVal {
			maxVal = v
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}

	bins := p.Target.Bins()
	groupW := plotW / float64(bins)
	barW := groupW * 0.35

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`,
		width, height, width, height)
	fmt.Fprintf(&sb, `<text x="%d" y="18" font-size="13" font-weight="bold">%s</text>`,
		marginLeft, svgEscape(p.Spec.String()))

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#444"/>`,
		marginLeft, marginTop, marginLeft, height-marginBottom)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#444"/>`,
		marginLeft, height-marginBottom, width-marginRight, height-marginBottom)
	// Y-axis max label.
	fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="end">%.3g</text>`,
		marginLeft-4, marginTop+10, maxVal)
	fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="end">0</text>`,
		marginLeft-4, height-marginBottom)

	bar := func(value float64, x float64, color, series string) {
		if value < 0 {
			value = 0
		}
		h := value / maxVal * plotH
		y := float64(height-marginBottom) - h
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s: %.4g</title></rect>`,
			x, y, barW, h, color, series, value)
	}
	for b := 0; b < bins; b++ {
		groupX := float64(marginLeft) + float64(b)*groupW
		bar(p.Reference.Values[b], groupX+groupW*0.12, svgReferenceColor, "reference")
		bar(p.Target.Values[b], groupX+groupW*0.52, svgTargetColor, "target")
		label := p.Target.Labels[b]
		if len(label) > 10 {
			label = label[:9] + "…"
		}
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`,
			groupX+groupW/2, height-marginBottom+16, svgEscape(label))
	}

	// Legend.
	legendY := height - 16
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/><text x="%d" y="%d">target (DQ)</text>`,
		marginLeft, legendY-9, svgTargetColor, marginLeft+14, legendY)
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/><text x="%d" y="%d">reference (DR)</text>`,
		marginLeft+110, legendY-9, svgReferenceColor, marginLeft+124, legendY)
	sb.WriteString(`</svg>`)
	return sb.String()
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
