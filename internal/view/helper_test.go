package view

import (
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/sql"
)

// mustQuery runs a SQL statement against a single table via a throwaway
// catalog, failing the test on error.
func mustQuery(t *testing.T, tab *dataset.Table, query string) *dataset.Table {
	t.Helper()
	c := sql.NewCatalog()
	c.Register(tab)
	res, err := c.Query(query)
	if err != nil {
		t.Fatalf("Query(%q): %v", query, err)
	}
	return res
}
