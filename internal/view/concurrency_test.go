package view

import (
	"math/rand"
	"sync"
	"testing"
)

// TestCollectStatsConcurrentDecode races many indexed scans over a fresh
// table whose int/bool columns must be decoded lazily: the decode-once
// caches are built under contention and every goroutine must still see
// stats bit-identical to the sequential reference.
func TestCollectStatsConcurrentDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := kernelTable(rng, 2_000)
	measures := []string{"m1", "m2", "mconst", "mbool"}
	layouts := kernelLayouts(t, tab)
	want := make([]*Stats, len(layouts))
	for i, l := range layouts {
		var err error
		if want[i], err = CollectStatsReference(tab, l, measures, nil); err != nil {
			t.Fatal(err)
		}
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, l := range layouts {
				bins, err := BinIndex(tab, l)
				if err != nil {
					t.Error(err)
					return
				}
				got, err := CollectStatsIndexed(tab, l, measures, bins)
				if err != nil {
					t.Error(err)
					return
				}
				if err := statsEqual(want[i], got); err != nil {
					t.Errorf("layout %q: %v", l.Dimension, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestGeneratorConcurrentAccess hammers one generator's lazy caches from
// many goroutines mixing every access path — full pairs, focused pairs,
// warming, and sampled runs — so `go test -race` proves the single-flight
// caches hold up. Results must also match a sequential reference.
func TestGeneratorConcurrentAccess(t *testing.T) {
	ref, tgt := demoTables(t)
	g, err := NewGenerator(ref, tgt, SpaceConfig{BinCounts: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reference values from an identically configured generator.
	gRef, err := NewGenerator(ref, tgt, SpaceConfig{BinCounts: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	specs := g.Specs()
	want := make([]*Pair, len(specs))
	for i, s := range specs {
		if want[i], err = gRef.Pair(s); err != nil {
			t.Fatal(err)
		}
	}

	sampleRows := ref.SampleRows(0.3)
	run := g.NewSampledRun(sampleRows, nil)
	const goroutines = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*4)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%3 == 0 {
				if err := g.Warm(2); err != nil {
					errCh <- err
					return
				}
			}
			if w%4 == 0 {
				if err := run.Warm(2); err != nil {
					errCh <- err
					return
				}
			}
			for i, s := range specs {
				p, err := g.Pair(s)
				if err != nil {
					errCh <- err
					return
				}
				for b, v := range p.Target.Values {
					if v != want[i].Target.Values[b] {
						t.Errorf("concurrent pair %s bin %d = %v, want %v", s, b, v, want[i].Target.Values[b])
					}
				}
				if _, err := g.PairFocused(s); err != nil {
					errCh <- err
					return
				}
				if _, err := run.Pair(s); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestSampledRunWarmMatchesLazy checks that a warmed sampled run produces
// the same histograms as a lazily evaluated one.
func TestSampledRunWarmMatchesLazy(t *testing.T) {
	ref, tgt := demoTables(t)
	g, err := NewGenerator(ref, tgt, SpaceConfig{BinCounts: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	rows := ref.SampleRows(0.2)
	warmed := g.NewSampledRun(rows, nil)
	if err := warmed.Warm(4); err != nil {
		t.Fatal(err)
	}
	lazy := g.NewSampledRun(rows, nil)
	for _, s := range g.Specs() {
		pw, err := warmed.Pair(s)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := lazy.Pair(s)
		if err != nil {
			t.Fatal(err)
		}
		for b := range pw.Reference.Values {
			if pw.Reference.Values[b] != pl.Reference.Values[b] {
				t.Fatalf("%s bin %d: warmed %v != lazy %v", s, b, pw.Reference.Values[b], pl.Reference.Values[b])
			}
		}
	}
}
