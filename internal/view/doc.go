// Package view implements the paper's view model: a view is a triple
// (a, m, f) — dimension attribute, measure attribute, aggregate function —
// over a dataset, rendered as a histogram/bar chart. The package
// enumerates the view space (Eq. 1), lays out consistent bins across the
// target subset DQ and reference dataset DR, executes group-by
// aggregation into histograms, and normalises histograms into probability
// distributions (Eq. 5).
//
// # Contracts
//
// Bit-identity (DESIGN.md §9): the columnar scan kernels
// (CollectStatsIndexed, CollectStatsSampled) produce bit-identical
// statistics to the retained row-at-a-time oracle CollectStatsReference —
// same values, same ascending row order into every accumulator, one
// shared binning expression — enforced by a randomised property test and
// a cmd/bench startup check that refuses to benchmark diverging kernels.
//
// Cancellation (DESIGN.md §10): WarmCtx under a cancelled context returns
// ctx.Err() without publishing a partial warm — the generator's
// single-flight caches hold only completed scans, so a retry under a live
// context is bit-identical to an uninterrupted run. Cancellation
// granularity is one layout warm; the row loops inside the kernels stay
// branch-free.
package view
