package view

import (
	"math"
	"strings"
	"testing"
)

func TestTrendSlopeKnown(t *testing.T) {
	// Rising straight line: values 1..4 over 4 bins, mean 2.5, slope 1 →
	// normalised slope 1/2.5.
	h := &Histogram{Values: []float64{1, 2, 3, 4}, Labels: []string{"a", "b", "c", "d"}}
	if got := h.TrendSlope(); math.Abs(got-1/2.5) > 1e-12 {
		t.Errorf("slope = %v, want %v", got, 1/2.5)
	}
	// Flat: slope 0.
	flat := &Histogram{Values: []float64{3, 3, 3}}
	if got := flat.TrendSlope(); got != 0 {
		t.Errorf("flat slope = %v", got)
	}
	// Falling mirrors rising.
	down := &Histogram{Values: []float64{4, 3, 2, 1}}
	if got := down.TrendSlope(); math.Abs(got+1/2.5) > 1e-12 {
		t.Errorf("down slope = %v", got)
	}
	// Degenerate.
	if got := (&Histogram{Values: []float64{7}}).TrendSlope(); got != 0 {
		t.Errorf("single-bin slope = %v", got)
	}
	if got := (&Histogram{Values: []float64{0, 0}}).TrendSlope(); got != 0 {
		t.Errorf("all-zero slope = %v", got)
	}
}

func TestTrendSlopeScaleInvariant(t *testing.T) {
	a := &Histogram{Values: []float64{1, 2, 3, 4}}
	b := &Histogram{Values: []float64{10, 20, 30, 40}}
	if math.Abs(a.TrendSlope()-b.TrendSlope()) > 1e-12 {
		t.Errorf("normalised slope must be scale invariant: %v vs %v", a.TrendSlope(), b.TrendSlope())
	}
}

func TestRenderLine(t *testing.T) {
	p := &Pair{
		Spec: Spec{Dimension: "z", Measure: "m", Agg: "AVG", Bins: 4},
		Target: &Histogram{
			Labels: []string{"b1", "b2", "b3", "b4"},
			Values: []float64{1, 2, 3, 4},
		},
		Reference: &Histogram{
			Labels: []string{"b1", "b2", "b3", "b4"},
			Values: []float64{4, 3, 2, 1},
		},
	}
	out := p.RenderLine(8)
	if !strings.Contains(out, "T") || !strings.Contains(out, "R") {
		t.Errorf("line render missing series markers:\n%s", out)
	}
	if !strings.Contains(out, "(line)") {
		t.Errorf("missing title:\n%s", out)
	}
	// Equal values overlap as '*'.
	both := &Pair{
		Spec:      Spec{Dimension: "z", Measure: "m", Agg: "AVG"},
		Target:    &Histogram{Labels: []string{"x", "y"}, Values: []float64{1, 2}},
		Reference: &Histogram{Labels: []string{"x", "y"}, Values: []float64{1, 2}},
	}
	if out := both.RenderLine(5); !strings.Contains(out, "*") {
		t.Errorf("identical series should overlap:\n%s", out)
	}
}

func TestWarmMatchesLazy(t *testing.T) {
	g1 := benchLikeGenerator(t)
	g2 := benchLikeGenerator(t)
	if err := g1.Warm(4); err != nil {
		t.Fatal(err)
	}
	// Warm twice is a no-op.
	if err := g1.Warm(4); err != nil {
		t.Fatal(err)
	}
	for _, spec := range g1.Specs() {
		p1, err := g1.Pair(spec)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := g2.Pair(spec)
		if err != nil {
			t.Fatal(err)
		}
		for b := range p1.Target.Values {
			if p1.Target.Values[b] != p2.Target.Values[b] ||
				p1.Reference.Values[b] != p2.Reference.Values[b] {
				t.Fatalf("warm pair differs for %s", spec)
			}
		}
	}
}

func benchLikeGenerator(t *testing.T) *Generator {
	t.Helper()
	ref, tgt := demoTables(t)
	g, err := NewGenerator(ref, tgt, SpaceConfig{BinCounts: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRenderSVG(t *testing.T) {
	p := &Pair{
		Spec: Spec{Dimension: "race & co", Measure: "m", Agg: "AVG"},
		Target: &Histogram{
			Labels: []string{"short", "averyverylonglabel"},
			Values: []float64{3, 1},
		},
		Reference: &Histogram{
			Labels: []string{"short", "averyverylonglabel"},
			Values: []float64{2, 2},
		},
	}
	out := p.RenderSVG(400, 200)
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(out, "</svg>") {
		t.Fatalf("not an svg document: %.60s...", out)
	}
	// 2 bins × 2 series + 2 legend swatches = 6 rects.
	if got := strings.Count(out, "<rect"); got != 6 {
		t.Errorf("rects = %d, want 6", got)
	}
	// The ampersand in the spec must be escaped.
	if strings.Contains(out, "race & co") || !strings.Contains(out, "race &amp; co") {
		t.Error("svg escaping failed")
	}
	// Long labels truncate with an ellipsis.
	if !strings.Contains(out, "…") {
		t.Error("long label not truncated")
	}
	// Zero-value and default-size pairs still render.
	flat := &Pair{
		Spec:      Spec{Dimension: "d", Measure: "m", Agg: "SUM"},
		Target:    &Histogram{Labels: []string{"x"}, Values: []float64{0}},
		Reference: &Histogram{Labels: []string{"x"}, Values: []float64{0}},
	}
	if out := flat.RenderSVG(0, 0); !strings.Contains(out, `width="640"`) {
		t.Error("default size not applied")
	}
}
