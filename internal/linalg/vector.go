package linalg

import "math"

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// AXPY computes y ← y + alpha·x in place.
func AXPY(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies the vector by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// two equal-length vectors.
func MaxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
