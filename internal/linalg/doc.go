// Package linalg provides the small dense linear-algebra kernel the ML
// substrate needs: matrices, vectors, Gaussian elimination with partial
// pivoting, and Cholesky decomposition for solving normal equations.
//
// # Contracts
//
// Everything here is pure float64 arithmetic with no randomness and no
// goroutines: the same inputs produce the same bits on every run and
// every platform Go's float64 semantics cover. Solvers return an error on
// singular or non-positive-definite systems instead of producing NaNs,
// so callers never train on silently garbage coefficients.
package linalg
