package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromRowsAndAt(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Errorf("unexpected matrix %+v", m)
	}
	if _, err := FromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("expected ragged-rows error")
	}
}

func TestMatrixMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Error("expected shape error")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	got, err := a.MulVec([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 || got[1] != 6 {
		t.Errorf("MulVec = %v", got)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Error("expected shape error")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(3, 5)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		tt := m.T().T()
		for i := range m.Data {
			if tt.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGramMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMatrix(20, 6)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	want, err := m.T().Mul(m)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Gram()
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-9) {
			t.Fatalf("Gram mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a.Clone(), []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a.Clone(), []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 3, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a.Clone(), []float64{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)) // diagonal dominance => well-conditioned
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b, err := a.MulVec(want)
		if err != nil {
			return false
		}
		got, err := Solve(a.Clone(), b)
		if err != nil {
			return false
		}
		return MaxAbsDiff(got, want) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyAndSolve(t *testing.T) {
	// SPD matrix built as GᵀG + I.
	rng := rand.New(rand.NewSource(4))
	g := NewMatrix(8, 4)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	a := g.Gram()
	for i := 0; i < 4; i++ {
		a.Add(i, i, 1)
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := l.Mul(l.T())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if !almostEqual(back.Data[i], a.Data[i], 1e-9) {
			t.Fatalf("L·Lᵀ mismatch at %d", i)
		}
	}
	want := []float64{1, -2, 3, 0.5}
	b, _ := a.MulVec(want)
	got, err := SolveCholesky(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(got, want) > 1e-8 {
		t.Errorf("SolveCholesky = %v, want %v", got, want)
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected non-SPD error")
	}
}

func TestVectorOps(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Error("Norm2 wrong")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Errorf("AXPY = %v", y)
	}
	x := []float64{2, 4}
	Scale(0.5, x)
	if x[0] != 1 || x[1] != 2 {
		t.Errorf("Scale = %v", x)
	}
	if MaxAbsDiff([]float64{1, 5}, []float64{2, 3}) != 2 {
		t.Error("MaxAbsDiff wrong")
	}
}
