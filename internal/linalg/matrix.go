package linalg

import "fmt"

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m × b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: mul shape mismatch %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Add(i, j, a*b.At(k, j))
			}
		}
	}
	return out, nil
}

// MulVec returns m × v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("linalg: mulvec shape mismatch %dx%d × %d", m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range v {
			s += row[j] * x
		}
		out[i] = s
	}
	return out, nil
}

// Gram returns mᵀm, the k×k Gram matrix of an n×k design matrix, computed
// without materialising the transpose.
func (m *Matrix) Gram() *Matrix {
	k := m.Cols
	out := NewMatrix(k, k)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*k : (r+1)*k]
		for i := 0; i < k; i++ {
			if row[i] == 0 {
				continue
			}
			for j := i; j < k; j++ {
				out.Add(i, j, row[i]*row[j])
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			out.Set(i, j, out.At(j, i))
		}
	}
	return out
}
