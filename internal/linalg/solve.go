package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular reports a numerically singular system.
var ErrSingular = errors.New("linalg: matrix is singular")

// Solve solves A·x = b by Gaussian elimination with partial pivoting. A is
// destroyed; pass A.Clone() to preserve it. b is not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Solve needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot: largest |a[r][col]| for r >= col.
		pivot := col
		maxAbs := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := col; j < n; j++ {
				ap, ac := a.At(pivot, j), a.At(col, j)
				a.Set(pivot, j, ac)
				a.Set(col, j, ap)
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Add(r, j, -f*a.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// Cholesky decomposes a symmetric positive-definite matrix A into L·Lᵀ and
// returns the lower-triangular L. It errors when A is not SPD within
// numerical tolerance.
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (%g)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b for SPD A via Cholesky: two triangular
// solves. A is preserved.
func SolveCholesky(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	// Forward solve L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back solve Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
