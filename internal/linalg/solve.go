package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular reports a numerically singular system.
var ErrSingular = errors.New("linalg: matrix is singular")

// Solve solves A·x = b by Gaussian elimination with partial pivoting. A is
// destroyed; pass A.Clone() to preserve it. b is not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Solve needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot: largest |a[r][col]| for r >= col.
		pivot := col
		maxAbs := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := col; j < n; j++ {
				ap, ac := a.At(pivot, j), a.At(col, j)
				a.Set(pivot, j, ac)
				a.Set(col, j, ap)
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Add(r, j, -f*a.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// Cholesky decomposes a symmetric positive-definite matrix A into L·Lᵀ and
// returns the lower-triangular L. It errors when A is not SPD within
// numerical tolerance.
func Cholesky(a *Matrix) (*Matrix, error) {
	l := NewMatrix(a.Rows, a.Rows)
	if err := CholeskyInto(a, l); err != nil {
		return nil, err
	}
	return l, nil
}

// CholeskyInto is Cholesky with a caller-owned factor: it decomposes A
// into l (which must be square with A's dimensions), zeroing l first so a
// reused workspace carries no stale entries. The arithmetic is exactly
// Cholesky's, so repeated solves can recycle the factor buffer without
// changing a single bit of the result.
func CholeskyInto(a, l *Matrix) error {
	n := a.Rows
	if a.Cols != n {
		return fmt.Errorf("linalg: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if l.Rows != n || l.Cols != n {
		return fmt.Errorf("linalg: Cholesky factor is %dx%d, want %dx%d", l.Rows, l.Cols, n, n)
	}
	for i := range l.Data {
		l.Data[i] = 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return fmt.Errorf("linalg: matrix not positive definite at pivot %d (%g)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return nil
}

// SolveCholesky solves A·x = b for SPD A via Cholesky: two triangular
// solves. A is preserved.
func SolveCholesky(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	y := make([]float64, n)
	x := make([]float64, n)
	if err := SolveFactored(l, b, y, x); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveFactored finishes a Cholesky solve from an existing factor: given
// lower-triangular L with L·Lᵀ = A, it solves A·x = b by the forward
// solve L·y = b into the scratch y, then the back solve Lᵀ·x = y into x.
// y and x must have the factor's dimension; b is preserved. The two
// triangular loops are SolveCholesky's own, so a reused workspace yields
// bit-identical solutions.
func SolveFactored(l *Matrix, b, y, x []float64) error {
	n := l.Rows
	if len(b) != n || len(y) != n || len(x) != n {
		return fmt.Errorf("linalg: solve buffers have lengths %d/%d/%d, want %d", len(b), len(y), len(x), n)
	}
	// Forward solve L·y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back solve Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return nil
}
