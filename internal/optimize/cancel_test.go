package optimize

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRefineCancelledContextStopsWithinOneRow(t *testing.T) {
	m := partialMatrix(t)
	r := NewRefiner(m)
	r.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	var rows atomic.Int32
	r.OnRow = func(int) {
		if rows.Add(1) == 1 {
			cancel()
		}
	}
	n, err := r.RefineCtx(ctx, nil, time.Hour)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Sequential refinement checks the context before every row: the row
	// that triggered cancellation is the last one refreshed.
	if got := rows.Load(); got != 1 {
		t.Errorf("refreshed %d rows after cancellation, want 1", got)
	}
	if n > 1 {
		t.Errorf("reported %d refreshed rows", n)
	}
	if m.AllExact() {
		t.Error("cancelled refinement claims to have finished the matrix")
	}
}

func TestRefinePreCancelledContextRefreshesNothing(t *testing.T) {
	m := partialMatrix(t)
	r := NewRefiner(m)
	before := m.ExactCount()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := r.RefineCtx(ctx, nil, time.Hour)
	if !errors.Is(err, context.Canceled) || n != 0 {
		t.Fatalf("n, err = %d, %v", n, err)
	}
	if m.ExactCount() != before {
		t.Errorf("pre-cancelled refine changed the matrix")
	}
}

func TestRefineAfterCancelResumesCleanly(t *testing.T) {
	m := partialMatrix(t)
	r := NewRefiner(m)
	r.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	var rows atomic.Int32
	r.OnRow = func(int) {
		if rows.Add(1) == 2 {
			cancel()
		}
	}
	if _, err := r.RefineCtx(ctx, nil, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	r.OnRow = nil
	// Refinement is monotonic: a fresh call under a live context finishes
	// the job the cancelled one started.
	if _, err := r.RefineCtx(context.Background(), nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	if !m.AllExact() {
		t.Error("resumed refinement did not finish the matrix")
	}
}
