package optimize

import (
	"testing"
	"time"

	"viewseeker/internal/dataset"
	"viewseeker/internal/feature"
	"viewseeker/internal/view"
)

func partialMatrix(t *testing.T) *feature.Matrix {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "cat", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	ref := dataset.NewTable("ref", schema)
	for i := 0; i < 200; i++ {
		ref.MustAppendRow(dataset.StringVal(string(rune('a'+i%5))), dataset.Float(float64(i)))
	}
	var rows []int
	for i := 0; i < 200; i += 5 {
		rows = append(rows, i)
	}
	tgt := ref.Subset("tgt", rows)
	g, err := view.NewGenerator(ref, tgt, view.SpaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := feature.ComputePartial(g, feature.StandardRegistry(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRefineAllWithGenerousBudget(t *testing.T) {
	m := partialMatrix(t)
	r := NewRefiner(m)
	if r.Done() {
		t.Fatal("partial matrix should not start done")
	}
	n, err := r.Refine(nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if n != m.Len() {
		t.Errorf("refreshed %d rows, want %d", n, m.Len())
	}
	if !r.Done() {
		t.Error("refiner should be done")
	}
	// Second call is a no-op.
	n, err = r.Refine(nil, time.Minute)
	if err != nil || n != 0 {
		t.Errorf("second refine = %d, %v", n, err)
	}
}

func TestRefineZeroBudgetMakesMinimumProgress(t *testing.T) {
	m := partialMatrix(t)
	r := NewRefiner(m)
	n, err := r.Refine(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Errorf("zero budget refreshed %d rows, want ≥ 1 (MinPerCall)", n)
	}
	if m.ExactCount() != n {
		t.Errorf("exact count %d != refreshed %d", m.ExactCount(), n)
	}
}

func TestRefineHonoursPriorityOrder(t *testing.T) {
	m := partialMatrix(t)
	r := NewRefiner(m)
	// Sequential path: with one-row batches the deadline is checked before
	// every row, so the fake clock bounds the refresh count exactly.
	r.Workers = 1
	// Fake clock: every call advances 10ms, budget 25ms → ~3 refreshes.
	now := time.Unix(0, 0)
	r.Now = func() time.Time {
		now = now.Add(10 * time.Millisecond)
		return now
	}
	last := m.Len() - 1
	priority := []int{last, 0, 1, 2, 3, 4}
	n, err := r.Refine(priority, 25*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n >= m.Len() {
		t.Fatalf("refreshed %d", n)
	}
	if !m.Exact[last] {
		t.Error("highest-priority row was not refreshed first")
	}
}

func TestRefineParallelMatchesSequential(t *testing.T) {
	seq, par := partialMatrix(t), partialMatrix(t)
	rs := NewRefiner(seq)
	rs.Workers = 1
	rp := NewRefiner(par)
	rp.Workers = 8
	// Duplicate priority entries must be deduplicated (two goroutines
	// refreshing one row would race on its matrix slots).
	priority := []int{3, 3, 0, 1, 0, 2, 4}
	if _, err := rs.Refine(priority, time.Minute); err != nil {
		t.Fatal(err)
	}
	n, err := rp.Refine(priority, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("parallel refine refreshed %d rows, want 5 (duplicates skipped)", n)
	}
	for i := range seq.Rows {
		if seq.Exact[i] != par.Exact[i] {
			t.Errorf("row %d exactness differs", i)
		}
		for j := range seq.Rows[i] {
			if seq.Rows[i][j] != par.Rows[i][j] {
				t.Errorf("row %d feature %d differs: %v vs %v", i, j, seq.Rows[i][j], par.Rows[i][j])
			}
		}
	}
}

func TestRefineBadPriorityIndex(t *testing.T) {
	m := partialMatrix(t)
	r := NewRefiner(m)
	if _, err := r.Refine([]int{9999}, time.Second); err == nil {
		t.Error("out-of-range priority should fail")
	}
	var empty Refiner
	if _, err := empty.Refine(nil, time.Second); err == nil {
		t.Error("refiner without matrix should fail")
	}
}
