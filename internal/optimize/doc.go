// Package optimize implements the paper's Section 3.3 optimisations: the
// α-sample "rough" feature pass lives in internal/feature
// (ComputePartial); this package schedules the incremental refinement of
// rough feature rows against the full data, in utility-estimator rank
// order, under the per-iteration latency budget tl — hiding the expensive
// computation inside the user's labelling time.
//
// # Contracts
//
// Monotonicity: refinement only ever upgrades rows from rough to exact,
// in place; a refreshed row is final and is never recomputed. Rows that
// never reach the front of the priority queue are the "less promising"
// computations the optimisation prunes — their exact features are simply
// never computed.
//
// Cancellation (DESIGN.md §10): RefineCtx returns the number of rows
// refreshed so far together with ctx.Err(); refreshed rows stay exact and
// a later call resumes where it stopped. Callers treat cancellation as an
// exhausted budget, not a failure. Granularity is one layout-family scan:
// rows of a batch sharing a (dimension, bins, measure) family refresh
// together through Matrix.RefreshFamily, and with Workers = 1 every
// family is a single row — the sequential one-row contract is unchanged.
//
// Observability: RefineCtx records a "feedback.refine" span plus
// refreshed-row and latency metrics against the context's obs registry,
// and reports per-row progress through the OnRow hook; with neither
// installed the refinement loop is bit-identical to the bare path.
package optimize
