// Package optimize implements the paper's Section 3.3 optimisations: the
// α-sample "rough" feature pass lives in internal/feature (ComputePartial);
// this package schedules the incremental refinement of rough feature rows
// against the full data, in utility-estimator rank order, under the
// per-iteration latency budget tl — hiding the expensive computation inside
// the user's labelling time.
package optimize

import (
	"fmt"
	"time"

	"viewseeker/internal/feature"
)

// Clock abstracts time for deterministic tests.
type Clock func() time.Time

// Refiner incrementally upgrades inexact feature rows to exact ones.
type Refiner struct {
	Matrix *feature.Matrix
	// Now is the clock (default time.Now).
	Now Clock
	// MinPerCall guarantees progress even under a zero/tiny budget: at
	// least this many rows are refreshed per Refine call while any remain
	// (default 1).
	MinPerCall int
}

// NewRefiner wraps a matrix.
func NewRefiner(m *feature.Matrix) *Refiner { return &Refiner{Matrix: m} }

// Done reports whether every row is already exact.
func (r *Refiner) Done() bool { return r.Matrix.AllExact() }

// Refine refreshes rows in the given priority order (highest priority
// first) until the budget elapses or everything is exact. It returns the
// number of rows refreshed. Rows already exact cost nothing and are
// skipped. A nil priority refreshes in index order.
func (r *Refiner) Refine(priority []int, budget time.Duration) (int, error) {
	if r.Matrix == nil {
		return 0, fmt.Errorf("optimize: refiner has no matrix")
	}
	now := r.Now
	if now == nil {
		now = time.Now
	}
	minPer := r.MinPerCall
	if minPer <= 0 {
		minPer = 1
	}
	if priority == nil {
		priority = make([]int, r.Matrix.Len())
		for i := range priority {
			priority[i] = i
		}
	}
	deadline := now().Add(budget)
	refreshed := 0
	for _, i := range priority {
		if i < 0 || i >= r.Matrix.Len() {
			return refreshed, fmt.Errorf("optimize: priority index %d out of range", i)
		}
		if r.Matrix.Exact[i] {
			continue
		}
		if refreshed >= minPer && !now().Before(deadline) {
			break
		}
		if err := r.Matrix.RefreshRow(i); err != nil {
			return refreshed, err
		}
		refreshed++
	}
	return refreshed, nil
}
