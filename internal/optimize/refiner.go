package optimize

import (
	"context"
	"fmt"
	"time"

	"viewseeker/internal/feature"
	"viewseeker/internal/obs"
	"viewseeker/internal/par"
)

// Clock abstracts time for deterministic tests.
type Clock func() time.Time

// Refiner incrementally upgrades inexact feature rows to exact ones.
type Refiner struct {
	Matrix *feature.Matrix
	// Now is the clock (default time.Now).
	Now Clock
	// MinPerCall guarantees progress even under a zero/tiny budget: at
	// least this many rows are refreshed per Refine call while any remain
	// (default 1).
	MinPerCall int
	// Workers bounds how many rows a batch holds and how many of its
	// family groups refresh concurrently: rows over the same (dimension,
	// bins, measure) share one narrow scan via RefreshFamily, and the
	// scans of distinct families are independent, so fanning them out
	// hides more exact recomputation inside the same latency budget. ≤ 0
	// selects runtime.NumCPU(); 1 refreshes strictly sequentially (the
	// pre-parallel behaviour, also required when custom utility features
	// are not safe for concurrent use).
	Workers int
	// OnRow, when non-nil, is called once per row successfully refreshed,
	// with the row's view index — the observation hook cancellation tests
	// and instrumentation count refinement progress through. It runs on the
	// refresh worker goroutines, so it must be safe for concurrent use when
	// Workers != 1.
	OnRow func(viewIdx int)
}

// NewRefiner wraps a matrix.
func NewRefiner(m *feature.Matrix) *Refiner { return &Refiner{Matrix: m} }

// Done reports whether every row is already exact.
func (r *Refiner) Done() bool { return r.Matrix.AllExact() }

// Refine refreshes rows in the given priority order (highest priority
// first) until the budget elapses or everything is exact, fanning batches
// of up to Workers rows out concurrently. It returns the number of rows
// refreshed. Rows already exact (and duplicate priority entries) cost
// nothing and are skipped. A nil priority refreshes in index order. The
// budget is checked between batches, so at least MinPerCall rows — and at
// most one extra batch — refresh even under a zero budget.
func (r *Refiner) Refine(priority []int, budget time.Duration) (int, error) {
	return r.RefineCtx(context.Background(), priority, budget)
}

// RefineCtx is Refine under a context: cancellation is honoured like an
// expired budget, checked between batches and between family groups inside
// a batch (via par.ForEachCtx), so a cancelled call returns within one
// layout-family scan per worker — with Workers = 1 every group is a single
// row, preserving the sequential one-row granularity. Rows already
// refreshed stay refreshed — refinement is monotonic, so stopping early is
// always safe — and the context's error is returned alongside the count.
func (r *Refiner) RefineCtx(ctx context.Context, priority []int, budget time.Duration) (refreshed int, err error) {
	if r.Matrix == nil {
		return 0, fmt.Errorf("optimize: refiner has no matrix")
	}
	// The span/metrics generalise the OnRow observation hook: OnRow reports
	// per-row progress to one caller, the registry accumulates rows and
	// wall time across every session sharing it. Both observe the same
	// events; neither alters scheduling, so refinement stays deterministic.
	ctx, span := obs.StartSpan(ctx, "feedback.refine")
	defer span.End()
	if reg := obs.RegistryFrom(ctx); reg != nil {
		start := time.Now()
		defer func() {
			reg.Counter("viewseeker_optimize_refined_rows_total").Add(int64(refreshed))
			reg.Histogram("viewseeker_optimize_refine_seconds", obs.DurationBuckets).
				ObserveDuration(time.Since(start))
		}()
	}
	now := r.Now
	if now == nil {
		now = time.Now
	}
	minPer := r.MinPerCall
	if minPer <= 0 {
		minPer = 1
	}
	workers := par.Resolve(r.Workers)
	if priority == nil {
		priority = make([]int, r.Matrix.Len())
		for i := range priority {
			priority[i] = i
		}
	}
	deadline := now().Add(budget)
	// Batches must not contain duplicate indices: two goroutines
	// refreshing the same row would race on its matrix slots.
	seen := make(map[int]bool)
	batch := make([]int, 0, workers)
	pos := 0
	for pos < len(priority) {
		batch = batch[:0]
		for pos < len(priority) && len(batch) < workers {
			i := priority[pos]
			if i < 0 || i >= r.Matrix.Len() {
				return refreshed, fmt.Errorf("optimize: priority index %d out of range", i)
			}
			pos++
			if seen[i] || r.Matrix.Exact[i] {
				continue
			}
			seen[i] = true
			batch = append(batch, i)
		}
		if len(batch) == 0 {
			break
		}
		if refreshed >= minPer && !now().Before(deadline) {
			break
		}
		if err := ctx.Err(); err != nil {
			return refreshed, err
		}
		// Rows over the same aggregate family — identical (dimension, bins,
		// measure) — come from one narrow scan, so the batch fans out over
		// family groups rather than individual rows: RefreshFamily upgrades
		// each group in a single stats pass, and refinePriority's habit of
		// queueing siblings together means a batch often collapses to a
		// handful of scans.
		families := groupFamilies(r.Matrix, batch)
		if err := par.ForEachCtx(ctx, len(families), workers, func(j int) error {
			g := families[j]
			if err := r.Matrix.RefreshFamily(g); err != nil {
				return err
			}
			if r.OnRow != nil {
				for _, i := range g {
					r.OnRow(i)
				}
			}
			return nil
		}); err != nil {
			return refreshed, err
		}
		refreshed += len(batch)
	}
	return refreshed, nil
}

// famKey identifies an aggregate family: views sharing it differ only in
// their aggregate function and are computed from the same narrow scan.
type famKey struct {
	dim, measure string
	bins         int
}

// groupFamilies partitions batch indices into family groups, preserving
// first-seen order so priority order survives the grouping.
func groupFamilies(m *feature.Matrix, idxs []int) [][]int {
	order := make([]famKey, 0, len(idxs))
	groups := make(map[famKey][]int, len(idxs))
	for _, i := range idxs {
		s := m.Specs[i]
		k := famKey{dim: s.Dimension, measure: s.Measure, bins: s.Bins}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	out := make([][]int, len(order))
	for j, k := range order {
		out[j] = groups[k]
	}
	return out
}
