package core

import (
	"context"
	"testing"
	"time"

	"viewseeker/internal/ml"
	"viewseeker/internal/obs"
)

// fromScratchWeights rebuilds the estimator the way a fresh session would:
// whole-space scaler over the matrix as it stands, then the labelled rows
// absorbed into sufficient statistics in labelling order. The incremental
// refit must match this bit for bit after every feedback — that is the
// determinism contract SessionState replay depends on.
func fromScratchWeights(t *testing.T, s *Seeker) ([]float64, float64) {
	t.Helper()
	scaler, err := ml.FitScaler(s.matrix.Rows)
	if err != nil {
		t.Fatal(err)
	}
	k := len(s.matrix.Rows[0])
	suff := ml.NewSuffStats(k)
	z := make([]float64, k)
	idxs, labels := s.Labels()
	for j, vi := range idxs {
		scaler.TransformInto(s.matrix.Rows[vi], z)
		if err := suff.Add(z, labels[j]); err != nil {
			t.Fatal(err)
		}
	}
	ref := ml.NewLinearRegression(s.cfg.Ridge)
	ref.ExternalScaler = scaler
	if err := ref.FitSufficient(suff); err != nil {
		t.Fatal(err)
	}
	return ref.Weights()
}

// TestRefitMatchesFromScratch drives a refinement session — the hardest
// case, because row refreshes invalidate the cached scaler and statistics
// mid-session — and after every feedback compares the live estimator
// against a from-scratch rebuild over the same labels and current rows.
func TestRefitMatchesFromScratch(t *testing.T) {
	partial := buildMatrix(t, 0.25)
	s, err := NewSeeker(partial, Config{K: 5, RefineBudget: time.Second}, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		next, err := s.NextViews()
		if err != nil {
			t.Fatal(err)
		}
		if len(next) == 0 {
			break
		}
		label := float64(i%2)*0.8 + 0.1 // alternate 0.1 / 0.9
		if err := s.Feedback(next[0], label); err != nil {
			t.Fatal(err)
		}
		wantW, wantB := fromScratchWeights(t, s)
		gotW, gotB := s.Weights()
		if gotB != wantB {
			t.Fatalf("after label %d: bias %v, from-scratch %v", i, gotB, wantB)
		}
		for j := range wantW {
			if gotW[j] != wantW[j] {
				t.Fatalf("after label %d: weight %d = %v, from-scratch %v", i, j, gotW[j], wantW[j])
			}
		}
	}
}

// TestRefitIncrementalPath checks the fast path actually engages: over a
// stable matrix (no refinement), the first refit rebuilds and every later
// one is incremental — and a relabel, which rewrites an absorbed label in
// place, forces exactly one rebuild.
func TestRefitIncrementalPath(t *testing.T) {
	m := buildMatrix(t, 0)
	s, err := NewSeeker(m, Config{K: 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.NewContext(context.Background(), reg, nil)
	var first int
	for i := 0; i < 6; i++ {
		next, err := s.NextViewsCtx(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = next[0]
		}
		if err := s.FeedbackCtx(ctx, next[0], float64(i%2)); err != nil {
			t.Fatal(err)
		}
	}
	rebuilds := reg.Counter("viewseeker_refit_rebuilds_total").Value()
	incr := reg.Counter("viewseeker_refit_incremental_total").Value()
	if rebuilds != 1 || incr != 5 {
		t.Fatalf("stable matrix: %d rebuilds, %d incremental; want 1 and 5", rebuilds, incr)
	}

	// Relabel the first view: the prefix no longer matches, so the next
	// refit must rebuild, and the estimator must equal a from-scratch fit.
	if err := s.FeedbackCtx(ctx, first, 1); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("viewseeker_refit_rebuilds_total").Value(); got != 2 {
		t.Fatalf("relabel: %d rebuilds, want 2", got)
	}
	wantW, wantB := fromScratchWeights(t, s)
	gotW, gotB := s.Weights()
	if gotB != wantB {
		t.Fatalf("after relabel: bias %v, from-scratch %v", gotB, wantB)
	}
	for j := range wantW {
		if gotW[j] != wantW[j] {
			t.Fatalf("after relabel: weight %d = %v, from-scratch %v", j, gotW[j], wantW[j])
		}
	}
}
