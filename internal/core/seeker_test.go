package core

import (
	"sort"
	"testing"

	"viewseeker/internal/active"
	"viewseeker/internal/dataset"
	"viewseeker/internal/feature"
	"viewseeker/internal/view"
)

// buildMatrix creates a real feature matrix over a small skewed dataset.
func buildMatrix(t *testing.T, alpha float64) *feature.Matrix {
	t.Helper()
	ref := dataset.GenerateDIAB(dataset.DIABConfig{Rows: 3000, Seed: 11})
	var rows []int
	diag := ref.Column("diag_group").Strs
	for i := range diag {
		if diag[i] == "diabetes" {
			rows = append(rows, i)
		}
	}
	tgt := ref.Subset("tgt", rows)
	g, err := view.NewGenerator(ref, tgt, view.SpaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg := feature.StandardRegistry()
	var m *feature.Matrix
	if alpha > 0 && alpha < 1 {
		m, err = feature.ComputePartial(g, reg, alpha)
	} else {
		m, err = feature.Compute(g, reg)
	}
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewSeekerValidation(t *testing.T) {
	if _, err := NewSeeker(nil, Config{}, false); err == nil {
		t.Error("nil matrix should fail")
	}
	m := buildMatrix(t, 0)
	if _, err := NewSeeker(m, Config{PositiveThreshold: 2}, false); err == nil {
		t.Error("bad threshold should fail")
	}
	if _, err := NewSeeker(m, Config{}, false); err != nil {
		t.Errorf("default config should work: %v", err)
	}
}

func TestSeekerColdStartTransitions(t *testing.T) {
	m := buildMatrix(t, 0)
	s, err := NewSeeker(m, Config{K: 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !s.InColdStart() {
		t.Error("session must start in cold start")
	}
	next, err := s.NextViews()
	if err != nil {
		t.Fatal(err)
	}
	if len(next) != 1 {
		t.Fatalf("M defaults to 1, got %d views", len(next))
	}
	// A positive then a negative label ends cold start.
	if err := s.Feedback(next[0], 0.9); err != nil {
		t.Fatal(err)
	}
	if !s.InColdStart() {
		t.Error("one class is not enough to exit cold start")
	}
	next, _ = s.NextViews()
	if err := s.Feedback(next[0], 0.1); err != nil {
		t.Fatal(err)
	}
	if s.InColdStart() {
		t.Error("positive + negative labels must end cold start")
	}
	if s.NumLabels() != 2 {
		t.Errorf("labels = %d", s.NumLabels())
	}
}

func TestSeekerFeedbackValidation(t *testing.T) {
	m := buildMatrix(t, 0)
	s, _ := NewSeeker(m, Config{}, false)
	if err := s.Feedback(-1, 0.5); err == nil {
		t.Error("negative index should fail")
	}
	if err := s.Feedback(0, 1.5); err == nil {
		t.Error("label > 1 should fail")
	}
	if err := s.Feedback(0, -0.1); err == nil {
		t.Error("label < 0 should fail")
	}
}

func TestSeekerLearnsLinearTarget(t *testing.T) {
	// Labels follow 0.5*EMD + 0.5*KL over the true features; after enough
	// labels the estimator must reproduce the target ranking exactly.
	m := buildMatrix(t, 0)
	s, err := NewSeeker(m, Config{K: 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	emd, kl := 1, 0 // registry order: KL=0, EMD=1
	truth := make([]float64, m.Len())
	maxTruth := 0.0
	for i, row := range m.Rows {
		truth[i] = 0.5*row[emd] + 0.5*row[kl]
		if truth[i] > maxTruth {
			maxTruth = truth[i]
		}
	}
	for iter := 0; iter < 30; iter++ {
		next, err := s.NextViews()
		if err != nil {
			t.Fatal(err)
		}
		if len(next) == 0 {
			break
		}
		label := truth[next[0]] / maxTruth
		if label > 1 {
			label = 1
		}
		if err := s.Feedback(next[0], label); err != nil {
			t.Fatal(err)
		}
	}
	// The estimator must reproduce the target's top-5 (tie-aware): the
	// paper's success measure. Global pairwise ranking is deliberately not
	// asserted — ridge bias on rank-deficient labelled sets may flip pairs
	// the recommendation never surfaces.
	pred := s.TopK()
	kth := truth[pred[len(pred)-1]]
	idealSorted := append([]float64(nil), truth...)
	sort.Float64s(idealSorted)
	threshold := idealSorted[len(idealSorted)-5]
	_ = kth
	hits := 0
	for _, v := range pred {
		if truth[v] >= threshold-1e-9 {
			hits++
		}
	}
	if hits < 5 {
		t.Fatalf("top-5 precision = %d/5 after %d labels", hits, s.NumLabels())
	}
	// The learned model must score the truly-best view at least as high as
	// the truly-worst view by a clear margin.
	best, worst := 0, 0
	for i := range truth {
		if truth[i] > truth[best] {
			best = i
		}
		if truth[i] < truth[worst] {
			worst = i
		}
	}
	if s.Predict(best) <= s.Predict(worst) {
		t.Errorf("predictions do not separate best (%v) from worst (%v)",
			s.Predict(best), s.Predict(worst))
	}
}

func TestSeekerTopK(t *testing.T) {
	m := buildMatrix(t, 0)
	s, _ := NewSeeker(m, Config{K: 7}, false)
	top := s.TopK()
	if len(top) != 7 {
		t.Fatalf("topk = %d", len(top))
	}
	// Before feedback all predictions are 0: deterministic index order.
	for i, v := range top {
		if v != i {
			t.Errorf("untrained topk = %v", top)
			break
		}
	}
	// After feedback, the list is sorted by prediction.
	next, _ := s.NextViews()
	_ = s.Feedback(next[0], 1.0)
	next, _ = s.NextViews()
	_ = s.Feedback(next[0], 0.0)
	top = s.TopK()
	for i := 1; i < len(top); i++ {
		if s.Predict(top[i-1]) < s.Predict(top[i]) {
			t.Error("topk not sorted by prediction")
		}
	}
}

func TestSeekerWithRefinement(t *testing.T) {
	m := buildMatrix(t, 0.2)
	s, err := NewSeeker(m, Config{K: 5}, true)
	if err != nil {
		t.Fatal(err)
	}
	before := m.ExactCount()
	next, _ := s.NextViews()
	if err := s.Feedback(next[0], 0.8); err != nil {
		t.Fatal(err)
	}
	if m.ExactCount() <= before {
		t.Error("feedback should trigger refinement of rough rows")
	}
}

func TestSeekerRelabelSameView(t *testing.T) {
	m := buildMatrix(t, 0)
	s, _ := NewSeeker(m, Config{}, false)
	_ = s.Feedback(3, 0.4)
	_ = s.Feedback(3, 0.6)
	if s.NumLabels() != 1 {
		t.Errorf("relabelling must not duplicate: %d", s.NumLabels())
	}
	idx, labels := s.Labels()
	if len(idx) != 1 || labels[0] != 0.6 {
		t.Errorf("labels = %v %v", idx, labels)
	}
}

func TestSeekerCustomStrategy(t *testing.T) {
	m := buildMatrix(t, 0)
	s, err := NewSeeker(m, Config{Strategy: &active.Random{Seed: 1}, K: 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	// Exit cold start first.
	next, _ := s.NextViews()
	_ = s.Feedback(next[0], 1.0)
	next, _ = s.NextViews()
	_ = s.Feedback(next[0], 0.0)
	if _, err := s.NextViews(); err != nil {
		t.Fatalf("custom strategy selection failed: %v", err)
	}
}

func TestSessionStateRoundTrip(t *testing.T) {
	m := buildMatrix(t, 0)
	s1, err := NewSeeker(m, Config{K: 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		next, err := s1.NextViews()
		if err != nil {
			t.Fatal(err)
		}
		label := 0.1 * float64(i+1)
		if err := s1.Feedback(next[0], label); err != nil {
			t.Fatal(err)
		}
	}
	st := s1.State()
	if st.Version != stateVersion || len(st.Views) != 6 {
		t.Fatalf("state = %+v", st)
	}

	s2, err := NewSeeker(m, Config{K: 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(st); err != nil {
		t.Fatal(err)
	}
	if s2.NumLabels() != 6 {
		t.Fatalf("restored labels = %d", s2.NumLabels())
	}
	// Same labels → same estimator → same recommendation.
	t1, t2 := s1.TopK(), s2.TopK()
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("restored topk differs at %d: %d vs %d", i, t1[i], t2[i])
		}
	}
	// Cold-start position restored too: next selection matches.
	n1, err := s1.NextViews()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := s2.NextViews()
	if err != nil {
		t.Fatal(err)
	}
	if len(n1) != len(n2) || n1[0] != n2[0] {
		t.Errorf("next views diverge after restore: %v vs %v", n1, n2)
	}
}

func TestRestoreValidation(t *testing.T) {
	m := buildMatrix(t, 0)
	s, _ := NewSeeker(m, Config{}, false)
	if err := s.Restore(SessionState{Version: 99}); err == nil {
		t.Error("wrong version should fail")
	}
	if err := s.Restore(SessionState{Version: stateVersion, Views: []int{1}, Labels: nil}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	_ = s.Feedback(0, 0.5)
	if err := s.Restore(SessionState{Version: stateVersion}); err == nil {
		t.Error("restore into non-fresh session should fail")
	}
	s2, _ := NewSeeker(m, Config{}, false)
	if err := s2.Restore(SessionState{Version: stateVersion, Views: []int{-4}, Labels: []float64{0.5}}); err == nil {
		t.Error("bad view index should fail")
	}
}
