package core

import (
	"testing"
	"time"

	"viewseeker/internal/feature"
)

// TestRefinedSessionMatchesExactSession drives an optimised session long
// enough to refresh the whole promising region, then checks that (a) every
// refreshed row equals the exact matrix's row bit-for-bit and (b) the
// final recommendation matches what an exact session recommends.
func TestRefinedSessionMatchesExactSession(t *testing.T) {
	exact := buildMatrix(t, 0)
	partial := buildMatrix(t, 0.2)

	// Hidden utility: u* #4 (0.5·EMD + 0.5·KL) over min-max-normalised
	// exact features (inlined here — importing internal/sim from this
	// package's tests would be an import cycle).
	scores := normalisedCombo(exact, map[int]float64{0: 0.5, 1: 0.5}) // KL=0, EMD=1
	maxScore := 0.0
	for _, s := range scores {
		if s > maxScore {
			maxScore = s
		}
	}
	label := func(i int) float64 {
		l := scores[i] / maxScore
		if l > 1 {
			return 1
		}
		return l
	}

	run := func(m *feature.Matrix, refine bool) *Seeker {
		s, err := NewSeeker(m, Config{K: 5, RefineBudget: time.Second}, refine)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			next, err := s.NextViews()
			if err != nil {
				t.Fatal(err)
			}
			if len(next) == 0 {
				break
			}
			if err := s.Feedback(next[0], label(next[0])); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	sExact := run(exact, false)
	sPart := run(partial, true)

	// (a) Refreshed rows equal the exact rows.
	for i, isExact := range partial.Exact {
		if !isExact {
			continue
		}
		for j := range partial.Rows[i] {
			if partial.Rows[i][j] != exact.Rows[i][j] {
				t.Fatalf("refreshed row %d differs at feature %d", i, j)
			}
		}
	}
	if partial.ExactCount() == 0 {
		t.Fatal("session never refreshed anything")
	}
	if partial.ExactCount() == partial.Len() {
		t.Log("note: every view was refreshed; pruning saved nothing at this scale")
	}

	// (b) The two sessions' recommendations agree on true utility: the
	// optimised top-5 total u* must be within a whisker of the exact one.
	sum := func(s *Seeker) float64 {
		total := 0.0
		for _, v := range s.TopK() {
			total += scores[v]
		}
		return total
	}
	if diff := sum(sExact) - sum(sPart); diff > 0.05*sum(sExact) {
		t.Errorf("optimised recommendation lost %.3f of %.3f true utility", diff, sum(sExact))
	}
}

// normalisedCombo evaluates a weighted sum of min-max-normalised feature
// columns over every row.
func normalisedCombo(m *feature.Matrix, weights map[int]float64) []float64 {
	out := make([]float64, m.Len())
	for col, w := range weights {
		lo, hi := m.Rows[0][col], m.Rows[0][col]
		for _, row := range m.Rows {
			if row[col] < lo {
				lo = row[col]
			}
			if row[col] > hi {
				hi = row[col]
			}
		}
		if hi <= lo {
			continue
		}
		for i, row := range m.Rows {
			out[i] += w * (row[col] - lo) / (hi - lo)
		}
	}
	return out
}

// TestRefinePriorityShape checks the ordering contract: the labelled view
// first, no duplicates, no exact rows, capped length, aggregate siblings
// adjacent to their family head.
func TestRefinePriorityShape(t *testing.T) {
	partial := buildMatrix(t, 0.2)
	s, err := NewSeeker(partial, Config{K: 3, RefineCap: 12}, true)
	if err != nil {
		t.Fatal(err)
	}
	got := s.refinePriority(7)
	if len(got) == 0 || len(got) > 12 {
		t.Fatalf("priority length = %d", len(got))
	}
	if got[0] != 7 {
		t.Errorf("labelled view must come first, got %d", got[0])
	}
	seen := map[int]bool{}
	for _, i := range got {
		if seen[i] {
			t.Fatalf("duplicate %d in priority", i)
		}
		seen[i] = true
		if partial.Exact[i] {
			t.Fatalf("exact row %d in priority", i)
		}
	}
	// The labelled view's aggregate siblings must be in the list (the cap
	// is 12 > family size 5).
	spec := partial.Specs[7]
	for j, other := range partial.Specs {
		if other.Dimension == spec.Dimension && other.Measure == spec.Measure && other.Bins == spec.Bins {
			if !seen[j] && !partial.Exact[j] {
				t.Errorf("sibling %d (%s) missing from priority", j, other)
			}
		}
	}
}

// TestRefineCapActuallyPrunes: with a tiny cap and few labels, most of
// the space must stay rough — the pruning the optimisation promises.
func TestRefineCapActuallyPrunes(t *testing.T) {
	partial := buildMatrix(t, 0.2)
	s, err := NewSeeker(partial, Config{K: 3, RefineCap: 6, RefineBudget: time.Hour}, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		next, err := s.NextViews()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Feedback(next[0], 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if got := partial.ExactCount(); got > 4*6 {
		t.Errorf("refreshed %d rows with cap 6 over 4 labels", got)
	}
	if partial.AllExact() {
		t.Error("small cap must leave the tail rough")
	}
}
