package core

// MemoryBytes estimates the resident heap bytes of the session's
// estimator state: the label map, labelling order, the incremental-refit
// sufficient statistics (k×k Gram triangle plus the per-feature vectors),
// the whole-space scaler and the standardisation workspace. Part of the
// per-session accounting behind the server's eviction budget (DESIGN.md
// §16); an estimate of the dominant allocations, not a heap census. The
// matrix itself is accounted by the facade. Call under the same
// serialisation as the other session operations.
func (s *Seeker) MemoryBytes() int64 {
	// A map entry (int key, float64 value) amortises to ~48 bytes with
	// bucket overhead.
	b := int64(len(s.labeled))*48 + int64(cap(s.order))*8
	k := int64(len(s.matrix.Names))
	if s.suff != nil {
		b += k*k*8 + 2*k*8 // Sxx + Sx/Sxy
	}
	if s.scaler != nil {
		b += 2 * k * 8 // Mean + Std
	}
	b += int64(cap(s.suffYs))*8 + int64(cap(s.zbuf))*8
	return b
}
