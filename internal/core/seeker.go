package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"viewseeker/internal/active"
	"viewseeker/internal/feature"
	"viewseeker/internal/ml"
	"viewseeker/internal/obs"
	"viewseeker/internal/optimize"
)

// Seeker runs Algorithm 1 over a pre-computed feature matrix: present
// views, absorb labels, refit the view utility estimator, recommend top-k.
// It is the engine behind the public viewseeker.Seeker facade.
type Seeker struct {
	matrix *feature.Matrix
	cfg    Config

	labeled map[int]float64
	order   []int // labelling order, for reporting

	utility *ml.LinearRegression
	cold    *active.ColdStart
	refiner *optimize.Refiner

	havePositive bool
	haveNegative bool

	// Incremental-refit state. The sufficient statistics absorb one
	// standardised row per new label; they are valid only for the matrix
	// version (and whole-space scaler) they were accumulated under, so any
	// row refresh invalidates them and the next refit rebuilds from the
	// label history. suffYs records the labels absorbed so far — a
	// relabelled view changes an already-absorbed y, which rank-1 updates
	// cannot express, so it too forces a rebuild.
	suff      *ml.SuffStats
	suffN     int
	suffYs    []float64
	scaler    *ml.Scaler
	scalerVer uint64
	scalerSet bool
	zbuf      []float64
}

// NewSeeker builds a session over the matrix. When the matrix was computed
// partially (α-sampling), pass withRefinement true to enable per-iteration
// incremental refinement.
func NewSeeker(m *feature.Matrix, cfg Config, withRefinement bool) (*Seeker, error) {
	if m == nil || m.Len() == 0 {
		return nil, fmt.Errorf("core: seeker needs a non-empty feature matrix")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Seeker{
		matrix:  m,
		cfg:     cfg,
		labeled: make(map[int]float64),
		utility: ml.NewLinearRegression(cfg.Ridge),
		cold:    &active.ColdStart{Seed: cfg.ColdStartSeed},
	}
	if withRefinement {
		s.refiner = optimize.NewRefiner(m)
		s.refiner.Workers = cfg.Workers
		s.refiner.OnRow = cfg.RefineHook
	}
	return s, nil
}

// Matrix exposes the session's feature matrix.
func (s *Seeker) Matrix() *feature.Matrix { return s.matrix }

// NumLabels returns how many labels have been collected.
func (s *Seeker) NumLabels() int { return len(s.labeled) }

// Labels returns the labelling history in order: view indices paired with
// the labels given.
func (s *Seeker) Labels() (indices []int, labels []float64) {
	indices = append(indices, s.order...)
	for _, i := range indices {
		labels = append(labels, s.labeled[i])
	}
	return indices, labels
}

// InColdStart reports whether the session is still acquiring its first
// positive and negative labels.
func (s *Seeker) InColdStart() bool { return !(s.havePositive && s.haveNegative) }

// NextViews selects the views to present this iteration: the cold-start
// walk until both a positive and a negative label exist, then the
// configured query strategy. It returns nil when every view is labelled.
func (s *Seeker) NextViews() ([]int, error) {
	return s.NextViewsCtx(context.Background())
}

// NextViewsCtx is NextViews with per-iteration selection timing recorded
// against the context's observability registry and tracer (the
// active-learning layer's half of the interaction loop; FeedbackCtx
// records the other half). Selection itself never blocks on the context —
// it is pure in-memory ranking — so there is no cancellation semantics to
// define here; the context only carries instrumentation.
func (s *Seeker) NextViewsCtx(ctx context.Context) ([]int, error) {
	if len(s.labeled) >= s.matrix.Len() {
		return nil, nil
	}
	_, span := obs.StartSpan(ctx, "select")
	defer span.End()
	reg := obs.RegistryFrom(ctx)
	start := time.Time{}
	if reg != nil {
		start = time.Now()
	}
	var idxs []int
	var err error
	if s.InColdStart() {
		idxs, err = s.cold.Select(s.matrix.Rows, s.labeled, s.cfg.M)
	} else {
		idxs, err = s.cfg.Strategy.Select(s.matrix.Rows, s.labeled, s.cfg.M)
	}
	if reg != nil {
		reg.Histogram("viewseeker_active_select_seconds", obs.DurationBuckets).
			ObserveDuration(time.Since(start))
		reg.Counter("viewseeker_active_selects_total").Inc()
	}
	return idxs, err
}

// Feedback records the user's label (0–1) for a view, runs the incremental
// refinement budget, and refits the view utility estimator on everything
// labelled so far.
func (s *Seeker) Feedback(viewIdx int, label float64) error {
	return s.FeedbackCtx(context.Background(), viewIdx, label)
}

// FeedbackCtx is Feedback under a context. The cancellation contract keeps
// session state consistent: a context that is already done on entry
// records nothing and returns its error, while cancellation observed
// mid-call only aborts the optional incremental refinement — it is
// latency-hiding work, so stopping it is equivalent to an exhausted
// budget — and the label recording and estimator refit still complete.
// Either way the caller never sees a half-applied label.
func (s *Seeker) FeedbackCtx(ctx context.Context, viewIdx int, label float64) error {
	if viewIdx < 0 || viewIdx >= s.matrix.Len() {
		return fmt.Errorf("core: view index %d out of range [0, %d)", viewIdx, s.matrix.Len())
	}
	if label < 0 || label > 1 {
		return fmt.Errorf("core: label %g outside [0, 1]", label)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	ctx, span := obs.StartSpan(ctx, "feedback")
	defer span.End()
	if reg := obs.RegistryFrom(ctx); reg != nil {
		// The full label→refine→refit round trip — the latency the user
		// actually waits out between giving a label and seeing the next
		// recommendation. The acceptance target for interactive scale is
		// < 1 s per iteration (see cmd/bench -online).
		start := time.Now()
		defer func() {
			reg.Histogram("viewseeker_feedback_iteration_seconds", obs.DurationBuckets).
				ObserveDuration(time.Since(start))
		}()
	}
	obs.RegistryFrom(ctx).Counter("viewseeker_active_labels_total").Inc()
	if _, dup := s.labeled[viewIdx]; !dup {
		s.order = append(s.order, viewIdx)
	}
	s.labeled[viewIdx] = label
	if label >= s.cfg.PositiveThreshold {
		s.havePositive = true
	} else {
		s.haveNegative = true
	}

	// Spend the latency budget refining rough features (Section 3.3): the
	// labelled view first (the estimator must train on exact features),
	// then the most promising rough views in estimator-rank order, up to
	// RefineCap rows — the work that hides inside the user's think time.
	// Views that never reach the front of this queue are pruned: their
	// exact features are simply never computed.
	if s.refiner != nil && !s.refiner.Done() {
		if _, err := s.refiner.RefineCtx(ctx, s.refinePriority(viewIdx), s.cfg.RefineBudget); err != nil {
			// Cancellation stops the optional work, not the feedback: rows
			// already refreshed stay exact, and the refit below proceeds on
			// the matrix as it stands. Real refresh failures still abort.
			if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				return err
			}
		}
	}
	_, refitSpan := obs.StartSpan(ctx, "feedback.refit")
	defer refitSpan.End()
	if reg := obs.RegistryFrom(ctx); reg != nil {
		start := time.Now()
		defer func() {
			reg.Histogram("viewseeker_active_refit_seconds", obs.DurationBuckets).
				ObserveDuration(time.Since(start))
		}()
	}
	return s.refit(ctx)
}

// refinePriority orders the rough rows one iteration may refresh: first
// the view just labelled (the estimator must train on exact features),
// then the current top-k (they decide what the user sees), then the
// remaining views in estimator-rank order, truncated to the refinement
// cap. Views never reaching the front of this queue are the "less
// promising" calculations the optimisation prunes.
func (s *Seeker) refinePriority(justLabeled int) []int {
	limit := s.cfg.RefineCap
	out := make([]int, 0, limit)
	seen := make(map[int]bool, limit)
	push := func(i int) {
		if len(out) < limit && !seen[i] && !s.matrix.Exact[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	// Pushing a view also pushes its aggregate siblings — the views over
	// the same (dimension, bins, measure). Their exact features come from
	// the same narrow scan, so upgrading them is nearly free, and it
	// concentrates the scans the cap pays for onto fewer column families.
	pushFamily := func(i int) {
		push(i)
		spec := s.matrix.Specs[i]
		for j, other := range s.matrix.Specs {
			if other.Dimension == spec.Dimension && other.Bins == spec.Bins && other.Measure == spec.Measure {
				push(j)
			}
		}
	}
	pushFamily(justLabeled)
	for _, i := range s.TopK() {
		pushFamily(i)
	}
	for _, i := range s.rankAll() {
		if len(out) >= limit {
			break
		}
		pushFamily(i)
	}
	return out
}

// refit retrains the utility estimator on the labelled set. It keeps
// sufficient statistics (ml.SuffStats) keyed to the matrix version: while
// the matrix is stable — refinement finished, or none configured — each
// new label is absorbed as a rank-1 update and the solve costs O(k²)
// regardless of how many labels exist. Any matrix refresh bumps the
// version, which invalidates both the whole-space scaler and the
// statistics, and the next refit rebuilds them from the label history
// (O(labels·k²) — labels stay small, a user gives a few dozen at most).
// Either path runs the identical Add sequence over the current rows, so a
// restored session replaying its history refits bit-identically to the
// session it snapshots (see SessionState).
func (s *Seeker) refit(ctx context.Context) error {
	if len(s.order) == 0 {
		return nil
	}
	reg := obs.RegistryFrom(ctx)
	// Standardise against the whole view space, not just the labelled
	// rows: the estimator predicts over every view, and labelled-only
	// statistics would let near-constant-among-labels features explode on
	// the rest of the space. Matrix rows change under refinement, so the
	// scaler is keyed to the matrix version and refitted when it moves
	// (cheap: |views| × |features|).
	ver := s.matrix.Version()
	if !s.scalerSet || ver != s.scalerVer {
		scaler, err := ml.FitScaler(s.matrix.Rows)
		if err != nil {
			return err
		}
		s.scaler = scaler
		s.scalerVer = ver
		s.scalerSet = true
		s.suff = nil // statistics are bound to the scaler's feature space
	}
	// A relabelled view rewrites an absorbed y in place; rank-1 updates
	// cannot undo that, so a history prefix mismatch forces a rebuild.
	if s.suff != nil && s.suffN <= len(s.order) {
		for i := 0; i < s.suffN; i++ {
			if s.suffYs[i] != s.labeled[s.order[i]] {
				s.suff = nil
				break
			}
		}
	} else {
		s.suff = nil
	}
	k := len(s.matrix.Rows[0])
	if s.suff == nil {
		s.suff = ml.NewSuffStats(k)
		s.suffN = 0
		s.suffYs = s.suffYs[:0]
		reg.Counter("viewseeker_refit_rebuilds_total").Inc()
	} else {
		reg.Counter("viewseeker_refit_incremental_total").Inc()
	}
	if len(s.zbuf) != k {
		s.zbuf = make([]float64, k)
	}
	for _, i := range s.order[s.suffN:] {
		y := s.labeled[i]
		s.scaler.TransformInto(s.matrix.Rows[i], s.zbuf)
		if err := s.suff.Add(s.zbuf, y); err != nil {
			return err
		}
		s.suffYs = append(s.suffYs, y)
		s.suffN++
	}
	s.utility.ExternalScaler = s.scaler
	return s.utility.FitSufficient(s.suff)
}

// Predict returns the current estimator's utility for one view (0 before
// any feedback).
func (s *Seeker) Predict(viewIdx int) float64 {
	return s.utility.Predict(s.matrix.Rows[viewIdx])
}

// rankAll returns every view index sorted by predicted utility descending,
// ties by index.
func (s *Seeker) rankAll() []int {
	scores := s.utility.PredictAll(s.matrix.Rows)
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// TopK returns the current top-k recommendation (view indices, best
// first).
func (s *Seeker) TopK() []int {
	ranked := s.rankAll()
	k := s.cfg.K
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}

// Estimator exposes the trained view utility estimator — the discovered
// u_p() approximating the user's ideal utility function.
func (s *Seeker) Estimator() *ml.LinearRegression { return s.utility }

// Weights returns the estimator's learned feature weights (Eq. 4's β,
// unnormalised) and intercept, aligned with matrix feature order.
func (s *Seeker) Weights() ([]float64, float64) { return s.utility.Weights() }
