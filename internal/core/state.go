package core

import "fmt"

// SessionState is the serialisable record of an interactive session: the
// labelling history in order. It is sufficient to reconstruct the session
// — estimators are deterministic functions of the labelled set, so Restore
// simply replays the feedback.
type SessionState struct {
	Version int       `json:"version"`
	Views   []int     `json:"views"`
	Labels  []float64 `json:"labels"`
}

// stateVersion is the current SessionState schema version.
const stateVersion = 1

// State snapshots the session.
func (s *Seeker) State() SessionState {
	views, labels := s.Labels()
	return SessionState{Version: stateVersion, Views: views, Labels: labels}
}

// Restore replays a snapshot into the session. It requires a fresh
// session (no labels yet) over a view space at least as large as the one
// the snapshot was taken from. Estimators and recommendations come back
// identical; the only non-reconstructed detail is the cold-start cursor —
// a session restored while still in cold start rewalks the feature list
// from the first feature (skipping the already-labelled views).
func (s *Seeker) Restore(st SessionState) error {
	if st.Version != stateVersion {
		return fmt.Errorf("core: session state version %d, want %d", st.Version, stateVersion)
	}
	if len(st.Views) != len(st.Labels) {
		return fmt.Errorf("core: state has %d views but %d labels", len(st.Views), len(st.Labels))
	}
	if s.NumLabels() != 0 {
		return fmt.Errorf("core: restore requires a fresh session, this one has %d labels", s.NumLabels())
	}
	for i, v := range st.Views {
		if err := s.Feedback(v, st.Labels[i]); err != nil {
			return fmt.Errorf("core: replaying label %d: %w", i, err)
		}
	}
	return nil
}
