// Package core implements the ViewSeeker session loop of Algorithm 1: the
// cold-start and uncertainty-sampling stages, the linear-regression view
// utility estimator, top-k recommendation, and the hook into the
// incremental feature refinement optimisation.
//
// # Contracts
//
// Determinism: selection and refitting are deterministic functions of
// (configuration, labelling history) — the property that lets the journal
// replay of internal/store reconstruct a session's estimator exactly.
//
// Cancellation (DESIGN.md §10): FeedbackCtx with a context that is dead
// on entry records nothing and returns the context's error; cancellation
// observed mid-call aborts only the optional incremental refinement (it
// is latency-hiding work, equivalent to an exhausted budget) — the label
// recording and estimator refit still complete, so a caller never sees a
// half-applied label and in-memory state never diverges from the journal.
// NextViewsCtx is pure in-memory ranking and does not block, so its
// context carries only instrumentation.
//
// Observability: NextViewsCtx and FeedbackCtx record per-iteration
// selection, refit and label metrics plus "select"/"feedback" spans
// against the context's obs registry; without one they are bit-identical
// to the plain Next/Feedback paths.
package core
