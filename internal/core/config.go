package core

import (
	"fmt"
	"time"

	"viewseeker/internal/active"
)

// Config parameterises a Seeker session. The zero value is usable; each
// field documents its default.
type Config struct {
	// K is the recommendation size (default 10).
	K int
	// M is the number of views presented per iteration (Table 1 default 1).
	M int
	// PositiveThreshold splits interest labels into positive/negative for
	// the uncertainty estimator and the cold-start exit test (default 0.5).
	PositiveThreshold float64
	// Ridge is the view utility estimator's regularisation (default 1e-4:
	// small enough for near-exact recovery of linear utility targets,
	// large enough that near-degenerate feature directions cannot soak up
	// label noise).
	Ridge float64
	// Strategy is the main-phase query strategy (default
	// &active.Uncertainty{}).
	Strategy active.Strategy
	// ColdStartSeed seeds the cold-start random fallback.
	ColdStartSeed int64
	// RefineBudget is the per-iteration latency budget tl granted to the
	// incremental feature refiner; it only matters when the Seeker is built
	// from a partial matrix (Table 1 default 1s).
	RefineBudget time.Duration
	// RefineCap bounds how many rough rows one iteration may refresh, on
	// top of the time budget. The paper's saving comes from *pruning*:
	// low-ranked views never get their exact features computed, so the cap
	// must be small relative to the view space (default 2·K + M).
	RefineCap int
	// Workers bounds how many rough rows the refiner refreshes
	// concurrently per iteration: more workers hide more exact
	// recomputation inside the same per-iteration latency budget. ≤ 0
	// selects runtime.NumCPU(); 1 forces sequential refinement (required
	// when custom utility features are not safe for concurrent use).
	Workers int
	// RefineHook, when non-nil, is called once per feature row the
	// incremental refiner refreshes, with the view index. It exists so
	// cancellation tests and instrumentation can observe refinement
	// progress; it runs on the refresh worker goroutines and must be safe
	// for concurrent use when Workers != 1.
	RefineHook func(viewIdx int)
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 10
	}
	if c.M <= 0 {
		c.M = 1
	}
	if c.PositiveThreshold <= 0 {
		c.PositiveThreshold = 0.5
	}
	if c.Ridge <= 0 {
		c.Ridge = 1e-4
	}
	if c.Strategy == nil {
		c.Strategy = &active.Uncertainty{Threshold: c.PositiveThreshold}
	}
	if c.RefineBudget <= 0 {
		c.RefineBudget = time.Second
	}
	if c.RefineCap <= 0 {
		// A per-iteration constant, deliberately NOT scaled with K: the
		// cap models how much exact recomputation hides inside one user
		// think-pause, which depends on the machine and the data, not on
		// how many views the user asked to see.
		c.RefineCap = 24
	}
	return c
}

func (c Config) validate() error {
	if c.K < 0 || c.M < 0 {
		return fmt.Errorf("core: negative K or M")
	}
	if c.PositiveThreshold < 0 || c.PositiveThreshold > 1 {
		return fmt.Errorf("core: positive threshold %g outside [0, 1]", c.PositiveThreshold)
	}
	return nil
}
