package explain

import (
	"fmt"
	"math"
	"sort"

	"viewseeker/internal/metric"
	"viewseeker/internal/view"
)

// Kind classifies a finding.
type Kind string

// The finding kinds, roughly ordered by how specific they are.
const (
	KindOutstandingBin Kind = "outstanding-bin" // one bar carries the deviation
	KindMissingBin     Kind = "missing-bin"     // the subset is absent where the population is not
	KindTrendReversal  Kind = "trend-reversal"  // subset trends against the population
	KindSignificance   Kind = "significance"    // χ² test verdict on the whole view
	KindConcentration  Kind = "concentration"   // subset mass concentrated in few bars
	KindNothingNotable Kind = "nothing-notable" // the view looks like the population
)

// Finding is one explanation, scored for ranking (higher = stronger).
type Finding struct {
	Kind    Kind
	Score   float64
	Message string
}

// Explain inspects a pair and returns findings sorted strongest-first.
// It never returns an empty slice: when nothing stands out it says so.
func Explain(p *view.Pair) ([]Finding, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tgt := p.Target.Distribution()
	ref := p.Reference.Distribution()
	var out []Finding

	// Outstanding and missing bins.
	type binDiff struct {
		idx  int
		diff float64
	}
	var diffs []binDiff
	for i := range tgt {
		diffs = append(diffs, binDiff{i, tgt[i] - ref[i]})
	}
	sort.Slice(diffs, func(a, b int) bool {
		return math.Abs(diffs[a].diff) > math.Abs(diffs[b].diff)
	})
	if top := diffs[0]; math.Abs(top.diff) >= 0.15 {
		direction := "over-represented"
		if top.diff < 0 {
			direction = "under-represented"
		}
		out = append(out, Finding{
			Kind:  KindOutstandingBin,
			Score: math.Abs(top.diff),
			Message: fmt.Sprintf("%s is strongly %s in the subset: it carries %.0f%% of the chart's total vs %.0f%% on the reference side",
				p.Target.Labels[top.idx], direction, tgt[top.idx]*100, ref[top.idx]*100),
		})
	}
	for i := range tgt {
		if p.Target.Counts[i] == 0 && ref[i] >= 0.1 {
			out = append(out, Finding{
				Kind:  KindMissingBin,
				Score: ref[i],
				Message: fmt.Sprintf("the subset has no data at all in %s, which carries %.0f%% of the reference chart",
					p.Target.Labels[i], ref[i]*100),
			})
		}
	}

	// Trend reversal (meaningful for ordered bins; harmless elsewhere).
	tSlope, rSlope := p.Target.TrendSlope(), p.Reference.TrendSlope()
	if tSlope*rSlope < 0 && math.Abs(tSlope-rSlope) >= 0.1 {
		dir := "rises"
		opp := "falls"
		if tSlope < 0 {
			dir, opp = opp, dir
		}
		out = append(out, Finding{
			Kind:  KindTrendReversal,
			Score: math.Abs(tSlope - rSlope),
			Message: fmt.Sprintf("across the bins the subset %s where the population %s (normalised slopes %+.2f vs %+.2f)",
				dir, opp, tSlope, rSlope),
		})
	}

	// Statistical significance of the overall deviation.
	pScore, err := metric.PValueScore(p.Target.Counts, ref)
	if err != nil {
		return nil, err
	}
	if pScore >= 0.95 {
		out = append(out, Finding{
			Kind:  KindSignificance,
			Score: pScore - 0.9,
			Message: fmt.Sprintf("the deviation is statistically significant (p < %.3g under a χ² test against the population distribution)",
				1-pScore+1e-3),
		})
	}

	// Concentration: more than half the subset's mass in one bar while the
	// population spreads out.
	maxT, maxIdx := 0.0, 0
	for i, v := range tgt {
		if v > maxT {
			maxT, maxIdx = v, i
		}
	}
	if maxT >= 0.5 && ref[maxIdx] <= maxT/2 {
		out = append(out, Finding{
			Kind:  KindConcentration,
			Score: maxT - ref[maxIdx],
			Message: fmt.Sprintf("over half the subset (%.0f%%) falls in %s alone",
				maxT*100, p.Target.Labels[maxIdx]),
		})
	}

	if len(out) == 0 {
		l1, err := metric.L1(tgt, ref)
		if err != nil {
			return nil, err
		}
		out = append(out, Finding{
			Kind:    KindNothingNotable,
			Score:   0,
			Message: fmt.Sprintf("the subset closely follows the population on this view (L1 distance %.3f)", l1),
		})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out, nil
}

// Summarize renders the strongest findings (up to max) as a bulleted
// plain-text block.
func Summarize(p *view.Pair, max int) (string, error) {
	findings, err := Explain(p)
	if err != nil {
		return "", err
	}
	if max <= 0 || max > len(findings) {
		max = len(findings)
	}
	s := ""
	for _, f := range findings[:max] {
		s += "- " + f.Message + "\n"
	}
	return s, nil
}
