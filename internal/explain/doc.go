// Package explain turns a recommended view into reasons a person can act
// on. Recommenders that only output "utility 0.83" leave the analyst to
// reverse-engineer what the chart says; this package inspects a view pair
// and produces ranked, natural-language findings — which bar drives the
// deviation, whether the subset trends against the population, whether
// the difference is statistically meaningful — in the spirit of the top-k
// insight extraction work the paper draws its p-value component from
// [26].
//
// # Contracts
//
// Explanations are pure functions of the view pair: no state, no
// randomness, inputs never mutated. Identical pairs always yield the
// same findings in the same order (scores tie-break by finding kind),
// so explanations can be regenerated on demand rather than stored.
package explain
