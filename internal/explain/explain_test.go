package explain

import (
	"strings"
	"testing"

	"viewseeker/internal/view"
)

func pairOf(labels []string, tgtCounts, refCounts []float64) *view.Pair {
	mk := func(counts []float64) *view.Histogram {
		h := &view.Histogram{
			Labels: labels,
			Values: append([]float64(nil), counts...),
			Counts: append([]float64(nil), counts...),
			Sums:   make([]float64, len(counts)),
			SumSqs: make([]float64, len(counts)),
		}
		return h
	}
	return &view.Pair{
		Spec:      view.Spec{Dimension: "d", Measure: "m", Agg: "COUNT"},
		Target:    mk(tgtCounts),
		Reference: mk(refCounts),
	}
}

func kinds(fs []Finding) map[Kind]bool {
	out := map[Kind]bool{}
	for _, f := range fs {
		out[f.Kind] = true
	}
	return out
}

func TestExplainOutstandingBin(t *testing.T) {
	p := pairOf([]string{"a", "b", "c"}, []float64{80, 10, 10}, []float64{100, 100, 100})
	fs, err := Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	ks := kinds(fs)
	if !ks[KindOutstandingBin] {
		t.Errorf("expected outstanding-bin finding, got %+v", fs)
	}
	if !strings.Contains(fs[0].Message, "a") {
		t.Errorf("strongest finding should name bin a: %q", fs[0].Message)
	}
	// Findings are sorted by score.
	for i := 1; i < len(fs); i++ {
		if fs[i-1].Score < fs[i].Score {
			t.Error("findings not sorted by score")
		}
	}
}

func TestExplainMissingBin(t *testing.T) {
	p := pairOf([]string{"a", "b"}, []float64{50, 0}, []float64{50, 50})
	fs, err := Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	if !kinds(fs)[KindMissingBin] {
		t.Errorf("expected missing-bin finding, got %+v", fs)
	}
}

func TestExplainTrendReversal(t *testing.T) {
	p := pairOf([]string{"q1", "q2", "q3", "q4"},
		[]float64{10, 20, 30, 40}, // rising
		[]float64{40, 30, 20, 10}) // falling
	fs, err := Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	if !kinds(fs)[KindTrendReversal] {
		t.Errorf("expected trend-reversal finding, got %+v", fs)
	}
	for _, f := range fs {
		if f.Kind == KindTrendReversal && !strings.Contains(f.Message, "rises") {
			t.Errorf("trend message = %q", f.Message)
		}
	}
}

func TestExplainSignificance(t *testing.T) {
	// Big counts with a clear skew: significant.
	p := pairOf([]string{"a", "b"}, []float64{900, 100}, []float64{500, 500})
	fs, err := Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	if !kinds(fs)[KindSignificance] {
		t.Errorf("expected significance finding, got %+v", fs)
	}
}

func TestExplainConcentration(t *testing.T) {
	p := pairOf([]string{"a", "b", "c", "d"}, []float64{70, 10, 10, 10}, []float64{25, 25, 25, 25})
	fs, err := Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	if !kinds(fs)[KindConcentration] {
		t.Errorf("expected concentration finding, got %+v", fs)
	}
}

func TestExplainNothingNotable(t *testing.T) {
	p := pairOf([]string{"a", "b"}, []float64{51, 49}, []float64{50, 50})
	fs, err := Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Kind != KindNothingNotable {
		t.Errorf("expected only nothing-notable, got %+v", fs)
	}
}

func TestExplainValidates(t *testing.T) {
	bad := &view.Pair{
		Target:    &view.Histogram{Values: []float64{1}},
		Reference: &view.Histogram{Values: []float64{1, 2}},
	}
	if _, err := Explain(bad); err == nil {
		t.Error("mismatched pair should fail")
	}
}

func TestSummarize(t *testing.T) {
	p := pairOf([]string{"a", "b"}, []float64{900, 100}, []float64{500, 500})
	s, err := Summarize(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) == 0 || len(lines) > 2 {
		t.Fatalf("summary lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "- ") {
		t.Errorf("summary format: %q", lines[0])
	}
	// max <= 0 means all findings.
	all, err := Summarize(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < len(s) {
		t.Error("max=0 should include every finding")
	}
}
