package dataset

import "math/rand"

// DIABConfig parameterises the diabetic-patients dataset. The paper uses
// the UCI diabetes CSV after pruning sparse attributes, leaving 100k
// records, 7 dimension attributes and 8 measure attributes (Table 1). The
// original file is not redistributable inside this offline repository, so
// GenerateDIAB synthesises a dataset with the same post-preprocessing
// shape: the same attribute counts and cardinalities, categorical
// dimensions, count-like integer measures, and measure distributions that
// depend on the dimension values (so deviation-based utilities induce
// non-trivial view rankings). DESIGN.md records this substitution.
type DIABConfig struct {
	Rows int
	Seed int64
}

// DefaultDIABConfig returns the paper's DIAB scale.
func DefaultDIABConfig() DIABConfig { return DIABConfig{Rows: 100_000, Seed: 2} }

// DIABQuery is the canonical query carving DQ out of DIAB. The generator
// assigns diag_group="diabetes" with probability 5% and age_group="[90-100)"
// with probability 10%, independently, so the predicate selects ~0.5% of
// the records — the Table 1 cardinality ratio.
const DIABQuery = "SELECT * FROM diab WHERE diag_group = 'diabetes' AND age_group = '[90-100)'"

// diabDim describes one categorical dimension: its values and sampling
// weights (weights need not sum to 1; they are normalised).
type diabDim struct {
	name    string
	values  []string
	weights []float64
}

var diabDims = []diabDim{
	{"race", []string{"Caucasian", "AfricanAmerican", "Hispanic", "Asian", "Other"},
		[]float64{0.60, 0.20, 0.10, 0.05, 0.05}},
	{"gender", []string{"Female", "Male"}, []float64{0.54, 0.46}},
	{"age_group",
		[]string{"[0-10)", "[10-20)", "[20-30)", "[30-40)", "[40-50)", "[50-60)", "[60-70)", "[70-80)", "[80-90)", "[90-100)"},
		[]float64{0.01, 0.02, 0.03, 0.07, 0.12, 0.18, 0.22, 0.18, 0.07, 0.10}},
	{"admission_type", []string{"Emergency", "Urgent", "Elective", "Newborn"},
		[]float64{0.55, 0.20, 0.23, 0.02}},
	{"insulin", []string{"No", "Down", "Steady", "Up"}, []float64{0.47, 0.12, 0.30, 0.11}},
	{"diag_group",
		[]string{"circulatory", "respiratory", "digestive", "injury", "musculoskeletal", "genitourinary", "diabetes"},
		[]float64{0.30, 0.14, 0.09, 0.07, 0.06, 0.09, 0.05}},
	{"readmitted", []string{"NO", "<30", ">30"}, []float64{0.54, 0.11, 0.35}},
}

// diabMeasure describes one count-like measure: its base mean and the
// per-dimension sensitivity that ties the measure to the record's
// dimension values.
type diabMeasure struct {
	name string
	base float64
	span float64
}

var diabMeasures = []diabMeasure{
	{"time_in_hospital", 4.4, 3.0},
	{"num_lab_procedures", 43, 20},
	{"num_procedures", 1.3, 1.5},
	{"num_medications", 16, 8},
	{"number_outpatient", 0.4, 1.2},
	{"number_emergency", 0.2, 1.0},
	{"number_inpatient", 0.6, 1.5},
	{"number_diagnoses", 7.4, 2.0},
}

// diabCoupling is how strongly each measure follows its primary dimension.
// The spread is deliberate: some measures group almost deterministically
// (high within-bin R², high Accuracy feature), others are nearly pure noise
// (Accuracy near zero). Without this spread the Accuracy utility component
// would be flat across the view space and composite ideal utility functions
// such as Table 2's #11 would collapse onto their deviation components.
var diabCoupling = []float64{2.2, 0.1, 1.4, 0.0, 0.7, 2.0, 0.05, 1.0}

// GenerateDIAB builds the DIAB table.
func GenerateDIAB(cfg DIABConfig) *Table {
	defs := make([]ColumnDef, 0, len(diabDims)+len(diabMeasures))
	for _, d := range diabDims {
		defs = append(defs, ColumnDef{Name: d.name, Kind: KindString, Role: RoleDimension})
	}
	for _, m := range diabMeasures {
		defs = append(defs, ColumnDef{Name: m.name, Kind: KindInt, Role: RoleMeasure})
	}
	t := NewTable("diab", MustSchema(defs...))
	rng := rand.New(rand.NewSource(cfg.Seed))
	nd := len(diabDims)
	for i, d := range diabDims {
		_ = d
		t.Cols[i].Strs = make([]string, cfg.Rows)
	}
	for j := range diabMeasures {
		t.Cols[nd+j].Ints = make([]int64, cfg.Rows)
	}
	dimIdx := make([]int, nd)
	for r := 0; r < cfg.Rows; r++ {
		for i, d := range diabDims {
			k := sampleWeighted(rng, d.weights)
			dimIdx[i] = k
			t.Cols[i].Strs[r] = d.values[k]
		}
		inDQ := t.Cols[5].Strs[r] == "diabetes" && t.Cols[2].Strs[r] == "[90-100)"
		for j, m := range diabMeasures {
			// Each measure leans on a different pair of dimensions so that
			// different (a, m) views carry different information, with a
			// per-measure coupling strength (see diabCoupling).
			di := dimIdx[j%nd]
			dj := dimIdx[(j+3)%nd]
			mean := m.base +
				diabCoupling[j]*m.span*float64(di)/float64(len(diabDims[j%nd].values)) +
				0.3*m.span*float64(dj)/float64(len(diabDims[(j+3)%nd].values))
			if inDQ {
				// The interesting subgroup: elder diabetic patients stay
				// longer, take more medications, and bounce back more.
				mean += m.span * (1.2 + 0.3*float64(j%3))
			}
			v := mean + rng.NormFloat64()*m.span*0.5
			if v < 0 {
				v = 0
			}
			t.Cols[nd+j].Ints[r] = int64(v + 0.5)
		}
	}
	if err := t.sealRows(); err != nil {
		panic(err)
	}
	return t
}

// sampleWeighted draws an index proportionally to weights.
func sampleWeighted(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
