package dataset

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// TestNullBitmap checks the bitmap null store across word boundaries:
// nulls at rows 0, 63, 64, 127 and 200 must be readable through IsNull,
// Value and the raw bitmap, with everything else non-null.
func TestNullBitmap(t *testing.T) {
	c := NewColumn(ColumnDef{Name: "x", Kind: KindFloat, Role: RoleMeasure})
	nullAt := map[int]bool{0: true, 63: true, 64: true, 127: true, 200: true}
	for i := 0; i < 256; i++ {
		v := Float(float64(i))
		if nullAt[i] {
			v = Null
		}
		if err := c.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 256; i++ {
		if c.IsNull(i) != nullAt[i] {
			t.Errorf("IsNull(%d) = %v, want %v", i, c.IsNull(i), nullAt[i])
		}
		if nullAt[i] != c.Value(i).IsNull() {
			t.Errorf("Value(%d).IsNull() = %v, want %v", i, c.Value(i).IsNull(), nullAt[i])
		}
	}
	if got := c.NullCount(); got != len(nullAt) {
		t.Errorf("NullCount = %d, want %d", got, len(nullAt))
	}
	// Reading past the bitmap (and past the column) must report non-null,
	// not panic: the bitmap only covers up to the highest null row.
	if c.IsNull(100_000) {
		t.Error("IsNull far past the bitmap = true")
	}
	if bm := c.NullBitmap(); len(bm) != 200/64+1 {
		t.Errorf("bitmap has %d words, want %d", len(bm), 200/64+1)
	}
}

// TestColumnNoNullsBitmapNil: a column without NULLs keeps a nil bitmap.
func TestColumnNoNullsBitmapNil(t *testing.T) {
	c := NewColumn(ColumnDef{Name: "x", Kind: KindInt, Role: RoleMeasure})
	for i := 0; i < 10; i++ {
		if err := c.Append(Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if c.NullBitmap() != nil {
		t.Error("null-free column has a non-nil bitmap")
	}
	if c.NullCount() != 0 {
		t.Error("null-free column has a nonzero NullCount")
	}
}

// TestNumericView checks the decode-once views against per-cell Float for
// every kind, including NULL masking and cache rebuild after appends.
func TestNumericView(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cols := []*Column{
		NewColumn(ColumnDef{Name: "f", Kind: KindFloat}),
		NewColumn(ColumnDef{Name: "i", Kind: KindInt}),
		NewColumn(ColumnDef{Name: "b", Kind: KindBool}),
	}
	appendRandom := func(n int) {
		for r := 0; r < n; r++ {
			vals := []Value{Float(rng.NormFloat64()), Int(int64(rng.Intn(100))), Bool(rng.Intn(2) == 0)}
			for ci, c := range cols {
				v := vals[ci]
				if rng.Intn(6) == 0 {
					v = Null
				}
				if err := c.Append(v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	check := func() {
		t.Helper()
		for _, c := range cols {
			vals, nulls, ok := c.NumericView()
			if !ok {
				t.Fatalf("column %q has no numeric view", c.Def.Name)
			}
			if len(vals) != c.Len() {
				t.Fatalf("column %q view has %d values for %d rows", c.Def.Name, len(vals), c.Len())
			}
			for r := 0; r < c.Len(); r++ {
				want, wantOK := c.Float(r)
				gotNull := func() bool {
					w := r >> 6
					return w < len(nulls) && nulls[w]>>(uint(r)&63)&1 == 1
				}()
				if gotNull == wantOK {
					t.Fatalf("column %q row %d: bitmap null=%v but Float ok=%v", c.Def.Name, r, gotNull, wantOK)
				}
				if wantOK && vals[r] != want {
					t.Fatalf("column %q row %d: view %v != Float %v", c.Def.Name, r, vals[r], want)
				}
			}
		}
	}
	appendRandom(200)
	check()
	// Appending after a decode must rebuild the cached view.
	appendRandom(50)
	check()
	// String columns have no numeric view.
	s := NewColumn(ColumnDef{Name: "s", Kind: KindString})
	if err := s.Append(StringVal("x")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.NumericView(); ok {
		t.Error("string column returned a numeric view")
	}
}

// TestNumericViewConcurrent races the lazy decode from many goroutines;
// run under -race this proves the cache's locking.
func TestNumericViewConcurrent(t *testing.T) {
	c := NewColumn(ColumnDef{Name: "i", Kind: KindInt})
	for i := 0; i < 5_000; i++ {
		v := Int(int64(i))
		if i%97 == 0 {
			v = Null
		}
		if err := c.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals, _, ok := c.NumericView()
			if !ok || len(vals) != c.Len() {
				t.Errorf("view: ok=%v len=%d", ok, len(vals))
				return
			}
			if vals[1] != 1 || vals[4999] != 4999 {
				t.Errorf("decoded values wrong: %v, %v", vals[1], vals[4999])
			}
		}()
	}
	wg.Wait()
}

// TestBinaryRoundTripNullBitmap: gob round-trips rebuild the bitmap.
func TestBinaryRoundTripNullBitmap(t *testing.T) {
	schema := MustSchema(ColumnDef{Name: "x", Kind: KindFloat, Role: RoleMeasure})
	tab := NewTable("t", schema)
	for i := 0; i < 130; i++ {
		v := Float(float64(i))
		if i%13 == 0 {
			v = Null
		}
		tab.MustAppendRow(v)
	}
	var buf bytes.Buffer
	if err := WriteBinary(tab, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c, bc := tab.Cols[0], back.Cols[0]
	for i := 0; i < tab.NumRows(); i++ {
		if c.IsNull(i) != bc.IsNull(i) {
			t.Fatalf("row %d: null %v != %v after round trip", i, c.IsNull(i), bc.IsNull(i))
		}
	}
}
