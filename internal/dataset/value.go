package dataset

import (
	"fmt"
	"strconv"
)

// Kind enumerates the runtime types a Value can carry.
type Kind int

// The supported value kinds. Null is the zero value so an uninitialised
// Value is a SQL NULL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is a dynamically typed scalar used at the row level by the SQL
// engine and by CSV import. Columns store data unboxed; Value is only
// materialised at cell granularity.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
}

// Null is the SQL NULL value.
var Null = Value{Kind: KindNull}

// Int wraps an int64.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float wraps a float64.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// String wraps a string. The name collides with fmt.Stringer on purpose:
// dataset.StringVal is the constructor, Value.String the formatter.
func StringVal(s string) Value { return Value{Kind: KindString, S: s} }

// Bool wraps a bool.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat coerces numeric values to float64. Booleans coerce to 0/1.
// It returns false when the value has no numeric interpretation.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	case KindBool:
		if v.B {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// AsInt coerces numeric values to int64, truncating floats.
func (v Value) AsInt() (int64, bool) {
	switch v.Kind {
	case KindInt:
		return v.I, true
	case KindFloat:
		return int64(v.F), true
	case KindBool:
		if v.B {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// String renders the value the way the CSV writer and the REPL print it.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		return strconv.FormatBool(v.B)
	default:
		return "?"
	}
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare numerically across int/float/bool; strings compare
// lexicographically. Cross-kind comparisons between string and numeric
// compare the kind tags so sorting is total and deterministic.
func Compare(a, b Value) int {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == b.Kind:
			return 0
		case a.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if aok && bok {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.Kind == KindString && b.Kind == KindString {
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	}
	// Mixed string/numeric: order by kind tag for a stable total order.
	switch {
	case a.Kind < b.Kind:
		return -1
	case a.Kind > b.Kind:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare equal under Compare semantics,
// except that NULL never equals anything, including NULL (SQL semantics are
// applied by the SQL evaluator; Equal here is the storage-level notion used
// for grouping, where NULLs do group together).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// ParseValue infers the most specific kind for a CSV token: int, then
// float, then bool, then string. Empty strings parse as NULL.
func ParseValue(s string) Value {
	if s == "" {
		return Null
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	if b, err := strconv.ParseBool(s); err == nil {
		return Bool(b)
	}
	return StringVal(s)
}
