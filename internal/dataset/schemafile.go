package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// schemaFile is the JSON sidecar format that preserves what CSV cannot:
// column kinds and dimension/measure roles.
type schemaFile struct {
	Version int             `json:"version"`
	Table   string          `json:"table"`
	Columns []schemaFileCol `json:"columns"`
}

type schemaFileCol struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Role string `json:"role"`
}

const schemaFileVersion = 1

// WriteSchema writes the table's schema (kinds and roles) as JSON, the
// sidecar companion to WriteCSV.
func WriteSchema(t *Table, w io.Writer) error {
	sf := schemaFile{Version: schemaFileVersion, Table: t.Name}
	for _, def := range t.Schema.Columns {
		sf.Columns = append(sf.Columns, schemaFileCol{
			Name: def.Name, Kind: def.Kind.String(), Role: def.Role.String(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sf)
}

// ApplySchema reads a schema sidecar and applies its roles (and name) to a
// freshly loaded table. Kinds are verified, not coerced: a mismatch means
// the CSV and sidecar have drifted apart and is reported as an error.
func ApplySchema(t *Table, r io.Reader) error {
	var sf schemaFile
	if err := json.NewDecoder(r).Decode(&sf); err != nil {
		return fmt.Errorf("dataset: decoding schema sidecar: %w", err)
	}
	if sf.Version != schemaFileVersion {
		return fmt.Errorf("dataset: schema sidecar version %d, want %d", sf.Version, schemaFileVersion)
	}
	var dims, measures []string
	for _, col := range sf.Columns {
		def, ok := t.Schema.Def(col.Name)
		if !ok {
			return fmt.Errorf("dataset: sidecar column %q not in table", col.Name)
		}
		if def.Kind.String() != col.Kind {
			return fmt.Errorf("dataset: column %q is %s in the data but %s in the sidecar",
				col.Name, def.Kind, col.Kind)
		}
		switch col.Role {
		case "dimension":
			dims = append(dims, col.Name)
		case "measure":
			measures = append(measures, col.Name)
		case "other":
		default:
			return fmt.Errorf("dataset: sidecar column %q has unknown role %q", col.Name, col.Role)
		}
	}
	if sf.Table != "" {
		t.Name = sf.Table
	}
	return AssignRoles(t, dims, measures)
}

// schemaPathFor derives the sidecar path for a CSV path.
func schemaPathFor(csvPath string) string {
	return strings.TrimSuffix(csvPath, ".csv") + ".schema.json"
}

// WriteCSVWithSchema writes the table to csvPath plus a .schema.json
// sidecar next to it.
func WriteCSVWithSchema(t *Table, csvPath string) error {
	if err := WriteCSVFile(t, csvPath); err != nil {
		return err
	}
	f, err := os.Create(schemaPathFor(csvPath))
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteSchema(t, f)
}

// ReadCSVWithSchema loads a CSV and, when a .schema.json sidecar exists
// next to it, applies the saved roles. Without a sidecar it behaves like
// ReadCSVFile.
func ReadCSVWithSchema(csvPath string) (*Table, error) {
	t, err := ReadCSVFile(csvPath)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(schemaPathFor(csvPath))
	if os.IsNotExist(err) {
		return t, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := ApplySchema(t, f); err != nil {
		return nil, err
	}
	return t, nil
}
