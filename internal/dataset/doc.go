// Package dataset implements the in-memory columnar dataset engine that
// underpins ViewSeeker: typed columns, schemas with dimension/measure
// roles, tables with row- and column-oriented access, CSV import/export,
// and the seeded generators for the SYN, DIAB and NBA workloads used
// throughout the paper's evaluation.
//
// # Contracts
//
// Decode-once columns (DESIGN.md §9): Column.NumericView returns the
// column as a flat []float64 plus a null bitmap (bit i of word i/64).
// Float columns alias their backing slice — callers must not mutate the
// view — while int and bool columns decode into a cache that rebuilds if
// the column grows. The bitmap is the store of record for NULLs; IsNull
// is two shifts and a bounds check.
//
// Bit-identity: the numeric view yields exactly the values the
// row-at-a-time accessors yield, in the same row order, so scan kernels
// built on either surface agree bit for bit. Generators are seeded and
// platform-independent: the same (config, seed) always produces the same
// table, which content-addressed caching and tracked benchmarks rely on.
package dataset
