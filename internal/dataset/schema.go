package dataset

import "fmt"

// Role classifies a column under the multi-dimensional data model of the
// paper: dimension attributes are grouped on, measure attributes are
// aggregated, and Other columns are carried along but never enumerated into
// the view space.
type Role int

// The column roles.
const (
	RoleOther Role = iota
	RoleDimension
	RoleMeasure
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleDimension:
		return "dimension"
	case RoleMeasure:
		return "measure"
	default:
		return "other"
	}
}

// ColumnDef describes one column of a schema.
type ColumnDef struct {
	Name string
	Kind Kind
	Role Role
}

// Schema is an ordered list of column definitions.
type Schema struct {
	Columns []ColumnDef
	byName  map[string]int
}

// NewSchema builds a schema from column definitions. Column names must be
// unique (case-sensitive).
func NewSchema(cols ...ColumnDef) (*Schema, error) {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("dataset: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate column name %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for static schemas.
func MustSchema(cols ...ColumnDef) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Def returns the definition of the named column.
func (s *Schema) Def(name string) (ColumnDef, bool) {
	i := s.Index(name)
	if i < 0 {
		return ColumnDef{}, false
	}
	return s.Columns[i], true
}

// Dimensions returns the names of all dimension columns, in schema order.
func (s *Schema) Dimensions() []string { return s.withRole(RoleDimension) }

// Measures returns the names of all measure columns, in schema order.
func (s *Schema) Measures() []string { return s.withRole(RoleMeasure) }

func (s *Schema) withRole(r Role) []string {
	var out []string
	for _, c := range s.Columns {
		if c.Role == r {
			out = append(out, c.Name)
		}
	}
	return out
}
