package dataset

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Table is an in-memory columnar table. The zero value is unusable; build
// tables with NewTable and fill them with AppendRow or the typed column
// slices directly.
type Table struct {
	Name   string
	Schema *Schema
	Cols   []*Column
	rows   int

	// version counts content mutations (appends, seals, role changes).
	// Fingerprint caches key on it via MemoHash, so an unchanged table is
	// hashed once, not once per lookup.
	version uint64

	hashMu  sync.Mutex
	hash    []byte
	hashVer uint64
}

// NewTable allocates an empty table for the schema.
func NewTable(name string, schema *Schema) *Table {
	cols := make([]*Column, schema.Len())
	for i, def := range schema.Columns {
		cols[i] = NewColumn(def)
	}
	return &Table{Name: name, Schema: schema, Cols: cols}
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.rows }

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	i := t.Schema.Index(name)
	if i < 0 {
		return nil
	}
	return t.Cols[i]
}

// AppendRow adds one row. The number of values must equal the schema width.
func (t *Table) AppendRow(vals ...Value) error {
	if len(vals) != len(t.Cols) {
		return fmt.Errorf("dataset: table %q expects %d values, got %d", t.Name, len(t.Cols), len(vals))
	}
	for i, v := range vals {
		if err := t.Cols[i].Append(v); err != nil {
			return err
		}
	}
	t.rows++
	t.version++
	return nil
}

// Version returns the table's mutation counter. It increases on every
// content change (AppendRow, sealRows, AssignRoles) and is what MemoHash
// keys its cache on. Not safe against concurrent mutation — like the
// mutators themselves.
func (t *Table) Version() uint64 { return t.version }

// MemoHash returns the table's content hash for its current version,
// calling compute only on a miss and caching the result until the next
// mutation. The hash function itself lives in the store layer (it owns the
// fingerprint byte stream); the memo lives here because only the table
// knows when its contents changed. Safe for concurrent use; compute runs
// under the memo lock, so concurrent lookups hash at most once.
func (t *Table) MemoHash(compute func() []byte) []byte {
	t.hashMu.Lock()
	defer t.hashMu.Unlock()
	if t.hash != nil && t.hashVer == t.version {
		return t.hash
	}
	t.hash = compute()
	t.hashVer = t.version
	return t.hash
}

// WithAppended returns a new table holding the receiver's rows plus the
// given rows, leaving the receiver untouched — the copy-on-append MVCC
// step behind live tables. Readers of the old version keep a consistent
// snapshot: the clone clamps the shared backing slices to their length (so
// its first append reallocates rather than scribbling into shared arrays)
// and copies the null bitmaps outright (bit sets mutate words in place).
// On any row error the receiver is still untouched and the partial clone
// is discarded.
func (t *Table) WithAppended(rows [][]Value) (*Table, error) {
	out := &Table{Name: t.Name, Schema: t.Schema, rows: t.rows}
	out.Cols = make([]*Column, len(t.Cols))
	for i, c := range t.Cols {
		out.Cols[i] = c.cloneForAppend()
	}
	for _, r := range rows {
		if err := out.AppendRow(r...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MustAppendRow is AppendRow that panics on error, for generators whose
// values are schema-correct by construction.
func (t *Table) MustAppendRow(vals ...Value) {
	if err := t.AppendRow(vals...); err != nil {
		panic(err)
	}
}

// sealRows fixes the row count after bulk column writes. Generators that
// fill the typed slices directly must call it.
func (t *Table) sealRows() error {
	n := -1
	for _, c := range t.Cols {
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			return fmt.Errorf("dataset: table %q has ragged columns (%q has %d rows, want %d)",
				t.Name, c.Def.Name, c.Len(), n)
		}
	}
	if n < 0 {
		n = 0
	}
	t.rows = n
	t.version++
	return nil
}

// Row returns row i as boxed values, in schema order.
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.Cols))
	for j, c := range t.Cols {
		out[j] = c.Value(i)
	}
	return out
}

// Subset materialises a new table holding the given row indices, in order.
// It is how query results (DQ) are represented as first-class tables.
func (t *Table) Subset(name string, rows []int) *Table {
	out := NewTable(name, t.Schema)
	for _, i := range rows {
		vals := make([]Value, len(t.Cols))
		for j, c := range t.Cols {
			vals[j] = c.Value(i)
		}
		out.MustAppendRow(vals...)
	}
	return out
}

// IsPrefixOf reports whether u extends t row-for-row: same schema shape
// and u's first NumRows() rows bit-identical to t's (floats compared by
// bits, so NaNs match themselves; NULL positions included). The
// incremental-maintenance layer uses it to verify that re-running an
// exploration query over an appended table only appended result rows —
// the precondition for extending the target's cached scans.
func (t *Table) IsPrefixOf(u *Table) bool {
	n := t.rows
	if u.rows < n || len(t.Cols) != len(u.Cols) {
		return false
	}
	for i, c := range t.Cols {
		d := u.Cols[i]
		if c.Def != d.Def {
			return false
		}
		if !c.prefixEqual(d, n) {
			return false
		}
	}
	return true
}

// DistinctValues returns the sorted distinct group keys of the named
// column. It is used to lay out histogram bins for categorical dimensions.
func (t *Table) DistinctValues(col string) ([]string, error) {
	c := t.Column(col)
	if c == nil {
		return nil, fmt.Errorf("dataset: table %q has no column %q", t.Name, col)
	}
	seen := make(map[string]bool)
	var out []string
	for i := 0; i < t.rows; i++ {
		k := c.GroupKey(i)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

// NumericRange returns the [min,max] of a numeric column, ignoring NULLs.
// ok is false when the column has no numeric cells.
func (t *Table) NumericRange(col string) (lo, hi float64, ok bool) {
	c := t.Column(col)
	if c == nil {
		return 0, 0, false
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < t.rows; i++ {
		f, fok := c.Float(i)
		if !fok {
			continue
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
		ok = true
	}
	return lo, hi, ok
}

// SampleRows returns the row indices of a deterministic uniform sample of
// ratio alpha in (0,1]. The sample is the stride pattern used by the
// optimisation layer: it touches every region of the table, is stable
// across runs, and costs no RNG state.
func (t *Table) SampleRows(alpha float64) []int {
	if alpha >= 1 || t.rows == 0 {
		all := make([]int, t.rows)
		for i := range all {
			all[i] = i
		}
		return all
	}
	if alpha <= 0 {
		return nil
	}
	n := int(math.Ceil(float64(t.rows) * alpha))
	if n < 1 {
		n = 1
	}
	stride := float64(t.rows) / float64(n)
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		idx := int(float64(i) * stride)
		if idx >= t.rows {
			idx = t.rows - 1
		}
		out = append(out, idx)
	}
	return out
}
