package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{Int(7), KindInt},
		{Float(3.5), KindFloat},
		{StringVal("x"), KindString},
		{Bool(true), KindBool},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("kind of %v = %v, want %v", c.v, c.v.Kind, c.kind)
		}
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull misreports")
	}
}

func TestValueAsFloat(t *testing.T) {
	if f, ok := Int(4).AsFloat(); !ok || f != 4 {
		t.Errorf("Int(4).AsFloat() = %v, %v", f, ok)
	}
	if f, ok := Float(2.25).AsFloat(); !ok || f != 2.25 {
		t.Errorf("Float(2.25).AsFloat() = %v, %v", f, ok)
	}
	if f, ok := Bool(true).AsFloat(); !ok || f != 1 {
		t.Errorf("Bool(true).AsFloat() = %v, %v", f, ok)
	}
	if _, ok := StringVal("a").AsFloat(); ok {
		t.Error("string should not coerce to float")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("null should not coerce to float")
	}
}

func TestValueAsInt(t *testing.T) {
	if i, ok := Float(9.9).AsInt(); !ok || i != 9 {
		t.Errorf("Float(9.9).AsInt() = %v, %v; want truncation to 9", i, ok)
	}
	if i, ok := Int(-3).AsInt(); !ok || i != -3 {
		t.Errorf("Int(-3).AsInt() = %v, %v", i, ok)
	}
	if _, ok := StringVal("5").AsInt(); ok {
		t.Error("string should not silently coerce to int")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{Int(42), "42"},
		{Float(1.5), "1.5"},
		{StringVal("hi"), "hi"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(2.5), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{Bool(false), Bool(true), -1},
		{StringVal("a"), StringVal("b"), -1},
		{StringVal("b"), StringVal("b"), 0},
		{Null, Int(0), -1},
		{Int(0), Null, 1},
		{Null, Null, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareFloatIntConsistency(t *testing.T) {
	f := func(a int32, b int32) bool {
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		return Compare(Float(float64(a)), Int(int64(b))) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		kind Kind
	}{
		{"", KindNull},
		{"12", KindInt},
		{"-4", KindInt},
		{"3.14", KindFloat},
		{"1e3", KindFloat},
		{"true", KindBool},
		{"hello", KindString},
		{"12abc", KindString},
	}
	for _, c := range cases {
		if got := ParseValue(c.in).Kind; got != c.kind {
			t.Errorf("ParseValue(%q).Kind = %v, want %v", c.in, got, c.kind)
		}
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := ParseValue(Float(x).String())
		got, ok := v.AsFloat()
		return ok && got == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
