package dataset

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// binaryTable is the gob wire format: schema plus raw column slices. It
// round-trips everything CSV cannot (kinds, roles, NULL positions) and
// loads an order of magnitude faster at the million-row scale the SYN
// testbed uses.
type binaryTable struct {
	Version int
	Name    string
	Columns []binaryColumn
}

type binaryColumn struct {
	Name   string
	Kind   Kind
	Role   Role
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Nulls  []int
}

const binaryVersion = 1

// WriteBinary serialises the table with encoding/gob.
func WriteBinary(t *Table, w io.Writer) error {
	bt := binaryTable{Version: binaryVersion, Name: t.Name}
	for _, c := range t.Cols {
		bc := binaryColumn{
			Name: c.Def.Name, Kind: c.Def.Kind, Role: c.Def.Role,
			Ints: c.Ints, Floats: c.Floats, Strs: c.Strs, Bools: c.Bools,
		}
		for i := 0; i < c.Len(); i++ {
			if c.IsNull(i) {
				bc.Nulls = append(bc.Nulls, i)
			}
		}
		bt.Columns = append(bt.Columns, bc)
	}
	return gob.NewEncoder(w).Encode(bt)
}

// ReadBinary deserialises a table written by WriteBinary.
func ReadBinary(r io.Reader) (*Table, error) {
	var bt binaryTable
	if err := gob.NewDecoder(r).Decode(&bt); err != nil {
		return nil, fmt.Errorf("dataset: decoding binary table: %w", err)
	}
	if bt.Version != binaryVersion {
		return nil, fmt.Errorf("dataset: binary table version %d, want %d", bt.Version, binaryVersion)
	}
	defs := make([]ColumnDef, len(bt.Columns))
	for i, bc := range bt.Columns {
		defs[i] = ColumnDef{Name: bc.Name, Kind: bc.Kind, Role: bc.Role}
	}
	schema, err := NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	t := NewTable(bt.Name, schema)
	for i, bc := range bt.Columns {
		col := t.Cols[i]
		col.Ints, col.Floats, col.Strs, col.Bools = bc.Ints, bc.Floats, bc.Strs, bc.Bools
		for _, n := range bc.Nulls {
			col.markNull(n)
		}
	}
	if err := t.sealRows(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteBinaryFile writes the table to a file.
func WriteBinaryFile(t *Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteBinary(t, f)
}

// ReadBinaryFile reads a table from a file written by WriteBinaryFile.
func ReadBinaryFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
