package dataset

// MemoryBytes estimates the resident heap bytes of the table's column
// data: typed value slices (by capacity — the allocation, not the fill),
// string contents, null bitmaps, and the numeric decode caches. It is the
// dataset layer's contribution to the per-session memory accounting the
// server's eviction budget runs on (DESIGN.md §16) — an estimate of the
// dominant allocations, not a precise heap census: struct headers and the
// schema are covered by the session-level overhead constant instead.
//
// Cost: O(columns) for numeric columns, O(rows) for string columns (the
// per-string lengths must be summed). Callers that account repeatedly
// against an immutable table should cache the result.
func (t *Table) MemoryBytes() int64 {
	var b int64
	for _, c := range t.Cols {
		b += c.MemoryBytes()
	}
	return b
}

// MemoryBytes estimates the column's resident heap bytes (see
// Table.MemoryBytes).
func (c *Column) MemoryBytes() int64 {
	b := int64(cap(c.Ints))*8 + int64(cap(c.Floats))*8 + int64(cap(c.Bools)) + int64(cap(c.nulls))*8
	if len(c.Strs) > 0 {
		b += int64(cap(c.Strs)) * 16 // string headers
		for _, s := range c.Strs {
			b += int64(len(s))
		}
	}
	c.dec.mu.Lock()
	b += int64(cap(c.dec.vals)) * 8
	c.dec.mu.Unlock()
	return b
}
