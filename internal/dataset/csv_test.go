package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `cat,n,x,flag
a,1,0.5,true
b,2,1.5,false
c,,2.5,true
`

func TestReadCSVInfersKinds(t *testing.T) {
	tab, err := ReadCSV("t", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := map[string]Kind{"cat": KindString, "n": KindInt, "x": KindFloat, "flag": KindBool}
	for name, kind := range wantKinds {
		def, ok := tab.Schema.Def(name)
		if !ok || def.Kind != kind {
			t.Errorf("column %q kind = %v, want %v", name, def.Kind, kind)
		}
	}
	if tab.NumRows() != 3 {
		t.Fatalf("NumRows = %d, want 3", tab.NumRows())
	}
	if !tab.Column("n").IsNull(2) {
		t.Error("empty cell should be NULL")
	}
}

func TestReadCSVEmptyBody(t *testing.T) {
	tab, err := ReadCSV("t", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 0 || tab.Schema.Len() != 2 {
		t.Errorf("got %d rows, %d cols", tab.NumRows(), tab.Schema.Len())
	}
}

func TestReadCSVRaggedRow(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("expected error for ragged row")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := ReadCSV("t", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(orig, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != orig.NumRows() {
		t.Fatalf("round trip rows = %d, want %d", back.NumRows(), orig.NumRows())
	}
	for i := 0; i < orig.NumRows(); i++ {
		a, b := orig.Row(i), back.Row(i)
		for j := range a {
			if a[j].String() != b[j].String() && !(a[j].IsNull() && b[j].IsNull()) {
				t.Errorf("row %d col %d: %v != %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sample.csv")
	orig, err := ReadCSV("sample", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSVFile(orig, path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "sample" {
		t.Errorf("table name = %q, want sample", back.Name)
	}
	if back.NumRows() != 3 {
		t.Errorf("rows = %d, want 3", back.NumRows())
	}
}

func TestAssignRoles(t *testing.T) {
	tab, err := ReadCSV("t", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignRoles(tab, []string{"cat", "flag"}, []string{"n", "x"}); err != nil {
		t.Fatal(err)
	}
	if got := tab.Schema.Dimensions(); len(got) != 2 {
		t.Errorf("dimensions = %v", got)
	}
	if got := tab.Schema.Measures(); len(got) != 2 {
		t.Errorf("measures = %v", got)
	}
	if err := AssignRoles(tab, []string{"missing"}, nil); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestReadCSVMixedIntFloatColumn(t *testing.T) {
	// First row says int, later rows are floats: they must coerce, not fail.
	tab, err := ReadCSV("t", strings.NewReader("v\n1\n2.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Column("v").Ints[1]; got != 2 {
		t.Errorf("coerced value = %d, want truncated 2", got)
	}
}
