package dataset

import (
	"reflect"
	"testing"
)

func liveSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		ColumnDef{Name: "cat", Kind: KindString, Role: RoleDimension},
		ColumnDef{Name: "n", Kind: KindInt, Role: RoleMeasure},
		ColumnDef{Name: "x", Kind: KindFloat, Role: RoleMeasure},
		ColumnDef{Name: "flag", Kind: KindBool, Role: RoleDimension},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWithAppendedLeavesReceiverUntouched(t *testing.T) {
	base := NewTable("t", liveSchema(t))
	base.MustAppendRow(StringVal("a"), Int(1), Float(0.5), Bool(true))
	base.MustAppendRow(StringVal("b"), Null, Float(1.5), Bool(false))
	snapshot := make([][]Value, base.NumRows())
	for i := range snapshot {
		snapshot[i] = base.Row(i)
	}

	next, err := base.WithAppended([][]Value{
		{StringVal("c"), Int(3), Null, Bool(true)},
		{Null, Int(4), Float(4.5), Null},
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.NumRows() != 2 || next.NumRows() != 4 {
		t.Fatalf("rows: base %d next %d, want 2 and 4", base.NumRows(), next.NumRows())
	}
	for i, want := range snapshot {
		if got := base.Row(i); !reflect.DeepEqual(got, want) {
			t.Fatalf("base row %d changed: %v -> %v", i, want, got)
		}
	}
	// The appended rows land with nulls intact — and the base column's
	// bitmap does not grow (the clone copied it).
	if !next.Cols[2].IsNull(2) || !next.Cols[0].IsNull(3) || !next.Cols[3].IsNull(3) {
		t.Fatal("appended nulls lost")
	}
	if base.Cols[0].IsNull(3) {
		t.Fatal("base column sees the clone's null bitmap")
	}
	// Old rows read back identically through the new version.
	for i, want := range snapshot {
		if got := next.Row(i); !reflect.DeepEqual(got, want) {
			t.Fatalf("next row %d differs from base: %v vs %v", i, got, want)
		}
	}
}

// TestWithAppendedForkIsolation: two appends from the same base must not
// see each other — the hazard is a shared backing array with spare
// capacity, which capacity-clamping in cloneForAppend prevents.
func TestWithAppendedForkIsolation(t *testing.T) {
	base := NewTable("t", liveSchema(t))
	for i := 0; i < 3; i++ {
		base.MustAppendRow(StringVal("a"), Int(int64(i)), Float(float64(i)), Bool(false))
	}
	left, err := base.WithAppended([][]Value{{StringVal("L"), Int(100), Float(100), Bool(true)}})
	if err != nil {
		t.Fatal(err)
	}
	right, err := base.WithAppended([][]Value{{StringVal("R"), Int(200), Float(200), Bool(false)}})
	if err != nil {
		t.Fatal(err)
	}
	if got := left.Cols[0].Strs[3]; got != "L" {
		t.Fatalf("left fork row: %q, want L", got)
	}
	if got := right.Cols[0].Strs[3]; got != "R" {
		t.Fatalf("right fork row: %q, want R", got)
	}
}

func TestWithAppendedBadRow(t *testing.T) {
	base := NewTable("t", liveSchema(t))
	base.MustAppendRow(StringVal("a"), Int(1), Float(0.5), Bool(true))
	if _, err := base.WithAppended([][]Value{{StringVal("x"), Int(1)}}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := base.WithAppended([][]Value{{StringVal("x"), Int(1), Float(1), StringVal("notbool")}}); err == nil {
		t.Fatal("mistyped bool accepted")
	}
	if base.NumRows() != 1 {
		t.Fatalf("failed append mutated the base: %d rows", base.NumRows())
	}
}

func TestVersionCounterAndMemoHash(t *testing.T) {
	tbl := NewTable("t", liveSchema(t))
	v0 := tbl.Version()
	tbl.MustAppendRow(StringVal("a"), Int(1), Float(0.5), Bool(true))
	if tbl.Version() == v0 {
		t.Fatal("AppendRow did not bump the version")
	}
	calls := 0
	compute := func() []byte { calls++; return []byte{byte(calls)} }
	h1 := tbl.MemoHash(compute)
	h2 := tbl.MemoHash(compute)
	if calls != 1 || string(h1) != string(h2) {
		t.Fatalf("unchanged table recomputed hash: %d calls", calls)
	}
	tbl.MustAppendRow(StringVal("b"), Int(2), Float(1.5), Bool(false))
	if h3 := tbl.MemoHash(compute); calls != 2 || string(h3) == string(h1) {
		t.Fatalf("mutation did not invalidate memo: %d calls", calls)
	}
	if err := AssignRoles(tbl, []string{"n"}, nil); err != nil {
		t.Fatal(err)
	}
	if tbl.MemoHash(compute); calls != 3 {
		t.Fatalf("AssignRoles did not invalidate memo: %d calls", calls)
	}
}
