package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReadCSV loads a table from CSV. The first record is the header. Column
// kinds are inferred from the first data row (int, float, bool, string, in
// that order of preference); later rows that fail to coerce are an error.
// Roles default to RoleOther; callers assign roles with AssignRoles.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv header: %w", err)
	}
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading csv: %w", err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: csv row has %d fields, header has %d", len(rec), len(header))
		}
		rows = append(rows, rec)
	}
	defs := make([]ColumnDef, len(header))
	for j, h := range header {
		kind := KindString
		for _, row := range rows {
			if row[j] == "" {
				continue // NULL tells us nothing about the kind
			}
			kind = ParseValue(row[j]).Kind
			break
		}
		defs[j] = ColumnDef{Name: strings.TrimSpace(h), Kind: kind}
	}
	schema, err := NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	t := NewTable(name, schema)
	vals := make([]Value, len(defs))
	for i, row := range rows {
		for j, cell := range row {
			vals[j] = coerceCell(cell, defs[j].Kind)
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: %w", i+1, err)
		}
	}
	return t, nil
}

func coerceCell(cell string, kind Kind) Value {
	if cell == "" {
		return Null
	}
	v := ParseValue(cell)
	if v.Kind == kind {
		return v
	}
	switch kind {
	case KindFloat:
		if f, ok := v.AsFloat(); ok {
			return Float(f)
		}
	case KindInt:
		if i, ok := v.AsInt(); ok {
			return Int(i)
		}
	case KindString:
		return StringVal(cell)
	}
	// Fall back to the literal string; Column.Append will reject true
	// mismatches with a useful error.
	return v
}

// ReadCSVFile is ReadCSV over a file path; the table is named after the
// path's base name without extension.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(base, ".csv")
	return ReadCSV(base, f)
}

// WriteCSV writes the table, header first.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.Schema.Len())
	for i, def := range t.Schema.Columns {
		header[i] = def.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, t.Schema.Len())
	for i := 0; i < t.NumRows(); i++ {
		for j, c := range t.Cols {
			v := c.Value(i)
			if v.IsNull() {
				rec[j] = ""
			} else {
				rec[j] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to a file path.
func WriteCSVFile(t *Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteCSV(t, f)
}

// AssignRoles marks the named columns as dimensions and measures. Unlisted
// columns keep their current role. Unknown names are an error.
func AssignRoles(t *Table, dims, measures []string) error {
	set := func(names []string, role Role) error {
		for _, n := range names {
			i := t.Schema.Index(n)
			if i < 0 {
				return fmt.Errorf("dataset: table %q has no column %q", t.Name, n)
			}
			t.Schema.Columns[i].Role = role
			t.Cols[i].Def.Role = role
		}
		return nil
	}
	if err := set(dims, RoleDimension); err != nil {
		return err
	}
	if err := set(measures, RoleMeasure); err != nil {
		return err
	}
	t.version++ // roles are part of the content fingerprint
	return nil
}
