package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestSchemaSidecarRoundTrip(t *testing.T) {
	orig := GenerateDIAB(DIABConfig{Rows: 100, Seed: 1})
	dir := t.TempDir()
	path := filepath.Join(dir, "diab.csv")
	if err := WriteCSVWithSchema(orig, path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVWithSchema(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "diab" {
		t.Errorf("table name = %q", back.Name)
	}
	if got := back.Schema.Dimensions(); len(got) != 7 {
		t.Errorf("dimensions = %v", got)
	}
	if got := back.Schema.Measures(); len(got) != 8 {
		t.Errorf("measures = %v", got)
	}
}

func TestReadCSVWithSchemaNoSidecar(t *testing.T) {
	orig := GenerateDIAB(DIABConfig{Rows: 50, Seed: 1})
	dir := t.TempDir()
	path := filepath.Join(dir, "plain.csv")
	if err := WriteCSVFile(orig, path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVWithSchema(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Schema.Dimensions()) != 0 {
		t.Error("without a sidecar roles default to other")
	}
}

func TestApplySchemaValidation(t *testing.T) {
	tab := GenerateDIAB(DIABConfig{Rows: 20, Seed: 1})
	var buf bytes.Buffer
	if err := WriteSchema(tab, &buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	// Unknown column.
	bad := strings.Replace(good, `"name": "race"`, `"name": "ghost"`, 1)
	if err := ApplySchema(tab, strings.NewReader(bad)); err == nil {
		t.Error("unknown column should fail")
	}
	// Kind drift.
	bad = strings.Replace(good, `"kind": "string"`, `"kind": "float"`, 1)
	if err := ApplySchema(tab, strings.NewReader(bad)); err == nil {
		t.Error("kind mismatch should fail")
	}
	// Unknown role.
	bad = strings.Replace(good, `"role": "dimension"`, `"role": "wizard"`, 1)
	if err := ApplySchema(tab, strings.NewReader(bad)); err == nil {
		t.Error("unknown role should fail")
	}
	// Wrong version.
	bad = strings.Replace(good, `"version": 1`, `"version": 9`, 1)
	if err := ApplySchema(tab, strings.NewReader(bad)); err == nil {
		t.Error("wrong version should fail")
	}
	// Corrupt JSON.
	if err := ApplySchema(tab, strings.NewReader("{nope")); err == nil {
		t.Error("corrupt sidecar should fail")
	}
	// The pristine sidecar applies cleanly.
	if err := ApplySchema(tab, strings.NewReader(good)); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	orig := GenerateDIAB(DIABConfig{Rows: 300, Seed: 9})
	// Sprinkle NULLs via a fresh table copy to exercise null encoding.
	withNulls := NewTable("diab", orig.Schema)
	for i := 0; i < orig.NumRows(); i++ {
		row := orig.Row(i)
		if i%7 == 0 {
			row[8] = Null // a measure column
		}
		if err := withNulls.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteBinary(withNulls, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "diab" || back.NumRows() != withNulls.NumRows() {
		t.Fatalf("name=%q rows=%d", back.Name, back.NumRows())
	}
	if len(back.Schema.Dimensions()) != 7 || len(back.Schema.Measures()) != 8 {
		t.Error("roles lost in binary round trip")
	}
	for i := 0; i < back.NumRows(); i++ {
		a, b := withNulls.Row(i), back.Row(i)
		for j := range a {
			if a[j].IsNull() != b[j].IsNull() || (!a[j].IsNull() && a[j].String() != b[j].String()) {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bin")
	orig := GenerateSYN(SYNConfig{Rows: 100, Seed: 1})
	if err := WriteBinaryFile(orig, path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 100 {
		t.Errorf("rows = %d", back.NumRows())
	}
}

func TestReadBinaryCorrupt(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not gob")); err == nil {
		t.Error("corrupt binary should fail")
	}
}
