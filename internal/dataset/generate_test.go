package dataset

import "testing"

func TestGenerateSYNShape(t *testing.T) {
	cfg := SYNConfig{Rows: 5000, Seed: 1}
	tab := GenerateSYN(cfg)
	if tab.NumRows() != 5000 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if got := len(tab.Schema.Dimensions()); got != 5 {
		t.Errorf("dims = %d, want 5", got)
	}
	if got := len(tab.Schema.Measures()); got != 5 {
		t.Errorf("measures = %d, want 5", got)
	}
	lo, hi, ok := tab.NumericRange("d1")
	if !ok || lo < 0 || hi >= 1 {
		t.Errorf("d1 range = [%v, %v]", lo, hi)
	}
	lo, hi, ok = tab.NumericRange("m3")
	if !ok || lo < 0 || hi >= 100.0001 {
		t.Errorf("m3 range = [%v, %v]", lo, hi)
	}
}

func TestGenerateSYNDeterministic(t *testing.T) {
	a := GenerateSYN(SYNConfig{Rows: 200, Seed: 42})
	b := GenerateSYN(SYNConfig{Rows: 200, Seed: 42})
	for i := 0; i < 200; i++ {
		if a.Column("m1").Floats[i] != b.Column("m1").Floats[i] {
			t.Fatal("same seed must reproduce identical data")
		}
	}
	c := GenerateSYN(SYNConfig{Rows: 200, Seed: 43})
	same := true
	for i := 0; i < 200; i++ {
		if a.Column("m1").Floats[i] != c.Column("m1").Floats[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should produce different data")
	}
}

func TestGenerateSYNHypercubeSelectivity(t *testing.T) {
	tab := GenerateSYN(SYNConfig{Rows: 200_000, Seed: 7})
	d1, d2 := tab.Column("d1").Floats, tab.Column("d2").Floats
	n := 0
	for i := range d1 {
		if d1[i] < 0.0707 && d2[i] < 0.0707 {
			n++
		}
	}
	ratio := float64(n) / float64(len(d1))
	if ratio < 0.003 || ratio > 0.008 {
		t.Errorf("hypercube selectivity = %.4f, want ~0.005", ratio)
	}
}

func TestGenerateDIABShape(t *testing.T) {
	tab := GenerateDIAB(DIABConfig{Rows: 20_000, Seed: 2})
	if got := len(tab.Schema.Dimensions()); got != 7 {
		t.Errorf("dims = %d, want 7 (Table 1)", got)
	}
	if got := len(tab.Schema.Measures()); got != 8 {
		t.Errorf("measures = %d, want 8 (Table 1)", got)
	}
	vals, err := tab.DistinctValues("age_group")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 10 {
		t.Errorf("age_group cardinality = %d, want 10", len(vals))
	}
	// Measures are count-like: non-negative integers.
	lo, _, ok := tab.NumericRange("num_medications")
	if !ok || lo < 0 {
		t.Errorf("num_medications range starts at %v", lo)
	}
}

func TestGenerateDIABQuerySelectivity(t *testing.T) {
	tab := GenerateDIAB(DIABConfig{Rows: 100_000, Seed: 2})
	diag, age := tab.Column("diag_group").Strs, tab.Column("age_group").Strs
	n := 0
	for i := range diag {
		if diag[i] == "diabetes" && age[i] == "[90-100)" {
			n++
		}
	}
	ratio := float64(n) / float64(len(diag))
	if ratio < 0.002 || ratio > 0.009 {
		t.Errorf("DIAB DQ selectivity = %.4f, want ~0.005 (Table 1)", ratio)
	}
}

func TestGenerateDIABSubgroupShift(t *testing.T) {
	// The DQ subgroup must have a visibly shifted measure distribution,
	// otherwise deviation-based utilities would be pure noise.
	tab := GenerateDIAB(DIABConfig{Rows: 50_000, Seed: 2})
	diag, age := tab.Column("diag_group").Strs, tab.Column("age_group").Strs
	meds := tab.Column("num_medications").Ints
	var inSum, outSum float64
	var inN, outN int
	for i := range diag {
		if diag[i] == "diabetes" && age[i] == "[90-100)" {
			inSum += float64(meds[i])
			inN++
		} else {
			outSum += float64(meds[i])
			outN++
		}
	}
	if inN == 0 {
		t.Fatal("no DQ rows generated")
	}
	if inSum/float64(inN) <= outSum/float64(outN)+1 {
		t.Errorf("DQ subgroup mean %.2f not shifted above population mean %.2f",
			inSum/float64(inN), outSum/float64(outN))
	}
}

func TestGenerateNBAHotTeam(t *testing.T) {
	tab := GenerateNBA(NBAConfig{Rows: 20_000, Seed: 3, HotTeam: "GSW"})
	team := tab.Column("team").Strs
	rate := tab.Column("three_pt_attempts").Floats
	var hotSum, restSum float64
	var hotN, restN int
	for i := range team {
		if team[i] == "GSW" {
			hotSum += rate[i]
			hotN++
		} else {
			restSum += rate[i]
			restN++
		}
	}
	if hotN == 0 {
		t.Fatal("no hot-team rows")
	}
	if hotSum/float64(hotN) < 1.25*restSum/float64(restN) {
		t.Errorf("hot team 3PA mean %.2f not well above league %.2f",
			hotSum/float64(hotN), restSum/float64(restN))
	}
	// The hot team's positional profile must also be flatter than the
	// league's (bigs shoot threes), or normalised views would hide the
	// insight entirely.
	pos := tab.Column("position").Strs
	profile := func(hot bool) (pg, c float64) {
		var pgSum, cSum float64
		var pgN, cN int
		for i := range team {
			if (team[i] == "GSW") != hot {
				continue
			}
			switch pos[i] {
			case "PG":
				pgSum += rate[i]
				pgN++
			case "C":
				cSum += rate[i]
				cN++
			}
		}
		return pgSum / float64(pgN), cSum / float64(cN)
	}
	hotPG, hotC := profile(true)
	leaguePG, leagueC := profile(false)
	if hotC/hotPG <= leagueC/leaguePG {
		t.Errorf("hot team profile not flatter: hot C/PG %.2f, league %.2f",
			hotC/hotPG, leagueC/leaguePG)
	}
}

func TestDefaultConfigsMatchTable1(t *testing.T) {
	if c := DefaultSYNConfig(); c.Rows != 1_000_000 {
		t.Errorf("SYN default rows = %d, want 1e6", c.Rows)
	}
	if c := DefaultDIABConfig(); c.Rows != 100_000 {
		t.Errorf("DIAB default rows = %d, want 1e5", c.Rows)
	}
}
