package dataset

import (
	"math"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		ColumnDef{Name: "cat", Kind: KindString, Role: RoleDimension},
		ColumnDef{Name: "n", Kind: KindInt, Role: RoleMeasure},
		ColumnDef{Name: "x", Kind: KindFloat, Role: RoleMeasure},
	)
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Index("n") != 1 || s.Index("missing") != -1 {
		t.Error("Index lookup wrong")
	}
	if d, ok := s.Def("x"); !ok || d.Kind != KindFloat {
		t.Error("Def lookup wrong")
	}
	if got := s.Dimensions(); len(got) != 1 || got[0] != "cat" {
		t.Errorf("Dimensions = %v", got)
	}
	if got := s.Measures(); len(got) != 2 || got[0] != "n" || got[1] != "x" {
		t.Errorf("Measures = %v", got)
	}
}

func TestSchemaDuplicateName(t *testing.T) {
	_, err := NewSchema(
		ColumnDef{Name: "a", Kind: KindInt},
		ColumnDef{Name: "a", Kind: KindInt},
	)
	if err == nil {
		t.Fatal("expected error for duplicate column name")
	}
}

func TestSchemaEmptyName(t *testing.T) {
	if _, err := NewSchema(ColumnDef{Name: "", Kind: KindInt}); err == nil {
		t.Fatal("expected error for empty column name")
	}
}

func TestTableAppendAndRead(t *testing.T) {
	tab := NewTable("t", testSchema(t))
	if err := tab.AppendRow(StringVal("a"), Int(1), Float(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendRow(StringVal("b"), Int(2), Float(1.5)); err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tab.NumRows())
	}
	row := tab.Row(1)
	if row[0].S != "b" || row[1].I != 2 || row[2].F != 1.5 {
		t.Errorf("Row(1) = %v", row)
	}
}

func TestTableAppendArity(t *testing.T) {
	tab := NewTable("t", testSchema(t))
	if err := tab.AppendRow(StringVal("a")); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestTableAppendTypeMismatch(t *testing.T) {
	tab := NewTable("t", testSchema(t))
	if err := tab.AppendRow(StringVal("a"), StringVal("not-int"), Float(0)); err == nil {
		t.Fatal("expected type error storing string in int column")
	}
}

func TestTableNullHandling(t *testing.T) {
	tab := NewTable("t", testSchema(t))
	if err := tab.AppendRow(Null, Null, Null); err != nil {
		t.Fatal(err)
	}
	row := tab.Row(0)
	for i, v := range row {
		if !v.IsNull() {
			t.Errorf("cell %d = %v, want NULL", i, v)
		}
	}
	if _, ok := tab.Column("x").Float(0); ok {
		t.Error("Float on NULL cell should report !ok")
	}
}

func TestTableNumericCoercionOnAppend(t *testing.T) {
	tab := NewTable("t", testSchema(t))
	// Float into int column truncates; int into float column widens.
	if err := tab.AppendRow(StringVal("a"), Float(7.9), Int(3)); err != nil {
		t.Fatal(err)
	}
	if got := tab.Column("n").Ints[0]; got != 7 {
		t.Errorf("int column stored %d, want 7", got)
	}
	if got := tab.Column("x").Floats[0]; got != 3 {
		t.Errorf("float column stored %v, want 3", got)
	}
}

func TestTableSubset(t *testing.T) {
	tab := NewTable("t", testSchema(t))
	for i := 0; i < 5; i++ {
		tab.MustAppendRow(StringVal(string(rune('a'+i))), Int(int64(i)), Float(float64(i)))
	}
	sub := tab.Subset("sub", []int{4, 0, 2})
	if sub.NumRows() != 3 {
		t.Fatalf("NumRows = %d", sub.NumRows())
	}
	if sub.Column("n").Ints[0] != 4 || sub.Column("n").Ints[1] != 0 || sub.Column("n").Ints[2] != 2 {
		t.Errorf("subset rows wrong: %v", sub.Column("n").Ints)
	}
}

func TestDistinctValues(t *testing.T) {
	tab := NewTable("t", testSchema(t))
	for _, s := range []string{"b", "a", "b", "c", "a"} {
		tab.MustAppendRow(StringVal(s), Int(0), Float(0))
	}
	got, err := tab.DistinctValues("cat")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("distinct = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distinct = %v, want %v", got, want)
		}
	}
	if _, err := tab.DistinctValues("nope"); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestNumericRange(t *testing.T) {
	tab := NewTable("t", testSchema(t))
	tab.MustAppendRow(StringVal("a"), Int(5), Float(-1.5))
	tab.MustAppendRow(StringVal("b"), Int(-2), Float(9.25))
	lo, hi, ok := tab.NumericRange("x")
	if !ok || lo != -1.5 || hi != 9.25 {
		t.Errorf("NumericRange(x) = %v, %v, %v", lo, hi, ok)
	}
	if _, _, ok := tab.NumericRange("cat"); ok {
		t.Error("string column should have no numeric range")
	}
	if _, _, ok := tab.NumericRange("missing"); ok {
		t.Error("missing column should have no numeric range")
	}
}

func TestSampleRows(t *testing.T) {
	tab := NewTable("t", testSchema(t))
	for i := 0; i < 100; i++ {
		tab.MustAppendRow(StringVal("a"), Int(int64(i)), Float(0))
	}
	s := tab.SampleRows(0.1)
	if len(s) != 10 {
		t.Fatalf("sample size = %d, want 10", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatal("sample indices must be strictly increasing")
		}
	}
	if got := tab.SampleRows(1.0); len(got) != 100 {
		t.Errorf("alpha=1 sample = %d rows, want all", len(got))
	}
	if got := tab.SampleRows(0); got != nil {
		t.Errorf("alpha=0 sample = %v, want nil", got)
	}
	if got := tab.SampleRows(0.001); len(got) != 1 {
		t.Errorf("tiny alpha should clamp to 1 row, got %d", len(got))
	}
}

func TestSampleRowsCoverage(t *testing.T) {
	tab := NewTable("t", testSchema(t))
	for i := 0; i < 1000; i++ {
		tab.MustAppendRow(StringVal("a"), Int(int64(i)), Float(0))
	}
	s := tab.SampleRows(0.05)
	// Stride sampling must cover the whole index range, not just a prefix.
	if s[len(s)-1] < 900 {
		t.Errorf("sample does not reach tail: last index %d", s[len(s)-1])
	}
	if math.Abs(float64(len(s))-50) > 1 {
		t.Errorf("sample size = %d, want ~50", len(s))
	}
}

func TestGroupKeyNulls(t *testing.T) {
	tab := NewTable("t", testSchema(t))
	tab.MustAppendRow(Null, Int(0), Float(0))
	tab.MustAppendRow(Null, Int(1), Float(0))
	c := tab.Column("cat")
	if c.GroupKey(0) != c.GroupKey(1) {
		t.Error("NULLs must share a group key")
	}
	tab.MustAppendRow(StringVal("x"), Int(2), Float(0))
	if c.GroupKey(0) == c.GroupKey(2) {
		t.Error("NULL key must differ from value keys")
	}
}
