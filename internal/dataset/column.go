package dataset

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Column stores one table column unboxed. Exactly one of the backing
// slices is populated, matching Def.Kind; nulls is a bitmap with bit i set
// when row i holds SQL NULL (nil when the column has no nulls). The bitmap
// is sized only up to the highest null row, so readers must bounds-check
// the word index (IsNull does).
type Column struct {
	Def    ColumnDef
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	nulls  []uint64

	// dec caches the one-time numeric decode of an int/bool column as a
	// flat []float64, so scan kernels read every column at full memory
	// bandwidth instead of re-running the per-cell kind switch once per
	// row × measure × layout. Guarded by its own mutex: scans fan out over
	// goroutines and may race to build it.
	dec struct {
		mu   sync.Mutex
		vals []float64
		n    int
	}
}

// NewColumn allocates an empty column for the definition.
func NewColumn(def ColumnDef) *Column { return &Column{Def: def} }

// cloneForAppend returns a copy safe to append to while the receiver keeps
// serving readers. The typed slice is shared but capacity-clamped, so the
// clone's first append reallocates instead of writing into the shared
// backing array; the null bitmap is copied outright because markNull ORs
// into existing words; the decode cache starts empty (it would be rebuilt
// on length change anyway).
func (c *Column) cloneForAppend() *Column {
	out := &Column{Def: c.Def}
	out.Ints = c.Ints[:len(c.Ints):len(c.Ints)]
	out.Floats = c.Floats[:len(c.Floats):len(c.Floats)]
	out.Strs = c.Strs[:len(c.Strs):len(c.Strs)]
	out.Bools = c.Bools[:len(c.Bools):len(c.Bools)]
	if c.nulls != nil {
		out.nulls = append(make([]uint64, 0, len(c.nulls)), c.nulls...)
	}
	return out
}

// Len returns the number of stored cells.
func (c *Column) Len() int {
	switch c.Def.Kind {
	case KindInt:
		return len(c.Ints)
	case KindFloat:
		return len(c.Floats)
	case KindString:
		return len(c.Strs)
	case KindBool:
		return len(c.Bools)
	default:
		return 0
	}
}

// Append adds a value, coercing numerically when needed. Appending NULL
// stores the kind's zero value and records the position as null.
func (c *Column) Append(v Value) error {
	if v.IsNull() {
		c.markNull(c.Len())
		v = zeroOf(c.Def.Kind)
	}
	switch c.Def.Kind {
	case KindInt:
		i, ok := v.AsInt()
		if !ok {
			return fmt.Errorf("dataset: cannot store %s in int column %q", v.Kind, c.Def.Name)
		}
		c.Ints = append(c.Ints, i)
	case KindFloat:
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("dataset: cannot store %s in float column %q", v.Kind, c.Def.Name)
		}
		c.Floats = append(c.Floats, f)
	case KindString:
		if v.Kind != KindString {
			c.Strs = append(c.Strs, v.String())
		} else {
			c.Strs = append(c.Strs, v.S)
		}
	case KindBool:
		if v.Kind != KindBool {
			return fmt.Errorf("dataset: cannot store %s in bool column %q", v.Kind, c.Def.Name)
		}
		c.Bools = append(c.Bools, v.B)
	default:
		return fmt.Errorf("dataset: column %q has invalid kind", c.Def.Name)
	}
	return nil
}

func zeroOf(k Kind) Value {
	switch k {
	case KindInt:
		return Int(0)
	case KindFloat:
		return Float(0)
	case KindString:
		return StringVal("")
	case KindBool:
		return Bool(false)
	default:
		return Null
	}
}

// prefixEqual reports whether the first n cells of c and d are
// bit-identical, including NULL positions (floats compared by bits).
func (c *Column) prefixEqual(d *Column, n int) bool {
	switch c.Def.Kind {
	case KindInt:
		for i := 0; i < n; i++ {
			if c.Ints[i] != d.Ints[i] {
				return false
			}
		}
	case KindFloat:
		for i := 0; i < n; i++ {
			if math.Float64bits(c.Floats[i]) != math.Float64bits(d.Floats[i]) {
				return false
			}
		}
	case KindString:
		for i := 0; i < n; i++ {
			if c.Strs[i] != d.Strs[i] {
				return false
			}
		}
	case KindBool:
		for i := 0; i < n; i++ {
			if c.Bools[i] != d.Bools[i] {
				return false
			}
		}
	}
	// Bitmaps may be sized differently (they stop at the highest null);
	// compare word-wise with missing words as zero and the tail masked to
	// the first n rows.
	nw := (n + 63) >> 6
	for w := 0; w < nw; w++ {
		var a, b uint64
		if w < len(c.nulls) {
			a = c.nulls[w]
		}
		if w < len(d.nulls) {
			b = d.nulls[w]
		}
		if w == nw-1 && n&63 != 0 {
			mask := uint64(1)<<(uint(n)&63) - 1
			a &= mask
			b &= mask
		}
		if a != b {
			return false
		}
	}
	return true
}

// markNull flags row i as NULL, growing the bitmap as needed.
func (c *Column) markNull(i int) {
	w := i >> 6
	for len(c.nulls) <= w {
		c.nulls = append(c.nulls, 0)
	}
	c.nulls[w] |= 1 << (uint(i) & 63)
}

// Value returns the cell at row i as a boxed Value.
func (c *Column) Value(i int) Value {
	if c.IsNull(i) {
		return Null
	}
	switch c.Def.Kind {
	case KindInt:
		return Int(c.Ints[i])
	case KindFloat:
		return Float(c.Floats[i])
	case KindString:
		return StringVal(c.Strs[i])
	case KindBool:
		return Bool(c.Bools[i])
	default:
		return Null
	}
}

// IsNull reports whether the cell at row i is NULL.
func (c *Column) IsNull(i int) bool {
	w := i >> 6
	return w < len(c.nulls) && c.nulls[w]>>(uint(i)&63)&1 == 1
}

// NullBitmap returns the column's null bitmap: bit i of word i/64 is set
// when row i is NULL. The bitmap covers only up to the highest null row
// (nil when the column has none) and is shared, not copied — callers must
// treat it as read-only.
func (c *Column) NullBitmap() []uint64 { return c.nulls }

// NullCount returns the number of NULL cells.
func (c *Column) NullCount() int {
	n := 0
	for _, w := range c.nulls {
		n += bits.OnesCount64(w)
	}
	return n
}

// NumericView returns the column decoded once as a flat []float64 (ints
// and bools widened, bools as 0/1) plus the null bitmap, the decode-once
// view the columnar scan kernels read. Float columns return their backing
// slice directly; int/bool columns decode lazily on first use and cache
// the result, rebuilding if rows were appended since. ok is false for
// string columns, which have no numeric interpretation. NULL rows hold the
// kind's zero value in vals; consult the bitmap to skip them. The returned
// slices are shared — read-only for callers. Safe for concurrent use.
func (c *Column) NumericView() (vals []float64, nulls []uint64, ok bool) {
	switch c.Def.Kind {
	case KindFloat:
		return c.Floats, c.nulls, true
	case KindInt, KindBool:
		return c.decoded(), c.nulls, true
	default:
		return nil, nil, false
	}
}

func (c *Column) decoded() []float64 {
	c.dec.mu.Lock()
	defer c.dec.mu.Unlock()
	n := c.Len()
	if c.dec.vals != nil && c.dec.n == n {
		return c.dec.vals
	}
	vals := make([]float64, n)
	switch c.Def.Kind {
	case KindInt:
		for i, v := range c.Ints {
			vals[i] = float64(v)
		}
	case KindBool:
		for i, v := range c.Bools {
			if v {
				vals[i] = 1
			}
		}
	}
	c.dec.vals, c.dec.n = vals, n
	return vals
}

// Float returns the cell at row i coerced to float64 (0 for NULL or
// non-numeric cells) plus an ok flag. It avoids boxing on the hot
// aggregation path.
func (c *Column) Float(i int) (float64, bool) {
	if c.IsNull(i) {
		return 0, false
	}
	switch c.Def.Kind {
	case KindInt:
		return float64(c.Ints[i]), true
	case KindFloat:
		return c.Floats[i], true
	case KindBool:
		if c.Bools[i] {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// GroupKey returns a compact string key identifying the cell's group value,
// used by hash aggregation. NULLs map to a reserved key and therefore group
// together.
func (c *Column) GroupKey(i int) string {
	if c.IsNull(i) {
		return "\x00null"
	}
	switch c.Def.Kind {
	case KindString:
		return c.Strs[i]
	default:
		return c.Value(i).String()
	}
}
