package dataset

import "fmt"

// Column stores one table column unboxed. Exactly one of the backing
// slices is populated, matching Def.Kind; nulls records positions holding
// SQL NULL (nil when the column has no nulls).
type Column struct {
	Def    ColumnDef
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	nulls  map[int]bool
}

// NewColumn allocates an empty column for the definition.
func NewColumn(def ColumnDef) *Column { return &Column{Def: def} }

// Len returns the number of stored cells.
func (c *Column) Len() int {
	switch c.Def.Kind {
	case KindInt:
		return len(c.Ints)
	case KindFloat:
		return len(c.Floats)
	case KindString:
		return len(c.Strs)
	case KindBool:
		return len(c.Bools)
	default:
		return 0
	}
}

// Append adds a value, coercing numerically when needed. Appending NULL
// stores the kind's zero value and records the position as null.
func (c *Column) Append(v Value) error {
	if v.IsNull() {
		if c.nulls == nil {
			c.nulls = make(map[int]bool)
		}
		c.nulls[c.Len()] = true
		v = zeroOf(c.Def.Kind)
	}
	switch c.Def.Kind {
	case KindInt:
		i, ok := v.AsInt()
		if !ok {
			return fmt.Errorf("dataset: cannot store %s in int column %q", v.Kind, c.Def.Name)
		}
		c.Ints = append(c.Ints, i)
	case KindFloat:
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("dataset: cannot store %s in float column %q", v.Kind, c.Def.Name)
		}
		c.Floats = append(c.Floats, f)
	case KindString:
		if v.Kind != KindString {
			c.Strs = append(c.Strs, v.String())
		} else {
			c.Strs = append(c.Strs, v.S)
		}
	case KindBool:
		if v.Kind != KindBool {
			return fmt.Errorf("dataset: cannot store %s in bool column %q", v.Kind, c.Def.Name)
		}
		c.Bools = append(c.Bools, v.B)
	default:
		return fmt.Errorf("dataset: column %q has invalid kind", c.Def.Name)
	}
	return nil
}

func zeroOf(k Kind) Value {
	switch k {
	case KindInt:
		return Int(0)
	case KindFloat:
		return Float(0)
	case KindString:
		return StringVal("")
	case KindBool:
		return Bool(false)
	default:
		return Null
	}
}

// Value returns the cell at row i as a boxed Value.
func (c *Column) Value(i int) Value {
	if c.nulls != nil && c.nulls[i] {
		return Null
	}
	switch c.Def.Kind {
	case KindInt:
		return Int(c.Ints[i])
	case KindFloat:
		return Float(c.Floats[i])
	case KindString:
		return StringVal(c.Strs[i])
	case KindBool:
		return Bool(c.Bools[i])
	default:
		return Null
	}
}

// IsNull reports whether the cell at row i is NULL.
func (c *Column) IsNull(i int) bool { return c.nulls != nil && c.nulls[i] }

// Float returns the cell at row i coerced to float64 (0 for NULL or
// non-numeric cells) plus an ok flag. It avoids boxing on the hot
// aggregation path.
func (c *Column) Float(i int) (float64, bool) {
	if c.IsNull(i) {
		return 0, false
	}
	switch c.Def.Kind {
	case KindInt:
		return float64(c.Ints[i]), true
	case KindFloat:
		return c.Floats[i], true
	case KindBool:
		if c.Bools[i] {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// GroupKey returns a compact string key identifying the cell's group value,
// used by hash aggregation. NULLs map to a reserved key and therefore group
// together.
func (c *Column) GroupKey(i int) string {
	if c.IsNull(i) {
		return "\x00null"
	}
	switch c.Def.Kind {
	case KindString:
		return c.Strs[i]
	default:
		return c.Value(i).String()
	}
}
