package dataset

import "math/rand"

// SYNConfig parameterises the synthetic numerical dataset of the paper's
// testbed (Table 1): 1M records, 5 dimension attributes, 5 measure
// attributes, uniformly distributed values.
type SYNConfig struct {
	// Rows is the record count. The paper uses 1e6; tests use less.
	Rows int
	// Seed drives the deterministic PRNG.
	Seed int64
	// Correlate, when true, shifts the measure distributions inside the
	// canonical DQ hypercube (see SYNQuery) so that target views deviate
	// from reference views by more than sampling noise. The paper's SYN is
	// purely uniform; correlation is an option for demos that want visible
	// insights.
	Correlate bool
}

// DefaultSYNConfig returns the paper's SYN parameters at full scale.
func DefaultSYNConfig() SYNConfig { return SYNConfig{Rows: 1_000_000, Seed: 1} }

// SYNQuery is the canonical hypercube predicate the testbed uses to carve
// DQ out of SYN. Its selectivity is 0.0707^2 over two independent uniform
// dimensions, ~0.5% of the records, matching Table 1.
const SYNQuery = "SELECT * FROM syn WHERE d1 < 0.0707 AND d2 < 0.0707"

// GenerateSYN builds the SYN table: numeric dimensions d1..d5 in [0,1) and
// numeric measures m1..m5 in [0,100).
func GenerateSYN(cfg SYNConfig) *Table {
	const nDims, nMeasures = 5, 5
	defs := make([]ColumnDef, 0, nDims+nMeasures)
	dimNames := []string{"d1", "d2", "d3", "d4", "d5"}
	measureNames := []string{"m1", "m2", "m3", "m4", "m5"}
	for _, n := range dimNames {
		defs = append(defs, ColumnDef{Name: n, Kind: KindFloat, Role: RoleDimension})
	}
	for _, n := range measureNames {
		defs = append(defs, ColumnDef{Name: n, Kind: KindFloat, Role: RoleMeasure})
	}
	t := NewTable("syn", MustSchema(defs...))
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < nDims+nMeasures; i++ {
		t.Cols[i].Floats = make([]float64, cfg.Rows)
	}
	for r := 0; r < cfg.Rows; r++ {
		inCube := true
		for d := 0; d < nDims; d++ {
			v := rng.Float64()
			t.Cols[d].Floats[r] = v
			if d < 2 && v >= 0.0707 {
				inCube = false
			}
		}
		for m := 0; m < nMeasures; m++ {
			v := rng.Float64() * 100
			if cfg.Correlate && inCube {
				// Skew each measure differently inside the hypercube so the
				// deviation features separate views rather than collapsing
				// into one global shift.
				v = v*0.6 + float64(m+1)*8 + t.Cols[2].Floats[r]*20
				if v > 100 {
					v = 100
				}
			}
			t.Cols[nDims+m].Floats[r] = v
		}
	}
	if err := t.sealRows(); err != nil {
		panic(err)
	}
	return t
}
