package dataset

import (
	"fmt"
	"math/rand"
)

// NBAConfig parameterises the NBA player-game dataset behind the paper's
// motivating example (Figure 1): a view comparing the 3-point attempt rate
// of a selected championship team against the league.
type NBAConfig struct {
	Rows int
	Seed int64
	// HotTeam is the team whose players attempt far more threes than the
	// league; defaults to "GSW".
	HotTeam string
}

// DefaultNBAConfig returns a season-sized dataset.
func DefaultNBAConfig() NBAConfig { return NBAConfig{Rows: 30_000, Seed: 3, HotTeam: "GSW"} }

// NBAQueryFor returns the query carving the selected team's records out of
// the league table.
func NBAQueryFor(team string) string {
	return fmt.Sprintf("SELECT * FROM nba WHERE team = '%s'", team)
}

var nbaTeams = []string{
	"ATL", "BOS", "BKN", "CHA", "CHI", "CLE", "DAL", "DEN", "DET", "GSW",
	"HOU", "IND", "LAC", "LAL", "MEM", "MIA", "MIL", "MIN", "NOP", "NYK",
	"OKC", "ORL", "PHI", "PHX", "POR", "SAC", "SAS", "TOR", "UTA", "WAS",
}

var nbaPositions = []string{"PG", "SG", "SF", "PF", "C"}

// GenerateNBA builds per-player-game records: dimensions team, position,
// experience; measures three_pt_attempts, three_pt_rate (per 100 field-goal
// attempts), points, assists, rebounds.
func GenerateNBA(cfg NBAConfig) *Table {
	if cfg.HotTeam == "" {
		cfg.HotTeam = "GSW"
	}
	schema := MustSchema(
		ColumnDef{Name: "team", Kind: KindString, Role: RoleDimension},
		ColumnDef{Name: "position", Kind: KindString, Role: RoleDimension},
		ColumnDef{Name: "experience", Kind: KindString, Role: RoleDimension},
		ColumnDef{Name: "three_pt_attempts", Kind: KindFloat, Role: RoleMeasure},
		ColumnDef{Name: "three_pt_rate", Kind: KindFloat, Role: RoleMeasure},
		ColumnDef{Name: "points", Kind: KindFloat, Role: RoleMeasure},
		ColumnDef{Name: "assists", Kind: KindFloat, Role: RoleMeasure},
		ColumnDef{Name: "rebounds", Kind: KindFloat, Role: RoleMeasure},
	)
	t := NewTable("nba", schema)
	rng := rand.New(rand.NewSource(cfg.Seed))
	exp := []string{"rookie", "veteran", "star"}
	for r := 0; r < cfg.Rows; r++ {
		team := nbaTeams[rng.Intn(len(nbaTeams))]
		pos := nbaPositions[rng.Intn(len(nbaPositions))]
		e := exp[sampleWeighted(rng, []float64{0.3, 0.55, 0.15})]
		// Guards shoot more threes than bigs league-wide; the hot team not
		// only shoots more, its bigs shoot threes too — so the *shape* of
		// its three-point profile across positions differs from the
		// league's, which is what a deviation-based view surfaces
		// (Figure 1). A uniform scale-up would vanish under histogram
		// normalisation.
		posFactor := map[string]float64{"PG": 1.3, "SG": 1.4, "SF": 1.1, "PF": 0.8, "C": 0.4}[pos]
		if team == cfg.HotTeam {
			posFactor = map[string]float64{"PG": 1.5, "SG": 1.6, "SF": 1.5, "PF": 1.4, "C": 1.3}[pos]
		}
		base := 5.0 * posFactor
		attempts := base + rng.NormFloat64()*1.5
		if attempts < 0 {
			attempts = 0
		}
		fga := 15 + rng.NormFloat64()*3
		if fga < attempts {
			fga = attempts + 1
		}
		rate := attempts / fga * 100
		pts := fga*1.1 + attempts*0.4 + rng.NormFloat64()*4
		if pts < 0 {
			pts = 0
		}
		ast := map[string]float64{"PG": 7, "SG": 4, "SF": 3, "PF": 2, "C": 1.5}[pos] + rng.NormFloat64()
		if ast < 0 {
			ast = 0
		}
		reb := map[string]float64{"PG": 3, "SG": 3.5, "SF": 5, "PF": 8, "C": 10}[pos] + rng.NormFloat64()*1.5
		if reb < 0 {
			reb = 0
		}
		t.MustAppendRow(
			StringVal(team), StringVal(pos), StringVal(e),
			Float(attempts), Float(rate), Float(pts), Float(ast), Float(reb),
		)
	}
	return t
}
