package exp

import (
	"encoding/csv"
	"fmt"
	"os"
	"time"
)

// WriteEffortCSV writes Figure 3/4-style series as CSV rows
// (dataset, components, k, labels) — one file per figure panel set, ready
// for external plotting tools.
func WriteEffortCSV(path string, curves []*EffortCurve) error {
	return writeCSV(path, []string{"dataset", "components", "k", "labels"}, func(w *csv.Writer) error {
		for _, c := range curves {
			for i, k := range c.Ks {
				if err := w.Write([]string{
					c.Dataset, fmt.Sprint(c.Components), fmt.Sprint(k),
					fmt.Sprintf("%.3f", c.Labels[i]),
				}); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// WriteBaselinesCSV writes the Figure 5 bars (ranker, precision).
func WriteBaselinesCSV(path, fnName string, results []BaselineResult) error {
	return writeCSV(path, []string{"ideal_function", "ranker", "precision"}, func(w *csv.Writer) error {
		for _, r := range results {
			if err := w.Write([]string{fnName, r.Name, fmt.Sprintf("%.3f", r.Precision)}); err != nil {
				return err
			}
		}
		return nil
	})
}

// WriteOptimizationCSV writes the Figure 6/7 series: labels and runtimes
// (in milliseconds) for both configurations.
func WriteOptimizationCSV(path string, c *OptimizationCurve) error {
	header := []string{"dataset", "components", "alpha", "k",
		"labels_baseline", "labels_optimized", "ms_baseline", "ms_optimized"}
	return writeCSV(path, header, func(w *csv.Writer) error {
		for _, p := range c.Points {
			if err := w.Write([]string{
				c.Dataset, fmt.Sprint(c.Components), fmt.Sprintf("%.2f", c.Alpha), fmt.Sprint(p.K),
				fmt.Sprintf("%.3f", p.LabelsBaseline), fmt.Sprintf("%.3f", p.LabelsOptimized),
				fmt.Sprintf("%.3f", float64(p.TimeBaseline)/float64(time.Millisecond)),
				fmt.Sprintf("%.3f", float64(p.TimeOptimized)/float64(time.Millisecond)),
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

func writeCSV(path string, header []string, body func(w *csv.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := body(w); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}
