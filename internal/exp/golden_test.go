package exp

import (
	"bytes"
	"fmt"
	"testing"

	"viewseeker/internal/sim"
)

// TestPipelineDeterminism runs the same tiny experiment twice from scratch
// and requires byte-identical reports: the whole pipeline — generators,
// SQL, feature computation (including its concurrent warm-up), learners,
// selection — must be a pure function of its seeds.
func TestPipelineDeterminism(t *testing.T) {
	render := func() string {
		tb, err := NewDIABTestbed(4000, 77)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		curve, err := LabelsToFullPrecision(tb, 1, []int{5, 10})
		if err != nil {
			t.Fatal(err)
		}
		if err := ReportEffort(&buf, "det", []*EffortCurve{curve}); err != nil {
			t.Fatal(err)
		}
		results, err := BaselineComparison(tb, sim.IdealFunctions()[10], 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := ReportBaselines(&buf, "u11", results); err != nil {
			t.Fatal(err)
		}
		// A fingerprint of the feature matrix itself.
		sum := 0.0
		for _, row := range tb.Exact.Rows {
			for _, v := range row {
				sum += v
			}
		}
		fmt.Fprintf(&buf, "matrix checksum: %.12g\n", sum)
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("pipeline is not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestSeedSensitivity: different seeds must actually change the data (a
// stuck seed would silently undermine every averaged experiment).
func TestSeedSensitivity(t *testing.T) {
	tb1, err := NewDIABTestbed(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb2, err := NewDIABTestbed(2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range tb1.Exact.Rows {
		for j := range tb1.Exact.Rows[i] {
			if tb1.Exact.Rows[i][j] != tb2.Exact.Rows[i][j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical feature matrices")
	}
}

// TestPaperScaleSYNSoak exercises the full pipeline at a closer-to-paper
// SYN scale (300k rows, the full 250-view space, both bin configurations).
// Skipped under -short.
func TestPaperScaleSYNSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale soak skipped in short mode")
	}
	tb, err := NewSYNTestbed(300_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Gen.Specs()) != 250 {
		t.Fatalf("view space = %d", len(tb.Gen.Specs()))
	}
	ratio := float64(tb.Target.NumRows()) / float64(tb.Ref.NumRows())
	if ratio < 0.003 || ratio > 0.008 {
		t.Errorf("DQ ratio = %.4f", ratio)
	}
	curve, err := LabelsToFullPrecision(tb, 1, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if !curve.Converged {
		t.Errorf("paper-scale session did not converge: %.1f labels", curve.Labels[0])
	}
	if curve.Labels[0] > 30 {
		t.Errorf("labels = %.1f, want the paper's low-effort band", curve.Labels[0])
	}
}
