// Package exp reproduces the paper's evaluation: it assembles the DIAB
// and SYN testbeds (Table 1), the simulated ideal utility functions
// (Table 2), and one driver per figure — user effort to 100% precision
// (Figures 3–4), the single-feature baseline comparison (Figure 5), and
// the optimisation study (Figures 6–7). Each driver returns plain result
// structs; report.go renders them as the text tables the cmd/experiments
// tool prints.
//
// # Contracts
//
// Reproducibility: every driver is deterministic end to end — seeded
// testbed generation, seeded simulated users, deterministic selection —
// so two runs of the same experiment produce identical tables. Drivers
// that fan out across sessions use internal/par with order-independent
// result slots, so worker count changes wall time, never results.
package exp
