package exp

import (
	"fmt"
	"time"

	"viewseeker/internal/dataset"
	"viewseeker/internal/feature"
	"viewseeker/internal/sql"
	"viewseeker/internal/view"
)

// Testbed bundles one dataset configuration: the reference table DR, the
// query-defined subset DQ, the view generator, the feature registry and
// the exact (ground truth) feature matrix.
type Testbed struct {
	Name     string
	Ref      *dataset.Table
	Target   *dataset.Table
	Query    string
	Gen      *view.Generator
	Registry *feature.Registry
	Exact    *feature.Matrix
	// ExactBuild is how long the full offline feature pass took — the
	// unoptimised offline cost that Figure 7 compares against.
	ExactBuild time.Duration
}

// NewDIABTestbed builds the diabetic-patients testbed. rows ≤ 0 uses the
// paper's 100k scale.
func NewDIABTestbed(rows int, seed int64) (*Testbed, error) {
	cfg := dataset.DefaultDIABConfig()
	if rows > 0 {
		cfg.Rows = rows
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	ref := dataset.GenerateDIAB(cfg)
	return newTestbed("DIAB", ref, dataset.DIABQuery, view.SpaceConfig{})
}

// NewSYNTestbed builds the synthetic testbed with its two bin
// configurations. rows ≤ 0 uses the paper's 1M scale.
func NewSYNTestbed(rows int, seed int64) (*Testbed, error) {
	cfg := dataset.DefaultSYNConfig()
	if rows > 0 {
		cfg.Rows = rows
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	ref := dataset.GenerateSYN(cfg)
	return newTestbed("SYN", ref, dataset.SYNQuery, view.SpaceConfig{BinCounts: []int{3, 4}})
}

func newTestbed(name string, ref *dataset.Table, query string, spaceCfg view.SpaceConfig) (*Testbed, error) {
	cat := sql.NewCatalog()
	cat.Register(ref)
	target, err := cat.Query(query)
	if err != nil {
		return nil, fmt.Errorf("exp: carving DQ for %s: %w", name, err)
	}
	if target.NumRows() == 0 {
		return nil, fmt.Errorf("exp: DQ query selected no rows for %s", name)
	}
	target.Name = "dq"
	gen, err := view.NewGenerator(ref, target, spaceCfg)
	if err != nil {
		return nil, err
	}
	reg := feature.StandardRegistry()
	start := time.Now()
	exact, err := feature.Compute(gen, reg)
	if err != nil {
		return nil, err
	}
	return &Testbed{
		Name: name, Ref: ref, Target: target, Query: query,
		Gen: gen, Registry: reg, Exact: exact, ExactBuild: time.Since(start),
	}, nil
}

// NewGeneratorLike rebuilds a fresh view generator over the testbed's
// tables. Timed experiments need one per run: generators cache full-data
// group statistics, and sharing those caches across an unoptimised run and
// the optimised run it is compared against would contaminate the timings.
func (tb *Testbed) NewGeneratorLike() (*view.Generator, error) {
	cfg := view.SpaceConfig{}
	if tb.Name == "SYN" {
		cfg.BinCounts = []int{3, 4}
	}
	return view.NewGenerator(tb.Ref, tb.Target, cfg)
}

// Table1Row is one parameter line of the testbed table.
type Table1Row struct{ Parameter, Value string }

// Table1 returns the testbed-parameter rows the paper's Table 1 lists,
// populated from the live testbeds.
func Table1(diab, syn *Testbed) []Table1Row {
	rows := []Table1Row{
		{"Total number of records (DIAB)", fmt.Sprint(diab.Ref.NumRows())},
		{"Total number of records (SYN)", fmt.Sprint(syn.Ref.NumRows())},
		{"Cardinality ratio of records in DQ (DIAB)", fmt.Sprintf("%.2f%%", 100*float64(diab.Target.NumRows())/float64(diab.Ref.NumRows()))},
		{"Cardinality ratio of records in DQ (SYN)", fmt.Sprintf("%.2f%%", 100*float64(syn.Target.NumRows())/float64(syn.Ref.NumRows()))},
		{"Number of dimension attributes (DIAB)", fmt.Sprint(len(diab.Ref.Schema.Dimensions()))},
		{"Number of dimension attributes (SYN)", fmt.Sprint(len(syn.Ref.Schema.Dimensions()))},
		{"Number of measure attributes (DIAB)", fmt.Sprint(len(diab.Ref.Schema.Measures()))},
		{"Number of measure attributes (SYN)", fmt.Sprint(len(syn.Ref.Schema.Measures()))},
		{"Number of aggregation functions", fmt.Sprint(len(view.Aggregates))},
		{"Number of view utility features", fmt.Sprint(diab.Registry.Len())},
		{"View space (DIAB)", fmt.Sprint(len(diab.Gen.Specs()))},
		{"View space (SYN)", fmt.Sprint(len(syn.Gen.Specs()))},
		{"Utility estimator", "Linear regressor"},
		{"Number of views presented per iteration", "1"},
		{"Optimization partial data ratio alpha", "10%"},
		{"Optimization time limit per iteration", "1 second"},
	}
	return rows
}
