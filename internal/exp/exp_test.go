package exp

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"viewseeker/internal/sim"
)

// Test-scale testbeds: small row counts keep every experiment driver
// exercised end-to-end without paper-scale runtimes.
func testDIAB(t *testing.T) *Testbed {
	t.Helper()
	tb, err := NewDIABTestbed(6000, 31)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func testSYN(t *testing.T) *Testbed {
	t.Helper()
	tb, err := NewSYNTestbed(20_000, 32)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestTestbedShapes(t *testing.T) {
	diab := testDIAB(t)
	if got := len(diab.Gen.Specs()); got != 280 {
		t.Errorf("DIAB view space = %d, want 280", got)
	}
	if diab.Target.NumRows() == 0 || diab.Target.NumRows() >= diab.Ref.NumRows()/10 {
		t.Errorf("DQ size = %d of %d", diab.Target.NumRows(), diab.Ref.NumRows())
	}
	if !diab.Exact.AllExact() {
		t.Error("testbed matrix must be exact")
	}
	syn := testSYN(t)
	if got := len(syn.Gen.Specs()); got != 250 {
		t.Errorf("SYN view space = %d, want 250", got)
	}
}

func TestTable1(t *testing.T) {
	diab, syn := testDIAB(t), testSYN(t)
	rows := Table1(diab, syn)
	if len(rows) < 10 {
		t.Fatalf("table 1 rows = %d", len(rows))
	}
	var buf bytes.Buffer
	if err := ReportTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"280", "250", "Linear regressor"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelsToFullPrecision(t *testing.T) {
	tb := testDIAB(t)
	curve, err := LabelsToFullPrecision(tb, 1, []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Labels) != 2 {
		t.Fatalf("curve points = %d", len(curve.Labels))
	}
	if !curve.Converged {
		t.Error("single-component sessions should converge at test scale")
	}
	// The headline claim: a handful of labels suffices (paper: 7–16).
	for i, l := range curve.Labels {
		if l < 2 || l > 40 {
			t.Errorf("k=%d needs %.1f labels, outside sane range", curve.Ks[i], l)
		}
	}
	if _, err := LabelsToFullPrecision(tb, 9, nil); err == nil {
		t.Error("unknown component count should fail")
	}
}

func TestBaselineComparison(t *testing.T) {
	tb := testDIAB(t)
	fn := sim.IdealFunctions()[10] // u* #11, the paper's Figure 5 target
	results, err := BaselineComparison(tb, fn, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 9 { // 8 features + ViewSeeker
		t.Fatalf("results = %d", len(results))
	}
	var vsPrec, bestBaseline float64
	for _, r := range results {
		if r.Name == "ViewSeeker" {
			vsPrec = r.Precision
		} else if r.Precision > bestBaseline {
			bestBaseline = r.Precision
		}
	}
	if vsPrec < 1 {
		t.Errorf("ViewSeeker precision = %v, want 1.0", vsPrec)
	}
	if bestBaseline >= vsPrec {
		t.Errorf("best single feature (%.2f) should lose to ViewSeeker (%.2f)", bestBaseline, vsPrec)
	}
	var buf bytes.Buffer
	if err := ReportBaselines(&buf, fn.Name(), results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ViewSeeker") {
		t.Error("report missing ViewSeeker row")
	}
}

func TestOptimizationStudy(t *testing.T) {
	tb := testDIAB(t)
	curve, err := OptimizationStudy(tb, 1, []int{5}, 0.1, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 1 {
		t.Fatalf("points = %d", len(curve.Points))
	}
	p := curve.Points[0]
	if p.LabelsBaseline <= 0 || p.LabelsOptimized <= 0 {
		t.Errorf("labels: baseline=%v optimized=%v", p.LabelsBaseline, p.LabelsOptimized)
	}
	if p.TimeBaseline <= 0 || p.TimeOptimized <= 0 {
		t.Errorf("times: baseline=%v optimized=%v", p.TimeBaseline, p.TimeOptimized)
	}
	var buf bytes.Buffer
	if err := ReportOptimization(&buf, curve); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "alpha=10%") {
		t.Errorf("report:\n%s", buf.String())
	}
}

func TestReportTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := ReportTable2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "0.3 * EMD + 0.3 * KL + 0.4 * ACCURACY") {
		t.Errorf("table 2 output missing u* #11:\n%s", out)
	}
}

func TestReportEffort(t *testing.T) {
	tb := testDIAB(t)
	curve, err := LabelsToFullPrecision(tb, 2, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ReportEffort(&buf, "Figure 3b", []*EffortCurve{curve}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2-component") {
		t.Errorf("report:\n%s", buf.String())
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTable(&buf, []string{"a", "long-header"}, [][]string{{"1", "2"}, {"333", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
}

func TestCSVOutputs(t *testing.T) {
	tb := testDIAB(t)
	dir := t.TempDir()

	curve, err := LabelsToFullPrecision(tb, 1, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	effortPath := dir + "/fig3.csv"
	if err := WriteEffortCSV(effortPath, []*EffortCurve{curve}); err != nil {
		t.Fatal(err)
	}
	assertCSV(t, effortPath, "dataset,components,k,labels", 2)

	fn := sim.IdealFunctions()[10]
	results, err := BaselineComparison(tb, fn, 5)
	if err != nil {
		t.Fatal(err)
	}
	basePath := dir + "/fig5.csv"
	if err := WriteBaselinesCSV(basePath, fn.Name(), results); err != nil {
		t.Fatal(err)
	}
	assertCSV(t, basePath, "ideal_function,ranker,precision", 10)

	opt, err := OptimizationStudy(tb, 1, []int{5}, 0.1, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	optPath := dir + "/fig67.csv"
	if err := WriteOptimizationCSV(optPath, opt); err != nil {
		t.Fatal(err)
	}
	assertCSV(t, optPath, "dataset,components,alpha,k,labels_baseline,labels_optimized,ms_baseline,ms_optimized", 2)
}

// assertCSV checks the file starts with the header and has the expected
// number of lines.
func assertCSV(t *testing.T, path, header string, lines int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Split(strings.TrimSpace(string(data)), "\n")
	if got[0] != header {
		t.Errorf("%s header = %q, want %q", path, got[0], header)
	}
	if len(got) != lines {
		t.Errorf("%s has %d lines, want %d", path, len(got), lines)
	}
}
