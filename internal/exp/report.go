package exp

import (
	"fmt"
	"io"
	"strings"
	"time"

	"viewseeker/internal/sim"
)

// WriteTable renders an aligned text table.
func WriteTable(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(headers))
		for i := range headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

// ReportTable1 prints the testbed parameters.
func ReportTable1(w io.Writer, rows []Table1Row) error {
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{r.Parameter, r.Value}
	}
	fmt.Fprintln(w, "Table 1: Testbed Parameters")
	return WriteTable(w, []string{"Parameter", "Value"}, cells)
}

// ReportTable2 prints the simulated ideal utility functions.
func ReportTable2(w io.Writer) error {
	fmt.Fprintln(w, "Table 2: Simulated Ideal Utility Functions")
	var cells [][]string
	for _, f := range sim.IdealFunctions() {
		cells = append(cells, []string{fmt.Sprint(f.ID), f.Name()})
	}
	return WriteTable(w, []string{"#", "Involved utility features and weights"}, cells)
}

// ReportEffort prints one Figure 3/4 panel.
func ReportEffort(w io.Writer, figure string, curves []*EffortCurve) error {
	for _, c := range curves {
		fmt.Fprintf(w, "%s: labels to reach 100%% top-k precision — %s, %d-component u*()\n",
			figure, c.Dataset, c.Components)
		var cells [][]string
		for i, k := range c.Ks {
			cells = append(cells, []string{fmt.Sprint(k), fmt.Sprintf("%.1f", c.Labels[i])})
		}
		if err := WriteTable(w, []string{"k", "labels"}, cells); err != nil {
			return err
		}
		if !c.Converged {
			fmt.Fprintln(w, "(warning: some sessions hit the label budget before full precision)")
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ReportBaselines prints the Figure 5 panel.
func ReportBaselines(w io.Writer, fnName string, results []BaselineResult) error {
	fmt.Fprintf(w, "Figure 5: precision vs single utility features (u*() = %s)\n", fnName)
	var cells [][]string
	for _, r := range results {
		cells = append(cells, []string{r.Name, fmt.Sprintf("%.2f", r.Precision)})
	}
	return WriteTable(w, []string{"ranker", "precision"}, cells)
}

// ReportOptimization prints one Figure 6 + Figure 7 panel pair.
func ReportOptimization(w io.Writer, c *OptimizationCurve) error {
	fmt.Fprintf(w, "Figures 6/7: optimisation study — %s, %d-component u*(), alpha=%.0f%%\n",
		c.Dataset, c.Components, c.Alpha*100)
	var cells [][]string
	for _, p := range c.Points {
		cells = append(cells, []string{
			fmt.Sprint(p.K),
			fmt.Sprintf("%.1f", p.LabelsBaseline),
			fmt.Sprintf("%.1f", p.LabelsOptimized),
			p.TimeBaseline.Round(100 * time.Microsecond).String(),
			p.TimeOptimized.Round(100 * time.Microsecond).String(),
		})
	}
	return WriteTable(w,
		[]string{"k", "labels (no opt)", "labels (opt)", "runtime (no opt)", "runtime (opt)"},
		cells)
}
