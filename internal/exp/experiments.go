package exp

import (
	"fmt"
	"time"

	"viewseeker/internal/core"
	"viewseeker/internal/feature"
	"viewseeker/internal/sim"
)

// DefaultKs is the k sweep of Figures 3, 4, 6 and 7.
var DefaultKs = []int{5, 10, 15, 20, 25, 30}

// defaultMaxLabels bounds simulated sessions; the paper's sessions finish
// in 7–16 labels, so 100 is a generous safety margin.
const defaultMaxLabels = 100

// EffortCurve is one averaged series of Figures 3/4: labels needed to
// reach 100% top-k precision as a function of k, averaged over an ideal-
// utility-function group.
type EffortCurve struct {
	Dataset    string
	Components int // 1, 2 or 3 — the u* group
	Ks         []int
	Labels     []float64 // average labels per k
	Converged  bool      // every underlying session converged
}

// LabelsToFullPrecision runs Experiment 1 for one testbed and one u*
// group: for each k it averages, over the group's ideal functions, the
// number of labels the seeker needs before top-k precision reaches 100%.
func LabelsToFullPrecision(tb *Testbed, components int, ks []int) (*EffortCurve, error) {
	fns := sim.IdealFunctionsWithComponents(components)
	if len(fns) == 0 {
		return nil, fmt.Errorf("exp: no ideal functions with %d components", components)
	}
	if len(ks) == 0 {
		ks = DefaultKs
	}
	curve := &EffortCurve{Dataset: tb.Name, Components: components, Ks: ks, Converged: true}
	for _, k := range ks {
		total := 0.0
		for _, fn := range fns {
			user, err := sim.NewUser(fn, tb.Exact)
			if err != nil {
				return nil, err
			}
			seeker, err := core.NewSeeker(tb.Exact, core.Config{K: k}, false)
			if err != nil {
				return nil, err
			}
			runner := &sim.Runner{Seeker: seeker, User: user, K: k,
				MaxLabels: defaultMaxLabels, Criterion: sim.StopAtFullPrecision}
			res, err := runner.Run()
			if err != nil {
				return nil, fmt.Errorf("exp: %s u*#%d k=%d: %w", tb.Name, fn.ID, k, err)
			}
			if !res.Converged {
				curve.Converged = false
			}
			total += float64(res.LabelsUsed)
		}
		curve.Labels = append(curve.Labels, total/float64(len(fns)))
	}
	return curve, nil
}

// BaselineResult is one bar of Figure 5: the maximum top-k precision a
// fixed ranker achieves against the ideal utility function.
type BaselineResult struct {
	Name      string
	Precision float64
}

// BaselineComparison runs Experiment 2 (Figure 5): for the given ideal
// function (the paper uses u* #11 on DIAB, k=10), it measures the
// precision of each single utility feature used as a fixed ranker, and of
// ViewSeeker after an interactive session.
func BaselineComparison(tb *Testbed, fn sim.IdealFunction, k int) ([]BaselineResult, error) {
	if k <= 0 {
		k = 10
	}
	user, err := sim.NewUser(fn, tb.Exact)
	if err != nil {
		return nil, err
	}
	var out []BaselineResult
	for j, name := range tb.Exact.Names {
		scores := make([]float64, tb.Exact.Len())
		for i, row := range tb.Exact.Rows {
			scores[i] = row[j]
		}
		pred := sim.TopKByScore(scores, k)
		p, err := sim.Precision(pred, user.Scores(), k)
		if err != nil {
			return nil, err
		}
		out = append(out, BaselineResult{Name: name, Precision: p})
	}
	seeker, err := core.NewSeeker(tb.Exact, core.Config{K: k}, false)
	if err != nil {
		return nil, err
	}
	runner := &sim.Runner{Seeker: seeker, User: user, K: k,
		MaxLabels: defaultMaxLabels, Criterion: sim.StopAtFullPrecision}
	res, err := runner.Run()
	if err != nil {
		return nil, err
	}
	out = append(out, BaselineResult{Name: "ViewSeeker", Precision: res.FinalPrecision})
	return out, nil
}

// OptimizationPoint is one k of Figures 6 and 7: labels to UD=0 and total
// system runtime, with and without the α-sampling + incremental-refinement
// optimisation.
type OptimizationPoint struct {
	K               int
	LabelsBaseline  float64
	LabelsOptimized float64
	TimeBaseline    time.Duration
	TimeOptimized   time.Duration
}

// OptimizationCurve is one u*-group series of Figures 6/7.
type OptimizationCurve struct {
	Dataset    string
	Components int
	Alpha      float64
	Points     []OptimizationPoint
}

// OptimizationStudy compares the optimisations-enabled ViewSeeker against
// the optimisations-disabled baseline (Section 5.2): both run to UD = 0;
// runtime includes the offline feature pass plus all session compute.
func OptimizationStudy(tb *Testbed, components int, ks []int, alpha float64, budget time.Duration) (*OptimizationCurve, error) {
	fns := sim.IdealFunctionsWithComponents(components)
	if len(fns) == 0 {
		return nil, fmt.Errorf("exp: no ideal functions with %d components", components)
	}
	if len(ks) == 0 {
		ks = DefaultKs
	}
	if alpha <= 0 {
		alpha = 0.1
	}
	if budget <= 0 {
		budget = time.Second
	}
	curve := &OptimizationCurve{Dataset: tb.Name, Components: components, Alpha: alpha}
	for _, k := range ks {
		pt := OptimizationPoint{K: k}
		for _, fn := range fns {
			user, err := sim.NewUser(fn, tb.Exact)
			if err != nil {
				return nil, err
			}

			// Baseline: full offline pass, no refinement.
			gen, err := tb.NewGeneratorLike()
			if err != nil {
				return nil, err
			}
			start := time.Now()
			exact, err := feature.Compute(gen, tb.Registry)
			if err != nil {
				return nil, err
			}
			seeker, err := core.NewSeeker(exact, core.Config{K: k}, false)
			if err != nil {
				return nil, err
			}
			res, err := (&sim.Runner{Seeker: seeker, User: user, K: k,
				MaxLabels: defaultMaxLabels, Criterion: sim.StopAtZeroUD}).Run()
			if err != nil {
				return nil, err
			}
			pt.TimeBaseline += time.Since(start)
			pt.LabelsBaseline += float64(res.LabelsUsed)

			// Optimised: α-sample offline pass + rank-ordered refinement.
			gen, err = tb.NewGeneratorLike()
			if err != nil {
				return nil, err
			}
			start = time.Now()
			partial, err := feature.ComputePartial(gen, tb.Registry, alpha)
			if err != nil {
				return nil, err
			}
			seeker, err = core.NewSeeker(partial, core.Config{K: k, RefineBudget: budget}, true)
			if err != nil {
				return nil, err
			}
			res, err = (&sim.Runner{Seeker: seeker, User: user, K: k,
				MaxLabels: defaultMaxLabels, Criterion: sim.StopAtZeroUD}).Run()
			if err != nil {
				return nil, err
			}
			pt.TimeOptimized += time.Since(start)
			pt.LabelsOptimized += float64(res.LabelsUsed)
		}
		n := float64(len(fns))
		pt.LabelsBaseline /= n
		pt.LabelsOptimized /= n
		pt.TimeBaseline /= time.Duration(n)
		pt.TimeOptimized /= time.Duration(n)
		curve.Points = append(curve.Points, pt)
	}
	return curve, nil
}
