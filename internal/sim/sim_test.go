package sim

import (
	"math"
	"testing"

	"viewseeker/internal/core"
	"viewseeker/internal/dataset"
	"viewseeker/internal/feature"
	"viewseeker/internal/view"
)

func exactMatrix(t *testing.T) *feature.Matrix {
	t.Helper()
	ref := dataset.GenerateDIAB(dataset.DIABConfig{Rows: 4000, Seed: 21})
	var rows []int
	diag := ref.Column("diag_group").Strs
	age := ref.Column("age_group").Strs
	for i := range diag {
		if diag[i] == "diabetes" && (age[i] == "[80-90)" || age[i] == "[90-100)") {
			rows = append(rows, i)
		}
	}
	tgt := ref.Subset("tgt", rows)
	g, err := view.NewGenerator(ref, tgt, view.SpaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := feature.Compute(g, feature.StandardRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIdealFunctionsTable2(t *testing.T) {
	fns := IdealFunctions()
	if len(fns) != 11 {
		t.Fatalf("Table 2 has 11 functions, got %d", len(fns))
	}
	counts := map[int]int{}
	for i, f := range fns {
		if f.ID != i+1 {
			t.Errorf("function %d has ID %d", i, f.ID)
		}
		total := 0.0
		for _, c := range f.Components {
			total += c.Weight
		}
		if math.Abs(total-1) > 1e-12 {
			t.Errorf("function %d weights sum to %v, want 1", f.ID, total)
		}
		counts[f.NumComponents()]++
	}
	if counts[1] != 3 || counts[2] != 3 || counts[3] != 5 {
		t.Errorf("component counts = %v, want 3/3/5", counts)
	}
	if got := len(IdealFunctionsWithComponents(2)); got != 3 {
		t.Errorf("two-component functions = %d", got)
	}
	if name := fns[3].Name(); name != "0.5 * EMD + 0.5 * KL" {
		t.Errorf("function 4 name = %q", name)
	}
}

func TestIdealFunctionScore(t *testing.T) {
	f := IdealFunction{ID: 99, Components: []Component{{"A", 0.25}, {"B", 0.75}}}
	s, err := f.RawScore([]string{"A", "B"}, []float64{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if s != 0.25*4+0.75*8 {
		t.Errorf("score = %v", s)
	}
	if _, err := f.RawScore([]string{"A"}, []float64{1}); err == nil {
		t.Error("unknown feature should fail")
	}
}

func TestUserLabelsNormalised(t *testing.T) {
	m := exactMatrix(t)
	u, err := NewUser(IdealFunctions()[1], m) // 1.0*EMD
	if err != nil {
		t.Fatal(err)
	}
	best := u.TopK(1)[0]
	if math.Abs(u.Label(best)-1) > 1e-12 {
		t.Errorf("best view label = %v, want 1", u.Label(best))
	}
	for i := 0; i < m.Len(); i++ {
		l := u.Label(i)
		if l < 0 || l > 1 {
			t.Fatalf("label %d = %v outside [0,1]", i, l)
		}
	}
}

func TestTopKByScore(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	top := TopKByScore(scores, 3)
	if top[0] != 1 || top[1] != 3 || top[2] != 2 {
		t.Errorf("top3 = %v (ties must break by index)", top)
	}
	if got := TopKByScore(scores, 99); len(got) != 5 {
		t.Errorf("k beyond n should clamp: %d", len(got))
	}
}

func TestPrecisionExactAndTies(t *testing.T) {
	scores := []float64{1.0, 0.9, 0.8, 0.8, 0.1}
	// Ideal top-3 = {0,1,2} but 3 ties with 2.
	p, err := Precision([]int{0, 1, 3}, scores, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("tie-aware precision = %v, want 1", p)
	}
	p, _ = Precision([]int{0, 1, 4}, scores, 3)
	if math.Abs(p-2.0/3) > 1e-12 {
		t.Errorf("precision = %v, want 2/3", p)
	}
	if _, err := Precision([]int{0}, scores, 3); err == nil {
		t.Error("short prediction should fail")
	}
	if _, err := Precision([]int{0, 1, 99}, scores, 3); err == nil {
		t.Error("out-of-range prediction should fail")
	}
	if _, err := Precision([]int{0}, scores, 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestUtilityDistance(t *testing.T) {
	scores := []float64{1.0, 0.9, 0.8, 0.8, 0.1}
	ud, err := UtilityDistance([]int{0, 1, 3}, scores, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ud != 0 {
		t.Errorf("tied swap UD = %v, want 0", ud)
	}
	ud, _ = UtilityDistance([]int{0, 1, 4}, scores, 3)
	want := (0.8 - 0.1) / 3
	if math.Abs(ud-want) > 1e-12 {
		t.Errorf("UD = %v, want %v", ud, want)
	}
}

func TestRunnerConvergesToFullPrecision(t *testing.T) {
	m := exactMatrix(t)
	for _, fn := range []IdealFunction{IdealFunctions()[0], IdealFunctions()[6]} {
		u, err := NewUser(fn, m)
		if err != nil {
			t.Fatal(err)
		}
		s, err := core.NewSeeker(m, core.Config{K: 5}, false)
		if err != nil {
			t.Fatal(err)
		}
		r := &Runner{Seeker: s, User: u, K: 5, MaxLabels: 60, Criterion: StopAtFullPrecision}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("u* #%d: did not converge in %d labels (precision %.2f)",
				fn.ID, res.LabelsUsed, res.FinalPrecision)
			continue
		}
		if res.FinalPrecision < 1 {
			t.Errorf("u* #%d: converged but precision %v", fn.ID, res.FinalPrecision)
		}
		if res.LabelsUsed > 40 {
			t.Errorf("u* #%d: needed %d labels, expect few dozen max", fn.ID, res.LabelsUsed)
		}
	}
}

func TestRunnerZeroUDCriterion(t *testing.T) {
	m := exactMatrix(t)
	u, err := NewUser(IdealFunctions()[1], m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSeeker(m, core.Config{K: 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Seeker: s, User: u, K: 5, MaxLabels: 60, Criterion: StopAtZeroUD}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.FinalUD > udZero {
		t.Errorf("UD session: converged=%v UD=%v labels=%d", res.Converged, res.FinalUD, res.LabelsUsed)
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := (&Runner{}).Run(); err == nil {
		t.Error("empty runner should fail")
	}
	m := exactMatrix(t)
	u, _ := NewUser(IdealFunctions()[0], m)
	s, _ := core.NewSeeker(m, core.Config{K: 3}, false)
	if _, err := (&Runner{Seeker: s, User: u}).Run(); err == nil {
		t.Error("k=0 should fail")
	}
	// Runner K larger than seeker K must error, not mis-measure.
	r := &Runner{Seeker: s, User: u, K: 10, MaxLabels: 5}
	if _, err := r.Run(); err == nil {
		t.Error("runner K > seeker K should fail")
	}
}

func TestRunnerMaxLabelsBound(t *testing.T) {
	m := exactMatrix(t)
	u, _ := NewUser(IdealFunctions()[10], m) // hardest: 3 components with accuracy
	s, _ := core.NewSeeker(m, core.Config{K: 5}, false)
	r := &Runner{Seeker: s, User: u, K: 5, MaxLabels: 3, Criterion: StopAtFullPrecision}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LabelsUsed > 3 {
		t.Errorf("labels used = %d, budget 3", res.LabelsUsed)
	}
}

func TestNoisyUserBounds(t *testing.T) {
	m := exactMatrix(t)
	base, err := NewUser(IdealFunctions()[1], m)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := NewNoisyUser(base, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := 0; i < m.Len(); i++ {
		l := noisy.Label(i)
		if l < 0 || l > 1 {
			t.Fatalf("noisy label %v outside [0,1]", l)
		}
		if l != base.Label(i) {
			diff = true
		}
	}
	if !diff {
		t.Error("sigma=0.3 should perturb at least one label")
	}
	// Ground truth stays exact.
	for i, s := range noisy.Scores() {
		if s != base.Scores()[i] {
			t.Fatal("Scores must stay exact under noise")
		}
	}
	if _, err := NewNoisyUser(base, -1, 1); err == nil {
		t.Error("negative sigma should fail")
	}
	// Zero noise is the identity.
	clean, _ := NewNoisyUser(base, 0, 1)
	for i := 0; i < m.Len(); i++ {
		if clean.Label(i) != base.Label(i) {
			t.Fatal("sigma=0 must not perturb")
		}
	}
}

func TestRunnerWithNoisyUser(t *testing.T) {
	m := exactMatrix(t)
	base, err := NewUser(IdealFunctions()[1], m)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := NewNoisyUser(base, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSeeker(m, core.Config{K: 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Seeker: s, User: noisy, K: 5, MaxLabels: 60, Criterion: StopAtFullPrecision}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Mild noise should still reach high precision, maybe with more labels.
	if res.FinalPrecision < 0.6 {
		t.Errorf("precision under mild noise = %v", res.FinalPrecision)
	}
}
