package sim

import "fmt"

// tieEps is the tolerance under which two ideal utilities count as equal
// when judging top-k membership — the "views directly after the kth view
// may have very close, or even identical, utility" problem that motivates
// the paper's UD measure.
const tieEps = 1e-9

// Precision computes the paper's top-k precision |Vp ∩ V*| / k, counting a
// predicted view as correct when its ideal utility is at least the k-th
// best ideal utility (within tieEps), so that swapping exactly-tied
// borderline views does not read as an error.
func Precision(pred []int, idealScores []float64, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("sim: k must be positive, got %d", k)
	}
	if len(pred) < k {
		return 0, fmt.Errorf("sim: prediction has %d views, need %d", len(pred), k)
	}
	ideal := TopKByScore(idealScores, k)
	kthScore := idealScores[ideal[len(ideal)-1]]
	hit := 0
	for _, v := range pred[:k] {
		if v < 0 || v >= len(idealScores) {
			return 0, fmt.Errorf("sim: predicted view %d out of range", v)
		}
		if idealScores[v] >= kthScore-tieEps {
			hit++
		}
	}
	return float64(hit) / float64(k), nil
}

// UtilityDistance computes Eq. 8: the per-view gap between the total ideal
// utility of the ideal top-k and of the predicted top-k. It is 0 exactly
// when the prediction's views are collectively as good as the ideal set,
// even if tied views swapped places.
func UtilityDistance(pred []int, idealScores []float64, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("sim: k must be positive, got %d", k)
	}
	if len(pred) < k {
		return 0, fmt.Errorf("sim: prediction has %d views, need %d", len(pred), k)
	}
	ideal := TopKByScore(idealScores, k)
	var sumIdeal, sumPred float64
	for _, v := range ideal {
		sumIdeal += idealScores[v]
	}
	for _, v := range pred[:k] {
		if v < 0 || v >= len(idealScores) {
			return 0, fmt.Errorf("sim: predicted view %d out of range", v)
		}
		sumPred += idealScores[v]
	}
	ud := (sumIdeal - sumPred) / float64(k)
	if ud < 0 {
		ud = 0 // guard fp noise; the ideal set maximises total utility
	}
	return ud, nil
}
