// Package sim implements the paper's simulated user study (Section 4):
// the eleven ideal utility functions of Table 2, a simulated user that
// labels views with their normalised ideal utility, the evaluation
// measures (top-k precision and utility distance, Eq. 8), and a session
// runner that drives a core.Seeker until a stop criterion is met.
//
// # Contracts
//
// Determinism: ideal utilities are pure functions of the view pair, and
// the label-noise extension (NoisyUser) draws from a seeded source, so a
// session transcript is a deterministic function of (testbed,
// configuration, seed) — the property that makes the reproduced figures
// stable across runs and machines.
package sim
