package sim

import (
	"fmt"
	"time"

	"viewseeker/internal/core"
)

// StopCriterion selects when a simulated session is finished.
type StopCriterion int

// The stop criteria used by the paper's experiments.
const (
	// StopAtFullPrecision ends the session when top-k precision reaches
	// 100% (Experiment 1, Figures 3–4).
	StopAtFullPrecision StopCriterion = iota
	// StopAtZeroUD ends the session when the utility distance reaches 0
	// (Optimisation evaluation, Figures 6–7).
	StopAtZeroUD
)

// udZero is the tolerance under which a utility distance counts as zero.
const udZero = 1e-9

// Labeller is what the runner needs from a simulated participant: labels
// for presented views (possibly noisy) and the exact ground-truth scores
// that precision and utility distance are measured against.
type Labeller interface {
	Label(viewIdx int) float64
	Scores() []float64
}

// Runner drives one simulated session: the user labels whatever the
// seeker presents until the criterion is met or MaxLabels is spent.
type Runner struct {
	Seeker    *core.Seeker
	User      Labeller
	K         int
	MaxLabels int // default 100
	Criterion StopCriterion
}

// Result summarises one session.
type Result struct {
	LabelsUsed     int
	Converged      bool
	FinalPrecision float64
	FinalUD        float64
	Elapsed        time.Duration // compute time only; labelling is free
}

// Run executes the session loop of Algorithm 1 against the simulated user.
func (r *Runner) Run() (*Result, error) {
	if r.Seeker == nil || r.User == nil {
		return nil, fmt.Errorf("sim: runner needs a seeker and a user")
	}
	if r.K <= 0 {
		return nil, fmt.Errorf("sim: runner needs k > 0")
	}
	maxLabels := r.MaxLabels
	if maxLabels <= 0 {
		maxLabels = 100
	}
	res := &Result{}
	start := time.Now()
	for res.LabelsUsed < maxLabels {
		next, err := r.Seeker.NextViews()
		if err != nil {
			return nil, err
		}
		if len(next) == 0 {
			break // everything labelled
		}
		for _, v := range next {
			if err := r.Seeker.Feedback(v, r.User.Label(v)); err != nil {
				return nil, err
			}
			res.LabelsUsed++
		}
		done, err := r.evaluate(res)
		if err != nil {
			return nil, err
		}
		if done {
			res.Converged = true
			break
		}
	}
	if !res.Converged {
		if _, err := r.evaluate(res); err != nil {
			return nil, err
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func (r *Runner) evaluate(res *Result) (bool, error) {
	pred := r.Seeker.TopK()
	if len(pred) < r.K {
		return false, fmt.Errorf("sim: seeker returned %d views, need k=%d (configure the seeker with K ≥ runner K)", len(pred), r.K)
	}
	p, err := Precision(pred, r.User.Scores(), r.K)
	if err != nil {
		return false, err
	}
	ud, err := UtilityDistance(pred, r.User.Scores(), r.K)
	if err != nil {
		return false, err
	}
	res.FinalPrecision, res.FinalUD = p, ud
	switch r.Criterion {
	case StopAtFullPrecision:
		return p >= 1, nil
	case StopAtZeroUD:
		return ud <= udZero, nil
	default:
		return false, fmt.Errorf("sim: unknown stop criterion %d", r.Criterion)
	}
}
