package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"viewseeker/internal/feature"
)

// Component is one weighted term of an ideal utility function.
type Component struct {
	Feature string
	Weight  float64
}

// IdealFunction is a simulated user's true utility function u*():
// a linear combination of utility features (Eq. 4).
type IdealFunction struct {
	ID         int
	Components []Component
}

// Name renders the function the way Table 2 prints it.
func (f IdealFunction) Name() string {
	parts := make([]string, len(f.Components))
	for i, c := range f.Components {
		parts[i] = fmt.Sprintf("%.1f * %s", c.Weight, c.Feature)
	}
	return strings.Join(parts, " + ")
}

// NumComponents returns the number of weighted terms.
func (f IdealFunction) NumComponents() int { return len(f.Components) }

// RawScore computes the weighted sum over one un-normalised feature row.
// Prefer Scores for whole-space evaluation: there each feature column is
// min-max normalised first, so Table 2's weights compare like with like.
func (f IdealFunction) RawScore(names []string, row []float64) (float64, error) {
	s := 0.0
	for _, c := range f.Components {
		idx := -1
		for j, n := range names {
			if n == c.Feature {
				idx = j
				break
			}
		}
		if idx < 0 {
			return 0, fmt.Errorf("sim: ideal function references unknown feature %q", c.Feature)
		}
		s += c.Weight * row[idx]
	}
	return s, nil
}

// Scores computes u*(v) for every view of a feature matrix. Each
// referenced feature column is min-max normalised over the view space
// before weighting: the raw utility components have wildly different
// scales (KL's smoothed divergence reaches ~20 while Usability and
// Accuracy live in [0, 1]), and Table 2's weights are only meaningful over
// comparable scales. Normalisation is affine per column, so u* remains a
// linear function of the raw features and stays exactly learnable by the
// linear view utility estimator.
func (f IdealFunction) Scores(m *feature.Matrix) ([]float64, error) {
	type columnScale struct {
		idx     int
		lo, inv float64 // x ↦ (x − lo) · inv
		weight  float64
	}
	scales := make([]columnScale, 0, len(f.Components))
	for _, c := range f.Components {
		idx := -1
		for j, n := range m.Names {
			if n == c.Feature {
				idx = j
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("sim: ideal function references unknown feature %q", c.Feature)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, row := range m.Rows {
			if row[idx] < lo {
				lo = row[idx]
			}
			if row[idx] > hi {
				hi = row[idx]
			}
		}
		inv := 0.0 // constant column contributes nothing
		if hi > lo {
			inv = 1 / (hi - lo)
		}
		scales = append(scales, columnScale{idx: idx, lo: lo, inv: inv, weight: c.Weight})
	}
	out := make([]float64, m.Len())
	for i, row := range m.Rows {
		s := 0.0
		for _, cs := range scales {
			s += cs.weight * (row[cs.idx] - cs.lo) * cs.inv
		}
		out[i] = s
	}
	return out, nil
}

// IdealFunctions returns Table 2: three single-component, three
// two-component and five three-component ideal utility functions.
func IdealFunctions() []IdealFunction {
	return []IdealFunction{
		{1, []Component{{feature.KL, 1.0}}},
		{2, []Component{{feature.EMD, 1.0}}},
		{3, []Component{{feature.MaxDiff, 1.0}}},
		{4, []Component{{feature.EMD, 0.5}, {feature.KL, 0.5}}},
		{5, []Component{{feature.EMD, 0.5}, {feature.L2, 0.5}}},
		{6, []Component{{feature.EMD, 0.5}, {feature.PValue, 0.5}}},
		{7, []Component{{feature.EMD, 0.3}, {feature.KL, 0.3}, {feature.MaxDiff, 0.4}}},
		{8, []Component{{feature.EMD, 0.3}, {feature.L2, 0.3}, {feature.MaxDiff, 0.4}}},
		{9, []Component{{feature.EMD, 0.3}, {feature.PValue, 0.3}, {feature.MaxDiff, 0.4}}},
		{10, []Component{{feature.EMD, 0.3}, {feature.KL, 0.3}, {feature.Usability, 0.4}}},
		{11, []Component{{feature.EMD, 0.3}, {feature.KL, 0.3}, {feature.Accuracy, 0.4}}},
	}
}

// IdealFunctionsWithComponents filters Table 2 by component count
// (1, 2 or 3) — the groupings behind Figures 3, 4, 6 and 7.
func IdealFunctionsWithComponents(n int) []IdealFunction {
	var out []IdealFunction
	for _, f := range IdealFunctions() {
		if f.NumComponents() == n {
			out = append(out, f)
		}
	}
	return out
}

// User simulates a study participant: it holds the ground-truth utility of
// every view (computed from exact features) and labels each presented view
// with its utility normalised against the space's maximum, exactly as the
// paper's simulated study does (u*(v)=0.7 ⇒ "about 70% of the maximum").
type User struct {
	Ideal  IdealFunction
	scores []float64
	max    float64
}

// NewUser evaluates the ideal function over the exact feature matrix.
func NewUser(ideal IdealFunction, exact *feature.Matrix) (*User, error) {
	scores, err := ideal.Scores(exact)
	if err != nil {
		return nil, err
	}
	u := &User{Ideal: ideal, scores: scores}
	for _, s := range scores {
		if s > u.max {
			u.max = s
		}
	}
	return u, nil
}

// Scores returns the ground-truth utility of every view (shared slice; do
// not mutate).
func (u *User) Scores() []float64 { return u.scores }

// Label returns the user's 0–1 interest label for a view.
func (u *User) Label(viewIdx int) float64 {
	if u.max <= 0 {
		return 0
	}
	l := u.scores[viewIdx] / u.max
	if l < 0 {
		return 0
	}
	if l > 1 {
		return 1
	}
	return l
}

// TopK returns the ideal top-k view indices (best first, ties by index).
func (u *User) TopK(k int) []int { return TopKByScore(u.scores, k) }

// NoisyUser wraps a User with Gaussian label noise: real analysts do not
// rate views with oracle precision, so robustness studies perturb each
// label by N(0, sigma) and clamp to [0, 1]. Noise is drawn from a seeded
// stream, so sessions stay reproducible; the ground-truth Scores (and
// therefore precision/UD measurement) remain exact.
type NoisyUser struct {
	*User
	Sigma float64
	rng   *rand.Rand
}

// NewNoisyUser wraps a user with noise level sigma ≥ 0.
func NewNoisyUser(u *User, sigma float64, seed int64) (*NoisyUser, error) {
	if sigma < 0 {
		return nil, fmt.Errorf("sim: negative noise sigma %g", sigma)
	}
	return &NoisyUser{User: u, Sigma: sigma, rng: rand.New(rand.NewSource(seed))}, nil
}

// Label returns the perturbed 0–1 label for a view.
func (u *NoisyUser) Label(viewIdx int) float64 {
	l := u.User.Label(viewIdx) + u.rng.NormFloat64()*u.Sigma
	if l < 0 {
		return 0
	}
	if l > 1 {
		return 1
	}
	return l
}

// TopKByScore ranks indices by score descending (ties by ascending index)
// and returns the first k.
func TopKByScore(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
