// Package store persists the two kinds of server-side state the
// interactive phases sit on: the offline phase's output (view layouts
// plus the utility-feature matrix), kept in a content-addressed cache so
// a second session over the same (table, query, configuration) skips the
// offline pass entirely, and the interactive sessions themselves, kept as
// an append-only journal of labelling events whose deterministic replay
// reconstructs every estimator after a restart.
//
// # Contracts
//
// Content addressing: cache entries are immutable once stored and are
// invalidated purely by addressing — any input change produces a
// different fingerprint — so there is no invalidation API to misuse.
// Results are deep-copied on Put and Get; no session can leak its in-place
// refinements into another.
//
// Degraded mode (DESIGN.md §10): journal appends and cache snapshot
// writes run under retry.Policy; when retries exhaust, the write is
// dropped, the component marks itself Degraded, and the caller's request
// still succeeds — losing durability must never lose the interaction.
// The flag is write-path only and the next successful write clears it, so
// recovery is automatic when the fault lifts.
//
// Torn-line safety: journal appends are single write calls; a partial
// write sets a flag that makes the next append terminate the torn
// fragment with a newline, and replay skips lines that fail to parse —
// one torn write costs exactly one record, never its neighbours.
//
// Replay exactness: a session's create record plus its feedback records,
// replayed in order, reconstruct its estimator bit-identically — the
// pipeline is deterministic and the estimators are pure functions of the
// labelled sequence. The memory-budgeted session manager (DESIGN.md §16)
// leans on this: an evicted session keeps only its journal mirror and is
// rebuilt exactly on next touch, with the cache making the rebuild warm.
//
// Observability: Instrument(reg) on Cache and Journal registers
// hit/miss/eviction, snapshot and append latency/bytes, degraded-state
// and retry metrics (DESIGN.md §11); an uninstrumented component pays
// only nil checks.
package store
