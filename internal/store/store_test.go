package store

import (
	"os"
	"path/filepath"
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/view"
)

func testTable(t *testing.T, seed int64) *dataset.Table {
	t.Helper()
	return dataset.GenerateDIAB(dataset.DIABConfig{Rows: 500, Seed: seed})
}

func TestHashTableDeterministic(t *testing.T) {
	a, b := testTable(t, 7), testTable(t, 7)
	if HashTable(a) != HashTable(b) {
		t.Fatal("identical tables hash differently")
	}
	if HashTable(a) == HashTable(testTable(t, 8)) {
		t.Fatal("different tables share a hash")
	}
}

func TestHashTableIgnoresName(t *testing.T) {
	a, b := testTable(t, 7), testTable(t, 7)
	b.Name = "renamed"
	if HashTable(a) != HashTable(b) {
		t.Fatal("renaming a table changed its content hash")
	}
}

func TestHashTableSeesCellChanges(t *testing.T) {
	a, b := testTable(t, 7), testTable(t, 7)
	for _, c := range b.Cols {
		if len(c.Ints) > 0 {
			c.Ints[len(c.Ints)/2]++
			break
		}
	}
	if HashTable(a) == HashTable(b) {
		t.Fatal("single-cell change not reflected in hash")
	}
}

func baseKey() Key {
	return Key{
		RefHash: "r", TargetHash: "t", Alpha: 1,
		Features: []string{"KL", "EMD"}, Aggs: []string{"COUNT"},
		BinCounts: []int{4}, EqualDepth: false,
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := baseKey().Fingerprint()
	mutations := map[string]Key{}
	k := baseKey()
	k.RefHash = "r2"
	mutations["ref hash"] = k
	k = baseKey()
	k.TargetHash = "t2"
	mutations["target hash"] = k
	k = baseKey()
	k.Alpha = 0.5
	mutations["alpha"] = k
	k = baseKey()
	k.Features = []string{"KL"}
	mutations["features"] = k
	k = baseKey()
	k.Features = []string{"EMD", "KL"}
	mutations["feature order"] = k
	k = baseKey()
	k.Aggs = []string{"SUM"}
	mutations["aggs"] = k
	k = baseKey()
	k.BinCounts = []int{3, 4}
	mutations["bin counts"] = k
	k = baseKey()
	k.EqualDepth = true
	mutations["equal depth"] = k
	for name, mk := range mutations {
		if mk.Fingerprint() == base {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
	// Field aliasing: moving a string across field boundaries must not
	// produce the same digest.
	a := Key{RefHash: "ab", TargetHash: "c"}
	b := Key{RefHash: "a", TargetHash: "bc"}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("adjacent fields alias in the fingerprint")
	}
}

func TestFingerprintNormalisesExactAlpha(t *testing.T) {
	exact := baseKey()
	for _, alpha := range []float64{0, 1, -3, 2.5} {
		k := baseKey()
		k.Alpha = alpha
		if k.Fingerprint() != exact.Fingerprint() {
			t.Errorf("alpha=%g fingerprints differently from the exact entry", alpha)
		}
	}
}

func testResult(n int) *OfflineResult {
	res := &OfflineResult{Names: []string{"F1", "F2"}}
	for i := 0; i < n; i++ {
		res.Specs = append(res.Specs, view.Spec{Dimension: "d", Measure: "m", Agg: "COUNT", Bins: i})
		res.Rows = append(res.Rows, []float64{float64(i), float64(i) * 2})
		res.Exact = append(res.Exact, true)
	}
	return res
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	for _, fp := range []string{"a", "b", "c"} {
		if err := c.Put(fp, testResult(3)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get("a"); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("newest entry missing")
	}
	// Touching "b" makes it most recent; inserting "d" must evict "c".
	if _, ok := c.Get("b"); !ok {
		t.Fatal("entry b missing")
	}
	if err := c.Put("d", testResult(3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("c"); ok {
		t.Error("recency not updated by Get: c should have been evicted before b")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("recently used entry b evicted")
	}
}

func TestCacheIsolation(t *testing.T) {
	c := NewCache(4)
	orig := testResult(2)
	if err := c.Put("fp", orig); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's copy after Put, and a returned copy after Get,
	// must not leak into later Gets: sessions refine rows in place.
	orig.Rows[0][0] = 999
	got1, _ := c.Get("fp")
	if got1.Rows[0][0] == 999 {
		t.Fatal("Put did not copy its input")
	}
	got1.Rows[1][1] = -1
	got1.Exact[0] = false
	got2, _ := c.Get("fp")
	if got2.Rows[1][1] == -1 || !got2.Exact[0] {
		t.Fatal("Get handed out a shared entry")
	}
}

func TestCacheRejectsMalformedResult(t *testing.T) {
	c := NewCache(4)
	bad := testResult(3)
	bad.Rows = bad.Rows[:2]
	if err := c.Put("fp", bad); err == nil {
		t.Fatal("Put accepted a shape-mismatched result")
	}
	if _, ok := c.Get("fp"); ok {
		t.Fatal("malformed result was stored")
	}
}

func TestDiskSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := testResult(5)
	want.Exact[3] = false
	if err := c1.Put("fp1", want); err != nil {
		t.Fatal(err)
	}
	// A fresh cache over the same directory simulates a process restart:
	// the entry must come back from disk, bit-identical.
	c2, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("fp1")
	if !ok {
		t.Fatal("entry not reloaded from disk")
	}
	if len(got.Specs) != 5 || got.Specs[2] != want.Specs[2] {
		t.Fatalf("specs corrupted: %+v", got.Specs)
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("row %d feature %d: %v != %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	if got.Exact[3] || !got.Exact[0] {
		t.Fatalf("exact flags corrupted: %v", got.Exact)
	}
}

func TestCorruptedSnapshotIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("fp1", testResult(3)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fp1.vscache")
	if err := os.WriteFile(path, []byte("not a gob snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("fp1"); ok {
		t.Fatal("corrupted snapshot served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupted snapshot not quarantined")
	}
	// The slot is reusable: a recompute repopulates it.
	if err := c2.Put("fp1", testResult(3)); err != nil {
		t.Fatal(err)
	}
	c3, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.Get("fp1"); !ok {
		t.Fatal("repopulated snapshot not readable")
	}
}

func TestSnapshotFingerprintMismatchIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("fp1", testResult(3)); err != nil {
		t.Fatal(err)
	}
	// A snapshot copied under another fingerprint's name must not serve
	// that fingerprint's reads.
	data, err := os.ReadFile(filepath.Join(dir, "fp1.vscache"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fp2.vscache"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("fp2"); ok {
		t.Fatal("cross-named snapshot served as a hit")
	}
}

func TestCacheStats(t *testing.T) {
	c := NewCache(1)
	c.Put("a", testResult(2))
	c.Get("a")
	c.Get("missing")
	c.Put("b", testResult(2)) // evicts a
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 1 || evictions != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", hits, misses, evictions)
	}
}
