package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"math"
	"math/bits"
	"strconv"

	"viewseeker/internal/dataset"
)

// hashWriter wraps a hash with the length-prefixed primitives the
// fingerprint scheme is built from. Every variable-length field is
// preceded by its length so that adjacent fields can never alias
// ("ab"+"c" vs "a"+"bc"). Writes accumulate in a buffer so that hashing a
// million-row table costs large block updates, not one digest call per
// cell.
type hashWriter struct {
	h   hash.Hash
	buf []byte
}

const hashFlushAt = 1 << 15

func newHashWriter() *hashWriter {
	return &hashWriter{h: sha256.New(), buf: make([]byte, 0, hashFlushAt+64)}
}

func (w *hashWriter) flush() {
	if len(w.buf) > 0 {
		w.h.Write(w.buf)
		w.buf = w.buf[:0]
	}
}

func (w *hashWriter) u64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
	if len(w.buf) >= hashFlushAt {
		w.flush()
	}
}

func (w *hashWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *hashWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.flush()
	io.WriteString(w.h, s)
}

func (w *hashWriter) strs(ss []string) {
	w.u64(uint64(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}

func (w *hashWriter) sum() string {
	w.flush()
	return hex.EncodeToString(w.h.Sum(nil))
}

// HashTable returns a hex content hash of a table: schema (column names,
// kinds, roles) plus every cell value including NULL positions. The table
// name is deliberately excluded — two identically shaped tables with equal
// contents enumerate the same view space and produce the same feature
// matrix, so they share cache entries. The hash is memoized on the table
// and invalidated by its version counter, so repeated lookups against an
// unchanged table hash once; the full pass over the typed column slices
// runs only after a mutation.
func HashTable(t *dataset.Table) string {
	return string(t.MemoHash(func() []byte {
		return []byte(hashTableContents(t))
	}))
}

func hashTableContents(t *dataset.Table) string {
	w := newHashWriter()
	w.u64(uint64(t.NumRows()))
	w.u64(uint64(len(t.Cols)))
	for _, c := range t.Cols {
		w.str(c.Def.Name)
		w.u64(uint64(c.Def.Kind))
		w.u64(uint64(c.Def.Role))
		w.u64(uint64(len(c.Ints)))
		for _, v := range c.Ints {
			w.u64(uint64(v))
		}
		w.u64(uint64(len(c.Floats)))
		for _, v := range c.Floats {
			w.f64(v)
		}
		w.strs(c.Strs)
		w.u64(uint64(len(c.Bools)))
		for _, v := range c.Bools {
			if v {
				w.u64(1)
			} else {
				w.u64(0)
			}
		}
		// NULL positions distinguish a zero cell from a missing one. The
		// column's null bitmap is walked word-at-a-time — same byte stream
		// as hashing every row's IsNull (ascending indices), so existing
		// cache entries stay addressable, at a fraction of the cost.
		bm := c.NullBitmap()
		w.u64(uint64(c.NullCount()))
		for wi, word := range bm {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				w.u64(uint64(wi*64 + b))
				word &^= 1 << uint(b)
			}
		}
	}
	return w.sum()
}

// VersionedRef addresses one version of a live table: the base table's
// content hash plus the WAL sequence number of the last applied batch.
// It replaces whole-content re-hashing on the append path — the version
// chain hash@1, hash@2, … is monotone, so each append mints a new cache
// address in O(1) while every earlier version's entries survive as
// ancestors (a rolled-back or replayed table re-addresses them for free).
// Sequence 0 is the base itself and returns the hash unchanged, keeping
// pre-append cache entries reachable.
func VersionedRef(baseHash string, seq uint64) string {
	if seq == 0 {
		return baseHash
	}
	return baseHash + "@" + strconv.FormatUint(seq, 10)
}

// Key identifies one offline-phase computation: the inputs that fully
// determine the enumerated view space and its feature matrix. Every field
// participates in the fingerprint, so any change — one cell of either
// table, the sampling ratio, the feature set, a bin configuration —
// invalidates the cache entry by simply addressing a different one.
type Key struct {
	// RefHash and TargetHash are HashTable of the reference table DR and
	// the query-selected subset DQ. Keying on the target's contents rather
	// than the query text means two textually different queries selecting
	// the same rows share an entry, and callers that build DQ without SQL
	// (NewFromTables) cache just as well.
	RefHash    string
	TargetHash string
	// Query, when set, addresses the entry by the exploration query's text
	// instead of the target subset's contents. Query-addressed entries can
	// carry the serialised target table, letting a warm session skip query
	// execution entirely; the trade-off is that textually different but
	// equivalent queries no longer share the entry, which is why both
	// addressing modes coexist (a query-addressed miss still falls back to
	// the content-addressed entry after the query runs).
	Query string
	// Alpha is the offline pass's sampling ratio, normalised so that every
	// exact configuration (alpha <= 0 or >= 1) shares one entry.
	Alpha float64
	// Features are the registry's feature names in registry order.
	Features []string
	// Aggs, BinCounts and EqualDepth are the view-space enumeration
	// parameters exactly as configured (nil and explicit defaults hash
	// differently only if the caller spells them differently; the public
	// facade always passes its resolved configuration).
	Aggs       []string
	BinCounts  []int
	EqualDepth bool
}

// fingerprintVersion is bumped whenever the fingerprint encoding or the
// meaning of any keyed field changes, orphaning all old entries. Version 2:
// the ACCURACY feature moved to shifted second moments, changing cached
// feature-matrix values for large-mean measures.
const fingerprintVersion = 2

// Fingerprint returns the hex cache address of the key.
func (k Key) Fingerprint() string {
	w := newHashWriter()
	w.u64(fingerprintVersion)
	w.str(k.RefHash)
	w.str(k.TargetHash)
	w.str(k.Query)
	alpha := k.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	w.f64(alpha)
	w.strs(k.Features)
	w.strs(k.Aggs)
	w.u64(uint64(len(k.BinCounts)))
	for _, b := range k.BinCounts {
		w.u64(uint64(b))
	}
	if k.EqualDepth {
		w.u64(1)
	} else {
		w.u64(0)
	}
	return w.sum()
}
