package store

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"viewseeker/internal/faultfs"
	"viewseeker/internal/obs"
	"viewseeker/internal/retry"
)

// Journal record operations.
const (
	OpCreate   = "create"
	OpFeedback = "feedback"
	OpDelete   = "delete"
)

// Record is one journal entry: a session lifecycle event. Create records
// carry the full session configuration; since selection and refinement are
// deterministic functions of (configuration, labels), replaying a
// session's create followed by its feedback records through a fresh seeker
// reconstructs the estimator exactly.
type Record struct {
	Op      string `json:"op"`
	Session string `json:"session"`

	// Create fields.
	Table    string  `json:"table,omitempty"`
	Query    string  `json:"query,omitempty"`
	K        int     `json:"k,omitempty"`
	Alpha    float64 `json:"alpha,omitempty"`
	Strategy string  `json:"strategy,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Workers  int     `json:"workers,omitempty"`

	// Feedback fields (no omitempty: view 0 and label 0 are meaningful).
	View  int     `json:"view"`
	Label float64 `json:"label"`
}

// Journal is an append-only log of session records, one JSON object per
// line. Appends are atomic at the line level (a single write call each),
// and ReadJournal tolerates torn lines, so a crash mid-append loses at
// most the record being written. Safe for concurrent use.
//
// Failure semantics: a failed append is retried on a bounded
// exponential-backoff schedule (SetRetryPolicy); once the schedule is
// exhausted the error is returned and the journal marks itself Degraded.
// The file stays open — the next append retries from scratch, and its
// success clears the degraded flag, so a transient disk fault costs only
// the records written while it lasted. A write that persisted some bytes
// before failing leaves a torn line; the journal terminates it with a
// newline before the next record so one torn write never corrupts the
// records after it.
type Journal struct {
	mu      sync.Mutex
	f       faultfs.File
	path    string
	midLine bool // last write failed after persisting part of a line
	policy  retry.Policy

	degraded atomic.Bool

	// Metric handles, nil until Instrument is called; nil-safe throughout.
	mAppends, mBytes              *obs.Counter
	mDegradedTransitions          *obs.Counter
	mRetryBackoffs, mRetryExhaust *obs.Counter
	mDegraded                     *obs.Gauge
	mAppendSeconds                *obs.Histogram
}

// OpenJournal opens (creating if needed) an append-only journal at path.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalFS(faultfs.OS{}, path)
}

// OpenJournalFS is OpenJournal over an explicit filesystem — the
// fault-injection seam.
func OpenJournalFS(fs faultfs.FS, path string) (*Journal, error) {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening journal: %w", err)
	}
	return &Journal{f: f, path: path, policy: retry.Default()}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// SetRetryPolicy replaces the append retry schedule (tests inject a
// recording sleeper to assert deterministic backoff timing).
func (j *Journal) SetRetryPolicy(p retry.Policy) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.policy = p
}

// Degraded reports whether the last append exhausted its retries: the
// journal is still accepting appends, but records written while the flag
// is set were lost and will not survive a restart.
func (j *Journal) Degraded() bool { return j.degraded.Load() }

// Instrument registers the journal's metrics against reg: append count,
// bytes and latency, degraded-state gauge and transition counter, and the
// shared retry counters (one series across journal and cache). Call once
// at wiring time; an uninstrumented journal records nothing.
func (j *Journal) Instrument(reg *obs.Registry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.mAppends = reg.Counter("viewseeker_store_journal_appends_total")
	j.mBytes = reg.Counter("viewseeker_store_journal_bytes_total")
	j.mAppendSeconds = reg.Histogram("viewseeker_store_journal_append_seconds", obs.DurationBuckets)
	j.mDegraded = reg.Gauge(`viewseeker_store_degraded{component="journal"}`)
	j.mDegradedTransitions = reg.Counter(`viewseeker_store_degraded_transitions_total{component="journal"}`)
	j.mRetryBackoffs = reg.Counter("viewseeker_retry_backoffs_total")
	j.mRetryExhaust = reg.Counter("viewseeker_retry_exhausted_total")
}

// Append writes one record, retrying transient failures on the journal's
// backoff schedule. On success the degraded flag clears; on exhaustion it
// sets and the last write error is returned — callers deciding to keep
// serving without durability (the HTTP server does) log it and move on.
func (j *Journal) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding journal record: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal is closed")
	}
	start := time.Now()
	defer func() {
		j.mAppendSeconds.ObserveDuration(time.Since(start))
	}()
	policy := j.policy
	policy.Backoffs = j.mRetryBackoffs
	policy.Exhausted = j.mRetryExhaust
	err = policy.Do(context.Background(), func() error {
		payload := line
		if j.midLine {
			// Terminate the torn fragment a previous partial write left, so
			// the replay scanner sees one malformed line, not a corrupted
			// merge of fragment and record.
			payload = append([]byte{'\n'}, line...)
		}
		n, werr := j.f.Write(payload)
		if werr != nil {
			if n > 0 {
				j.midLine = true
			}
			return werr
		}
		j.midLine = false
		return nil
	})
	if err != nil {
		if !j.degraded.Swap(true) {
			j.mDegradedTransitions.Inc()
		}
		j.mDegraded.Set(1)
		return fmt.Errorf("store: journal append: %w", err)
	}
	j.degraded.Store(false)
	j.mDegraded.Set(0)
	j.mAppends.Inc()
	j.mBytes.Add(int64(len(line)))
	return nil
}

// Sync flushes appended records to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// ReadJournal loads every well-formed record from a journal file. A
// missing file is an empty journal. Malformed or unrecognised lines are
// skipped, not fatal: a torn tail from a crash and torn interior lines
// from a disk fault mid-append (each terminated by the next successful
// append, see Journal.Append) both cost only the record being written —
// every record journalled around them survives. Records are whole lines,
// so a skipped fragment can never merge two surviving records.
func ReadJournal(path string) ([]Record, error) {
	return ReadJournalFS(faultfs.OS{}, path)
}

// ReadJournalFS is ReadJournal over an explicit filesystem.
func ReadJournalFS(fs faultfs.FS, path string) ([]Record, error) {
	f, err := fs.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: opening journal: %w", err)
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue
		}
		switch rec.Op {
		case OpCreate, OpFeedback, OpDelete:
		default:
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil && len(out) == 0 {
		return nil, fmt.Errorf("store: reading journal: %w", err)
	}
	return out, nil
}

// SessionLog is the collapsed journal state of one session that is still
// live at the end of the log: its create record plus its feedback records
// in arrival order.
type SessionLog struct {
	Create   Record
	Feedback []Record
}

// Replay collapses a record stream into the live sessions' logs, in
// creation order: deletes remove sessions, feedback for unknown (deleted
// or never created) sessions is dropped, and a second create under an
// existing id replaces the first — the log's last writer wins, matching
// what the server it journals would have in memory.
func Replay(recs []Record) []SessionLog {
	byID := make(map[string]*SessionLog)
	var order []string
	for _, rec := range recs {
		switch rec.Op {
		case OpCreate:
			if _, exists := byID[rec.Session]; !exists {
				order = append(order, rec.Session)
			}
			byID[rec.Session] = &SessionLog{Create: rec}
		case OpFeedback:
			if log, ok := byID[rec.Session]; ok {
				log.Feedback = append(log.Feedback, rec)
			}
		case OpDelete:
			delete(byID, rec.Session)
		}
	}
	out := make([]SessionLog, 0, len(byID))
	for _, id := range order {
		if log, ok := byID[id]; ok {
			out = append(out, *log)
		}
	}
	return out
}
