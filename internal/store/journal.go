package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal record operations.
const (
	OpCreate   = "create"
	OpFeedback = "feedback"
	OpDelete   = "delete"
)

// Record is one journal entry: a session lifecycle event. Create records
// carry the full session configuration; since selection and refinement are
// deterministic functions of (configuration, labels), replaying a
// session's create followed by its feedback records through a fresh seeker
// reconstructs the estimator exactly.
type Record struct {
	Op      string `json:"op"`
	Session string `json:"session"`

	// Create fields.
	Table    string  `json:"table,omitempty"`
	Query    string  `json:"query,omitempty"`
	K        int     `json:"k,omitempty"`
	Alpha    float64 `json:"alpha,omitempty"`
	Strategy string  `json:"strategy,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Workers  int     `json:"workers,omitempty"`

	// Feedback fields (no omitempty: view 0 and label 0 are meaningful).
	View  int     `json:"view"`
	Label float64 `json:"label"`
}

// Journal is an append-only log of session records, one JSON object per
// line. Appends are atomic at the line level (a single write call each),
// and ReadJournal tolerates a torn final line, so a crash mid-append loses
// at most the record being written. Safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (creating if needed) an append-only journal at path.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening journal: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append writes one record.
func (j *Journal) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding journal record: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal is closed")
	}
	_, err = j.f.Write(line)
	return err
}

// Sync flushes appended records to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// ReadJournal loads every well-formed record from a journal file. A
// missing file is an empty journal. Reading stops silently at the first
// malformed line — by construction that is a torn final append from a
// crash, and everything before it is intact.
func ReadJournal(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: opening journal: %w", err)
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break
		}
		switch rec.Op {
		case OpCreate, OpFeedback, OpDelete:
		default:
			return out, nil
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil && len(out) == 0 {
		return nil, fmt.Errorf("store: reading journal: %w", err)
	}
	return out, nil
}

// SessionLog is the collapsed journal state of one session that is still
// live at the end of the log: its create record plus its feedback records
// in arrival order.
type SessionLog struct {
	Create   Record
	Feedback []Record
}

// Replay collapses a record stream into the live sessions' logs, in
// creation order: deletes remove sessions, feedback for unknown (deleted
// or never created) sessions is dropped, and a second create under an
// existing id replaces the first — the log's last writer wins, matching
// what the server it journals would have in memory.
func Replay(recs []Record) []SessionLog {
	byID := make(map[string]*SessionLog)
	var order []string
	for _, rec := range recs {
		switch rec.Op {
		case OpCreate:
			if _, exists := byID[rec.Session]; !exists {
				order = append(order, rec.Session)
			}
			byID[rec.Session] = &SessionLog{Create: rec}
		case OpFeedback:
			if log, ok := byID[rec.Session]; ok {
				log.Feedback = append(log.Feedback, rec)
			}
		case OpDelete:
			delete(byID, rec.Session)
		}
	}
	out := make([]SessionLog, 0, len(byID))
	for _, id := range order {
		if log, ok := byID[id]; ok {
			out = append(out, *log)
		}
	}
	return out
}
