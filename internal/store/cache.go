package store

import (
	"container/list"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"viewseeker/internal/faultfs"
	"viewseeker/internal/obs"
	"viewseeker/internal/retry"
	"viewseeker/internal/view"
)

// OfflineResult is the offline phase's cached output: the enumerated view
// space and the utility-feature matrix, with per-row exactness flags (an
// α-sampled pass caches its rough rows; a session warmed from them still
// refines on demand).
type OfflineResult struct {
	Specs []view.Spec
	Names []string
	Rows  [][]float64
	Exact []bool
	// Target, when non-empty, is the query-selected subset DQ in the
	// internal/dataset binary encoding. Only query-addressed entries carry
	// it: with the target stored alongside the matrix, a warm session skips
	// query execution as well as the feature pass.
	Target []byte
}

// AllExact reports whether every cached row was computed on the full data.
func (r *OfflineResult) AllExact() bool {
	for _, e := range r.Exact {
		if !e {
			return false
		}
	}
	return true
}

// validate checks the result's internal shape so that a corrupted or
// hand-edited snapshot can never crash a session built from it.
func (r *OfflineResult) validate() error {
	if r == nil || len(r.Specs) == 0 {
		return fmt.Errorf("store: empty offline result")
	}
	if len(r.Rows) != len(r.Specs) || len(r.Exact) != len(r.Specs) {
		return fmt.Errorf("store: offline result has %d specs, %d rows, %d exact flags",
			len(r.Specs), len(r.Rows), len(r.Exact))
	}
	for i, row := range r.Rows {
		if len(row) != len(r.Names) {
			return fmt.Errorf("store: offline result row %d has %d features, want %d",
				i, len(row), len(r.Names))
		}
	}
	return nil
}

// clone deep-copies the result. The cache clones on both Put and Get:
// sessions refine matrix rows in place, and a shared slice would let one
// session's refinement leak into the cache and into other sessions.
func (r *OfflineResult) clone() *OfflineResult {
	out := &OfflineResult{
		Specs:  append([]view.Spec(nil), r.Specs...),
		Names:  append([]string(nil), r.Names...),
		Rows:   make([][]float64, len(r.Rows)),
		Exact:  append([]bool(nil), r.Exact...),
		Target: append([]byte(nil), r.Target...),
	}
	for i, row := range r.Rows {
		out.Rows[i] = append([]float64(nil), row...)
	}
	return out
}

// Cache is a content-addressed store of offline results with an in-memory
// LRU front and an optional on-disk snapshot backend. All methods are safe
// for concurrent use. Entries are immutable once stored: invalidation is
// purely by addressing (any input change produces a different
// fingerprint), so there is no explicit invalidation API.
//
// Failure semantics: snapshot writes retry on a bounded backoff schedule;
// exhaustion marks the cache Degraded and keeps the in-memory entry — the
// cache degrades to memory-only rather than failing sessions. The next
// successful snapshot write clears the flag.
type Cache struct {
	mu   sync.Mutex
	cap  int
	dir  string // "" = memory only
	fs   faultfs.FS
	ll   *list.List
	byFP map[string]*list.Element

	policy   retry.Policy
	degraded atomic.Bool

	hits, misses, evictions int64

	// Metric handles, nil until Instrument is called; every use is
	// nil-safe, so an uninstrumented cache pays only nil checks.
	mHits, mMisses, mEvictions    *obs.Counter
	mSnapBytes                    *obs.Counter
	mDegradedTransitions          *obs.Counter
	mRetryBackoffs, mRetryExhaust *obs.Counter
	mEntries, mDegraded           *obs.Gauge
	mSnapSeconds                  *obs.Histogram
}

type cacheEntry struct {
	fp  string
	res *OfflineResult
}

// DefaultCapacity is the in-memory LRU size used when a caller passes
// capacity <= 0: entries are a few MB each at typical view-space sizes, so
// a few dozen hot (table, query) pairs stay resident.
const DefaultCapacity = 64

// NewCache returns a memory-only cache holding at most capacity entries
// (<= 0 selects DefaultCapacity).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap: capacity, fs: faultfs.OS{}, policy: retry.Default(),
		ll: list.New(), byFP: make(map[string]*list.Element),
	}
}

// Open returns a cache whose entries are additionally snapshotted under
// dir (one file per fingerprint), so a restarted process warms from disk:
// an LRU-evicted or not-yet-loaded entry is transparently reloaded on Get.
// The directory is created if missing.
func Open(dir string, capacity int) (*Cache, error) {
	return OpenFS(faultfs.OS{}, dir, capacity)
}

// OpenFS is Open over an explicit filesystem — the fault-injection seam.
func OpenFS(fs faultfs.FS, dir string, capacity int) (*Cache, error) {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating cache dir: %w", err)
	}
	c := NewCache(capacity)
	c.dir = dir
	c.fs = fs
	return c, nil
}

// SetRetryPolicy replaces the snapshot-write retry schedule. Retry
// counters installed by Instrument survive the swap.
func (c *Cache) SetRetryPolicy(p retry.Policy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy = p
}

// Instrument registers the cache's metrics against reg (see DESIGN.md §11
// for the name schema): hit/miss/eviction counters, the resident-entry
// gauge, snapshot write latency and bytes, degraded-state gauge and
// transition counter, and the shared retry counters. Call it once at
// wiring time; an uninstrumented cache records nothing.
func (c *Cache) Instrument(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mHits = reg.Counter("viewseeker_store_cache_hits_total")
	c.mMisses = reg.Counter("viewseeker_store_cache_misses_total")
	c.mEvictions = reg.Counter("viewseeker_store_cache_evictions_total")
	c.mEntries = reg.Gauge("viewseeker_store_cache_entries")
	c.mSnapBytes = reg.Counter("viewseeker_store_snapshot_bytes_total")
	c.mSnapSeconds = reg.Histogram("viewseeker_store_snapshot_write_seconds", obs.DurationBuckets)
	c.mDegraded = reg.Gauge(`viewseeker_store_degraded{component="cache"}`)
	c.mDegradedTransitions = reg.Counter(`viewseeker_store_degraded_transitions_total{component="cache"}`)
	c.mRetryBackoffs = reg.Counter("viewseeker_retry_backoffs_total")
	c.mRetryExhaust = reg.Counter("viewseeker_retry_exhausted_total")
}

// Degraded reports whether the last snapshot write exhausted its retries:
// the cache keeps serving from memory, but entries stored while the flag
// is set will not survive a restart.
func (c *Cache) Degraded() bool { return c.degraded.Load() }

// DiskBacked reports whether the cache snapshots entries to disk.
func (c *Cache) DiskBacked() bool { return c.dir != "" }

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit/miss/eviction counts.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// Get returns the cached result for a fingerprint, consulting the disk
// backend on a memory miss. The returned result is the caller's to mutate.
func (c *Cache) Get(fp string) (*OfflineResult, bool) {
	c.mu.Lock()
	if el, ok := c.byFP[fp]; ok {
		c.ll.MoveToFront(el)
		res := el.Value.(*cacheEntry).res.clone()
		c.hits++
		c.mHits.Inc()
		c.mu.Unlock()
		return res, true
	}
	c.mu.Unlock()
	// Disk load happens outside the lock: decoding a snapshot is slow
	// relative to a map hit and must not serialise unrelated sessions.
	if c.dir != "" {
		if res, err := readSnapshot(c.fs, c.snapshotPath(fp), fp); err == nil {
			c.mu.Lock()
			c.insert(fp, res.clone())
			c.hits++
			c.mHits.Inc()
			c.mu.Unlock()
			return res, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mMisses.Inc()
	c.mu.Unlock()
	return nil, false
}

// Put stores a result. The entry is deep-copied, snapshotted to disk when
// a backend is configured, and may evict the least-recently-used entry
// from memory (never from disk). A disk write failure is retried on the
// cache's backoff schedule; exhaustion leaves the memory entry in place,
// marks the cache Degraded, and returns the error for logging — callers
// may ignore it, the cache keeps serving memory-only.
func (c *Cache) Put(fp string, res *OfflineResult) error {
	if err := res.validate(); err != nil {
		return err
	}
	stored := res.clone()
	c.mu.Lock()
	c.insert(fp, stored)
	policy := c.policy
	// Counters ride the policy copy so a SetRetryPolicy after Instrument
	// cannot silently disconnect retry accounting.
	policy.Backoffs = c.mRetryBackoffs
	policy.Exhausted = c.mRetryExhaust
	c.mu.Unlock()
	if c.dir != "" {
		start := time.Now()
		var written int64
		err := policy.Do(context.Background(), func() error {
			n, werr := writeSnapshot(c.fs, c.snapshotPath(fp), fp, stored)
			written = n
			return werr
		})
		c.mSnapSeconds.ObserveDuration(time.Since(start))
		if err != nil {
			// Swap so a true→true rewrite does not recount: the transition
			// counter tracks distinct entries into degraded mode.
			if !c.degraded.Swap(true) {
				c.mDegradedTransitions.Inc()
			}
			c.mDegraded.Set(1)
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
		c.mSnapBytes.Add(written)
		c.degraded.Store(false)
		c.mDegraded.Set(0)
	}
	return nil
}

// insert adds or refreshes an entry; callers hold c.mu.
func (c *Cache) insert(fp string, res *OfflineResult) {
	if el, ok := c.byFP[fp]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.byFP[fp] = c.ll.PushFront(&cacheEntry{fp: fp, res: res})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byFP, last.Value.(*cacheEntry).fp)
		c.evictions++
		c.mEvictions.Inc()
	}
	c.mEntries.Set(int64(c.ll.Len()))
}

func (c *Cache) snapshotPath(fp string) string {
	return filepath.Join(c.dir, fp+".vscache")
}

// snapshot is the gob wire format of one disk entry, following the
// internal/dataset binary conventions: a version field guards decoding and
// the fingerprint is stored redundantly so a renamed or cross-copied file
// cannot serve the wrong result.
type snapshot struct {
	Version     int
	Fingerprint string
	Result      OfflineResult
}

const snapshotVersion = 1

// countingWriter counts bytes on their way into the snapshot file so the
// instrumented cache can report bytes actually written to disk.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func writeSnapshot(fs faultfs.FS, path, fp string, res *OfflineResult) (int64, error) {
	tmp, err := fs.CreateTemp(filepath.Dir(path), ".vscache-*")
	if err != nil {
		return 0, err
	}
	defer fs.Remove(tmp.Name())
	cw := &countingWriter{w: tmp}
	err = gob.NewEncoder(cw).Encode(snapshot{Version: snapshotVersion, Fingerprint: fp, Result: *res})
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return cw.n, err
	}
	// Atomic publish: a crash mid-write leaves only a temp file, never a
	// truncated snapshot under the real name.
	return cw.n, fs.Rename(tmp.Name(), path)
}

// readSnapshot loads and validates one disk entry. Any failure — missing
// file, truncation, version skew, fingerprint mismatch, shape corruption —
// quarantines the file (best effort) and reports an error; the caller
// treats it as a miss and recomputes, never crashes.
func readSnapshot(fs faultfs.FS, path, fp string) (*OfflineResult, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var snap snapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		fs.Remove(path)
		return nil, fmt.Errorf("store: decoding snapshot %s: %w", filepath.Base(path), err)
	}
	if snap.Version != snapshotVersion {
		fs.Remove(path)
		return nil, fmt.Errorf("store: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if snap.Fingerprint != fp {
		fs.Remove(path)
		return nil, fmt.Errorf("store: snapshot fingerprint mismatch")
	}
	if err := snap.Result.validate(); err != nil {
		fs.Remove(path)
		return nil, err
	}
	return &snap.Result, nil
}
