package store

import (
	"os"
	"path/filepath"
	"testing"
)

func TestJournalAppendRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Op: OpCreate, Session: "abc", Table: "diab", Query: "SELECT * FROM diab", K: 5, Alpha: 0.5, Strategy: "random", Seed: 9, Workers: 2},
		{Op: OpFeedback, Session: "abc", View: 0, Label: 0},
		{Op: OpFeedback, Session: "abc", View: 17, Label: 0.75},
		{Op: OpDelete, Session: "abc"},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpDelete, Session: "x"}); err == nil {
		t.Error("append after close succeeded")
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	recs, err := ReadJournal(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("missing journal: recs=%v err=%v", recs, err)
	}
}

func TestJournalTornTailIsTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpCreate, Session: "a", Table: "t", Query: "q"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpFeedback, Session: "a", View: 3, Label: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, non-JSON final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"feedback","sess`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records, want the 2 intact ones", len(recs))
	}
	// Reopening for append after a torn tail keeps working; the reader
	// stays truncated at the tear but everything before it survives.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayCollapsesLifecycle(t *testing.T) {
	recs := []Record{
		{Op: OpCreate, Session: "s1", Table: "t", Query: "q1"},
		{Op: OpFeedback, Session: "s1", View: 1, Label: 1},
		{Op: OpCreate, Session: "s2", Table: "t", Query: "q2"},
		{Op: OpFeedback, Session: "s2", View: 2, Label: 0},
		{Op: OpDelete, Session: "s1"},
		{Op: OpFeedback, Session: "s1", View: 9, Label: 1},    // after delete: dropped
		{Op: OpFeedback, Session: "ghost", View: 0, Label: 1}, // never created: dropped
		{Op: OpDelete, Session: "missing"},                    // no-op
		{Op: OpFeedback, Session: "s2", View: 5, Label: 0.25},
	}
	logs := Replay(recs)
	if len(logs) != 1 {
		t.Fatalf("live sessions = %d, want 1", len(logs))
	}
	lg := logs[0]
	if lg.Create.Session != "s2" || lg.Create.Query != "q2" {
		t.Fatalf("wrong create record: %+v", lg.Create)
	}
	if len(lg.Feedback) != 2 || lg.Feedback[0].View != 2 || lg.Feedback[1].View != 5 {
		t.Fatalf("feedback = %+v", lg.Feedback)
	}
}

func TestReplayRecreateReplacesSession(t *testing.T) {
	recs := []Record{
		{Op: OpCreate, Session: "s1", Table: "t", Query: "old"},
		{Op: OpFeedback, Session: "s1", View: 1, Label: 1},
		{Op: OpCreate, Session: "s1", Table: "t", Query: "new"},
		{Op: OpFeedback, Session: "s1", View: 2, Label: 0},
	}
	logs := Replay(recs)
	if len(logs) != 1 {
		t.Fatalf("live sessions = %d, want 1", len(logs))
	}
	if logs[0].Create.Query != "new" || len(logs[0].Feedback) != 1 || logs[0].Feedback[0].View != 2 {
		t.Fatalf("recreate did not replace: %+v", logs[0])
	}
}
