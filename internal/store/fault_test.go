package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"viewseeker/internal/faultfs"
	"viewseeker/internal/retry"
	"viewseeker/internal/view"
)

var errNoSpace = syscall.ENOSPC

// recordingPolicy returns a fast deterministic schedule whose sleeps are
// captured instead of waited out.
func recordingPolicy(slept *[]time.Duration) retry.Policy {
	return retry.Policy{
		Attempts: 3, Base: 10 * time.Millisecond, Max: 40 * time.Millisecond,
		Sleep: func(d time.Duration) { *slept = append(*slept, d) },
	}
}

func faultResult() *OfflineResult {
	return &OfflineResult{
		Specs: []view.Spec{{Dimension: "d", Measure: "m", Agg: "COUNT", Bins: 4}},
		Names: []string{"KL"},
		Rows:  [][]float64{{0.25}},
		Exact: []bool{true},
	}
}

func TestJournalFaultENOSPCDegradesAndRecovers(t *testing.T) {
	fs := faultfs.NewFaulty(nil)
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournalFS(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var slept []time.Duration
	j.SetRetryPolicy(recordingPolicy(&slept))

	if err := j.Append(Record{Op: OpCreate, Session: "a", Table: "t", Query: "q"}); err != nil {
		t.Fatal(err)
	}
	if j.Degraded() {
		t.Fatal("healthy journal reports degraded")
	}

	fs.FailWrites(errNoSpace)
	err = j.Append(Record{Op: OpFeedback, Session: "a", View: 1, Label: 1})
	if !errors.Is(err, errNoSpace) {
		t.Fatalf("append under ENOSPC: err = %v, want ENOSPC", err)
	}
	if !j.Degraded() {
		t.Error("exhausted retries did not mark the journal degraded")
	}
	// Retry timing is deterministic under the injected sleeper: 3 attempts,
	// backoffs 10ms then 20ms, no jitter configured.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("backoff schedule = %v, want %v", slept, want)
	}

	// Lifting the fault: the next append succeeds and clears the flag.
	fs.Clear()
	if err := j.Append(Record{Op: OpFeedback, Session: "a", View: 2, Label: 0}); err != nil {
		t.Fatal(err)
	}
	if j.Degraded() {
		t.Error("successful append did not clear the degraded flag")
	}

	recs, err := ReadJournalFS(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	// The ENOSPC'd record is lost (it never reached disk); the records
	// around it survive.
	if len(recs) != 2 || recs[0].Op != OpCreate || recs[1].View != 2 {
		t.Fatalf("replay = %+v, want create + view-2 feedback", recs)
	}
}

func TestJournalFaultTransientErrorIsRetriedAway(t *testing.T) {
	fs := faultfs.NewFaulty(nil)
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournalFS(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var slept []time.Duration
	j.SetRetryPolicy(recordingPolicy(&slept))

	// Two transient failures fit inside the 3-attempt budget: the append
	// succeeds overall and the journal never degrades.
	fs.FailNextWrites(2, errNoSpace)
	if err := j.Append(Record{Op: OpCreate, Session: "a", Table: "t", Query: "q"}); err != nil {
		t.Fatalf("append with transient fault: %v", err)
	}
	if j.Degraded() {
		t.Error("recovered append left the journal degraded")
	}
	if len(slept) != 2 {
		t.Errorf("slept %v, want 2 backoffs", slept)
	}
	recs, err := ReadJournalFS(fs, path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("replay = %+v, %v", recs, err)
	}
}

func TestJournalFaultTornWriteDoesNotCorruptNeighbours(t *testing.T) {
	fs := faultfs.NewFaulty(nil)
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournalFS(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.SetRetryPolicy(retry.Policy{Attempts: 1}) // no retries: observe one torn write per append

	if err := j.Append(Record{Op: OpCreate, Session: "a", Table: "t", Query: "q"}); err != nil {
		t.Fatal(err)
	}
	// A torn write persists a JSON prefix and fails.
	fs.TearWritesAfter(7, errNoSpace)
	if err := j.Append(Record{Op: OpFeedback, Session: "a", View: 1, Label: 1}); !errors.Is(err, errNoSpace) {
		t.Fatalf("torn append err = %v", err)
	}
	if !j.Degraded() {
		t.Error("torn append did not degrade the journal")
	}
	fs.Clear()
	// The next append terminates the torn fragment before writing itself.
	if err := j.Append(Record{Op: OpFeedback, Session: "a", View: 2, Label: 0}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournalFS(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Op != OpCreate || recs[1].Op != OpFeedback || recs[1].View != 2 {
		t.Fatalf("replay = %+v, want create + view-2 feedback (torn line skipped)", recs)
	}
	raw, _ := os.ReadFile(path)
	t.Logf("journal bytes: %q", raw)
}

func TestCacheFaultSnapshotENOSPCDegradesToMemoryOnly(t *testing.T) {
	fs := faultfs.NewFaulty(nil)
	dir := t.TempDir()
	c, err := OpenFS(fs, dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	c.SetRetryPolicy(recordingPolicy(&slept))

	fs.FailWrites(errNoSpace)
	res := faultResult()
	if err := c.Put("fp1", res); !errors.Is(err, errNoSpace) {
		t.Fatalf("put under ENOSPC: err = %v, want wrapped ENOSPC", err)
	}
	if !c.Degraded() {
		t.Error("exhausted snapshot retries did not mark the cache degraded")
	}
	if len(slept) != 2 {
		t.Errorf("backoff schedule = %v, want 2 sleeps", slept)
	}
	// The memory entry survives: sessions keep hitting the cache.
	if got, ok := c.Get("fp1"); !ok || len(got.Rows) != 1 {
		t.Fatal("memory entry lost after failed snapshot write")
	}

	// Lifting the fault: the next Put snapshots and clears the flag.
	fs.Clear()
	if err := c.Put("fp2", faultResult()); err != nil {
		t.Fatal(err)
	}
	if c.Degraded() {
		t.Error("successful snapshot did not clear the degraded flag")
	}
	if _, err := os.Stat(filepath.Join(dir, "fp2.vscache")); err != nil {
		t.Errorf("snapshot missing after recovery: %v", err)
	}
}

func TestCacheFaultCorruptSnapshotQuarantined(t *testing.T) {
	fs := faultfs.NewFaulty(nil)
	dir := t.TempDir()
	c, err := OpenFS(fs, dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("fp1", faultResult()); err != nil {
		t.Fatal(err)
	}
	// Corrupt the snapshot on disk and drop the memory entry by opening a
	// fresh cache over the same dir.
	path := filepath.Join(dir, "fp1.vscache")
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenFS(fs, dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("fp1"); ok {
		t.Fatal("corrupt snapshot served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt snapshot not quarantined: %v", err)
	}
	if c2.Degraded() {
		t.Error("read-side quarantine must not mark the write path degraded")
	}
}

func TestCacheFaultRetryHonoursContext(t *testing.T) {
	// Direct policy check through the cache's write path is covered above;
	// this pins that a cancelled context stops snapshot retries early when
	// a caller wires one through retry.Policy.Do.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := (retry.Policy{Attempts: 5, Base: time.Millisecond, Sleep: func(time.Duration) {}}).
		Do(ctx, func() error { calls++; return errNoSpace })
	if calls != 1 || !errors.Is(err, errNoSpace) {
		t.Fatalf("calls = %d, err = %v", calls, err)
	}
}
