// Package server exposes ViewSeeker over HTTP: a small JSON API plus an
// embedded single-page UI, turning the library into the interactive tool
// the paper describes — the analyst sees one view at a time as an SVG
// chart, rates it, and watches the top-k recommendations sharpen.
//
// # Contracts
//
// Cancellation (DESIGN.md §10): handlers thread r.Context() into the
// facade, so a disconnected client or an expired -request-timeout cancels
// the offline phase within one work item; context.Canceled and
// DeadlineExceeded map to 503 (retryable), other errors to 4xx/5xx by
// kind. A recovery middleware turns handler panics into logged stacks
// plus a 500, re-raising http.ErrAbortHandler.
//
// Degraded mode (DESIGN.md §§8, 10): journal and cache-snapshot failures
// never fail user requests — the server keeps serving and reports lost
// durability via GET /healthz (always 200; status "ok"|"degraded" per
// component) and the degraded field on session-info and feedback bodies.
//
// Replay: every session lifecycle event is journalled, and replay
// rebuilds a session deterministically from its log (create + feedback),
// so the restored estimator, top-k and weights are exact.
// RestoreSessions is lazy: it indexes journaled sessions cold and each
// rehydrates on first touch rather than at boot.
//
// Session lifecycle (DESIGN.md §16): sessions live in a memory-budgeted
// manager (internal/session, Options.SessionBudgetBytes). Over budget,
// idle sessions are LRU-evicted down to their journal mirror and
// rehydrated bit-identically on next touch; sessions on maintained live
// tables are pinned (shared offline state cannot be replayed). Under
// hard overload — accounted bytes past budget × 1.5 or the rehydration
// backlog full — creates and cold-session rehydrations are shed with
// 429 + Retry-After. GET /healthz reports the manager state
// (accepting/evicting/shedding), resident/cold counts and resident
// bytes; /metricz carries the eviction, rehydration and shed counters.
//
// Observability (DESIGN.md §11): every route runs under the
// instrumentation middleware — request ids (X-Request-Id, generated or
// honoured, threaded through the context into structured slog access
// logs), per-route latency histograms, status-labelled request counters
// and an in-flight gauge — and the request context carries the server's
// obs registry and tracer, which is what lights up the offline, store and
// active-loop metrics below. GET /metricz serves the registry in
// Prometheus text format; GET /debug/vars serves the same data as JSON
// plus the tracer's recent phase traces.
package server
