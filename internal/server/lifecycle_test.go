package server

import (
	"context"
	"net/http"
	"sync"
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/store"
)

// rawJSON drives a handler and returns the exact response body bytes —
// the bit-identity comparisons below must see the wire bytes, not a
// decoded (and float-rounded) structure.
func rawJSON(t *testing.T, h http.Handler, method, path string, body any) (int, string) {
	t.Helper()
	rec := serveJSON(t, h, context.Background(), method, path, body, nil)
	return rec.Code, rec.Body.String()
}

// TestEvictionRehydrationBitIdentity is the lifecycle acceptance test:
// a server under a 1-byte budget evicts the session's in-RAM state after
// every request and rebuilds it by journal replay on the next touch; its
// responses must be byte-identical to an unbudgeted twin serving the same
// session without ever evicting.
func TestEvictionRehydrationBitIdentity(t *testing.T) {
	table := diabTable()
	budgeted := NewWithOptions(Options{SessionBudgetBytes: 1}, table)
	control := New(table)
	bh, ch := budgeted.Handler(), control.Handler()

	create := map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 5, "seed": 7}
	var bInfo, cInfo sessionInfo
	if rec := serveJSON(t, bh, context.Background(), "POST", "/api/sessions", create, &bInfo); rec.Code != http.StatusCreated {
		t.Fatalf("budgeted create = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := serveJSON(t, ch, context.Background(), "POST", "/api/sessions", create, &cInfo); rec.Code != http.StatusCreated {
		t.Fatalf("control create = %d: %s", rec.Code, rec.Body.String())
	}

	steps := []struct {
		view  int
		label float64
	}{{4, 1}, {11, 0}, {42, 0.5}, {7, 1}, {19, 0}, {3, 0.25}}
	for i, fb := range steps {
		// Force the eviction between steps too: the budget alone already
		// drops the session once the request releases it, but the explicit
		// call makes the test independent of eviction timing.
		budgeted.EvictIdleSessions()
		body := map[string]any{"index": fb.view, "label": fb.label}
		bCode, bBody := rawJSON(t, bh, "POST", "/api/sessions/"+bInfo.ID+"/feedback", body)
		cCode, cBody := rawJSON(t, ch, "POST", "/api/sessions/"+cInfo.ID+"/feedback", body)
		if bCode != http.StatusOK || cCode != http.StatusOK {
			t.Fatalf("step %d: feedback = %d / %d", i, bCode, cCode)
		}
		if bBody != cBody {
			t.Fatalf("step %d: post-eviction feedback diverged:\n got %s\nwant %s", i, bBody, cBody)
		}
		for _, route := range []string{"/top", "/weights"} {
			_, b := rawJSON(t, bh, "GET", "/api/sessions/"+bInfo.ID+route, nil)
			_, c := rawJSON(t, ch, "GET", "/api/sessions/"+cInfo.ID+route, nil)
			if b != c {
				t.Fatalf("step %d: %s diverged after rehydration:\n got %s\nwant %s", i, route, b, c)
			}
		}
	}

	snap := budgeted.Metrics().Snapshot()
	if snap["viewseeker_session_evictions_total"] < float64(len(steps)) {
		t.Errorf("evictions = %v, want >= %d", snap["viewseeker_session_evictions_total"], len(steps))
	}
	if snap["viewseeker_session_rehydrations_total"] < float64(len(steps)) {
		t.Errorf("rehydrations = %v, want >= %d", snap["viewseeker_session_rehydrations_total"], len(steps))
	}
}

// TestAdmissionControl429 pins the shedding surface: while the budget is
// exhausted by a session that cannot be evicted (it is serving a
// request), creating a session and touching an evicted one both answer
// 429 with a Retry-After hint, and service recovers once the busy request
// finishes.
func TestAdmissionControl429(t *testing.T) {
	block := make(chan struct{})
	var once sync.Once
	arm := make(chan struct{}, 1)
	var armed bool
	var mu sync.Mutex
	hook := func(int) {
		mu.Lock()
		a := armed
		mu.Unlock()
		if a {
			once.Do(func() { arm <- struct{}{} })
			<-block
		}
	}
	srv := NewWithOptions(Options{SessionBudgetBytes: 1, RefineHook: hook}, diabTable())
	h := srv.Handler()

	// Two sessions: "busy" will hold the budget hostage mid-feedback;
	// "cold" probes the rehydration shed path. alpha<1 with workers:1
	// routes feedback through the refine hook.
	var busy, cold sessionInfo
	if rec := serveJSON(t, h, context.Background(), "POST", "/api/sessions",
		map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 3, "alpha": 0.25, "workers": 1}, &busy); rec.Code != http.StatusCreated {
		t.Fatalf("create busy = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := serveJSON(t, h, context.Background(), "POST", "/api/sessions",
		map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 3}, &cold); rec.Code != http.StatusCreated {
		t.Fatalf("create cold = %d: %s", rec.Code, rec.Body.String())
	}

	mu.Lock()
	armed = true
	mu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		serveJSON(t, h, context.Background(), "POST", "/api/sessions/"+busy.ID+"/feedback",
			map[string]any{"index": 0, "label": 1.0}, nil)
	}()
	<-arm // the feedback handler is now parked inside the session

	rec := serveJSON(t, h, context.Background(), "POST", "/api/sessions",
		map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 3}, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("create under pressure = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 create carries no Retry-After header")
	}
	rec = serveJSON(t, h, context.Background(), "GET", "/api/sessions/"+cold.ID+"/top", nil, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("rehydration under pressure = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 rehydration carries no Retry-After header")
	}
	var health healthResponse
	serveJSON(t, h, context.Background(), "GET", "/healthz", nil, &health)
	if health.SessionManager.State != "shedding" || health.SessionManager.Shed < 2 {
		t.Errorf("healthz sessionManager = %+v, want shedding with >= 2 shed", health.SessionManager)
	}

	mu.Lock()
	armed = false
	mu.Unlock()
	close(block)
	<-done

	// Recovered: the busy session released, eviction can make room again.
	rec = serveJSON(t, h, context.Background(), "GET", "/api/sessions/"+cold.ID+"/top", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("rehydration after recovery = %d: %s", rec.Code, rec.Body.String())
	}
	rec = serveJSON(t, h, context.Background(), "POST", "/api/sessions",
		map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 3}, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create after recovery = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestLazyRestoreIndexesCold pins the boot-cost fix: RestoreSessions
// indexes journal records without paying any offline phase — every
// restored session is cold until its first touch, which rehydrates it
// with its labels replayed.
func TestLazyRestoreIndexesCold(t *testing.T) {
	recs := []store.Record{
		{Op: store.OpCreate, Session: "aaaa", Table: "diab", Query: dataset.DIABQuery, K: 3, Seed: 9},
		{Op: store.OpFeedback, Session: "aaaa", View: 2, Label: 1},
		{Op: store.OpFeedback, Session: "aaaa", View: 5, Label: 0},
		{Op: store.OpCreate, Session: "bbbb", Table: "diab", Query: dataset.DIABQuery, K: 3},
	}
	srv := New(diabTable())
	restored, err := srv.RestoreSessions(recs)
	if err != nil || restored != 2 {
		t.Fatalf("restored %d, err %v", restored, err)
	}
	h := srv.Handler()

	var health healthResponse
	serveJSON(t, h, context.Background(), "GET", "/healthz", nil, &health)
	if health.SessionManager.Cold != 2 || health.SessionManager.Resident != 0 {
		t.Fatalf("after lazy restore: %+v, want 2 cold / 0 resident", health.SessionManager)
	}
	if health.Sessions != 2 {
		t.Fatalf("healthz sessions = %d, want 2", health.Sessions)
	}

	var info sessionInfo
	rec := serveJSON(t, h, context.Background(), "GET", "/api/sessions/aaaa", nil, &info)
	if rec.Code != http.StatusOK || info.NumLabels != 2 {
		t.Fatalf("first touch = %d, labels = %d (want 200 with 2 replayed labels): %s",
			rec.Code, info.NumLabels, rec.Body.String())
	}
	serveJSON(t, h, context.Background(), "GET", "/healthz", nil, &health)
	if health.SessionManager.Cold != 1 || health.SessionManager.Resident != 1 ||
		health.SessionManager.Rehydrations != 1 {
		t.Fatalf("after first touch: %+v, want 1 cold / 1 resident / 1 rehydration", health.SessionManager)
	}
}
