// Package server exposes ViewSeeker over HTTP: a small JSON API plus an
// embedded single-page UI, turning the library into the interactive tool
// the paper describes — the analyst sees one view at a time as an SVG
// chart, rates it, and watches the top-k recommendations sharpen.
package server

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"viewseeker"
)

//go:embed index.html
var indexHTML []byte

// Server hosts tables and interactive sessions. All methods are safe for
// concurrent use; individual sessions serialise their own operations.
type Server struct {
	mu       sync.Mutex
	tables   map[string]*viewseeker.Table
	sessions map[string]*session
	nextID   int
}

type session struct {
	mu     sync.Mutex
	seeker *viewseeker.Seeker
	table  string
	query  string
}

// New builds a server hosting the given tables.
func New(tables ...*viewseeker.Table) *Server {
	s := &Server{
		tables:   make(map[string]*viewseeker.Table),
		sessions: make(map[string]*session),
	}
	for _, t := range tables {
		s.tables[t.Name] = t
	}
	return s
}

// Handler returns the HTTP handler serving the UI and the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(indexHTML)
	})
	mux.HandleFunc("GET /api/tables", s.handleTables)
	mux.HandleFunc("POST /api/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /api/sessions/{id}", s.withSession(s.handleSessionInfo))
	mux.HandleFunc("GET /api/sessions/{id}/next", s.withSession(s.handleNext))
	mux.HandleFunc("POST /api/sessions/{id}/feedback", s.withSession(s.handleFeedback))
	mux.HandleFunc("GET /api/sessions/{id}/top", s.withSession(s.handleTop))
	mux.HandleFunc("GET /api/sessions/{id}/weights", s.withSession(s.handleWeights))
	mux.HandleFunc("GET /api/sessions/{id}/views/{index}/svg", s.withSession(s.handleViewSVG))
	mux.HandleFunc("GET /api/sessions/{id}/views/{index}/explain", s.withSession(s.handleViewExplain))
	mux.HandleFunc("DELETE /api/sessions/{id}", s.handleDeleteSession)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// tableInfo describes one hosted table.
type tableInfo struct {
	Name       string   `json:"name"`
	Rows       int      `json:"rows"`
	Dimensions []string `json:"dimensions"`
	Measures   []string `json:"measures"`
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]tableInfo, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, tableInfo{
			Name: t.Name, Rows: t.NumRows(),
			Dimensions: t.Schema.Dimensions(), Measures: t.Schema.Measures(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// createSessionRequest is the POST /api/sessions body. Workers bounds the
// offline phase's parallelism for this session (0 = all CPUs); the offline
// feature pass runs outside the server lock, so concurrent session
// creations neither block each other nor the rest of the API.
type createSessionRequest struct {
	Table    string  `json:"table"`
	Query    string  `json:"query"`
	K        int     `json:"k"`
	Alpha    float64 `json:"alpha"`
	Strategy string  `json:"strategy"`
	Seed     int64   `json:"seed"`
	Workers  int     `json:"workers"`
}

type sessionInfo struct {
	ID         string `json:"id"`
	Table      string `json:"table"`
	Query      string `json:"query"`
	NumViews   int    `json:"numViews"`
	NumLabels  int    `json:"numLabels"`
	TargetRows int    `json:"targetRows"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	s.mu.Lock()
	table := s.tables[req.Table]
	s.mu.Unlock()
	if table == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown table %q", req.Table))
		return
	}
	seeker, err := viewseeker.New(table, req.Query, viewseeker.Options{
		K: req.K, Alpha: req.Alpha, Strategy: req.Strategy, Seed: req.Seed,
		Workers: req.Workers,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := "s" + strconv.Itoa(s.nextID)
	sess := &session{seeker: seeker, table: req.Table, query: req.Query}
	s.sessions[id] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, s.infoOf(id, sess))
}

func (s *Server) infoOf(id string, sess *session) sessionInfo {
	return sessionInfo{
		ID: id, Table: sess.table, Query: sess.query,
		NumViews: sess.seeker.NumViews(), NumLabels: sess.seeker.NumLabels(),
		TargetRows: sess.seeker.Target().NumRows(),
	}
}

// withSession resolves the {id} path segment and locks the session for
// the duration of the handler.
func (s *Server) withSession(h func(w http.ResponseWriter, r *http.Request, id string, sess *session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s.mu.Lock()
		sess := s.sessions[id]
		s.mu.Unlock()
		if sess == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
			return
		}
		sess.mu.Lock()
		defer sess.mu.Unlock()
		h(w, r, id, sess)
	}
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	writeJSON(w, http.StatusOK, s.infoOf(id, sess))
}

// viewJSON is one view in API responses.
type viewJSON struct {
	Index int     `json:"index"`
	Spec  string  `json:"spec"`
	Score float64 `json:"score"`
	SQL   string  `json:"sql,omitempty"`
}

// nextResponse is the GET next body: either the next view to label, or
// done=true once every view in the space has been labelled — a normal end
// state, not an error, so clients can tell exhaustion from real conflicts.
type nextResponse struct {
	Done bool `json:"done"`
	viewJSON
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	vs, err := sess.seeker.NextViews()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if len(vs) == 0 {
		writeJSON(w, http.StatusOK, nextResponse{Done: true})
		return
	}
	v := vs[0]
	writeJSON(w, http.StatusOK, nextResponse{
		viewJSON: viewJSON{Index: v.Index, Spec: v.Spec.String(), Score: v.Score},
	})
}

// feedbackRequest is the POST feedback body.
type feedbackRequest struct {
	Index int     `json:"index"`
	Label float64 `json:"label"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	var req feedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := sess.seeker.Feedback(req.Index, req.Label); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.topOf(sess))
}

type topResponse struct {
	NumLabels int        `json:"numLabels"`
	Top       []viewJSON `json:"top"`
}

func (s *Server) topOf(sess *session) topResponse {
	// Top starts as an empty slice, not nil: before the first feedback the
	// client must still receive "top": [], never "top": null.
	resp := topResponse{NumLabels: sess.seeker.NumLabels(), Top: []viewJSON{}}
	for _, v := range sess.seeker.TopK() {
		vj := viewJSON{Index: v.Index, Spec: v.Spec.String(), Score: v.Score}
		if query, err := sess.seeker.SQL(v.Index); err == nil {
			vj.SQL = query
		}
		resp.Top = append(resp.Top, vj)
	}
	return resp
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	writeJSON(w, http.StatusOK, s.topOf(sess))
}

func (s *Server) handleWeights(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	weights, intercept := sess.seeker.Weights()
	writeJSON(w, http.StatusOK, map[string]any{
		"features":  sess.seeker.FeatureNames(),
		"weights":   weights,
		"intercept": intercept,
	})
}

func (s *Server) handleViewSVG(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	idx, err := strconv.Atoi(r.PathValue("index"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid view index %q", r.PathValue("index")))
		return
	}
	p, err := sess.seeker.Pair(idx)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, p.RenderSVG(640, 320))
}

func (s *Server) handleViewExplain(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	idx, err := strconv.Atoi(r.PathValue("index"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid view index %q", r.PathValue("index")))
		return
	}
	text, err := sess.seeker.Explain(idx, 3)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"explanation": text})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
