package server

import (
	"bytes"
	"context"
	"crypto/rand"
	_ "embed"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"viewseeker"
	"viewseeker/internal/obs"
	"viewseeker/internal/session"
	"viewseeker/internal/store"
)

//go:embed index.html
var indexHTML []byte

// Options configures the server's durability layer. The zero value is a
// fully in-memory server with a session-shared offline-result cache.
type Options struct {
	// Cache is the offline-result store shared by every session; nil
	// builds a default in-memory cache (sharing the offline phase across
	// sessions is always safe — entries are content-addressed).
	Cache *store.Cache
	// Journal, when non-nil, receives every session lifecycle event
	// (create, feedback, delete) so sessions survive a restart via
	// RestoreSessions.
	Journal *store.Journal
	// MaxBodyBytes caps POST request bodies (default 1 MiB); oversized
	// requests get 413.
	MaxBodyBytes int64
	// RefineHook, when non-nil, is passed to every session's incremental
	// refiner: it is called once per feature row refreshed during feedback
	// handling (see viewseeker.Options.RefineHook). Tests use it to observe
	// that a cancelled request stops refinement promptly.
	RefineHook func(viewIdx int)
	// Metrics is the observability registry exported at GET /metricz; nil
	// builds a fresh one — the server is always instrumented, because its
	// request path is never hot enough for the registry to matter. The cache
	// and journal are instrumented against it, so sharing a cache across
	// servers with distinct registries leaves the handles pointing at
	// whichever server instrumented it last.
	Metrics *obs.Registry
	// Tracer receives the server's phase spans (offline, select, feedback);
	// nil builds a default 64-entry ring. Recent traces are exported at
	// GET /debug/vars.
	Tracer *obs.Tracer
	// Logger receives structured request and error logs; nil uses
	// slog.Default(). Every line carries the request id the server also
	// returns in the X-Request-Id response header.
	Logger *slog.Logger
	// SessionBudgetBytes caps the accounted resident bytes across all
	// interactive sessions (0 = unbudgeted, the historical behaviour).
	// Over budget, the coldest idle sessions are evicted — their in-RAM
	// state dropped, their journal mirror kept — and rebuilt transparently
	// on the next touch; when even eviction cannot make room, new sessions
	// and rehydrations are refused with 429 + Retry-After. See DESIGN.md
	// §16 and internal/session.
	SessionBudgetBytes int64
}

// defaultMaxBodyBytes bounds POST bodies: session configs and feedback
// records are tiny, so 1 MiB is generous headroom for long SQL queries
// while keeping memory per request bounded.
const defaultMaxBodyBytes = 1 << 20

// Server hosts tables and interactive sessions. All methods are safe for
// concurrent use; individual sessions serialise their own operations.
type Server struct {
	mu     sync.Mutex
	tables map[string]*viewseeker.Table
	live   map[string]*viewseeker.LiveTable

	// sessions owns the interactive sessions under the memory budget:
	// per-session accounting, LRU eviction, journal-replay rehydration and
	// admission control all live there (internal/session, DESIGN.md §16).
	sessions *session.Manager

	// tableHash caches each hosted table's content hash: tables are fixed
	// at construction, so warm session creation never rehashes the dataset.
	tableHash map[string]string

	cache      *store.Cache
	journal    *store.Journal
	maxBody    int64
	refineHook func(viewIdx int)

	// maintainers holds one background maintainer per hosted live table
	// (see maintain.go); maintSem bounds how many run a pass concurrently.
	// closed marks Close having run: maintainers are stopped and live
	// tables hosted afterwards get none.
	maintainers map[string]*maintainer
	maintSem    chan struct{}
	closed      bool

	metrics       *obs.Registry
	tracer        *obs.Tracer
	log           *slog.Logger
	inflight      *obs.Gauge
	panics        *obs.Counter
	maintPanics   *obs.Counter
	driftRebuilds *obs.Counter
}

// New builds a server hosting the given tables with default Options.
func New(tables ...*viewseeker.Table) *Server {
	return NewWithOptions(Options{}, tables...)
}

// NewWithOptions builds a server hosting the given tables.
func NewWithOptions(opts Options, tables ...*viewseeker.Table) *Server {
	s := &Server{
		tables:      make(map[string]*viewseeker.Table),
		live:        make(map[string]*viewseeker.LiveTable),
		sessions:    session.NewManager(session.Config{BudgetBytes: opts.SessionBudgetBytes}),
		tableHash:   make(map[string]string),
		maintainers: make(map[string]*maintainer),
		maintSem:    make(chan struct{}, maintainerConcurrency),
		cache:       opts.Cache,
		journal:     opts.Journal,
		maxBody:     opts.MaxBodyBytes,
		refineHook:  opts.RefineHook,
		metrics:     opts.Metrics,
		tracer:      opts.Tracer,
		log:         opts.Logger,
	}
	if s.cache == nil {
		s.cache = store.NewCache(0)
	}
	if s.maxBody <= 0 {
		s.maxBody = defaultMaxBodyBytes
	}
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	if s.tracer == nil {
		s.tracer = obs.NewTracer(0)
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	s.inflight = s.metrics.Gauge("viewseeker_server_inflight_requests")
	s.panics = s.metrics.Counter("viewseeker_server_panics_total")
	s.maintPanics = s.metrics.Counter("viewseeker_server_maintainer_panics_total")
	s.driftRebuilds = s.metrics.Counter("viewseeker_live_drift_rebuilds_total")
	s.cache.Instrument(s.metrics)
	s.sessions.Instrument(s.metrics)
	if s.journal != nil {
		s.journal.Instrument(s.metrics)
	}
	for _, t := range tables {
		s.tables[t.Name] = t
		s.tableHash[t.Name] = viewseeker.HashTable(t)
	}
	return s
}

// Metrics exposes the server's observability registry — the one backing
// GET /metricz — so embedding commands (cmd/serve, cmd/bench) can read the
// same counters the endpoint exports.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Tracer exposes the server's span tracer (cmd/serve points its sink at
// the -trace-log file).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// newSessionID returns an unguessable random session id: session ids are
// the only credential guarding a session's state, so they must not be
// enumerable the way sequential ids are. An entropy failure is returned as
// an error — the handler surfaces it as a 500 rather than crashing the
// process or handing out a predictable id; the panic-recovery middleware
// is the backstop for bugs, not part of this contract.
func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: reading session id entropy: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// journalAppend best-effort records one session event: journal write
// failures must not fail user requests, but they do cost restart
// durability, so they are logged.
func (s *Server) journalAppend(rec store.Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		s.log.Error("journal append failed", "op", rec.Op, "session", rec.Session, "err", err)
	}
}

// decodeBody decodes a size-capped JSON POST body, distinguishing an
// oversized request (413) from a malformed one (400).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// Handler returns the HTTP handler serving the UI and the API. Every route
// is registered through the instrumentation middleware (request ids,
// per-route latency and status metrics, structured access logs) and the
// whole mux is wrapped in panic recovery.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	handle("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(indexHTML)
	})
	handle("GET /healthz", s.handleHealthz)
	handle("GET /metricz", s.handleMetricz)
	handle("GET /debug/vars", s.handleVars)
	handle("GET /api/tables", s.handleTables)
	handle("POST /api/tables/{name}/append", s.handleAppend)
	handle("POST /api/tables/{name}/checkpoint", s.handleCheckpoint)
	handle("POST /api/sessions", s.handleCreateSession)
	handle("GET /api/sessions/{id}", s.withSession(s.handleSessionInfo))
	handle("GET /api/sessions/{id}/next", s.withSession(s.handleNext))
	handle("POST /api/sessions/{id}/feedback", s.withSession(s.handleFeedback))
	handle("GET /api/sessions/{id}/top", s.withSession(s.handleTop))
	handle("GET /api/sessions/{id}/weights", s.withSession(s.handleWeights))
	handle("GET /api/sessions/{id}/views/{index}/svg", s.withSession(s.handleViewSVG))
	handle("GET /api/sessions/{id}/views/{index}/explain", s.withSession(s.handleViewExplain))
	handle("DELETE /api/sessions/{id}", s.handleDeleteSession)
	return s.recoverPanics(mux)
}

// requestIDKey carries the per-request id through the request context.
type requestIDKey struct{}

// RequestIDFrom returns the request id the instrumentation middleware
// assigned ("" outside a request context). Handlers and hooks use it to
// correlate their own logs with the server's access lines.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// statusWriter records the status code a handler writes (200 when it
// writes a body without an explicit WriteHeader).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps one route's handler with the server's observability:
// it assigns a request id (honouring an incoming X-Request-Id, so ids
// thread through proxies), threads the registry and tracer into the
// request context — which is what lights up the offline, store and
// active-loop metrics on the paths below the handler — and records the
// route-labelled latency histogram, status-labelled request counter,
// in-flight gauge, and a structured access log line.
//
// The route label is the mux pattern, resolved once at registration: the
// histogram handle costs nothing per request, and patterns (not raw
// paths) keep the label cardinality fixed.
func (s *Server) instrument(route string, next http.Handler) http.Handler {
	hist := s.metrics.Histogram(fmt.Sprintf("viewseeker_server_request_seconds{route=%q}", route), obs.DurationBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id, _ = newSessionID() // entropy failure leaves id empty; never fatal
		}
		w.Header().Set("X-Request-Id", id)
		ctx := obs.NewContext(r.Context(), s.metrics, s.tracer)
		ctx = context.WithValue(ctx, requestIDKey{}, id)
		sw := &statusWriter{ResponseWriter: w}
		s.inflight.Inc()
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		s.inflight.Dec()
		hist.ObserveDuration(elapsed)
		s.metrics.Counter(fmt.Sprintf("viewseeker_server_requests_total{route=%q,code=\"%d\"}", route, sw.status())).Inc()
		s.log.Info("request",
			"id", id, "method", r.Method, "path", r.URL.Path,
			"route", route, "status", sw.status(), "duration", elapsed)
	})
}

// recoverPanics converts a handler panic into a logged stack plus a 500,
// instead of killing the whole process (and with it every other session).
// http.ErrAbortHandler is re-raised: it is net/http's sanctioned way to
// abort a response and must keep its meaning.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.panics.Inc()
			s.log.Error("panic serving request",
				"id", RequestIDFrom(r.Context()), "method", r.Method, "path", r.URL.Path,
				"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
			// Best effort: if the handler already wrote a status line this
			// header is a no-op, but the connection still closes with the
			// truncated body rather than the process dying.
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
		}()
		next.ServeHTTP(w, r)
	})
}

// handleMetricz serves the registry in Prometheus text exposition format.
func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

// handleVars serves an expvar-style JSON dump of every metric plus the
// tracer's recent root spans — the debugging view of the same data
// /metricz exports for scraping.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	var metrics bytes.Buffer
	_ = s.metrics.WriteJSON(&metrics)
	traces := s.tracer.Recent()
	if traces == nil {
		traces = []*obs.SpanData{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"metrics": json.RawMessage(metrics.Bytes()),
		"traces":  traces,
	})
}

// healthComponent is one durability component's state in GET /healthz.
type healthComponent struct {
	// Enabled reports whether the component is configured at all (a
	// journal is optional; the cache may be memory-only).
	Enabled bool `json:"enabled"`
	// Degraded reports whether the component's last disk write exhausted
	// its retries: the server keeps serving, but without durability.
	Degraded bool `json:"degraded"`
}

// healthResponse is the GET /healthz body. Status is "ok" or "degraded" —
// degraded means the server answers every request correctly but some
// state written now would not survive a restart.
type healthResponse struct {
	Status   string          `json:"status"`
	Journal  healthComponent `json:"journal"`
	Cache    healthComponent `json:"cache"`
	Sessions int             `json:"sessions"`
	// SessionManager is the memory-budgeted lifecycle state (DESIGN.md
	// §16): budget and accounted resident bytes, the resident/cold split,
	// the admission-control state (accepting / evicting / shedding) and
	// the lifetime eviction, rehydration and shed counts.
	SessionManager session.Stats `json:"sessionManager"`
	// Live lists each hosted live table's WAL state (omitted when none are
	// hosted); the fsync latency histogram and recovery counters live on
	// /metricz under the viewseeker_wal_* series.
	Live []liveStatus `json:"live,omitempty"`
}

// Degraded reports whether any configured durability component is
// currently failing its disk writes.
func (s *Server) Degraded() bool {
	if s.journal != nil && s.journal.Degraded() {
		return true
	}
	return s.cache.Degraded()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sm := s.sessions.Stats()
	resp := healthResponse{
		Status:         "ok",
		Journal:        healthComponent{Enabled: s.journal != nil},
		Cache:          healthComponent{Enabled: s.cache.DiskBacked()},
		Sessions:       sm.Resident + sm.Cold,
		SessionManager: sm,
		Live:           s.liveStatuses(),
	}
	if s.journal != nil {
		resp.Journal.Degraded = s.journal.Degraded()
	}
	resp.Cache.Degraded = s.cache.Degraded()
	if resp.Journal.Degraded || resp.Cache.Degraded {
		resp.Status = "degraded"
	}
	// Degraded is still 200: the service is serving; load balancers that
	// should drain on lost durability can key off the body.
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// tableInfo describes one hosted table.
type tableInfo struct {
	Name       string   `json:"name"`
	Rows       int      `json:"rows"`
	Dimensions []string `json:"dimensions"`
	Measures   []string `json:"measures"`
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]tableInfo, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, tableInfo{
			Name: t.Name, Rows: t.NumRows(),
			Dimensions: t.Schema.Dimensions(), Measures: t.Schema.Measures(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// createSessionRequest is the POST /api/sessions body. Workers bounds the
// offline phase's parallelism for this session (0 = all CPUs); the offline
// feature pass runs outside the server lock, so concurrent session
// creations neither block each other nor the rest of the API.
type createSessionRequest struct {
	Table    string  `json:"table"`
	Query    string  `json:"query"`
	K        int     `json:"k"`
	Alpha    float64 `json:"alpha"`
	Strategy string  `json:"strategy"`
	Seed     int64   `json:"seed"`
	Workers  int     `json:"workers"`
}

type sessionInfo struct {
	ID         string `json:"id"`
	Table      string `json:"table"`
	Query      string `json:"query"`
	NumViews   int    `json:"numViews"`
	NumLabels  int    `json:"numLabels"`
	TargetRows int    `json:"targetRows"`
	// Cached reports whether the session's offline phase was served from
	// the shared offline-result cache instead of being computed.
	Cached bool `json:"cached"`
	// Degraded mirrors GET /healthz: true while any durability component
	// (journal, cache snapshots) is failing its disk writes, so interactive
	// clients learn about lost durability without polling the health
	// endpoint.
	Degraded bool `json:"degraded"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// Admission control runs before the offline phase is paid: when the
	// session budget is exhausted by unevictable (in-flight or pinned)
	// sessions, the request is shed up front instead of computing a matrix
	// there is no room to keep.
	if err := s.sessions.AdmitNew(); err != nil {
		writeOverload(w, err)
		return
	}
	s.mu.Lock()
	table := s.tables[req.Table]
	refHash := s.tableHash[req.Table]
	s.mu.Unlock()
	if table == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown table %q", req.Table))
		return
	}
	seeker, err := s.newSeeker(r.Context(), req, table, refHash)
	if err != nil {
		// A cancelled or timed-out request abandoned its offline phase: that
		// is the server protecting itself, not a bad request, so report it
		// as 503 (the client may retry with a longer deadline).
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := newSessionID()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	create := store.Record{
		Op: store.OpCreate, Session: id, Table: req.Table, Query: req.Query,
		K: req.K, Alpha: req.Alpha, Strategy: req.Strategy, Seed: req.Seed,
		Workers: req.Workers,
	}
	// Sessions minted from a maintained live-table state share offline
	// state that advances with the table, so journal replay could not
	// rebuild them bit-identically: they are pinned resident (and
	// accounted shallowly — the shared banks belong to the maintainer).
	pinned := seeker.SharedOffline()
	// 64-bit id collisions are theoretical, but free to rule out.
	for !s.sessions.Put(id, create, s.buildFunc(table, refHash), seeker, pinned) {
		if id, err = newSessionID(); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		create.Session = id
	}
	s.journalAppend(create)
	writeJSON(w, http.StatusCreated, s.infoOf(id, req.Table, req.Query, seeker))
}

// writeOverload maps the session manager's admission refusal to 429 with
// a Retry-After hint; anything else is an internal error.
func writeOverload(w http.ResponseWriter, err error) {
	var ov *session.Overload
	if errors.As(err, &ov) {
		secs := int(ov.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

// newSeeker builds a session's seeker. Exact sessions on hosted live
// tables come warm from the table's maintained offline state — the
// maintainer has already advanced it to the current version, so creation
// skips the offline phase entirely. Sampled sessions (alpha < 1) and
// static tables take the cold path through the offline-result cache.
func (s *Server) newSeeker(ctx context.Context, req createSessionRequest, table *viewseeker.Table, refHash string) (*viewseeker.Seeker, error) {
	if req.Alpha <= 0 || req.Alpha >= 1 { // exact after normalisation
		s.mu.Lock()
		mt := s.maintainers[req.Table]
		s.mu.Unlock()
		if mt != nil {
			m, ok, err := mt.state(req.Query)
			if err != nil {
				return nil, err
			}
			if ok {
				return m.NewSessionWith(viewseeker.Options{
					K: req.K, Strategy: req.Strategy, Seed: req.Seed,
					Workers: req.Workers, RefineHook: s.refineHook,
				})
			}
		}
	}
	return viewseeker.NewCtx(ctx, table, req.Query, viewseeker.Options{
		K: req.K, Alpha: req.Alpha, Strategy: req.Strategy, Seed: req.Seed,
		Workers: req.Workers, Cache: s.cache, RefHash: refHash,
		RefineHook: s.refineHook,
	})
}

// buildFunc returns the rehydration closure for sessions created against
// (table, refHash): a cold rebuild through the offline-result cache, with
// the feedback replay handled by the session manager. The closure pins
// the exact table version the session was created on — live-table appends
// swap s.tables[name] to a new version, and replaying a session against a
// version it never saw would break the bit-identity contract.
func (s *Server) buildFunc(table *viewseeker.Table, refHash string) session.BuildFunc {
	return func(ctx context.Context, c store.Record) (*viewseeker.Seeker, error) {
		ctx = obs.NewContext(ctx, s.metrics, s.tracer)
		return viewseeker.NewCtx(ctx, table, c.Query, viewseeker.Options{
			K: c.K, Alpha: c.Alpha, Strategy: c.Strategy, Seed: c.Seed,
			Workers: c.Workers, Cache: s.cache, RefHash: refHash,
			RefineHook: s.refineHook,
		})
	}
}

func (s *Server) infoOf(id, table, query string, sk *viewseeker.Seeker) sessionInfo {
	return sessionInfo{
		ID: id, Table: table, Query: query,
		NumViews: sk.NumViews(), NumLabels: sk.NumLabels(),
		TargetRows: sk.Target().NumRows(), Cached: sk.CacheHit(),
		Degraded: s.Degraded(),
	}
}

// RestoreSessions indexes interactive sessions from journal records (see
// store.ReadJournal): every session still live at the end of the log is
// registered cold under its journalled id — the journal mirror and a
// rehydration closure, no offline phase — and rebuilt transparently on
// its first touch, through the offline-result cache, with its labelling
// history replayed through the deterministic feedback path. Boot is
// therefore O(records) regardless of how many sessions the journal holds;
// the indexed-but-cold count is logged and carried by the
// viewseeker_session_cold gauge. Sessions whose table is gone are skipped
// and reported; one broken record never blocks the rest of the boot. A
// session whose replay no longer succeeds surfaces its error on first
// touch instead of at boot.
func (s *Server) RestoreSessions(recs []store.Record) (restored int, err error) {
	var errs []error
	for _, lg := range store.Replay(recs) {
		c := lg.Create
		s.mu.Lock()
		table := s.tables[c.Table]
		refHash := s.tableHash[c.Table]
		s.mu.Unlock()
		if table == nil {
			errs = append(errs, fmt.Errorf("session %s: unknown table %q", c.Session, c.Table))
			continue
		}
		s.sessions.Index(c.Session, lg, s.buildFunc(table, refHash))
		restored++
	}
	if restored > 0 {
		s.log.Info("sessions indexed from journal; each rehydrates on first touch",
			"sessions", restored)
	}
	return restored, errors.Join(errs...)
}

// withSession resolves the {id} path segment and acquires the session for
// the duration of the handler — rehydrating it first when it was evicted
// or indexed cold from the journal. Acquisition failures map to the
// degraded-mode surface: 404 for unknown ids, 429 + Retry-After when the
// manager is shedding, 503 when the client's own context died mid-rebuild,
// 500 for a replay that no longer succeeds.
func (s *Server) withSession(h func(w http.ResponseWriter, r *http.Request, id string, hd *session.Handle)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		hd, err := s.sessions.Acquire(r.Context(), id)
		if err != nil {
			switch {
			case errors.Is(err, session.ErrNotFound):
				writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				writeError(w, http.StatusServiceUnavailable, err)
			default:
				writeOverload(w, err)
			}
			return
		}
		defer hd.Release()
		h(w, r, id, hd)
	}
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request, id string, hd *session.Handle) {
	c := hd.Create()
	writeJSON(w, http.StatusOK, s.infoOf(id, c.Table, c.Query, hd.Seeker()))
}

// viewJSON is one view in API responses.
type viewJSON struct {
	Index int     `json:"index"`
	Spec  string  `json:"spec"`
	Score float64 `json:"score"`
	SQL   string  `json:"sql,omitempty"`
}

// nextResponse is the GET next body: either the next view to label, or
// done=true once every view in the space has been labelled — a normal end
// state, not an error, so clients can tell exhaustion from real conflicts.
type nextResponse struct {
	Done bool `json:"done"`
	viewJSON
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request, id string, hd *session.Handle) {
	vs, err := hd.Seeker().NextViewsCtx(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if len(vs) == 0 {
		writeJSON(w, http.StatusOK, nextResponse{Done: true})
		return
	}
	v := vs[0]
	writeJSON(w, http.StatusOK, nextResponse{
		viewJSON: viewJSON{Index: v.Index, Spec: v.Spec.String(), Score: v.Score},
	})
}

// feedbackRequest is the POST feedback body.
type feedbackRequest struct {
	Index int     `json:"index"`
	Label float64 `json:"label"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request, id string, hd *session.Handle) {
	var req feedbackRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := hd.Seeker().FeedbackCtx(r.Context(), req.Index, req.Label); err != nil {
		// A context done before the label landed means nothing was recorded
		// (see core.Seeker.FeedbackCtx): 503, the client may retry. Once the
		// label lands, cancellation only curtails optional refinement and the
		// call succeeds.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Mirror the label into the manager's replay log (what makes a later
	// eviction transparent) and the durable journal.
	hd.RecordFeedback(req.Index, req.Label)
	s.journalAppend(store.Record{Op: store.OpFeedback, Session: id, View: req.Index, Label: req.Label})
	writeJSON(w, http.StatusOK, s.topOf(hd.Seeker()))
}

type topResponse struct {
	NumLabels int        `json:"numLabels"`
	Top       []viewJSON `json:"top"`
	// Degraded mirrors GET /healthz (see sessionInfo.Degraded): feedback
	// responses carry it so a client learns within one interaction that its
	// labels are no longer being journalled.
	Degraded bool `json:"degraded"`
}

func (s *Server) topOf(sk *viewseeker.Seeker) topResponse {
	// Top starts as an empty slice, not nil: before the first feedback the
	// client must still receive "top": [], never "top": null.
	resp := topResponse{NumLabels: sk.NumLabels(), Top: []viewJSON{}, Degraded: s.Degraded()}
	for _, v := range sk.TopK() {
		vj := viewJSON{Index: v.Index, Spec: v.Spec.String(), Score: v.Score}
		if query, err := sk.SQL(v.Index); err == nil {
			vj.SQL = query
		}
		resp.Top = append(resp.Top, vj)
	}
	return resp
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request, id string, hd *session.Handle) {
	writeJSON(w, http.StatusOK, s.topOf(hd.Seeker()))
}

func (s *Server) handleWeights(w http.ResponseWriter, r *http.Request, id string, hd *session.Handle) {
	weights, intercept := hd.Seeker().Weights()
	writeJSON(w, http.StatusOK, map[string]any{
		"features":  hd.Seeker().FeatureNames(),
		"weights":   weights,
		"intercept": intercept,
	})
}

func (s *Server) handleViewSVG(w http.ResponseWriter, r *http.Request, id string, hd *session.Handle) {
	idx, err := strconv.Atoi(r.PathValue("index"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid view index %q", r.PathValue("index")))
		return
	}
	p, err := hd.Seeker().Pair(idx)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, p.RenderSVG(640, 320))
}

func (s *Server) handleViewExplain(w http.ResponseWriter, r *http.Request, id string, hd *session.Handle) {
	idx, err := strconv.Atoi(r.PathValue("index"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid view index %q", r.PathValue("index")))
		return
	}
	text, err := hd.Seeker().Explain(idx, 3)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"explanation": text})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.Delete(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	s.journalAppend(store.Record{Op: store.OpDelete, Session: id})
	w.WriteHeader(http.StatusNoContent)
}

// EvictIdleSessions drops every idle, unpinned session's in-RAM state
// regardless of the budget; each rehydrates from its journal mirror on
// the next touch. The operator/bench hook behind the bit-identity
// harness in cmd/bench -serve.
func (s *Server) EvictIdleSessions() int { return s.sessions.EvictIdle() }
