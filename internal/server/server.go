// Package server exposes ViewSeeker over HTTP: a small JSON API plus an
// embedded single-page UI, turning the library into the interactive tool
// the paper describes — the analyst sees one view at a time as an SVG
// chart, rates it, and watches the top-k recommendations sharpen.
package server

import (
	"crypto/rand"
	_ "embed"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"viewseeker"
	"viewseeker/internal/store"
)

//go:embed index.html
var indexHTML []byte

// Options configures the server's durability layer. The zero value is a
// fully in-memory server with a session-shared offline-result cache.
type Options struct {
	// Cache is the offline-result store shared by every session; nil
	// builds a default in-memory cache (sharing the offline phase across
	// sessions is always safe — entries are content-addressed).
	Cache *store.Cache
	// Journal, when non-nil, receives every session lifecycle event
	// (create, feedback, delete) so sessions survive a restart via
	// RestoreSessions.
	Journal *store.Journal
	// MaxBodyBytes caps POST request bodies (default 1 MiB); oversized
	// requests get 413.
	MaxBodyBytes int64
}

// defaultMaxBodyBytes bounds POST bodies: session configs and feedback
// records are tiny, so 1 MiB is generous headroom for long SQL queries
// while keeping memory per request bounded.
const defaultMaxBodyBytes = 1 << 20

// Server hosts tables and interactive sessions. All methods are safe for
// concurrent use; individual sessions serialise their own operations.
type Server struct {
	mu       sync.Mutex
	tables   map[string]*viewseeker.Table
	sessions map[string]*session

	// tableHash caches each hosted table's content hash: tables are fixed
	// at construction, so warm session creation never rehashes the dataset.
	tableHash map[string]string

	cache   *store.Cache
	journal *store.Journal
	maxBody int64
}

type session struct {
	mu     sync.Mutex
	seeker *viewseeker.Seeker
	table  string
	query  string
}

// New builds a server hosting the given tables with default Options.
func New(tables ...*viewseeker.Table) *Server {
	return NewWithOptions(Options{}, tables...)
}

// NewWithOptions builds a server hosting the given tables.
func NewWithOptions(opts Options, tables ...*viewseeker.Table) *Server {
	s := &Server{
		tables:    make(map[string]*viewseeker.Table),
		sessions:  make(map[string]*session),
		tableHash: make(map[string]string),
		cache:     opts.Cache,
		journal:   opts.Journal,
		maxBody:   opts.MaxBodyBytes,
	}
	if s.cache == nil {
		s.cache = store.NewCache(0)
	}
	if s.maxBody <= 0 {
		s.maxBody = defaultMaxBodyBytes
	}
	for _, t := range tables {
		s.tables[t.Name] = t
		s.tableHash[t.Name] = viewseeker.HashTable(t)
	}
	return s
}

// newSessionID returns an unguessable random session id: session ids are
// the only credential guarding a session's state, so they must not be
// enumerable the way sequential ids are.
func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; crashing beats
		// silently handing out predictable ids.
		panic(fmt.Sprintf("server: reading session id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// journalAppend best-effort records one session event: journal write
// failures must not fail user requests, but they do cost restart
// durability, so they are logged.
func (s *Server) journalAppend(rec store.Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		log.Printf("server: journal append failed: %v", err)
	}
}

// decodeBody decodes a size-capped JSON POST body, distinguishing an
// oversized request (413) from a malformed one (400).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// Handler returns the HTTP handler serving the UI and the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(indexHTML)
	})
	mux.HandleFunc("GET /api/tables", s.handleTables)
	mux.HandleFunc("POST /api/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /api/sessions/{id}", s.withSession(s.handleSessionInfo))
	mux.HandleFunc("GET /api/sessions/{id}/next", s.withSession(s.handleNext))
	mux.HandleFunc("POST /api/sessions/{id}/feedback", s.withSession(s.handleFeedback))
	mux.HandleFunc("GET /api/sessions/{id}/top", s.withSession(s.handleTop))
	mux.HandleFunc("GET /api/sessions/{id}/weights", s.withSession(s.handleWeights))
	mux.HandleFunc("GET /api/sessions/{id}/views/{index}/svg", s.withSession(s.handleViewSVG))
	mux.HandleFunc("GET /api/sessions/{id}/views/{index}/explain", s.withSession(s.handleViewExplain))
	mux.HandleFunc("DELETE /api/sessions/{id}", s.handleDeleteSession)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// tableInfo describes one hosted table.
type tableInfo struct {
	Name       string   `json:"name"`
	Rows       int      `json:"rows"`
	Dimensions []string `json:"dimensions"`
	Measures   []string `json:"measures"`
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]tableInfo, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, tableInfo{
			Name: t.Name, Rows: t.NumRows(),
			Dimensions: t.Schema.Dimensions(), Measures: t.Schema.Measures(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// createSessionRequest is the POST /api/sessions body. Workers bounds the
// offline phase's parallelism for this session (0 = all CPUs); the offline
// feature pass runs outside the server lock, so concurrent session
// creations neither block each other nor the rest of the API.
type createSessionRequest struct {
	Table    string  `json:"table"`
	Query    string  `json:"query"`
	K        int     `json:"k"`
	Alpha    float64 `json:"alpha"`
	Strategy string  `json:"strategy"`
	Seed     int64   `json:"seed"`
	Workers  int     `json:"workers"`
}

type sessionInfo struct {
	ID         string `json:"id"`
	Table      string `json:"table"`
	Query      string `json:"query"`
	NumViews   int    `json:"numViews"`
	NumLabels  int    `json:"numLabels"`
	TargetRows int    `json:"targetRows"`
	// Cached reports whether the session's offline phase was served from
	// the shared offline-result cache instead of being computed.
	Cached bool `json:"cached"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	s.mu.Lock()
	table := s.tables[req.Table]
	refHash := s.tableHash[req.Table]
	s.mu.Unlock()
	if table == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown table %q", req.Table))
		return
	}
	seeker, err := viewseeker.New(table, req.Query, viewseeker.Options{
		K: req.K, Alpha: req.Alpha, Strategy: req.Strategy, Seed: req.Seed,
		Workers: req.Workers, Cache: s.cache, RefHash: refHash,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	id := newSessionID()
	for s.sessions[id] != nil { // 64-bit collisions are theoretical, but free to rule out
		id = newSessionID()
	}
	sess := &session{seeker: seeker, table: req.Table, query: req.Query}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.journalAppend(store.Record{
		Op: store.OpCreate, Session: id, Table: req.Table, Query: req.Query,
		K: req.K, Alpha: req.Alpha, Strategy: req.Strategy, Seed: req.Seed,
		Workers: req.Workers,
	})
	writeJSON(w, http.StatusCreated, s.infoOf(id, sess))
}

func (s *Server) infoOf(id string, sess *session) sessionInfo {
	return sessionInfo{
		ID: id, Table: sess.table, Query: sess.query,
		NumViews: sess.seeker.NumViews(), NumLabels: sess.seeker.NumLabels(),
		TargetRows: sess.seeker.Target().NumRows(), Cached: sess.seeker.CacheHit(),
	}
}

// RestoreSessions rebuilds interactive sessions from journal records (see
// store.ReadJournal): every session still live at the end of the log is
// recreated under its journalled id — through the offline-result cache, so
// repeated (table, query) pairs pay the offline phase once — and its
// labelling history is replayed through the deterministic feedback path,
// reconstructing estimator, top-k and weights exactly. Sessions whose
// table is gone or whose replay fails are skipped and reported; one broken
// record never blocks the rest of the boot.
func (s *Server) RestoreSessions(recs []store.Record) (restored int, err error) {
	var errs []error
	for _, lg := range store.Replay(recs) {
		c := lg.Create
		s.mu.Lock()
		table := s.tables[c.Table]
		refHash := s.tableHash[c.Table]
		s.mu.Unlock()
		if table == nil {
			errs = append(errs, fmt.Errorf("session %s: unknown table %q", c.Session, c.Table))
			continue
		}
		seeker, serr := viewseeker.New(table, c.Query, viewseeker.Options{
			K: c.K, Alpha: c.Alpha, Strategy: c.Strategy, Seed: c.Seed,
			Workers: c.Workers, Cache: s.cache, RefHash: refHash,
		})
		if serr != nil {
			errs = append(errs, fmt.Errorf("session %s: %w", c.Session, serr))
			continue
		}
		replayOK := true
		for i, fb := range lg.Feedback {
			if ferr := seeker.Feedback(fb.View, fb.Label); ferr != nil {
				errs = append(errs, fmt.Errorf("session %s: replaying label %d: %w", c.Session, i, ferr))
				replayOK = false
				break
			}
		}
		if !replayOK {
			continue
		}
		s.mu.Lock()
		s.sessions[c.Session] = &session{seeker: seeker, table: c.Table, query: c.Query}
		s.mu.Unlock()
		restored++
	}
	return restored, errors.Join(errs...)
}

// withSession resolves the {id} path segment and locks the session for
// the duration of the handler.
func (s *Server) withSession(h func(w http.ResponseWriter, r *http.Request, id string, sess *session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s.mu.Lock()
		sess := s.sessions[id]
		s.mu.Unlock()
		if sess == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
			return
		}
		sess.mu.Lock()
		defer sess.mu.Unlock()
		h(w, r, id, sess)
	}
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	writeJSON(w, http.StatusOK, s.infoOf(id, sess))
}

// viewJSON is one view in API responses.
type viewJSON struct {
	Index int     `json:"index"`
	Spec  string  `json:"spec"`
	Score float64 `json:"score"`
	SQL   string  `json:"sql,omitempty"`
}

// nextResponse is the GET next body: either the next view to label, or
// done=true once every view in the space has been labelled — a normal end
// state, not an error, so clients can tell exhaustion from real conflicts.
type nextResponse struct {
	Done bool `json:"done"`
	viewJSON
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	vs, err := sess.seeker.NextViews()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if len(vs) == 0 {
		writeJSON(w, http.StatusOK, nextResponse{Done: true})
		return
	}
	v := vs[0]
	writeJSON(w, http.StatusOK, nextResponse{
		viewJSON: viewJSON{Index: v.Index, Spec: v.Spec.String(), Score: v.Score},
	})
}

// feedbackRequest is the POST feedback body.
type feedbackRequest struct {
	Index int     `json:"index"`
	Label float64 `json:"label"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	var req feedbackRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := sess.seeker.Feedback(req.Index, req.Label); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.journalAppend(store.Record{Op: store.OpFeedback, Session: id, View: req.Index, Label: req.Label})
	writeJSON(w, http.StatusOK, s.topOf(sess))
}

type topResponse struct {
	NumLabels int        `json:"numLabels"`
	Top       []viewJSON `json:"top"`
}

func (s *Server) topOf(sess *session) topResponse {
	// Top starts as an empty slice, not nil: before the first feedback the
	// client must still receive "top": [], never "top": null.
	resp := topResponse{NumLabels: sess.seeker.NumLabels(), Top: []viewJSON{}}
	for _, v := range sess.seeker.TopK() {
		vj := viewJSON{Index: v.Index, Spec: v.Spec.String(), Score: v.Score}
		if query, err := sess.seeker.SQL(v.Index); err == nil {
			vj.SQL = query
		}
		resp.Top = append(resp.Top, vj)
	}
	return resp
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	writeJSON(w, http.StatusOK, s.topOf(sess))
}

func (s *Server) handleWeights(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	weights, intercept := sess.seeker.Weights()
	writeJSON(w, http.StatusOK, map[string]any{
		"features":  sess.seeker.FeatureNames(),
		"weights":   weights,
		"intercept": intercept,
	})
}

func (s *Server) handleViewSVG(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	idx, err := strconv.Atoi(r.PathValue("index"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid view index %q", r.PathValue("index")))
		return
	}
	p, err := sess.seeker.Pair(idx)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, p.RenderSVG(640, 320))
}

func (s *Server) handleViewExplain(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	idx, err := strconv.Atoi(r.PathValue("index"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid view index %q", r.PathValue("index")))
		return
	}
	text, err := sess.seeker.Explain(idx, 3)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"explanation": text})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	s.journalAppend(store.Record{Op: store.OpDelete, Session: id})
	w.WriteHeader(http.StatusNoContent)
}
