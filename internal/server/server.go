package server

import (
	"bytes"
	"context"
	"crypto/rand"
	_ "embed"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"viewseeker"
	"viewseeker/internal/obs"
	"viewseeker/internal/store"
)

//go:embed index.html
var indexHTML []byte

// Options configures the server's durability layer. The zero value is a
// fully in-memory server with a session-shared offline-result cache.
type Options struct {
	// Cache is the offline-result store shared by every session; nil
	// builds a default in-memory cache (sharing the offline phase across
	// sessions is always safe — entries are content-addressed).
	Cache *store.Cache
	// Journal, when non-nil, receives every session lifecycle event
	// (create, feedback, delete) so sessions survive a restart via
	// RestoreSessions.
	Journal *store.Journal
	// MaxBodyBytes caps POST request bodies (default 1 MiB); oversized
	// requests get 413.
	MaxBodyBytes int64
	// RefineHook, when non-nil, is passed to every session's incremental
	// refiner: it is called once per feature row refreshed during feedback
	// handling (see viewseeker.Options.RefineHook). Tests use it to observe
	// that a cancelled request stops refinement promptly.
	RefineHook func(viewIdx int)
	// Metrics is the observability registry exported at GET /metricz; nil
	// builds a fresh one — the server is always instrumented, because its
	// request path is never hot enough for the registry to matter. The cache
	// and journal are instrumented against it, so sharing a cache across
	// servers with distinct registries leaves the handles pointing at
	// whichever server instrumented it last.
	Metrics *obs.Registry
	// Tracer receives the server's phase spans (offline, select, feedback);
	// nil builds a default 64-entry ring. Recent traces are exported at
	// GET /debug/vars.
	Tracer *obs.Tracer
	// Logger receives structured request and error logs; nil uses
	// slog.Default(). Every line carries the request id the server also
	// returns in the X-Request-Id response header.
	Logger *slog.Logger
}

// defaultMaxBodyBytes bounds POST bodies: session configs and feedback
// records are tiny, so 1 MiB is generous headroom for long SQL queries
// while keeping memory per request bounded.
const defaultMaxBodyBytes = 1 << 20

// Server hosts tables and interactive sessions. All methods are safe for
// concurrent use; individual sessions serialise their own operations.
type Server struct {
	mu       sync.Mutex
	tables   map[string]*viewseeker.Table
	live     map[string]*viewseeker.LiveTable
	sessions map[string]*session

	// tableHash caches each hosted table's content hash: tables are fixed
	// at construction, so warm session creation never rehashes the dataset.
	tableHash map[string]string

	cache      *store.Cache
	journal    *store.Journal
	maxBody    int64
	refineHook func(viewIdx int)

	// maintainers holds one background maintainer per hosted live table
	// (see maintain.go); maintSem bounds how many run a pass concurrently.
	// closed marks Close having run: maintainers are stopped and live
	// tables hosted afterwards get none.
	maintainers map[string]*maintainer
	maintSem    chan struct{}
	closed      bool

	metrics       *obs.Registry
	tracer        *obs.Tracer
	log           *slog.Logger
	inflight      *obs.Gauge
	panics        *obs.Counter
	maintPanics   *obs.Counter
	driftRebuilds *obs.Counter
}

type session struct {
	mu     sync.Mutex
	seeker *viewseeker.Seeker
	table  string
	query  string
}

// New builds a server hosting the given tables with default Options.
func New(tables ...*viewseeker.Table) *Server {
	return NewWithOptions(Options{}, tables...)
}

// NewWithOptions builds a server hosting the given tables.
func NewWithOptions(opts Options, tables ...*viewseeker.Table) *Server {
	s := &Server{
		tables:      make(map[string]*viewseeker.Table),
		live:        make(map[string]*viewseeker.LiveTable),
		sessions:    make(map[string]*session),
		tableHash:   make(map[string]string),
		maintainers: make(map[string]*maintainer),
		maintSem:    make(chan struct{}, maintainerConcurrency),
		cache:       opts.Cache,
		journal:     opts.Journal,
		maxBody:     opts.MaxBodyBytes,
		refineHook:  opts.RefineHook,
		metrics:     opts.Metrics,
		tracer:      opts.Tracer,
		log:         opts.Logger,
	}
	if s.cache == nil {
		s.cache = store.NewCache(0)
	}
	if s.maxBody <= 0 {
		s.maxBody = defaultMaxBodyBytes
	}
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	if s.tracer == nil {
		s.tracer = obs.NewTracer(0)
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	s.inflight = s.metrics.Gauge("viewseeker_server_inflight_requests")
	s.panics = s.metrics.Counter("viewseeker_server_panics_total")
	s.maintPanics = s.metrics.Counter("viewseeker_server_maintainer_panics_total")
	s.driftRebuilds = s.metrics.Counter("viewseeker_live_drift_rebuilds_total")
	s.cache.Instrument(s.metrics)
	if s.journal != nil {
		s.journal.Instrument(s.metrics)
	}
	for _, t := range tables {
		s.tables[t.Name] = t
		s.tableHash[t.Name] = viewseeker.HashTable(t)
	}
	return s
}

// Metrics exposes the server's observability registry — the one backing
// GET /metricz — so embedding commands (cmd/serve, cmd/bench) can read the
// same counters the endpoint exports.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Tracer exposes the server's span tracer (cmd/serve points its sink at
// the -trace-log file).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// newSessionID returns an unguessable random session id: session ids are
// the only credential guarding a session's state, so they must not be
// enumerable the way sequential ids are. An entropy failure is returned as
// an error — the handler surfaces it as a 500 rather than crashing the
// process or handing out a predictable id; the panic-recovery middleware
// is the backstop for bugs, not part of this contract.
func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: reading session id entropy: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// journalAppend best-effort records one session event: journal write
// failures must not fail user requests, but they do cost restart
// durability, so they are logged.
func (s *Server) journalAppend(rec store.Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		s.log.Error("journal append failed", "op", rec.Op, "session", rec.Session, "err", err)
	}
}

// decodeBody decodes a size-capped JSON POST body, distinguishing an
// oversized request (413) from a malformed one (400).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// Handler returns the HTTP handler serving the UI and the API. Every route
// is registered through the instrumentation middleware (request ids,
// per-route latency and status metrics, structured access logs) and the
// whole mux is wrapped in panic recovery.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	handle("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(indexHTML)
	})
	handle("GET /healthz", s.handleHealthz)
	handle("GET /metricz", s.handleMetricz)
	handle("GET /debug/vars", s.handleVars)
	handle("GET /api/tables", s.handleTables)
	handle("POST /api/tables/{name}/append", s.handleAppend)
	handle("POST /api/tables/{name}/checkpoint", s.handleCheckpoint)
	handle("POST /api/sessions", s.handleCreateSession)
	handle("GET /api/sessions/{id}", s.withSession(s.handleSessionInfo))
	handle("GET /api/sessions/{id}/next", s.withSession(s.handleNext))
	handle("POST /api/sessions/{id}/feedback", s.withSession(s.handleFeedback))
	handle("GET /api/sessions/{id}/top", s.withSession(s.handleTop))
	handle("GET /api/sessions/{id}/weights", s.withSession(s.handleWeights))
	handle("GET /api/sessions/{id}/views/{index}/svg", s.withSession(s.handleViewSVG))
	handle("GET /api/sessions/{id}/views/{index}/explain", s.withSession(s.handleViewExplain))
	handle("DELETE /api/sessions/{id}", s.handleDeleteSession)
	return s.recoverPanics(mux)
}

// requestIDKey carries the per-request id through the request context.
type requestIDKey struct{}

// RequestIDFrom returns the request id the instrumentation middleware
// assigned ("" outside a request context). Handlers and hooks use it to
// correlate their own logs with the server's access lines.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// statusWriter records the status code a handler writes (200 when it
// writes a body without an explicit WriteHeader).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps one route's handler with the server's observability:
// it assigns a request id (honouring an incoming X-Request-Id, so ids
// thread through proxies), threads the registry and tracer into the
// request context — which is what lights up the offline, store and
// active-loop metrics on the paths below the handler — and records the
// route-labelled latency histogram, status-labelled request counter,
// in-flight gauge, and a structured access log line.
//
// The route label is the mux pattern, resolved once at registration: the
// histogram handle costs nothing per request, and patterns (not raw
// paths) keep the label cardinality fixed.
func (s *Server) instrument(route string, next http.Handler) http.Handler {
	hist := s.metrics.Histogram(fmt.Sprintf("viewseeker_server_request_seconds{route=%q}", route), obs.DurationBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id, _ = newSessionID() // entropy failure leaves id empty; never fatal
		}
		w.Header().Set("X-Request-Id", id)
		ctx := obs.NewContext(r.Context(), s.metrics, s.tracer)
		ctx = context.WithValue(ctx, requestIDKey{}, id)
		sw := &statusWriter{ResponseWriter: w}
		s.inflight.Inc()
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		s.inflight.Dec()
		hist.ObserveDuration(elapsed)
		s.metrics.Counter(fmt.Sprintf("viewseeker_server_requests_total{route=%q,code=\"%d\"}", route, sw.status())).Inc()
		s.log.Info("request",
			"id", id, "method", r.Method, "path", r.URL.Path,
			"route", route, "status", sw.status(), "duration", elapsed)
	})
}

// recoverPanics converts a handler panic into a logged stack plus a 500,
// instead of killing the whole process (and with it every other session).
// http.ErrAbortHandler is re-raised: it is net/http's sanctioned way to
// abort a response and must keep its meaning.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.panics.Inc()
			s.log.Error("panic serving request",
				"id", RequestIDFrom(r.Context()), "method", r.Method, "path", r.URL.Path,
				"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
			// Best effort: if the handler already wrote a status line this
			// header is a no-op, but the connection still closes with the
			// truncated body rather than the process dying.
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
		}()
		next.ServeHTTP(w, r)
	})
}

// handleMetricz serves the registry in Prometheus text exposition format.
func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

// handleVars serves an expvar-style JSON dump of every metric plus the
// tracer's recent root spans — the debugging view of the same data
// /metricz exports for scraping.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	var metrics bytes.Buffer
	_ = s.metrics.WriteJSON(&metrics)
	traces := s.tracer.Recent()
	if traces == nil {
		traces = []*obs.SpanData{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"metrics": json.RawMessage(metrics.Bytes()),
		"traces":  traces,
	})
}

// healthComponent is one durability component's state in GET /healthz.
type healthComponent struct {
	// Enabled reports whether the component is configured at all (a
	// journal is optional; the cache may be memory-only).
	Enabled bool `json:"enabled"`
	// Degraded reports whether the component's last disk write exhausted
	// its retries: the server keeps serving, but without durability.
	Degraded bool `json:"degraded"`
}

// healthResponse is the GET /healthz body. Status is "ok" or "degraded" —
// degraded means the server answers every request correctly but some
// state written now would not survive a restart.
type healthResponse struct {
	Status   string          `json:"status"`
	Journal  healthComponent `json:"journal"`
	Cache    healthComponent `json:"cache"`
	Sessions int             `json:"sessions"`
	// Live lists each hosted live table's WAL state (omitted when none are
	// hosted); the fsync latency histogram and recovery counters live on
	// /metricz under the viewseeker_wal_* series.
	Live []liveStatus `json:"live,omitempty"`
}

// Degraded reports whether any configured durability component is
// currently failing its disk writes.
func (s *Server) Degraded() bool {
	if s.journal != nil && s.journal.Degraded() {
		return true
	}
	return s.cache.Degraded()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sessions := len(s.sessions)
	s.mu.Unlock()
	resp := healthResponse{
		Status:   "ok",
		Journal:  healthComponent{Enabled: s.journal != nil},
		Cache:    healthComponent{Enabled: s.cache.DiskBacked()},
		Sessions: sessions,
		Live:     s.liveStatuses(),
	}
	if s.journal != nil {
		resp.Journal.Degraded = s.journal.Degraded()
	}
	resp.Cache.Degraded = s.cache.Degraded()
	if resp.Journal.Degraded || resp.Cache.Degraded {
		resp.Status = "degraded"
	}
	// Degraded is still 200: the service is serving; load balancers that
	// should drain on lost durability can key off the body.
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// tableInfo describes one hosted table.
type tableInfo struct {
	Name       string   `json:"name"`
	Rows       int      `json:"rows"`
	Dimensions []string `json:"dimensions"`
	Measures   []string `json:"measures"`
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]tableInfo, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, tableInfo{
			Name: t.Name, Rows: t.NumRows(),
			Dimensions: t.Schema.Dimensions(), Measures: t.Schema.Measures(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// createSessionRequest is the POST /api/sessions body. Workers bounds the
// offline phase's parallelism for this session (0 = all CPUs); the offline
// feature pass runs outside the server lock, so concurrent session
// creations neither block each other nor the rest of the API.
type createSessionRequest struct {
	Table    string  `json:"table"`
	Query    string  `json:"query"`
	K        int     `json:"k"`
	Alpha    float64 `json:"alpha"`
	Strategy string  `json:"strategy"`
	Seed     int64   `json:"seed"`
	Workers  int     `json:"workers"`
}

type sessionInfo struct {
	ID         string `json:"id"`
	Table      string `json:"table"`
	Query      string `json:"query"`
	NumViews   int    `json:"numViews"`
	NumLabels  int    `json:"numLabels"`
	TargetRows int    `json:"targetRows"`
	// Cached reports whether the session's offline phase was served from
	// the shared offline-result cache instead of being computed.
	Cached bool `json:"cached"`
	// Degraded mirrors GET /healthz: true while any durability component
	// (journal, cache snapshots) is failing its disk writes, so interactive
	// clients learn about lost durability without polling the health
	// endpoint.
	Degraded bool `json:"degraded"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	s.mu.Lock()
	table := s.tables[req.Table]
	refHash := s.tableHash[req.Table]
	s.mu.Unlock()
	if table == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown table %q", req.Table))
		return
	}
	seeker, err := s.newSeeker(r.Context(), req, table, refHash)
	if err != nil {
		// A cancelled or timed-out request abandoned its offline phase: that
		// is the server protecting itself, not a bad request, so report it
		// as 503 (the client may retry with a longer deadline).
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := newSessionID()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.Lock()
	for s.sessions[id] != nil { // 64-bit collisions are theoretical, but free to rule out
		s.mu.Unlock()
		if id, err = newSessionID(); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		s.mu.Lock()
	}
	sess := &session{seeker: seeker, table: req.Table, query: req.Query}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.journalAppend(store.Record{
		Op: store.OpCreate, Session: id, Table: req.Table, Query: req.Query,
		K: req.K, Alpha: req.Alpha, Strategy: req.Strategy, Seed: req.Seed,
		Workers: req.Workers,
	})
	writeJSON(w, http.StatusCreated, s.infoOf(id, sess))
}

// newSeeker builds a session's seeker. Exact sessions on hosted live
// tables come warm from the table's maintained offline state — the
// maintainer has already advanced it to the current version, so creation
// skips the offline phase entirely. Sampled sessions (alpha < 1) and
// static tables take the cold path through the offline-result cache.
func (s *Server) newSeeker(ctx context.Context, req createSessionRequest, table *viewseeker.Table, refHash string) (*viewseeker.Seeker, error) {
	if req.Alpha <= 0 || req.Alpha >= 1 { // exact after normalisation
		s.mu.Lock()
		mt := s.maintainers[req.Table]
		s.mu.Unlock()
		if mt != nil {
			m, ok, err := mt.state(req.Query)
			if err != nil {
				return nil, err
			}
			if ok {
				return m.NewSessionWith(viewseeker.Options{
					K: req.K, Strategy: req.Strategy, Seed: req.Seed,
					Workers: req.Workers, RefineHook: s.refineHook,
				})
			}
		}
	}
	return viewseeker.NewCtx(ctx, table, req.Query, viewseeker.Options{
		K: req.K, Alpha: req.Alpha, Strategy: req.Strategy, Seed: req.Seed,
		Workers: req.Workers, Cache: s.cache, RefHash: refHash,
		RefineHook: s.refineHook,
	})
}

func (s *Server) infoOf(id string, sess *session) sessionInfo {
	return sessionInfo{
		ID: id, Table: sess.table, Query: sess.query,
		NumViews: sess.seeker.NumViews(), NumLabels: sess.seeker.NumLabels(),
		TargetRows: sess.seeker.Target().NumRows(), Cached: sess.seeker.CacheHit(),
		Degraded: s.Degraded(),
	}
}

// RestoreSessions rebuilds interactive sessions from journal records (see
// store.ReadJournal): every session still live at the end of the log is
// recreated under its journalled id — through the offline-result cache, so
// repeated (table, query) pairs pay the offline phase once — and its
// labelling history is replayed through the deterministic feedback path,
// reconstructing estimator, top-k and weights exactly. Sessions whose
// table is gone or whose replay fails are skipped and reported; one broken
// record never blocks the rest of the boot.
func (s *Server) RestoreSessions(recs []store.Record) (restored int, err error) {
	var errs []error
	for _, lg := range store.Replay(recs) {
		c := lg.Create
		s.mu.Lock()
		table := s.tables[c.Table]
		refHash := s.tableHash[c.Table]
		s.mu.Unlock()
		if table == nil {
			errs = append(errs, fmt.Errorf("session %s: unknown table %q", c.Session, c.Table))
			continue
		}
		restoreCtx := obs.NewContext(context.Background(), s.metrics, s.tracer)
		seeker, serr := viewseeker.NewCtx(restoreCtx, table, c.Query, viewseeker.Options{
			K: c.K, Alpha: c.Alpha, Strategy: c.Strategy, Seed: c.Seed,
			Workers: c.Workers, Cache: s.cache, RefHash: refHash,
		})
		if serr != nil {
			errs = append(errs, fmt.Errorf("session %s: %w", c.Session, serr))
			continue
		}
		replayOK := true
		for i, fb := range lg.Feedback {
			if ferr := seeker.Feedback(fb.View, fb.Label); ferr != nil {
				errs = append(errs, fmt.Errorf("session %s: replaying label %d: %w", c.Session, i, ferr))
				replayOK = false
				break
			}
		}
		if !replayOK {
			continue
		}
		s.mu.Lock()
		s.sessions[c.Session] = &session{seeker: seeker, table: c.Table, query: c.Query}
		s.mu.Unlock()
		restored++
	}
	return restored, errors.Join(errs...)
}

// withSession resolves the {id} path segment and locks the session for
// the duration of the handler.
func (s *Server) withSession(h func(w http.ResponseWriter, r *http.Request, id string, sess *session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s.mu.Lock()
		sess := s.sessions[id]
		s.mu.Unlock()
		if sess == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
			return
		}
		sess.mu.Lock()
		defer sess.mu.Unlock()
		h(w, r, id, sess)
	}
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	writeJSON(w, http.StatusOK, s.infoOf(id, sess))
}

// viewJSON is one view in API responses.
type viewJSON struct {
	Index int     `json:"index"`
	Spec  string  `json:"spec"`
	Score float64 `json:"score"`
	SQL   string  `json:"sql,omitempty"`
}

// nextResponse is the GET next body: either the next view to label, or
// done=true once every view in the space has been labelled — a normal end
// state, not an error, so clients can tell exhaustion from real conflicts.
type nextResponse struct {
	Done bool `json:"done"`
	viewJSON
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	vs, err := sess.seeker.NextViewsCtx(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if len(vs) == 0 {
		writeJSON(w, http.StatusOK, nextResponse{Done: true})
		return
	}
	v := vs[0]
	writeJSON(w, http.StatusOK, nextResponse{
		viewJSON: viewJSON{Index: v.Index, Spec: v.Spec.String(), Score: v.Score},
	})
}

// feedbackRequest is the POST feedback body.
type feedbackRequest struct {
	Index int     `json:"index"`
	Label float64 `json:"label"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	var req feedbackRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := sess.seeker.FeedbackCtx(r.Context(), req.Index, req.Label); err != nil {
		// A context done before the label landed means nothing was recorded
		// (see core.Seeker.FeedbackCtx): 503, the client may retry. Once the
		// label lands, cancellation only curtails optional refinement and the
		// call succeeds.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.journalAppend(store.Record{Op: store.OpFeedback, Session: id, View: req.Index, Label: req.Label})
	writeJSON(w, http.StatusOK, s.topOf(sess))
}

type topResponse struct {
	NumLabels int        `json:"numLabels"`
	Top       []viewJSON `json:"top"`
	// Degraded mirrors GET /healthz (see sessionInfo.Degraded): feedback
	// responses carry it so a client learns within one interaction that its
	// labels are no longer being journalled.
	Degraded bool `json:"degraded"`
}

func (s *Server) topOf(sess *session) topResponse {
	// Top starts as an empty slice, not nil: before the first feedback the
	// client must still receive "top": [], never "top": null.
	resp := topResponse{NumLabels: sess.seeker.NumLabels(), Top: []viewJSON{}, Degraded: s.Degraded()}
	for _, v := range sess.seeker.TopK() {
		vj := viewJSON{Index: v.Index, Spec: v.Spec.String(), Score: v.Score}
		if query, err := sess.seeker.SQL(v.Index); err == nil {
			vj.SQL = query
		}
		resp.Top = append(resp.Top, vj)
	}
	return resp
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	writeJSON(w, http.StatusOK, s.topOf(sess))
}

func (s *Server) handleWeights(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	weights, intercept := sess.seeker.Weights()
	writeJSON(w, http.StatusOK, map[string]any{
		"features":  sess.seeker.FeatureNames(),
		"weights":   weights,
		"intercept": intercept,
	})
}

func (s *Server) handleViewSVG(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	idx, err := strconv.Atoi(r.PathValue("index"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid view index %q", r.PathValue("index")))
		return
	}
	p, err := sess.seeker.Pair(idx)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, p.RenderSVG(640, 320))
}

func (s *Server) handleViewExplain(w http.ResponseWriter, r *http.Request, id string, sess *session) {
	idx, err := strconv.Atoi(r.PathValue("index"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid view index %q", r.PathValue("index")))
		return
	}
	text, err := sess.seeker.Explain(idx, 3)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"explanation": text})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	s.journalAppend(store.Record{Op: store.OpDelete, Session: id})
	w.WriteHeader(http.StatusNoContent)
}
