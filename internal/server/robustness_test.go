package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"viewseeker/internal/dataset"
	"viewseeker/internal/faultfs"
	"viewseeker/internal/retry"
	"viewseeker/internal/store"
)

// serveJSON drives a handler directly (no network) so the test controls
// r.Context() exactly: cancelling ctx is the deterministic stand-in for a
// client disconnect or an http.TimeoutHandler deadline.
func serveJSON(t *testing.T, h http.Handler, ctx context.Context, method, path string, body any, out any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.NewDecoder(rec.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec
}

// TestCancelFeedbackStopsRefinerPromptly pins the tentpole's end-to-end
// promise: cancelling a /feedback request's context halts the in-flight
// incremental refinement within one feature row, while the label itself
// still lands (refinement is optional latency-hiding work) and the session
// stays fully usable.
func TestCancelFeedbackStopsRefinerPromptly(t *testing.T) {
	var rows atomic.Int32
	var armed atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := NewWithOptions(Options{RefineHook: func(int) {
		if armed.Load() && rows.Add(1) == 1 {
			cancel()
		}
	}}, diabTable())
	h := srv.Handler()

	var info sessionInfo
	rec := serveJSON(t, h, context.Background(), "POST", "/api/sessions",
		map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 3, "alpha": 0.25, "workers": 1}, &info)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body.String())
	}

	armed.Store(true)
	var top topResponse
	rec = serveJSON(t, h, ctx, "POST", "/api/sessions/"+info.ID+"/feedback",
		map[string]any{"index": 0, "label": 1.0}, &top)
	armed.Store(false)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancelled feedback = %d, want 200 (label must land): %s", rec.Code, rec.Body.String())
	}
	if top.NumLabels != 1 {
		t.Fatalf("numLabels = %d after cancelled feedback, want 1", top.NumLabels)
	}
	// Workers=1 refinement checks the context before every row: the row
	// whose hook cancelled is the last one refreshed.
	if got := rows.Load(); got != 1 {
		t.Errorf("refiner refreshed %d rows after cancellation, want 1", got)
	}

	// The session survives: the next feedback under a live context refines
	// freely and the API keeps answering.
	rec = serveJSON(t, h, context.Background(), "POST", "/api/sessions/"+info.ID+"/feedback",
		map[string]any{"index": 1, "label": 0.0}, &top)
	if rec.Code != http.StatusOK || top.NumLabels != 2 {
		t.Fatalf("follow-up feedback = %d, labels = %d: %s", rec.Code, top.NumLabels, rec.Body.String())
	}
	rec = serveJSON(t, h, context.Background(), "GET", "/api/sessions/"+info.ID+"/top", nil, &top)
	if rec.Code != http.StatusOK {
		t.Fatalf("top after cancel = %d", rec.Code)
	}
}

// TestCancelPreCancelledRequestsGet503 pins the other half of the feedback
// contract: a context already dead on entry records nothing and maps to
// 503, and session creation under a dead context never registers a session.
func TestCancelPreCancelledRequestsGet503(t *testing.T) {
	srv := New(diabTable())
	h := srv.Handler()
	dead, cancel := context.WithCancel(context.Background())
	cancel()

	rec := serveJSON(t, h, dead, "POST", "/api/sessions",
		map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 3}, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-cancelled create = %d, want 503: %s", rec.Code, rec.Body.String())
	}

	var info sessionInfo
	rec = serveJSON(t, h, context.Background(), "POST", "/api/sessions",
		map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 3, "alpha": 0.25}, &info)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d", rec.Code)
	}
	rec = serveJSON(t, h, dead, "POST", "/api/sessions/"+info.ID+"/feedback",
		map[string]any{"index": 0, "label": 1.0}, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-cancelled feedback = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	var top topResponse
	serveJSON(t, h, context.Background(), "GET", "/api/sessions/"+info.ID+"/top", nil, &top)
	if top.NumLabels != 0 {
		t.Fatalf("pre-cancelled feedback recorded a label: numLabels = %d", top.NumLabels)
	}
}

// TestDegradeJournalENOSPCKeepsServing drives the full degraded-mode
// journey: with the journal's disk persistently out of space, every user
// request still succeeds, responses and /healthz report degraded, and the
// flag clears by itself once the fault lifts.
func TestDegradeJournalENOSPCKeepsServing(t *testing.T) {
	faulty := faultfs.NewFaulty(nil)
	journal, err := store.OpenJournalFS(faulty, filepath.Join(t.TempDir(), "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	journal.SetRetryPolicy(retry.Policy{Attempts: 3, Base: time.Millisecond, Max: 4 * time.Millisecond, Sleep: func(time.Duration) {}})
	srv := NewWithOptions(Options{Journal: journal}, diabTable())
	h := srv.Handler()

	faulty.FailWrites(syscall.ENOSPC)

	var info sessionInfo
	rec := serveJSON(t, h, context.Background(), "POST", "/api/sessions",
		map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 3}, &info)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create under ENOSPC = %d, want 201: %s", rec.Code, rec.Body.String())
	}
	if !info.Degraded {
		t.Error("create response does not report degraded=true")
	}

	var top topResponse
	rec = serveJSON(t, h, context.Background(), "POST", "/api/sessions/"+info.ID+"/feedback",
		map[string]any{"index": 0, "label": 1.0}, &top)
	if rec.Code != http.StatusOK {
		t.Fatalf("feedback under ENOSPC = %d, want 200: %s", rec.Code, rec.Body.String())
	}
	if !top.Degraded || top.NumLabels != 1 {
		t.Fatalf("feedback response = %+v, want degraded=true numLabels=1", top)
	}

	var health healthResponse
	rec = serveJSON(t, h, context.Background(), "GET", "/healthz", nil, &health)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d (degraded must stay 200)", rec.Code)
	}
	if health.Status != "degraded" || !health.Journal.Degraded || !health.Journal.Enabled {
		t.Fatalf("healthz = %+v, want degraded journal", health)
	}

	// The fault lifts: the next successful append clears the flag without
	// any operator intervention.
	faulty.Clear()
	rec = serveJSON(t, h, context.Background(), "POST", "/api/sessions/"+info.ID+"/feedback",
		map[string]any{"index": 1, "label": 0.0}, &top)
	if rec.Code != http.StatusOK || top.Degraded {
		t.Fatalf("feedback after recovery = %d degraded=%v, want 200 and false", rec.Code, top.Degraded)
	}
	serveJSON(t, h, context.Background(), "GET", "/healthz", nil, &health)
	if health.Status != "ok" || health.Journal.Degraded {
		t.Fatalf("healthz after recovery = %+v, want ok", health)
	}
}

// TestFaultPanickingHandlerGets500 pins the recovery middleware: a handler
// bug takes down one request with a 500, not the process.
func TestFaultPanickingHandlerGets500(t *testing.T) {
	h := New().recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	// http.ErrAbortHandler must keep its meaning and propagate.
	aborts := New().recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Error("ErrAbortHandler was swallowed by the recovery middleware")
		}
	}()
	aborts.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/abort", nil))
	t.Error("unreachable: ErrAbortHandler should have propagated")
}
