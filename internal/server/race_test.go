package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"viewseeker/internal/dataset"
)

// TestConcurrentSessions drives several full sessions against one server
// sharing one table, all at once — create (with the parallel offline
// phase), next, feedback, top — so `go test -race` exercises the
// concurrency paths the parallel offline phase introduced. Sessions mix
// exact and α-sampled offline passes; the sampled ones run incremental
// refinement (focused scans through the generator's lazy caches) during
// feedback.
func TestConcurrentSessions(t *testing.T) {
	ts := testServer(t)
	const sessions = 6
	var wg sync.WaitGroup
	for n := 0; n < sessions; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			alpha := 0.0 // exact
			if n%2 == 1 {
				alpha = 0.3 // sampled + refinement
			}
			var sess sessionInfo
			doJSON(t, "POST", ts.URL+"/api/sessions", createSessionRequest{
				Table:   "diab",
				Query:   "SELECT * FROM diab WHERE diag_group = 'diabetes'",
				K:       3,
				Alpha:   alpha,
				Workers: 4,
				Seed:    int64(n),
			}, http.StatusCreated, &sess)
			base := ts.URL + "/api/sessions/" + sess.ID
			for i := 0; i < 4; i++ {
				var next nextResponse
				doJSON(t, "GET", base+"/next", nil, http.StatusOK, &next)
				if next.Done {
					t.Errorf("session %s done after only %d labels", sess.ID, i)
					return
				}
				var top topResponse
				doJSON(t, "POST", base+"/feedback", feedbackRequest{
					Index: next.Index, Label: float64((i + n) % 2),
				}, http.StatusOK, &top)
				if top.NumLabels != i+1 {
					t.Errorf("session %s: labels = %d, want %d", sess.ID, top.NumLabels, i+1)
					return
				}
				doJSON(t, "GET", base+"/top", nil, http.StatusOK, &top)
				if len(top.Top) == 0 {
					t.Errorf("session %s: empty top after feedback", sess.ID)
					return
				}
			}
		}(n)
	}
	wg.Wait()
}

// TestTopIsNeverNull asserts the top endpoint always serialises "top" as
// a JSON array: topOf initialises the slice, so even an empty
// recommendation (no appends) can never reach clients as "top": null.
func TestTopIsNeverNull(t *testing.T) {
	ts := testServer(t)
	var sess sessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", createSessionRequest{
		Table: "diab", Query: "SELECT * FROM diab WHERE diag_group = 'diabetes'", K: 3,
	}, http.StatusCreated, &sess)
	res, err := http.Get(ts.URL + "/api/sessions/" + sess.ID + "/top")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(res.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if len(raw["top"]) == 0 || raw["top"][0] != '[' {
		t.Errorf(`"top" = %s, want a JSON array`, raw["top"])
	}
	// The struct-level guarantee behind it: marshalling a fresh topResponse
	// with an initialised slice yields [], never null.
	b, err := json.Marshal(topResponse{Top: []viewJSON{}})
	if err != nil {
		t.Fatal(err)
	}
	var empty map[string]json.RawMessage
	if err := json.Unmarshal(b, &empty); err != nil {
		t.Fatal(err)
	}
	if string(empty["top"]) != "[]" {
		t.Errorf(`empty topResponse marshals "top" = %s, want []`, empty["top"])
	}
}

// TestNextReportsDone labels every view of a tiny space and asserts the
// next endpoint then returns the structured done response rather than an
// error status.
func TestNextReportsDone(t *testing.T) {
	// A 2-column table gives 1 dim × 1 measure × 5 aggs = 5 views.
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "cat", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	table := dataset.NewTable("tiny", schema)
	for i := 0; i < 40; i++ {
		table.MustAppendRow(dataset.StringVal(string(rune('a'+i%4))), dataset.Float(float64(i)))
	}
	hs := httptest.NewServer(New(table).Handler())
	t.Cleanup(hs.Close)
	ts := hs.URL

	var sess sessionInfo
	doJSON(t, "POST", ts+"/api/sessions", createSessionRequest{
		Table: "tiny", Query: "SELECT * FROM tiny WHERE cat = 'a'", K: 2,
	}, http.StatusCreated, &sess)
	base := ts + "/api/sessions/" + sess.ID
	for i := 0; i < sess.NumViews; i++ {
		var next nextResponse
		doJSON(t, "GET", base+"/next", nil, http.StatusOK, &next)
		if next.Done {
			t.Fatalf("done after %d of %d labels", i, sess.NumViews)
		}
		doJSON(t, "POST", base+"/feedback", feedbackRequest{Index: next.Index, Label: float64(i % 2)}, http.StatusOK, nil)
	}
	var next nextResponse
	doJSON(t, "GET", base+"/next", nil, http.StatusOK, &next)
	if !next.Done {
		t.Fatalf("exhausted space must report done, got %+v", next)
	}
	// The done response carries no stray view payload.
	if next.Spec != "" {
		t.Errorf("done response has spec %q", next.Spec)
	}
}
