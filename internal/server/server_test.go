package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"viewseeker/internal/dataset"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	table := dataset.GenerateDIAB(dataset.DIABConfig{Rows: 2000, Seed: 51})
	ts := httptest.NewServer(New(table).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var rdr *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(b)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != wantStatus {
		var msg map[string]any
		_ = json.NewDecoder(res.Body).Decode(&msg)
		t.Fatalf("%s %s = %d, want %d (%v)", method, url, res.StatusCode, wantStatus, msg)
	}
	if out != nil {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIndexPage(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET / = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("content type = %s", ct)
	}
}

func TestTablesEndpoint(t *testing.T) {
	ts := testServer(t)
	var tables []tableInfo
	doJSON(t, "GET", ts.URL+"/api/tables", nil, http.StatusOK, &tables)
	if len(tables) != 1 || tables[0].Name != "diab" {
		t.Fatalf("tables = %+v", tables)
	}
	if len(tables[0].Dimensions) != 7 || len(tables[0].Measures) != 8 {
		t.Errorf("roles = %+v", tables[0])
	}
}

func TestFullSessionFlow(t *testing.T) {
	ts := testServer(t)

	var sess sessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", createSessionRequest{
		Table: "diab",
		Query: "SELECT * FROM diab WHERE diag_group = 'diabetes'",
		K:     3,
	}, http.StatusCreated, &sess)
	if sess.NumViews != 280 || sess.TargetRows == 0 {
		t.Fatalf("session = %+v", sess)
	}
	base := ts.URL + "/api/sessions/" + sess.ID

	// Three feedback rounds.
	for i := 0; i < 3; i++ {
		var next viewJSON
		doJSON(t, "GET", base+"/next", nil, http.StatusOK, &next)
		if next.Spec == "" {
			t.Fatalf("next view = %+v", next)
		}
		// The SVG for the presented view renders.
		res, err := http.Get(fmt.Sprintf("%s/views/%d/svg", base, next.Index))
		if err != nil {
			t.Fatal(err)
		}
		svg := make([]byte, 1<<16)
		n, _ := res.Body.Read(svg)
		res.Body.Close()
		if res.StatusCode != http.StatusOK || !bytes.Contains(svg[:n], []byte("<svg")) {
			t.Fatalf("svg status=%d body=%q", res.StatusCode, svg[:min(n, 80)])
		}
		var top topResponse
		doJSON(t, "POST", base+"/feedback", feedbackRequest{Index: next.Index, Label: float64(i) / 3}, http.StatusOK, &top)
		if top.NumLabels != i+1 {
			t.Fatalf("labels = %d, want %d", top.NumLabels, i+1)
		}
		if len(top.Top) != 3 {
			t.Fatalf("top size = %d", len(top.Top))
		}
	}

	// Weights and top endpoints.
	var weights struct {
		Features []string           `json:"features"`
		Weights  map[string]float64 `json:"weights"`
	}
	doJSON(t, "GET", base+"/weights", nil, http.StatusOK, &weights)
	if len(weights.Features) != 8 || len(weights.Weights) != 8 {
		t.Errorf("weights = %+v", weights)
	}
	var top topResponse
	doJSON(t, "GET", base+"/top", nil, http.StatusOK, &top)
	if top.Top[0].SQL == "" {
		t.Error("top views should carry their SQL")
	}
	var info sessionInfo
	doJSON(t, "GET", base, nil, http.StatusOK, &info)
	if info.NumLabels != 3 {
		t.Errorf("info labels = %d", info.NumLabels)
	}

	// Delete, then the session is gone.
	doJSON(t, "DELETE", base, nil, http.StatusNoContent, nil)
	doJSON(t, "GET", base, nil, http.StatusNotFound, nil)
	doJSON(t, "DELETE", base, nil, http.StatusNotFound, nil)
}

func TestCreateSessionErrors(t *testing.T) {
	ts := testServer(t)
	doJSON(t, "POST", ts.URL+"/api/sessions", createSessionRequest{
		Table: "ghost", Query: "SELECT 1",
	}, http.StatusNotFound, nil)
	doJSON(t, "POST", ts.URL+"/api/sessions", createSessionRequest{
		Table: "diab", Query: "broken(",
	}, http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/api/sessions", createSessionRequest{
		Table: "diab", Query: "SELECT * FROM diab WHERE race = 'Martian'",
	}, http.StatusBadRequest, nil)
	// Corrupt JSON body.
	res, err := http.Post(ts.URL+"/api/sessions", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt body status = %d", res.StatusCode)
	}
}

func TestSessionEndpointErrors(t *testing.T) {
	ts := testServer(t)
	doJSON(t, "GET", ts.URL+"/api/sessions/nope/next", nil, http.StatusNotFound, nil)

	var sess sessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", createSessionRequest{
		Table: "diab", Query: "SELECT * FROM diab WHERE diag_group = 'diabetes'", K: 2,
	}, http.StatusCreated, &sess)
	base := ts.URL + "/api/sessions/" + sess.ID
	doJSON(t, "POST", base+"/feedback", feedbackRequest{Index: -1, Label: 0.5}, http.StatusBadRequest, nil)
	doJSON(t, "POST", base+"/feedback", feedbackRequest{Index: 0, Label: 7}, http.StatusBadRequest, nil)
	res, err := http.Get(base + "/views/notanumber/svg")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("bad index status = %d", res.StatusCode)
	}
	res, err = http.Get(base + "/views/99999/svg")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("out-of-range index status = %d", res.StatusCode)
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := testServer(t)
	var sess sessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", createSessionRequest{
		Table: "diab", Query: "SELECT * FROM diab WHERE diag_group = 'diabetes'", K: 3,
	}, http.StatusCreated, &sess)
	var out struct {
		Explanation string `json:"explanation"`
	}
	doJSON(t, "GET", ts.URL+"/api/sessions/"+sess.ID+"/views/0/explain", nil, http.StatusOK, &out)
	if !strings.HasPrefix(out.Explanation, "- ") {
		t.Errorf("explanation = %q", out.Explanation)
	}
	doJSON(t, "GET", ts.URL+"/api/sessions/"+sess.ID+"/views/xx/explain", nil, http.StatusBadRequest, nil)
}
