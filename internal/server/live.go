package server

import (
	"fmt"
	"math"
	"net/http"
	"sort"

	"viewseeker"
	"viewseeker/internal/dataset"
	"viewseeker/internal/obs"
)

// HostLive registers a WAL-backed appendable table under its name. Its
// current version is served exactly like a static table — sessions build
// against the version current at creation and keep it — and POST
// /api/tables/{name}/append grows it. rec, when non-nil, feeds the WAL
// recovery counters exported at /metricz.
//
// Hosting also starts the table's maintainer (see maintain.go), which
// keeps exact-session offline state warm across appends until
// Server.Close; a server that is already closed hosts the table without
// one.
func (s *Server) HostLive(lt *viewseeker.LiveTable, rec *viewseeker.LiveRecovery) {
	cur := lt.Current()
	lt.Instrument(s.metrics, rec)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.live[cur.Name] = lt
	s.tables[cur.Name] = cur
	// Live tables are addressed by version ref (base hash + WAL sequence):
	// an append mints a new address in O(1) instead of rehashing contents,
	// and cache entries of earlier versions survive as ancestors.
	s.tableHash[cur.Name] = lt.VersionRef()
	if !s.closed && s.maintainers[cur.Name] == nil {
		s.maintainers[cur.Name] = newMaintainer(s, cur.Name, lt)
	}
}

// liveStatus is one live table's streaming state in GET /healthz.
type liveStatus struct {
	Table string `json:"table"`
	// Seq is the last committed WAL sequence number (0 = base only).
	Seq uint64 `json:"seq"`
	// Rows is the current version's row count.
	Rows int `json:"rows"`
	// WalBytes is the on-disk size of the (compacted) log: replay cost on
	// the next restart is proportional to it.
	WalBytes int64 `json:"walBytes"`
	// CheckpointSeq is the seq covered by the newest snapshot (0: none).
	CheckpointSeq uint64 `json:"checkpointSeq"`
	// CheckpointAgeSeconds is the snapshot's age (-1: none).
	CheckpointAgeSeconds int64 `json:"checkpointAgeSeconds"`
	// Maintained counts the offline states the table's maintainer hosts.
	Maintained int `json:"maintained"`
	// MaintainerLag is how many versions the slowest hosted offline state
	// trails the table (0: fully caught up, or nothing hosted).
	MaintainerLag uint64 `json:"maintainerLag"`
}

// liveStatuses snapshots every hosted live table's state, sorted by name.
func (s *Server) liveStatuses() []liveStatus {
	s.mu.Lock()
	names := make([]string, 0, len(s.live))
	for name := range s.live {
		names = append(names, name)
	}
	sort.Strings(names)
	lts := make([]*viewseeker.LiveTable, len(names))
	mts := make([]*maintainer, len(names))
	for i, name := range names {
		lts[i] = s.live[name]
		mts[i] = s.maintainers[name]
	}
	s.mu.Unlock()
	out := make([]liveStatus, len(names))
	for i, name := range names {
		st := lts[i].Status()
		out[i] = liveStatus{
			Table: name, Seq: st.Seq, Rows: st.Rows, WalBytes: st.WalBytes,
			CheckpointSeq: st.CheckpointSeq, CheckpointAgeSeconds: st.CheckpointAgeSeconds,
		}
		if mts[i] != nil {
			out[i].MaintainerLag, out[i].Maintained = mts[i].lag()
		}
	}
	return out
}

// appendRequest is the POST /api/tables/{name}/append body: rows in schema
// column order, JSON-typed (numbers for int/float columns — int cells must
// be integral —, strings, bools, null for SQL NULL).
type appendRequest struct {
	Rows [][]any `json:"rows"`
}

// appendResponse reports the committed batch. Synced is false when the
// batch committed but its fsync failed — durability is one sync behind;
// the server keeps serving and the next append or shutdown retries.
type appendResponse struct {
	Seq     uint64 `json:"seq"`
	Rows    int    `json:"rows"`
	Version string `json:"version"`
	Synced  bool   `json:"synced"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	_, span := obs.StartSpan(r.Context(), "append")
	defer span.End()
	name := r.PathValue("name")
	s.mu.Lock()
	lt := s.live[name]
	s.mu.Unlock()
	if lt == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no live table %q", name))
		return
	}
	var req appendRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty append batch"))
		return
	}
	rows, err := decodeRows(lt.Current().Schema, req.Rows)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	seq, aerr := lt.Append(rows)
	if seq == 0 {
		// Nothing committed: the WAL write failed outright.
		writeError(w, http.StatusInternalServerError, aerr)
		return
	}
	if aerr != nil {
		s.log.Error("append fsync lagging", "table", name, "seq", seq, "err", aerr)
	}
	s.mu.Lock()
	s.tables[name] = lt.Current()
	s.tableHash[name] = lt.VersionRef()
	s.mu.Unlock()
	s.notifyLive(name)
	writeJSON(w, http.StatusOK, appendResponse{
		Seq: seq, Rows: len(rows), Version: lt.VersionRef(), Synced: aerr == nil,
	})
}

// decodeRows converts JSON cells to typed values per the schema, rejecting
// shape and type mismatches with the row/column they occur at.
func decodeRows(schema *dataset.Schema, in [][]any) ([][]dataset.Value, error) {
	out := make([][]dataset.Value, len(in))
	for i, row := range in {
		if len(row) != schema.Len() {
			return nil, fmt.Errorf("row %d has %d values, schema has %d columns", i, len(row), schema.Len())
		}
		vals := make([]dataset.Value, len(row))
		for j, cell := range row {
			v, err := decodeCell(schema.Columns[j], cell)
			if err != nil {
				return nil, fmt.Errorf("row %d column %q: %w", i, schema.Columns[j].Name, err)
			}
			vals[j] = v
		}
		out[i] = vals
	}
	return out, nil
}

func decodeCell(def dataset.ColumnDef, cell any) (dataset.Value, error) {
	if cell == nil {
		return dataset.Null, nil
	}
	switch def.Kind {
	case dataset.KindInt:
		f, ok := cell.(float64)
		if !ok || f != math.Trunc(f) || math.IsInf(f, 0) {
			return dataset.Value{}, fmt.Errorf("want an integer, got %v", cell)
		}
		return dataset.Int(int64(f)), nil
	case dataset.KindFloat:
		f, ok := cell.(float64)
		if !ok {
			return dataset.Value{}, fmt.Errorf("want a number, got %v", cell)
		}
		return dataset.Float(f), nil
	case dataset.KindString:
		s, ok := cell.(string)
		if !ok {
			return dataset.Value{}, fmt.Errorf("want a string, got %v", cell)
		}
		return dataset.StringVal(s), nil
	case dataset.KindBool:
		b, ok := cell.(bool)
		if !ok {
			return dataset.Value{}, fmt.Errorf("want a bool, got %v", cell)
		}
		return dataset.Bool(b), nil
	default:
		return dataset.Value{}, fmt.Errorf("column has invalid kind")
	}
}
