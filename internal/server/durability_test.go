package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/store"
)

func diabTable() *dataset.Table {
	return dataset.GenerateDIAB(dataset.DIABConfig{Rows: 2000, Seed: 51})
}

func TestSessionIDsAreRandomHex(t *testing.T) {
	ts := testServer(t)
	idPattern := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		var info sessionInfo
		doJSON(t, "POST", ts.URL+"/api/sessions",
			map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 3},
			http.StatusCreated, &info)
		if !idPattern.MatchString(info.ID) {
			t.Fatalf("session id %q is not 16 hex chars", info.ID)
		}
		if seen[info.ID] {
			t.Fatalf("duplicate session id %q", info.ID)
		}
		seen[info.ID] = true
	}
}

func TestSecondSessionIsServedFromCache(t *testing.T) {
	ts := testServer(t)
	body := map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 3}
	var first, second sessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", body, http.StatusCreated, &first)
	if first.Cached {
		t.Fatal("first session reported cached=true")
	}
	doJSON(t, "POST", ts.URL+"/api/sessions", body, http.StatusCreated, &second)
	if !second.Cached {
		t.Fatal("second identical session reported cached=false")
	}
}

func TestOversizedBodyGets413(t *testing.T) {
	srv := NewWithOptions(Options{MaxBodyBytes: 256}, diabTable())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	big := bytes.Repeat([]byte("x"), 1024)
	body := []byte(`{"table":"diab","query":"` + string(big) + `"}`)
	res, err := http.Post(ts.URL+"/api/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized POST = %d, want 413", res.StatusCode)
	}
	// A within-limit body on the same server still works.
	var info sessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions",
		map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 3},
		http.StatusCreated, &info)
}

// TestJournalRestoreReconstructsSession is the acceptance scenario: a
// server is killed mid-session (simulated by just abandoning it) and a new
// process replays the journal — the restored session must answer with the
// identical top-k and weights, and keep accepting feedback.
func TestJournalRestoreReconstructsSession(t *testing.T) {
	dir := t.TempDir()
	table := diabTable()
	journalPath := filepath.Join(dir, "journal.jsonl")
	journal, err := store.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := store.Open(filepath.Join(dir, "cache"), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewWithOptions(Options{Cache: cache, Journal: journal}, table)
	ts1 := httptest.NewServer(srv1.Handler())
	defer ts1.Close()

	var info sessionInfo
	doJSON(t, "POST", ts1.URL+"/api/sessions",
		map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 5, "seed": 7},
		http.StatusCreated, &info)
	// Drive a few deterministic labels through the live server.
	for i := 0; i < 6; i++ {
		var next struct {
			Done  bool `json:"done"`
			Index int  `json:"index"`
		}
		doJSON(t, "GET", ts1.URL+"/api/sessions/"+info.ID+"/next", nil, http.StatusOK, &next)
		if next.Done {
			break
		}
		label := 0.0
		if next.Index%2 == 0 {
			label = 1.0
		}
		doJSON(t, "POST", ts1.URL+"/api/sessions/"+info.ID+"/feedback",
			map[string]any{"index": next.Index, "label": label}, http.StatusOK, nil)
	}
	var topBefore topResponse
	doJSON(t, "GET", ts1.URL+"/api/sessions/"+info.ID+"/top", nil, http.StatusOK, &topBefore)
	var weightsBefore map[string]any
	doJSON(t, "GET", ts1.URL+"/api/sessions/"+info.ID+"/weights", nil, http.StatusOK, &weightsBefore)

	// "Kill" the server without any clean shutdown: the journal's appends
	// are already on disk, so a new process sees them.
	recs, err := store.ReadJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	cache2, err := store.Open(filepath.Join(dir, "cache"), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewWithOptions(Options{Cache: cache2}, table)
	restored, err := srv2.RestoreSessions(recs)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if restored != 1 {
		t.Fatalf("restored %d sessions, want 1", restored)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	var infoAfter sessionInfo
	doJSON(t, "GET", ts2.URL+"/api/sessions/"+info.ID, nil, http.StatusOK, &infoAfter)
	if infoAfter.NumLabels != 6 {
		t.Fatalf("restored session has %d labels, want 6", infoAfter.NumLabels)
	}
	if !infoAfter.Cached {
		t.Error("restored session did not reuse the disk-backed offline cache")
	}
	var topAfter topResponse
	doJSON(t, "GET", ts2.URL+"/api/sessions/"+info.ID+"/top", nil, http.StatusOK, &topAfter)
	if len(topAfter.Top) != len(topBefore.Top) {
		t.Fatalf("top-k sizes %d vs %d", len(topAfter.Top), len(topBefore.Top))
	}
	for i := range topBefore.Top {
		if topBefore.Top[i].Index != topAfter.Top[i].Index || topBefore.Top[i].Score != topAfter.Top[i].Score {
			t.Fatalf("top-k[%d] differs after restore: %+v vs %+v", i, topBefore.Top[i], topAfter.Top[i])
		}
	}
	var weightsAfter map[string]any
	doJSON(t, "GET", ts2.URL+"/api/sessions/"+info.ID+"/weights", nil, http.StatusOK, &weightsAfter)
	beforeW := weightsBefore["weights"].(map[string]any)
	afterW := weightsAfter["weights"].(map[string]any)
	for name, v := range beforeW {
		if afterW[name] != v {
			t.Fatalf("weight %s differs after restore: %v vs %v", name, v, afterW[name])
		}
	}
	// The restored session stays interactive.
	var next struct {
		Done  bool `json:"done"`
		Index int  `json:"index"`
	}
	doJSON(t, "GET", ts2.URL+"/api/sessions/"+info.ID+"/next", nil, http.StatusOK, &next)
	if !next.Done {
		doJSON(t, "POST", ts2.URL+"/api/sessions/"+info.ID+"/feedback",
			map[string]any{"index": next.Index, "label": 1.0}, http.StatusOK, nil)
	}
}

func TestRestoreSkipsDeletedSessions(t *testing.T) {
	dir := t.TempDir()
	table := diabTable()
	journal, err := store.OpenJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewWithOptions(Options{Journal: journal}, table)
	ts1 := httptest.NewServer(srv1.Handler())
	defer ts1.Close()
	body := map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 3}
	var kept, dropped sessionInfo
	doJSON(t, "POST", ts1.URL+"/api/sessions", body, http.StatusCreated, &kept)
	doJSON(t, "POST", ts1.URL+"/api/sessions", body, http.StatusCreated, &dropped)
	doJSON(t, "DELETE", ts1.URL+"/api/sessions/"+dropped.ID, nil, http.StatusNoContent, nil)

	recs, err := store.ReadJournal(journal.Path())
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(table)
	restored, err := srv2.RestoreSessions(recs)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored %d sessions, want 1", restored)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	doJSON(t, "GET", ts2.URL+"/api/sessions/"+kept.ID, nil, http.StatusOK, nil)
	doJSON(t, "GET", ts2.URL+"/api/sessions/"+dropped.ID, nil, http.StatusNotFound, nil)
}

func TestRestoreSurvivesUnknownTable(t *testing.T) {
	recs := []store.Record{
		{Op: store.OpCreate, Session: "aaaa", Table: "missing", Query: "SELECT * FROM missing"},
		{Op: store.OpCreate, Session: "bbbb", Table: "diab", Query: dataset.DIABQuery, K: 3},
	}
	srv := New(diabTable())
	restored, err := srv.RestoreSessions(recs)
	if restored != 1 {
		t.Fatalf("restored %d sessions, want 1", restored)
	}
	if err == nil {
		t.Fatal("missing-table session restored without error")
	}
}
