package server

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"

	"viewseeker"
)

// maintainerConcurrency bounds how many tables' maintenance passes run at
// once across the whole server: an advance pass can rescan a table, so a
// burst of appends to many tables must not fan out into unbounded CPU.
const maintainerConcurrency = 2

// maintainedPerTableMax caps the maintained offline states hosted per
// table: each distinct exploration query clients open exact sessions for
// gets one, and past the cap new queries fall back to the cold path
// instead of growing server memory without bound.
const maintainedPerTableMax = 32

// maintainer keeps one live table's hosted offline states current. It owns
// a single goroutine that waits on coalesced append notifications and
// drives Maintained.Advance over every hosted state — so by the time a
// client opens its next session, the offline work is already done and the
// session is served warm at the newest version.
//
// Backpressure is by coalescing: notify has capacity 1, so any burst of
// appends during a pass collapses into one follow-up pass over the newest
// version (Advance folds all pending rows at once). Nothing ever queues
// unboundedly and notifiers never block.
type maintainer struct {
	s    *Server
	name string
	lt   *viewseeker.LiveTable

	notify chan struct{}
	stop   chan struct{}
	done   chan struct{}

	mu         sync.Mutex
	maintained map[string]*viewseeker.Maintained // keyed by exploration query
}

func newMaintainer(s *Server, name string, lt *viewseeker.LiveTable) *maintainer {
	mt := &maintainer{
		s: s, name: name, lt: lt,
		notify:     make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		maintained: make(map[string]*viewseeker.Maintained),
	}
	go mt.loop()
	return mt
}

// wake requests a maintenance pass; a pass already pending absorbs it.
func (mt *maintainer) wake() {
	select {
	case mt.notify <- struct{}{}:
	default:
	}
}

func (mt *maintainer) loop() {
	defer close(mt.done)
	for {
		select {
		case <-mt.stop:
			return
		case <-mt.notify:
		}
		select {
		case mt.s.maintSem <- struct{}{}:
		case <-mt.stop:
			return
		}
		mt.runPass()
		<-mt.s.maintSem
	}
}

// runPass advances every hosted state to the table's current version.
func (mt *maintainer) runPass() {
	mt.mu.Lock()
	states := make([]*viewseeker.Maintained, 0, len(mt.maintained))
	queries := make([]string, 0, len(mt.maintained))
	for q, m := range mt.maintained {
		states = append(states, m)
		queries = append(queries, q)
	}
	mt.mu.Unlock()
	for i, m := range states {
		mt.advance(queries[i], m)
	}
}

// advance drives one state forward with panic isolation: a bug in one
// query's maintenance must not take down the maintainer (and with it every
// other query's freshness). A panicking state is evicted — it may be
// mid-mutation — so later sessions for its query rebuild cleanly.
func (mt *maintainer) advance(query string, m *viewseeker.Maintained) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		mt.s.maintPanics.Inc()
		mt.s.log.Error("maintainer panic", "table", mt.name, "query", query,
			"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
		mt.mu.Lock()
		if mt.maintained[query] == m {
			delete(mt.maintained, query)
		}
		mt.mu.Unlock()
	}()
	before := m.Stats()
	if _, err := m.Advance(); err != nil {
		mt.s.log.Error("maintainer advance failed", "table", mt.name, "query", query, "err", err)
		return
	}
	after := m.Stats()
	mt.s.driftRebuilds.Add(int64(after.DriftRebuilds - before.DriftRebuilds))
}

// state returns the hosted Maintained for query, building it on first use.
// ok=false means the per-table cap is reached and the caller should take
// the cold path.
func (mt *maintainer) state(query string) (*viewseeker.Maintained, bool, error) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if m := mt.maintained[query]; m != nil {
		return m, true, nil
	}
	if len(mt.maintained) >= maintainedPerTableMax {
		return nil, false, nil
	}
	m, err := viewseeker.Maintain(mt.lt, query, viewseeker.Options{})
	if err != nil {
		return nil, false, err
	}
	mt.maintained[query] = m
	return m, true, nil
}

// lag reports how many versions the slowest hosted state trails the table,
// plus how many states are hosted. With nothing hosted the lag is 0 —
// there is no offline state to go stale.
func (mt *maintainer) lag() (lag uint64, hosted int) {
	cur := mt.lt.Seq()
	mt.mu.Lock()
	defer mt.mu.Unlock()
	for _, m := range mt.maintained {
		if s := m.Seq(); cur > s && cur-s > lag {
			lag = cur - s
		}
	}
	return lag, len(mt.maintained)
}

// notifyLive wakes the maintainer for name after an append (no-op for
// tables without one).
func (s *Server) notifyLive(name string) {
	s.mu.Lock()
	mt := s.maintainers[name]
	s.mu.Unlock()
	if mt != nil {
		mt.wake()
	}
}

// Close stops every table maintainer and waits for in-flight maintenance
// passes to finish. The server keeps serving requests — Close only ends
// background maintenance; it does not close the hosted live tables, which
// stay owned by whoever opened them. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	mts := make([]*maintainer, 0, len(s.maintainers))
	for _, mt := range s.maintainers {
		mts = append(mts, mt)
	}
	s.mu.Unlock()
	for _, mt := range mts {
		close(mt.stop)
	}
	for _, mt := range mts {
		<-mt.done
	}
}

// checkpointResponse is the POST /api/tables/{name}/checkpoint body. Seq 0
// means there was nothing to checkpoint (no appends since the last one, or
// one already in flight).
type checkpointResponse struct {
	Seq uint64 `json:"seq"`
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	lt := s.live[name]
	s.mu.Unlock()
	if lt == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no live table %q", name))
		return
	}
	seq, err := lt.Checkpoint()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, checkpointResponse{Seq: seq})
}
