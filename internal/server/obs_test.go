package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/obs"
)

// scrapeMetricz returns /metricz as series → value for exact assertions.
func scrapeMetricz(t *testing.T, h http.Handler) map[string]string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metricz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metricz = %d, want 200", rec.Code)
	}
	out := map[string]string{}
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Split at the LAST space: label values ({route="POST /api/..."})
		// may contain spaces, the value never does.
		i := strings.LastIndex(line, " ")
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		out[line[:i]] = line[i+1:]
	}
	return out
}

// TestMetriczReflectsRealSession pins the end-to-end wiring: driving the
// API moves the counters /metricz exports. The second session over the
// same (table, query) must be a warm start — visible as a cache hit and a
// warm-session counter — and the per-route request histogram must have
// recorded both creates.
func TestMetriczReflectsRealSession(t *testing.T) {
	srv := New(diabTable())
	h := srv.Handler()

	body := map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 3, "alpha": 1.0, "workers": 1}
	var first, second sessionInfo
	if rec := serveJSON(t, h, context.Background(), "POST", "/api/sessions", body, &first); rec.Code != http.StatusCreated {
		t.Fatalf("first create = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := serveJSON(t, h, context.Background(), "POST", "/api/sessions", body, &second); rec.Code != http.StatusCreated {
		t.Fatalf("second create = %d: %s", rec.Code, rec.Body.String())
	}
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags = %v, %v; want cold then warm", first.Cached, second.Cached)
	}

	m := scrapeMetricz(t, h)
	for series, want := range map[string]string{
		`viewseeker_offline_sessions_total{result="cold"}`:                        "1",
		`viewseeker_offline_sessions_total{result="warm"}`:                        "1",
		`viewseeker_store_cache_hits_total`:                                       "1",
		`viewseeker_server_request_seconds_count{route="POST /api/sessions"}`:     "2",
		`viewseeker_server_requests_total{route="POST /api/sessions",code="201"}`: "2",
	} {
		if got := m[series]; got != want {
			t.Errorf("%s = %q, want %q", series, got, want)
		}
	}
	if m["viewseeker_store_cache_misses_total"] == "0" || m["viewseeker_store_cache_misses_total"] == "" {
		t.Errorf("cache misses = %q, want > 0 from the cold session", m["viewseeker_store_cache_misses_total"])
	}
	if m["viewseeker_offline_views_total"] == "" || m["viewseeker_offline_views_total"] == "0" {
		t.Errorf("offline views = %q, want the cold session's view count", m["viewseeker_offline_views_total"])
	}
}

// TestRequestIDsInStructuredLogs pins the correlation contract: the id in
// the X-Request-Id response header is the id on the slog access line, an
// incoming id is honoured rather than replaced, and every line carries
// the route and status.
func TestRequestIDsInStructuredLogs(t *testing.T) {
	var logBuf bytes.Buffer
	srv := NewWithOptions(Options{
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	}, diabTable())
	h := srv.Handler()

	// An id supplied by a proxy threads through untouched.
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-Id", "proxy-supplied-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "proxy-supplied-42" {
		t.Fatalf("X-Request-Id = %q, want the incoming id honoured", got)
	}

	// Without one, the server mints an id and returns it.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest("GET", "/api/tables", nil))
	minted := rec2.Header().Get("X-Request-Id")
	if minted == "" {
		t.Fatal("no X-Request-Id minted for a request without one")
	}

	type accessLine struct {
		Msg    string `json:"msg"`
		ID     string `json:"id"`
		Route  string `json:"route"`
		Status int    `json:"status"`
	}
	var lines []accessLine
	sc := bufio.NewScanner(&logBuf)
	for sc.Scan() {
		var l accessLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("non-JSON log line %q: %v", sc.Text(), err)
		}
		if l.Msg == "request" {
			lines = append(lines, l)
		}
	}
	if len(lines) != 2 {
		t.Fatalf("got %d access lines, want 2", len(lines))
	}
	if lines[0].ID != "proxy-supplied-42" || lines[0].Route != "GET /healthz" || lines[0].Status != 200 {
		t.Errorf("first access line = %+v, want the proxy id on GET /healthz with 200", lines[0])
	}
	if lines[1].ID != minted || lines[1].Route != "GET /api/tables" {
		t.Errorf("second access line = %+v, want minted id %q on GET /api/tables", lines[1], minted)
	}
}

// TestDebugVarsServesTracesAndMetrics pins /debug/vars: after a session
// create, the JSON dump carries the metric families and the offline span
// tree with its child phases.
func TestDebugVarsServesTracesAndMetrics(t *testing.T) {
	srv := New(diabTable())
	h := srv.Handler()
	var info sessionInfo
	if rec := serveJSON(t, h, context.Background(), "POST", "/api/sessions",
		map[string]any{"table": "diab", "query": dataset.DIABQuery, "k": 3, "workers": 1}, &info); rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body.String())
	}
	var vars struct {
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
		Traces []obs.SpanData `json:"traces"`
	}
	if rec := serveJSON(t, h, context.Background(), "GET", "/debug/vars", nil, &vars); rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/vars = %d", rec.Code)
	}
	if vars.Metrics.Counters[`viewseeker_offline_sessions_total{result="cold"}`] != 1 {
		t.Errorf("counters in /debug/vars = %v, want the cold-session count", vars.Metrics.Counters)
	}
	if len(vars.Traces) == 0 {
		t.Fatal("no traces in /debug/vars after a session create")
	}
	root := vars.Traces[0]
	if root.Name != "offline" {
		t.Fatalf("most recent trace root = %q, want offline", root.Name)
	}
	children := map[string]bool{}
	for _, c := range root.Children {
		children[c.Name] = true
	}
	for _, want := range []string{"offline.query", "offline.warm", "offline.features"} {
		if !children[want] {
			t.Errorf("offline trace is missing child span %q (have %v)", want, root.Children)
		}
	}
}
