package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"viewseeker/internal/dataset"
	"viewseeker/internal/live"
)

// liveTestServer hosts a SYN live table and returns the raw server too,
// so tests can reach its metrics registry.
func liveTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	table := dataset.GenerateSYN(dataset.SYNConfig{Rows: 2000, Seed: 9})
	lt, rec, err := live.Open(nil, filepath.Join(t.TempDir(), "syn.wal"), table, live.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lt.Close() })
	srv := New()
	t.Cleanup(srv.Close)
	srv.HostLive(lt, rec)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// waitFor polls cond until it holds or the deadline passes — the
// maintainer runs on its own goroutine, so tests observe it converge
// rather than stepping it.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// synJSONRows builds valid append rows for SYN's schema (d1..d4 floats,
// m1..m4 floats — every column numeric).
func synJSONRows(n int) [][]any {
	table := dataset.GenerateSYN(dataset.SYNConfig{Rows: 1, Seed: 9})
	out := make([][]any, n)
	for i := range out {
		row := make([]any, table.Schema.Len())
		for j := range row {
			row[j] = 0.01 * float64(i+j)
		}
		out[i] = row
	}
	return out
}

func TestAppendEndpoint(t *testing.T) {
	ts, srv := liveTestServer(t)

	var resp appendResponse
	doJSON(t, "POST", ts.URL+"/api/tables/syn/append", map[string]any{"rows": synJSONRows(5)},
		http.StatusOK, &resp)
	if resp.Seq != 1 || resp.Rows != 5 || !resp.Synced {
		t.Fatalf("append response %+v", resp)
	}
	if !strings.Contains(resp.Version, "@1") {
		t.Fatalf("version ref %q does not carry the sequence", resp.Version)
	}

	// The hosted table advanced: table listing reflects the new rows and
	// new sessions build over them.
	var tables []tableInfo
	doJSON(t, "GET", ts.URL+"/api/tables", nil, http.StatusOK, &tables)
	if len(tables) != 1 || tables[0].Rows != 2005 {
		t.Fatalf("tables after append = %+v", tables)
	}
	var sess sessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions",
		map[string]any{"table": "syn", "query": dataset.SYNQuery, "k": 3},
		http.StatusCreated, &sess)
	if sess.NumViews == 0 {
		t.Fatal("session over the appended table has no views")
	}

	// Health surfaces the WAL state; metrics carry the wal series.
	var health healthResponse
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &health)
	if len(health.Live) != 1 || health.Live[0].Seq != 1 || health.Live[0].Rows != 2005 {
		t.Fatalf("healthz live = %+v", health.Live)
	}
	snap := srv.Metrics().Snapshot()
	if snap["viewseeker_wal_appends_total"] != 1 {
		t.Fatalf("wal appends metric = %v", snap["viewseeker_wal_appends_total"])
	}
	if snap["viewseeker_live_appended_rows_total"] != 5 {
		t.Fatalf("live appended rows metric = %v", snap["viewseeker_live_appended_rows_total"])
	}
}

func TestAppendEndpointRejectsBadRows(t *testing.T) {
	ts, _ := liveTestServer(t)
	url := ts.URL + "/api/tables/syn/append"
	// Wrong arity.
	doJSON(t, "POST", url, map[string]any{"rows": [][]any{{0.1}}}, http.StatusBadRequest, nil)
	// Wrong type (string in a float column).
	bad := synJSONRows(1)
	bad[0][0] = "not a number"
	doJSON(t, "POST", url, map[string]any{"rows": bad}, http.StatusBadRequest, nil)
	// Empty batch.
	doJSON(t, "POST", url, map[string]any{"rows": [][]any{}}, http.StatusBadRequest, nil)
	// Unknown table.
	doJSON(t, "POST", ts.URL+"/api/tables/nope/append", map[string]any{"rows": synJSONRows(1)},
		http.StatusNotFound, nil)

	// Nothing leaked into the hosted table.
	var tables []tableInfo
	doJSON(t, "GET", ts.URL+"/api/tables", nil, http.StatusOK, &tables)
	if tables[0].Rows != 2000 {
		t.Fatalf("rejected appends changed the table: %d rows", tables[0].Rows)
	}
}

// TestAppendDoesNotDisturbSessions pins the MVCC contract at the API
// level: a session created before an append keeps answering over the
// version it was built on.
func TestAppendDoesNotDisturbSessions(t *testing.T) {
	ts, _ := liveTestServer(t)
	var sess sessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions",
		map[string]any{"table": "syn", "query": dataset.SYNQuery, "k": 3},
		http.StatusCreated, &sess)
	before := sess.TargetRows

	doJSON(t, "POST", ts.URL+"/api/tables/syn/append",
		map[string]any{"rows": synJSONRows(50)}, http.StatusOK, nil)

	var after sessionInfo
	doJSON(t, "GET", ts.URL+"/api/sessions/"+sess.ID, nil, http.StatusOK, &after)
	if after.TargetRows != before {
		t.Fatalf("session target grew from %d to %d after an append", before, after.TargetRows)
	}
	var next nextResponse
	doJSON(t, "GET", ts.URL+"/api/sessions/"+sess.ID+"/next", nil, http.StatusOK, &next)
	if next.Done {
		t.Fatal("session broke after append")
	}
}

// TestMaintainerKeepsSessionsWarm: an exact session on a hosted live table
// builds from the maintained offline state, the background maintainer
// advances that state after appends (healthz lag returns to 0), and the
// next session is warm at the new version.
func TestMaintainerKeepsSessionsWarm(t *testing.T) {
	ts, srv := liveTestServer(t)
	var sess sessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions",
		map[string]any{"table": "syn", "query": dataset.SYNQuery, "k": 3},
		http.StatusCreated, &sess)
	if !sess.Cached {
		t.Fatal("exact session on a hosted live table was not served warm")
	}
	var health healthResponse
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &health)
	if len(health.Live) != 1 || health.Live[0].Maintained != 1 {
		t.Fatalf("healthz live after session = %+v", health.Live)
	}

	// All five appended rows match SYNQuery's predicate.
	doJSON(t, "POST", ts.URL+"/api/tables/syn/append",
		map[string]any{"rows": synJSONRows(5)}, http.StatusOK, nil)
	waitFor(t, "maintainer to catch up", func() bool {
		var h healthResponse
		doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &h)
		return len(h.Live) == 1 && h.Live[0].Seq == 1 && h.Live[0].MaintainerLag == 0
	})

	var sess2 sessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions",
		map[string]any{"table": "syn", "query": dataset.SYNQuery, "k": 3},
		http.StatusCreated, &sess2)
	if !sess2.Cached {
		t.Fatal("post-append session was not served warm")
	}
	if sess2.TargetRows != sess.TargetRows+5 {
		t.Fatalf("post-append session sees %d target rows, want %d",
			sess2.TargetRows, sess.TargetRows+5)
	}
	// The maintainer took the suffix path, not a rebuild storm — but either
	// way the drift counter must exist on the registry.
	if _, ok := srv.Metrics().Snapshot()["viewseeker_live_drift_rebuilds_total"]; !ok {
		t.Fatal("drift rebuild counter not registered")
	}
}

// TestServerCloseStopsMaintainer: Close ends background maintenance
// without breaking the serving path — appends still commit, and the
// now-unmaintained state shows up as lag in healthz.
func TestServerCloseStopsMaintainer(t *testing.T) {
	ts, srv := liveTestServer(t)
	doJSON(t, "POST", ts.URL+"/api/sessions",
		map[string]any{"table": "syn", "query": dataset.SYNQuery, "k": 3},
		http.StatusCreated, nil)
	srv.Close()
	srv.Close() // idempotent

	var resp appendResponse
	doJSON(t, "POST", ts.URL+"/api/tables/syn/append",
		map[string]any{"rows": synJSONRows(5)}, http.StatusOK, &resp)
	if resp.Seq != 1 {
		t.Fatalf("append after Close: %+v", resp)
	}
	var health healthResponse
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &health)
	if len(health.Live) != 1 || health.Live[0].MaintainerLag != 1 {
		t.Fatalf("healthz after Close+append = %+v", health.Live)
	}
}

// TestCheckpointEndpoint: the manual checkpoint route persists the current
// version, compacts the log, and reports both through healthz.
func TestCheckpointEndpoint(t *testing.T) {
	ts, _ := liveTestServer(t)
	for i := 0; i < 3; i++ {
		doJSON(t, "POST", ts.URL+"/api/tables/syn/append",
			map[string]any{"rows": synJSONRows(5)}, http.StatusOK, nil)
	}
	var health healthResponse
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &health)
	if health.Live[0].WalBytes == 0 || health.Live[0].CheckpointSeq != 0 {
		t.Fatalf("healthz before checkpoint = %+v", health.Live)
	}

	var ck checkpointResponse
	doJSON(t, "POST", ts.URL+"/api/tables/syn/checkpoint", nil, http.StatusOK, &ck)
	if ck.Seq != 3 {
		t.Fatalf("checkpoint seq = %d, want 3", ck.Seq)
	}
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &health)
	if health.Live[0].WalBytes != 0 || health.Live[0].CheckpointSeq != 3 ||
		health.Live[0].CheckpointAgeSeconds < 0 {
		t.Fatalf("healthz after checkpoint = %+v", health.Live)
	}
	// Nothing new to cover: a second checkpoint is a no-op.
	doJSON(t, "POST", ts.URL+"/api/tables/syn/checkpoint", nil, http.StatusOK, &ck)
	if ck.Seq != 0 {
		t.Fatalf("idle checkpoint seq = %d, want 0", ck.Seq)
	}
	doJSON(t, "POST", ts.URL+"/api/tables/nope/checkpoint", nil, http.StatusNotFound, nil)
}
