package session

import (
	"container/list"
	"context"
	"fmt"
	"time"

	"sync"

	"viewseeker"
	"viewseeker/internal/obs"
	"viewseeker/internal/store"
)

// BuildFunc rebuilds a session's seeker from its journalled create record:
// the rehydration path. The closure is captured when the session is
// registered, so it pins everything replay depends on — in particular the
// table *version* the session was created on (live tables advance under
// the server, journal replay must not). Feedback replay is the manager's
// job; Build only reconstructs the post-offline-phase state, normally via
// viewseeker.NewCtx through the shared offline-result cache.
type BuildFunc func(ctx context.Context, create store.Record) (*viewseeker.Seeker, error)

// Config sizes a Manager. The zero value is an unbudgeted manager:
// sessions stay resident forever and admission always succeeds — exactly
// the pre-budget server behaviour.
type Config struct {
	// BudgetBytes caps the accounted resident bytes across all sessions
	// (0 = unbudgeted). When the total exceeds it, idle sessions are
	// evicted coldest-first; sessions currently serving a request and
	// pinned sessions are never evicted, so the total can exceed the
	// budget by the working set of in-flight requests.
	BudgetBytes int64
	// HeadroomFraction sets the shed threshold above the budget: when the
	// unevictable resident bytes exceed BudgetBytes × (1 +
	// HeadroomFraction), new sessions and rehydrations are refused with
	// *Overload. ≤ 0 selects DefaultHeadroomFraction.
	HeadroomFraction float64
	// MaxRehydrations bounds concurrent journal replays; a cold touch
	// past the bound is refused with *Overload instead of queueing
	// unbounded rebuild work behind a burst. ≤ 0 selects
	// DefaultMaxRehydrations.
	MaxRehydrations int
	// RetryAfter is the client backoff hint carried by *Overload (and the
	// HTTP Retry-After header upstream). ≤ 0 selects DefaultRetryAfter.
	RetryAfter time.Duration
}

// Defaults for the Config knobs.
const (
	DefaultHeadroomFraction = 0.5
	DefaultMaxRehydrations  = 4
	DefaultRetryAfter       = time.Second
)

// Overload is the admission-control refusal: the manager cannot take the
// work right now, and the client should retry after RetryAfter. The
// server maps it to 429 with a Retry-After header.
type Overload struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *Overload) Error() string {
	return fmt.Sprintf("session manager overloaded: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// ErrNotFound reports an id the manager has never seen (or has deleted).
var ErrNotFound = fmt.Errorf("session: unknown session")

// Manager owns the server's interactive sessions under a memory budget:
// every resident session carries an accounted byte estimate
// (viewseeker.Seeker.MemoryBytes plus its journal mirror), the coldest
// idle sessions are evicted once the total exceeds Config.BudgetBytes,
// and an evicted session is rebuilt transparently on its next touch by
// replaying its journalled create + feedback records (bit-identical by
// the determinism contract, DESIGN.md §8). All methods are safe for
// concurrent use; the Handle returned by Acquire serialises the
// individual session exactly like the per-session mutex it replaces.
type Manager struct {
	cfg Config

	mu          sync.Mutex
	entries     map[string]*entry
	lru         *list.List // *entry values; front = coldest resident
	resident    int64      // accounted bytes of resident sessions
	rehydrating int        // in-flight journal replays

	// Metric handles; registered against a private registry until
	// Instrument re-points them, so they are never nil.
	mEvictions     *obs.Counter
	mRehydrations  *obs.Counter
	mShedCreate    *obs.Counter
	mShedRehydrate *obs.Counter
	mRehydrateSecs *obs.Histogram
	gResidentBytes *obs.Gauge
	gResident      *obs.Gauge
	gCold          *obs.Gauge
}

// entry is one session: its journal mirror (always resident — tens of
// bytes per label), and its in-RAM state (seeker), which eviction drops.
type entry struct {
	// mu serialises the session's operations; Acquire locks it for the
	// lifetime of the Handle, so handlers see the same one-writer view
	// the old per-session mutex gave them.
	mu sync.Mutex

	id    string
	log   store.SessionLog // create + feedback records: the journal pointer
	build BuildFunc
	// pinned entries are never evicted: sessions minted from a maintained
	// live-table state share offline state that advances with the table,
	// so journal replay could not rebuild them bit-identically.
	pinned bool

	// The fields below are guarded by the Manager's mu, except seeker,
	// which is additionally read/written under e.mu by the holder while
	// refs > 0 (eviction only touches entries with refs == 0, and refs is
	// guarded by m.mu, so the two writers never overlap).
	seeker *viewseeker.Seeker // nil while cold
	bytes  int64              // accounted estimate while resident
	refs   int                // in-flight Acquires; > 0 bars eviction
	elem   *list.Element      // LRU position; nil while cold
}

// NewManager returns a manager for the config.
func NewManager(cfg Config) *Manager {
	if cfg.HeadroomFraction <= 0 {
		cfg.HeadroomFraction = DefaultHeadroomFraction
	}
	if cfg.MaxRehydrations <= 0 {
		cfg.MaxRehydrations = DefaultMaxRehydrations
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	m := &Manager{
		cfg:     cfg,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}
	m.Instrument(obs.NewRegistry())
	return m
}

// Instrument registers the manager's metrics against reg: eviction,
// rehydration and shed counters, the rehydration latency histogram, and
// the resident-bytes / resident / cold gauges. Call once at wiring time.
func (m *Manager) Instrument(reg *obs.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mEvictions = reg.Counter("viewseeker_session_evictions_total")
	m.mRehydrations = reg.Counter("viewseeker_session_rehydrations_total")
	m.mShedCreate = reg.Counter(`viewseeker_session_shed_total{route="create"}`)
	m.mShedRehydrate = reg.Counter(`viewseeker_session_shed_total{route="rehydrate"}`)
	m.mRehydrateSecs = reg.Histogram("viewseeker_session_rehydration_seconds", obs.DurationBuckets)
	m.gResidentBytes = reg.Gauge("viewseeker_session_resident_bytes")
	m.gResident = reg.Gauge("viewseeker_session_resident")
	m.gCold = reg.Gauge("viewseeker_session_cold")
	m.updateGaugesLocked()
}

// BudgetBytes returns the configured budget (0 = unbudgeted).
func (m *Manager) BudgetBytes() int64 { return m.cfg.BudgetBytes }

// hardLimitLocked is the shed threshold: budget plus headroom.
func (m *Manager) hardLimitLocked() int64 {
	return m.cfg.BudgetBytes + int64(float64(m.cfg.BudgetBytes)*m.cfg.HeadroomFraction)
}

func (m *Manager) updateGaugesLocked() {
	m.gResidentBytes.Set(m.resident)
	m.gResident.Set(int64(m.lru.Len()))
	m.gCold.Set(int64(len(m.entries) - m.lru.Len()))
}

// evictLocked sheds idle resident sessions coldest-first until the
// accounted total is back under the budget (or nothing evictable
// remains), returning how many were dropped. The seeker (matrix, target,
// generator, estimator) is released to the collector; the journal mirror
// stays, so the next touch rehydrates.
func (m *Manager) evictLocked() int {
	if m.cfg.BudgetBytes <= 0 {
		return 0
	}
	evicted := 0
	for el := m.lru.Front(); el != nil && m.resident > m.cfg.BudgetBytes; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.refs > 0 || e.pinned {
			el = next
			continue
		}
		e.seeker = nil
		m.resident -= e.bytes
		e.bytes = 0
		m.lru.Remove(el)
		e.elem = nil
		m.mEvictions.Inc()
		evicted++
		el = next
	}
	if evicted > 0 {
		m.updateGaugesLocked()
	}
	return evicted
}

// overloadedLocked evaluates the shed condition after an eviction pass:
// the unevictable resident bytes still exceed the hard limit, or the
// rehydration backlog is full.
func (m *Manager) overloadedLocked() *Overload {
	if m.rehydrating >= m.cfg.MaxRehydrations {
		return &Overload{Reason: "rehydration backlog full", RetryAfter: m.cfg.RetryAfter}
	}
	if m.cfg.BudgetBytes > 0 && m.resident > m.hardLimitLocked() {
		return &Overload{Reason: "session memory budget exhausted", RetryAfter: m.cfg.RetryAfter}
	}
	return nil
}

// AdmitNew is the admission check for creating a session, run before the
// offline phase is paid: it evicts idle sessions first, then refuses with
// *Overload when the remaining (in-flight, unevictable) resident bytes
// still exceed the hard limit or the rehydration backlog is full.
func (m *Manager) AdmitNew() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictLocked()
	if ov := m.overloadedLocked(); ov != nil {
		m.mShedCreate.Inc()
		return ov
	}
	return nil
}

// Put registers a freshly built resident session under id, reporting
// false when the id is already taken (the caller picks another). create
// must be the session's journalled create record; build is the
// rehydration closure; pinned sessions are never evicted. Registration
// may push the total over budget, in which case older idle sessions are
// evicted immediately — and at a budget smaller than one session, the new
// session itself may be dropped the moment it goes idle.
func (m *Manager) Put(id string, create store.Record, build BuildFunc, sk *viewseeker.Seeker, pinned bool) bool {
	bytes := sk.MemoryBytes() + logBytes(store.SessionLog{Create: create})
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, taken := m.entries[id]; taken {
		return false
	}
	e := &entry{id: id, log: store.SessionLog{Create: create}, build: build, pinned: pinned, seeker: sk, bytes: bytes}
	m.entries[id] = e
	e.elem = m.lru.PushBack(e)
	m.resident += bytes
	m.evictLocked()
	m.updateGaugesLocked()
	return true
}

// Index registers a cold session: the journal mirror and rehydration
// closure only, no in-RAM state. This is the lazy-restore path — a large
// journal indexes in O(records) without paying a single offline phase;
// each session rebuilds on its first touch.
func (m *Manager) Index(id string, log store.SessionLog, build BuildFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[id] = &entry{id: id, log: log, build: build}
	m.updateGaugesLocked()
}

// Handle is an acquired session: the session's operations are serialised
// for as long as the handle is held. Release it exactly once.
type Handle struct {
	m *Manager
	e *entry
}

// Acquire locks the session for the caller, rehydrating it first when it
// was evicted (or indexed cold): the build closure reconstructs the
// offline state through the result cache and the journalled labels are
// replayed — bit-identical to the unevicted session by the determinism
// contract. Errors: ErrNotFound for unknown ids; *Overload when the
// budget is hot or the rehydration backlog is full (the caller answers
// 429); the context's error when ctx dies mid-rebuild (the entry stays
// cold, a retry rehydrates); any build/replay error otherwise.
func (m *Manager) Acquire(ctx context.Context, id string) (*Handle, error) {
	m.mu.Lock()
	e := m.entries[id]
	if e == nil {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	e.refs++
	if e.elem != nil {
		m.lru.MoveToBack(e.elem)
	}
	m.mu.Unlock()

	e.mu.Lock()
	if e.seeker != nil {
		return &Handle{m: m, e: e}, nil
	}
	if err := m.rehydrate(ctx, e); err != nil {
		e.mu.Unlock()
		m.release(e)
		return nil, err
	}
	return &Handle{m: m, e: e}, nil
}

// rehydrate rebuilds e's seeker under e.mu (held by the caller): replay
// of a session is serialised against its own requests exactly like any
// other operation on it.
func (m *Manager) rehydrate(ctx context.Context, e *entry) error {
	m.mu.Lock()
	m.evictLocked()
	if ov := m.overloadedLocked(); ov != nil {
		m.mShedRehydrate.Inc()
		m.mu.Unlock()
		return ov
	}
	m.rehydrating++
	m.mu.Unlock()
	start := time.Now()
	sk, err := e.build(ctx, e.log.Create)
	if err == nil {
		for i, fb := range e.log.Feedback {
			if ferr := sk.Feedback(fb.View, fb.Label); ferr != nil {
				err = fmt.Errorf("replaying label %d: %w", i, ferr)
				break
			}
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rehydrating--
	if err != nil {
		// The entry stays cold: a cancelled rebuild retries on the next
		// touch, and a genuinely broken log keeps failing loudly instead
		// of being silently dropped.
		return err
	}
	e.seeker = sk
	e.bytes = sk.MemoryBytes() + logBytes(e.log)
	m.resident += e.bytes
	e.elem = m.lru.PushBack(e)
	m.mRehydrations.Inc()
	m.mRehydrateSecs.ObserveDuration(time.Since(start))
	m.evictLocked()
	m.updateGaugesLocked()
	return nil
}

// release drops one Acquire reference.
func (m *Manager) release(e *entry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e.refs--
	// The entry just went idle: if a burst pushed the total over budget
	// while it was unevictable, settle now.
	if e.refs == 0 {
		m.evictLocked()
		m.updateGaugesLocked()
	}
}

// Seeker returns the resident seeker (never nil while the handle is held).
func (h *Handle) Seeker() *viewseeker.Seeker { return h.e.seeker }

// Create returns the session's journalled create record.
func (h *Handle) Create() store.Record { return h.e.log.Create }

// RecordFeedback mirrors one journalled feedback record into the entry's
// replay log — the write that makes a later eviction transparent — and
// re-accounts the session's bytes (feedback grows the estimator state and
// may have materialised generator scans).
func (h *Handle) RecordFeedback(view int, label float64) {
	e := h.e
	e.log.Feedback = append(e.log.Feedback, store.Record{
		Op: store.OpFeedback, Session: e.id, View: view, Label: label,
	})
	bytes := e.seeker.MemoryBytes() + logBytes(e.log)
	h.m.mu.Lock()
	h.m.resident += bytes - e.bytes
	e.bytes = bytes
	h.m.evictLocked()
	h.m.updateGaugesLocked()
	h.m.mu.Unlock()
}

// Release unlocks the session and drops the acquire reference.
func (h *Handle) Release() {
	h.e.mu.Unlock()
	h.m.release(h.e)
}

// Delete removes a session (resident or cold), reporting whether it
// existed. A session currently serving a request is removed from the
// index immediately; its in-flight handle stays valid until released.
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	if !ok {
		return false
	}
	delete(m.entries, id)
	if e.elem != nil {
		m.lru.Remove(e.elem)
		m.resident -= e.bytes
		e.elem = nil
	}
	m.updateGaugesLocked()
	return true
}

// Has reports whether id is registered (resident or cold).
func (m *Manager) Has(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.entries[id] != nil
}

// EvictIdle drops every idle, unpinned resident session regardless of the
// budget, returning how many were evicted — the operator/test hook behind
// Server.EvictIdleSessions and the bit-identity harness in cmd/bench.
func (m *Manager) EvictIdle() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	evicted := 0
	for el := m.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.refs == 0 && !e.pinned {
			e.seeker = nil
			m.resident -= e.bytes
			e.bytes = 0
			m.lru.Remove(el)
			e.elem = nil
			m.mEvictions.Inc()
			evicted++
		}
		el = next
	}
	if evicted > 0 {
		m.updateGaugesLocked()
	}
	return evicted
}

// Stats is the manager's state snapshot for GET /healthz.
type Stats struct {
	// BudgetBytes is the configured budget (0 = unbudgeted).
	BudgetBytes int64 `json:"budgetBytes"`
	// ResidentBytes is the accounted total across resident sessions.
	ResidentBytes int64 `json:"residentBytes"`
	// Resident / Cold split the registered sessions by whether their
	// in-RAM state is materialised.
	Resident int `json:"resident"`
	Cold     int `json:"cold"`
	// State is the admission-control state: "accepting" (under budget),
	// "evicting" (over budget, eviction keeping up), or "shedding" (new
	// sessions and rehydrations are refused with 429).
	State string `json:"state"`
	// Lifetime counters, mirroring the /metricz series of the same names.
	Evictions    int64 `json:"evictions"`
	Rehydrations int64 `json:"rehydrations"`
	Shed         int64 `json:"shed"`
}

// Stats snapshots the manager.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		BudgetBytes:   m.cfg.BudgetBytes,
		ResidentBytes: m.resident,
		Resident:      m.lru.Len(),
		Cold:          len(m.entries) - m.lru.Len(),
		State:         "accepting",
		Evictions:     m.mEvictions.Value(),
		Rehydrations:  m.mRehydrations.Value(),
		Shed:          m.mShedCreate.Value() + m.mShedRehydrate.Value(),
	}
	if m.overloadedLocked() != nil {
		st.State = "shedding"
	} else if m.cfg.BudgetBytes > 0 && m.resident > m.cfg.BudgetBytes {
		st.State = "evicting"
	}
	return st
}

// logBytes estimates the resident cost of a session's journal mirror, so
// long conversations account for their label history too.
func logBytes(log store.SessionLog) int64 {
	return recordBytes(log.Create) + int64(len(log.Feedback))*recordBytes(store.Record{})
}

func recordBytes(rec store.Record) int64 {
	const structBytes = 7*16 + 5*8 // 7 string headers' worth of fields + numeric fields, rounded up
	return structBytes + int64(len(rec.Op)+len(rec.Session)+len(rec.Table)+len(rec.Query)+len(rec.Strategy))
}
