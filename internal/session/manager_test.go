package session

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"viewseeker"
	"viewseeker/internal/dataset"
	"viewseeker/internal/obs"
	"viewseeker/internal/store"
)

var (
	tableOnce sync.Once
	testTable *viewseeker.Table
)

func diab(t *testing.T) *viewseeker.Table {
	t.Helper()
	tableOnce.Do(func() {
		testTable = dataset.GenerateDIAB(dataset.DIABConfig{Rows: 800, Seed: 51})
	})
	return testTable
}

// buildFrom is the test rehydration closure: a cold rebuild from the
// journalled create record, exactly like the server's.
func buildFrom(table *viewseeker.Table) BuildFunc {
	return func(ctx context.Context, c store.Record) (*viewseeker.Seeker, error) {
		return viewseeker.NewCtx(ctx, table, c.Query, viewseeker.Options{
			K: c.K, Alpha: c.Alpha, Strategy: c.Strategy, Seed: c.Seed, Workers: c.Workers,
		})
	}
}

func createRecord(id string) store.Record {
	return store.Record{
		Op: store.OpCreate, Session: id, Table: "diab",
		Query: dataset.DIABQuery, K: 3, Seed: 17,
	}
}

// putSession builds and registers one session, returning its create record.
func putSession(t *testing.T, m *Manager, table *viewseeker.Table, id string) store.Record {
	t.Helper()
	c := createRecord(id)
	sk, err := buildFrom(table)(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Put(id, c, buildFrom(table), sk, false) {
		t.Fatalf("Put(%q) refused: id taken", id)
	}
	return c
}

// TestEvictRehydrateBitIdentity is the core lifecycle contract: a session
// that is evicted and rehydrated between every step must behave
// identically — same top-k, same weights, same scores — to a twin that
// stayed resident the whole time.
func TestEvictRehydrateBitIdentity(t *testing.T) {
	table := diab(t)
	m := NewManager(Config{})

	putSession(t, m, table, "managed")
	control, err := buildFrom(table)(context.Background(), createRecord("managed"))
	if err != nil {
		t.Fatal(err)
	}

	labels := []struct {
		view  int
		label float64
	}{{4, 1}, {11, 0}, {42, 0.5}, {7, 1}, {19, 0}}

	for step, fb := range labels {
		// Evict before every touch: each feedback lands on a freshly
		// rehydrated seeker.
		if n := m.EvictIdle(); n != 1 {
			t.Fatalf("step %d: EvictIdle = %d, want 1", step, n)
		}
		h, err := m.Acquire(context.Background(), "managed")
		if err != nil {
			t.Fatalf("step %d: Acquire after eviction: %v", step, err)
		}
		if err := h.Seeker().Feedback(fb.view, fb.label); err != nil {
			t.Fatalf("step %d: feedback: %v", step, err)
		}
		h.RecordFeedback(fb.view, fb.label)
		if err := control.Feedback(fb.view, fb.label); err != nil {
			t.Fatal(err)
		}
		gotTop, wantTop := h.Seeker().TopK(), control.TopK()
		if !reflect.DeepEqual(gotTop, wantTop) {
			t.Fatalf("step %d: rehydrated top-k diverged:\n got %+v\nwant %+v", step, gotTop, wantTop)
		}
		gotW, gotB := h.Seeker().Weights()
		wantW, wantB := control.Weights()
		if gotB != wantB || !reflect.DeepEqual(gotW, wantW) {
			t.Fatalf("step %d: rehydrated weights diverged", step)
		}
		h.Release()
	}

	reg := obs.NewRegistry()
	m.Instrument(reg)
	snap := reg.Snapshot()
	if snap["viewseeker_session_resident"] != 1 || snap["viewseeker_session_cold"] != 0 {
		t.Errorf("gauges = %v", snap)
	}
}

// TestBudgetEviction checks the LRU loop: with a budget sized for roughly
// one session, registering several leaves the accounted total under the
// budget and only the hottest resident.
func TestBudgetEviction(t *testing.T) {
	table := diab(t)
	// Size the budget from a real session estimate.
	sk, err := buildFrom(table)(context.Background(), createRecord("sizer"))
	if err != nil {
		t.Fatal(err)
	}
	per := sk.MemoryBytes()
	m := NewManager(Config{BudgetBytes: per + per/2})
	reg := obs.NewRegistry()
	m.Instrument(reg)

	for i := 0; i < 4; i++ {
		putSession(t, m, table, fmt.Sprintf("s%d", i))
	}
	st := m.Stats()
	if st.ResidentBytes > m.BudgetBytes() {
		t.Fatalf("resident %d > budget %d after Put settles", st.ResidentBytes, m.BudgetBytes())
	}
	if st.Resident+st.Cold != 4 {
		t.Fatalf("stats = %+v, want 4 sessions total", st)
	}
	snap := reg.Snapshot()
	if snap["viewseeker_session_evictions_total"] < 3 {
		t.Errorf("evictions = %v, want >= 3", snap["viewseeker_session_evictions_total"])
	}
	if snap["viewseeker_session_resident_bytes"] != float64(st.ResidentBytes) {
		t.Errorf("gauge %v != stats %d", snap["viewseeker_session_resident_bytes"], st.ResidentBytes)
	}

	// The cold sessions are still reachable: touching one rehydrates it
	// (and the rehydration is itself accounted, evicting the previous
	// resident).
	h, err := m.Acquire(context.Background(), "s0")
	if err != nil {
		t.Fatalf("Acquire cold: %v", err)
	}
	if h.Seeker() == nil {
		t.Fatal("rehydrated handle has nil seeker")
	}
	h.Release()
	if v := reg.Snapshot()["viewseeker_session_rehydrations_total"]; v < 1 {
		t.Errorf("rehydrations = %v, want >= 1", v)
	}
}

// TestAdmissionShed checks the shedding state: when every resident
// session is busy (acquired) and the unevictable total exceeds the hard
// limit, AdmitNew and cold Acquires refuse with *Overload, and recover
// once the handles release.
func TestAdmissionShed(t *testing.T) {
	table := diab(t)
	sk, err := buildFrom(table)(context.Background(), createRecord("sizer"))
	if err != nil {
		t.Fatal(err)
	}
	per := sk.MemoryBytes()
	// Budget + headroom below two sessions, so two busy sessions trip the
	// hard limit.
	m := NewManager(Config{BudgetBytes: per, HeadroomFraction: 0.25, RetryAfter: 2 * time.Second})
	reg := obs.NewRegistry()
	m.Instrument(reg)

	putSession(t, m, table, "a")
	putSession(t, m, table, "b")
	// Index a cold session to probe the rehydration path.
	m.Index("cold", store.SessionLog{Create: createRecord("cold")}, buildFrom(table))

	ha, err := m.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := m.Acquire(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}

	var ov *Overload
	if err := m.AdmitNew(); !errors.As(err, &ov) {
		t.Fatalf("AdmitNew with busy set over limit = %v, want *Overload", err)
	}
	if ov.RetryAfter != 2*time.Second {
		t.Errorf("RetryAfter = %v", ov.RetryAfter)
	}
	if _, err := m.Acquire(context.Background(), "cold"); !errors.As(err, &ov) {
		t.Fatalf("cold Acquire under pressure = %v, want *Overload", err)
	}
	if st := m.Stats(); st.State != "shedding" {
		t.Errorf("state = %q, want shedding", st.State)
	}
	snap := reg.Snapshot()
	if snap[`viewseeker_session_shed_total{route="create"}`] != 1 ||
		snap[`viewseeker_session_shed_total{route="rehydrate"}`] != 1 {
		t.Errorf("shed counters = %v", snap)
	}

	ha.Release()
	hb.Release()
	// Idle again: eviction can make room, admission recovers.
	if err := m.AdmitNew(); err != nil {
		t.Fatalf("AdmitNew after release = %v", err)
	}
	if h, err := m.Acquire(context.Background(), "cold"); err != nil {
		t.Fatalf("cold Acquire after release = %v", err)
	} else {
		h.Release()
	}
}

// TestPinnedNeverEvicted: pinned sessions (maintained live-table state)
// survive both budget pressure and EvictIdle.
func TestPinnedNeverEvicted(t *testing.T) {
	table := diab(t)
	c := createRecord("pinned")
	sk, err := buildFrom(table)(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{BudgetBytes: 1}) // everything over budget
	if !m.Put("pinned", c, buildFrom(table), sk, true) {
		t.Fatal("Put refused")
	}
	if n := m.EvictIdle(); n != 0 {
		t.Fatalf("EvictIdle evicted pinned session (%d)", n)
	}
	h, err := m.Acquire(context.Background(), "pinned")
	if err != nil {
		t.Fatal(err)
	}
	if h.Seeker() != sk {
		t.Fatal("pinned session was rebuilt")
	}
	h.Release()
}

func TestDeleteAndUnknown(t *testing.T) {
	table := diab(t)
	m := NewManager(Config{})
	putSession(t, m, table, "gone")
	m.Index("cold", store.SessionLog{Create: createRecord("cold")}, buildFrom(table))

	if !m.Delete("gone") || !m.Delete("cold") {
		t.Fatal("Delete returned false for registered sessions")
	}
	if m.Delete("gone") {
		t.Fatal("double Delete returned true")
	}
	if m.Has("gone") || m.Has("cold") {
		t.Fatal("deleted sessions still registered")
	}
	if _, err := m.Acquire(context.Background(), "gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Acquire deleted = %v, want ErrNotFound", err)
	}
	if st := m.Stats(); st.Resident != 0 || st.Cold != 0 || st.ResidentBytes != 0 {
		t.Fatalf("stats after delete = %+v", st)
	}
}

// TestRehydrateErrorStaysCold: a failed rebuild (cancelled context) leaves
// the entry cold and retryable.
func TestRehydrateErrorStaysCold(t *testing.T) {
	table := diab(t)
	m := NewManager(Config{})
	m.Index("s", store.SessionLog{Create: createRecord("s")}, buildFrom(table))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Acquire(ctx, "s"); err == nil {
		t.Fatal("Acquire with cancelled ctx succeeded")
	}
	if st := m.Stats(); st.Cold != 1 || st.Resident != 0 {
		t.Fatalf("stats after failed rehydrate = %+v", st)
	}
	h, err := m.Acquire(context.Background(), "s")
	if err != nil {
		t.Fatalf("retry after failed rehydrate: %v", err)
	}
	h.Release()
}

// TestConcurrentAcquire hammers one manager from many goroutines with a
// tiny budget: meant for -race; correctness checks are that every
// operation either succeeds or sheds, never corrupts.
func TestConcurrentAcquire(t *testing.T) {
	table := diab(t)
	sk, err := buildFrom(table)(context.Background(), createRecord("sizer"))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{BudgetBytes: sk.MemoryBytes() * 2, MaxRehydrations: 2})
	for i := 0; i < 4; i++ {
		putSession(t, m, table, fmt.Sprintf("s%d", i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", g%4)
			for i := 0; i < 10; i++ {
				h, err := m.Acquire(context.Background(), id)
				if err != nil {
					var ov *Overload
					if !errors.As(err, &ov) {
						t.Errorf("Acquire(%s) = %v", id, err)
						return
					}
					continue
				}
				_ = h.Seeker().TopK()
				h.Release()
			}
		}(g)
	}
	wg.Wait()
	if st := m.Stats(); st.Resident+st.Cold != 4 {
		t.Fatalf("stats = %+v", st)
	}
}
