// Package session implements the memory-budgeted session lifecycle
// behind the HTTP server (DESIGN.md §16): each interactive session is
// registered with an accounted byte estimate and a rehydration closure,
// the coldest idle sessions are evicted once the accounted total exceeds
// the -session-budget-bytes budget, and an evicted session is rebuilt
// transparently on its next touch by replaying its journalled create and
// feedback records through the offline-result cache — bit-identical to
// the unevicted session by the determinism contract (DESIGN.md §8).
// When eviction cannot keep up (every resident session is pinned or
// mid-request and the total still exceeds budget × (1 + headroom)), or
// the rehydration backlog is full, the manager refuses new work with
// *Overload, which the server maps to 429 + Retry-After.
package session
