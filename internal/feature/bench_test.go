package feature

import (
	"math/rand"
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/view"
)

// benchGenerator builds a view space big enough that the fill dominates:
// two dimensions × {16, 64} bins × 3 measures × 5 aggregates, over a
// pre-warmed generator so every benchmark iteration times the post-scan
// feature fill, not the layout scans.
func benchGenerator(b *testing.B) *view.Generator {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "cat", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "num", Kind: dataset.KindFloat, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m1", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "m2", Kind: dataset.KindInt, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "m3", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	ref := dataset.NewTable("ref", schema)
	for i := 0; i < 20000; i++ {
		m1 := dataset.Float(rng.NormFloat64() * 5)
		if rng.Intn(9) == 0 {
			m1 = dataset.Null
		}
		ref.MustAppendRow(
			dataset.StringVal(string(rune('a'+rng.Intn(12)))),
			dataset.Float(rng.Float64()*50),
			m1,
			dataset.Int(int64(rng.Intn(40))),
			dataset.Float(rng.NormFloat64()*3+100),
		)
	}
	var sel []int
	for i := 0; i < ref.NumRows(); i += 7 {
		sel = append(sel, i)
	}
	tgt := ref.Subset("tgt", sel)
	g, err := view.NewGenerator(ref, tgt, view.SpaceConfig{BinCounts: []int{16, 64}})
	if err != nil {
		b.Fatal(err)
	}
	if err := g.Warm(0); err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkMatrixFill is the layout-block benchmark: the whole view
// space's feature rows computed from warm layout statistics, block kernel
// versus the per-pair oracle path, sequentially so the ratio measures the
// kernels rather than scheduling. The acceptance floor for the block
// kernel is ≥ 3× over per-pair.
func BenchmarkMatrixFill(b *testing.B) {
	g := benchGenerator(b)
	run := func(b *testing.B, reg *Registry) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			m, err := ComputeWorkers(g, reg, 1)
			if err != nil {
				b.Fatal(err)
			}
			if m.Len() == 0 {
				b.Fatal("empty matrix")
			}
		}
	}
	b.Run("block", func(b *testing.B) { run(b, StandardRegistry()) })
	b.Run("perpair", func(b *testing.B) { run(b, perPairRegistry()) })
}
