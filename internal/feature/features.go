package feature

import (
	"fmt"

	"viewseeker/internal/metric"
	"viewseeker/internal/view"
)

// Canonical names of the eight standard utility features, in their fixed
// order. Weight vectors (Eq. 4) index features in this order.
const (
	KL        = "KL"
	EMD       = "EMD"
	L1        = "L1"
	L2        = "L2"
	MaxDiff   = "MAX_DIFF"
	Usability = "USABILITY"
	Accuracy  = "ACCURACY"
	PValue    = "P_VALUE"
)

// Feature is one utility component: a named function of a view pair.
type Feature struct {
	Name    string
	Compute func(p *view.Pair) (float64, error)
}

// Registry is an ordered, name-unique collection of features.
type Registry struct {
	feats []Feature
	index map[string]int
	// stdPrefix marks registries whose first eight features are exactly
	// the standard eight of StandardRegistry, in order — the condition for
	// the layout-block fast path (see block.go). Only StandardRegistry
	// sets it; registries merely naming a feature "KL" do not qualify, so
	// custom features can never be silently replaced by the block kernel.
	// Add only appends, so registries built on top of StandardRegistry
	// (ExtendedRegistry, AddQuadratic) keep the prefix.
	stdPrefix bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{index: make(map[string]int)} }

// StandardRegistry returns the paper's eight utility features: the five
// deviation measures between target and reference distributions, plus
// Usability, Accuracy and the p-value score.
func StandardRegistry() *Registry {
	r := NewRegistry()
	dist := func(f func(p, q []float64) (float64, error)) func(*view.Pair) (float64, error) {
		return func(p *view.Pair) (float64, error) {
			return f(p.Target.Distribution(), p.Reference.Distribution())
		}
	}
	for _, f := range []Feature{
		{KL, dist(metric.KLDivergence)},
		{EMD, dist(metric.EMD)},
		{L1, dist(metric.L1)},
		{L2, dist(metric.L2)},
		{MaxDiff, dist(metric.MaxDiff)},
		{Usability, func(p *view.Pair) (float64, error) {
			return metric.Usability(p.Target.Bins())
		}},
		{Accuracy, func(p *view.Pair) (float64, error) {
			return metric.Accuracy(p.Target.Counts, p.Target.Sums, p.Target.SumSqs, p.Target.Shift)
		}},
		{PValue, func(p *view.Pair) (float64, error) {
			return metric.PValueScore(p.Target.Counts, p.Reference.Distribution())
		}},
	} {
		if err := r.Add(f); err != nil {
			panic(err) // unreachable: names are unique by construction
		}
	}
	r.stdPrefix = true
	return r
}

// Canonical names of the optional extended deviation features.
const (
	JS        = "JS"
	Hellinger = "HELLINGER"
	ChiSqDist = "CHI2_DIST"
)

// ExtendedRegistry returns the standard eight features plus the optional
// deviation measures from the wider literature: Jensen–Shannon divergence,
// Hellinger distance and the symmetric χ² distance. The ideal utility
// functions of Table 2 never reference these, so the paper's experiments
// are unaffected; they exist for users whose notion of "interesting"
// matches a different geometry.
func ExtendedRegistry() *Registry {
	r := StandardRegistry()
	dist := func(f func(p, q []float64) (float64, error)) func(*view.Pair) (float64, error) {
		return func(p *view.Pair) (float64, error) {
			return f(p.Target.Distribution(), p.Reference.Distribution())
		}
	}
	for _, f := range []Feature{
		{JS, dist(metric.JensenShannon)},
		{Hellinger, dist(metric.Hellinger)},
		{ChiSqDist, dist(metric.ChiSquareDistance)},
	} {
		if err := r.Add(f); err != nil {
			panic(err) // unreachable: names are unique by construction
		}
	}
	return r
}

// TrendDiff returns an optional utility feature for line-chart-style
// exploration: the absolute difference between the normalised linear
// trend slopes of the target and reference series. Analysts hunting for
// "the subset trends up where the population trends down" register it via
// Registry.Add (it is not part of the paper's standard eight).
func TrendDiff() Feature {
	return Feature{
		Name: "TREND_DIFF",
		Compute: func(p *view.Pair) (float64, error) {
			d := p.Target.TrendSlope() - p.Reference.TrendSlope()
			if d < 0 {
				d = -d
			}
			return d, nil
		},
	}
}

// AddQuadratic extends a registry with the pairwise products of its
// current features (including squares), named "A*B". A linear estimator
// over the extended space captures multiplicative utility functions —
// e.g. u* = EMD·KL — that the paper's linear composition (Eq. 4) cannot.
// Call it after all base features are registered.
func AddQuadratic(r *Registry) error {
	base := make([]Feature, len(r.feats))
	copy(base, r.feats)
	for i := 0; i < len(base); i++ {
		for j := i; j < len(base); j++ {
			fi, fj := base[i], base[j]
			err := r.Add(Feature{
				Name: fi.Name + "*" + fj.Name,
				Compute: func(p *view.Pair) (float64, error) {
					a, err := fi.Compute(p)
					if err != nil {
						return 0, err
					}
					b, err := fj.Compute(p)
					if err != nil {
						return 0, err
					}
					return a * b, nil
				},
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Add appends a feature. Names must be unique and non-empty.
func (r *Registry) Add(f Feature) error {
	if f.Name == "" || f.Compute == nil {
		return fmt.Errorf("feature: feature needs a name and a compute function")
	}
	if _, dup := r.index[f.Name]; dup {
		return fmt.Errorf("feature: duplicate feature %q", f.Name)
	}
	r.index[f.Name] = len(r.feats)
	r.feats = append(r.feats, f)
	return nil
}

// Len returns the number of features.
func (r *Registry) Len() int { return len(r.feats) }

// Names returns the feature names in order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.feats))
	for i, f := range r.feats {
		out[i] = f.Name
	}
	return out
}

// Index returns the position of a named feature, or -1.
func (r *Registry) Index(name string) int {
	if i, ok := r.index[name]; ok {
		return i
	}
	return -1
}

// Vector computes all features for one pair, in registry order.
func (r *Registry) Vector(p *view.Pair) ([]float64, error) {
	out := make([]float64, len(r.feats))
	for i, f := range r.feats {
		v, err := f.Compute(p)
		if err != nil {
			return nil, fmt.Errorf("feature: computing %s for %s: %w", f.Name, p.Spec, err)
		}
		out[i] = v
	}
	return out, nil
}
