package feature

import (
	"math/rand"
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/view"
)

// TestMatrixMatchesReferenceKernels pins the offline phase's output to the
// retained row-at-a-time reference scan: the feature matrix computed
// through the columnar kernels (exact and α-sampled) must be bit-identical
// to vectors assembled from view.CollectStatsReference over the same
// layouts. A kernel regression that changes any accumulator by one ULP
// fails here.
func TestMatrixMatchesReferenceKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "cat", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "num", Kind: dataset.KindFloat, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m1", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "m2", Kind: dataset.KindInt, Role: dataset.RoleMeasure},
	)
	ref := dataset.NewTable("ref", schema)
	for i := 0; i < 600; i++ {
		m1 := dataset.Float(rng.NormFloat64() * 5)
		if rng.Intn(9) == 0 {
			m1 = dataset.Null
		}
		ref.MustAppendRow(
			dataset.StringVal(string(rune('a'+rng.Intn(5)))),
			dataset.Float(rng.Float64()*50),
			m1,
			dataset.Int(int64(rng.Intn(40))),
		)
	}
	var sel []int
	for i := 0; i < ref.NumRows(); i += 6 {
		sel = append(sel, i)
	}
	tgt := ref.Subset("tgt", sel)
	g, err := view.NewGenerator(ref, tgt, view.SpaceConfig{BinCounts: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	reg := StandardRegistry()
	measures := ref.Schema.Measures()

	referenceVector := func(s view.Spec, refRows []int) []float64 {
		t.Helper()
		layout := g.Layout(s)
		rs, err := view.CollectStatsReference(ref, layout, measures, refRows)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := view.CollectStatsReference(tgt, layout, measures, nil)
		if err != nil {
			t.Fatal(err)
		}
		rh, err := rs.Histogram(s.Measure, s.Agg)
		if err != nil {
			t.Fatal(err)
		}
		th, err := ts.Histogram(s.Measure, s.Agg)
		if err != nil {
			t.Fatal(err)
		}
		vec, err := reg.Vector(&view.Pair{Spec: s, Target: th, Reference: rh})
		if err != nil {
			t.Fatal(err)
		}
		return vec
	}

	exact, err := Compute(g, reg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range exact.Specs {
		want := referenceVector(s, nil)
		for j := range want {
			if exact.Rows[i][j] != want[j] {
				t.Fatalf("exact matrix %s feature %q: kernel %v != reference %v",
					s, exact.Names[j], exact.Rows[i][j], want[j])
			}
		}
	}

	const alpha = 0.2
	partial, err := ComputePartial(g, reg, alpha)
	if err != nil {
		t.Fatal(err)
	}
	sampleRows := ref.SampleRows(alpha)
	for i, s := range partial.Specs {
		want := referenceVector(s, sampleRows)
		for j := range want {
			if partial.Rows[i][j] != want[j] {
				t.Fatalf("partial matrix %s feature %q: kernel %v != reference %v",
					s, partial.Names[j], partial.Rows[i][j], want[j])
			}
		}
	}
}
