package feature

import (
	"math"
	"math/rand"
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/view"
)

// perPairRegistry returns the standard eight with the block fast path
// disabled: computations route through the retained per-pair closures,
// which are the bit-identity oracle for the block kernel.
func perPairRegistry() *Registry {
	r := StandardRegistry()
	r.stdPrefix = false
	return r
}

// randomTable builds a random reference/target pair with adversarial
// structure for the block kernel: null-heavy measures, constant measures
// (accuracy's lossless branch), categorical and numeric dimensions, and a
// target subset small enough to leave empty bins.
func randomTable(t *testing.T, rng *rand.Rand) (ref, tgt *dataset.Table) {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "cat", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "num", Kind: dataset.KindFloat, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m1", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "m2", Kind: dataset.KindInt, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "m3", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	ref = dataset.NewTable("ref", schema)
	rows := 120 + rng.Intn(400)
	cats := 2 + rng.Intn(6)
	nullRate := rng.Intn(6) // 0 = every 6th null … 5 = rare
	for i := 0; i < rows; i++ {
		m1 := dataset.Float(rng.NormFloat64()*5 + 1000) // large mean: shift matters
		if rng.Intn(2+nullRate) == 0 {
			m1 = dataset.Null
		}
		m3 := dataset.Float(42.0) // constant measure
		ref.MustAppendRow(
			dataset.StringVal(string(rune('a'+rng.Intn(cats)))),
			dataset.Float(rng.Float64()*50),
			m1,
			dataset.Int(int64(rng.Intn(40))),
			m3,
		)
	}
	var sel []int
	stride := 2 + rng.Intn(9)
	for i := 0; i < ref.NumRows(); i += stride {
		sel = append(sel, i)
	}
	tgt = ref.Subset("tgt", sel)
	return ref, tgt
}

// TestBlockFillMatchesPerPairQuick is the property test pinning the
// layout-block fast path bit-identical to the per-pair oracle: across
// random tables, null patterns and bin configurations, the exact and
// α-sampled matrices computed with the block kernel must match the
// per-pair registry float for float — including extended registries,
// whose extra columns ride the per-pair interface on top of a block fill.
func TestBlockFillMatchesPerPairQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 12; trial++ {
		ref, tgt := randomTable(t, rng)
		cfg := view.SpaceConfig{BinCounts: []int{2 + rng.Intn(4), 6 + rng.Intn(6)}}
		fastReg, slowReg := StandardRegistry(), perPairRegistry()
		if trial%3 == 2 {
			fastReg, slowReg = ExtendedRegistry(), ExtendedRegistry()
			slowReg.stdPrefix = false
		}
		compare := func(fast, slow *Matrix) {
			t.Helper()
			if len(fast.Rows) != len(slow.Rows) {
				t.Fatalf("trial %d: %d vs %d rows", trial, len(fast.Rows), len(slow.Rows))
			}
			for i := range fast.Rows {
				for j := range fast.Rows[i] {
					if math.Float64bits(fast.Rows[i][j]) != math.Float64bits(slow.Rows[i][j]) {
						t.Fatalf("trial %d: %s feature %q: block %v != per-pair %v",
							trial, fast.Specs[i], fast.Names[j], fast.Rows[i][j], slow.Rows[i][j])
					}
				}
			}
		}
		gFast, err := view.NewGenerator(ref, tgt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gSlow, err := view.NewGenerator(ref, tgt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := Compute(gFast, fastReg)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := Compute(gSlow, slowReg)
		if err != nil {
			t.Fatal(err)
		}
		compare(fast, slow)

		alpha := 0.1 + rng.Float64()*0.5
		fastP, err := ComputePartial(gFast, fastReg, alpha)
		if err != nil {
			t.Fatal(err)
		}
		slowP, err := ComputePartial(gSlow, slowReg, alpha)
		if err != nil {
			t.Fatal(err)
		}
		compare(fastP, slowP)
	}
}

// familiesOf groups row indices by (dimension, bins, measure).
func familiesOf(specs []view.Spec) [][]int {
	type key struct {
		dim     string
		bins    int
		measure string
	}
	order := make(map[key]int)
	var fams [][]int
	for i, s := range specs {
		k := key{s.Dimension, s.Bins, s.Measure}
		fi, ok := order[k]
		if !ok {
			fi = len(fams)
			order[k] = fi
			fams = append(fams, nil)
		}
		fams[fi] = append(fams[fi], i)
	}
	return fams
}

// TestRefreshFamilyMatchesRefreshRow pins the batched refresh to the
// per-row one: refreshing a family in one call must produce rows
// bit-identical to RefreshRow on each member, flip the same Exact flags,
// and bump the version counter.
func TestRefreshFamilyMatchesRefreshRow(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	ref, tgt := randomTable(t, rng)
	cfg := view.SpaceConfig{BinCounts: []int{3, 5}}
	build := func(reg *Registry) *Matrix {
		g, err := view.NewGenerator(ref, tgt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ComputePartial(g, reg, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	for name, regs := range map[string][2]*Registry{
		"standard": {StandardRegistry(), StandardRegistry()},
		"custom":   {perPairRegistry(), perPairRegistry()},
	} {
		fam, row := build(regs[0]), build(regs[1])
		if fam.Version() != 0 {
			t.Fatalf("%s: fresh matrix version %d", name, fam.Version())
		}
		for _, idxs := range familiesOf(fam.Specs) {
			before := fam.Version()
			if err := fam.RefreshFamily(idxs); err != nil {
				t.Fatal(err)
			}
			if fam.Version() != before+1 {
				t.Errorf("%s: family refresh bumped version %d → %d", name, before, fam.Version())
			}
			for _, i := range idxs {
				if err := row.RefreshRow(i); err != nil {
					t.Fatal(err)
				}
				if !fam.Exact[i] || !row.Exact[i] {
					t.Fatalf("%s: row %d not exact after refresh", name, i)
				}
				for j := range fam.Rows[i] {
					if math.Float64bits(fam.Rows[i][j]) != math.Float64bits(row.Rows[i][j]) {
						t.Fatalf("%s: %s feature %q: family %v != row %v",
							name, fam.Specs[i], fam.Names[j], fam.Rows[i][j], row.Rows[i][j])
					}
				}
			}
		}
		// Re-refreshing an exact family is a no-op and must not bump.
		v := fam.Version()
		if err := fam.RefreshFamily(familiesOf(fam.Specs)[0]); err != nil {
			t.Fatal(err)
		}
		if fam.Version() != v {
			t.Errorf("%s: no-op refresh bumped version", name)
		}
	}
}

func TestRefreshFamilyRejectsMixedFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	ref, tgt := randomTable(t, rng)
	g, err := view.NewGenerator(ref, tgt, view.SpaceConfig{BinCounts: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ComputePartial(g, StandardRegistry(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	fams := familiesOf(m.Specs)
	if len(fams) < 2 {
		t.Fatal("need at least two families")
	}
	mixed := []int{fams[0][0], fams[1][0]}
	if err := m.RefreshFamily(mixed); err == nil {
		t.Error("mixed-family refresh should fail")
	}
	if err := m.RefreshFamily([]int{-1}); err == nil {
		t.Error("out-of-range index should fail")
	}
	if err := m.RefreshFamily(nil); err != nil {
		t.Errorf("empty refresh: %v", err)
	}
}

// TestFeatureBlockAllocations pins the allocation count of a warm family
// refresh (in the style of TestBinIndexAllocations): with the family's
// statistics cached and rows already sized, RefreshFamily should cost a
// handful of bookkeeping allocations — scratch buffers, the measure-block
// map, the todo list — not the per-view Histogram/Distribution/vector
// allocations of the per-pair path, which grow with family size.
func TestFeatureBlockAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	ref, tgt := randomTable(t, rng)
	g, err := view.NewGenerator(ref, tgt, view.SpaceConfig{BinCounts: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ComputePartial(g, StandardRegistry(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	fam := familiesOf(m.Specs)[0]
	if len(fam) < 5 {
		t.Fatalf("family has %d views, want the full aggregate set", len(fam))
	}
	// Warm the focused stats caches and size the rows.
	if err := m.RefreshFamily(fam); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		for _, i := range fam {
			m.Exact[i] = false
		}
		if err := m.RefreshFamily(fam); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: todo slice + blockScratch's four buffers + the measure-block
	// map. The per-pair path costs >20 allocations per view, so a family
	// of 5+ blowing past this bound means the block path regressed.
	if allocs > 12 {
		t.Errorf("warm family refresh allocates %.0f times, want ≤ 12", allocs)
	}
}
