package feature

import (
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/view"
)

// diabGenerator builds a mid-size generator so the parallel pass has real
// fan-out (280 views, several layouts) rather than the tiny demo space.
func diabGenerator(t *testing.T) *view.Generator {
	t.Helper()
	ref := dataset.GenerateDIAB(dataset.DIABConfig{Rows: 3000, Seed: 11})
	var rows []int
	diag := ref.Column("diag_group").Strs
	for i := range diag {
		if diag[i] == "diabetes" {
			rows = append(rows, i)
		}
	}
	tgt := ref.Subset("tgt", rows)
	g, err := view.NewGenerator(ref, tgt, view.SpaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func assertIdentical(t *testing.T, a, b *Matrix, label string) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: %d vs %d rows", label, a.Len(), b.Len())
	}
	for i := range a.Rows {
		if a.Exact[i] != b.Exact[i] {
			t.Fatalf("%s: row %d exactness differs", label, i)
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("%s: row %d feature %d: %v vs %v (must be bit-identical)",
					label, i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

// TestComputeWorkersEquivalence asserts the offline phase is a pure
// function of the data: matrices computed at workers=1 and workers=8 are
// bit-identical, for both the exact and the α-sampled pass. Fresh
// generators per run keep the scan caches from masking differences.
func TestComputeWorkersEquivalence(t *testing.T) {
	reg := StandardRegistry()

	seq, err := ComputeWorkers(diabGenerator(t), reg, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ComputeWorkers(diabGenerator(t), reg, 8)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, seq, par, "exact")
	if !par.AllExact() {
		t.Error("parallel exact pass must mark every row exact")
	}

	seqP, err := ComputePartialWorkers(diabGenerator(t), reg, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	parP, err := ComputePartialWorkers(diabGenerator(t), reg, 0.25, 8)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, seqP, parP, "partial")
	if parP.AllExact() {
		t.Error("partial pass must mark rows inexact")
	}
}
