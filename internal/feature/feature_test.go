package feature

import (
	"math"
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/view"
)

func demoGenerator(t *testing.T) *view.Generator {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "cat", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "m2", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	ref := dataset.NewTable("ref", schema)
	for i := 0; i < 120; i++ {
		cat := string(rune('a' + i%4))
		ref.MustAppendRow(dataset.StringVal(cat), dataset.Float(float64(i)), dataset.Float(float64(i%7)))
	}
	var rows []int
	for i := 0; i < 120; i++ {
		if i%4 == 0 || (i%4 == 1 && i < 40) {
			rows = append(rows, i)
		}
	}
	tgt := ref.Subset("tgt", rows)
	g, err := view.NewGenerator(ref, tgt, view.SpaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStandardRegistry(t *testing.T) {
	r := StandardRegistry()
	if r.Len() != 8 {
		t.Fatalf("standard registry has %d features, want 8", r.Len())
	}
	want := []string{KL, EMD, L1, L2, MaxDiff, Usability, Accuracy, PValue}
	names := r.Names()
	for i, w := range want {
		if names[i] != w {
			t.Errorf("feature %d = %s, want %s", i, names[i], w)
		}
	}
	if r.Index(EMD) != 1 || r.Index("nope") != -1 {
		t.Error("Index lookup wrong")
	}
}

func TestRegistryAdd(t *testing.T) {
	r := NewRegistry()
	f := Feature{Name: "X", Compute: func(p *view.Pair) (float64, error) { return 1, nil }}
	if err := r.Add(f); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(f); err == nil {
		t.Error("duplicate name should fail")
	}
	if err := r.Add(Feature{Name: ""}); err == nil {
		t.Error("empty feature should fail")
	}
}

func TestVectorValues(t *testing.T) {
	g := demoGenerator(t)
	r := StandardRegistry()
	p, err := g.Pair(view.Spec{Dimension: "cat", Measure: "m", Agg: "COUNT"})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := r.Vector(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 8 {
		t.Fatalf("vector length = %d", len(vec))
	}
	// The target is skewed toward cat a/b, so deviations are positive.
	for i, name := range []string{KL, EMD, L1, L2, MaxDiff} {
		if vec[i] <= 0 {
			t.Errorf("%s = %v, want > 0 for a skewed target", name, vec[i])
		}
	}
	// Usability depends only on bin count (4 bins here).
	u := vec[r.Index(Usability)]
	if u <= 0 || u > 1 {
		t.Errorf("usability = %v", u)
	}
	// All features are finite.
	for i, v := range vec {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("feature %d (%s) = %v", i, r.Names()[i], v)
		}
	}
}

func TestComputeMatrix(t *testing.T) {
	g := demoGenerator(t)
	r := StandardRegistry()
	m, err := Compute(g, r)
	if err != nil {
		t.Fatal(err)
	}
	// 1 dim × 2 measures × 5 aggs = 10 views.
	if m.Len() != 10 {
		t.Fatalf("matrix rows = %d, want 10", m.Len())
	}
	if !m.AllExact() || m.ExactCount() != 10 {
		t.Error("full compute must be exact")
	}
	for _, row := range m.Rows {
		if len(row) != 8 {
			t.Fatalf("row width = %d", len(row))
		}
	}
}

func TestComputePartialAndRefresh(t *testing.T) {
	g := demoGenerator(t)
	r := StandardRegistry()
	exact, err := Compute(g, r)
	if err != nil {
		t.Fatal(err)
	}
	part, err := ComputePartial(g, r, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if part.AllExact() {
		t.Error("partial matrix must be marked inexact")
	}
	// Refresh one row: it must now match the exact matrix bit-for-bit.
	if err := part.RefreshRow(3); err != nil {
		t.Fatal(err)
	}
	if !part.Exact[3] {
		t.Error("refreshed row not marked exact")
	}
	for j := range part.Rows[3] {
		if part.Rows[3][j] != exact.Rows[3][j] {
			t.Errorf("refreshed row differs at %d: %v vs %v", j, part.Rows[3][j], exact.Rows[3][j])
		}
	}
	if part.ExactCount() != 1 {
		t.Errorf("exact count = %d", part.ExactCount())
	}
	// Refreshing again is a no-op, refreshing out of range errors.
	if err := part.RefreshRow(3); err != nil {
		t.Fatal(err)
	}
	if err := part.RefreshRow(-1); err == nil {
		t.Error("out-of-range refresh should fail")
	}
	if err := part.RefreshRow(99); err == nil {
		t.Error("out-of-range refresh should fail")
	}
}

func TestComputePartialAlphaValidation(t *testing.T) {
	g := demoGenerator(t)
	r := StandardRegistry()
	if _, err := ComputePartial(g, r, 0); err == nil {
		t.Error("alpha 0 should fail")
	}
	if _, err := ComputePartial(g, r, 1.5); err == nil {
		t.Error("alpha > 1 should fail")
	}
	m, err := ComputePartial(g, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.AllExact() {
		t.Error("alpha = 1 should compute exactly")
	}
}

func TestPartialApproximatesExact(t *testing.T) {
	// On a large uniform dataset, sampled deviation features land near the
	// exact values — the premise of the optimisation.
	ref := dataset.GenerateDIAB(dataset.DIABConfig{Rows: 20_000, Seed: 5})
	var rows []int
	diag := ref.Column("diag_group").Strs
	for i := range diag {
		if diag[i] == "diabetes" {
			rows = append(rows, i)
		}
	}
	tgt := ref.Subset("tgt", rows)
	g, err := view.NewGenerator(ref, tgt, view.SpaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r := StandardRegistry()
	exact, err := Compute(g, r)
	if err != nil {
		t.Fatal(err)
	}
	part, err := ComputePartial(g, r, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	emdIdx := r.Index(EMD)
	var sumAbs, sumRef float64
	for i := range exact.Rows {
		sumAbs += math.Abs(exact.Rows[i][emdIdx] - part.Rows[i][emdIdx])
		sumRef += math.Abs(exact.Rows[i][emdIdx])
	}
	if sumRef == 0 {
		t.Fatal("degenerate: exact EMD all zero")
	}
	if sumAbs/sumRef > 0.5 {
		t.Errorf("sampled EMD relative error = %.2f, want < 0.5", sumAbs/sumRef)
	}
}

func TestCustomFeature(t *testing.T) {
	g := demoGenerator(t)
	r := StandardRegistry()
	err := r.Add(Feature{
		Name: "TARGET_MASS",
		Compute: func(p *view.Pair) (float64, error) {
			return p.Target.TotalCount(), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compute(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rows[0]) != 9 {
		t.Fatalf("row width = %d, want 9", len(m.Rows[0]))
	}
	if m.Rows[0][8] <= 0 {
		t.Errorf("custom feature = %v", m.Rows[0][8])
	}
}

func TestAddQuadratic(t *testing.T) {
	r := NewRegistry()
	mustAdd := func(f Feature) {
		if err := r.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(Feature{Name: "A", Compute: func(p *view.Pair) (float64, error) { return 2, nil }})
	mustAdd(Feature{Name: "B", Compute: func(p *view.Pair) (float64, error) { return 3, nil }})
	if err := AddQuadratic(r); err != nil {
		t.Fatal(err)
	}
	// 2 base + 3 products (A*A, A*B, B*B).
	if r.Len() != 5 {
		t.Fatalf("features = %d, want 5", r.Len())
	}
	g := demoGenerator(t)
	p, err := g.Pair(view.Spec{Dimension: "cat", Measure: "m", Agg: "COUNT"})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := r.Vector(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4, 6, 9}
	for i, w := range want {
		if vec[i] != w {
			t.Errorf("feature %d (%s) = %v, want %v", i, r.Names()[i], vec[i], w)
		}
	}
	// Calling twice duplicates names and must fail cleanly.
	if err := AddQuadratic(r); err == nil {
		t.Error("second AddQuadratic should fail on duplicate names")
	}
}

func TestQuadraticCapturesProductTarget(t *testing.T) {
	// u* = KL·EMD is not linear in the base features but is linear in the
	// quadratic expansion — the estimator must fit it exactly.
	g := demoGenerator(t)
	r := StandardRegistry()
	if err := AddQuadratic(r); err != nil {
		t.Fatal(err)
	}
	m, err := Compute(g, r)
	if err != nil {
		t.Fatal(err)
	}
	prodIdx := r.Index("KL*EMD")
	if prodIdx < 0 {
		t.Fatal("missing KL*EMD feature")
	}
	kl, emd := r.Index("KL"), r.Index("EMD")
	for i, row := range m.Rows {
		if diff := row[prodIdx] - row[kl]*row[emd]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("row %d product feature mismatch", i)
		}
	}
}

func TestExtendedRegistry(t *testing.T) {
	r := ExtendedRegistry()
	if r.Len() != 11 {
		t.Fatalf("extended registry has %d features, want 11", r.Len())
	}
	for _, name := range []string{JS, Hellinger, ChiSqDist} {
		if r.Index(name) < 0 {
			t.Errorf("missing extended feature %s", name)
		}
	}
	g := demoGenerator(t)
	p, err := g.Pair(view.Spec{Dimension: "cat", Measure: "m", Agg: "COUNT"})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := r.Vector(p)
	if err != nil {
		t.Fatal(err)
	}
	// The skewed demo target must register on all three extra geometries.
	for _, name := range []string{JS, Hellinger, ChiSqDist} {
		if v := vec[r.Index(name)]; v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
}

func TestTrendDiffFeature(t *testing.T) {
	f := TrendDiff()
	if f.Name != "TREND_DIFF" {
		t.Fatalf("name = %q", f.Name)
	}
	mk := func(values []float64) *view.Histogram {
		return &view.Histogram{Labels: []string{"a", "b", "c"}, Values: values}
	}
	// Opposite trends: large diff. Same trend: zero.
	opposed := &view.Pair{
		Spec:      view.Spec{Dimension: "d", Measure: "m", Agg: "AVG"},
		Target:    mk([]float64{1, 2, 3}),
		Reference: mk([]float64{3, 2, 1}),
	}
	same := &view.Pair{
		Spec:      view.Spec{Dimension: "d", Measure: "m", Agg: "AVG"},
		Target:    mk([]float64{1, 2, 3}),
		Reference: mk([]float64{2, 4, 6}),
	}
	vOpposed, err := f.Compute(opposed)
	if err != nil {
		t.Fatal(err)
	}
	vSame, err := f.Compute(same)
	if err != nil {
		t.Fatal(err)
	}
	if vOpposed <= vSame {
		t.Errorf("opposed trends %v should exceed same trends %v", vOpposed, vSame)
	}
	if vSame > 1e-9 {
		t.Errorf("identical normalised trends diff = %v, want ~0", vSame)
	}
}
