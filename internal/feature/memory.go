package feature

// MemoryBytes estimates the resident heap bytes of the matrix: the row
// bank (the dominant term — views × features float64s plus row headers),
// the spec table, exactness flags and feature names. Part of the
// per-session memory accounting behind the server's eviction budget
// (DESIGN.md §16); an estimate of the dominant allocations, not a heap
// census. Specs' string contents are counted; the generator and registry
// the matrix points at are accounted by their owners.
func (m *Matrix) MemoryBytes() int64 {
	var b int64
	for _, row := range m.Rows {
		b += 24 + int64(cap(row))*8 // slice header + values
	}
	b += int64(cap(m.Exact))
	for _, s := range m.Specs {
		// Three string headers + the int + the string contents.
		b += 3*16 + 8 + int64(len(s.Dimension)+len(s.Measure)+len(s.Agg))
	}
	for _, n := range m.Names {
		b += 16 + int64(len(n))
	}
	return b
}

// MemoryBytesShallow is MemoryBytes for a matrix whose row contents are
// shared read-only with another owner (sessions minted from a maintained
// offline state): it counts only the per-session row headers, exactness
// flags and spec/name tables, never the shared float banks.
func (m *Matrix) MemoryBytesShallow() int64 {
	var shared int64
	for _, row := range m.Rows {
		shared += int64(cap(row)) * 8
	}
	return m.MemoryBytes() - shared
}
