package feature

import (
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/view"
)

// TestMatrixDeltaMatchesRebuild: feature matrices assembled over a
// delta-extended generator (warm caches carried across an append) must be
// bit-identical to matrices computed from scratch over the appended tables
// under the same pinned layouts. A cold generator's ApplyAppend provides
// the scratch side: it pins the same layouts but has no cached artifacts,
// so every scan reruns in full.
func TestMatrixDeltaMatchesRebuild(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "cat", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "num", Kind: dataset.KindFloat, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
		dataset.ColumnDef{Name: "m2", Kind: dataset.KindInt, Role: dataset.RoleMeasure},
	)
	mkRow := func(i int) []dataset.Value {
		m := dataset.Value(dataset.Float(float64(i%13) * 1.5))
		if i%9 == 0 {
			m = dataset.Null
		}
		return []dataset.Value{
			dataset.StringVal(string(rune('a' + i%4))),
			dataset.Float(float64(i % 50)),
			m,
			dataset.Int(int64(i % 7)),
		}
	}
	base := dataset.NewTable("ref", schema)
	for i := 0; i < 200; i++ {
		base.MustAppendRow(mkRow(i)...)
	}
	var batch [][]dataset.Value
	for i := 200; i < 230; i++ {
		batch = append(batch, mkRow(i))
	}
	appended, err := base.WithAppended(batch)
	if err != nil {
		t.Fatal(err)
	}
	subset := func(tab *dataset.Table) *dataset.Table {
		col := tab.Column("m2")
		var sel []int
		for r := 0; r < tab.NumRows(); r++ {
			if v, ok := col.Float(r); ok && v >= 3 {
				sel = append(sel, r)
			}
		}
		return tab.Subset("dq", sel)
	}
	cfg := view.SpaceConfig{BinCounts: []int{3, 4}}
	reg := StandardRegistry()

	warm, err := view.NewGenerator(base, subset(base), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(warm, reg); err != nil { // fills every scan cache
		t.Fatal(err)
	}
	delta, err := warm.ApplyAppend(appended, subset(appended))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := view.NewGenerator(base, subset(base), cfg)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := cold.ApplyAppend(appended, subset(appended))
	if err != nil {
		t.Fatal(err)
	}

	mDelta, err := Compute(delta, reg)
	if err != nil {
		t.Fatal(err)
	}
	mScratch, err := Compute(scratch, reg)
	if err != nil {
		t.Fatal(err)
	}
	if mDelta.Len() != mScratch.Len() {
		t.Fatalf("matrix sizes differ: %d vs %d", mDelta.Len(), mScratch.Len())
	}
	for i := range mDelta.Rows {
		if mDelta.Specs[i] != mScratch.Specs[i] {
			t.Fatalf("row %d specs diverge: %v vs %v", i, mDelta.Specs[i], mScratch.Specs[i])
		}
		for j := range mDelta.Rows[i] {
			if mDelta.Rows[i][j] != mScratch.Rows[i][j] {
				t.Fatalf("view %v feature %s: delta %v != rebuild %v",
					mDelta.Specs[i], mDelta.Names[j], mDelta.Rows[i][j], mScratch.Rows[i][j])
			}
		}
	}
}
