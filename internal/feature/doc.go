// Package feature turns view pairs into utility-feature vectors — the
// internal representation ViewSeeker trains on. Each feature is one
// "utility component" from the literature (Section 3.1 of the paper lists
// the eight the prototype ships); users may register custom components
// for personalised analysis.
//
// # Contracts
//
// Cancellation (DESIGN.md §10): Compute and ComputePartial under a
// cancelled context return (nil, ctx.Err()) — never a partial matrix.
// Cancellation granularity is one layout block (all views sharing a
// (dimension, bins) layout) on the standard fast path, one view's
// feature row on the per-pair path; a retry under a live context is
// bit-identical to an uninterrupted run because the single-flight caches
// below only ever hold completed scans.
//
// Bit-identity: the matrix is a deterministic function of (table, query
// subset, view space, registry order, α-sample); worker count never
// changes a byte — rows are computed into disjoint slots. Registries
// whose leading features are exactly StandardRegistry's eight are filled
// layout-block-at-a-time through internal/metric's fused kernels
// (block.go); the per-pair path is retained for custom registries and as
// the bit-identity oracle the block path must match exactly. Rows from an
// α-sampled pass are flagged rough (Matrix.Exact[i] == false) and carry
// the contract that refinement may later rewrite them in place with the
// exact values (RefreshRow one view at a time, RefreshFamily one
// aggregate family per narrow scan); exact rows are final, and every
// refresh bumps Matrix.Version so row-derived caches can invalidate.
//
// Observability: computeMatrix records the warm and feature-pass phases
// as spans plus duration histograms against the context's obs registry;
// without one the pipeline is bit-identical to the uninstrumented path.
package feature
