package feature

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"viewseeker/internal/obs"
	"viewseeker/internal/par"
	"viewseeker/internal/view"
)

// Matrix holds the utility-feature vector of every view in the space,
// together with per-view exactness flags: a row computed from an α-sample
// is "rough" until the optimiser refreshes it against the full data.
type Matrix struct {
	Specs []view.Spec
	Names []string
	Rows  [][]float64
	Exact []bool

	gen      *view.Generator
	registry *Registry
	// version counts Rows mutations (RefreshRow/RefreshFamily). Consumers
	// that derive state from the rows — the seeker's whole-space scaler,
	// its refit sufficient statistics — key their caches on it.
	version atomic.Uint64
}

// Version returns the matrix's mutation counter: it increments every time
// a refresh rewrites rows, so row-derived caches can detect staleness
// without comparing row contents. Safe for concurrent use.
func (m *Matrix) Version() uint64 { return m.version.Load() }

// Compute builds the matrix over the full data: the unoptimised offline
// phase of ViewSeeker, parallelised over all CPUs. Use ComputeWorkers to
// control the fan-out explicitly.
func Compute(g *view.Generator, r *Registry) (*Matrix, error) {
	return ComputeWorkers(g, r, 0)
}

// ComputeWorkers is Compute with an explicit worker count: feature vectors
// (and the layout scans beneath them) fan out over at most workers
// goroutines. workers ≤ 0 selects runtime.NumCPU(); workers == 1 is the
// fully sequential path. The resulting matrix is bit-identical across
// worker counts — every row is a pure function of its view's scan
// statistics, which are computed single-threaded per layout. Custom
// features registered on r must be safe for concurrent use when
// workers != 1 (the standard eight are pure).
func ComputeWorkers(g *view.Generator, r *Registry, workers int) (*Matrix, error) {
	return ComputeWorkersCtx(context.Background(), g, r, workers)
}

// ComputeWorkersCtx is ComputeWorkers under a context. Cancellation is
// checked between work items — layout scans during warming, per-view
// feature vectors afterwards — never inside the row-level kernels, so the
// overhead is amortised per item and a cancelled offline pass stops within
// one item per worker. The partial matrix is discarded: the context's
// error is returned and no session is built.
func ComputeWorkersCtx(ctx context.Context, g *view.Generator, r *Registry, workers int) (*Matrix, error) {
	return computeMatrix(ctx, g, r, nil, true, workers)
}

// ComputePartial builds the matrix from a uniform α-sample of the
// reference table — the "rough" utility scores of the optimisation. The
// target subset DQ is always scanned exactly: it is a fraction of a
// percent of the data, so sampling it would add noise without saving
// meaningful work. Rows are marked inexact; RefreshRow upgrades them on
// demand. Like Compute it parallelises over all CPUs; see
// ComputePartialWorkers.
func ComputePartial(g *view.Generator, r *Registry, alpha float64) (*Matrix, error) {
	return ComputePartialWorkers(g, r, alpha, 0)
}

// ComputePartialWorkers is ComputePartial with an explicit worker count,
// with the same semantics and determinism guarantee as ComputeWorkers (the
// α-sample is a deterministic stride, so sampled matrices are also
// bit-identical across worker counts).
func ComputePartialWorkers(g *view.Generator, r *Registry, alpha float64, workers int) (*Matrix, error) {
	return ComputePartialWorkersCtx(context.Background(), g, r, alpha, workers)
}

// ComputePartialWorkersCtx is ComputePartialWorkers under a context, with
// ComputeWorkersCtx's cancellation semantics.
func ComputePartialWorkersCtx(ctx context.Context, g *view.Generator, r *Registry, alpha float64, workers int) (*Matrix, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("feature: alpha must be in (0, 1], got %g", alpha)
	}
	if alpha == 1 {
		return ComputeWorkersCtx(ctx, g, r, workers)
	}
	return computeMatrix(ctx, g, r, g.Ref.SampleRows(alpha), false, workers)
}

func computeMatrix(ctx context.Context, g *view.Generator, r *Registry, refRows []int, exact bool, workers int) (*Matrix, error) {
	workers = par.Resolve(workers)
	specs := g.Specs()
	m := &Matrix{
		Specs:    specs,
		Names:    r.Names(),
		Rows:     make([][]float64, len(specs)),
		Exact:    make([]bool, len(specs)),
		gen:      g,
		registry: r,
	}
	// Exact passes go through the generator's persistent caches so later
	// RefreshRow calls (a no-op here, but uniform) share the same scans;
	// sampled passes get run-scoped caches. Both warm their layout scans
	// concurrently first — full-data scans dominate the offline phase and
	// are independent per (table, layout) — then fan the per-view feature
	// vectors out over the same worker budget.
	reg := obs.RegistryFrom(ctx)
	warmCtx, warmSpan := obs.StartSpan(ctx, "offline.warm")
	warmStart := time.Now()
	pairOf, statsOf := g.Pair, g.LayoutStats
	if refRows != nil {
		run := g.NewSampledRun(refRows, nil)
		if err := run.WarmCtx(warmCtx, workers); err != nil {
			warmSpan.End()
			return nil, err
		}
		pairOf, statsOf = run.Pair, run.LayoutStats
	} else if err := g.WarmCtx(warmCtx, workers); err != nil {
		warmSpan.End()
		return nil, err
	}
	warmSpan.End()
	reg.Histogram("viewseeker_offline_warm_seconds", obs.DurationBuckets).
		ObserveDuration(time.Since(warmStart))

	featCtx, featSpan := obs.StartSpan(ctx, "offline.features")
	featStart := time.Now()
	var err error
	if r.stdPrefix {
		// Block fast path: one layout's views are filled together straight
		// from the layout statistics (see block.go), bit-identical to the
		// per-pair loop below. Cancellation granularity widens from one view
		// to one layout block. Each block's rows share one flat backing
		// array, cutting the per-view allocation to a slice header.
		groups := layoutGroups(specs)
		k := r.Len()
		err = par.ForEachCtx(featCtx, len(groups), workers, func(gi int) error {
			idxs := groups[gi]
			rs, ts, err := statsOf(specs[idxs[0]])
			if err != nil {
				return err
			}
			backing := make([]float64, len(idxs)*k)
			for j, i := range idxs {
				m.Rows[i] = backing[j*k : (j+1)*k : (j+1)*k]
				m.Exact[i] = exact
			}
			var sc blockScratch
			return r.fillBlockRows(rs, ts, specs, idxs, m.Rows, &sc)
		})
		reg.Counter("viewseeker_feature_block_fills_total").Add(int64(len(groups)))
	} else {
		err = par.ForEachCtx(featCtx, len(specs), workers, func(i int) error {
			p, err := pairOf(specs[i])
			if err != nil {
				return err
			}
			vec, err := r.Vector(p)
			if err != nil {
				return err
			}
			m.Rows[i] = vec
			m.Exact[i] = exact
			return nil
		})
	}
	featSpan.End()
	if err != nil {
		return nil, err
	}
	reg.Histogram("viewseeker_offline_features_seconds", obs.DurationBuckets).
		ObserveDuration(time.Since(featStart))
	reg.Counter("viewseeker_offline_views_total").Add(int64(len(specs)))
	return m, nil
}

// Rebuild reconstructs a Matrix from externally stored components — the
// offline-result cache's hit path. The generator may be nil only when
// every row is exact: RefreshRow never consults it then, whereas a partial
// matrix needs it for incremental refinement. The rows become the
// matrix's backing store (callers handing out shared data must copy
// first; the store layer clones on every Get).
func Rebuild(g *view.Generator, r *Registry, specs []view.Spec, rows [][]float64, exact []bool) (*Matrix, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("feature: rebuild needs a non-empty view space")
	}
	if len(rows) != len(specs) || len(exact) != len(specs) {
		return nil, fmt.Errorf("feature: rebuild shape mismatch: %d specs, %d rows, %d exact flags",
			len(specs), len(rows), len(exact))
	}
	names := r.Names()
	for i, row := range rows {
		if len(row) != len(names) {
			return nil, fmt.Errorf("feature: rebuild row %d has %d features, want %d", i, len(row), len(names))
		}
	}
	if g == nil {
		for i, e := range exact {
			if !e {
				return nil, fmt.Errorf("feature: rebuilding inexact row %d requires a generator", i)
			}
		}
	}
	return &Matrix{Specs: specs, Names: names, Rows: rows, Exact: exact, gen: g, registry: r}, nil
}

// Len returns the number of views.
func (m *Matrix) Len() int { return len(m.Rows) }

// AllExact reports whether every row has been computed on the full data.
func (m *Matrix) AllExact() bool {
	for _, e := range m.Exact {
		if !e {
			return false
		}
	}
	return true
}

// ExactCount returns how many rows are exact.
func (m *Matrix) ExactCount() int {
	n := 0
	for _, e := range m.Exact {
		if e {
			n++
		}
	}
	return n
}

// RefreshRow recomputes view i on the full data and marks it exact. It is
// a no-op for rows that are already exact. The refresh scans only the
// view's own measure (see view.PairFocused) so that the optimisation's
// pruning — never refreshing unpromising views — translates into real
// work saved.
func (m *Matrix) RefreshRow(i int) error {
	if i < 0 || i >= len(m.Rows) {
		return fmt.Errorf("feature: row %d out of range [0, %d)", i, len(m.Rows))
	}
	if m.Exact[i] {
		return nil
	}
	p, err := m.gen.PairFocused(m.Specs[i])
	if err != nil {
		return err
	}
	vec, err := m.registry.Vector(p)
	if err != nil {
		return err
	}
	m.Rows[i] = vec
	m.Exact[i] = true
	m.version.Add(1)
	return nil
}

// RefreshFamily recomputes the given views on the full data and marks
// them exact — RefreshRow batched over one (dimension, bins, measure)
// family. The family's statistics are fetched once with PairFocused's
// cost model (a cached all-measures scan, else one narrow single-measure
// scan) and rows are block-filled from them, so refining a whole family
// costs one scan plus the fused kernels instead of per-view Histogram
// assembly and closure dispatch. Rows are written in place when already
// sized, keeping the refresh allocation-free outside the scan (see
// TestFeatureBlockAllocations). Registries without the standard prefix
// fall back to per-view computation over the shared statistics.
// Already-exact rows are skipped; results are bit-identical to
// RefreshRow's.
func (m *Matrix) RefreshFamily(idxs []int) error {
	if len(idxs) == 0 {
		return nil
	}
	for _, i := range idxs {
		if i < 0 || i >= len(m.Rows) {
			return fmt.Errorf("feature: row %d out of range [0, %d)", i, len(m.Rows))
		}
	}
	first := m.Specs[idxs[0]]
	todo := make([]int, 0, len(idxs))
	for _, i := range idxs {
		s := m.Specs[i]
		if s.Dimension != first.Dimension || s.Bins != first.Bins || s.Measure != first.Measure {
			return fmt.Errorf("feature: family refresh mixes %s/%d/%s and %s/%d/%s",
				first.Dimension, first.Bins, first.Measure, s.Dimension, s.Bins, s.Measure)
		}
		if !m.Exact[i] {
			todo = append(todo, i)
		}
	}
	if len(todo) == 0 {
		return nil
	}
	rs, ts, err := m.gen.FamilyStats(m.Specs[todo[0]])
	if err != nil {
		return err
	}
	k := m.registry.Len()
	for _, i := range todo {
		if len(m.Rows[i]) != k {
			m.Rows[i] = make([]float64, k)
		}
	}
	if m.registry.stdPrefix {
		var sc blockScratch
		if err := m.registry.fillBlockRows(rs, ts, m.Specs, todo, m.Rows, &sc); err != nil {
			return err
		}
	} else {
		for _, i := range todo {
			if err := m.registry.vectorFromStats(m.Specs[i], rs, ts, m.Rows[i], 0); err != nil {
				return err
			}
		}
	}
	for _, i := range todo {
		m.Exact[i] = true
	}
	m.version.Add(1)
	return nil
}
