package feature

import (
	"fmt"
	"runtime"

	"viewseeker/internal/view"
)

// Matrix holds the utility-feature vector of every view in the space,
// together with per-view exactness flags: a row computed from an α-sample
// is "rough" until the optimiser refreshes it against the full data.
type Matrix struct {
	Specs []view.Spec
	Names []string
	Rows  [][]float64
	Exact []bool

	gen      *view.Generator
	registry *Registry
}

// Compute builds the matrix over the full data: the unoptimised offline
// phase of ViewSeeker.
func Compute(g *view.Generator, r *Registry) (*Matrix, error) {
	return computeMatrix(g, r, nil, true)
}

// ComputePartial builds the matrix from a uniform α-sample of the
// reference table — the "rough" utility scores of the optimisation. The
// target subset DQ is always scanned exactly: it is a fraction of a
// percent of the data, so sampling it would add noise without saving
// meaningful work. Rows are marked inexact; RefreshRow upgrades them on
// demand.
func ComputePartial(g *view.Generator, r *Registry, alpha float64) (*Matrix, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("feature: alpha must be in (0, 1], got %g", alpha)
	}
	if alpha == 1 {
		return Compute(g, r)
	}
	return computeMatrix(g, r, g.Ref.SampleRows(alpha), false)
}

func computeMatrix(g *view.Generator, r *Registry, refRows []int, exact bool) (*Matrix, error) {
	specs := g.Specs()
	m := &Matrix{
		Specs:    specs,
		Names:    r.Names(),
		Rows:     make([][]float64, len(specs)),
		Exact:    make([]bool, len(specs)),
		gen:      g,
		registry: r,
	}
	// Exact passes go through the generator's persistent caches so later
	// RefreshRow calls (a no-op here, but uniform) share the same scans —
	// warmed concurrently, since full-data layout scans dominate the
	// offline phase and are independent. Sampled passes get run-scoped
	// caches.
	pairOf := g.Pair
	if refRows != nil {
		pairOf = g.NewSampledRun(refRows, nil).Pair
	} else if err := g.Warm(runtime.NumCPU()); err != nil {
		return nil, err
	}
	for i, s := range specs {
		p, err := pairOf(s)
		if err != nil {
			return nil, err
		}
		vec, err := r.Vector(p)
		if err != nil {
			return nil, err
		}
		m.Rows[i] = vec
		m.Exact[i] = exact
	}
	return m, nil
}

// Len returns the number of views.
func (m *Matrix) Len() int { return len(m.Rows) }

// AllExact reports whether every row has been computed on the full data.
func (m *Matrix) AllExact() bool {
	for _, e := range m.Exact {
		if !e {
			return false
		}
	}
	return true
}

// ExactCount returns how many rows are exact.
func (m *Matrix) ExactCount() int {
	n := 0
	for _, e := range m.Exact {
		if e {
			n++
		}
	}
	return n
}

// RefreshRow recomputes view i on the full data and marks it exact. It is
// a no-op for rows that are already exact. The refresh scans only the
// view's own measure (see view.PairFocused) so that the optimisation's
// pruning — never refreshing unpromising views — translates into real
// work saved.
func (m *Matrix) RefreshRow(i int) error {
	if i < 0 || i >= len(m.Rows) {
		return fmt.Errorf("feature: row %d out of range [0, %d)", i, len(m.Rows))
	}
	if m.Exact[i] {
		return nil
	}
	p, err := m.gen.PairFocused(m.Specs[i])
	if err != nil {
		return err
	}
	vec, err := m.registry.Vector(p)
	if err != nil {
		return err
	}
	m.Rows[i] = vec
	m.Exact[i] = true
	return nil
}
