package feature

import (
	"fmt"

	"viewseeker/internal/metric"
	"viewseeker/internal/view"
)

// numStd is the length of the standard-eight feature prefix the block
// kernel computes directly from layout statistics.
const numStd = 8

// blockScratch holds the per-goroutine buffers one layout block reuses
// across its views: raw aggregate values and normalised distributions for
// both sides. Sized (and resized) to the layout's bin count.
type blockScratch struct {
	tgtVals, refVals []float64
	pDist, qDist     []float64
}

func (sc *blockScratch) resize(nb int) {
	if cap(sc.tgtVals) < nb {
		sc.tgtVals = make([]float64, nb)
		sc.refVals = make([]float64, nb)
		sc.pDist = make([]float64, nb)
		sc.qDist = make([]float64, nb)
	}
	sc.tgtVals = sc.tgtVals[:nb]
	sc.refVals = sc.refVals[:nb]
	sc.pDist = sc.pDist[:nb]
	sc.qDist = sc.qDist[:nb]
}

// measureBlock caches the per-measure constants of a layout block: the
// measure's stripe index on each side, its ACCURACY score (independent of
// the aggregate), and the target's total count for the χ² test.
type measureBlock struct {
	tmi, rmi int
	accuracy float64
	total    float64
}

// measureBlockFor computes one measure's block constants from the layout
// statistics, replaying the per-pair oracle's operation sequences: the
// accuracy from the target stripes and shift (metric.Accuracy on the same
// arrays a Histogram would copy), and the total as PValueScore's
// validating bin-order sum.
func measureBlockFor(rs, ts *view.Stats, measure string) (measureBlock, error) {
	mb := measureBlock{tmi: ts.MeasureIndex(measure), rmi: rs.MeasureIndex(measure)}
	if mb.tmi < 0 || mb.rmi < 0 {
		return mb, fmt.Errorf("feature: stats have no measure %q", measure)
	}
	nb := ts.Layout.NumBins()
	base := mb.tmi * nb
	counts := ts.Counts[base : base+nb]
	acc, err := metric.Accuracy(counts, ts.Sums[base:base+nb], ts.SumSqs[base:base+nb], ts.Shifts[mb.tmi])
	if err != nil {
		return mb, err
	}
	mb.accuracy = acc
	for _, c := range counts {
		if c < 0 {
			return mb, fmt.Errorf("metric: negative target count %g", c)
		}
		mb.total += c
	}
	return mb, nil
}

// fillBlockRows computes the feature rows of the given views — all drawn
// from one (dimension, bins) layout — directly from the layout's
// statistics, without materialising a Histogram or dispatching a closure
// per feature. Per-layout constants (USABILITY) and per-measure constants
// (ACCURACY, the target's total count) are computed once; per view only
// the aggregate extraction, one fused normalise+deviation pass, and the
// χ² score remain. Every arithmetic sequence matches the per-pair
// registry path, so rows are bit-identical to Registry.Vector — the
// retained oracle.
//
// rows[i] must be pre-sized to the registry's length; the standard-eight
// prefix is written in place. Registries longer than the standard eight
// get their extra columns from per-pair computation over a Histogram pair
// assembled from the same statistics.
func (r *Registry) fillBlockRows(rs, ts *view.Stats,
	specs []view.Spec, idxs []int, rows [][]float64, sc *blockScratch) error {
	nb := ts.Layout.NumBins()
	sc.resize(nb)
	usability, err := metric.Usability(nb)
	if err != nil {
		return fmt.Errorf("feature: computing %s for %s: %w", Usability, specs[idxs[0]], err)
	}
	blocks := make(map[string]measureBlock, len(ts.Measures))
	for _, i := range idxs {
		s := specs[i]
		mb, ok := blocks[s.Measure]
		if !ok {
			if mb, err = measureBlockFor(rs, ts, s.Measure); err != nil {
				return fmt.Errorf("feature: computing block for %s: %w", s, err)
			}
			blocks[s.Measure] = mb
		}
		if err := ts.ValuesInto(mb.tmi, s.Agg, sc.tgtVals); err != nil {
			return fmt.Errorf("feature: computing %s: %w", s, err)
		}
		if err := rs.ValuesInto(mb.rmi, s.Agg, sc.refVals); err != nil {
			return fmt.Errorf("feature: computing %s: %w", s, err)
		}
		if err := metric.NormalizeInto(sc.pDist, sc.tgtVals); err != nil {
			return fmt.Errorf("feature: computing %s: %w", s, err)
		}
		if err := metric.NormalizeInto(sc.qDist, sc.refVals); err != nil {
			return fmt.Errorf("feature: computing %s: %w", s, err)
		}
		row := rows[i]
		if err := metric.DeviationsAll(sc.pDist, sc.qDist, row[:metric.NumDeviations]); err != nil {
			return fmt.Errorf("feature: computing deviations for %s: %w", s, err)
		}
		row[5] = usability
		row[6] = mb.accuracy
		tbase := mb.tmi * nb
		pv, err := metric.PValueScoreN(ts.Counts[tbase:tbase+nb], mb.total, sc.qDist)
		if err != nil {
			return fmt.Errorf("feature: computing %s for %s: %w", PValue, s, err)
		}
		row[7] = pv
		if r.Len() > numStd {
			if err := r.vectorFromStats(s, rs, ts, row, numStd); err != nil {
				return err
			}
		}
	}
	return nil
}

// vectorFromStats computes the registry's columns from startCol onward for
// one view, through the per-pair interface custom features are written
// against. The pair is assembled from the supplied layout statistics, so
// the features see exactly the histograms the per-pair path would build.
// startCol numStd fills a standard registry's extra columns after a block
// fill; startCol 0 is the full per-view fallback for registries without
// the standard prefix.
func (r *Registry) vectorFromStats(s view.Spec, rs, ts *view.Stats, row []float64, startCol int) error {
	rh, err := rs.Histogram(s.Measure, s.Agg)
	if err != nil {
		return fmt.Errorf("feature: computing %s: %w", s, err)
	}
	th, err := ts.Histogram(s.Measure, s.Agg)
	if err != nil {
		return fmt.Errorf("feature: computing %s: %w", s, err)
	}
	p := &view.Pair{Spec: s, Target: th, Reference: rh}
	if err := p.Validate(); err != nil {
		return err
	}
	for j := startCol; j < len(r.feats); j++ {
		f := r.feats[j]
		v, err := f.Compute(p)
		if err != nil {
			return fmt.Errorf("feature: computing %s for %s: %w", f.Name, s, err)
		}
		row[j] = v
	}
	return nil
}

// layoutGroups partitions spec indices by (dimension, bins) layout in
// first-seen order — the unit the block kernel processes at once.
func layoutGroups(specs []view.Spec) [][]int {
	type key struct {
		dim  string
		bins int
	}
	order := make(map[key]int)
	var groups [][]int
	for i, s := range specs {
		k := key{s.Dimension, s.Bins}
		gi, ok := order[k]
		if !ok {
			gi = len(groups)
			order[k] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups
}
