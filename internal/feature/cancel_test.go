package feature

import (
	"context"
	"errors"
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/view"
)

func cancelTestGenerator(t *testing.T) *view.Generator {
	t.Helper()
	tbl := dataset.GenerateSYN(dataset.SYNConfig{Rows: 500, Seed: 3})
	target := dataset.GenerateSYN(dataset.SYNConfig{Rows: 120, Seed: 4})
	target.Name = tbl.Name + "_dq"
	g, err := view.NewGenerator(tbl, target, view.SpaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCancelledComputeReturnsNoMatrix(t *testing.T) {
	g := cancelTestGenerator(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		m, err := ComputeWorkersCtx(ctx, g, StandardRegistry(), workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if m != nil {
			t.Fatalf("workers=%d: got a matrix from a cancelled pass", workers)
		}
	}
}

func TestCancelledComputePartialReturnsNoMatrix(t *testing.T) {
	g := cancelTestGenerator(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := ComputePartialWorkersCtx(ctx, g, StandardRegistry(), 0.25, 2)
	if !errors.Is(err, context.Canceled) || m != nil {
		t.Fatalf("m, err = %v, %v", m, err)
	}
}

// TestCancelMidComputeIsCleanForRetry pins that a pass cancelled partway
// leaves the generator reusable: the single-flight caches hold only
// completed scans, so a retry under a fresh context computes the full
// matrix bit-identically to an uninterrupted run.
func TestCancelMidComputeIsCleanForRetry(t *testing.T) {
	reg := StandardRegistry()
	want, err := ComputeWorkers(cancelTestGenerator(t), reg, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := cancelTestGenerator(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ComputeWorkersCtx(ctx, g, reg, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	got, err := ComputeWorkersCtx(context.Background(), g, reg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("retry matrix has %d rows, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("row %d feature %d: %v != %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}
