package faultfs

import (
	"io"
	"os"
	"sync"
)

// File is the subset of *os.File the store layer needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Name() string
	Sync() error
}

// FS is the filesystem surface behind journals and cache snapshots.
type FS interface {
	// OpenFile opens with os.OpenFile semantics (append-mode journals).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens for reading.
	Open(name string) (File, error)
	// CreateTemp creates a temp file with os.CreateTemp semantics.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically publishes a finished temp file.
	Rename(oldpath, newpath string) error
	// Remove deletes (snapshot quarantine, temp cleanup).
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// Truncate cuts the named file to size bytes (WAL torn-tail repair).
	// An open append-mode handle keeps working: its next write lands at
	// the new end.
	Truncate(name string, size int64) error
}

// OS is the passthrough FS backed by package os.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OS) Open(name string) (File, error)               { return os.Open(name) }
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

// Faulty wraps an FS and injects write-path faults on the files it opens.
// Faults apply to Write and Sync calls (where real disks surface ENOSPC
// and I/O errors); the metadata operations pass through untouched. All
// configuration methods are safe to call concurrently with in-flight I/O,
// so a test can lift a fault while a server is mid-retry.
//
// Three modes, checked in order on every write:
//   - persistent failure (FailWrites): every write fails until Clear;
//   - transient failure (FailNextWrites): the next n writes fail, then
//     writes succeed again;
//   - torn writes (TearWritesAfter): each write persists only the first
//     n bytes of its buffer, then reports the injected error — the
//     partial data really reaches the underlying file, exactly like a
//     crash or disk-full mid-write.
type Faulty struct {
	inner FS

	mu        sync.Mutex
	writeErr  error // persistent: every write fails with this
	nextErr   error // transient: the next nextN writes fail with this
	nextN     int
	tearAfter int // torn: persist this many bytes then fail (active when tearErr != nil)
	tearErr   error
	writes    int // total Write calls observed
	failures  int // total injected failures
}

// NewFaulty wraps inner (nil selects OS).
func NewFaulty(inner FS) *Faulty {
	if inner == nil {
		inner = OS{}
	}
	return &Faulty{inner: inner}
}

// FailWrites makes every subsequent write (and sync) fail with err until
// Clear. A nil err clears the persistent fault.
func (f *Faulty) FailWrites(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeErr = err
}

// FailNextWrites makes exactly the next n writes fail with err; writes
// after them succeed again — a transient fault.
func (f *Faulty) FailNextWrites(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextN = n
	f.nextErr = err
}

// TearWritesAfter makes every subsequent write persist only the first n
// bytes of its buffer and then fail with err, until Clear.
func (f *Faulty) TearWritesAfter(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tearAfter = n
	f.tearErr = err
}

// Clear lifts every injected fault.
func (f *Faulty) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeErr, f.nextErr, f.tearErr = nil, nil, nil
	f.nextN, f.tearAfter = 0, 0
}

// Counts reports how many writes were attempted and how many of them had
// a fault injected.
func (f *Faulty) Counts() (writes, failures int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes, f.failures
}

// decide consumes one write slot: it returns the injected error (nil =
// healthy) and, for torn writes, how many bytes to persist first (-1 = all
// or none, per the error).
func (f *Faulty) decide() (tear int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	switch {
	case f.writeErr != nil:
		f.failures++
		return -1, f.writeErr
	case f.nextN > 0:
		f.nextN--
		f.failures++
		return -1, f.nextErr
	case f.tearErr != nil:
		f.failures++
		return f.tearAfter, f.tearErr
	}
	return -1, nil
}

// syncErr reports the persistent fault for Sync calls (transient and torn
// faults are write-shaped and do not fire on sync).
func (f *Faulty) syncErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeErr
}

func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: file, fs: f}, nil
}

func (f *Faulty) Open(name string) (File, error) { return f.inner.Open(name) }

func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: file, fs: f}, nil
}

func (f *Faulty) Rename(oldpath, newpath string) error { return f.inner.Rename(oldpath, newpath) }
func (f *Faulty) Remove(name string) error             { return f.inner.Remove(name) }
func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}
func (f *Faulty) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }

// faultyFile consults its FS's fault configuration on every write.
type faultyFile struct {
	File
	fs *Faulty
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	tear, err := ff.fs.decide()
	if err == nil {
		return ff.File.Write(p)
	}
	if tear >= 0 {
		if tear > len(p) {
			tear = len(p)
		}
		n, werr := ff.File.Write(p[:tear])
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	return 0, err
}

func (ff *faultyFile) Sync() error {
	if err := ff.fs.syncErr(); err != nil {
		return err
	}
	return ff.File.Sync()
}
