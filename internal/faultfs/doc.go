// Package faultfs abstracts the narrow filesystem surface the durability
// layer touches and provides a deterministic fault-injection wrapper over
// it. Production code runs on OS (a zero-cost passthrough to package os);
// tests wrap it in a Faulty to inject ENOSPC, torn writes and transient
// errors at exact points — the only way to prove the degraded-mode
// serving contract (DESIGN.md §10) without unreliable tricks like full
// tmpfs partitions.
//
// # Contracts
//
// Determinism: injected faults fire at exact, caller-specified points —
// the Nth write, writes after a byte budget — never probabilistically, so
// a failing robustness test replays identically. Torn writes really
// persist their prefix, matching what a crashed kernel leaves behind;
// the journal's torn-line recovery is tested against that exact shape.
//
// Pass-through fidelity: OS adds no buffering, caching or retry of its
// own. Whatever semantics the platform gives os.File, callers get.
package faultfs
