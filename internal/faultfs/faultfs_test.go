package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

var errNoSpace = syscall.ENOSPC

func tempFile(t *testing.T, fs FS) File {
	t.Helper()
	f, err := fs.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestOSPassthroughRoundTrip(t *testing.T) {
	fs := OS{}
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	moved := filepath.Join(dir, "b.txt")
	if err := fs.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(moved)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read %q, %v", got, err)
	}
	if err := fs.Remove(moved); err != nil {
		t.Fatal(err)
	}
}

func TestFaultyPersistentWriteFailure(t *testing.T) {
	fs := NewFaulty(OS{})
	f := tempFile(t, fs)
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	fs.FailWrites(errNoSpace)
	if _, err := f.Write([]byte("x")); !errors.Is(err, errNoSpace) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if err := f.Sync(); !errors.Is(err, errNoSpace) {
		t.Fatalf("sync err = %v, want ENOSPC", err)
	}
	fs.Clear()
	if _, err := f.Write([]byte("y")); err != nil {
		t.Fatalf("write after Clear: %v", err)
	}
	writes, failures := fs.Counts()
	if writes != 3 || failures != 1 {
		t.Errorf("counts = %d writes, %d failures", writes, failures)
	}
	got, _ := os.ReadFile(f.Name())
	if string(got) != "oky" {
		t.Errorf("file = %q, want %q (failed write persisted nothing)", got, "oky")
	}
}

func TestFaultyTransientFailures(t *testing.T) {
	fs := NewFaulty(OS{})
	f := tempFile(t, fs)
	fs.FailNextWrites(2, errNoSpace)
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("x")); !errors.Is(err, errNoSpace) {
			t.Fatalf("write %d err = %v, want ENOSPC", i, err)
		}
	}
	if _, err := f.Write([]byte("z")); err != nil {
		t.Fatalf("third write should succeed: %v", err)
	}
	got, _ := os.ReadFile(f.Name())
	if string(got) != "z" {
		t.Errorf("file = %q, want %q", got, "z")
	}
}

func TestFaultyTornWritesPersistPrefix(t *testing.T) {
	fs := NewFaulty(OS{})
	f := tempFile(t, fs)
	fs.TearWritesAfter(3, errNoSpace)
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, errNoSpace) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if n != 3 {
		t.Fatalf("n = %d, want 3 bytes persisted", n)
	}
	fs.Clear()
	if _, err := f.Write([]byte("!")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(f.Name())
	if string(got) != "abc!" {
		t.Errorf("file = %q, want %q (torn prefix on disk)", got, "abc!")
	}
}

func TestFaultyTearLongerThanBuffer(t *testing.T) {
	fs := NewFaulty(OS{})
	f := tempFile(t, fs)
	fs.TearWritesAfter(100, errNoSpace)
	n, err := f.Write([]byte("ab"))
	if !errors.Is(err, errNoSpace) || n != 2 {
		t.Fatalf("n, err = %d, %v", n, err)
	}
}

func TestFaultyMetadataOpsPassThrough(t *testing.T) {
	fs := NewFaulty(OS{})
	fs.FailWrites(errNoSpace)
	dir := t.TempDir()
	if err := fs.MkdirAll(filepath.Join(dir, "a/b"), 0o755); err != nil {
		t.Fatalf("MkdirAll under write fault: %v", err)
	}
	f, err := fs.CreateTemp(dir, "tmp-*")
	if err != nil {
		t.Fatalf("CreateTemp under write fault: %v", err)
	}
	f.Close()
	if err := fs.Rename(f.Name(), filepath.Join(dir, "done")); err != nil {
		t.Fatalf("Rename under write fault: %v", err)
	}
}
