package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers one counter, one gauge and one histogram
// from many goroutines; under -race this is also the data-race proof for
// the whole metric hot path.
func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("viewseeker_test_ops_total")
	g := reg.Gauge("viewseeker_test_inflight")
	h := reg.Histogram("viewseeker_test_latency_seconds", []float64{0.01, 0.1, 1})

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				h.Observe(0.05) // lands in the 0.1 bucket
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0 (balanced inc/dec)", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	want := 0.05 * workers * perWorker
	if got := h.Sum(); got < want*0.999 || got > want*1.001 {
		t.Errorf("histogram sum = %g, want ≈ %g", got, want)
	}
}

// TestSameNameSharesHandle: the registry is get-or-create, so two
// subsystems naming the same series share one metric.
func TestSameNameSharesHandle(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("viewseeker_retry_backoffs_total")
	b := reg.Counter("viewseeker_retry_backoffs_total")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter did not share state")
	}
}

// TestPrometheusExpositionGolden pins the exact text exposition: TYPE
// lines per family, sorted families, label splicing, cumulative histogram
// buckets with _sum and _count.
func TestPrometheusExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("viewseeker_store_cache_hits_total").Add(3)
	reg.Gauge("viewseeker_server_inflight_requests").Set(2)
	reg.Counter(`viewseeker_server_requests_total{route="top",code="200"}`).Add(5)
	reg.Counter(`viewseeker_server_requests_total{route="top",code="404"}`).Inc()
	h := reg.Histogram(`viewseeker_server_request_seconds{route="top"}`, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE viewseeker_server_inflight_requests gauge
viewseeker_server_inflight_requests 2
# TYPE viewseeker_server_request_seconds histogram
viewseeker_server_request_seconds_bucket{route="top",le="0.1"} 1
viewseeker_server_request_seconds_bucket{route="top",le="1"} 3
viewseeker_server_request_seconds_bucket{route="top",le="+Inf"} 4
viewseeker_server_request_seconds_sum{route="top"} 3.05
viewseeker_server_request_seconds_count{route="top"} 4
# TYPE viewseeker_server_requests_total counter
viewseeker_server_requests_total{route="top",code="200"} 5
viewseeker_server_requests_total{route="top",code="404"} 1
# TYPE viewseeker_store_cache_hits_total counter
viewseeker_store_cache_hits_total 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestJSONDump checks the /debug/vars-style document decodes and carries
// the same values as the registry.
func TestJSONDump(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("viewseeker_x_total").Add(7)
	reg.Histogram("viewseeker_y_seconds", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count   int64            `json:"count"`
			Sum     float64          `json:"sum"`
			Buckets map[string]int64 `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if doc.Counters["viewseeker_x_total"] != 7 {
		t.Errorf("counter in dump = %d, want 7", doc.Counters["viewseeker_x_total"])
	}
	hy := doc.Histograms["viewseeker_y_seconds"]
	if hy.Count != 1 || hy.Sum != 0.5 || hy.Buckets["1"] != 1 || hy.Buckets["+Inf"] != 1 {
		t.Errorf("histogram in dump = %+v", hy)
	}
}

// TestSnapshotKeys: histograms flatten with label sets preserved.
func TestSnapshotKeys(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram(`viewseeker_h_seconds{route="x"}`, []float64{1}).Observe(0.25)
	snap := reg.Snapshot()
	if snap[`viewseeker_h_seconds_count{route="x"}`] != 1 {
		t.Errorf("snapshot keys = %v", snap)
	}
	if snap[`viewseeker_h_seconds_sum{route="x"}`] != 0.25 {
		t.Errorf("snapshot sum = %v", snap)
	}
}

// TestSpanNesting builds root → (child1, child2 → grandchild) through
// contexts and checks the recorded tree shape, ordering, and that
// durations are monotonic-positive and nested within the parent's.
func TestSpanNesting(t *testing.T) {
	tr := NewTracer(4)
	ctx := NewContext(context.Background(), nil, tr)

	ctx1, root := StartSpan(ctx, "request")
	cctx, c1 := StartSpan(ctx1, "phase1")
	time.Sleep(time.Millisecond)
	c1.End()
	_, c2 := StartSpan(ctx1, "phase2")
	gctx, g := StartSpan(cctx, "unused") // parent already ended: still attaches under c1's data
	_ = gctx
	g.End()
	time.Sleep(time.Millisecond)
	c2.End()
	root.End()

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("Recent() = %d traces, want 1 (children must not surface as roots)", len(recent))
	}
	got := recent[0]
	if got.Name != "request" {
		t.Fatalf("root span = %q", got.Name)
	}
	if len(got.Children) != 2 || got.Children[0].Name != "phase1" || got.Children[1].Name != "phase2" {
		t.Fatalf("children = %+v, want [phase1 phase2] in End order", got.Children)
	}
	if len(got.Children[0].Children) != 1 || got.Children[0].Children[0].Name != "unused" {
		t.Fatalf("grandchild missing: %+v", got.Children[0].Children)
	}
	if got.Duration <= 0 {
		t.Error("root duration not positive")
	}
	for _, c := range got.Children {
		if c.Duration < 0 || c.Duration > got.Duration {
			t.Errorf("child %s duration %d outside root's %d", c.Name, c.Duration, got.Duration)
		}
	}
}

// TestTracerRingEviction: the ring keeps only the most recent traces,
// newest first.
func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2)
	ctx := NewContext(context.Background(), nil, tr)
	for _, name := range []string{"a", "b", "c"} {
		_, sp := StartSpan(ctx, name)
		sp.End()
	}
	recent := tr.Recent()
	if len(recent) != 2 || recent[0].Name != "c" || recent[1].Name != "b" {
		names := make([]string, len(recent))
		for i, d := range recent {
			names[i] = d.Name
		}
		t.Fatalf("Recent() = %v, want [c b]", names)
	}
}

// TestTracerSinkJSONL: with a sink installed every root span becomes one
// JSON line, children inline.
func TestTracerSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(0)
	tr.SetSink(&buf)
	ctx := NewContext(context.Background(), nil, tr)
	ctx1, root := StartSpan(ctx, "outer")
	_, c := StartSpan(ctx1, "inner")
	c.End()
	root.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("sink got %d lines, want 1 (only roots stream)", len(lines))
	}
	var d SpanData
	if err := json.Unmarshal([]byte(lines[0]), &d); err != nil {
		t.Fatalf("sink line is not JSON: %v", err)
	}
	if d.Name != "outer" || len(d.Children) != 1 || d.Children[0].Name != "inner" {
		t.Fatalf("sink line = %+v", d)
	}
}

// TestDisabledPathAllocs pins the whole disabled surface at 0 allocs/op:
// nil handles, nil-registry lookups, and StartSpan over a context with no
// tracer. This is the zero-cost-when-disabled contract of DESIGN.md §11.
func TestDisabledPathAllocs(t *testing.T) {
	ctx := context.Background()
	var nilReg *Registry
	var nilTr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		nilReg.Counter("viewseeker_x_total").Add(1)
		nilReg.Gauge("viewseeker_y").Inc()
		nilReg.Histogram("viewseeker_z_seconds", nil).Observe(1)
		RegistryFrom(ctx).Counter("viewseeker_w_total").Inc()
		ctx2, sp := StartSpan(ctx, "phase")
		sp.End()
		nilTr.Recent()
		if ctx2 != ctx {
			t.Fatal("disabled StartSpan must return the context unchanged")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates: %v allocs/op, want 0", allocs)
	}
}

// TestEnabledObservePathAllocs: even enabled, the per-observation hot path
// (pre-resolved handles) is allocation-free.
func TestEnabledObservePathAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("viewseeker_a_total")
	g := reg.Gauge("viewseeker_b")
	h := reg.Histogram("viewseeker_c_seconds", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(2)
		h.Observe(0.003)
	})
	if allocs != 0 {
		t.Fatalf("enabled observe path allocates: %v allocs/op, want 0", allocs)
	}
}
