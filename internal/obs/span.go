package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanData is one finished span: a named phase, its wall-clock start, its
// monotonic duration, and the child phases that ran inside it. It is the
// unit stored in the tracer ring and emitted as one JSON line per root
// span by the trace-log sink.
type SpanData struct {
	Name     string      `json:"name"`
	Start    time.Time   `json:"start"`
	Duration int64       `json:"duration_ns"`
	Children []*SpanData `json:"children,omitempty"`
}

// Span is one in-flight phase measurement. Spans come only from StartSpan;
// the nil span (what StartSpan yields without a tracer) ends for free.
// End must be called exactly once; children may End from other goroutines
// than their parent's (the offline phase fans out), so attachment is
// internally locked.
type Span struct {
	tracer *Tracer
	parent *Span
	data   *SpanData
	start  time.Time // carries the monotonic reading

	mu sync.Mutex // guards data.Children while children attach
}

// End stamps the span's duration from the monotonic clock and attaches it
// to its parent, or — for a root span — records it into the tracer's ring
// and sink. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.data.Duration = int64(time.Since(s.start))
	if s.parent != nil {
		s.parent.mu.Lock()
		s.parent.data.Children = append(s.parent.data.Children, s.data)
		s.parent.mu.Unlock()
		return
	}
	s.tracer.record(s.data)
}

// defaultRingSize bounds the recent-trace ring when NewTracer is given no
// size: enough to hold a burst of requests, small enough to never matter
// for memory.
const defaultRingSize = 64

// Tracer collects finished root spans into a fixed-size ring buffer and,
// optionally, streams each one as a JSON line to a sink. The nil tracer is
// a valid no-op. Safe for concurrent use.
type Tracer struct {
	mu   sync.Mutex
	ring []*SpanData
	pos  int
	n    int
	sink io.Writer
}

// NewTracer returns a tracer keeping the most recent ringSize root traces
// (≤ 0 selects the default).
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = defaultRingSize
	}
	return &Tracer{ring: make([]*SpanData, ringSize)}
}

// SetSink streams every finished root span to w as one JSON document per
// line (the -trace-log format). Pass nil to stop streaming. Writes happen
// under the tracer's lock, so w needs no extra synchronisation; a write
// error silently drops that trace (tracing must never fail the traced
// work).
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = w
	t.mu.Unlock()
}

func (t *Tracer) record(d *SpanData) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.pos] = d
	t.pos = (t.pos + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	sink := t.sink
	if sink != nil {
		if b, err := json.Marshal(d); err == nil {
			sink.Write(append(b, '\n'))
		}
	}
	t.mu.Unlock()
}

// Recent returns the retained root traces, most recent first. The slice is
// fresh; the *SpanData trees are shared and must be treated as read-only.
func (t *Tracer) Recent() []*SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*SpanData, 0, t.n)
	for i := 1; i <= t.n; i++ {
		out = append(out, t.ring[(t.pos-i+len(t.ring))%len(t.ring)])
	}
	return out
}
