package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// splitSeries breaks a full series name into its base name and its
// constant-label body (without braces, "" when unlabelled).
func splitSeries(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// joinSeries rebuilds a series name from a base, an optional suffix
// spliced before the label set, and optional extra label pairs.
func joinSeries(base, suffix, labels, extra string) string {
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteString(suffix)
	all := labels
	if extra != "" {
		if all != "" {
			all += "," + extra
		} else {
			all = extra
		}
	}
	if all != "" {
		sb.WriteByte('{')
		sb.WriteString(all)
		sb.WriteByte('}')
	}
	return sb.String()
}

// WithSuffix splices a suffix into a series name ahead of any label set:
// WithSuffix(`h{route="x"}`, "_count") is `h_count{route="x"}`. Snapshot
// keys for histogram sums and counts are built this way.
func WithSuffix(name, suffix string) string {
	base, labels := splitSeries(name)
	return joinSeries(base, suffix, labels, "")
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// family is one exposition group: every series sharing a base name.
type family struct {
	base string
	typ  string // "counter", "gauge", "histogram"
	emit func(w io.Writer) error
}

// gather snapshots the registry into sorted families. Values are read
// atomically per series; exposition is not a consistent cut across series,
// which is the standard Prometheus trade.
func (r *Registry) gather() []family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	byBase := make(map[string]*struct {
		typ   string
		lines []string
	})
	add := func(name, typ, line string) {
		base, _ := splitSeries(name)
		f := byBase[base]
		if f == nil {
			f = &struct {
				typ   string
				lines []string
			}{typ: typ}
			byBase[base] = f
		}
		f.lines = append(f.lines, line)
	}
	for name, c := range r.counters {
		add(name, "counter", fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		add(name, "gauge", fmt.Sprintf("%s %d", name, g.Value()))
	}
	for name, fn := range r.gaugeFns {
		add(name, "gauge", fmt.Sprintf("%s %d", name, fn()))
	}
	for name, h := range r.hists {
		base, labels := splitSeries(name)
		var lines []string
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			lines = append(lines, fmt.Sprintf("%s %d",
				joinSeries(base, "_bucket", labels, `le="`+formatFloat(b)+`"`), cum))
		}
		cum += h.buckets[len(h.bounds)].Load()
		lines = append(lines, fmt.Sprintf("%s %d", joinSeries(base, "_bucket", labels, `le="+Inf"`), cum))
		lines = append(lines, fmt.Sprintf("%s %s", joinSeries(base, "_sum", labels, ""), formatFloat(h.Sum())))
		lines = append(lines, fmt.Sprintf("%s %d", joinSeries(base, "_count", labels, ""), h.Count()))
		f := byBase[base]
		if f == nil {
			f = &struct {
				typ   string
				lines []string
			}{typ: "histogram"}
			byBase[base] = f
		}
		f.lines = append(f.lines, lines...)
	}
	out := make([]family, 0, len(byBase))
	for base, f := range byBase {
		lines := f.lines
		// Histogram lines are kept in bucket order per series; other series
		// within a family sort lexically so the exposition is deterministic.
		if f.typ != "histogram" {
			sort.Strings(lines)
		}
		fam := family{base: base, typ: f.typ}
		fam.emit = func(w io.Writer) error {
			for _, l := range lines {
				if _, err := io.WriteString(w, l+"\n"); err != nil {
					return err
				}
			}
			return nil
		}
		out = append(out, fam)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].base < out[j].base })
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, histograms
// expanded into cumulative _bucket/_sum/_count series, families and series
// in deterministic sorted order. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.gather() {
		if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", f.base, f.typ); err != nil {
			return err
		}
		if err := f.emit(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// histogramJSON is one histogram in the JSON dump.
type histogramJSON struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"` // upper bound → cumulative count
}

// dumpJSON is the /debug/vars-style document body.
type dumpJSON struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]int64         `json:"gauges"`
	Histograms map[string]histogramJSON `json:"histograms"`
}

// WriteJSON writes the registry as a /debug/vars-style JSON object with
// counters, gauges and histograms keyed by series name. Map keys marshal
// sorted, so the dump is deterministic. A nil registry writes "{}".
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}")
		return err
	}
	r.mu.Lock()
	doc := dumpJSON{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]histogramJSON, len(r.hists)),
	}
	for name, c := range r.counters {
		doc.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		doc.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFns {
		doc.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		hj := histogramJSON{Count: h.Count(), Sum: h.Sum(), Buckets: make(map[string]int64, len(h.bounds)+1)}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			hj.Buckets[formatFloat(b)] = cum
		}
		cum += h.buckets[len(h.bounds)].Load()
		hj.Buckets["+Inf"] = cum
		doc.Histograms[name] = hj
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Snapshot flattens the registry into a single map for programmatic
// consumers (cmd/bench's occupancy report, tests): counters and gauges
// under their series name, histograms as <name>_sum and <name>_count with
// any label set preserved. A nil registry returns an empty map.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, fn := range r.gaugeFns {
		out[name] = float64(fn())
	}
	for name, h := range r.hists {
		out[WithSuffix(name, "_sum")] = h.Sum()
		out[WithSuffix(name, "_count")] = float64(h.Count())
	}
	return out
}
