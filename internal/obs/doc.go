// Package obs is the observability substrate: a lock-cheap metrics
// registry (counters, gauges, fixed-bucket histograms) plus lightweight
// phase spans with a ring buffer of recent traces, exposed in Prometheus
// text and expvar-style JSON form.
//
// # Contract
//
// Everything in this package is nil-safe and zero-cost when disabled.
// Every method on a nil *Registry, *Counter, *Gauge, *Histogram, *Tracer
// or *Span is a no-op that performs no allocation, so instrumented code
// writes
//
//	obs.RegistryFrom(ctx).Counter("viewseeker_store_cache_hits_total").Inc()
//
// unconditionally: when no registry was installed in the context the whole
// chain collapses to a few nil checks (0 allocs/op — pinned by
// TestDisabledPathAllocs). Hot paths that fire per work item resolve their
// handles once per call instead; handles are stable for the life of the
// registry, so resolution cost is paid at setup, not per increment.
//
// When enabled, counters and gauges are single atomic adds and histograms
// are a binary search over a fixed bucket layout plus three atomic
// operations — no locks, no allocations on the observe path. The registry
// itself locks only on handle creation and on exposition.
//
// # Metric names
//
// Names follow viewseeker_<layer>_<name>_<unit> (DESIGN.md §11), with an
// optional constant-label suffix in the series name itself:
//
//	viewseeker_server_request_seconds{route="feedback"}
//
// The exposition layer groups series by base name, emits one # TYPE line
// per family, and expands histograms into cumulative _bucket/_sum/_count
// series with the le label spliced into any existing label set.
//
// # Spans
//
// A Span measures one phase on the monotonic clock. Spans nest through
// context: StartSpan parents the new span under the context's current
// span, End attaches the finished span to its parent, and finished root
// spans land in the Tracer's fixed-size ring buffer (Recent) and, when a
// sink is set, as one JSON line each (the -trace-log flag). A context
// without a tracer yields nil spans and unchanged contexts.
package obs
