package obs

import (
	"context"
	"time"
)

// Context keys. Zero-size struct values convert to interface without
// allocating, keeping the disabled lookup path at 0 allocs/op.
type (
	registryKey struct{}
	tracerKey   struct{}
	spanKey     struct{}
)

// NewContext installs a registry and a tracer into a context; either may
// be nil to install only the other. Instrumented layers below recover them
// with RegistryFrom and StartSpan, so observability threads through the
// same context that already carries cancellation.
func NewContext(ctx context.Context, reg *Registry, tr *Tracer) context.Context {
	if reg != nil {
		ctx = context.WithValue(ctx, registryKey{}, reg)
	}
	if tr != nil {
		ctx = context.WithValue(ctx, tracerKey{}, tr)
	}
	return ctx
}

// RegistryFrom returns the context's registry, or nil — and every method
// chained off a nil registry is a no-op, so call sites never branch.
func RegistryFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(registryKey{}).(*Registry)
	return r
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan begins a phase span named name, parented under the context's
// current span when one exists, and returns the context carrying the new
// span. Without a tracer (and without a parent span) it returns the
// context unchanged and a nil span, whose End is free — instrumented code
// always writes
//
//	ctx, sp := obs.StartSpan(ctx, "offline.features")
//	defer sp.End()
//
// whether or not tracing is on.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	var tr *Tracer
	if parent != nil {
		tr = parent.tracer
	} else if tr = TracerFrom(ctx); tr == nil {
		return ctx, nil
	}
	now := time.Now()
	sp := &Span{
		tracer: tr,
		parent: parent,
		start:  now,
		data:   &SpanData{Name: name, Start: now},
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}
