package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil counter is a valid
// no-op; a non-nil counter is a single atomic add per Inc/Add.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (in-flight requests, resident
// entries, worker occupancy). The nil gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations into a fixed cumulative-bucket
// layout (Prometheus le semantics: bucket i counts observations ≤
// bounds[i], with an implicit +Inf bucket). Observe is lock-free and
// allocation-free: a binary search over the bounds plus three atomic
// operations. The nil histogram is a valid no-op.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; non-cumulative, cumulated at exposition
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, updated by CAS
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds, the canonical unit for
// *_seconds histograms.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (0 < q < 1) of the recorded
// observations from the bucket counts, linearly interpolated within the
// containing bucket (Prometheus histogram_quantile semantics). The first
// bucket interpolates from zero; observations in the +Inf bucket clamp to
// the largest finite bound, so the estimate is only as sharp as the
// bucket layout. Returns 0 on a nil or empty histogram. Safe for
// concurrent use with Observe; a concurrent observation may or may not be
// included.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if cum+n >= target && n > 0 {
			hi := math.Inf(1)
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if math.IsInf(hi, 1) {
				// No upper bound to interpolate toward: clamp to the
				// largest finite bound (or the lower edge when the layout
				// has a single bucket).
				return lo
			}
			return lo + (hi-lo)*((target-cum)/n)
		}
		cum += n
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// DurationBuckets is the standard latency layout, in seconds: 500µs up to
// 30s. It brackets both per-item kernel work (sub-millisecond) and whole
// offline passes (seconds).
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// ByteBuckets is the standard size layout: 1 KiB up to 256 MiB.
var ByteBuckets = []float64{
	1 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
}

// Registry is a named collection of metrics. Handle lookups get-or-create
// under a short critical section; the returned handles are stable and
// lock-free, so callers on hot paths resolve once and hold the pointer.
// All methods are safe for concurrent use, and every method on a nil
// *Registry returns a nil (no-op) handle.
//
// A name is a full Prometheus series name and may carry a constant label
// set: `viewseeker_server_request_seconds{route="top"}`. Two lookups with
// the same name return the same handle, so cross-cutting metrics (the
// retry layer's counters, say) are naturally shared between subsystems
// instrumented against the same registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time (scrape, JSON dump, snapshot) rather than pushed by the producer —
// the natural shape for derived values like ages ("seconds since the last
// checkpoint") that would otherwise need a ticker to stay fresh. fn is
// called with the registry lock held and must be fast and non-blocking.
// Re-registering a name replaces the function; a nil fn unregisters it.
// A nil registry ignores the call.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if fn == nil {
		delete(r.gaugeFns, name)
		return
	}
	r.gaugeFns[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (ascending) on first use; later lookups ignore the
// bounds argument. A nil or empty bounds slice selects DurationBuckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DurationBuckets
		}
		h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}
