package active

import "math/rand"

// Random samples unlabelled views uniformly — the baseline query strategy
// that active learning is measured against.
type Random struct {
	Seed int64
	rng  *rand.Rand
}

// Name implements Strategy.
func (r *Random) Name() string { return "random" }

// Select implements Strategy.
func (r *Random) Select(rows [][]float64, labeled map[int]float64, m int) ([]int, error) {
	if err := validateSelect(rows, m); err != nil {
		return nil, err
	}
	candidates := unlabeledIndices(len(rows), labeled)
	if len(candidates) == 0 {
		return nil, nil
	}
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(r.Seed))
	}
	if m > len(candidates) {
		m = len(candidates)
	}
	out := make([]int, 0, m)
	for _, p := range r.rng.Perm(len(candidates))[:m] {
		out = append(out, candidates[p])
	}
	return out, nil
}
