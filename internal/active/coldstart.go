package active

import "math/rand"

// ColdStart acquires the first positive and negative labels: it walks the
// utility features in order, each iteration presenting the unlabelled
// views ranked highest by the current feature; once every feature has had
// a turn it falls back to seeded random sampling (Section 3.2).
type ColdStart struct {
	// Seed drives the random fallback.
	Seed int64

	cursor int
	rng    *rand.Rand
}

// Name implements Strategy.
func (c *ColdStart) Name() string { return "coldstart" }

// Exhausted reports whether every feature has had its ranking turn and the
// strategy is now sampling randomly.
func (c *ColdStart) Exhausted(numFeatures int) bool { return c.cursor >= numFeatures }

// Select implements Strategy.
func (c *ColdStart) Select(rows [][]float64, labeled map[int]float64, m int) ([]int, error) {
	if err := validateSelect(rows, m); err != nil {
		return nil, err
	}
	candidates := unlabeledIndices(len(rows), labeled)
	if len(candidates) == 0 {
		return nil, nil
	}
	numFeatures := len(rows[0])
	if c.cursor < numFeatures {
		f := c.cursor
		c.cursor++
		return topByScore(candidates, func(i int) float64 { return rows[i][f] }, m), nil
	}
	// Every feature has been tried: random sampling.
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.Seed))
	}
	if m > len(candidates) {
		m = len(candidates)
	}
	picked := make([]int, 0, m)
	perm := c.rng.Perm(len(candidates))
	for _, p := range perm[:m] {
		picked = append(picked, candidates[p])
	}
	return picked, nil
}
