package active

import (
	"math"
	"math/rand"

	"viewseeker/internal/ml"
)

// Committee implements query-by-committee [24]: it trains several
// uncertainty estimators on bootstrap resamples of the labelled set and
// presents the views the committee disagrees on most (vote entropy). It is
// an alternative to least-confidence sampling and one of the ablation
// points DESIGN.md calls out.
type Committee struct {
	// Size is the committee size (default 5).
	Size int
	// Threshold binarises labels (default 0.5).
	Threshold float64
	// Seed drives bootstrap resampling.
	Seed int64

	rng *rand.Rand
}

// Name implements Strategy.
func (c *Committee) Name() string { return "committee" }

// Select implements Strategy.
func (c *Committee) Select(rows [][]float64, labeled map[int]float64, m int) ([]int, error) {
	if err := validateSelect(rows, m); err != nil {
		return nil, err
	}
	candidates := unlabeledIndices(len(rows), labeled)
	if len(candidates) == 0 {
		return nil, nil
	}
	size := c.Size
	if size <= 0 {
		size = 5
	}
	threshold := c.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.Seed))
	}
	type example struct {
		x []float64
		y float64
	}
	var pool []example
	// Iterate in index order for determinism.
	for i := 0; i < len(rows); i++ {
		if label, ok := labeled[i]; ok {
			y := 0.0
			if label >= threshold {
				y = 1
			}
			pool = append(pool, example{rows[i], y})
		}
	}
	// One whole-space scaler shared by every member: the members' weight
	// vectors then live in the same standardised feature space, which is
	// what lets a later member warm-start from an earlier one's optimum
	// (and what makes their votes comparable in the first place).
	var scaler *ml.Scaler
	if len(pool) > 0 {
		var err error
		if scaler, err = ml.FitScaler(rows); err != nil {
			return nil, err
		}
	}
	var members []*ml.LogisticRegression
	for k := 0; k < size; k++ {
		model := ml.NewLogisticRegression()
		if len(pool) > 0 {
			x := make([][]float64, len(pool))
			y := make([]float64, len(pool))
			for j := range pool {
				e := pool[c.rng.Intn(len(pool))]
				x[j], y[j] = e.x, e.y
			}
			model.ExternalScaler = scaler
			// Warm-start each member from its predecessor: the resamples
			// overlap heavily, so the previous optimum is a few gradient
			// steps from the next one. The chain lives entirely inside this
			// call — members are fresh models, so Select stays a function of
			// its arguments and the rng state, same as before.
			if k > 0 {
				model.WarmStart = true
				model.SeedFrom(members[k-1])
			}
			if err := model.Fit(x, y); err != nil {
				return nil, err
			}
		}
		members = append(members, model)
	}
	entropy := func(i int) float64 {
		pos := 0
		for _, mdl := range members {
			if mdl.Prob(rows[i]) >= 0.5 {
				pos++
			}
		}
		p := float64(pos) / float64(len(members))
		if p == 0 || p == 1 {
			return 0
		}
		return -(p*math.Log2(p) + (1-p)*math.Log2(1-p))
	}
	return topByScore(candidates, entropy, m), nil
}
