package active

import (
	"testing"
)

// twoClusterRows builds feature rows where views 0..4 score high on
// feature 0 and views 5..9 score high on feature 1.
func twoClusterRows() [][]float64 {
	rows := make([][]float64, 10)
	for i := range rows {
		if i < 5 {
			rows[i] = []float64{1 - float64(i)*0.1, 0.1}
		} else {
			rows[i] = []float64{0.1, 1 - float64(i-5)*0.1}
		}
	}
	return rows
}

func TestUnlabeledIndices(t *testing.T) {
	got := unlabeledIndices(5, map[int]float64{1: 0.5, 3: 0.2})
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("unlabeled = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unlabeled = %v, want %v", got, want)
		}
	}
}

func TestTopByScoreTies(t *testing.T) {
	got := topByScore([]int{3, 1, 2}, func(i int) float64 { return 1 }, 2)
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("ties must break by ascending index: %v", got)
	}
}

func TestColdStartWalksFeatures(t *testing.T) {
	rows := twoClusterRows()
	c := &ColdStart{Seed: 1}
	labeled := map[int]float64{}
	// First call: top of feature 0 → view 0.
	got, err := c.Select(rows, labeled, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("first cold-start pick = %d, want 0", got[0])
	}
	labeled[0] = 0.9
	if c.Exhausted(2) {
		t.Error("not yet exhausted after one feature")
	}
	// Second call: top of feature 1 → view 5.
	got, _ = c.Select(rows, labeled, 1)
	if got[0] != 5 {
		t.Errorf("second cold-start pick = %d, want 5", got[0])
	}
	labeled[5] = 0.1
	// Third call: features exhausted → random among the rest.
	got, _ = c.Select(rows, labeled, 1)
	if !c.Exhausted(2) {
		t.Error("should be exhausted after both features")
	}
	if _, already := labeled[got[0]]; already {
		t.Error("random fallback must pick an unlabelled view")
	}
}

func TestColdStartSkipsLabeled(t *testing.T) {
	rows := twoClusterRows()
	c := &ColdStart{}
	labeled := map[int]float64{0: 0.9}
	got, err := c.Select(rows, labeled, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Errorf("should pick next-best by feature 0: got %d, want 1", got[0])
	}
}

func TestUncertaintySelectsBoundary(t *testing.T) {
	// Views along a line; labels known at the ends. Uncertainty must pick
	// near the middle, not the ends.
	rows := make([][]float64, 11)
	for i := range rows {
		rows[i] = []float64{float64(i) / 10}
	}
	labeled := map[int]float64{0: 0, 1: 0, 9: 1, 10: 1}
	u := &Uncertainty{}
	got, err := u.Select(rows, labeled, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] < 3 || got[0] > 7 {
		t.Errorf("uncertainty picked %d, want a middle view", got[0])
	}
	if u.Model() == nil || !u.Model().Fitted() {
		t.Error("model should be trained and exposed")
	}
}

func TestUncertaintyNoLabelsActsUniform(t *testing.T) {
	rows := twoClusterRows()
	u := &Uncertainty{}
	got, err := u.Select(rows, map[int]float64{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("selected %d views", len(got))
	}
	// Untrained model: all uncertainties equal → deterministic index order.
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("untrained selection = %v", got)
	}
}

func TestUncertaintyAllLabeled(t *testing.T) {
	rows := [][]float64{{1}, {2}}
	labeled := map[int]float64{0: 1, 1: 0}
	u := &Uncertainty{}
	got, err := u.Select(rows, labeled, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Errorf("nothing to select, got %v", got)
	}
}

func TestRandomDeterministicBySeed(t *testing.T) {
	rows := twoClusterRows()
	a := &Random{Seed: 7}
	b := &Random{Seed: 7}
	ga, _ := a.Select(rows, map[int]float64{}, 4)
	gb, _ := b.Select(rows, map[int]float64{}, 4)
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatal("same seed must select identically")
		}
	}
	// Never returns labelled views.
	labeled := map[int]float64{0: 1, 1: 1, 2: 1, 3: 1, 4: 1}
	got, _ := a.Select(rows, labeled, 10)
	if len(got) != 5 {
		t.Fatalf("selected %d, want the 5 unlabelled", len(got))
	}
	for _, g := range got {
		if g < 5 {
			t.Errorf("selected labelled view %d", g)
		}
	}
}

func TestCommitteeSelectsDisagreement(t *testing.T) {
	rows := make([][]float64, 21)
	for i := range rows {
		rows[i] = []float64{float64(i-10) / 10}
	}
	labeled := map[int]float64{0: 0, 1: 0, 2: 0, 18: 1, 19: 1, 20: 1}
	c := &Committee{Seed: 3}
	got, err := c.Select(rows, labeled, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The committee should disagree near the middle of the gap.
	if got[0] < 5 || got[0] > 15 {
		t.Errorf("committee picked %d, want middle region", got[0])
	}
}

func TestStrategyValidation(t *testing.T) {
	for _, s := range []Strategy{&Uncertainty{}, &ColdStart{}, &Random{}, &Committee{}} {
		if _, err := s.Select(nil, nil, 1); err == nil {
			t.Errorf("%s: empty rows should fail", s.Name())
		}
		if _, err := s.Select([][]float64{{1}}, nil, 0); err == nil {
			t.Errorf("%s: m=0 should fail", s.Name())
		}
	}
}

func TestStrategyNames(t *testing.T) {
	names := map[string]Strategy{
		"uncertainty": &Uncertainty{},
		"coldstart":   &ColdStart{},
		"random":      &Random{},
		"committee":   &Committee{},
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestDensityWeightedPrefersDenseRegions(t *testing.T) {
	// A tight cluster plus one extreme outlier, all equally uncertain (no
	// labels yet → untrained model, uncertainty 0.5 everywhere): the
	// density term must steer selection into the cluster, away from the
	// outlier that plain uncertainty sampling could waste a label on.
	rows := [][]float64{
		{0.00, 0}, {0.01, 0}, {0.02, 0}, {0.03, 0}, {0.04, 0},
		{50, 50}, // outlier
	}
	d := &DensityWeighted{}
	got, err := d.Select(rows, map[int]float64{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == 5 {
		t.Errorf("density weighting picked the outlier")
	}
}

func TestDensityWeightedBasics(t *testing.T) {
	rows := twoClusterRows()
	d := &DensityWeighted{Beta: 2}
	if d.Name() != "density" {
		t.Errorf("name = %q", d.Name())
	}
	labeled := map[int]float64{0: 0.9, 5: 0.1}
	got, err := d.Select(rows, labeled, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("selected %d", len(got))
	}
	for _, v := range got {
		if _, already := labeled[v]; already {
			t.Errorf("selected labelled view %d", v)
		}
	}
	// Density cache reused across calls.
	if _, err := d.Select(rows, labeled, 1); err != nil {
		t.Fatal(err)
	}
	// Validation shared with the other strategies.
	if _, err := d.Select(nil, nil, 1); err == nil {
		t.Error("empty rows should fail")
	}
}
