// Package active implements the query strategies of ViewSeeker's
// interactive phase: which unlabelled views to present to the user next.
// The paper's choice is least-confidence uncertainty sampling [14] seeded
// by a per-feature cold-start stage; random sampling, query-by-committee
// and density-weighted selection are provided as baselines/extensions.
//
// # Contracts
//
// Determinism: every Strategy is a deterministic function of (rows,
// labeled, m) and its own seed — Random draws from a seeded source, and
// score-based strategies break ties by ascending view index — so a
// replayed session selects the same views in the same order. The journal
// replay in internal/store depends on this.
//
// Purity: Select never mutates rows or labeled; strategies may keep
// private memoised state (cold-start cursor, density cache) but that
// state is itself a pure function of the inputs seen so far.
package active
