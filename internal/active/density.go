package active

import (
	"math"

	"viewseeker/internal/ml"
)

// DensityWeighted implements information-density sampling (Settles &
// Craven, 2008): plain uncertainty sampling chases outliers — views that
// are hard to classify because nothing resembles them — whereas labelling
// a view from a dense region of feature space informs the model about all
// its neighbours. The selection score is
//
//	uncertainty(x) · density(x)^Beta
//
// where density is the mean similarity of x to the rest of the space.
type DensityWeighted struct {
	// Threshold binarises labels (default 0.5).
	Threshold float64
	// Beta trades informativeness against representativeness (default 1).
	Beta float64

	densities []float64 // cached per space (keyed by len(rows))
	densityN  int
}

// Name implements Strategy.
func (d *DensityWeighted) Name() string { return "density" }

// Select implements Strategy.
func (d *DensityWeighted) Select(rows [][]float64, labeled map[int]float64, m int) ([]int, error) {
	if err := validateSelect(rows, m); err != nil {
		return nil, err
	}
	candidates := unlabeledIndices(len(rows), labeled)
	if len(candidates) == 0 {
		return nil, nil
	}
	threshold := d.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}
	beta := d.Beta
	if beta <= 0 {
		beta = 1
	}
	d.ensureDensities(rows)

	model := ml.NewLogisticRegression()
	var x [][]float64
	var y []float64
	for i := 0; i < len(rows); i++ {
		if label, ok := labeled[i]; ok {
			x = append(x, rows[i])
			if label >= threshold {
				y = append(y, 1)
			} else {
				y = append(y, 0)
			}
		}
	}
	if len(x) > 0 {
		scaler, err := ml.FitScaler(rows)
		if err != nil {
			return nil, err
		}
		model.ExternalScaler = scaler
		if err := model.Fit(x, y); err != nil {
			return nil, err
		}
	}
	score := func(i int) float64 {
		return model.Uncertainty(rows[i]) * math.Pow(d.densities[i], beta)
	}
	return topByScore(candidates, score, m), nil
}

// ensureDensities computes (once per space) each row's mean similarity to
// every other row, over standardised features.
func (d *DensityWeighted) ensureDensities(rows [][]float64) {
	if d.densities != nil && d.densityN == len(rows) {
		return
	}
	n := len(rows)
	d.densityN = n
	d.densities = make([]float64, n)
	scaler, err := ml.FitScaler(rows)
	if err != nil {
		for i := range d.densities {
			d.densities[i] = 1
		}
		return
	}
	std := scaler.TransformAll(rows)
	for i := 0; i < n; i++ {
		total := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dist := 0.0
			for t := range std[i] {
				diff := std[i][t] - std[j][t]
				dist += diff * diff
			}
			total += 1 / (1 + math.Sqrt(dist))
		}
		if n > 1 {
			d.densities[i] = total / float64(n-1)
		} else {
			d.densities[i] = 1
		}
	}
}
