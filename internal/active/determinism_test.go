package active

import (
	"math/rand"
	"testing"
)

// TestUncertaintySelectDeterministic rebuilds the labelled map with many
// insertion orders and asserts the selection never changes: the logistic
// fit is order-sensitive, so Select must feed it the labels in sorted
// index order rather than map-iteration order.
func TestUncertaintySelectDeterministic(t *testing.T) {
	rows := twoClusterRows()
	pairs := [][2]float64{{0, 0.9}, {1, 0.8}, {5, 0.1}, {6, 0.2}, {2, 0.7}, {7, 0.3}}
	var want []int
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		labeled := make(map[int]float64)
		for _, j := range rng.Perm(len(pairs)) {
			labeled[int(pairs[j][0])] = pairs[j][1]
		}
		u := &Uncertainty{}
		got, err := u.Select(rows, labeled, 2)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: selection size %d vs %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: selection %v differs from %v — training order leaked map randomness", trial, got, want)
			}
		}
	}
}
