package active

import (
	"testing"
)

// driveUncertainty runs a fixed labelling schedule through one strategy
// instance, recording each selection.
func driveUncertainty(t *testing.T, u *Uncertainty) [][]int {
	t.Helper()
	rows := twoClusterRows()
	labeled := map[int]float64{0: 0.9, 5: 0.1}
	var picks [][]int
	for step := 0; step < 5; step++ {
		got, err := u.Select(rows, labeled, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			break
		}
		picks = append(picks, got)
		// Label what was shown: cluster 0 is interesting.
		if got[0] < 5 {
			labeled[got[0]] = 0.8
		} else {
			labeled[got[0]] = 0.2
		}
	}
	return picks
}

// TestUncertaintyWarmStartDeterministic: warm start makes Select depend on
// the strategy's own history, but that history is deterministic — two
// instances driven through the same schedule must select identically.
func TestUncertaintyWarmStartDeterministic(t *testing.T) {
	a := driveUncertainty(t, &Uncertainty{WarmStart: true})
	b := driveUncertainty(t, &Uncertainty{WarmStart: true})
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i][0] != b[i][0] {
			t.Fatalf("step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestUncertaintyWarmStartReusesModel: the point of the opt-in is to
// retrain one model in place rather than allocate a fresh estimator per
// selection; without it every selection must get a fresh model.
func TestUncertaintyWarmStartReusesModel(t *testing.T) {
	rows := twoClusterRows()
	labeled := map[int]float64{0: 0.9, 5: 0.1}

	warm := &Uncertainty{WarmStart: true}
	if _, err := warm.Select(rows, labeled, 1); err != nil {
		t.Fatal(err)
	}
	first := warm.Model()
	labeled[1] = 0.8
	if _, err := warm.Select(rows, labeled, 1); err != nil {
		t.Fatal(err)
	}
	if warm.Model() != first {
		t.Error("warm start must retrain the previous model in place")
	}

	cold := &Uncertainty{}
	if _, err := cold.Select(rows, labeled, 1); err != nil {
		t.Fatal(err)
	}
	firstCold := cold.Model()
	if _, err := cold.Select(rows, labeled, 1); err != nil {
		t.Fatal(err)
	}
	if cold.Model() == firstCold {
		t.Error("default strategy must fit a fresh model per selection")
	}
}

// TestCommitteeWarmChainDeterministic: the intra-Select warm-start chain
// must not disturb committee determinism — two committees with the same
// seed, driven identically, agree on every selection.
func TestCommitteeWarmChainDeterministic(t *testing.T) {
	rows := twoClusterRows()
	labeled := map[int]float64{0: 0.9, 1: 0.8, 5: 0.1, 6: 0.2}
	a := &Committee{Seed: 7}
	b := &Committee{Seed: 7}
	for step := 0; step < 3; step++ {
		ga, err := a.Select(rows, labeled, 2)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := b.Select(rows, labeled, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(ga) != len(gb) {
			t.Fatalf("step %d: %v vs %v", step, ga, gb)
		}
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("step %d: %v vs %v", step, ga, gb)
			}
		}
		for _, v := range ga {
			if v < 5 {
				labeled[v] = 0.8
			} else {
				labeled[v] = 0.2
			}
		}
	}
}
