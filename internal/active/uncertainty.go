package active

import (
	"sort"

	"viewseeker/internal/ml"
)

// Uncertainty implements least-confidence uncertainty sampling (Eq. 6–7):
// it trains a logistic-regression uncertainty estimator on the labels seen
// so far (binarised at Threshold) and presents the views whose predicted
// class probability is closest to 0.5.
type Uncertainty struct {
	// Threshold binarises the 0–1 interest labels into the positive /
	// negative classes the uncertainty estimator trains on (default 0.5).
	Threshold float64
	// NewModel builds a fresh estimator per selection; nil uses
	// ml.NewLogisticRegression.
	NewModel func() *ml.LogisticRegression
	// WarmStart retrains the previous selection's estimator in place
	// instead of fitting a fresh one, seeding gradient descent from the
	// last optimum — one new label rarely moves it far, so warm fits
	// converge in a fraction of the epochs. Off by default because it
	// trades away replay purity: Select becomes dependent on the
	// strategy's own call history, so a session restored by replaying
	// labels alone (core.SessionState) will not reproduce the original
	// selections unless every intervening Select is replayed too. Keep it
	// off for sessions that must be snapshot-restorable.
	WarmStart bool

	lastModel *ml.LogisticRegression
}

// Name implements Strategy.
func (u *Uncertainty) Name() string { return "uncertainty" }

// Model returns the most recently trained uncertainty estimator (nil
// before the first selection).
func (u *Uncertainty) Model() *ml.LogisticRegression { return u.lastModel }

// Select implements Strategy.
func (u *Uncertainty) Select(rows [][]float64, labeled map[int]float64, m int) ([]int, error) {
	if err := validateSelect(rows, m); err != nil {
		return nil, err
	}
	candidates := unlabeledIndices(len(rows), labeled)
	if len(candidates) == 0 {
		return nil, nil
	}
	threshold := u.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}
	// Train in sorted index order: ranging over the map feeds the logistic
	// fit in random order, and its gradient descent is order-sensitive, so
	// identical seeds could select different views run-to-run.
	trainIdx := make([]int, 0, len(labeled))
	for i := range labeled {
		trainIdx = append(trainIdx, i)
	}
	sort.Ints(trainIdx)
	var x [][]float64
	var y []float64
	for _, i := range trainIdx {
		x = append(x, rows[i])
		if labeled[i] >= threshold {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	model := ml.NewLogisticRegression()
	if u.NewModel != nil {
		model = u.NewModel()
	} else if u.WarmStart && u.lastModel != nil {
		model = u.lastModel
		model.WarmStart = true
		// Rows shift under refinement, so the scaler is refitted below;
		// the stale weights are only a descent seed, not a prediction.
		model.ExternalScaler = nil
	}
	if len(x) > 0 {
		// Standardise against the whole view space: the model scores every
		// unlabelled view, and labelled-only statistics make near-constant
		// features explode off-sample (see ml.LinearRegression.ExternalScaler).
		if model.ExternalScaler == nil {
			scaler, err := ml.FitScaler(rows)
			if err != nil {
				return nil, err
			}
			model.ExternalScaler = scaler
		}
		if err := model.Fit(x, y); err != nil {
			return nil, err
		}
	}
	u.lastModel = model
	return topByScore(candidates, func(i int) float64 { return model.Uncertainty(rows[i]) }, m), nil
}
