package active

import (
	"fmt"
	"sort"
)

// Strategy selects up to m unlabelled view indices to present next.
// rows is the feature matrix of the whole view space; labeled maps view
// index → the user's label for every view already labelled.
type Strategy interface {
	Name() string
	Select(rows [][]float64, labeled map[int]float64, m int) ([]int, error)
}

// unlabeledIndices returns the sorted indices not yet labelled.
func unlabeledIndices(n int, labeled map[int]float64) []int {
	out := make([]int, 0, n-len(labeled))
	for i := 0; i < n; i++ {
		if _, ok := labeled[i]; !ok {
			out = append(out, i)
		}
	}
	return out
}

// topByScore returns up to m indices from candidates with the highest
// scores, ties broken by ascending index for determinism.
func topByScore(candidates []int, score func(i int) float64, m int) []int {
	type scored struct {
		idx   int
		score float64
	}
	ss := make([]scored, len(candidates))
	for i, c := range candidates {
		ss[i] = scored{c, score(c)}
	}
	sort.SliceStable(ss, func(a, b int) bool {
		if ss[a].score != ss[b].score {
			return ss[a].score > ss[b].score
		}
		return ss[a].idx < ss[b].idx
	})
	if m > len(ss) {
		m = len(ss)
	}
	out := make([]int, m)
	for i := 0; i < m; i++ {
		out[i] = ss[i].idx
	}
	return out
}

func validateSelect(rows [][]float64, m int) error {
	if len(rows) == 0 {
		return fmt.Errorf("active: empty view space")
	}
	if m <= 0 {
		return fmt.Errorf("active: must request at least one view, got %d", m)
	}
	return nil
}
