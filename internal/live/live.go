package live

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"viewseeker/internal/dataset"
	"viewseeker/internal/faultfs"
	"viewseeker/internal/obs"
	"viewseeker/internal/retry"
	"viewseeker/internal/store"
	"viewseeker/internal/wal"
)

// Options configures a live table.
type Options struct {
	// SyncEvery is the WAL fsync batching schedule (wal.Options.SyncEvery).
	SyncEvery int
	// Retry is the WAL append retry schedule; zero selects retry.Default().
	Retry retry.Policy
	// CheckpointBytes, when > 0, auto-checkpoints the table whenever the
	// WAL's on-disk size reaches it: the current version is persisted as a
	// snapshot and the log is compacted, bounding recovery replay to the
	// appends since the last checkpoint. 0 disables auto-checkpointing
	// (manual Checkpoint still works).
	CheckpointBytes int64
}

// Table is a WAL-backed mutable table: a base snapshot plus a redo log of
// append batches. Every append first commits to the log, then publishes a
// new immutable table version (dataset.Table.WithAppended), so readers —
// recommendation sessions, scans in flight — keep the exact version they
// started with while new work sees the appended data. Versions are
// addressed by VersionRef: the base content hash plus the WAL sequence
// number, a monotone O(1) identity that lets offline-cache entries survive
// appends as ancestors instead of being invalidated wholesale.
type Table struct {
	mu   sync.Mutex
	base *dataset.Table
	cur  *dataset.Table
	w    *wal.WAL
	seq  uint64

	fs        faultfs.FS
	path      string
	ckptBytes int64

	checkpointing atomic.Bool   // single-flight latch for Checkpoint
	ckptSeq       atomic.Uint64 // seq covered by the newest durable snapshot
	ckptAtUnix    atomic.Int64  // when it was written (unix seconds; 0 = never)
	wg            sync.WaitGroup

	mAppendRows   *obs.Counter
	mVersions     *obs.Gauge
	mCheckpoints  *obs.Counter
	mCkptFailures *obs.Counter
	mCkptSeqGauge *obs.Gauge
}

// Open opens (creating if needed) the WAL at path and replays its
// committed batches, returning the live table at its last committed
// version. base must be the same snapshot the log was started against —
// the WAL stores row deltas, not contents, so replaying against a
// different base silently builds a different table. A torn tail from a
// crash mid-append is truncated by the WAL layer; the table comes back at
// the last fully committed batch with no partial rows (batches commit
// atomically: one WAL record, one WithAppended).
//
// When a checkpoint snapshot exists next to the log (path + ".ckpt"),
// replay starts from it instead of base and the log's already-covered
// prefix — still present after a crash between the snapshot rename and
// the log truncation — is detected by seq and skipped, so recovery cost
// is bounded by the appends since the last checkpoint regardless of total
// history. The snapshot records base's content hash and Open refuses a
// snapshot taken against a different base. A snapshot that exists but no
// longer decodes is a hard error, not a silent fallback: the log may
// have been compacted, so replaying from base could lose data.
//
// fs is the filesystem (nil selects the OS); tests inject faultfs.Faulty.
// The returned Recovery reports what replay found.
func Open(fs faultfs.FS, path string, base *dataset.Table, opts Options) (*Table, *wal.Recovery, error) {
	if base == nil {
		return nil, nil, fmt.Errorf("live: nil base table")
	}
	if fs == nil {
		fs = faultfs.OS{}
	}
	start := base
	var ckptSeq uint64
	var ckptAt int64
	ck, ckTable, err := readCheckpoint(fs, CheckpointPath(path))
	if err != nil {
		return nil, nil, err
	}
	if ck != nil {
		if want := store.HashTable(base); ck.BaseHash != want {
			return nil, nil, fmt.Errorf("live: checkpoint %s was taken against base %s, not %s",
				CheckpointPath(path), ck.BaseHash, want)
		}
		start = ckTable
		ckptSeq = ck.Seq
		ckptAt = ck.WrittenUnix
	}
	w, rec, err := wal.Open(fs, path, wal.Options{
		SyncEvery: opts.SyncEvery, Retry: opts.Retry, SkipThrough: ckptSeq,
	})
	if err != nil {
		return nil, nil, err
	}
	cur := start
	for _, b := range rec.Batches {
		next, err := cur.WithAppended(b.Rows)
		if err != nil {
			w.Close()
			return nil, nil, fmt.Errorf("live: replaying batch %d: %w", b.Seq, err)
		}
		cur = next
	}
	t := &Table{
		base: base, cur: cur, w: w, seq: rec.LastSeq,
		fs: fs, path: path, ckptBytes: opts.CheckpointBytes,
	}
	t.ckptSeq.Store(ckptSeq)
	t.ckptAtUnix.Store(ckptAt)
	return t, rec, nil
}

// Instrument registers the live-table metrics (and the underlying WAL's)
// against reg, and feeds rec — when non-nil — into the recovery counters.
func (t *Table) Instrument(reg *obs.Registry, rec *wal.Recovery) {
	t.w.Instrument(reg)
	if rec != nil {
		t.w.RecordRecovery(rec)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mAppendRows = reg.Counter("viewseeker_live_appended_rows_total")
	t.mVersions = reg.Gauge("viewseeker_live_last_seq")
	t.mVersions.Set(int64(t.seq))
	t.mCheckpoints = reg.Counter("viewseeker_live_checkpoints_total")
	t.mCkptFailures = reg.Counter("viewseeker_live_checkpoint_failures_total")
	t.mCkptSeqGauge = reg.Gauge("viewseeker_live_checkpoint_seq")
	t.mCkptSeqGauge.Set(int64(t.ckptSeq.Load()))
	// Age is computed at scrape time so it stays fresh without a ticker;
	// -1 means no checkpoint has ever been taken.
	reg.GaugeFunc("viewseeker_live_checkpoint_age_seconds", func() int64 {
		at := t.ckptAtUnix.Load()
		if at == 0 {
			return -1
		}
		return time.Now().Unix() - at
	})
}

// Append durably commits one batch of rows and publishes the new table
// version, returning the batch's WAL sequence number. The batch is
// validated and materialised first (a bad row changes nothing anywhere),
// logged second, and only then made visible — so a version is never
// observable before it is recoverable. A non-nil error with seq != 0
// means the batch committed but its fsync failed (durability is behind;
// the next sync retries): the version is still published.
func (t *Table) Append(rows [][]dataset.Value) (uint64, error) {
	if len(rows) == 0 {
		return 0, fmt.Errorf("live: empty append batch")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	next, err := t.cur.WithAppended(rows)
	if err != nil {
		return 0, fmt.Errorf("live: %w", err)
	}
	seq, werr := t.w.Append(rows)
	if seq == 0 {
		return 0, werr
	}
	t.cur = next
	t.seq = seq
	t.mAppendRows.Add(int64(len(rows)))
	t.mVersions.Set(int64(seq))
	t.maybeCheckpointLocked()
	return seq, werr
}

// maybeCheckpointLocked kicks off a background checkpoint when the WAL has
// grown past the configured threshold. Called with t.mu held; the
// checkpoint itself runs on its own goroutine (serialising a large table
// under the append lock would stall writers). The single-flight latch in
// Checkpoint makes a storm of triggers harmless.
func (t *Table) maybeCheckpointLocked() {
	if t.ckptBytes <= 0 || t.checkpointing.Load() || t.w.Bytes() < t.ckptBytes {
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		if _, err := t.Checkpoint(); err != nil {
			// Failure is already counted; the next threshold crossing
			// retries. The log keeps growing but stays fully recoverable.
			_ = err
		}
	}()
}

// Current returns the latest published table version. The returned table
// is immutable — later appends publish new versions instead of mutating
// it — so callers may scan it unsynchronised for as long as they like.
func (t *Table) Current() *dataset.Table {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur
}

// Snapshot returns the latest published version together with its WAL
// sequence number, read atomically — Current and Seq taken separately can
// straddle a concurrent append.
func (t *Table) Snapshot() (*dataset.Table, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur, t.seq
}

// Base returns the snapshot the WAL replays against.
func (t *Table) Base() *dataset.Table { return t.base }

// Seq returns the last committed WAL sequence number (0 = base only).
func (t *Table) Seq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// VersionRef returns the cache address of the current version: the base
// table's content hash extended with the WAL sequence number
// (store.VersionedRef). Computing it is O(1) after the first call — the
// base hash is memoized on the table — which is the whole point: the
// append path never re-hashes table contents.
func (t *Table) VersionRef() string {
	t.mu.Lock()
	seq := t.seq
	base := t.base
	t.mu.Unlock()
	return store.VersionedRef(store.HashTable(base), seq)
}

// Sync flushes the WAL to stable storage.
func (t *Table) Sync() error { return t.w.Sync() }

// Close waits for any in-flight background checkpoint, then syncs and
// closes the WAL. The current version stays readable; further appends
// fail.
func (t *Table) Close() error {
	t.wg.Wait()
	return t.w.Close()
}

// checkpointVersion is the snapshot file format version; bump on any
// incompatible change so stale files error instead of misloading.
const checkpointVersion = 1

// checkpointFile is the gob-encoded snapshot: the serialised table version
// at Seq, plus the ORIGINAL base table's content hash. Storing the
// original hash — not the checkpointed table's — keeps VersionRef
// addresses (baseHash@seq) stable across checkpoints and restarts, so
// offline-cache entries keyed by them stay valid. The table bytes are the
// dataset binary encoding wrapped as one gob field, keeping the file a
// single self-delimiting gob stream.
type checkpointFile struct {
	Version     int
	BaseHash    string
	Seq         uint64
	WrittenUnix int64
	Table       []byte
}

// CheckpointPath returns where the snapshot for the WAL at walPath lives.
func CheckpointPath(walPath string) string { return walPath + ".ckpt" }

// readCheckpoint loads and validates the snapshot at path. A missing file
// is (nil, nil, nil); a file that exists but fails to decode is an error —
// see Open for why there is no silent fallback.
func readCheckpoint(fs faultfs.FS, path string) (*checkpointFile, *dataset.Table, error) {
	f, err := fs.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("live: opening checkpoint %s: %w", path, err)
	}
	defer f.Close()
	var ck checkpointFile
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, nil, fmt.Errorf("live: decoding checkpoint %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return nil, nil, fmt.Errorf("live: checkpoint %s has version %d, want %d", path, ck.Version, checkpointVersion)
	}
	tab, err := dataset.ReadBinary(bytes.NewReader(ck.Table))
	if err != nil {
		return nil, nil, fmt.Errorf("live: decoding checkpoint table %s: %w", path, err)
	}
	return &ck, tab, nil
}

// writeCheckpoint persists ck atomically: temp file in the same directory,
// fsync, rename — the store snapshot idiom. Readers only ever see the old
// snapshot or the complete new one, never a partial write.
func writeCheckpoint(fs faultfs.FS, path string, ck *checkpointFile) error {
	tmp, err := fs.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("live: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	// Removing the temp is a no-op after a successful rename.
	defer fs.Remove(tmpName)
	if err := gob.NewEncoder(tmp).Encode(ck); err != nil {
		tmp.Close()
		return fmt.Errorf("live: encoding checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("live: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("live: closing checkpoint temp: %w", err)
	}
	if err := fs.Rename(tmpName, path); err != nil {
		return fmt.Errorf("live: publishing checkpoint: %w", err)
	}
	return nil
}

// Checkpoint persists the current version as a durable snapshot and
// compacts the WAL to the entries past it, returning the sequence number
// covered. It returns (0, nil) when there is nothing to do — no appends
// since the last checkpoint, or another checkpoint already in flight
// (checkpoints are single-flighted; concurrent callers don't stack).
//
// Appends proceed concurrently: the version and seq are captured
// atomically up front and serialisation happens outside the table lock.
// Crash atomicity is two-step. Before the snapshot rename, the old
// snapshot and full log are intact — recovery replays as if the
// checkpoint never started. After the rename but before the log
// compaction, the new snapshot wins and the log's duplicate prefix is
// skipped by seq during recovery. There is no window where data is only
// partially covered.
func (t *Table) Checkpoint() (uint64, error) {
	if !t.checkpointing.CompareAndSwap(false, true) {
		return 0, nil
	}
	defer t.checkpointing.Store(false)
	t.mu.Lock()
	cur, seq := t.cur, t.seq
	t.mu.Unlock()
	if seq == 0 || seq <= t.ckptSeq.Load() {
		return 0, nil
	}
	var buf bytes.Buffer
	if err := dataset.WriteBinary(cur, &buf); err != nil {
		t.mCkptFailures.Inc()
		return 0, fmt.Errorf("live: serialising checkpoint: %w", err)
	}
	ck := &checkpointFile{
		Version:     checkpointVersion,
		BaseHash:    store.HashTable(t.base),
		Seq:         seq,
		WrittenUnix: time.Now().Unix(),
		Table:       buf.Bytes(),
	}
	if err := writeCheckpoint(t.fs, CheckpointPath(t.path), ck); err != nil {
		t.mCkptFailures.Inc()
		return 0, err
	}
	t.ckptSeq.Store(seq)
	t.ckptAtUnix.Store(ck.WrittenUnix)
	t.mCheckpoints.Inc()
	t.mCkptSeqGauge.Set(int64(seq))
	if err := t.w.CompactThrough(seq); err != nil {
		// The snapshot is durable, so nothing is lost — recovery skips the
		// log's covered prefix by seq. The log just didn't shrink.
		t.mCkptFailures.Inc()
		return seq, fmt.Errorf("live: checkpoint %d persisted but log compaction failed: %w", seq, err)
	}
	return seq, nil
}

// Status is a point-in-time summary of the table's streaming state, the
// shape /healthz reports.
type Status struct {
	// Seq is the last committed WAL sequence number.
	Seq uint64
	// Rows is the current version's row count.
	Rows int
	// WalBytes is the on-disk size of the (compacted) log.
	WalBytes int64
	// CheckpointSeq is the seq covered by the newest snapshot (0: none).
	CheckpointSeq uint64
	// CheckpointAgeSeconds is the snapshot's age (-1: none).
	CheckpointAgeSeconds int64
}

// Status returns the current streaming status.
func (t *Table) Status() Status {
	t.mu.Lock()
	seq, rows := t.seq, t.cur.NumRows()
	t.mu.Unlock()
	st := Status{
		Seq:                  seq,
		Rows:                 rows,
		WalBytes:             t.w.Bytes(),
		CheckpointSeq:        t.ckptSeq.Load(),
		CheckpointAgeSeconds: -1,
	}
	if at := t.ckptAtUnix.Load(); at != 0 {
		st.CheckpointAgeSeconds = time.Now().Unix() - at
	}
	return st
}
