package live

import (
	"fmt"
	"sync"

	"viewseeker/internal/dataset"
	"viewseeker/internal/faultfs"
	"viewseeker/internal/obs"
	"viewseeker/internal/store"
	"viewseeker/internal/wal"
)

// Table is a WAL-backed mutable table: a base snapshot plus a redo log of
// append batches. Every append first commits to the log, then publishes a
// new immutable table version (dataset.Table.WithAppended), so readers —
// recommendation sessions, scans in flight — keep the exact version they
// started with while new work sees the appended data. Versions are
// addressed by VersionRef: the base content hash plus the WAL sequence
// number, a monotone O(1) identity that lets offline-cache entries survive
// appends as ancestors instead of being invalidated wholesale.
type Table struct {
	mu   sync.Mutex
	base *dataset.Table
	cur  *dataset.Table
	w    *wal.WAL
	seq  uint64

	mAppendRows *obs.Counter
	mVersions   *obs.Gauge
}

// Open opens (creating if needed) the WAL at path and replays its
// committed batches over base, returning the live table at its last
// committed version. base must be the same snapshot the log was started
// against — the WAL stores row deltas, not contents, so replaying against
// a different base silently builds a different table. A torn tail from a
// crash mid-append is truncated by the WAL layer; the table comes back at
// the last fully committed batch with no partial rows (batches commit
// atomically: one WAL record, one WithAppended).
//
// fs is the filesystem (nil selects the OS); tests inject faultfs.Faulty.
// The returned Recovery reports what replay found.
func Open(fs faultfs.FS, path string, base *dataset.Table, opts wal.Options) (*Table, *wal.Recovery, error) {
	if base == nil {
		return nil, nil, fmt.Errorf("live: nil base table")
	}
	w, rec, err := wal.Open(fs, path, opts)
	if err != nil {
		return nil, nil, err
	}
	cur := base
	for _, b := range rec.Batches {
		next, err := cur.WithAppended(b.Rows)
		if err != nil {
			w.Close()
			return nil, nil, fmt.Errorf("live: replaying batch %d: %w", b.Seq, err)
		}
		cur = next
	}
	return &Table{base: base, cur: cur, w: w, seq: rec.LastSeq}, rec, nil
}

// Instrument registers the live-table metrics (and the underlying WAL's)
// against reg, and feeds rec — when non-nil — into the recovery counters.
func (t *Table) Instrument(reg *obs.Registry, rec *wal.Recovery) {
	t.w.Instrument(reg)
	if rec != nil {
		t.w.RecordRecovery(rec)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mAppendRows = reg.Counter("viewseeker_live_appended_rows_total")
	t.mVersions = reg.Gauge("viewseeker_live_last_seq")
	t.mVersions.Set(int64(t.seq))
}

// Append durably commits one batch of rows and publishes the new table
// version, returning the batch's WAL sequence number. The batch is
// validated and materialised first (a bad row changes nothing anywhere),
// logged second, and only then made visible — so a version is never
// observable before it is recoverable. A non-nil error with seq != 0
// means the batch committed but its fsync failed (durability is behind;
// the next sync retries): the version is still published.
func (t *Table) Append(rows [][]dataset.Value) (uint64, error) {
	if len(rows) == 0 {
		return 0, fmt.Errorf("live: empty append batch")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	next, err := t.cur.WithAppended(rows)
	if err != nil {
		return 0, fmt.Errorf("live: %w", err)
	}
	seq, werr := t.w.Append(rows)
	if seq == 0 {
		return 0, werr
	}
	t.cur = next
	t.seq = seq
	t.mAppendRows.Add(int64(len(rows)))
	t.mVersions.Set(int64(seq))
	return seq, werr
}

// Current returns the latest published table version. The returned table
// is immutable — later appends publish new versions instead of mutating
// it — so callers may scan it unsynchronised for as long as they like.
func (t *Table) Current() *dataset.Table {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur
}

// Snapshot returns the latest published version together with its WAL
// sequence number, read atomically — Current and Seq taken separately can
// straddle a concurrent append.
func (t *Table) Snapshot() (*dataset.Table, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur, t.seq
}

// Base returns the snapshot the WAL replays against.
func (t *Table) Base() *dataset.Table { return t.base }

// Seq returns the last committed WAL sequence number (0 = base only).
func (t *Table) Seq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// VersionRef returns the cache address of the current version: the base
// table's content hash extended with the WAL sequence number
// (store.VersionedRef). Computing it is O(1) after the first call — the
// base hash is memoized on the table — which is the whole point: the
// append path never re-hashes table contents.
func (t *Table) VersionRef() string {
	t.mu.Lock()
	seq := t.seq
	base := t.base
	t.mu.Unlock()
	return store.VersionedRef(store.HashTable(base), seq)
}

// Sync flushes the WAL to stable storage.
func (t *Table) Sync() error { return t.w.Sync() }

// Close syncs and closes the WAL. The current version stays readable;
// further appends fail.
func (t *Table) Close() error { return t.w.Close() }
