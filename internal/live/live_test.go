package live

import (
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/faultfs"
	"viewseeker/internal/retry"
	"viewseeker/internal/store"
	"viewseeker/internal/wal"
)

func baseTable(t *testing.T, rows int) *dataset.Table {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "cat", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	tab := dataset.NewTable("t", schema)
	for i := 0; i < rows; i++ {
		tab.MustAppendRow(dataset.StringVal(string(rune('a'+i%3))), dataset.Float(float64(i)))
	}
	return tab
}

func batch(base, n int) [][]dataset.Value {
	out := make([][]dataset.Value, n)
	for i := range out {
		out[i] = []dataset.Value{dataset.StringVal("b"), dataset.Float(float64(base + i))}
	}
	return out
}

func tableRows(tab *dataset.Table) [][]dataset.Value {
	out := make([][]dataset.Value, tab.NumRows())
	for i := range out {
		out[i] = tab.Row(i)
	}
	return out
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	base := baseTable(t, 10)
	lt, rec, err := Open(nil, path, base, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != 0 || lt.Current() != base {
		t.Fatal("fresh live table is not the base")
	}
	if _, err := lt.Append(batch(100, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := lt.Append(batch(200, 3)); err != nil {
		t.Fatal(err)
	}
	want := tableRows(lt.Current())
	if lt.Seq() != 2 || len(want) != 17 {
		t.Fatalf("seq %d rows %d, want 2 and 17", lt.Seq(), len(want))
	}
	lt.Close()

	// Reopen against the same base: replay lands on the same version.
	lt2, rec2, err := Open(nil, path, baseTable(t, 10), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt2.Close()
	if rec2.LastSeq != 2 || rec2.TornTail {
		t.Fatalf("recovery: seq %d torn %v", rec2.LastSeq, rec2.TornTail)
	}
	if got := tableRows(lt2.Current()); !reflect.DeepEqual(got, want) {
		t.Fatal("replayed table differs from the pre-restart version")
	}
}

// TestFaultKillDuringAppend is the crash-recovery acceptance test: an
// append that tears mid-record (retries exhausted, truncate also failing —
// the worst case, leaving the torn frame on disk) must not become visible
// after reopen; the table restores to the last committed batch with no
// partial rows.
func TestFaultKillDuringAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	faulty := faultfs.NewFaulty(nil)
	fs := &stuckTruncateFS{FS: faulty}
	lt, _, err := Open(fs, path, baseTable(t, 10), wal.Options{Retry: retry.Policy{Attempts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lt.Append(batch(100, 5)); err != nil {
		t.Fatal(err)
	}
	committed := tableRows(lt.Current())

	faulty.TearWritesAfter(7, errors.New("injected crash"))
	if seq, err := lt.Append(batch(200, 5)); err == nil || seq != 0 {
		t.Fatalf("torn append: seq %d err %v, want 0 and error", seq, err)
	}
	// The failed append must not be visible in memory either.
	if got := tableRows(lt.Current()); !reflect.DeepEqual(got, committed) {
		t.Fatal("torn append leaked into the published version")
	}
	faulty.Clear()
	lt.Close()

	lt2, rec, err := Open(faulty, path, baseTable(t, 10), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt2.Close()
	if !rec.TornTail {
		t.Fatal("recovery did not report the torn tail")
	}
	if rec.LastSeq != 1 {
		t.Fatalf("recovered to seq %d, want 1", rec.LastSeq)
	}
	if got := tableRows(lt2.Current()); !reflect.DeepEqual(got, committed) {
		t.Fatal("recovered table differs from the last committed batch")
	}
	// The table accepts appends again after recovery.
	if seq, err := lt2.Append(batch(300, 2)); err != nil || seq != 2 {
		t.Fatalf("post-recovery append: seq %d err %v", seq, err)
	}
}

// stuckTruncateFS fails torn-tail repair, so a torn frame stays on disk —
// simulating a crash between the tear and the cleanup.
type stuckTruncateFS struct{ faultfs.FS }

func (f *stuckTruncateFS) Truncate(string, int64) error {
	return errors.New("injected truncate failure")
}

// TestConcurrentReadersDuringAppend holds reader goroutines on pinned
// versions while appends publish new ones; run under -race this pins the
// MVCC claim that published versions are immutable.
func TestConcurrentReadersDuringAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	lt, _, err := Open(nil, path, baseTable(t, 50), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tab := lt.Current()
				n := tab.NumRows()
				sum := 0.0
				col := tab.Column("m")
				for r := 0; r < n; r++ {
					if v, ok := col.Float(r); ok {
						sum += v
					}
				}
				if n2 := tab.NumRows(); n2 != n {
					t.Error("pinned version changed row count")
					return
				}
				_ = sum
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if _, err := lt.Append(batch(i*10, 5)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if lt.Current().NumRows() != 150 {
		t.Fatalf("rows %d, want 150", lt.Current().NumRows())
	}
}

func TestVersionRefMonotone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	base := baseTable(t, 10)
	baseHash := store.HashTable(base)
	lt, _, err := Open(nil, path, base, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	if ref := lt.VersionRef(); ref != baseHash {
		t.Fatalf("seq-0 ref %q should equal the base hash %q", ref, baseHash)
	}
	if _, err := lt.Append(batch(0, 2)); err != nil {
		t.Fatal(err)
	}
	if ref := lt.VersionRef(); ref != store.VersionedRef(baseHash, 1) {
		t.Fatalf("ref after one append: %q", ref)
	}
	// The ref identifies contents: a full content hash of the appended
	// version differs from the base hash, but the version ref never pays
	// for computing it.
	if store.HashTable(lt.Current()) == baseHash {
		t.Fatal("append did not change contents")
	}
}
