package live

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"viewseeker/internal/dataset"
	"viewseeker/internal/faultfs"
	"viewseeker/internal/retry"
	"viewseeker/internal/store"
)

func baseTable(t *testing.T, rows int) *dataset.Table {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.ColumnDef{Name: "cat", Kind: dataset.KindString, Role: dataset.RoleDimension},
		dataset.ColumnDef{Name: "m", Kind: dataset.KindFloat, Role: dataset.RoleMeasure},
	)
	tab := dataset.NewTable("t", schema)
	for i := 0; i < rows; i++ {
		tab.MustAppendRow(dataset.StringVal(string(rune('a'+i%3))), dataset.Float(float64(i)))
	}
	return tab
}

func batch(base, n int) [][]dataset.Value {
	out := make([][]dataset.Value, n)
	for i := range out {
		out[i] = []dataset.Value{dataset.StringVal("b"), dataset.Float(float64(base + i))}
	}
	return out
}

func tableRows(tab *dataset.Table) [][]dataset.Value {
	out := make([][]dataset.Value, tab.NumRows())
	for i := range out {
		out[i] = tab.Row(i)
	}
	return out
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	base := baseTable(t, 10)
	lt, rec, err := Open(nil, path, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != 0 || lt.Current() != base {
		t.Fatal("fresh live table is not the base")
	}
	if _, err := lt.Append(batch(100, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := lt.Append(batch(200, 3)); err != nil {
		t.Fatal(err)
	}
	want := tableRows(lt.Current())
	if lt.Seq() != 2 || len(want) != 17 {
		t.Fatalf("seq %d rows %d, want 2 and 17", lt.Seq(), len(want))
	}
	lt.Close()

	// Reopen against the same base: replay lands on the same version.
	lt2, rec2, err := Open(nil, path, baseTable(t, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt2.Close()
	if rec2.LastSeq != 2 || rec2.TornTail {
		t.Fatalf("recovery: seq %d torn %v", rec2.LastSeq, rec2.TornTail)
	}
	if got := tableRows(lt2.Current()); !reflect.DeepEqual(got, want) {
		t.Fatal("replayed table differs from the pre-restart version")
	}
}

// TestFaultKillDuringAppend is the crash-recovery acceptance test: an
// append that tears mid-record (retries exhausted, truncate also failing —
// the worst case, leaving the torn frame on disk) must not become visible
// after reopen; the table restores to the last committed batch with no
// partial rows.
func TestFaultKillDuringAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	faulty := faultfs.NewFaulty(nil)
	fs := &stuckTruncateFS{FS: faulty}
	lt, _, err := Open(fs, path, baseTable(t, 10), Options{Retry: retry.Policy{Attempts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lt.Append(batch(100, 5)); err != nil {
		t.Fatal(err)
	}
	committed := tableRows(lt.Current())

	faulty.TearWritesAfter(7, errors.New("injected crash"))
	if seq, err := lt.Append(batch(200, 5)); err == nil || seq != 0 {
		t.Fatalf("torn append: seq %d err %v, want 0 and error", seq, err)
	}
	// The failed append must not be visible in memory either.
	if got := tableRows(lt.Current()); !reflect.DeepEqual(got, committed) {
		t.Fatal("torn append leaked into the published version")
	}
	faulty.Clear()
	lt.Close()

	lt2, rec, err := Open(faulty, path, baseTable(t, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt2.Close()
	if !rec.TornTail {
		t.Fatal("recovery did not report the torn tail")
	}
	if rec.LastSeq != 1 {
		t.Fatalf("recovered to seq %d, want 1", rec.LastSeq)
	}
	if got := tableRows(lt2.Current()); !reflect.DeepEqual(got, committed) {
		t.Fatal("recovered table differs from the last committed batch")
	}
	// The table accepts appends again after recovery.
	if seq, err := lt2.Append(batch(300, 2)); err != nil || seq != 2 {
		t.Fatalf("post-recovery append: seq %d err %v", seq, err)
	}
}

// stuckTruncateFS fails torn-tail repair, so a torn frame stays on disk —
// simulating a crash between the tear and the cleanup.
type stuckTruncateFS struct{ faultfs.FS }

func (f *stuckTruncateFS) Truncate(string, int64) error {
	return errors.New("injected truncate failure")
}

// TestCheckpointRoundtrip: Checkpoint persists the current version,
// compacts the log to zero, and a reopen replays only the suffix — the
// bounded-recovery contract — landing bit-identically on the same version
// ref.
func TestCheckpointRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	base := baseTable(t, 10)
	lt, _, err := Open(nil, path, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := lt.Append(batch(i*100, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if st := lt.Status(); st.WalBytes == 0 || st.CheckpointSeq != 0 || st.CheckpointAgeSeconds != -1 {
		t.Fatalf("pre-checkpoint status: %+v", st)
	}
	seq, err := lt.Checkpoint()
	if err != nil || seq != 3 {
		t.Fatalf("checkpoint: seq %d err %v, want 3 and nil", seq, err)
	}
	if st := lt.Status(); st.WalBytes != 0 || st.CheckpointSeq != 3 || st.CheckpointAgeSeconds < 0 {
		t.Fatalf("post-checkpoint status: %+v", st)
	}
	// Nothing new to cover: a second checkpoint is a no-op.
	if seq, err := lt.Checkpoint(); err != nil || seq != 0 {
		t.Fatalf("idle checkpoint: seq %d err %v, want 0 and nil", seq, err)
	}
	if _, err := lt.Append(batch(900, 2)); err != nil {
		t.Fatal(err)
	}
	want := tableRows(lt.Current())
	wantRef := lt.VersionRef()
	lt.Close()

	lt2, rec, err := Open(nil, path, baseTable(t, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt2.Close()
	// Bounded replay: only the one post-checkpoint batch, nothing skipped
	// (the log was compacted).
	if len(rec.Batches) != 1 || rec.SkippedFrames != 0 || rec.LastSeq != 4 {
		t.Fatalf("recovery: %d batches, %d skipped, seq %d; want 1, 0, 4",
			len(rec.Batches), rec.SkippedFrames, rec.LastSeq)
	}
	if got := tableRows(lt2.Current()); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered table differs from the pre-restart version")
	}
	if ref := lt2.VersionRef(); ref != wantRef {
		t.Fatalf("version ref changed across checkpointed restart: %q != %q", ref, wantRef)
	}
	if st := lt2.Status(); st.CheckpointSeq != 3 {
		t.Fatalf("checkpoint seq not restored: %+v", st)
	}
	// Appends keep working on the compacted log.
	if seq, err := lt2.Append(batch(950, 1)); err != nil || seq != 5 {
		t.Fatalf("post-recovery append: seq %d err %v", seq, err)
	}
}

// ckptRenameFailFS fails the snapshot publish rename — the disk state of a
// crash just before it: no (new) snapshot, full log intact.
type ckptRenameFailFS struct{ faultfs.FS }

func (f *ckptRenameFailFS) Rename(oldpath, newpath string) error {
	if strings.HasSuffix(newpath, ".ckpt") {
		return errors.New("injected crash before checkpoint rename")
	}
	return f.FS.Rename(oldpath, newpath)
}

// TestCheckpointCrashBeforeRename is crash window 1: dying before the
// snapshot rename leaves the old state (here: no snapshot) plus the full
// log, and recovery replays as if the checkpoint never started.
func TestCheckpointCrashBeforeRename(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	fs := &ckptRenameFailFS{FS: faultfs.OS{}}
	lt, _, err := Open(fs, path, baseTable(t, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := lt.Append(batch(i*100, 3)); err != nil {
			t.Fatal(err)
		}
	}
	want := tableRows(lt.Current())
	if seq, err := lt.Checkpoint(); err == nil || seq != 0 {
		t.Fatalf("crashed checkpoint: seq %d err %v, want 0 and error", seq, err)
	}
	// The failed attempt changed nothing: no snapshot, log uncompacted.
	if st := lt.Status(); st.CheckpointSeq != 0 || st.WalBytes == 0 {
		t.Fatalf("status after failed checkpoint: %+v", st)
	}
	lt.Close()

	lt2, rec, err := Open(nil, path, baseTable(t, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt2.Close()
	if rec.LastSeq != 2 || rec.SkippedFrames != 0 || len(rec.Batches) != 2 {
		t.Fatalf("recovery: %d batches, %d skipped, seq %d; want 2, 0, 2",
			len(rec.Batches), rec.SkippedFrames, rec.LastSeq)
	}
	if got := tableRows(lt2.Current()); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered table differs from the last committed version")
	}
}

// TestCheckpointCrashBeforeTruncate is crash window 2: the snapshot rename
// landed but the log compaction did not (stuckTruncateFS blocks it), so
// the log still holds the frames the snapshot already covers. Recovery
// loads the snapshot and skips the duplicate prefix by seq.
func TestCheckpointCrashBeforeTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	fs := &stuckTruncateFS{FS: faultfs.OS{}}
	lt, _, err := Open(fs, path, baseTable(t, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := lt.Append(batch(i*100, 3)); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := lt.Checkpoint()
	if err == nil || seq != 3 {
		t.Fatalf("checkpoint with stuck compaction: seq %d err %v, want 3 and error", seq, err)
	}
	// The snapshot is durable even though the log kept its covered prefix.
	if st := lt.Status(); st.CheckpointSeq != 3 || st.WalBytes == 0 {
		t.Fatalf("status after stuck compaction: %+v", st)
	}
	if _, err := lt.Append(batch(900, 2)); err != nil {
		t.Fatal(err)
	}
	want := tableRows(lt.Current())
	wantRef := lt.VersionRef()
	lt.Close()

	lt2, rec, err := Open(nil, path, baseTable(t, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt2.Close()
	// Frames 1..3 are duplicates of the snapshot: validated, skipped, never
	// re-applied. Only batch 4 replays.
	if rec.SkippedFrames != 3 || len(rec.Batches) != 1 || rec.LastSeq != 4 {
		t.Fatalf("recovery: %d batches, %d skipped, seq %d; want 1, 3, 4",
			len(rec.Batches), rec.SkippedFrames, rec.LastSeq)
	}
	if got := tableRows(lt2.Current()); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered table differs from the last committed version")
	}
	if ref := lt2.VersionRef(); ref != wantRef {
		t.Fatalf("version ref changed: %q != %q", ref, wantRef)
	}
}

// TestAutoCheckpoint: with CheckpointBytes set low every append crosses
// the threshold, so a background checkpoint runs and Close waits for it;
// the reopened table replays only a bounded suffix.
func TestAutoCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	lt, _, err := Open(nil, path, baseTable(t, 10), Options{CheckpointBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := lt.Append(batch(i*100, 2)); err != nil {
			t.Fatal(err)
		}
	}
	want := tableRows(lt.Current())
	lt.Close() // waits for any in-flight background checkpoint
	if st := lt.Status(); st.CheckpointSeq == 0 {
		t.Fatalf("auto-checkpoint never ran: %+v", st)
	}

	lt2, rec, err := Open(nil, path, baseTable(t, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt2.Close()
	if rec.LastSeq != 5 || len(rec.Batches) >= 5 {
		t.Fatalf("recovery: %d batches, seq %d; want bounded replay to seq 5",
			len(rec.Batches), rec.LastSeq)
	}
	if got := tableRows(lt2.Current()); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered table differs from the pre-restart version")
	}
}

// TestCheckpointHardErrors: a snapshot that exists but does not decode, or
// was taken against a different base, must fail Open outright — the log
// may be compacted, so falling back to base replay could silently lose
// rows.
func TestCheckpointHardErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	lt, _, err := Open(nil, path, baseTable(t, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lt.Append(batch(0, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := lt.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	lt.Close()

	// Wrong base: the snapshot records the original base hash.
	if _, _, err := Open(nil, path, baseTable(t, 11), Options{}); err == nil {
		t.Fatal("open with a different base accepted a foreign checkpoint")
	}
	// Corrupt snapshot: hard error, no silent fallback.
	if err := os.WriteFile(CheckpointPath(path), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(nil, path, baseTable(t, 10), Options{}); err == nil {
		t.Fatal("open decoded a corrupt checkpoint")
	}
}

// TestConcurrentReadersDuringAppend holds reader goroutines on pinned
// versions while appends publish new ones; run under -race this pins the
// MVCC claim that published versions are immutable.
func TestConcurrentReadersDuringAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	lt, _, err := Open(nil, path, baseTable(t, 50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tab := lt.Current()
				n := tab.NumRows()
				sum := 0.0
				col := tab.Column("m")
				for r := 0; r < n; r++ {
					if v, ok := col.Float(r); ok {
						sum += v
					}
				}
				if n2 := tab.NumRows(); n2 != n {
					t.Error("pinned version changed row count")
					return
				}
				_ = sum
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if _, err := lt.Append(batch(i*10, 5)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if lt.Current().NumRows() != 150 {
		t.Fatalf("rows %d, want 150", lt.Current().NumRows())
	}
}

func TestVersionRefMonotone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	base := baseTable(t, 10)
	baseHash := store.HashTable(base)
	lt, _, err := Open(nil, path, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	if ref := lt.VersionRef(); ref != baseHash {
		t.Fatalf("seq-0 ref %q should equal the base hash %q", ref, baseHash)
	}
	if _, err := lt.Append(batch(0, 2)); err != nil {
		t.Fatal(err)
	}
	if ref := lt.VersionRef(); ref != store.VersionedRef(baseHash, 1) {
		t.Fatalf("ref after one append: %q", ref)
	}
	// The ref identifies contents: a full content hash of the appended
	// version differs from the base hash, but the version ref never pays
	// for computing it.
	if store.HashTable(lt.Current()) == baseHash {
		t.Fatal("append did not change contents")
	}
}
